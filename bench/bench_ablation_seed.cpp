/// Ablation: closed-form LEVEL 1 seed vs the numeric model refinement in
/// the transistor estimator. The paper's eq. (2) inversion
/// (W/L = gm^2 / 2 KP Id) is exact only for an ideal square-law device;
/// APE's sizing loop refines against the full card. This bench measures
/// the gm error of the bare seed on each model level - the accuracy the
/// refinement buys.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/estimator/transistor.h"

using namespace ape;
using namespace ape::est;

namespace {

void run(const char* label, const Process& proc) {
  const TransistorEstimator xe(proc);
  std::printf("%s\n", label);
  std::printf("%10s %10s | %10s %10s | %9s\n", "gm (uS)", "Id (uA)",
              "seed err", "refined", "L chosen");
  bench::rule(64);
  double worst_seed = 0.0, worst_ref = 0.0;
  const double cases[][2] = {{20e-6, 2e-6},   {100e-6, 10e-6},
                             {400e-6, 50e-6}, {1e-3, 200e-6}};
  for (const auto& c : cases) {
    const double gm = c[0], id = c[1];
    // Bare closed-form seed (the paper's eq. 2), evaluated on the card.
    const auto& card = proc.nmos;
    const double l = 2.0 * proc.lmin;
    const double kp = card.kp > 0.0 ? card.kp : card.muz * 1e-4 * card.cox();
    const double w_seed =
        std::max(gm * gm / (2.0 * kp * id) * card.leff(l), proc.wmin);
    const double vgs = xe.vgs_for_id(spice::MosType::Nmos, w_seed, l, id, 2.5);
    const double gm_seed = spice::mos_eval(card, vgs, 2.5, 0.0, w_seed, l).gm;
    const double err_seed = 100.0 * (gm_seed - gm) / gm;

    // Full estimator (seed + refinement).
    const TransistorDesign d = xe.size_for_gm_id(spice::MosType::Nmos, gm, id);
    const double gm_ref = spice::mos_eval(card, d.vgs, d.vds, d.vbs, d.w, d.l).gm;
    const double err_ref = 100.0 * (gm_ref - gm) / gm;

    worst_seed = std::max(worst_seed, std::fabs(err_seed));
    worst_ref = std::max(worst_ref, std::fabs(err_ref));
    std::printf("%10.1f %10.1f | %9.2f%% %9.3f%% | %7.2fum\n", gm * 1e6,
                id * 1e6, err_seed, err_ref, d.l * 1e6);
  }
  bench::rule(64);
  std::printf("worst |gm error|: seed %.2f%%, refined %.3f%%\n\n", worst_seed,
              worst_ref);
}

}  // namespace

int main() {
  std::printf("Ablation: closed-form sizing seed vs numeric model refinement\n\n");
  run("LEVEL 1 (seed model == simulation model)", Process::default_1u2());
  run("LEVEL 3 (mobility degradation breaks the seed)",
      Process::default_1u2_level3());
  run("LEVEL 4 / BSIM (body factor + U0V break the seed)",
      Process::default_1u2_bsim());
  std::printf(
      "Expected shape: on LEVEL 1 the seed is already near-exact; on\n"
      "LEVEL 3/4 the bare eq.-2 inversion misses gm by tens of percent and\n"
      "the refinement pulls every case back under 0.2%% - the mechanism\n"
      "that lets one sizing procedure serve all model levels.\n");
  return 0;
}
