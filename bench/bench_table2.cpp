/// Reproduces paper Table 2: "Estimation vs SPICE Simulation for Basic
/// Analog Circuits" - the level-2 component library sized to the paper's
/// operating points, estimated by APE and verified on the MNA simulator.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/estimator/components.h"
#include "src/estimator/verify.h"

using namespace ape;
using namespace ape::est;

int main() {
  const Process proc = Process::default_1u2();
  const ComponentEstimator ce(proc);

  struct Row {
    ComponentSpec spec;
  };
  // Specs mirror the paper's implied operating points: 100 uA sources and
  // reference, ~120 uA gain stages, 1 uA differential pairs.
  std::vector<ComponentSpec> specs = {
      {ComponentKind::DcVolt, 100e-6, 0.0, 2.5, 0.0},
      {ComponentKind::CurrentMirror, 100e-6, 0.0, 0.0, 0.0},
      {ComponentKind::WilsonSource, 100e-6, 0.0, 0.0, 0.0},
      {ComponentKind::CascodeSource, 100e-6, 0.0, 0.0, 0.0},
      {ComponentKind::GainNmos, 120e-6, 8.5, 0.0, 1e-12},
      {ComponentKind::GainCmos, 120e-6, 19.0, 0.0, 1e-12},
      {ComponentKind::GainCmosHalf, 120e-6, 5.1, 0.0, 1e-12},
      {ComponentKind::Follower, 100e-6, 0.8, 0.0, 1e-12},
      {ComponentKind::DiffNmos, 1e-6, 10.0, 0.0, 0.5e-12},
      {ComponentKind::DiffCmos, 1e-6, 1000.0, 0.0, 0.5e-12},
  };

  std::printf("Table 2: Estimation vs Simulation for Basic Analog Circuits\n");
  std::printf("(paper reports est/sim pairs for gate area, UGF, DC power, gain, current)\n\n");
  std::printf("%-10s | %9s %9s | %8s %8s | %7s %7s | %9s %9s | %7s %7s\n",
              "Topology", "Area est", "(um2)", "UGF est", "sim(MHz)",
              "Pwr est", "sim(mW)", "Gain est", "sim", "I est", "sim(uA)");
  bench::rule();

  for (const auto& spec : specs) {
    try {
      const ComponentDesign d = ce.estimate(spec);
      const ComponentSimReport r = simulate_component(d, proc);
      std::printf(
          "%-10s | %9.1f %9s | %8.2f %8s | %7.3f %7.3f | %9.2f %9.2f | %7.1f %7.1f\n",
          to_string(spec.kind), d.perf.gate_area * 1e12, "(same)",
          d.perf.ugf_hz / 1e6,
          bench::opt_str(r.ugf_hz, 1e-6).c_str(), d.perf.dc_power * 1e3,
          r.power * 1e3, d.perf.gain, r.gain, d.perf.current * 1e6,
          r.current * 1e6);
      if (spec.kind == ComponentKind::DiffCmos ||
          spec.kind == ComponentKind::DiffNmos) {
        std::printf("%-10s | CMRR est %.1f dB, sim %s dB\n", "",
                    d.perf.cmrr_db, bench::opt_str(r.cmrr_db, 1.0, "%.1f").c_str());
      }
    } catch (const std::exception& e) {
      std::printf("%-10s | FAILED: %s\n", to_string(spec.kind), e.what());
    }
  }
  bench::rule();
  std::printf(
      "Shape check vs paper: area est==sim by construction (same geometry);\n"
      "gain/UGF/power est within tens of %% of sim; DiffCMOS gain ~1000 with\n"
      "CMRR > 100 dB, DiffNMOS gain ~ -10, Wilson/Cascode > mirror area.\n");
  return 0;
}
