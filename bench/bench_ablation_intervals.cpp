/// Ablation: how wide should the APE-seeded search intervals be?
/// The paper fixes +/-20%; this sweep shows the tradeoff the choice sits
/// on - too narrow leaves no room to absorb estimator error, too wide
/// reintroduces the blind-search failure modes.
///
/// Usage: bench_ablation_intervals [iterations]  (default 6000)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/synth/astrx.h"

using namespace ape;
using namespace ape::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 6000;
  const est::Process proc = est::Process::default_1u2();
  const auto all = table1_specs();
  // Three representative rows: buffered Wilson, high-UGF mirror, high-current.
  const std::vector<PaperOpAmpRow> rows = {all[0], all[3], all[4]};
  const double fracs[] = {0.05, 0.1, 0.2, 0.5, 1.0};

  std::printf("Ablation: APE-seed interval width vs synthesis outcome (%d iters)\n\n",
              iters);
  std::printf("%-4s %-9s | %9s %8s %9s %8s | %s\n", "ckt", "interval",
              "sim Gain", "sim UGF", "area um2", "cost", "Comments");
  rule(90);
  for (const auto& row : rows) {
    for (double f : fracs) {
      synth::SynthesisOptions opts;
      opts.use_ape_seed = true;
      opts.interval_frac = f;
      opts.anneal.iterations = iters;
      opts.anneal.seed = 0x77;
      const auto r = synth::synthesize_opamp(proc, to_spec(row), opts);
      std::printf("%-4s +/-%5.0f%% | %9.1f %8s %9.1f %8.3f | %s\n", row.name,
                  100.0 * f, r.sim.gain, opt_str(r.sim.ugf_hz, 1e-6).c_str(),
                  r.design.perf.gate_area * 1e12, r.cost, r.comment.c_str());
    }
    rule(90);
  }
  std::printf(
      "\nExpected shape: very narrow intervals inherit any APE bias verbatim;\n"
      "+/-20%% reliably repairs it; very wide intervals start behaving like\n"
      "Table 1's blind runs (worse costs / occasional misses).\n");
  return 0;
}
