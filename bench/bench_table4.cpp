/// Reproduces paper Table 4: "OpAmp Results: ASTRX/OBLX with APE init" -
/// the same ten specifications, but the annealer starts at the APE
/// estimate with +/-20% intervals. The paper's shape: every run meets
/// spec, with an overall CPU improvement over the blind runs.
///
/// Usage: bench_table4 [blind_iterations] [seeded_iterations]
///        (defaults 30000 / 8000 - narrowed intervals need fewer moves)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/synth/astrx.h"

using namespace ape;
using namespace ape::bench;

int main(int argc, char** argv) {
  const int blind_iters = argc > 1 ? std::atoi(argv[1]) : 30000;
  const int seeded_iters = argc > 2 ? std::atoi(argv[2]) : 8000;
  const est::Process proc = est::Process::default_1u2();

  std::printf("Table 4: ASTRX/OBLX-like synthesis with APE initialization (+/-20%%)\n");
  std::printf("blind reference: %d iterations; seeded: %d iterations\n\n",
              blind_iters, seeded_iters);
  std::printf("%-4s | %9s %8s %10s %7s %7s %8s %9s | %s\n", "ckt", "sim Gain",
              "sim UGF", "Gate Area", "power", "SR", "CPU", "speed-up",
              "Comments");
  std::printf("%-4s | %9s %8s %10s %7s %7s %8s %9s | %s\n", "", "abs", "(MHz)",
              "(um2)", "(mW)", "(V/us)", "(s)", "vs blind", "");
  rule(110);

  int meets = 0;
  for (const auto& row : table1_specs()) {
    const est::OpAmpSpec spec = to_spec(row);

    synth::SynthesisOptions blind;
    blind.use_ape_seed = false;
    blind.anneal.iterations = blind_iters;
    blind.anneal.seed = 0x1000 + static_cast<uint64_t>(row.name[2]);
    const auto rb = synth::synthesize_opamp(proc, spec, blind);

    synth::SynthesisOptions seeded;
    seeded.use_ape_seed = true;
    seeded.interval_frac = 0.2;
    seeded.anneal.iterations = seeded_iters;
    seeded.anneal.seed = 0x2000 + static_cast<uint64_t>(row.name[2]);
    const auto rs = synth::synthesize_opamp(proc, spec, seeded);

    const double speedup =
        rb.cpu_seconds > 0.0
            ? 100.0 * (rb.cpu_seconds - rs.cpu_seconds) / rb.cpu_seconds
            : 0.0;
    std::printf(
        "%-4s | %9.2f %8s %10.1f %7.2f %7.2f %8.2f %8.1f%% | %s\n", row.name,
        rs.sim.gain, opt_str(rs.sim.ugf_hz, 1e-6).c_str(),
        rs.design.perf.gate_area * 1e12, rs.sim.power * 1e3, rs.sim.slew / 1e6,
        rs.cpu_seconds, speedup, rs.comment.c_str());
    if (rs.meets_spec) ++meets;
  }
  rule(110);
  std::printf(
      "\nSummary: %d/10 meet spec with APE initialization.\n"
      "Paper shape: 10/10 met spec; CPU improved in all cases but one\n"
      "(-33.9%%..71.7%%). The APE estimation itself is negligible next to\n"
      "the annealing (see bench_ape_speed).\n",
      meets);
  return 0;
}
