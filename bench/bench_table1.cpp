/// Reproduces paper Table 1: "Operational Amplifiers: Design
/// Specifications and Synthesis Results" - the ASTRX/OBLX-like annealing
/// sizer run STAND-ALONE (no initial design point, full technology-legal
/// intervals) on the ten opamp specifications, each result verified on
/// the MNA simulator. The paper's shape: 9 of 10 runs either don't work
/// or badly violate a constraint.
///
/// Usage: bench_table1 [anneal_iterations]   (default 30000)

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/synth/astrx.h"

using namespace ape;
using namespace ape::bench;

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 30000;
  const est::Process proc = est::Process::default_1u2();

  std::printf("Table 1: ASTRX/OBLX-like synthesis, stand-alone (no initial point)\n");
  std::printf("anneal iterations per run: %d; area budgets = paper x%.0f (see EXPERIMENTS.md)\n\n",
              iters, kAreaScale);
  std::printf("%-4s | %6s %7s %9s %6s | %9s %8s %10s %7s %8s | %s\n", "ckt",
              "Gain", "UGF", "Area", "Ibias", "sim Gain", "sim UGF",
              "Gate Area", "power", "CPU", "Comments");
  std::printf("%-4s | %6s %7s %9s %6s | %9s %8s %10s %7s %8s | %s\n", "",
              "abs", "(MHz)", "(um2)", "(uA)", "abs", "(MHz)", "(um2)", "(mW)",
              "(s)", "");
  rule(120);

  int meets = 0, broken = 0;
  for (const auto& row : table1_specs()) {
    const est::OpAmpSpec spec = to_spec(row);
    synth::SynthesisOptions opts;
    opts.use_ape_seed = false;
    opts.anneal.iterations = iters;
    opts.anneal.seed = 0x1000 + static_cast<uint64_t>(row.name[2]);
    const auto r = synth::synthesize_opamp(proc, spec, opts);
    std::printf(
        "%-4s | %6.0f %7.1f %9.0f %6.1f | %9.2f %8s %10.1f %7.2f %8.2f | %s\n",
        row.name, row.gain, row.ugf_hz / 1e6, row.area_um2 * kAreaScale,
        row.ibias * 1e6, r.sim.gain, opt_str(r.sim.ugf_hz, 1e-6).c_str(),
        r.design.perf.gate_area * 1e12, r.sim.power * 1e3, r.cpu_seconds,
        r.comment.c_str());
    if (r.meets_spec) ++meets;
    if (r.comment == "doesn't work") ++broken;
  }
  rule(120);
  std::printf(
      "\nSummary: %d/10 meet spec, %d/10 non-functional.\n"
      "Paper shape: 1/10 met spec, 1/10 didn't simulate, the rest violated a\n"
      "constraint (Gain << Spec / UGF < spec / Area >> Spec). Absolute CPU\n"
      "seconds differ (their Ultra Sparc 30 took 245-1557 s per run).\n",
      meets, broken);
  return 0;
}
