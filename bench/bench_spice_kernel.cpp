/// Micro-benchmark for the compiled MNA kernel (src/spice/kernel.h):
///
///  - in-place LU workspaces (factorize/solve_into) vs the old
///    allocate-a-solver-per-iteration path, over system sizes 4..256;
///  - sparse LU with reusable symbolic factorization (src/util/sparse.h)
///    vs dense LU on circuit-shaped (ladder/banded) systems — the
///    crossover table behind KernelPolicy's Auto heuristic;
///  - serial (re-factorize per RHS) vs batch (one factorization, many
///    RHS) solve scheduling, the shape the AC/noise sweeps and the AWE
///    moment recursion use;
///  - fused G + jwC assembly vs legacy per-point virtual restamping.
///
/// After the google-benchmark run, main() re-times the LU shapes with a
/// steady clock and writes machine-readable BENCH_spice_kernel.json
/// (ns/op per size, the sparse-vs-dense crossover table, and KernelStats
/// audits proving symbolic reuse + allocation-free steady state) for the
/// committed performance trajectory. `--quick` skips the google-benchmark
/// pass and shrinks the timing loops — the CI smoke job and the
/// check_bench regression gate run that mode.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_meta.h"
#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/kernel.h"
#include "src/util/matrix.h"
#include "src/util/sparse.h"

using namespace ape;
using namespace ape::spice;

namespace {

/// Deterministic well-conditioned test system: random-ish off-diagonals
/// from an LCG, diagonally dominant so pivoting stays cheap and no run
/// ever hits the singularity guard.
RealMatrix make_system(size_t n, std::vector<double>* rhs) {
  RealMatrix a(n, n);
  uint64_t s = 0x9e3779b97f4a7c15ull + n;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return double((s >> 33) & 0xffff) / 65536.0 - 0.5;
  };
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        a(i, j) = next();
        row += std::fabs(a(i, j));
      }
    }
    a(i, i) = row + 1.0;
  }
  if (rhs != nullptr) {
    rhs->resize(n);
    for (size_t i = 0; i < n; ++i) (*rhs)[i] = next();
  }
  return a;
}

/// Circuit-shaped sparse system: a tridiagonal ladder backbone plus one
/// long-range coupling every 8 rows (a feedback / bias net), diagonally
/// dominant. Dense random matrices are the sparse solver's worst case;
/// real MNA systems look like this instead, and this is the shape the
/// KernelPolicy crossover defaults were measured on.
RealMatrix make_ladder_system(size_t n, std::vector<double>* rhs) {
  RealMatrix a(n, n);
  uint64_t s = 0xc6a4a7935bd1e995ull + n;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return double((s >> 33) & 0xffff) / 65536.0 + 0.25;  // in [0.25, 1.25)
  };
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    auto couple = [&](size_t j) {
      const double v = next();
      a(i, j) = -v;
      row += v;
    };
    if (i > 0) couple(i - 1);
    if (i + 1 < n) couple(i + 1);
    if (i >= 8 && i % 8 == 0) couple(i - 8);
    a(i, i) = row + 1.0;
  }
  if (rhs != nullptr) {
    rhs->resize(n);
    for (size_t i = 0; i < n; ++i) (*rhs)[i] = next();
  }
  return a;
}

/// CSR pattern + value vector of a fully-assembled matrix (every stored
/// nonzero becomes a structural slot).
SparsePattern pattern_of(const RealMatrix& a, std::vector<double>* vals) {
  const size_t n = a.rows();
  SparsePattern p(static_cast<int>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (a(i, j) != 0.0) p.add(static_cast<int>(i), static_cast<int>(j));
    }
  }
  p.finalize();
  vals->resize(p.nnz());
  for (size_t i = 0; i < n; ++i) {
    for (int s = p.row_ptr()[i]; s < p.row_ptr()[i + 1]; ++s) {
      (*vals)[static_cast<size_t>(s)] = a(i, static_cast<size_t>(p.cols()[s]));
    }
  }
  return p;
}

/// RC ladder with an AC stimulus: pure linear circuit whose AC sweep is
/// the fused-assembly showcase; at 120+ stages it is also the shape the
/// sparse kernel path exists for (dim > sparse_min_dim, density ~0.02).
Circuit make_rc_ladder(int stages) {
  Circuit ckt("ladder");
  Waveform w;
  w.ac_mag = 1.0;
  ckt.add<VSource>("vin", ckt.node("n0"), kGround, w);
  for (int i = 0; i < stages; ++i) {
    const std::string a = "n" + std::to_string(i);
    const std::string b = "n" + std::to_string(i + 1);
    ckt.add<Resistor>("r" + std::to_string(i), ckt.node(a), ckt.node(b), 1e3);
    ckt.add<Capacitor>("c" + std::to_string(i), ckt.node(b), kGround, 1e-9);
  }
  return ckt;
}

}  // namespace

/// Old path: construct a fresh factorization (heap allocation) per solve.
static void BM_LuSerial_Alloc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  for (auto _ : state) {
    LuSolver<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSerial_Alloc)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Kernel path: one workspace, in-place factorize + solve_into.
static void BM_LuSerial_Workspace(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    lu.factorize(a);
    lu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSerial_Workspace)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// Sparse kernel path on a circuit-shaped system: symbolic factorization
/// reused, numeric refactorization + solve per iteration (the Newton /
/// AC-sweep steady state).
static void BM_SparseLu_Refactor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_ladder_system(n, &b);
  std::vector<double> vals;
  const SparsePattern p = pattern_of(a, &vals);
  SparseLuReal slu;
  slu.factorize(p, vals);  // symbolic analysis paid once, outside the loop
  std::vector<double> x(n);
  for (auto _ : state) {
    slu.factorize(p, vals);
    slu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseLu_Refactor)->Arg(64)->Arg(128)->Arg(256);

/// Dense reference for BM_SparseLu_Refactor on the same ladder systems.
static void BM_DenseLu_Ladder(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_ladder_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    lu.factorize(a);
    lu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseLu_Ladder)->Arg(64)->Arg(128)->Arg(256);

/// Serial scheduling: re-factorize for every one of 16 right-hand sides.
static void BM_LuBatch16_Refactor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    for (int k = 0; k < 16; ++k) {
      lu.factorize(a);
      lu.solve_into(b, x);
      benchmark::DoNotOptimize(x.data());
    }
  }
}
BENCHMARK(BM_LuBatch16_Refactor)->Arg(4)->Arg(16)->Arg(64);

/// Batch scheduling: factorize once, stream 16 right-hand sides through
/// solve_into (the noise-analysis / AWE shape).
static void BM_LuBatch16_Reuse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    lu.factorize(a);
    for (int k = 0; k < 16; ++k) {
      lu.solve_into(b, x);
      benchmark::DoNotOptimize(x.data());
    }
  }
}
BENCHMARK(BM_LuBatch16_Reuse)->Arg(4)->Arg(16)->Arg(64);

/// Legacy AC point: full virtual restamp + gmin diagonal + fresh solver.
static void BM_AcPoint_Virtual(benchmark::State& state) {
  Circuit ckt = make_rc_ladder(10);
  (void)dc_operating_point(ckt);
  MnaComplex mna(ckt.dim());
  double omega = 1e3;
  for (auto _ : state) {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_ac(mna, omega);
    for (size_t i = 0; i < ckt.num_nodes(); ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), {1e-12, 0.0});
    }
    LuSolver<std::complex<double>> lu(mna.matrix());
    benchmark::DoNotOptimize(lu.solve(mna.rhs()));
    omega *= 1.001;
  }
}
BENCHMARK(BM_AcPoint_Virtual);

/// Kernel AC point: fused G + jwC fill + in-place factorize/solve.
static void BM_AcPoint_Fused(benchmark::State& state) {
  Circuit ckt = make_rc_ladder(10);
  (void)dc_operating_point(ckt);
  AcKernel kern(ckt);
  std::vector<std::complex<double>> x(kern.dim());
  double omega = 1e3;
  for (auto _ : state) {
    kern.assemble(omega);
    kern.solve_into(x);
    benchmark::DoNotOptimize(x.data());
    omega *= 1.001;
  }
}
BENCHMARK(BM_AcPoint_Fused);

/// Sparse AC point on a 120-stage ladder (dim 122): SoA slot assembly +
/// complex sparse refactorization, the vectorized-sweep steady state.
static void BM_AcPoint_SparseLadder(benchmark::State& state) {
  Circuit ckt = make_rc_ladder(120);
  (void)dc_operating_point(ckt);
  AcKernel kern(ckt);  // Auto policy picks sparse at this dim/density
  std::vector<std::complex<double>> x(kern.dim());
  double omega = 1e3;
  for (auto _ : state) {
    kern.assemble(omega);
    kern.solve_into(x);
    benchmark::DoNotOptimize(x.data());
    omega *= 1.001;
  }
}
BENCHMARK(BM_AcPoint_SparseLadder);

// ---------------------------------------------------------------------------
// Machine-readable trajectory file.

namespace {

double time_ns_per_op(int iters, const std::function<void()>& op) {
  // One warmup pass, then the best of three timed repetitions.
  op();
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) op();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
    if (ns < best) best = ns;
  }
  return best;
}

/// Iteration budget per system size; `quick` shrinks it ~10x for the CI
/// smoke job (still best-of-three, so the gate metrics stay usable).
int iters_for(size_t n, bool quick) {
  int iters;
  if (n <= 16) iters = 20000;
  else if (n <= 48) iters = 2000;
  else if (n <= 96) iters = 500;
  else if (n <= 128) iters = 100;
  else iters = 16;
  if (quick) iters = iters / 10 > 3 ? iters / 10 : 3;
  return iters;
}

/// One row of the sparse-vs-dense crossover table.
struct CrossoverRow {
  size_t n = 0;
  double dense_ns = 0.0;            ///< dense refactor + solve
  double sparse_ns = 0.0;           ///< sparse refactor + solve (symbolic reused)
  double sparse_symbolic_ns = 0.0;  ///< one-time order-and-factor cost
  size_t nnz = 0;
  size_t fill_in = 0;
  double density = 0.0;
};

CrossoverRow time_crossover(size_t n, bool quick) {
  CrossoverRow row;
  row.n = n;
  std::vector<double> b;
  const RealMatrix a = make_ladder_system(n, &b);
  std::vector<double> vals;
  const SparsePattern p = pattern_of(a, &vals);
  row.nnz = p.nnz();
  row.density = p.density();

  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  const int iters = iters_for(n, quick);
  row.dense_ns = time_ns_per_op(iters, [&] {
    lu.factorize(a);
    lu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  });

  // One-time symbolic cost: fresh solver, full order-and-factor.
  row.sparse_symbolic_ns = time_ns_per_op(quick ? 20 : 200, [&] {
    SparseLuReal fresh;
    fresh.factorize(p, vals);
    benchmark::DoNotOptimize(&fresh);
  });

  // Steady state: symbolic reused, numeric refactorization + solve.
  SparseLuReal slu;
  slu.factorize(p, vals);
  row.fill_in = slu.stats().fill_in;
  row.sparse_ns = time_ns_per_op(iters, [&] {
    slu.factorize(p, vals);
    slu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  });
  return row;
}

int write_json(bool quick) {
  std::FILE* f = std::fopen("BENCH_spice_kernel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_spice_kernel.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"meta\": %s,\n", bench::meta_json().c_str());

  const size_t sizes[] = {4, 8, 16, 32, 64, 128, 256};
  std::fprintf(f, "  \"lu\": [\n");
  bool first = true;
  for (size_t n : sizes) {
    std::vector<double> b;
    const RealMatrix a = make_system(n, &b);
    LuSolver<double> ws;
    ws.reserve(n);
    std::vector<double> x(n);
    const int iters = iters_for(n, quick);
    const double alloc_ns = time_ns_per_op(iters, [&] {
      LuSolver<double> lu(a);
      benchmark::DoNotOptimize(lu.solve(b));
    });
    const double workspace_ns = time_ns_per_op(iters, [&] {
      ws.factorize(a);
      ws.solve_into(b, x);
      benchmark::DoNotOptimize(x.data());
    });
    const int biters = iters / 8 > 3 ? iters / 8 : 3;
    const double batch_reuse_ns = time_ns_per_op(biters, [&] {
      ws.factorize(a);
      for (int k = 0; k < 16; ++k) {
        ws.solve_into(b, x);
        benchmark::DoNotOptimize(x.data());
      }
    });
    const double batch_refactor_ns = time_ns_per_op(biters, [&] {
      for (int k = 0; k < 16; ++k) {
        ws.factorize(a);
        ws.solve_into(b, x);
        benchmark::DoNotOptimize(x.data());
      }
    });
    std::fprintf(f,
                 "%s    {\"n\": %zu, \"alloc_ns\": %.1f, \"workspace_ns\": %.1f,"
                 " \"batch16_reuse_ns\": %.1f, \"batch16_refactor_ns\": %.1f}",
                 first ? "" : ",\n", n, alloc_ns, workspace_ns, batch_reuse_ns,
                 batch_refactor_ns);
    first = false;
  }
  std::fprintf(f, "\n  ],\n");

  // Sparse-vs-dense crossover on circuit-shaped (ladder/banded) systems:
  // the empirical basis of KernelPolicy's Auto heuristic. The steady
  // state compared is one numeric (re)factorization + solve per path;
  // the one-time symbolic cost is recorded separately.
  const size_t xsizes[] = {8, 16, 32, 48, 64, 96, 128, 256};
  std::printf("\n-- sparse vs dense crossover (ladder systems) --\n");
  std::printf("%6s %12s %12s %14s %8s %8s\n", "n", "dense_ns", "sparse_ns",
              "symbolic_ns", "nnz", "fill");
  std::fprintf(f, "  \"crossover\": [\n");
  double dense_n64 = 0.0, sparse_n64 = 0.0, sparse_n256 = 0.0;
  size_t crossover_n = 0;
  first = true;
  for (size_t n : xsizes) {
    const CrossoverRow r = time_crossover(n, quick);
    std::printf("%6zu %12.1f %12.1f %14.1f %8zu %8zu\n", r.n, r.dense_ns,
                r.sparse_ns, r.sparse_symbolic_ns, r.nnz, r.fill_in);
    if (crossover_n == 0 && r.sparse_ns < r.dense_ns) crossover_n = n;
    if (n == 64) {
      dense_n64 = r.dense_ns;
      sparse_n64 = r.sparse_ns;
    }
    if (n == 256) sparse_n256 = r.sparse_ns;
    std::fprintf(f,
                 "%s    {\"n\": %zu, \"dense_ns\": %.1f, \"sparse_ns\": %.1f,"
                 " \"sparse_symbolic_ns\": %.1f, \"nnz\": %zu,"
                 " \"fill_in\": %zu, \"density\": %.4f, \"sparse_wins\": %s}",
                 first ? "" : ",\n", r.n, r.dense_ns, r.sparse_ns,
                 r.sparse_symbolic_ns, r.nnz, r.fill_in, r.density,
                 r.sparse_ns < r.dense_ns ? "true" : "false");
    first = false;
  }
  std::fprintf(f, "\n  ],\n");
  std::printf("crossover: sparse wins from n=%zu; n=64 speedup %.2fx\n",
              crossover_n, sparse_n64 > 0.0 ? dense_n64 / sparse_n64 : 0.0);

  // Top-level scalars for the check_bench regression gate (both paths).
  std::fprintf(f, "  \"dense_n64_ns\": %.1f,\n", dense_n64);
  std::fprintf(f, "  \"sparse_n64_ns\": %.1f,\n", sparse_n64);
  std::fprintf(f, "  \"sparse_n256_ns\": %.1f,\n", sparse_n256);
  std::fprintf(f, "  \"sparse_speedup_n64\": %.2f,\n",
               sparse_n64 > 0.0 ? dense_n64 / sparse_n64 : 0.0);
  std::fprintf(f, "  \"crossover_n\": %zu,\n", crossover_n);

  // AC assembly comparison + the allocation audit on a real sweep (small
  // ladder: dense fused path).
  Circuit ckt = make_rc_ladder(10);
  (void)dc_operating_point(ckt);
  KernelStats ks;
  (void)ac_analysis(ckt, 1.0, 1e6, 40, &ks);
  AcKernel kern(ckt);
  std::vector<std::complex<double>> xc(kern.dim());
  const int ac_iters = quick ? 500 : 5000;
  const double fused_ns = time_ns_per_op(ac_iters, [&] {
    kern.assemble(1e4);
    kern.solve_into(xc);
    benchmark::DoNotOptimize(xc.data());
  });
  MnaComplex mna(ckt.dim());
  const double virt_ns = time_ns_per_op(ac_iters, [&] {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_ac(mna, 1e4);
    for (size_t i = 0; i < ckt.num_nodes(); ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), {1e-12, 0.0});
    }
    LuSolver<std::complex<double>> lu(mna.matrix());
    benchmark::DoNotOptimize(lu.solve(mna.rhs()));
  });
  std::fprintf(f,
               "  \"ac_point\": {\"dim\": %zu, \"fused_ns\": %.1f, "
               "\"virtual_ns\": %.1f},\n",
               kern.dim(), fused_ns, virt_ns);
  std::fprintf(f,
               "  \"ac_sweep_audit\": {\"points_fused\": %ld, "
               "\"points_virtual\": %ld, \"factorizations\": %ld, "
               "\"workspace_bytes\": %zu, \"workspace_regrowths\": %ld},\n",
               ks.ac_points_fused, ks.ac_points_virtual, ks.factorizations,
               ks.workspace_bytes, ks.workspace_regrowths);

  // Sparse sweep audits on a 120-stage ladder (dim 122): the Auto policy
  // must engage the sparse path on its own, the symbolic factorization
  // must be reused across every Newton iteration / AC point, no solve
  // may fall back to dense, and the steady-state loops must stay
  // allocation-free (workspace_regrowths == 0) — the committed JSON is
  // the acceptance record for all four claims.
  Circuit big = make_rc_ladder(120);
  ConvergenceReport rep;
  DcOptions dopts;
  dopts.report = &rep;
  (void)dc_operating_point(big, dopts);
  const KernelStats& dks = rep.kernel;
  std::fprintf(f,
               "  \"sparse_dc_audit\": {\"dim\": %zu, "
               "\"symbolic_analyses\": %ld, \"symbolic_reuses\": %ld, "
               "\"numeric_refactors\": %ld, \"sparse_fallbacks\": %ld, "
               "\"dense_factorizations\": %ld, \"nnz\": %zu, "
               "\"fill_in\": %zu, \"workspace_regrowths\": %ld},\n",
               big.dim(), dks.symbolic_analyses, dks.symbolic_reuses,
               dks.numeric_refactors, dks.sparse_fallbacks, dks.factorizations,
               dks.sparse_nnz, dks.sparse_fill_in, dks.workspace_regrowths);
  KernelStats aks;
  (void)ac_analysis(big, 1.0, 1e6, quick ? 10 : 40, &aks);
  std::fprintf(f,
               "  \"sparse_ac_audit\": {\"dim\": %zu, \"points_fused\": %ld, "
               "\"symbolic_analyses\": %ld, \"symbolic_reuses\": %ld, "
               "\"numeric_refactors\": %ld, \"sparse_fallbacks\": %ld, "
               "\"dense_factorizations\": %ld, \"nnz\": %zu, "
               "\"fill_in\": %zu, \"workspace_regrowths\": %ld}\n}\n",
               big.dim(), aks.ac_points_fused, aks.symbolic_analyses,
               aks.symbolic_reuses, aks.numeric_refactors, aks.sparse_fallbacks,
               aks.factorizations, aks.sparse_nnz, aks.sparse_fill_in,
               aks.workspace_regrowths);
  std::fclose(f);
  std::printf("sparse dc audit: analyses=%ld reuses=%ld refactors=%ld "
              "fallbacks=%ld regrowths=%ld\n",
              dks.symbolic_analyses, dks.symbolic_reuses,
              dks.numeric_refactors, dks.sparse_fallbacks,
              dks.workspace_regrowths);
  std::printf("wrote BENCH_spice_kernel.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      for (int k = i; k + 1 < argc; ++k) argv[k] = argv[k + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (!quick) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_json(quick);
}
