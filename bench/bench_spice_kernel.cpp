/// Micro-benchmark for the compiled MNA kernel (src/spice/kernel.h):
///
///  - in-place LU workspaces (factorize/solve_into) vs the old
///    allocate-a-solver-per-iteration path, over system sizes 4..64;
///  - serial (re-factorize per RHS) vs batch (one factorization, many
///    RHS) solve scheduling, the shape the AC/noise sweeps and the AWE
///    moment recursion use;
///  - fused G + jwC assembly vs legacy per-point virtual restamping.
///
/// After the google-benchmark run, main() re-times the LU shapes with a
/// steady clock and writes machine-readable BENCH_spice_kernel.json
/// (ns/op per size plus a KernelStats allocation audit) for the
/// committed performance trajectory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/kernel.h"
#include "src/util/matrix.h"

using namespace ape;
using namespace ape::spice;

namespace {

/// Deterministic well-conditioned test system: random-ish off-diagonals
/// from an LCG, diagonally dominant so pivoting stays cheap and no run
/// ever hits the singularity guard.
RealMatrix make_system(size_t n, std::vector<double>* rhs) {
  RealMatrix a(n, n);
  uint64_t s = 0x9e3779b97f4a7c15ull + n;
  auto next = [&s]() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return double((s >> 33) & 0xffff) / 65536.0 - 0.5;
  };
  for (size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        a(i, j) = next();
        row += std::fabs(a(i, j));
      }
    }
    a(i, i) = row + 1.0;
  }
  if (rhs != nullptr) {
    rhs->resize(n);
    for (size_t i = 0; i < n; ++i) (*rhs)[i] = next();
  }
  return a;
}

/// RC ladder with an AC stimulus: pure linear circuit whose AC sweep is
/// the fused-assembly showcase.
Circuit make_rc_ladder(int stages) {
  Circuit ckt("ladder");
  Waveform w;
  w.ac_mag = 1.0;
  ckt.add<VSource>("vin", ckt.node("n0"), kGround, w);
  for (int i = 0; i < stages; ++i) {
    const std::string a = "n" + std::to_string(i);
    const std::string b = "n" + std::to_string(i + 1);
    ckt.add<Resistor>("r" + std::to_string(i), ckt.node(a), ckt.node(b), 1e3);
    ckt.add<Capacitor>("c" + std::to_string(i), ckt.node(b), kGround, 1e-9);
  }
  return ckt;
}

}  // namespace

/// Old path: construct a fresh factorization (heap allocation) per solve.
static void BM_LuSerial_Alloc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  for (auto _ : state) {
    LuSolver<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSerial_Alloc)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Kernel path: one workspace, in-place factorize + solve_into.
static void BM_LuSerial_Workspace(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    lu.factorize(a);
    lu.solve_into(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_LuSerial_Workspace)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

/// Serial scheduling: re-factorize for every one of 16 right-hand sides.
static void BM_LuBatch16_Refactor(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    for (int k = 0; k < 16; ++k) {
      lu.factorize(a);
      lu.solve_into(b, x);
      benchmark::DoNotOptimize(x.data());
    }
  }
}
BENCHMARK(BM_LuBatch16_Refactor)->Arg(4)->Arg(16)->Arg(64);

/// Batch scheduling: factorize once, stream 16 right-hand sides through
/// solve_into (the noise-analysis / AWE shape).
static void BM_LuBatch16_Reuse(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> b;
  const RealMatrix a = make_system(n, &b);
  LuSolver<double> lu;
  lu.reserve(n);
  std::vector<double> x(n);
  for (auto _ : state) {
    lu.factorize(a);
    for (int k = 0; k < 16; ++k) {
      lu.solve_into(b, x);
      benchmark::DoNotOptimize(x.data());
    }
  }
}
BENCHMARK(BM_LuBatch16_Reuse)->Arg(4)->Arg(16)->Arg(64);

/// Legacy AC point: full virtual restamp + gmin diagonal + fresh solver.
static void BM_AcPoint_Virtual(benchmark::State& state) {
  Circuit ckt = make_rc_ladder(10);
  (void)dc_operating_point(ckt);
  MnaComplex mna(ckt.dim());
  double omega = 1e3;
  for (auto _ : state) {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_ac(mna, omega);
    for (size_t i = 0; i < ckt.num_nodes(); ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), {1e-12, 0.0});
    }
    LuSolver<std::complex<double>> lu(mna.matrix());
    benchmark::DoNotOptimize(lu.solve(mna.rhs()));
    omega *= 1.001;
  }
}
BENCHMARK(BM_AcPoint_Virtual);

/// Kernel AC point: fused G + jwC fill + in-place factorize/solve.
static void BM_AcPoint_Fused(benchmark::State& state) {
  Circuit ckt = make_rc_ladder(10);
  (void)dc_operating_point(ckt);
  AcKernel kern(ckt);
  std::vector<std::complex<double>> x(kern.dim());
  double omega = 1e3;
  for (auto _ : state) {
    kern.assemble(omega);
    kern.solve_into(x);
    benchmark::DoNotOptimize(x.data());
    omega *= 1.001;
  }
}
BENCHMARK(BM_AcPoint_Fused);

// ---------------------------------------------------------------------------
// Machine-readable trajectory file.

namespace {

double time_ns_per_op(int iters, const std::function<void()>& op) {
  // One warmup pass, then the best of three timed repetitions.
  op();
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) op();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / iters;
    if (ns < best) best = ns;
  }
  return best;
}

int write_json() {
  const size_t sizes[] = {4, 8, 16, 32, 64};
  std::FILE* f = std::fopen("BENCH_spice_kernel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_spice_kernel.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"lu\": [\n");
  bool first = true;
  for (size_t n : sizes) {
    std::vector<double> b;
    const RealMatrix a = make_system(n, &b);
    LuSolver<double> ws;
    ws.reserve(n);
    std::vector<double> x(n);
    const int iters = n >= 32 ? 2000 : 20000;
    const double alloc_ns = time_ns_per_op(iters, [&] {
      LuSolver<double> lu(a);
      benchmark::DoNotOptimize(lu.solve(b));
    });
    const double workspace_ns = time_ns_per_op(iters, [&] {
      ws.factorize(a);
      ws.solve_into(b, x);
      benchmark::DoNotOptimize(x.data());
    });
    const double batch_reuse_ns = time_ns_per_op(iters, [&] {
      ws.factorize(a);
      for (int k = 0; k < 16; ++k) {
        ws.solve_into(b, x);
        benchmark::DoNotOptimize(x.data());
      }
    });
    const double batch_refactor_ns = time_ns_per_op(iters, [&] {
      for (int k = 0; k < 16; ++k) {
        ws.factorize(a);
        ws.solve_into(b, x);
        benchmark::DoNotOptimize(x.data());
      }
    });
    std::fprintf(f,
                 "%s    {\"n\": %zu, \"alloc_ns\": %.1f, \"workspace_ns\": %.1f,"
                 " \"batch16_reuse_ns\": %.1f, \"batch16_refactor_ns\": %.1f}",
                 first ? "" : ",\n", n, alloc_ns, workspace_ns, batch_reuse_ns,
                 batch_refactor_ns);
    first = false;
  }
  std::fprintf(f, "\n  ],\n");

  // AC assembly comparison + the allocation audit on a real sweep.
  Circuit ckt = make_rc_ladder(10);
  (void)dc_operating_point(ckt);
  KernelStats ks;
  (void)ac_analysis(ckt, 1.0, 1e6, 40, &ks);
  AcKernel kern(ckt);
  std::vector<std::complex<double>> xc(kern.dim());
  const double fused_ns = time_ns_per_op(5000, [&] {
    kern.assemble(1e4);
    kern.solve_into(xc);
    benchmark::DoNotOptimize(xc.data());
  });
  MnaComplex mna(ckt.dim());
  const double virt_ns = time_ns_per_op(5000, [&] {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_ac(mna, 1e4);
    for (size_t i = 0; i < ckt.num_nodes(); ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), {1e-12, 0.0});
    }
    LuSolver<std::complex<double>> lu(mna.matrix());
    benchmark::DoNotOptimize(lu.solve(mna.rhs()));
  });
  std::fprintf(f,
               "  \"ac_point\": {\"dim\": %zu, \"fused_ns\": %.1f, "
               "\"virtual_ns\": %.1f},\n",
               kern.dim(), fused_ns, virt_ns);
  std::fprintf(f,
               "  \"ac_sweep_audit\": {\"points_fused\": %ld, "
               "\"points_virtual\": %ld, \"factorizations\": %ld, "
               "\"workspace_bytes\": %zu, \"workspace_regrowths\": %ld}\n}\n",
               ks.ac_points_fused, ks.ac_points_virtual, ks.factorizations,
               ks.workspace_bytes, ks.workspace_regrowths);
  std::fclose(f);
  std::printf("wrote BENCH_spice_kernel.json\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_json();
}
