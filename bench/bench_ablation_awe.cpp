/// Ablation: AWE reduced-order evaluation vs the full complex-MNA AC
/// sweep, on a sized opamp's open-loop response. ASTRX/OBLX ran AWE
/// inside its annealing loop precisely for this speed/accuracy tradeoff;
/// this bench quantifies it on our substrate.
///
/// Output: DC gain / UGF from each method, relative error, and timing.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/estimator/opamp.h"
#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/spice/devices.h"
#include "src/synth/awe.h"

using namespace ape;
using namespace ape::est;

int main() {
  const Process proc = Process::default_1u2();
  const OpAmpEstimator oe(proc);
  OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  const OpAmpDesign d = oe.estimate(spec);
  const Testbench tb = d.testbench(proc, OpAmpTb::OpenLoop);

  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  (void)spice::dc_operating_point(ckt);

  // The open-loop testbench biases through a huge inductor + capacitor;
  // exclude them from the AWE linearization so the s = 0 expansion sees
  // the open loop (the AC sweep is immune - the loop is already open at
  // every swept frequency).
  std::vector<std::string> bias_trick;
  for (const auto& dev : ckt.devices()) {
    if (const auto* l = dynamic_cast<const spice::Inductor*>(dev.get())) {
      if (l->inductance() >= 1.0) bias_trick.push_back(l->name());
    }
    if (const auto* c = dynamic_cast<const spice::Capacitor*>(dev.get())) {
      if (c->capacitance() >= 0.1) bias_trick.push_back(c->name());
    }
  }

  // Reference: full AC sweep.
  const auto t0 = std::chrono::steady_clock::now();
  const int kReps = 50;
  double ref_gain = 0.0, ref_ugf = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto ac = spice::ac_analysis(ckt, 1.0, 1e9, 20);
    const spice::Bode bode(ac, ckt.find_node("out"));
    ref_gain = bode.dc_gain();
    ref_ugf = bode.unity_gain_freq().value_or(0.0);
  }
  const double t_ac =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count() /
      kReps;

  std::printf("Ablation: AWE model order vs full AC sweep (opamp open loop)\n\n");
  std::printf("full AC sweep : gain=%.1f  UGF=%.3f MHz  time=%.3f ms (reference)\n\n",
              ref_gain, ref_ugf / 1e6, t_ac * 1e3);
  std::printf("%-6s | %10s %10s | %9s %9s | %9s %8s\n", "order", "gain",
              "UGF(MHz)", "gain err", "UGF err", "time(ms)", "speed-up");
  bench::rule(80);

  for (int q = 1; q <= 6; ++q) {
    try {
      const auto t1 = std::chrono::steady_clock::now();
      synth::AweModel model;
      for (int rep = 0; rep < kReps; ++rep) {
        model = synth::awe_reduce(ckt, "out", q, bias_trick, {{"vm", 1.0}});
      }
      const double t_awe =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
              .count() /
          kReps;
      const double gain = std::fabs(model.dc_gain());
      const double ugf = model.unity_gain_freq();
      std::printf("q = %-2d | %10.1f %10.3f | %8.2f%% %8.2f%% | %9.4f %7.1fx\n",
                  q, gain, ugf / 1e6,
                  ref_gain != 0.0 ? 100.0 * (gain - ref_gain) / ref_gain : 0.0,
                  ref_ugf != 0.0 ? 100.0 * (ugf - ref_ugf) / ref_ugf : 0.0,
                  t_awe * 1e3, t_ac / std::max(t_awe, 1e-12));
    } catch (const std::exception& e) {
      std::printf("q = %-2d | FAILED: %s\n", q, e.what());
    }
  }
  bench::rule(80);
  std::printf(
      "\nExpected shape: q=1 nails the DC gain and the dominant pole (UGF\n"
      "within a few %%); q=2-4 converge on the full sweep at a fraction of\n"
      "its cost - the economics that made AWE viable inside annealing.\n");
  return 0;
}
