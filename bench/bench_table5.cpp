/// Reproduces paper Table 5: "Design examples" - five analog modules
/// (sample & hold, audio amplifier, 4-bit flash ADC, 4th-order Sallen-Key
/// low-pass, band-pass biquad), each through four columns:
///   (4) ASTRX-alone simulation  - blind module synthesis, verified
///   (5) APE estimate            - the hierarchical estimator's numbers
///   (6) APE simulation          - APE's sized design, verified
///   (7) APE + A/O simulation    - annealer seeded at APE, verified
/// Figure 3's schematics exist here as the modules' generated netlists
/// (device/node counts printed; examples/ dumps the full text).
///
/// Usage: bench_table5 [blind_iterations] [seeded_iterations]
///        (defaults 6000 / 2500)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "src/synth/astrx.h"

using namespace ape;
using namespace ape::bench;

namespace {

struct Cols {
  std::string gain, bw, f3db, f20db, f0, delay, sr, area, cpu;
};

std::string num(double v, const char* fmt = "%.3g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

Cols cols_from_outcome(const est::ModuleSpec& spec,
                       const synth::ModuleSynthesisOutcome& o, double cpu) {
  Cols c;
  if (o.comment == "Doesn't Work") {
    c.gain = c.bw = c.f3db = c.f20db = c.f0 = c.delay = c.sr = "Doesn't Work";
    c.area = num(o.sim_area * 1e12);
    c.cpu = num(cpu, "%.2f");
    return c;
  }
  c.gain = num(std::fabs(o.sim_gain));
  c.bw = num(o.sim_bw_hz / 1e3) + "khz";
  c.f3db = num(o.sim_f3db_hz) + "hz";
  c.f20db = num(o.sim_f20db_hz) + "hz";
  c.f0 = num(o.sim_f0_hz) + "hz";
  c.delay = num(o.sim_delay_s * 1e6) + "us";
  c.sr = num(o.sim_slew / 1e6);
  c.area = num(o.sim_area * 1e12);
  c.cpu = num(cpu, "%.2f");
  (void)spec;
  return c;
}

Cols cols_from_est(const est::ModuleDesign& d) {
  Cols c;
  c.gain = num(d.perf.gain);
  c.bw = num(d.perf.bw_hz / 1e3) + "khz";
  c.f3db = num(d.perf.f3db_hz) + "hz";
  c.f20db = num(d.perf.f20db_hz) + "hz";
  c.f0 = num(d.perf.f0_hz) + "hz";
  c.delay = num(d.perf.delay_s * 1e6) + "us";
  c.sr = num(d.perf.slew / 1e6);
  c.area = num(d.perf.gate_area * 1e12);
  c.cpu = "-";
  return c;
}

void print_rows(const est::ModuleSpec& spec, const Cols& astrx, const Cols& est_c,
                const Cols& ape_sim, const Cols& seeded) {
  using MK = est::ModuleKind;
  auto row = [&](const char* param, const std::string& sp, const std::string& a,
                 const std::string& e, const std::string& s, const std::string& o) {
    std::printf("%-5s %-8s %-12s %-14s %-14s %-14s %-14s\n",
                est::to_string(spec.kind), param, sp.c_str(), a.c_str(),
                e.c_str(), s.c_str(), o.c_str());
  };
  switch (spec.kind) {
    case MK::SampleHold:
      row("gain", num(spec.gain), astrx.gain, est_c.gain, ape_sim.gain, seeded.gain);
      row("BW", num(spec.bw_hz / 1e3) + "khz", astrx.bw, est_c.bw, ape_sim.bw, seeded.bw);
      row("SR", num(spec.slew / 1e6), astrx.sr, est_c.sr, ape_sim.sr, seeded.sr);
      break;
    case MK::AudioAmp:
      row("gain", num(spec.gain), astrx.gain, est_c.gain, ape_sim.gain, seeded.gain);
      row("BW", num(spec.bw_hz / 1e3) + "khz", astrx.bw, est_c.bw, ape_sim.bw, seeded.bw);
      break;
    case MK::FlashAdc:
      row("bits", num(spec.order), "4", "4", "4", "4");
      row("delay", num(spec.delay_s * 1e6) + "us", astrx.delay, est_c.delay,
          ape_sim.delay, seeded.delay);
      break;
    case MK::LowPassFilter:
      row("f-3dB", num(spec.f0_hz) + "hz", astrx.f3db, est_c.f3db, ape_sim.f3db, seeded.f3db);
      row("f-20dB", "-", astrx.f20db, est_c.f20db, ape_sim.f20db, seeded.f20db);
      row("gain", "-", astrx.gain, est_c.gain, ape_sim.gain, seeded.gain);
      break;
    case MK::BandPassFilter:
      row("f0", num(spec.f0_hz) + "hz", astrx.f0, est_c.f0, ape_sim.f0, seeded.f0);
      row("gain", "-", astrx.gain, est_c.gain, ape_sim.gain, seeded.gain);
      row("BW", num(spec.f0_hz) + "hz", astrx.bw, est_c.bw, ape_sim.bw, seeded.bw);
      break;
    default:
      break;  // only Table-5 kinds appear in this bench
  }
  row("area", num(spec.area_budget * 1e12) + "u2", astrx.area, est_c.area,
      ape_sim.area, seeded.area);
  // (non-Table-5 kinds never reach this bench)
  row("CPU(s)", "", astrx.cpu, est_c.cpu, ape_sim.cpu, seeded.cpu);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int blind_iters = argc > 1 ? std::atoi(argv[1]) : 6000;
  const int seeded_iters = argc > 2 ? std::atoi(argv[2]) : 2500;
  const est::Process proc = est::Process::default_1u2();
  const est::ModuleEstimator me(proc);

  std::printf("Table 5: Design examples (blind ASTRX / APE est / APE sim / APE+A-O sim)\n");
  std::printf("area budgets = paper x%.0f; blind %d iters, seeded %d iters\n\n",
              kAreaScale, blind_iters, seeded_iters);
  std::printf("%-5s %-8s %-12s %-14s %-14s %-14s %-14s\n", "ckt", "param",
              "spec", "ASTRX sim", "APE est", "APE sim", "APE+A/O sim");
  rule(96);

  for (const auto& spec : table5_specs()) {
    // Column 4: blind synthesis.
    synth::SynthesisOptions blind;
    blind.use_ape_seed = false;
    blind.anneal.iterations = blind_iters;
    blind.anneal.seed = 11 + static_cast<uint64_t>(spec.kind);
    synth::ModuleSynthesisOutcome rb;
    try {
      rb = synth::synthesize_module(proc, spec, blind);
    } catch (const std::exception& e) {
      rb.comment = "Doesn't Work";
    }

    // Columns 5/6: APE estimate and its simulator verification.
    const est::ModuleDesign d = me.estimate(spec);
    synth::ModuleSynthesisOutcome ape_sim;
    try {
      synth::verify_module(proc, d, ape_sim);
      ape_sim.comment = "ok";
    } catch (const std::exception&) {
      ape_sim.comment = "Doesn't Work";
    }

    // Column 7: seeded synthesis.
    synth::SynthesisOptions seeded;
    seeded.use_ape_seed = true;
    seeded.anneal.iterations = seeded_iters;
    seeded.anneal.seed = 23 + static_cast<uint64_t>(spec.kind);
    synth::ModuleSynthesisOutcome rs;
    try {
      rs = synth::synthesize_module(proc, spec, seeded);
    } catch (const std::exception&) {
      rs.comment = "Doesn't Work";
    }

    print_rows(spec, cols_from_outcome(spec, rb, rb.cpu_seconds),
               cols_from_est(d), cols_from_outcome(spec, ape_sim, 0.0),
               cols_from_outcome(spec, rs, rs.cpu_seconds));

    // Figure 3 stand-in: the generated transistor-level netlist.
    const est::Testbench tb = d.testbench(proc);
    int devices = 0, mosfets = 0;
    for (char ch : tb.netlist) {
      if (ch == '\n') ++devices;
    }
    for (size_t i = 0; i + 1 < tb.netlist.size(); ++i) {
      if (tb.netlist[i] == '\n' &&
          (tb.netlist[i + 1] == 'M' || tb.netlist[i + 1] == 'm')) {
        ++mosfets;
      }
    }
    std::printf("   [Fig. 3 stand-in] %s netlist: %d lines, %d MOSFETs, %zu opamps\n\n",
                est::to_string(spec.kind), devices, mosfets, d.opamps.size());
  }
  rule(96);
  std::printf(
      "Shape check vs paper: blind synthesis fails or violates specs on most\n"
      "modules (the paper's LPF/BPF 'Doesn't Work', S&H/amp BW misses, ADC\n"
      "area blow-up); the APE estimate tracks its own simulation closely;\n"
      "APE+A/O produces functional, near-spec designs for every module.\n");
  return 0;
}
