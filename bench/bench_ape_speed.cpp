/// Reproduces the paper's CPU-time claim for the estimator itself:
/// "The CPU time required to execute the APE for all the ten opamps
/// combined was 0.12 seconds" and "within 0.14 seconds for all the
/// [module] examples". google-benchmark microbenches over each level of
/// the hierarchy plus the two headline batch figures.
///
/// On top of the microbenches, a serial-vs-pooled batch comparison
/// (DESIGN.md §7) drives a 32-spec synthesis batch through
/// runtime::run_opamp_batch at 1 thread and at the hardware thread
/// count, checks the two runs are bit-identical, and writes the
/// machine-readable BENCH_ape_speed.json (jobs/s, speedup, cache hit
/// rate) that seeds the performance trajectory. Skip it with
/// --no-batch when only the microbenches are wanted.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_meta.h"
#include "bench/bench_util.h"
#include "src/util/diagnostics.h"
#include "src/estimator/components.h"
#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/runtime/batch.h"
#include "src/spice/analysis.h"
#include "src/spice/parser.h"

using namespace ape;
using namespace ape::est;

static const Process& proc() {
  static const Process p = Process::default_1u2();
  return p;
}

static void BM_TransistorSizing(benchmark::State& state) {
  const TransistorEstimator xe(proc());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        xe.size_for_gm_id(spice::MosType::Nmos, 100e-6, 10e-6));
  }
}
BENCHMARK(BM_TransistorSizing);

static void BM_ComponentEstimate_DiffCmos(benchmark::State& state) {
  const ComponentEstimator ce(proc());
  ComponentSpec spec{ComponentKind::DiffCmos, 1e-6, 1000.0, 0.0, 0.5e-12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce.estimate(spec));
  }
}
BENCHMARK(BM_ComponentEstimate_DiffCmos);

static void BM_OpAmpEstimate(benchmark::State& state) {
  const OpAmpEstimator oe(proc());
  OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  spec.buffer = true;
  spec.zout = 10e3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oe.estimate(spec));
  }
}
BENCHMARK(BM_OpAmpEstimate);

/// The paper's headline: all ten Table 1 opamps end-to-end.
static void BM_ApeAllTenOpAmps(benchmark::State& state) {
  const OpAmpEstimator oe(proc());
  const auto rows = bench::table1_specs();
  for (auto _ : state) {
    for (const auto& row : rows) {
      benchmark::DoNotOptimize(oe.estimate(bench::to_spec(row)));
    }
  }
}
BENCHMARK(BM_ApeAllTenOpAmps)->Unit(benchmark::kMillisecond);

/// The paper's second headline: all five Table 5 modules.
static void BM_ApeAllFiveModules(benchmark::State& state) {
  const ModuleEstimator me(proc());
  const auto specs = bench::table5_specs();
  for (auto _ : state) {
    for (const auto& spec : specs) {
      benchmark::DoNotOptimize(me.estimate(spec));
    }
  }
}
BENCHMARK(BM_ApeAllFiveModules)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Serial vs pooled batch comparison -> BENCH_ape_speed.json.

namespace {

/// The 32-spec batch of the determinism/speedup acceptance check: the
/// ten Table-1 specs cycled with small spec perturbations so the shared
/// estimate cache sees both repeats (hits) and fresh specs (misses).
std::vector<OpAmpSpec> batch32() {
  const auto rows = bench::table1_specs();
  std::vector<OpAmpSpec> specs;
  for (size_t i = 0; i < 32; ++i) {
    OpAmpSpec s = bench::to_spec(rows[i % rows.size()]);
    if (i >= 20) s.gain *= 1.0 + 0.01 * double(i - 20);  // 12 distinct extras
    specs.push_back(s);
  }
  return specs;
}

runtime::BatchOptions batch_options(int threads,
                                    runtime::EstimateCache* cache) {
  runtime::BatchOptions o;
  o.threads = threads;
  o.seed = 99;
  o.cache = cache;
  o.synth.use_ape_seed = true;
  o.synth.anneal.iterations = 400;  // real search, batch-sized
  return o;
}

bool same_outcome(const synth::SynthesisOutcome& a,
                  const synth::SynthesisOutcome& b) {
  if (a.cost != b.cost || a.evaluations != b.evaluations ||
      a.meets_spec != b.meets_spec) {
    return false;
  }
  if (a.design.transistors.size() != b.design.transistors.size()) return false;
  for (size_t i = 0; i < a.design.transistors.size(); ++i) {
    if (a.design.transistors[i].w != b.design.transistors[i].w ||
        a.design.transistors[i].l != b.design.transistors[i].l) {
      return false;
    }
  }
  return true;
}

/// The BM_OpAmpEstimate spec, reused for the single-thread trajectory
/// metric and the compiled-kernel audit below.
OpAmpSpec headline_spec() {
  OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  spec.buffer = true;
  spec.zout = 10e3;
  return spec;
}

/// Single-thread opamp estimate-path latency in microseconds — the
/// metric the committed BENCH_ape_speed.json trajectory (and the
/// check_bench regression gate) tracks across PRs.
double time_estimate_path_us() {
  const OpAmpEstimator oe(proc());
  const OpAmpSpec spec = headline_spec();
  (void)oe.estimate(spec);  // warm caches
  // Best of five repetitions: the minimum discards scheduler noise, so
  // the committed trajectory value is stable enough for the 20% gate.
  const int iters = 200;
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) benchmark::DoNotOptimize(oe.estimate(spec));
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
    if (us < best) best = us;
  }
  return best;
}

/// Run the headline opamp's testbench through DC + AC on the compiled
/// MNA kernel and return the combined KernelStats: the workspace audit
/// (workspace_regrowths == 0 proves the Newton / AC inner loops ran
/// allocation-free after setup).
KernelStats kernel_audit() {
  const OpAmpEstimator oe(proc());
  const OpAmpDesign d = oe.estimate(headline_spec());
  spice::Circuit ckt =
      spice::parse_netlist(d.testbench(proc(), OpAmpTb::OpenLoop).netlist);
  ConvergenceReport rep;
  spice::DcOptions dopts;
  dopts.report = &rep;
  (void)spice::dc_operating_point(ckt, dopts);
  KernelStats ks = rep.kernel;
  KernelStats ac_ks;
  (void)spice::ac_analysis(ckt, 1.0, 1e8, 10, &ac_ks);
  ks.accumulate(ac_ks);
  return ks;
}

/// One serial batch run with the lint-first prove gate on or off,
/// returning the measured wall seconds.
double timed_serial_batch(const std::vector<OpAmpSpec>& specs,
                          bool lint_first) {
  runtime::EstimateCache cache;
  runtime::BatchOptions o = batch_options(1, &cache);
  o.lint_first = lint_first;
  return runtime::run_opamp_batch(proc(), specs, o).stats.wall_seconds;
}

struct ProveBench {
  long overhead_bp = 0;     ///< prove-gate cost on an all-feasible batch,
                            ///< in basis points of the no-prove wall time
  double pruning_speedup = 0.0;  ///< mixed-batch wall-clock win
  double feasible_without_s = 0.0, feasible_with_s = 0.0;
  double mixed_without_s = 0.0, mixed_with_s = 0.0;
};

/// Feasibility-prove A/B (DESIGN.md section 14). Two acceptance claims:
/// on a batch where every spec is reachable the gate must cost <5% wall
/// clock (it proves, contracts, then the anneal dominates); on a batch
/// salted with provably-infeasible specs it must win outright, because
/// refuted jobs fail in microseconds instead of annealing to nowhere.
/// check_bench gates both (absolute 500 bp / relative speedup).
ProveBench run_prove_comparison() {
  ProveBench pb;
  const auto rows = bench::table1_specs();

  // All-feasible: the ten Table-1 specs. Best-of-2 per arm discards
  // scheduler noise that would otherwise dwarf a microsecond gate.
  std::vector<OpAmpSpec> feasible;
  for (const auto& row : rows) feasible.push_back(bench::to_spec(row));
  auto best2 = [&](bool lint_first) {
    double best = 1e300;
    for (int i = 0; i < 2; ++i) {
      const double s = timed_serial_batch(feasible, lint_first);
      if (s < best) best = s;
    }
    return best;
  };
  pb.feasible_without_s = best2(false);
  pb.feasible_with_s = best2(true);
  const double overhead =
      pb.feasible_without_s > 0.0
          ? (pb.feasible_with_s - pb.feasible_without_s) / pb.feasible_without_s
          : 0.0;
  pb.overhead_bp = overhead > 0.0 ? long(overhead * 1e4 + 0.5) : 0;

  // Mixed: half the specs carry an area budget below the 8-device
  // minimum-geometry floor — provably unreachable, but the estimator
  // treats the budget as informational, so without the gate each one
  // still burns a full anneal discovering a cost plateau. Built from
  // the *unbuffered* Table-1 rows only: buffered specs are outside the
  // interval model and deliberately stay neutral (DESIGN.md section 14),
  // so salting them would prove nothing.
  std::vector<size_t> unbuffered;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!rows[i].buffer) unbuffered.push_back(i);
  }
  std::vector<OpAmpSpec> mixed;
  for (size_t i = 0; i < 12; ++i) {
    OpAmpSpec s = bench::to_spec(rows[unbuffered[i % unbuffered.size()]]);
    if (i % 2 == 1) s.area_budget = 1e-11;
    mixed.push_back(s);
  }
  pb.mixed_without_s = timed_serial_batch(mixed, false);
  pb.mixed_with_s = timed_serial_batch(mixed, true);
  pb.pruning_speedup =
      pb.mixed_with_s > 0.0 ? pb.mixed_without_s / pb.mixed_with_s : 0.0;

  std::printf("\n-- feasibility-prove gate (DESIGN.md 14) --\n");
  std::printf("all-feasible: %.2f s bare, %.2f s with prove gate (%ld bp)\n",
              pb.feasible_without_s, pb.feasible_with_s, pb.overhead_bp);
  std::printf("mixed (6 feasible + 6 refuted): %.2f s bare, %.2f s "
              "with prove gate -> %.2fx\n",
              pb.mixed_without_s, pb.mixed_with_s, pb.pruning_speedup);
  return pb;
}

struct HealthBench {
  long overhead_bp = 0;   ///< Auto-mode health cost on the headline opamp
                          ///< DC solve, in basis points of the health-off time
  double off_us = 0.0;    ///< per-solve latency, health layer disabled
  double on_us = 0.0;     ///< per-solve latency, ambient Auto mode
};

/// Numerical-health A/B (DESIGN.md section 15). The acceptance claim:
/// on the healthy headline opamp testbench, ambient Auto mode must cost
/// under 2% (200 bp) of DC-solve wall time versus a run with the layer
/// forced off — because on a well-conditioned system Auto tracks only
/// the in-loop pivot min/max (free) and never estimates or refines.
/// check_bench gates the recorded health_overhead_bp absolutely.
HealthBench run_health_comparison() {
  HealthBench hb;
  const OpAmpEstimator oe(proc());
  const OpAmpDesign d = oe.estimate(headline_spec());
  spice::Circuit ckt =
      spice::parse_netlist(d.testbench(proc(), OpAmpTb::OpenLoop).netlist);
  // Per-arm timing mirrors time_estimate_path_us: best-of-reps minimum
  // over a fixed inner loop discards scheduler noise, which would
  // otherwise dwarf a 200 bp gate on a microsecond-scale solve.
  const auto time_arm = [&](bool health_on) {
    std::optional<ScopedNumericHealthMode> off;
    if (!health_on) off.emplace(NumericHealthMode::Off);
    (void)spice::dc_operating_point(ckt, spice::DcOptions{});  // warm
    const int iters = 100;
    double best = 1e300;
    for (int rep = 0; rep < 7; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < iters; ++i) {
        benchmark::DoNotOptimize(
            spice::dc_operating_point(ckt, spice::DcOptions{}));
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(t1 - t0).count() / iters;
      if (us < best) best = us;
    }
    return best;
  };
  hb.off_us = time_arm(false);
  hb.on_us = time_arm(true);
  const double overhead =
      hb.off_us > 0.0 ? (hb.on_us - hb.off_us) / hb.off_us : 0.0;
  hb.overhead_bp = overhead > 0.0 ? long(overhead * 1e4 + 0.5) : 0;
  std::printf("\n-- numerical-health layer (DESIGN.md 15) --\n");
  std::printf(
      "headline opamp DC solve: %.1f us health-off, %.1f us health-on "
      "(%ld bp)\n",
      hb.off_us, hb.on_us, hb.overhead_bp);
  return hb;
}

int run_batch_comparison() {
  const auto specs = batch32();
  const int hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("\n-- batch mode: %zu specs, serial vs %d threads --\n",
              specs.size(), hw);
  runtime::EstimateCache serial_cache;
  const auto serial =
      runtime::run_opamp_batch(proc(), specs, batch_options(1, &serial_cache));
  runtime::EstimateCache pooled_cache;
  const auto pooled =
      runtime::run_opamp_batch(proc(), specs, batch_options(hw, &pooled_cache));

  // Per-core scaling curve: the same batch at 1, 2, 4, ... hw threads
  // (endpoints reuse the serial / pooled runs above). The curve is the
  // trajectory's answer to "where does the pool stop paying for itself"
  // — check_bench gates only the endpoints, the curve is informational.
  std::vector<int> curve_threads{1};
  for (int t = 2; t < hw; t *= 2) curve_threads.push_back(t);
  if (hw > 1) curve_threads.push_back(hw);
  std::string scaling = "[";
  for (size_t i = 0; i < curve_threads.size(); ++i) {
    const int t = curve_threads[i];
    double wall, jps;
    if (t == 1) {
      wall = serial.stats.wall_seconds;
      jps = serial.stats.jobs_per_second;
    } else if (t == hw) {
      wall = pooled.stats.wall_seconds;
      jps = pooled.stats.jobs_per_second;
    } else {
      runtime::EstimateCache cache;
      const auto r =
          runtime::run_opamp_batch(proc(), specs, batch_options(t, &cache));
      wall = r.stats.wall_seconds;
      jps = r.stats.jobs_per_second;
    }
    std::printf("scaling: %2d threads -> %.2f s (%.2f jobs/s)\n", t, wall, jps);
    char point[128];
    std::snprintf(point, sizeof point,
                  "{\"threads\": %d, \"wall_seconds\": %.6f, "
                  "\"jobs_per_second\": %.3f}",
                  t, wall, jps);
    if (i != 0) scaling += ", ";
    scaling += point;
  }
  scaling += "]";

  bool identical = serial.jobs.size() == pooled.jobs.size();
  for (size_t i = 0; identical && i < serial.jobs.size(); ++i) {
    identical = serial.jobs[i].ok == pooled.jobs[i].ok &&
                (!serial.jobs[i].ok ||
                 same_outcome(serial.jobs[i].outcome, pooled.jobs[i].outcome));
  }
  const double speedup = pooled.stats.wall_seconds > 0.0
                             ? serial.stats.wall_seconds /
                                   pooled.stats.wall_seconds
                             : 0.0;

  // A speedup measured on one hardware thread is not a speedup claim:
  // the pool run degenerates to serial-with-overhead. Record the real
  // thread count and mark the comparison invalid rather than publishing
  // a meaningless 1.0x as evidence for or against the pool.
  const bool speedup_valid = hw > 1;

  std::printf("serial: %.2f s (%.2f jobs/s)\n", serial.stats.wall_seconds,
              serial.stats.jobs_per_second);
  std::printf("pooled: %.2f s (%.2f jobs/s) on %d threads -> %.2fx\n",
              pooled.stats.wall_seconds, pooled.stats.jobs_per_second, hw,
              speedup);
  if (!speedup_valid) {
    std::printf(
        "WARNING: only 1 hardware thread available; the serial-vs-pooled "
        "comparison cannot demonstrate a speedup on this machine "
        "(parallel_speedup_valid=false in the JSON record).\n");
  }
  std::printf("deterministic match: %s, cache hit rate %.2f\n",
              identical ? "yes" : "NO", pooled.stats.cache.hit_rate());

  const double est_us = time_estimate_path_us();
  const KernelStats ks = kernel_audit();
  std::printf("estimate path: %.1f us/opamp (single thread)\n", est_us);
  std::printf("%s\n", ks.summary().c_str());

  const ProveBench pb = run_prove_comparison();
  const HealthBench hb = run_health_comparison();

  char json[8192];
  std::snprintf(
      json, sizeof json,
      "{\n"
      "  \"meta\": %s,\n"
      "  \"jobs\": %zu,\n"
      "  \"hardware_threads\": %d,\n"
      "  \"serial_seconds\": %.6f,\n"
      "  \"pooled_seconds\": %.6f,\n"
      "  \"serial_jobs_per_second\": %.3f,\n"
      "  \"pooled_jobs_per_second\": %.3f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"parallel_speedup_valid\": %s,\n"
      "  \"deterministic_match\": %s,\n"
      "  \"failed_jobs\": %d,\n"
      "  \"cache_hits\": %ld,\n"
      "  \"cache_misses\": %ld,\n"
      "  \"cache_hit_rate\": %.4f,\n"
      "  \"estimate_path_us\": %.2f,\n"
      "  \"prove_overhead_bp\": %ld,\n"
      "  \"prove_pruning_speedup\": %.3f,\n"
      "  \"prove_feasible_seconds\": [%.6f, %.6f],\n"
      "  \"prove_mixed_seconds\": [%.6f, %.6f],\n"
      "  \"health_overhead_bp\": %ld,\n"
      "  \"health_solve_us\": [%.2f, %.2f],\n"
      "  \"scaling\": %s,\n"
      "  \"kernel\": {\n"
      "    \"baseline_builds\": %ld,\n"
      "    \"baseline_restores\": %ld,\n"
      "    \"linear_stamps_skipped\": %ld,\n"
      "    \"nonlinear_stamps\": %ld,\n"
      "    \"factorizations\": %ld,\n"
      "    \"solves\": %ld,\n"
      "    \"ac_points_fused\": %ld,\n"
      "    \"ac_points_virtual\": %ld,\n"
      "    \"symbolic_analyses\": %ld,\n"
      "    \"symbolic_reuses\": %ld,\n"
      "    \"numeric_refactors\": %ld,\n"
      "    \"sparse_fallbacks\": %ld,\n"
      "    \"sparse_nnz\": %zu,\n"
      "    \"sparse_fill_in\": %zu,\n"
      "    \"workspace_bytes\": %zu,\n"
      "    \"workspace_regrowths\": %ld\n"
      "  },\n"
      "  \"batch_kernel\": {\n"
      "    \"solves\": %ld,\n"
      "    \"factorizations\": %ld,\n"
      "    \"numeric_refactors\": %ld,\n"
      "    \"symbolic_reuses\": %ld,\n"
      "    \"ac_points_fused\": %ld\n"
      "  }\n"
      "}\n",
      bench::meta_json().c_str(),
      specs.size(), hw, serial.stats.wall_seconds, pooled.stats.wall_seconds,
      serial.stats.jobs_per_second, pooled.stats.jobs_per_second, speedup,
      speedup_valid ? "true" : "false", identical ? "true" : "false",
      pooled.stats.failed,
      pooled.stats.cache.hits, pooled.stats.cache.misses,
      pooled.stats.cache.hit_rate(), est_us,
      pb.overhead_bp, pb.pruning_speedup,
      pb.feasible_without_s, pb.feasible_with_s,
      pb.mixed_without_s, pb.mixed_with_s,
      hb.overhead_bp, hb.off_us, hb.on_us, scaling.c_str(),
      ks.baseline_builds,
      ks.baseline_restores, ks.linear_stamps_skipped, ks.nonlinear_stamps,
      ks.factorizations, ks.solves, ks.ac_points_fused, ks.ac_points_virtual,
      ks.symbolic_analyses, ks.symbolic_reuses, ks.numeric_refactors,
      ks.sparse_fallbacks, ks.sparse_nnz, ks.sparse_fill_in,
      ks.workspace_bytes, ks.workspace_regrowths,
      pooled.stats.kernel.solves, pooled.stats.kernel.factorizations,
      pooled.stats.kernel.numeric_refactors,
      pooled.stats.kernel.symbolic_reuses,
      pooled.stats.kernel.ac_points_fused);
  const char* path = "BENCH_ape_speed.json";
  if (FILE* f = std::fopen(path, "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool with_batch = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-batch") == 0) {
      with_batch = false;
      for (int k = i; k + 1 < argc; ++k) argv[k] = argv[k + 1];
      --argc;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return with_batch ? run_batch_comparison() : 0;
}
