/// Reproduces the paper's CPU-time claim for the estimator itself:
/// "The CPU time required to execute the APE for all the ten opamps
/// combined was 0.12 seconds" and "within 0.14 seconds for all the
/// [module] examples". google-benchmark microbenches over each level of
/// the hierarchy plus the two headline batch figures.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/estimator/components.h"
#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"

using namespace ape;
using namespace ape::est;

static const Process& proc() {
  static const Process p = Process::default_1u2();
  return p;
}

static void BM_TransistorSizing(benchmark::State& state) {
  const TransistorEstimator xe(proc());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        xe.size_for_gm_id(spice::MosType::Nmos, 100e-6, 10e-6));
  }
}
BENCHMARK(BM_TransistorSizing);

static void BM_ComponentEstimate_DiffCmos(benchmark::State& state) {
  const ComponentEstimator ce(proc());
  ComponentSpec spec{ComponentKind::DiffCmos, 1e-6, 1000.0, 0.0, 0.5e-12};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce.estimate(spec));
  }
}
BENCHMARK(BM_ComponentEstimate_DiffCmos);

static void BM_OpAmpEstimate(benchmark::State& state) {
  const OpAmpEstimator oe(proc());
  OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  spec.buffer = true;
  spec.zout = 10e3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oe.estimate(spec));
  }
}
BENCHMARK(BM_OpAmpEstimate);

/// The paper's headline: all ten Table 1 opamps end-to-end.
static void BM_ApeAllTenOpAmps(benchmark::State& state) {
  const OpAmpEstimator oe(proc());
  const auto rows = bench::table1_specs();
  for (auto _ : state) {
    for (const auto& row : rows) {
      benchmark::DoNotOptimize(oe.estimate(bench::to_spec(row)));
    }
  }
}
BENCHMARK(BM_ApeAllTenOpAmps)->Unit(benchmark::kMillisecond);

/// The paper's second headline: all five Table 5 modules.
static void BM_ApeAllFiveModules(benchmark::State& state) {
  const ModuleEstimator me(proc());
  const auto specs = bench::table5_specs();
  for (auto _ : state) {
    for (const auto& spec : specs) {
      benchmark::DoNotOptimize(me.estimate(spec));
    }
  }
}
BENCHMARK(BM_ApeAllFiveModules)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
