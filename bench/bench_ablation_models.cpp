/// Ablation: device-model level vs estimation accuracy. The paper states
/// "the sizing accuracy is directly dependent on the transistor model
/// used" and supports LEVEL 1/2/3. This bench sizes the Table 3 opamps
/// against the LEVEL 1 card and against the LEVEL 3 card (mobility
/// degradation + velocity saturation + DIBL) and compares each
/// estimate's error against its own simulation.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/estimator/opamp.h"
#include "src/estimator/verify.h"

using namespace ape;
using namespace ape::est;

namespace {

double pct_err(double est, double sim) {
  if (sim == 0.0) return 0.0;
  return 100.0 * (est - sim) / sim;
}

void run(const char* label, const Process& proc) {
  const OpAmpEstimator oe(proc);
  struct Row {
    const char* name;
    OpAmpSpec spec;
  };
  std::vector<Row> rows = {
      {"OpAmp1", {200, 1.3e6, 1e-6, 10e-12, CurrentSourceKind::Wilson, true, 1e3, 0}},
      {"OpAmp2", {70, 3.0e6, 2e-6, 10e-12, CurrentSourceKind::Wilson, true, 1e3, 0}},
      {"OpAmp3", {100, 2.5e6, 1.5e-6, 10e-12, CurrentSourceKind::Wilson, true, 2e3, 0}},
      {"OpAmp4", {250, 8.0e6, 1e-6, 10e-12, CurrentSourceKind::Mirror, false, 0, 0}},
  };
  std::printf("%s\n", label);
  std::printf("%-7s | %9s %9s %9s %9s  (est-sim)/sim in %%\n", "circuit",
              "power", "UGF", "Itail", "gain");
  bench::rule(70);
  double worst = 0.0;
  for (const auto& row : rows) {
    try {
      const OpAmpDesign d = oe.estimate(row.spec);
      const OpAmpSimReport r = simulate_opamp(d, proc, /*with_transient=*/false);
      const double e_p = pct_err(d.perf.dc_power, r.power);
      const double e_u = pct_err(d.perf.ugf_hz, r.ugf_hz.value_or(0.0));
      const double e_i = pct_err(d.perf.ibias, r.ibias);
      const double e_g = pct_err(d.perf.gain, r.gain);
      for (double e : {e_p, e_u, e_i, e_g}) worst = std::max(worst, std::fabs(e));
      std::printf("%-7s | %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", row.name, e_p,
                  e_u, e_i, e_g);
    } catch (const std::exception& e) {
      std::printf("%-7s | FAILED: %s\n", row.name, e.what());
    }
  }
  bench::rule(70);
  std::printf("worst |error|: %.1f%%\n\n", worst);
}

}  // namespace

int main() {
  std::printf("Ablation: estimation accuracy by SPICE model level\n");
  std::printf("(each estimate is compared against a simulation that uses the SAME\n"
              " model card - errors isolate the estimator's composition equations)\n\n");
  run("LEVEL 1 (Shichman-Hodges)", Process::default_1u2());
  run("LEVEL 3 (theta/vmax/eta short-channel corrections)",
      Process::default_1u2_level3());
  run("LEVEL 4 (simplified BSIM1: vfb/k1/u0v/u1)", Process::default_1u2_bsim());
  std::printf(
      "Expected shape: LEVEL 1 stays within ~15%% across the board. LEVEL 3's\n"
      "short-channel terms (theta/vmax/eta) break the square-law composition\n"
      "assumptions harder - bias-sensitive quantities can miss badly on\n"
      "aggressive corners. That asymmetry is the paper's point: \"the sizing\n"
      "accuracy is directly dependent on the transistor model used\".\n");
  return 0;
}
