/// Corner-sweep / Monte-Carlo throughput bench -> BENCH_corners.json.
///
/// Drives the ten Table-1 specs through runtime::run_monte_carlo over
/// the full 7-corner set and records the three numbers the stat
/// subsystem's trajectory cares about:
///
///  - grid throughput (points/s) and the per-thread scaling curve
///    (1, 2, 4, ... hardware threads) — the sweep grid is
///    embarrassingly parallel, so this curve is the purest view of the
///    Executor's overhead;
///  - cache sharing across corners: every duplicate (spec, corner)
///    re-estimate after the first is a hit on the shared EstimateCache,
///    so hit_rate > 0 is a structural property of the sweep, not luck;
///  - the determinism check: the 1-thread and N-thread aggregate
///    YieldReports must serialize bit-identically (exit 1 when not —
///    the bench doubles as an acceptance gate).
///
/// Estimate-only phase A (no synthesis): the bench isolates the sweep
/// machinery itself, the anneal has its own bench in bench_ape_speed.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_meta.h"
#include "bench/bench_util.h"
#include "src/runtime/sweep.h"
#include "src/stat/corners.h"

using namespace ape;

namespace {

runtime::SweepOptions sweep_options(int threads, int mc_samples,
                                    runtime::EstimateCache* cache) {
  runtime::SweepOptions o;
  o.supervisor.batch.threads = threads;
  o.supervisor.batch.seed = 42;
  o.supervisor.batch.cache = cache;
  o.corners = stat::CornerSet::all();
  o.mc_samples = mc_samples;
  return o;
}

}  // namespace

int main() {
  const auto rows = bench::table1_specs();
  std::vector<est::OpAmpSpec> specs;
  for (const auto& row : rows) specs.push_back(bench::to_spec(row));
  const est::Process proc = est::Process::default_1u2();
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  const int mc = 32;

  std::printf("-- corner sweep: %zu specs x 7 corners x %d samples --\n",
              specs.size(), mc);

  std::vector<int> curve_threads{1};
  for (int t = 2; t < hw; t *= 2) curve_threads.push_back(t);
  if (hw > 1) curve_threads.push_back(hw);

  std::string scaling = "[";
  std::string serial_report, final_report;
  double serial_wall = 0.0, final_wall = 0.0;
  long points = 0;
  runtime::CacheStats final_cache;
  for (size_t i = 0; i < curve_threads.size(); ++i) {
    const int t = curve_threads[i];
    runtime::EstimateCache cache;
    const auto t0 = std::chrono::steady_clock::now();
    const runtime::SweepResult r =
        runtime::run_monte_carlo(proc, specs, sweep_options(t, mc, &cache));
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    points = r.aggregate.total.samples;
    const double pps = wall > 0.0 ? double(points) / wall : 0.0;
    if (t == 1) {
      serial_report = r.aggregate.to_json();
      serial_wall = wall;
    }
    if (i + 1 == curve_threads.size()) {
      final_report = r.aggregate.to_json();
      final_wall = wall;
      final_cache = r.stats.cache;
    }
    std::printf("scaling: %2d threads -> %.3f s (%.0f points/s)\n", t, wall,
                pps);
    char point[128];
    std::snprintf(point, sizeof point,
                  "{\"threads\": %d, \"wall_seconds\": %.6f, "
                  "\"points_per_second\": %.1f}",
                  t, wall, pps);
    if (i != 0) scaling += ", ";
    scaling += point;
  }
  scaling += "]";

  const bool identical = serial_report == final_report;
  std::printf("deterministic match (1 vs %d threads): %s\n", hw,
              identical ? "yes" : "NO");
  std::printf("cache: %ld hits / %ld misses (rate %.3f)\n", final_cache.hits,
              final_cache.misses, final_cache.hit_rate());
  const double speedup = final_wall > 0.0 ? serial_wall / final_wall : 0.0;

  char json[4096];
  std::snprintf(json, sizeof json,
                "{\n"
                "  \"meta\": %s,\n"
                "  \"specs\": %zu,\n"
                "  \"corners\": 7,\n"
                "  \"mc_samples\": %d,\n"
                "  \"grid_points\": %ld,\n"
                "  \"hardware_threads\": %d,\n"
                "  \"serial_seconds\": %.6f,\n"
                "  \"pooled_seconds\": %.6f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"parallel_speedup_valid\": %s,\n"
                "  \"deterministic_match\": %s,\n"
                "  \"cache_hits\": %ld,\n"
                "  \"cache_misses\": %ld,\n"
                "  \"cache_hit_rate\": %.4f,\n"
                "  \"scaling\": %s,\n"
                "  \"aggregate\": %s\n"
                "}\n",
                ape::bench::meta_json().c_str(),
                specs.size(), mc, points, hw, serial_wall, final_wall, speedup,
                hw > 1 ? "true" : "false", identical ? "true" : "false",
                final_cache.hits, final_cache.misses, final_cache.hit_rate(),
                scaling.c_str(), final_report.c_str());
  const char* path = "BENCH_corners.json";
  if (FILE* f = std::fopen(path, "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  return identical ? 0 : 1;
}
