#pragma once
/// Provenance stamp for the committed BENCH_*.json trajectory files:
/// every record carries the git SHA and compiler it was produced with
/// (injected by bench/CMakeLists.txt at configure time) plus the UTC
/// date of the run, so a regression flagged by check_bench can always
/// be traced to the exact build that recorded the baseline.

#include <cstdio>
#include <ctime>
#include <string>

#ifndef APE_BENCH_GIT_SHA
#define APE_BENCH_GIT_SHA "unknown"
#endif
#ifndef APE_BENCH_COMPILER
#define APE_BENCH_COMPILER "unknown"
#endif

namespace ape::bench {

/// The "meta" JSON object: {"git_sha": ..., "date": ..., "compiler": ...}.
inline std::string meta_json() {
  const std::time_t now = std::time(nullptr);
  char date[32] = "unknown";
  if (const std::tm* tm = std::gmtime(&now)) {
    std::strftime(date, sizeof date, "%Y-%m-%d", tm);
  }
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"git_sha\": \"%s\", \"date\": \"%s\", \"compiler\": \"%s\"}",
                APE_BENCH_GIT_SHA, date, APE_BENCH_COMPILER);
  return buf;
}

}  // namespace ape::bench
