#pragma once
/// Shared helpers for the table-reproduction benches: fixed-width row
/// printing and the paper's opamp/module spec sets.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"

namespace ape::bench {

inline void rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline std::string opt_str(std::optional<double> v, double scale,
                           const char* fmt = "%.2f") {
  if (!v) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, *v * scale);
  return buf;
}

/// The paper's Table 1 opamp specification set (oa0..oa9).
/// Area budgets are scaled by `kAreaScale` relative to the printed paper
/// values: the paper's (unpublished) process packs the same gm into less
/// gate area than our representative card; one global factor preserves
/// which constraints bind. See EXPERIMENTS.md.
inline constexpr double kAreaScale = 4.0;

struct PaperOpAmpRow {
  const char* name;
  double gain, ugf_hz, area_um2, ibias;
  est::CurrentSourceKind source;
  bool buffer;
  double zout;   // 0 when unbuffered
  double cl;
};

inline std::vector<PaperOpAmpRow> table1_specs() {
  using K = est::CurrentSourceKind;
  return {
      {"oa0", 200, 1.3e6, 5000, 1.0e-6, K::Wilson, true, 1e3, 10e-12},
      {"oa1", 70, 3.0e6, 3000, 2.0e-6, K::Wilson, true, 1e3, 10e-12},
      {"oa2", 100, 2.5e6, 2000, 1.5e-6, K::Wilson, true, 2e3, 10e-12},
      {"oa3", 250, 8.0e6, 1000, 1.0e-6, K::Mirror, false, 0, 10e-12},
      {"oa4", 150, 3.0e6, 1000, 100e-6, K::Mirror, false, 0, 10e-12},
      {"oa5", 200, 8.0e6, 5000, 10e-6, K::Mirror, false, 0, 10e-12},
      {"oa6", 50, 10.0e6, 2000, 10e-6, K::Mirror, false, 0, 10e-12},
      {"oa7", 200, 3.0e6, 6000, 1.0e-6, K::Mirror, true, 1e3, 10e-12},
      {"oa8", 100, 2.0e6, 1000, 1.0e-6, K::Mirror, true, 10e3, 10e-12},
      {"oa9", 200, 5.0e6, 5000, 10e-6, K::Mirror, true, 10e3, 10e-12},
  };
}

inline est::OpAmpSpec to_spec(const PaperOpAmpRow& r) {
  est::OpAmpSpec s;
  s.gain = r.gain;
  s.ugf_hz = r.ugf_hz;
  s.ibias = r.ibias;
  s.cload = r.cl;
  s.source = r.source;
  s.buffer = r.buffer;
  s.zout = r.zout;
  s.area_budget = r.area_um2 * kAreaScale * 1e-12;
  return s;
}

/// The paper's Table 5 module specification set.
inline std::vector<est::ModuleSpec> table5_specs() {
  using MK = est::ModuleKind;
  est::ModuleSpec sh;
  sh.kind = MK::SampleHold;
  sh.gain = 2.0;
  sh.bw_hz = 20e3;
  sh.slew = 0.01e6;  // .01 V/us
  sh.area_budget = 500 * kAreaScale * 1e-12;

  est::ModuleSpec amp;
  amp.kind = MK::AudioAmp;
  amp.gain = 100.0;
  amp.bw_hz = 20e3;
  amp.area_budget = 1000 * kAreaScale * 1e-12;

  est::ModuleSpec adc;
  adc.kind = MK::FlashAdc;
  adc.order = 4;
  adc.delay_s = 5e-6;
  adc.area_budget = 5000 * kAreaScale * 1e-12;

  est::ModuleSpec lpf;
  lpf.kind = MK::LowPassFilter;
  lpf.order = 4;
  lpf.f0_hz = 1e3;
  lpf.area_budget = 10000 * kAreaScale * 1e-12;

  est::ModuleSpec bpf;
  bpf.kind = MK::BandPassFilter;
  bpf.order = 2;
  bpf.f0_hz = 1e3;
  bpf.area_budget = 5000 * kAreaScale * 1e-12;

  return {sh, amp, adc, lpf, bpf};
}

}  // namespace ape::bench
