# Regression gate for the committed performance trajectory.
#
# Usage (normally via the `check_bench` target):
#   cmake -DCURRENT=<fresh BENCH_ape_speed.json> \
#         -DBASELINE=<committed BENCH_ape_speed.json> \
#         -P bench/check_bench.cmake
#
# Compares the throughput / latency metrics of a fresh bench run against
# the committed baseline and FATAL_ERRORs when any metric regressed by
# more than 20%. Improvements and noise inside the band pass. The same
# script serves every trajectory file (BENCH_ape_speed.json,
# BENCH_spice_kernel.json): metrics absent from either side are skipped,
# so each file is gated only on the metrics it actually records.
# Requires CMake >= 3.19 (string(JSON ...)).

cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED CURRENT OR NOT DEFINED BASELINE)
  message(FATAL_ERROR "check_bench: pass -DCURRENT=<json> and -DBASELINE=<json>")
endif()
foreach(f IN ITEMS "${CURRENT}" "${BASELINE}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "check_bench: missing ${f}")
  endif()
endforeach()

file(READ "${CURRENT}" cur_json)
file(READ "${BASELINE}" base_json)

# Every trajectory file carries a top-level "meta" stamp (machine /
# build identity). A file without it is either unparseable, hand-edited,
# or predates the stamping discipline — comparing against it would be
# meaningless, so fail with a plain diagnosis naming the file instead of
# letting a later string(JSON GET) surface a parse backtrace.
string(JSON _meta ERROR_VARIABLE _meta_err GET "${cur_json}" meta)
if(_meta_err)
  message(FATAL_ERROR
    "check_bench: ${CURRENT} is missing its \"meta\" stamp "
    "(${_meta_err}). Regenerate the file with the bench binary — "
    "trajectory files without the meta block cannot be gated.")
endif()
string(JSON _meta ERROR_VARIABLE _meta_err GET "${base_json}" meta)
if(_meta_err)
  message(FATAL_ERROR
    "check_bench: baseline ${BASELINE} is missing its \"meta\" stamp "
    "(${_meta_err}). Re-commit the baseline from a fresh bench run — "
    "trajectory files without the meta block cannot be gated.")
endif()

set(tolerance 1.20)  # fail only beyond a 20% regression
set(failed 0)

# check_metric(<name> <direction>) where direction is HIGHER_IS_BETTER or
# LOWER_IS_BETTER. Metrics absent from the baseline (older trajectory
# files) are skipped so the gate stays usable across PR generations.
function(check_metric name direction)
  string(JSON base ERROR_VARIABLE base_err GET "${base_json}" ${name})
  string(JSON cur ERROR_VARIABLE cur_err GET "${cur_json}" ${name})
  if(base_err OR cur_err)
    message(STATUS "check_bench: ${name}: skipped (absent)")
    return()
  endif()
  if(base LESS_EQUAL 0)
    message(STATUS "check_bench: ${name}: skipped (degenerate baseline ${base})")
    return()
  endif()
  if(direction STREQUAL "HIGHER_IS_BETTER")
    # regression when cur * tolerance < base
    set(lhs "${cur}")
    set(rhs "${base}")
  else()
    # LOWER_IS_BETTER: regression when cur > base * tolerance
    set(lhs "${base}")
    set(rhs "${cur}")
  endif()
  # Either way the invariant is rhs <= lhs * tolerance. math(EXPR) is
  # integer-only, so both values are converted to micro-units and the
  # 1.2 factor becomes the exact integer comparison 5*rhs > 6*lhs.
  if(lhs LESS_EQUAL 0)
    message(STATUS "check_bench: ${name}: skipped (degenerate value ${lhs})")
    return()
  endif()
  string(REGEX REPLACE "[^0-9.]" "" lhs_clean "${lhs}")
  string(REGEX REPLACE "[^0-9.]" "" rhs_clean "${rhs}")
  # Convert to integer micro-units (6 decimal places).
  foreach(v IN ITEMS lhs rhs)
    set(s "${${v}_clean}")
    string(FIND "${s}" "." dot)
    if(dot EQUAL -1)
      set(int_part "${s}")
      set(frac_part "000000")
    else()
      string(SUBSTRING "${s}" 0 ${dot} int_part)
      math(EXPR fstart "${dot} + 1")
      string(SUBSTRING "${s}" ${fstart} -1 frac_part)
      string(SUBSTRING "${frac_part}000000" 0 6 frac_part)
    endif()
    if(int_part STREQUAL "")
      set(int_part 0)
    endif()
    math(EXPR ${v}_u "${int_part} * 1000000 + ${frac_part}")
  endforeach()
  # Regression iff rhs > lhs * 1.2  (in micro-units: 5*rhs_u > 6*lhs_u).
  math(EXPR lhs_scaled "6 * ${lhs_u}")
  math(EXPR rhs_scaled "5 * ${rhs_u}")
  if(rhs_scaled GREATER lhs_scaled)
    message(SEND_ERROR "check_bench: ${name} regressed >20%: baseline=${base} current=${cur}")
    set(failed 1 PARENT_SCOPE)
  else()
    message(STATUS "check_bench: ${name}: ok (baseline=${base} current=${cur})")
  endif()
endfunction()

# -- BENCH_ape_speed.json metrics ------------------------------------------
check_metric(serial_jobs_per_second HIGHER_IS_BETTER)

# The pooled figure is only a speedup claim when the recording machine
# actually had more than one hardware thread; the bench records that as
# parallel_speedup_valid. On a single-thread machine the pool degenerates
# to serial-with-overhead, so gating pooled throughput would fail PRs for
# hardware reasons — skip it loudly instead of silently passing nonsense.
string(JSON cur_psv ERROR_VARIABLE cur_psv_err GET "${cur_json}" parallel_speedup_valid)
if(NOT cur_psv_err AND (cur_psv STREQUAL "OFF" OR cur_psv STREQUAL "false" OR cur_psv STREQUAL "0"))
  message(WARNING
    "check_bench: \"parallel_speedup_valid\": false in ${CURRENT} — "
    "skipping the pooled_jobs_per_second speedup gate (the run had a "
    "single hardware thread, so serial-vs-pooled is not a speedup claim)")
else()
  check_metric(pooled_jobs_per_second HIGHER_IS_BETTER)
endif()

check_metric(estimate_path_us LOWER_IS_BETTER)

# The mixed-batch pruning win (DESIGN.md §14): provably-infeasible specs
# must keep failing pre-solve instead of annealing, so the with-prove run
# stays decisively faster. Relative gate like any throughput metric.
check_metric(prove_pruning_speedup HIGHER_IS_BETTER)

# Absolute gate: the prove gate's cost on an *all-feasible* batch, in
# basis points of the bare wall time. The acceptance bound is 5% (500 bp)
# of wall clock; a relative-to-baseline band is meaningless for a
# near-zero percentage, so this one is absolute and only checked on the
# fresh run.
string(JSON cur_ovh ERROR_VARIABLE cur_ovh_err GET "${cur_json}" prove_overhead_bp)
if(cur_ovh_err)
  message(STATUS "check_bench: prove_overhead_bp: skipped (absent)")
elseif(cur_ovh GREATER 500)
  message(SEND_ERROR
    "check_bench: prove gate cost ${cur_ovh} bp of wall time on the "
    "all-feasible batch (bound: 500 bp = 5%)")
  set(failed 1)
else()
  message(STATUS "check_bench: prove_overhead_bp: ok (${cur_ovh} bp <= 500 bp)")
endif()

# Absolute gate: the numerical-health layer's Auto-mode cost on the
# healthy headline opamp DC solve (DESIGN.md section 15), in basis points
# of the health-off solve time. On a well-conditioned system Auto only
# tracks the in-loop pivot min/max, so the bound is tight: 2% (200 bp).
# Like prove_overhead_bp this is absolute and checked on the fresh run.
string(JSON cur_hlt ERROR_VARIABLE cur_hlt_err GET "${cur_json}" health_overhead_bp)
if(cur_hlt_err)
  message(STATUS "check_bench: health_overhead_bp: skipped (absent)")
elseif(cur_hlt GREATER 200)
  message(SEND_ERROR
    "check_bench: numerical-health layer cost ${cur_hlt} bp of the "
    "headline opamp DC-solve time (bound: 200 bp = 2%)")
  set(failed 1)
else()
  message(STATUS "check_bench: health_overhead_bp: ok (${cur_hlt} bp <= 200 bp)")
endif()

# -- BENCH_spice_kernel.json metrics (dense AND sparse LU paths) -----------
check_metric(dense_n64_ns LOWER_IS_BETTER)
check_metric(sparse_n64_ns LOWER_IS_BETTER)
check_metric(sparse_n256_ns LOWER_IS_BETTER)

if(failed)
  message(FATAL_ERROR "check_bench: performance regression detected")
endif()
message(STATUS "check_bench: all metrics within the 20% band")
