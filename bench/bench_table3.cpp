/// Reproduces paper Table 3: "Estimation vs SPICE Simulation of OpAmp's" -
/// four operational amplifiers sized by APE and verified on the simulator.
/// OpAmp1-3: Wilson tail + CMOS differential stage + output buffer;
/// OpAmp4: simple-mirror tail, unbuffered (the paper's topology note).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/estimator/opamp.h"
#include "src/estimator/verify.h"

using namespace ape;
using namespace ape::est;

int main() {
  const Process proc = Process::default_1u2();
  const OpAmpEstimator oe(proc);

  struct Row {
    const char* name;
    OpAmpSpec spec;
  };
  std::vector<Row> rows = {
      {"OpAmp1", {200, 1.3e6, 1e-6, 10e-12, CurrentSourceKind::Wilson, true, 1e3, 0}},
      {"OpAmp2", {70, 3.0e6, 2e-6, 10e-12, CurrentSourceKind::Wilson, true, 1e3, 0}},
      {"OpAmp3", {100, 2.5e6, 1.5e-6, 10e-12, CurrentSourceKind::Wilson, true, 2e3, 0}},
      {"OpAmp4", {250, 8.0e6, 1e-6, 10e-12, CurrentSourceKind::Mirror, false, 0, 0}},
  };

  std::printf("Table 3: Estimation vs SPICE Simulation of OpAmp's\n\n");
  std::printf(
      "%-7s | %6s %6s | %8s %8s | %6s %6s | %6s %6s | %7s %7s | %9s | %6s %6s | %7s %7s\n",
      "Circuit", "P est", "sim", "Adm est", "sim", "UGF e", "sim", "Itl e",
      "sim", "Zout e", "sim", "Area um2", "CMRR e", "sim", "SR est", "sim");
  std::printf(
      "%-7s | %6s %6s | %8s %8s | %6s %6s | %6s %6s | %7s %7s | %9s | %6s %6s | %7s %7s\n",
      "", "(mW)", "", "(abs)", "", "(MHz)", "", "(uA)", "", "(kohm)", "",
      "(est)", "(dB)", "", "(V/us)", "");
  bench::rule(130);

  for (const auto& row : rows) {
    try {
      const OpAmpDesign d = oe.estimate(row.spec);
      const OpAmpSimReport r = simulate_opamp(d, proc);
      std::printf(
          "%-7s | %6.3f %6.3f | %8.0f %8.0f | %6.2f %6s | %6.2f %6.2f | %7.2f %7.2f | %9.1f | %6.1f %6s | %7.2f %7.2f\n",
          row.name, d.perf.dc_power * 1e3, r.power * 1e3, d.perf.gain, r.gain,
          d.perf.ugf_hz / 1e6, bench::opt_str(r.ugf_hz, 1e-6).c_str(),
          d.perf.ibias * 1e6, r.ibias * 1e6, d.perf.zout / 1e3, r.zout / 1e3,
          d.perf.gate_area * 1e12, d.perf.cmrr_db,
          bench::opt_str(r.cmrr_db, 1.0, "%.1f").c_str(), d.perf.slew / 1e6,
          r.slew / 1e6);
    } catch (const std::exception& e) {
      std::printf("%-7s | FAILED: %s\n", row.name, e.what());
    }
  }
  bench::rule(130);
  std::printf(
      "Shape check vs paper: every column's est lands within the same few-\n"
      "tens-of-percent band of sim that the paper reports (their UGF est/sim\n"
      "pairs were 1.3/2.1, 8/13.7, 12.4/9.8, 2.6/4.0 MHz). Note: the DC gain\n"
      "constraint is a lower bound; our process card holds more intrinsic\n"
      "gain at these lengths than the targets, so Adm >> the Table 1 spec.\n");
  return 0;
}
