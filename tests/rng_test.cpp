#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ape {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversRange) {
  Rng r(13);
  bool seen[5] = {false, false, false, false, false};
  for (int i = 0; i < 500; ++i) {
    const size_t k = r.index(5);
    ASSERT_LT(k, 5u);
    seen[k] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, GaussMomentsAreStandard) {
  Rng r(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gauss();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, DeriveStreamIsPureAndSeedSensitive) {
  EXPECT_EQ(Rng::derive_stream(42, 0), Rng::derive_stream(42, 0));
  EXPECT_NE(Rng::derive_stream(42, 0), Rng::derive_stream(42, 1));
  EXPECT_NE(Rng::derive_stream(42, 0), Rng::derive_stream(43, 0));
  // Stream 0 must not collapse onto the parent seed itself.
  EXPECT_NE(Rng::derive_stream(42, 0), 42u);
}

TEST(Rng, NeighbouringStreamsAreDistinct) {
  std::set<uint64_t> seeds;
  for (uint64_t s = 0; s < 1000; ++s) seeds.insert(Rng::derive_stream(7, s));
  EXPECT_EQ(seeds.size(), 1000u);  // splitmix64 finalizer: no collisions
}

TEST(Rng, SplitIsInsensitiveToDrawnState) {
  Rng parent(123);
  const Rng early = parent.split(5);
  for (int i = 0; i < 100; ++i) parent.uniform();  // advance the parent
  Rng late = parent.split(5);
  Rng a = early;
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.uniform(), late.uniform());
  EXPECT_EQ(parent.seed(), 123u);
  EXPECT_EQ(a.seed(), Rng::derive_stream(123, 5));
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  // Neighbouring streams agree on essentially no draws and are each
  // internally uniform.
  Rng a = Rng(9).split(0), b = Rng(9).split(1);
  int same = 0;
  double mean_b = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double ua = a.uniform(), ub = b.uniform();
    if (ua == ub) ++same;
    mean_b += ub;
  }
  EXPECT_EQ(same, 0);
  EXPECT_NEAR(mean_b / n, 0.5, 0.02);
}

}  // namespace
}  // namespace ape
