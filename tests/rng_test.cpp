#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ape {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = r.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += r.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, IndexCoversRange) {
  Rng r(13);
  bool seen[5] = {false, false, false, false, false};
  for (int i = 0; i < 500; ++i) {
    const size_t k = r.index(5);
    ASSERT_LT(k, 5u);
    seen[k] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, GaussMomentsAreStandard) {
  Rng r(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gauss();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

}  // namespace
}  // namespace ape
