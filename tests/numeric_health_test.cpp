/// \file numeric_health_test.cpp
/// The numerical-health layer (DESIGN.md section 15): equilibration,
/// Hager condition estimation, iterative refinement and the recovery
/// ladder, from the substrate primitives up through DC solves of the two
/// committed badly scaled netlists and a supervised batch that lands on
/// the NumericRecovery rung.

#include "src/util/numeric_health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"
#include "src/runtime/supervisor.h"
#include "src/spice/analysis.h"
#include "src/spice/fault.h"
#include "src/spice/kernel.h"
#include "src/spice/parser.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"
#include "src/util/json.h"
#include "src/util/matrix.h"
#include "src/util/retry.h"
#include "src/util/sparse.h"

namespace ape {
namespace {

constexpr const char* kSpreadNetlist =
    APE_SOURCE_DIR "/examples/circuits/extreme_spread_divider.sp";
constexpr const char* kGminRescueNetlist =
    APE_SOURCE_DIR "/examples/circuits/bad/gmin_rescue.sp";

std::string read_file(const char* path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing committed netlist " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Sparse pattern + values from a dense matrix (the sparse_test idiom).
void from_dense(const Matrix<double>& a, SparsePattern& p,
                std::vector<double>& vals) {
  p.reset(a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      if (std::abs(a(r, c)) > 0.0) {
        p.add(static_cast<int>(r), static_cast<int>(c));
      }
    }
  }
  p.finalize();
  vals.assign(p.nnz(), 0.0);
  for (size_t r = 0; r < a.rows(); ++r) {
    for (int s = p.row_ptr()[r]; s < p.row_ptr()[r + 1]; ++s) {
      vals[s] = a(r, static_cast<size_t>(p.cols()[s]));
    }
  }
}

/// y = A v for a dense matrix.
void dense_matvec(const Matrix<double>& a, const std::vector<double>& v,
                  std::vector<double>& y) {
  const size_t n = a.rows();
  y.assign(n, 0.0);
  for (size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (size_t c = 0; c < n; ++c) acc += a(r, c) * v[c];
    y[r] = acc;
  }
}

/// The conductance-spread ladder the issue prescribes: a grounded
/// resistive chain whose branch conductances span 1e3 S down to 1e-12 S,
/// i.e. fifteen decades inside one nodal matrix (cond ~ 1e15).
Matrix<double> spread_ladder(size_t n, std::vector<double>* g_out = nullptr) {
  std::vector<double> g(n + 1, 0.0);
  for (size_t i = 0; i <= n; ++i) {
    g[i] = 1e3 * std::pow(10.0, -15.0 * double(i) / double(n));
  }
  Matrix<double> a(n, n);
  for (size_t i = 0; i < n; ++i) {
    a(i, i) = g[i] + g[i + 1];
    if (i + 1 < n) {
      a(i, i + 1) = -g[i + 1];
      a(i + 1, i) = -g[i + 1];
    }
  }
  if (g_out != nullptr) *g_out = g;
  return a;
}

// ---------------------------------------------------------------------------
// Satellite: dense and sparse singularity diagnostics share one shape.

TEST(SingularityDiagnostics, DenseAndSparseShareMessageShape) {
  Matrix<double> m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 4.0;  // rank 1

  std::string dense_msg;
  try {
    LuSolver<double> lu(m);
    FAIL() << "dense LU accepted a singular matrix";
  } catch (const NumericError& e) {
    dense_msg = e.what();
  }

  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLu<double> slu;
  std::string sparse_msg;
  try {
    slu.factorize(p, vals);
    FAIL() << "sparse LU accepted a singular matrix";
  } catch (const NumericError& e) {
    sparse_msg = e.what();
  }

  // Same structured shape from both kernels (singular_message): the rung
  // classifier and the tests must never depend on which kernel ran.
  for (const std::string& msg : {dense_msg, sparse_msg}) {
    EXPECT_NE(msg.find("LU: singular pivot at step"), std::string::npos) << msg;
    EXPECT_NE(msg.find("max|a|"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rel_tol"), std::string::npos) << msg;
  }
  // They differ only in the kernel tag.
  EXPECT_NE(dense_msg.find("dense"), std::string::npos) << dense_msg;
  EXPECT_NE(sparse_msg.find("sparse"), std::string::npos) << sparse_msg;
}

// ---------------------------------------------------------------------------
// Condition estimation: within 10x of the exact 1-norm condition number.

TEST(CondEstimate, HilbertWithinTenXOfExact) {
  // Hilbert matrices are the canonical ill-conditioned test family; n=8
  // has cond_1 ~ 3e10, well past kCondTrigger but still accurately
  // invertible enough in doubles to compute a reference.
  const size_t n = 8;
  Matrix<double> h(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      h(i, j) = 1.0 / double(i + j + 1);
    }
  }
  LuSolver<double> lu(h);

  std::vector<double> col_sums;
  const double anorm1 = norm1_dense(h.data(), n, col_sums);

  // Reference: ||A^-1||_1 column by column through the factorization.
  double inv_norm1 = 0.0;
  std::vector<double> e(n), col(n);
  for (size_t j = 0; j < n; ++j) {
    std::fill(e.begin(), e.end(), 0.0);
    e[j] = 1.0;
    lu.solve_into(e, col);
    double sum = 0.0;
    for (double v : col) sum += std::abs(v);
    inv_norm1 = std::max(inv_norm1, sum);
  }
  const double exact = anorm1 * inv_norm1;
  ASSERT_GT(exact, health::kCondTrigger);

  std::vector<double> work, tmp;
  const std::function<void(std::vector<double>&)> solve =
      [&](std::vector<double>& v) {
        tmp = v;
        lu.solve_into(tmp, v);
      };
  const std::function<void(std::vector<double>&)> solve_t =
      [&](std::vector<double>& v) {
        tmp = v;
        lu.solve_transposed_into(tmp, v);
      };
  const double est = condest_1norm<double>(n, anorm1, solve, solve_t, work);

  // Hager's estimator is a lower bound on ||A^-1||_1 in exact arithmetic
  // and empirically within a small factor; the acceptance band is 10x.
  EXPECT_GE(est, exact / 10.0);
  EXPECT_LE(est, exact * 10.0);
}

TEST(CondEstimate, WellConditionedStaysSmall) {
  const size_t n = 6;
  Matrix<double> a(n, n);
  for (size_t i = 0; i < n; ++i) {
    a(i, i) = 4.0;
    if (i + 1 < n) {
      a(i, i + 1) = -1.0;
      a(i + 1, i) = -1.0;
    }
  }
  LuSolver<double> lu(a);
  std::vector<double> col_sums, work, tmp;
  const double anorm1 = norm1_dense(a.data(), n, col_sums);
  const std::function<void(std::vector<double>&)> solve =
      [&](std::vector<double>& v) {
        tmp = v;
        lu.solve_into(tmp, v);
      };
  const std::function<void(std::vector<double>&)> solve_t =
      [&](std::vector<double>& v) {
        tmp = v;
        lu.solve_transposed_into(tmp, v);
      };
  EXPECT_LT(condest_1norm<double>(n, anorm1, solve, solve_t, work), 100.0);
}

// ---------------------------------------------------------------------------
// Equilibration + refinement on the conductance-spread ladder.

TEST(Refinement, SpreadLadderRecoversResidual) {
  const size_t n = 6;
  const Matrix<double> a = spread_ladder(n);
  std::vector<double> b(n, 0.0);
  b[0] = 1e3;  // Norton injection through the stiffest branch

  // Equilibrate a copy (powers of two: bit-exactly reversible), solve
  // the scaled system, then refine against the ORIGINAL matrix — the
  // exact algebra the kernels run.
  std::vector<double> row_scale, col_scale;
  ASSERT_TRUE(compute_equilibration(a.data(), n, row_scale, col_scale));
  Matrix<double> scaled = a;
  scale_dense(scaled.data(), n, row_scale, col_scale);
  LuSolver<double> lu(scaled);

  std::vector<double> x = b;
  scale_vector(x, row_scale);
  std::vector<double> y;
  lu.solve_into(x, y);
  x = y;
  scale_vector(x, col_scale);

  const std::function<void(const std::vector<double>&, std::vector<double>&)>
      matvec = [&](const std::vector<double>& v, std::vector<double>& out) {
        dense_matvec(a, v, out);
      };
  const std::function<void(const std::vector<double>&, std::vector<double>&)>
      correct = [&](const std::vector<double>& r, std::vector<double>& d) {
        std::vector<double> rs = r;
        scale_vector(rs, row_scale);
        lu.solve_into(rs, d);
        scale_vector(d, col_scale);
      };

  const double anorm_inf = norm_inf_dense(a.data(), n);
  std::vector<double> resid, dx, best;
  RefineOutcome out = refine_solution<double>(b, x, matvec, correct, anorm_inf,
                                              resid, dx, best);
  EXPECT_LE(out.residual, 1e-10) << "iterations=" << out.iterations;
  EXPECT_FALSE(out.diverged);

  // The solution itself must be physically right: with a 1e-12 S leak at
  // the far end, essentially the full source voltage appears there.
  EXPECT_NEAR(x[0], 1.0, 1e-6);
}

TEST(Refinement, PlainFactorizationAlsoRefines) {
  // Even without equilibration the refinement loop must drive the
  // residual to target on the spread ladder (partial pivoting keeps the
  // factors usable; refinement wins the digits back).
  const size_t n = 6;
  const Matrix<double> a = spread_ladder(n);
  std::vector<double> b(n, 0.0);
  b[0] = 1e3;
  LuSolver<double> lu(a);
  std::vector<double> x;
  lu.solve_into(b, x);
  const std::function<void(const std::vector<double>&, std::vector<double>&)>
      matvec = [&](const std::vector<double>& v, std::vector<double>& out) {
        dense_matvec(a, v, out);
      };
  const std::function<void(const std::vector<double>&, std::vector<double>&)>
      correct = [&](const std::vector<double>& r, std::vector<double>& d) {
        lu.solve_into(r, d);
      };
  std::vector<double> resid, dx, best;
  const RefineOutcome out = refine_solution<double>(
      b, x, matvec, correct, norm_inf_dense(a.data(), n), resid, dx, best);
  EXPECT_LE(out.residual, 1e-10) << "iterations=" << out.iterations;
}

TEST(Equilibration, PowerOfTwoScalingIsBitExactlyReversible) {
  const size_t n = 5;
  Matrix<double> a = spread_ladder(n);
  const Matrix<double> original = a;
  std::vector<double> row_scale, col_scale;
  ASSERT_TRUE(compute_equilibration(a.data(), n, row_scale, col_scale));
  scale_dense(a.data(), n, row_scale, col_scale);
  // Scaled matrix is O(1) in every nonzero entry.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double mag = std::abs(a(i, j));
      if (mag > 0.0) EXPECT_LE(mag, 16.0) << i << "," << j;
    }
  }
  unscale_dense(a.data(), n, row_scale, col_scale);
  for (size_t i = 0; i < n * n; ++i) {
    EXPECT_EQ(a.data()[i], original.data()[i]) << "entry " << i;
  }
}

// ---------------------------------------------------------------------------
// Kernel integration: DC solves of the two committed netlists.

TEST(KernelHealth, ExtremeSpreadDividerAutoTriggersRefinement) {
  spice::Circuit ckt = spice::parse_netlist(read_file(kSpreadNetlist));
  ConvergenceReport report;
  spice::DcOptions opts;
  opts.report = &report;
  const spice::Solution sol = spice::dc_operating_point(ckt, opts);
  EXPECT_TRUE(report.converged);

  // Equal-gigaohm divider hanging off the stiff 'mid' node: half the
  // source voltage appears at 'out' (the solver's 1e-12 S gmin floor
  // shifts it by ~0.05%).
  EXPECT_NEAR(spice::node_voltage(ckt, sol, "out"), 0.5, 1e-2);
  EXPECT_NEAR(spice::node_voltage(ckt, sol, "mid"), 1.0, 1e-6);

  // Ambient Auto mode must have noticed the fifteen-decade spread on its
  // own: condition estimated, refinement run, residual at target.
  EXPECT_GT(report.kernel.refinement_solves, 0) << report.kernel.summary();
  EXPECT_GT(report.health.cond_estimate, health::kCondTrigger)
      << report.health.summary();
  EXPECT_GT(report.health.residual_norm, 0.0);
  EXPECT_LE(report.health.residual_norm, 1e-9) << report.health.summary();
}

TEST(KernelHealth, GminRescueNetlistFailsLintButSolves) {
  const std::string text = read_file(kGminRescueNetlist);

  // The negative control: lint must flag the capacitor-only island...
  const lint::Report lint_rep = lint::lint_netlist(text);
  bool found_l004 = false;
  for (const auto& f : lint_rep.findings) found_l004 |= (f.rule == "APE-L004");
  EXPECT_TRUE(found_l004) << lint_rep.summary();

  // ...and the DC solve must still land: the gmin floor of the ladder
  // holds the floating sense node (the "rescued by gmin" fixture).
  spice::Circuit ckt = spice::parse_netlist(text);
  ConvergenceReport report;
  spice::DcOptions opts;
  opts.report = &report;
  const spice::Solution sol = spice::dc_operating_point(ckt, opts);
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(spice::node_voltage(ckt, sol, "out"), 0.5, 1e-6);
  for (double v : sol.x) EXPECT_TRUE(std::isfinite(v));
}

TEST(KernelHealth, ForcedModeRecordsFullRecord) {
  // The NumericRecovery rung runs every solve under Force: equilibration
  // applied, condition estimated, refinement always on, and the full
  // record lands in the report.
  spice::Circuit ckt = spice::parse_netlist(read_file(kSpreadNetlist));
  ConvergenceReport report;
  spice::DcOptions opts;
  opts.report = &report;
  ScopedNumericHealthMode force(NumericHealthMode::Force);
  (void)spice::dc_operating_point(ckt, opts);
  EXPECT_TRUE(report.health.equilibrated) << report.health.summary();
  EXPECT_GT(report.health.cond_estimate, 0.0);
  EXPECT_GT(report.kernel.refinement_solves, 0);
  EXPECT_GT(report.kernel.equilibrated_solves, 0);
  EXPECT_LE(report.health.residual_norm, 1e-9) << report.health.summary();
}

// ---------------------------------------------------------------------------
// The recovery ladder end-to-end: a supervised mini-batch over the two
// committed netlists whose first attempt is sabotaged, so every job must
// climb to the NumericRecovery rung; the per-job JSON records the rung
// and the final relative residual.

TEST(RecoveryLadder, SupervisedNetlistBatchRecordsRungAndResidual) {
  const std::vector<std::string> netlists = {read_file(kSpreadNetlist),
                                             read_file(kGminRescueNetlist)};
  RetryPolicy policy;
  policy.numeric_recovery_retries = 1;

  std::string batch_json = "[";
  for (size_t job = 0; job < netlists.size(); ++job) {
    bool ok = false;
    int attempt = 0;
    RetryRung rung = RetryRung::Initial;
    ConvergenceReport report;
    while (!ok) {
      rung = policy.rung(attempt);
      ASSERT_NE(rung, RetryRung::Fail) << "job " << job << " ran out of ladder";
      spice::FaultInjector fi;
      if (attempt == 0) fi.fail_lu_from(0);  // sabotage the initial attempt
      spice::ScopedFaultInjection scoped(fi);
      std::optional<ScopedNumericHealthMode> force;
      if (rung == RetryRung::NumericRecovery) {
        force.emplace(NumericHealthMode::Force);
      }
      try {
        spice::Circuit ckt = spice::parse_netlist(netlists[job]);
        spice::DcOptions opts;
        opts.report = &report;
        (void)spice::dc_operating_point(ckt, opts);
        ok = true;
      } catch (const NumericError& e) {
        ASSERT_EQ(policy.next_rung(e.klass(), attempt),
                  RetryRung::NumericRecovery)
            << e.what();
        ++attempt;
      }
    }
    // Exactly the supervised shape: sabotage on Initial, rescue on the
    // NumericRecovery rung.
    EXPECT_EQ(rung, RetryRung::NumericRecovery) << "job " << job;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"job\":%zu,\"rung\":\"%s\",\"residual\":%.17g}",
                  job == 0 ? "" : ",", job, to_string(rung),
                  report.health.residual_norm);
    batch_json += buf;
  }
  batch_json += ']';

  // The job JSON must carry the rung used and a residual at target.
  const json::Value doc = json::parse(batch_json);
  ASSERT_EQ(doc.kind, json::Value::Kind::Array);
  ASSERT_EQ(doc.items.size(), netlists.size());
  for (const json::Value& jv : doc.items) {
    EXPECT_EQ(jv.find("rung")->as_string(), "numeric-recovery");
    const double residual = jv.find("residual")->as_number();
    EXPECT_GT(residual, 0.0);
    EXPECT_LE(residual, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// The real supervised batch: a job whose first attempt dies on an
// injected singular LU escalates to the NumericRecovery rung and lands.

TEST(RecoveryLadder, SupervisedOpAmpBatchUsesNumericRecoveryRung) {
  const est::Process proc = est::Process::default_1u2();
  std::vector<est::OpAmpSpec> specs(1);
  specs[0].gain = 120.0;
  specs[0].ugf_hz = 2e6;
  specs[0].ibias = 10e-6;
  specs[0].cload = 10e-12;

  runtime::SupervisorOptions sup;
  sup.batch.seed = 2026;
  sup.batch.threads = 1;
  sup.batch.synth.use_ape_seed = true;
  sup.batch.synth.anneal.iterations = 120;
  sup.retry.plain_retries = 0;
  sup.retry.numeric_recovery_retries = 1;
  sup.retry.relaxed_retries = 1;
  sup.fault_setup = [](size_t, int attempt, spice::FaultInjector& fi) {
    if (attempt == 0) fi.fail_lu_from(0);  // initial attempt dies
  };
  const auto r = runtime::run_supervised_opamp_batch(proc, specs, sup);
  ASSERT_EQ(r.jobs.size(), 1u);
  EXPECT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_EQ(r.jobs[0].final_rung, RetryRung::NumericRecovery)
      << to_string(r.jobs[0].final_rung);
  EXPECT_GE(r.supervision.numeric_recovery_attempts, 1);
  EXPECT_EQ(r.jobs[0].attempts, 2);
}

}  // namespace
}  // namespace ape
