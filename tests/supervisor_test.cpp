/// \file supervisor_test.cpp
/// The supervised batch runtime (DESIGN.md section 10): retry ladder
/// mechanics, deterministic backoff, quarantine circuit breaker, per-job
/// deadlines and cancellation, checkpoint/resume bit-exactness, and the
/// acceptance scenario of the supervision layer — a batch containing a
/// hanging spec, a transiently failing spec and a permanently broken
/// spec finishes with deadline-kill / retry-success / quarantine
/// respectively while clean jobs stay bit-identical to the unsupervised
/// batch.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/runtime/batch.h"
#include "src/runtime/cache.h"
#include "src/runtime/supervisor.h"
#include "src/spice/fault.h"
#include "src/synth/astrx.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"
#include "src/util/json.h"
#include "src/util/retry.h"

namespace ape::runtime {
namespace {

using est::OpAmpSpec;
using est::Process;

const Process& proc() {
  static const Process p = Process::default_1u2();
  return p;
}

OpAmpSpec clean_spec(int i) {
  OpAmpSpec s;
  s.gain = 120.0 + 10.0 * double(i % 8);
  s.ugf_hz = 2e6 + 0.5e6 * double(i % 4);
  s.ibias = 10e-6;
  s.cload = 10e-12;
  return s;
}

SupervisorOptions fast_supervised_options() {
  SupervisorOptions o;
  o.batch.seed = 2026;
  o.batch.synth.use_ape_seed = true;
  o.batch.synth.anneal.iterations = 120;
  return o;
}

/// Everything deterministic about an outcome, flattened for comparison.
std::vector<double> fingerprint(const synth::SynthesisOutcome& r) {
  std::vector<double> f{r.cost, double(r.functional), double(r.meets_spec),
                        double(r.skipped_candidates), double(r.evaluations),
                        double(r.restarts_run), double(r.best_restart),
                        r.design.perf.gain, r.design.perf.ugf_hz,
                        r.design.perf.gate_area, r.design.perf.cc};
  for (const auto& t : r.design.transistors) {
    f.push_back(t.w);
    f.push_back(t.l);
  }
  for (double x : r.best_x) f.push_back(x);
  return f;
}

void expect_same_outcome(const synth::SynthesisOutcome& a,
                         const synth::SynthesisOutcome& b, size_t job) {
  const auto fa = fingerprint(a);
  const auto fb = fingerprint(b);
  ASSERT_EQ(fa.size(), fb.size()) << "job " << job;
  for (size_t k = 0; k < fa.size(); ++k) {
    EXPECT_EQ(fa[k], fb[k]) << "job " << job << " field " << k;
  }
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// RetryPolicy: rung walking and deterministic backoff.

TEST(SupervisorRetryPolicy, RungLadderInOrder) {
  RetryPolicy p;
  p.plain_retries = 2;
  p.relaxed_retries = 1;
  p.estimate_fallback = true;
  EXPECT_EQ(p.max_attempts(), 5);
  EXPECT_EQ(p.rung(0), RetryRung::Initial);
  EXPECT_EQ(p.rung(1), RetryRung::Retry);
  EXPECT_EQ(p.rung(2), RetryRung::Retry);
  EXPECT_EQ(p.rung(3), RetryRung::Relaxed);
  EXPECT_EQ(p.rung(4), RetryRung::EstimateOnly);
  EXPECT_EQ(p.rung(5), RetryRung::Fail);
  EXPECT_EQ(p.estimate_attempt(), 4);
}

TEST(SupervisorRetryPolicy, PermanentFailuresSkipToEstimate) {
  RetryPolicy p;
  p.plain_retries = 2;
  p.relaxed_retries = 1;
  p.estimate_fallback = true;
  // Transient failures escalate one rung at a time.
  EXPECT_EQ(p.next_rung(ErrorClass::Transient, 0), RetryRung::Retry);
  EXPECT_EQ(p.next_rung(ErrorClass::Transient, 2), RetryRung::Relaxed);
  EXPECT_EQ(p.next_rung(ErrorClass::Transient, 3), RetryRung::EstimateOnly);
  EXPECT_EQ(p.next_rung(ErrorClass::Transient, 4), RetryRung::Fail);
  // Permanent failures jump the retry rungs: re-running cannot help.
  EXPECT_EQ(p.next_rung(ErrorClass::Permanent, 0), RetryRung::EstimateOnly);
  // ... and the estimate failing permanently ends the ladder.
  RetryPolicy bare;
  EXPECT_EQ(bare.max_attempts(), 1);
  EXPECT_EQ(bare.next_rung(ErrorClass::Transient, 0), RetryRung::Fail);
  EXPECT_EQ(bare.next_rung(ErrorClass::Permanent, 0), RetryRung::Fail);
}

TEST(SupervisorRetryPolicy, BackoffIsDeterministicBoundedAndGrows) {
  RetryPolicy p;
  p.backoff_base_s = 0.1;
  p.backoff_factor = 2.0;
  p.backoff_max_s = 1.0;
  p.jitter_frac = 0.25;
  EXPECT_EQ(p.backoff_s(0, 0), 0.0);  // no wait before the first attempt
  for (uint64_t job = 0; job < 4; ++job) {
    for (int attempt = 1; attempt < 6; ++attempt) {
      const double w1 = p.backoff_s(job, attempt);
      const double w2 = p.backoff_s(job, attempt);
      EXPECT_EQ(w1, w2) << "backoff must be a pure function";
      const double nominal =
          std::min(0.1 * std::pow(2.0, attempt - 1), p.backoff_max_s);
      EXPECT_GE(w1, nominal * 0.75 - 1e-12);
      EXPECT_LE(w1, std::min(nominal * 1.25, p.backoff_max_s) + 1e-12);
    }
  }
  // Jitter decorrelates jobs: not every job waits the same.
  EXPECT_NE(p.backoff_s(1, 1), p.backoff_s(2, 1));
  RetryPolicy off;
  EXPECT_EQ(off.backoff_s(3, 2), 0.0);  // base 0 disables waiting
}

// ---------------------------------------------------------------------------
// QuarantineRegistry.

TEST(SupervisorQuarantine, TripsAtThresholdAndReportsWhy) {
  QuarantineRegistry q;
  EXPECT_FALSE(q.quarantined(42));
  EXPECT_FALSE(q.record_failure(42, "boom 1", 3));
  EXPECT_FALSE(q.record_failure(42, "boom 2", 3));
  EXPECT_FALSE(q.quarantined(42));
  EXPECT_TRUE(q.record_failure(42, "boom 3", 3));  // newly quarantined
  std::string why;
  EXPECT_TRUE(q.quarantined(42, &why));
  EXPECT_EQ(why, "boom 3");
  // Further failures do not report "newly quarantined" again.
  EXPECT_FALSE(q.record_failure(42, "boom 4", 3));
  EXPECT_EQ(q.quarantined_count(), 1u);
  q.clear();
  EXPECT_FALSE(q.quarantined(42));
}

TEST(SupervisorQuarantine, SuccessResetsConsecutiveCount) {
  QuarantineRegistry q;
  EXPECT_FALSE(q.record_failure(7, "a", 2));
  q.record_success(7);  // proves the spec viable: counter resets
  EXPECT_FALSE(q.record_failure(7, "b", 2));
  EXPECT_FALSE(q.quarantined(7));
  EXPECT_TRUE(q.record_failure(7, "c", 2));
  EXPECT_TRUE(q.quarantined(7));
}

TEST(SupervisorQuarantine, FingerprintFollowsCacheIdentity) {
  const OpAmpSpec a = clean_spec(0);
  OpAmpSpec b = a;
  EXPECT_EQ(spec_fingerprint(proc(), a), spec_fingerprint(proc(), b));
  b.gain += 1.0;
  EXPECT_NE(spec_fingerprint(proc(), a), spec_fingerprint(proc(), b));
}

// ---------------------------------------------------------------------------
// JSON helpers (the checkpoint substrate).

TEST(SupervisorJson, HexDoubleRoundTripsBitExactly) {
  for (double v : {0.0, -0.0, 1.0, -1.5, 3.141592653589793, 1e-300, -2.5e17,
                   0.07387810247531093}) {
    EXPECT_EQ(json::parse_hex_double(json::hex_double(v)), v);
  }
}

TEST(SupervisorJson, ParsesObjectsArraysAndEscapes) {
  const json::Value doc = json::parse(
      "{\"a\": 1.5, \"b\": [true, false, null], \"s\": \"x\\n\\\"y\\\"\","
      " \"n\": -12}");
  EXPECT_DOUBLE_EQ(doc.find("a")->as_number(), 1.5);
  ASSERT_NE(doc.find("b"), nullptr);
  ASSERT_EQ(doc.find("b")->items.size(), 3u);
  EXPECT_TRUE(doc.find("b")->items[0].as_bool());
  EXPECT_EQ(doc.find("s")->as_string(), "x\n\"y\"");
  EXPECT_EQ(doc.find("n")->as_long(), -12);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(SupervisorJson, MalformedInputThrowsParseError) {
  EXPECT_THROW(json::parse("{\"a\":}"), ParseError);
  EXPECT_THROW(json::parse("[1, 2"), ParseError);
  EXPECT_THROW(json::parse("{} trailing"), ParseError);
  EXPECT_THROW(json::parse("\"unterminated"), ParseError);
  const json::Value doc = json::parse("{\"a\": 1}");
  EXPECT_THROW(doc.find("a")->as_string(), ParseError);
  EXPECT_THROW(doc.as_bool(), ParseError);
}

// ---------------------------------------------------------------------------
// Determinism contract: clean jobs under supervision are bit-identical to
// the unsupervised batch.

TEST(SupervisorBatch, CleanJobsMatchUnsupervisedBatchBitExactly) {
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 6; ++i) specs.push_back(clean_spec(i));

  EstimateCache plain_cache;
  BatchOptions plain;
  plain.seed = 2026;
  plain.synth.use_ape_seed = true;
  plain.synth.anneal.iterations = 120;
  plain.threads = 2;
  plain.cache = &plain_cache;
  const auto unsup = run_opamp_batch(proc(), specs, plain);

  EstimateCache sup_cache;
  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 2;
  sup.batch.cache = &sup_cache;
  sup.retry.plain_retries = 2;  // armed, but clean jobs never escalate
  sup.retry.relaxed_retries = 1;
  sup.retry.estimate_fallback = true;
  sup.job_timeout_s = 120.0;
  const auto r = run_supervised_opamp_batch(proc(), specs, sup);

  ASSERT_EQ(r.jobs.size(), specs.size());
  EXPECT_EQ(r.stats.failed, 0);
  EXPECT_EQ(r.supervision.retries, 0);
  EXPECT_EQ(r.supervision.attempts, int(specs.size()));
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(unsup.jobs[i].ok) << unsup.jobs[i].error;
    ASSERT_TRUE(r.jobs[i].ok) << r.jobs[i].error;
    EXPECT_EQ(r.jobs[i].attempts, 1);
    EXPECT_EQ(r.jobs[i].final_rung, RetryRung::Initial);
    EXPECT_FALSE(r.jobs[i].deadline_hit);
    expect_same_outcome(unsup.jobs[i].outcome, r.jobs[i].outcome, i);
  }
}

// ---------------------------------------------------------------------------
// The acceptance scenario: hanging + transient + permanent specs in one
// batch — deadline-kill, retry-success and quarantine respectively, with
// the clean jobs untouched.

TEST(SupervisorBatch, HangingTransientAndPermanentSpecsEachRecover) {
  // Job 0: clean. Job 1: "hangs" (every transient step stalls 10 ms; the
  // unsupervised simulator would grind for many seconds). Job 2: fails
  // transiently on its first attempt only. Job 3: permanently broken
  // spec. Job 4: same broken spec again -> quarantined. Job 5: clean.
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 6; ++i) specs.push_back(clean_spec(i));
  specs[3].ibias = -1.0;  // estimator must reject: permanent
  specs[4] = specs[3];    // same fingerprint -> quarantine candidate

  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 1;  // deterministic quarantine order
  EstimateCache cache;
  sup.batch.cache = &cache;
  sup.retry.plain_retries = 1;
  sup.retry.relaxed_retries = 1;
  sup.retry.estimate_fallback = true;
  sup.job_timeout_s = 1.0;
  QuarantineRegistry quarantine;
  sup.quarantine = &quarantine;
  sup.quarantine_threshold = 2;
  sup.fault_setup = [](size_t index, int attempt, spice::FaultInjector& fi) {
    if (index == 1) fi.stall_transient(0.010);           // the hanging spec
    if (index == 2 && attempt == 0) fi.fail_lu_from(0);  // clears on retry
  };
  const auto r = run_supervised_opamp_batch(proc(), specs, sup);
  ASSERT_EQ(r.jobs.size(), 6u);

  // Job 1: the deadline killed the stall; the partial best-so-far outcome
  // is reported instead of hanging the batch.
  EXPECT_TRUE(r.jobs[1].ok) << r.jobs[1].error;
  EXPECT_TRUE(r.jobs[1].deadline_hit);
  EXPECT_GE(r.supervision.deadline_hits, 1);

  // Job 2: first attempt's verification dies on the injected singular LU
  // (sim_failed), the plain retry succeeds cleanly.
  EXPECT_TRUE(r.jobs[2].ok) << r.jobs[2].error;
  EXPECT_EQ(r.jobs[2].attempts, 2);
  EXPECT_EQ(r.jobs[2].final_rung, RetryRung::Retry);
  EXPECT_FALSE(r.jobs[2].outcome.sim_failed);

  // Job 3: permanent estimator failure -> the ladder jumps to the
  // estimate fallback, which fails the same way -> job fails and the
  // second failed attempt trips the quarantine.
  EXPECT_FALSE(r.jobs[3].ok);
  EXPECT_EQ(r.jobs[3].attempts, 2);
  EXPECT_FALSE(r.jobs[3].quarantined) << "job 3 itself ran, not skipped";
  EXPECT_GE(r.supervision.quarantined_new, 1);

  // Job 4: same fingerprint, already quarantined -> skipped without
  // burning any attempts, carrying the recorded provenance.
  EXPECT_FALSE(r.jobs[4].ok);
  EXPECT_TRUE(r.jobs[4].quarantined);
  EXPECT_EQ(r.jobs[4].attempts, 0);
  EXPECT_NE(r.jobs[4].error.find("quarantined"), std::string::npos)
      << r.jobs[4].error;
  EXPECT_EQ(r.supervision.quarantine_skips, 1);

  // Clean jobs 0 and 5 are bit-identical to an unsupervised batch over
  // the same spec vector (same indices -> same derived seed streams).
  BatchOptions plain;
  plain.seed = sup.batch.seed;
  plain.synth = sup.batch.synth;
  plain.threads = 1;
  EstimateCache plain_cache;
  plain.cache = &plain_cache;
  const auto unsup = run_opamp_batch(proc(), specs, plain);
  for (size_t i : {size_t(0), size_t(5)}) {
    ASSERT_TRUE(unsup.jobs[i].ok) << unsup.jobs[i].error;
    ASSERT_TRUE(r.jobs[i].ok) << r.jobs[i].error;
    expect_same_outcome(unsup.jobs[i].outcome, r.jobs[i].outcome, i);
  }
}

// A spec proven infeasible over the whole sizing box (APE-F001,
// src/lint/prove.h) is a fact about the input, not a flaky pipeline:
// with lint_first on, the ladder must reject it pre-solve as Permanent —
// one LintError attempt, straight to the estimate-only fallback, no
// retry rungs burned, quarantine untouched. Before the prover this exact
// spec ran a full synthesis (thousands of cost evaluations) per attempt.
TEST(SupervisorBatch, ProvenInfeasibleSpecSkipsLadderPreSolve) {
  OpAmpSpec impossible = clean_spec(0);
  // Minimum-geometry gate area over the box is ~3.84e-11 m^2; a budget
  // below it is provably unmeetable — yet the estimator (which treats
  // the budget as informational) happily estimates it, so without the
  // prover this spec grinds through a full synthesis per attempt.
  impossible.area_budget = 1e-11;

  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 1;
  sup.batch.lint_first = true;
  sup.retry.plain_retries = 2;  // would be burned if the verdict retried
  sup.retry.relaxed_retries = 1;
  sup.retry.estimate_fallback = true;
  QuarantineRegistry quarantine;
  sup.quarantine = &quarantine;
  sup.quarantine_threshold = 1;  // hair trigger: any counted failure trips

  const auto r =
      run_supervised_opamp_batch(proc(), {impossible}, sup);
  ASSERT_EQ(r.jobs.size(), 1u);

  // Attempt 1 throws the APE-F001 LintError before any solve; attempt 2
  // is the estimate-only fallback. No plain/relaxed retry ever ran.
  EXPECT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_EQ(r.jobs[0].attempts, 2);
  EXPECT_EQ(r.jobs[0].final_rung, RetryRung::EstimateOnly);
  EXPECT_EQ(r.jobs[0].outcome.comment, "estimate-only fallback");
  EXPECT_EQ(r.jobs[0].outcome.evaluations, 0) << "a solve ran after the proof";
  EXPECT_EQ(r.supervision.estimate_fallbacks, 1);
  EXPECT_EQ(r.supervision.retries, 1) << "only the rung hop, no retry ladder";

  // The verdict is deterministic input badness: even with the
  // hair-trigger threshold the quarantine registry stays empty.
  EXPECT_EQ(quarantine.quarantined_count(), 0u);
  EXPECT_EQ(r.supervision.quarantined_new, 0);

  // Without the prover the same spec burns a real synthesis run.
  SupervisorOptions blind = fast_supervised_options();
  blind.batch.threads = 1;
  blind.batch.lint_first = false;
  const auto b = run_supervised_opamp_batch(proc(), {impossible}, blind);
  ASSERT_TRUE(b.jobs[0].ok) << b.jobs[0].error;
  EXPECT_GT(b.jobs[0].outcome.evaluations, 0);
}

TEST(SupervisorBatch, PersistentSimFailureKeepsBestSoFarOutcome) {
  // Verification fails on every attempt: the ladder must keep the
  // synthesized best-so-far design (sim_failed) rather than discard it
  // for a bare estimate or an empty failure.
  std::vector<OpAmpSpec> specs{clean_spec(0)};
  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 1;
  sup.retry.plain_retries = 1;
  sup.retry.relaxed_retries = 0;
  sup.retry.estimate_fallback = true;
  sup.fault_setup = [](size_t, int, spice::FaultInjector& fi) {
    fi.fail_lu_from(0);  // every verification LU solve dies, every attempt
  };
  const auto r = run_supervised_opamp_batch(proc(), specs, sup);
  ASSERT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_TRUE(r.jobs[0].outcome.sim_failed);
  EXPECT_FALSE(r.jobs[0].estimate_fallback);
  EXPECT_EQ(r.jobs[0].attempts, 2);  // initial + plain retry, then stop
  EXPECT_FALSE(r.jobs[0].outcome.best_x.empty());
  EXPECT_EQ(r.supervision.estimate_fallbacks, 0);
}

TEST(SupervisorBatch, CancelTokenStopsTheWholeRun) {
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 8; ++i) specs.push_back(clean_spec(i));
  CancelToken cancel;
  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 1;
  sup.cancel = &cancel;
  int completed = 0;
  sup.on_job_done = [&](size_t, bool) {
    if (++completed == 3) cancel.cancel();
  };
  const auto r = run_supervised_opamp_batch(proc(), specs, sup);
  ASSERT_EQ(r.jobs.size(), 8u);
  int ok = 0, cancelled = 0;
  for (const auto& j : r.jobs) {
    if (j.ok) ++ok;
    if (j.cancelled) {
      ++cancelled;
      EXPECT_NE(j.error.find("cancelled"), std::string::npos) << j.error;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(cancelled, 5);
  EXPECT_EQ(r.supervision.cancelled_jobs, 5);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume.

TEST(SupervisorCheckpoint, FullRunRoundTripsBitExactly) {
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 5; ++i) specs.push_back(clean_spec(i));
  const std::string ckpt = temp_path("sup_full.ckpt");

  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 2;
  sup.checkpoint_path = ckpt;
  sup.checkpoint_every = 2;
  const auto first = run_supervised_opamp_batch(proc(), specs, sup);
  ASSERT_EQ(first.stats.failed, 0);
  EXPECT_GE(first.supervision.checkpoints_written, 2);

  // Resume from the complete checkpoint: nothing re-runs, everything is
  // restored bit-identically (including the re-derived simulator fields).
  SupervisorOptions resume = fast_supervised_options();
  resume.batch.threads = 2;
  resume.resume_path = ckpt;
  const auto second = run_supervised_opamp_batch(proc(), specs, resume);
  ASSERT_EQ(second.jobs.size(), specs.size());
  EXPECT_EQ(second.supervision.resumed_jobs, int(specs.size()));
  EXPECT_EQ(second.supervision.attempts, 0);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(second.jobs[i].resumed);
    ASSERT_TRUE(second.jobs[i].ok) << second.jobs[i].error;
    expect_same_outcome(first.jobs[i].outcome, second.jobs[i].outcome, i);
    EXPECT_EQ(first.jobs[i].outcome.sim.gain, second.jobs[i].outcome.sim.gain);
    EXPECT_EQ(first.jobs[i].outcome.comment, second.jobs[i].outcome.comment);
  }
  std::remove(ckpt.c_str());
}

TEST(SupervisorCheckpoint, ResumeAfterMidRunCancelMatchesUninterrupted) {
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 8; ++i) specs.push_back(clean_spec(i));

  // Reference: one uninterrupted supervised run.
  SupervisorOptions ref_opts = fast_supervised_options();
  ref_opts.batch.threads = 1;
  const auto ref = run_supervised_opamp_batch(proc(), specs, ref_opts);
  ASSERT_EQ(ref.stats.failed, 0);

  // Interrupted run: cancel after 4 completions; the checkpoint records
  // the finished jobs and marks cancelled jobs unfinished.
  const std::string ckpt = temp_path("sup_midrun.ckpt");
  CancelToken cancel;
  SupervisorOptions interrupted = fast_supervised_options();
  interrupted.batch.threads = 1;
  interrupted.checkpoint_path = ckpt;
  interrupted.cancel = &cancel;
  int completed = 0;
  interrupted.on_job_done = [&](size_t, bool) {
    if (++completed == 4) cancel.cancel();
  };
  const auto partial = run_supervised_opamp_batch(proc(), specs, interrupted);
  int finished = 0;
  for (const auto& j : partial.jobs) finished += j.ok ? 1 : 0;
  ASSERT_EQ(finished, 4);

  // Resume at 1 thread and at 8 threads: both reproduce the
  // uninterrupted run bit-identically.
  for (int threads : {1, 8}) {
    SupervisorOptions resume = fast_supervised_options();
    resume.batch.threads = threads;
    resume.resume_path = ckpt;
    const auto r = run_supervised_opamp_batch(proc(), specs, resume);
    ASSERT_EQ(r.jobs.size(), specs.size());
    EXPECT_EQ(r.supervision.resumed_jobs, 4);
    int resumed = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(r.jobs[i].ok)
          << "threads=" << threads << ": " << r.jobs[i].error;
      resumed += r.jobs[i].resumed ? 1 : 0;
      expect_same_outcome(ref.jobs[i].outcome, r.jobs[i].outcome, i);
    }
    EXPECT_EQ(resumed, 4);
  }
  std::remove(ckpt.c_str());
}

TEST(SupervisorCheckpoint, MismatchedResumeIsRejected) {
  std::vector<OpAmpSpec> specs{clean_spec(0), clean_spec(1)};
  const std::string ckpt = temp_path("sup_mismatch.ckpt");
  SupervisorOptions sup = fast_supervised_options();
  sup.batch.threads = 1;
  sup.checkpoint_path = ckpt;
  (void)run_supervised_opamp_batch(proc(), specs, sup);

  SupervisorOptions resume = fast_supervised_options();
  resume.batch.threads = 1;
  resume.resume_path = ckpt;

  // Different seed -> different run identity.
  SupervisorOptions wrong_seed = resume;
  wrong_seed.batch.seed = 9999;
  EXPECT_THROW(run_supervised_opamp_batch(proc(), specs, wrong_seed),
               ParseError);

  // Different spec content -> fingerprint mismatch.
  auto edited = specs;
  edited[1].gain += 25.0;
  EXPECT_THROW(run_supervised_opamp_batch(proc(), edited, resume), ParseError);

  // Different job count.
  auto extended = specs;
  extended.push_back(clean_spec(2));
  EXPECT_THROW(run_supervised_opamp_batch(proc(), extended, resume),
               ParseError);

  // Missing / unreadable checkpoint file.
  SupervisorOptions missing = fast_supervised_options();
  missing.resume_path = temp_path("does_not_exist.ckpt");
  EXPECT_THROW(run_supervised_opamp_batch(proc(), specs, missing), ParseError);
  std::remove(ckpt.c_str());
}

TEST(SupervisorCheckpoint, ModuleBatchesRejectCheckpointOptions) {
  std::vector<est::ModuleSpec> specs(1);
  specs[0].kind = est::ModuleKind::AudioAmp;
  specs[0].gain = 100.0;
  specs[0].bw_hz = 20e3;
  SupervisorOptions sup;
  sup.checkpoint_path = temp_path("mod.ckpt");
  EXPECT_THROW(run_supervised_module_batch(proc(), specs, sup), SpecError);
}

// ---------------------------------------------------------------------------
// Supervised module batches share the ladder.

TEST(SupervisorBatch, ModuleLadderRecoversAndIsolates) {
  using est::ModuleKind;
  using est::ModuleSpec;
  std::vector<ModuleSpec> specs(2);
  specs[0].kind = ModuleKind::AudioAmp;
  specs[0].gain = 100.0;
  specs[0].bw_hz = 20e3;
  specs[1].kind = ModuleKind::Integrator;  // not synthesizable: permanent

  SupervisorOptions sup;
  sup.batch.seed = 5;
  sup.batch.synth.use_ape_seed = true;
  sup.batch.synth.anneal.iterations = 60;
  sup.batch.threads = 1;
  sup.retry.plain_retries = 1;
  const auto r = run_supervised_module_batch(proc(), specs, sup);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_EQ(r.jobs[0].attempts, 1);
  EXPECT_FALSE(r.jobs[1].ok);
  // Permanent failure, no estimate fallback configured: one attempt only.
  EXPECT_EQ(r.jobs[1].attempts, 1);
  EXPECT_EQ(r.stats.failed, 1);
}

}  // namespace
}  // namespace ape::runtime
