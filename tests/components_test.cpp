#include "src/estimator/components.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/verify.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

class ComponentTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
  ComponentEstimator ce_{proc_};
};

TEST_F(ComponentTest, DcVoltProducesReference) {
  ComponentSpec s{ComponentKind::DcVolt, 100e-6, 0.0, 2.5, 0.0};
  const ComponentDesign d = ce_.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc_);
  EXPECT_NEAR(r.gain, 2.5, 0.1);  // simulated output voltage
  EXPECT_NEAR(r.power, d.perf.dc_power, d.perf.dc_power * 0.1);
}

TEST_F(ComponentTest, DcVoltRejectsRailReference) {
  ComponentSpec s{ComponentKind::DcVolt, 100e-6, 0.0, 4.95, 0.0};
  EXPECT_THROW(ce_.estimate(s), SpecError);
}

TEST_F(ComponentTest, MirrorCopiesCurrentWithinLambdaError) {
  ComponentSpec s{ComponentKind::CurrentMirror, 100e-6, 0.0, 0.0, 0.0};
  const ComponentDesign d = ce_.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc_);
  EXPECT_NEAR(r.current, 100e-6, 8e-6);
  EXPECT_NEAR(d.perf.current, r.current, r.current * 0.05);
  EXPECT_GT(r.zout, 1e5);
}

TEST_F(ComponentTest, WilsonBeatsSimpleMirrorOutputImpedance) {
  ComponentSpec sm{ComponentKind::CurrentMirror, 100e-6, 0.0, 0.0, 0.0};
  ComponentSpec sw{ComponentKind::WilsonSource, 100e-6, 0.0, 0.0, 0.0};
  const ComponentSimReport rm = simulate_component(ce_.estimate(sm), proc_);
  const ComponentSimReport rw = simulate_component(ce_.estimate(sw), proc_);
  EXPECT_GT(rw.zout, 10.0 * rm.zout);
}

TEST_F(ComponentTest, CascodeAlsoBoostsImpedance) {
  ComponentSpec sm{ComponentKind::CurrentMirror, 100e-6, 0.0, 0.0, 0.0};
  ComponentSpec sc{ComponentKind::CascodeSource, 100e-6, 0.0, 0.0, 0.0};
  const ComponentSimReport rm = simulate_component(ce_.estimate(sm), proc_);
  const ComponentSimReport rc = simulate_component(ce_.estimate(sc), proc_);
  EXPECT_GT(rc.zout, 10.0 * rm.zout);
}

TEST_F(ComponentTest, GainNmosHitsGainTarget) {
  ComponentSpec s{ComponentKind::GainNmos, 120e-6, 8.5, 0.0, 1e-12};
  const ComponentDesign d = ce_.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc_);
  EXPECT_NEAR(d.perf.gain, -8.5, 0.5);
  EXPECT_NEAR(r.gain, d.perf.gain, std::fabs(d.perf.gain) * 0.1);
}

TEST_F(ComponentTest, GainNmosInfeasibleGainThrows) {
  ComponentSpec s{ComponentKind::GainNmos, 120e-6, 500.0, 0.0, 1e-12};
  EXPECT_THROW(ce_.estimate(s), SpecError);
}

TEST_F(ComponentTest, GainCmosHalfUsesLessPower) {
  ComponentSpec full{ComponentKind::GainCmos, 120e-6, 5.0, 0.0, 1e-12};
  ComponentSpec half{ComponentKind::GainCmosHalf, 120e-6, 5.0, 0.0, 1e-12};
  const ComponentDesign df = ce_.estimate(full);
  const ComponentDesign dh = ce_.estimate(half);
  EXPECT_LT(dh.perf.dc_power, 0.6 * df.perf.dc_power);
  EXPECT_LT(dh.perf.ugf_hz, df.perf.ugf_hz);
}

TEST_F(ComponentTest, FollowerGainBelowUnity) {
  ComponentSpec s{ComponentKind::Follower, 100e-6, 0.0, 0.0, 1e-12};
  const ComponentDesign d = ce_.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc_);
  EXPECT_GT(d.perf.gain, 0.7);
  EXPECT_LT(d.perf.gain, 1.0);
  EXPECT_NEAR(r.gain, d.perf.gain, 0.05);
  EXPECT_LT(d.perf.zout, 5e3);
}

TEST_F(ComponentTest, DiffCmosMatchesPaperEquationFive) {
  // Adm ~ gm_i / (gd_l + gd_i): the composed estimate must agree with the
  // sized devices' small-signal parameters.
  ComponentSpec s{ComponentKind::DiffCmos, 1e-6, 1000.0, 0.0, 0.5e-12};
  const ComponentDesign d = ce_.estimate(s);
  const TransistorDesign& pair = d.transistors[0];
  const TransistorDesign& load = d.transistors[3];
  EXPECT_NEAR(d.perf.gain, pair.gm / (pair.gds + load.gds),
              d.perf.gain * 1e-6);
}

TEST_F(ComponentTest, DiffCmosSimulationAgreesWithEstimate) {
  ComponentSpec s{ComponentKind::DiffCmos, 1e-6, 1000.0, 0.0, 0.5e-12};
  const ComponentDesign d = ce_.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc_);
  EXPECT_NEAR(r.gain, d.perf.gain, d.perf.gain * 0.1);
  ASSERT_TRUE(r.ugf_hz.has_value());
  EXPECT_NEAR(*r.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.25);
  ASSERT_TRUE(r.cmrr_db.has_value());
  EXPECT_NEAR(*r.cmrr_db, d.perf.cmrr_db, 20.0);
}

TEST_F(ComponentTest, DiffNmosNegativeModestGain) {
  ComponentSpec s{ComponentKind::DiffNmos, 1e-6, 10.0, 0.0, 0.5e-12};
  const ComponentDesign d = ce_.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc_);
  EXPECT_NEAR(d.perf.gain, -10.0, 1.0);
  EXPECT_NEAR(r.gain, d.perf.gain, std::fabs(d.perf.gain) * 0.15);
}

TEST_F(ComponentTest, TestbenchMissingRoleThrows) {
  ComponentSpec s{ComponentKind::CurrentMirror, 100e-6, 0.0, 0.0, 0.0};
  ComponentDesign d = ce_.estimate(s);
  d.roles[0] = "bogus";
  EXPECT_THROW(d.testbench(proc_), LookupError);
}

TEST_F(ComponentTest, ToStringCoversAllKinds) {
  for (auto k : {ComponentKind::DcVolt, ComponentKind::CurrentMirror,
                 ComponentKind::WilsonSource, ComponentKind::CascodeSource,
                 ComponentKind::GainNmos, ComponentKind::GainCmos,
                 ComponentKind::GainCmosHalf, ComponentKind::Follower,
                 ComponentKind::DiffNmos, ComponentKind::DiffCmos}) {
    EXPECT_STRNE(to_string(k), "?");
  }
}

/// Property sweep: mirror current copy tracks Ibias across decades, and
/// the estimate matches the simulation within a tight band.
class MirrorSweep : public ::testing::TestWithParam<double> {};

TEST_P(MirrorSweep, EstimateTracksSimulation) {
  const Process proc = Process::default_1u2();
  const ComponentEstimator ce(proc);
  const double ibias = GetParam();
  ComponentSpec s{ComponentKind::CurrentMirror, ibias, 0.0, 0.0, 0.0};
  const ComponentDesign d = ce.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc);
  EXPECT_NEAR(r.current, ibias, ibias * 0.1);
  EXPECT_NEAR(d.perf.current, r.current, r.current * 0.05);
  EXPECT_NEAR(d.perf.zout, r.zout, r.zout * 0.3);
}

INSTANTIATE_TEST_SUITE_P(Currents, MirrorSweep,
                         ::testing::Values(1e-6, 10e-6, 100e-6, 500e-6));

/// Property sweep: gain-stage estimates agree with simulation across the
/// feasible gain range.
class GainSweep : public ::testing::TestWithParam<double> {};

TEST_P(GainSweep, CmosStageEstimateVsSim) {
  const Process proc = Process::default_1u2();
  const ComponentEstimator ce(proc);
  ComponentSpec s{ComponentKind::GainCmos, 120e-6, GetParam(), 0.0, 1e-12};
  const ComponentDesign d = ce.estimate(s);
  const ComponentSimReport r = simulate_component(d, proc);
  EXPECT_NEAR(r.gain, d.perf.gain, std::fabs(d.perf.gain) * 0.1);
  EXPECT_NEAR(d.perf.gain, -GetParam(), GetParam() * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Gains, GainSweep, ::testing::Values(3.0, 8.0, 15.0));

}  // namespace
}  // namespace ape::est
