#include "src/estimator/netlist.h"

#include <gtest/gtest.h>

#include "src/estimator/transistor.h"
#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/parser.h"

namespace ape::est {
namespace {

TEST(NetlistBuilder, EmitsParsableElements) {
  const Process proc = Process::default_1u2();
  NetlistBuilder nb("builder test");
  nb.models(proc);
  nb.comment("a comment");
  nb.vsource("Vdd", "vdd", "0", "DC 5");
  nb.resistor("vdd", "a", 1e3);
  nb.capacitor("a", "0", 1e-12);
  nb.inductor("a", "b", 1e-3);
  nb.vcvs("E1", "c", "0", "a", "0", 2.0);
  nb.isource("I1", "vdd", "b", "DC 1u");
  const TransistorEstimator xe(proc);
  const TransistorDesign t =
      xe.size_for_gm_id(spice::MosType::Nmos, 100e-6, 10e-6);
  nb.mosfet(proc, t, "b", "a", "0", "0");

  spice::Circuit ckt = spice::parse_netlist(nb.str());
  EXPECT_EQ(ckt.title(), "builder test");
  EXPECT_NE(ckt.find("Vdd"), nullptr);
  EXPECT_NE(ckt.find("E1"), nullptr);
  EXPECT_NO_THROW(spice::dc_operating_point(ckt));
}

TEST(NetlistBuilder, MosfetGeometrySurvivesRoundTrip) {
  const Process proc = Process::default_1u2();
  const TransistorEstimator xe(proc);
  const TransistorDesign t =
      xe.size_for_gm_id(spice::MosType::Pmos, 50e-6, 5e-6);
  NetlistBuilder nb("roundtrip");
  nb.models(proc);
  nb.vsource("V1", "d", "0", "DC 1");
  nb.mosfet(proc, t, "d", "g", "s", "s");
  nb.resistor("g", "0", 1.0);
  nb.resistor("s", "0", 1.0);

  spice::Circuit ckt = spice::parse_netlist(nb.str());
  const auto& m = ckt.find_as<spice::Mosfet>("M1");
  EXPECT_NEAR(m.width(), t.w, t.w * 1e-5);
  EXPECT_NEAR(m.length(), t.l, t.l * 1e-5);
  EXPECT_EQ(m.model().type, spice::MosType::Pmos);
}

TEST(NetlistBuilder, ModelCardRoundTripsAllParameters) {
  const Process proc = Process::default_1u2_level3();
  const std::string card = spice::to_card_string(proc.nmos);
  const spice::MosModelCard parsed = spice::parse_model_card(card);
  EXPECT_EQ(parsed.level, proc.nmos.level);
  EXPECT_DOUBLE_EQ(parsed.vto, proc.nmos.vto);
  EXPECT_DOUBLE_EQ(parsed.kp, proc.nmos.kp);
  EXPECT_DOUBLE_EQ(parsed.lambda, proc.nmos.lambda);
  EXPECT_DOUBLE_EQ(parsed.theta, proc.nmos.theta);
  EXPECT_DOUBLE_EQ(parsed.vmax, proc.nmos.vmax);
  EXPECT_DOUBLE_EQ(parsed.lref, proc.nmos.lref);
  EXPECT_DOUBLE_EQ(parsed.cgso, proc.nmos.cgso);
  EXPECT_DOUBLE_EQ(parsed.cj, proc.nmos.cj);
}

TEST(NetlistBuilder, FreshNodesAreUnique) {
  NetlistBuilder nb("x");
  const std::string a = nb.fresh("n");
  const std::string b = nb.fresh("n");
  EXPECT_NE(a, b);
}

TEST(Process, DefaultsAreConsistent) {
  const Process p = Process::default_1u2();
  EXPECT_EQ(p.nmos.type, spice::MosType::Nmos);
  EXPECT_EQ(p.pmos.type, spice::MosType::Pmos);
  EXPECT_GT(p.nmos.vto, 0.0);
  EXPECT_LT(p.pmos.vto, 0.0);
  EXPECT_GT(p.nmos.kp, p.pmos.kp);  // electron vs hole mobility
  EXPECT_GT(p.vdd, p.vss);
  EXPECT_EQ(&p.card(spice::MosType::Nmos), &p.nmos);
  EXPECT_EQ(&p.card(spice::MosType::Pmos), &p.pmos);
}

TEST(Process, FromCardsValidatesTypes) {
  const Process p = Process::default_1u2();
  EXPECT_NO_THROW(Process::from_cards(p.nmos, p.pmos));
  EXPECT_THROW(Process::from_cards(p.pmos, p.nmos), SpecError);
}

TEST(Process, Level3VariantKeepsGeometryLimits) {
  const Process p = Process::default_1u2_level3();
  EXPECT_EQ(p.nmos.level, 3);
  EXPECT_GT(p.nmos.theta, 0.0);
  EXPECT_GT(p.nmos.vmax, 0.0);
  EXPECT_EQ(p.lmin, Process::default_1u2().lmin);
}

}  // namespace
}  // namespace ape::est
