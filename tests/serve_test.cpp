/// Tests of the estimation service (DESIGN.md section 11): frame
/// protocol robustness (malformed, truncated, oversized and zero-length
/// frames), admission control and load shedding under an overload soak,
/// per-connection quotas, request deadlines, the shared bounded cache,
/// and graceful drain — both via request_drain() and via a real SIGTERM
/// through the signal wake pipe. Runs under ThreadSanitizer in CI
/// (`ctest -L "runtime|supervision|serve"` in the TSan tree).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/json.h"
#include "src/util/signal.h"

namespace ape::serve {
namespace {

const est::Process& proc() {
  static const est::Process p = est::Process::default_1u2();
  return p;
}

/// Fresh socket path per test (each gtest test runs in its own process
/// via ctest, but tests within one manual run must not collide either).
std::string test_socket(const std::string& tag) {
  return "/tmp/ape_serve_test_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

/// A Server running serve_forever() on a background thread, drained and
/// joined on destruction. `exit_code` is valid after stop().
struct TestDaemon {
  explicit TestDaemon(ServeOptions options, int wake_fd = -1)
      : server(proc(), std::move(options)) {
    runner = std::thread([this, wake_fd] { exit_code = server.serve_forever(wake_fd); });
  }
  ~TestDaemon() { stop(); }

  int stop() {
    server.request_drain();
    if (runner.joinable()) runner.join();
    return exit_code;
  }

  Server server;
  std::thread runner;
  int exit_code = -1;
};

ServeOptions base_options(const std::string& tag) {
  ServeOptions o;
  o.socket_path = test_socket(tag);
  o.max_in_flight = 2;
  o.queue_slots = 2;
  o.synth_iterations = 30;  // keep heavy ops cheap: the tests probe the
  o.max_deadline_s = 30.0;  // lifecycle, not synthesis quality
  o.drain_grace_s = 2.0;
  return o;
}

json::Value call_json(Client& client, const std::string& request) {
  return json::parse(client.call(request));
}

std::string field(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

double num_field(const json::Value& doc, const char* key) {
  const json::Value* v = doc.find(key);
  return v != nullptr ? v->as_number() : -1.0;
}

// ---------------------------------------------------------------------------
// Frame protocol (no daemon: a socketpair is both ends of the wire).

struct SocketPair {
  int fds[2];
  SocketPair() { EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    close(fds[0]);
    close(fds[1]);
  }
};

TEST(ServeProtocol, FrameRoundTrip) {
  SocketPair sp;
  ASSERT_TRUE(write_frame(sp.fds[0], "{\"op\":\"ping\"}"));
  std::string payload;
  EXPECT_EQ(read_frame(sp.fds[1], &payload), FrameStatus::Ok);
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
}

TEST(ServeProtocol, CleanEofOnFrameBoundary) {
  SocketPair sp;
  close(sp.fds[0]);
  sp.fds[0] = -1;
  std::string payload;
  EXPECT_EQ(read_frame(sp.fds[1], &payload), FrameStatus::Eof);
  sp.fds[0] = dup(sp.fds[1]);  // keep the destructor's close() valid
}

TEST(ServeProtocol, TruncatedHeaderAndPayloadDetected) {
  {
    SocketPair sp;
    const unsigned char half_header[2] = {0, 0};
    ASSERT_EQ(write(sp.fds[0], half_header, 2), 2);
    shutdown(sp.fds[0], SHUT_WR);
    std::string payload;
    EXPECT_EQ(read_frame(sp.fds[1], &payload), FrameStatus::Truncated);
  }
  {
    SocketPair sp;
    const unsigned char header[4] = {0, 0, 0, 10};  // promises 10 bytes
    ASSERT_EQ(write(sp.fds[0], header, 4), 4);
    ASSERT_EQ(write(sp.fds[0], "abc", 3), 3);  // delivers 3
    shutdown(sp.fds[0], SHUT_WR);
    std::string payload;
    EXPECT_EQ(read_frame(sp.fds[1], &payload), FrameStatus::Truncated);
  }
}

TEST(ServeProtocol, OversizedAndZeroLengthRejected) {
  {
    SocketPair sp;
    const unsigned char header[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(write(sp.fds[0], header, 4), 4);
    std::string payload;
    EXPECT_EQ(read_frame(sp.fds[1], &payload, 1024), FrameStatus::Oversized);
  }
  {
    SocketPair sp;
    const unsigned char header[4] = {0, 0, 0, 0};
    ASSERT_EQ(write(sp.fds[0], header, 4), 4);
    std::string payload;
    EXPECT_EQ(read_frame(sp.fds[1], &payload), FrameStatus::BadLength);
  }
}

TEST(ServeProtocol, RequestParsingRejectsBadInput) {
  EXPECT_THROW(parse_request("not json"), ParseError);
  EXPECT_THROW(parse_request("{\"op\":\"explode\"}"), ParseError);
  EXPECT_THROW(parse_request("{\"id\":\"x\"}"), ParseError);  // missing op
  EXPECT_THROW(parse_request("{\"op\":\"estimate\",\"spec\":{\"gian\":5}}"),
               ParseError);  // typoed key must not be silently ignored
  EXPECT_THROW(
      parse_request("{\"op\":\"synthesize\",\"timeout_ms\":-5}"),
      ParseError);
  EXPECT_THROW(parse_request("{\"op\":\"simulate\"}"), ParseError);

  const Request r = parse_request(
      "{\"op\":\"synthesize\",\"id\":\"r9\",\"timeout_ms\":250,"
      "\"iterations\":40,\"spec\":{\"gain\":5000,\"source\":\"wilson\"}}");
  EXPECT_EQ(r.kind, RequestKind::Synthesize);
  EXPECT_EQ(r.id, "r9");
  EXPECT_DOUBLE_EQ(r.timeout_ms, 250.0);
  EXPECT_EQ(r.iterations, 40);
  EXPECT_DOUBLE_EQ(r.spec.gain, 5000.0);
  EXPECT_EQ(r.spec.source, est::CurrentSourceKind::Wilson);
}

// ---------------------------------------------------------------------------
// Request lifecycle against a live daemon.

TEST(ServeDaemon, PingEstimateAndStats) {
  TestDaemon daemon(base_options("basic"));
  Client client(daemon.server.socket_path());

  json::Value pong = call_json(client, "{\"op\":\"ping\",\"id\":\"p\"}");
  EXPECT_EQ(field(pong, "status"), "ok");
  EXPECT_EQ(field(pong, "id"), "p");

  json::Value est = call_json(
      client,
      "{\"op\":\"estimate\",\"id\":\"e\",\"spec\":{\"gain\":5000,"
      "\"ugf_hz\":1e6,\"cload\":10e-12}}");
  EXPECT_EQ(field(est, "status"), "ok");
  const json::Value* perf = est.find("perf");
  ASSERT_NE(perf, nullptr);
  EXPECT_GT(perf->find("gain")->as_number(), 0.0);

  // Same spec again: served from the shared cache.
  call_json(client,
            "{\"op\":\"estimate\",\"spec\":{\"gain\":5000,\"ugf_hz\":1e6,"
            "\"cload\":10e-12}}");
  json::Value stats = call_json(client, "{\"op\":\"stats\"}");
  EXPECT_EQ(field(stats, "status"), "ok");
  EXPECT_GE(num_field(stats, "cache_hits"), 1.0);
  EXPECT_EQ(num_field(stats, "requests"), 4.0);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, CornerSweepReturnsAYieldReport) {
  ServeOptions options = base_options("sweep");
  options.mc_samples_cap = 8;  // the cap bounds client-requested depth
  TestDaemon daemon(options);
  Client client(daemon.server.socket_path());

  json::Value r = call_json(
      client,
      "{\"op\":\"corner_sweep\",\"id\":\"cs\",\"spec\":{\"gain\":150,"
      "\"ugf_hz\":2e6,\"ibias\":10e-6,\"cload\":10e-12},"
      "\"corners\":\"tm,ws\",\"mc_samples\":64}");
  EXPECT_EQ(field(r, "status"), "ok");
  EXPECT_EQ(field(r, "corners"), "tm,ws");
  EXPECT_EQ(num_field(r, "mc_samples"), 8.0);          // capped from 64
  EXPECT_EQ(num_field(r, "samples_per_corner"), 8.0);
  EXPECT_EQ(field(r, "corner_estimate_ok"), "11");
  const json::Value* report = r.find("yield_report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->find("samples")->as_number(), 16.0);  // 2 corners x 8
  EXPECT_GE(report->find("yield")->as_number(), 0.0);
  ASSERT_NE(report->find("corners"), nullptr);

  // Identical request: phase A + tm re-estimates hit the shared cache.
  call_json(client,
            "{\"op\":\"corner_sweep\",\"spec\":{\"gain\":150,\"ugf_hz\":2e6,"
            "\"ibias\":10e-6,\"cload\":10e-12},\"corners\":\"tm,ws\"}");
  json::Value stats = call_json(client, "{\"op\":\"stats\"}");
  EXPECT_GE(num_field(stats, "cache_hits"), 3.0);

  // Malformed selections and negative sample counts are error responses,
  // not connection damage.
  json::Value bad = call_json(
      client,
      "{\"op\":\"corner_sweep\",\"spec\":{\"gain\":150},"
      "\"corners\":\"tm,bogus\"}");
  EXPECT_EQ(field(bad, "status"), "error");
  json::Value neg = call_json(
      client, "{\"op\":\"corner_sweep\",\"spec\":{\"gain\":150},"
              "\"mc_samples\":-1}");
  EXPECT_EQ(field(neg, "status"), "error");
  EXPECT_EQ(daemon.stop(), 0);
}

// A synthesize spec proven infeasible over the whole sizing box
// (APE-F001) is answered at admission — status "infeasible" with the
// proof attached — without consuming an executor slot or any synthesis
// budget. Feasible requests are untouched.
TEST(ServeDaemon, InfeasibleSynthesizeRejectedAtAdmissionWithProof) {
  TestDaemon daemon(base_options("infeasible"));
  Client client(daemon.server.socket_path());

  // Gate-area budget below the minimum-geometry area (~3.84e-11 m^2):
  // provably unmeetable, yet estimator-sane — exactly the spec that
  // previously burned a full supervised synthesis.
  json::Value r = call_json(
      client,
      "{\"op\":\"synthesize\",\"id\":\"inf\",\"spec\":{\"gain\":150,"
      "\"ugf_hz\":2e6,\"ibias\":10e-6,\"cload\":10e-12,"
      "\"area_budget\":1e-11}}");
  EXPECT_EQ(field(r, "status"), "infeasible");
  EXPECT_EQ(field(r, "id"), "inf");
  const json::Value* findings =
      r.find("proof") != nullptr ? r.find("proof")->find("findings") : nullptr;
  ASSERT_NE(findings, nullptr) << "infeasible response must carry the proof";
  ASSERT_FALSE(findings->items.empty());
  EXPECT_EQ(findings->items[0].find("rule")->as_string(), "APE-F001");

  // A feasible synthesize on the same connection still works.
  json::Value ok = call_json(
      client,
      "{\"op\":\"synthesize\",\"spec\":{\"gain\":150,\"ugf_hz\":2e6,"
      "\"ibias\":10e-6,\"cload\":10e-12},\"iterations\":30}");
  EXPECT_EQ(field(ok, "status"), "ok");

  // The rejection is accounted in its own counter and never entered the
  // executor: completed_ok counts only the feasible job.
  json::Value stats = call_json(client, "{\"op\":\"stats\"}");
  EXPECT_EQ(num_field(stats, "proven_infeasible"), 1.0);
  EXPECT_EQ(num_field(stats, "completed_ok"), 1.0);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, MalformedPayloadDoesNotCorruptTheConnection) {
  TestDaemon daemon(base_options("malformed"));
  Client client(daemon.server.socket_path());

  json::Value bad = call_json(client, "this is not json {{{");
  EXPECT_EQ(field(bad, "status"), "error");
  json::Value worse = call_json(client, "{\"op\":\"no-such-op\"}");
  EXPECT_EQ(field(worse, "status"), "error");

  // The same connection still serves well-formed requests.
  json::Value pong = call_json(client, "{\"op\":\"ping\"}");
  EXPECT_EQ(field(pong, "status"), "ok");

  json::Value stats = call_json(client, "{\"op\":\"stats\"}");
  EXPECT_EQ(num_field(stats, "malformed_frames"), 2.0);
  EXPECT_EQ(num_field(stats, "framing_errors"), 0.0);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, OversizedFrameClosesOnlyThatConnection) {
  ServeOptions options = base_options("oversized");
  options.max_frame_bytes = 4096;
  TestDaemon daemon(options);

  Client victim(daemon.server.socket_path());
  const unsigned char huge[4] = {0x7f, 0xff, 0xff, 0xff};
  ASSERT_TRUE(victim.send_raw(huge, 4));
  // The daemon answers why, then closes this connection.
  const std::string reply = victim.receive();
  EXPECT_NE(reply.find("oversized"), std::string::npos);
  std::string extra;
  EXPECT_EQ(read_frame(victim.fd(), &extra), FrameStatus::Eof);

  // A fresh connection is unaffected.
  Client fresh(daemon.server.socket_path());
  EXPECT_EQ(field(call_json(fresh, "{\"op\":\"ping\"}"), "status"), "ok");
  json::Value stats = call_json(fresh, "{\"op\":\"stats\"}");
  EXPECT_GE(num_field(stats, "framing_errors"), 1.0);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, TruncatedFrameIsContainedToItsConnection) {
  TestDaemon daemon(base_options("truncated"));
  {
    Client victim(daemon.server.socket_path());
    const unsigned char header[4] = {0, 0, 0, 100};  // promises 100 bytes
    ASSERT_TRUE(victim.send_raw(header, 4));
    ASSERT_TRUE(victim.send_raw("short", 5));  // delivers 5, then EOF
    victim.shutdown_write();
    std::string extra;
    EXPECT_EQ(read_frame(victim.fd(), &extra), FrameStatus::Eof);
  }
  Client fresh(daemon.server.socket_path());
  EXPECT_EQ(field(call_json(fresh, "{\"op\":\"ping\"}"), "status"), "ok");
  json::Value stats = call_json(fresh, "{\"op\":\"stats\"}");
  EXPECT_GE(num_field(stats, "framing_errors"), 1.0);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, PerConnectionQuotaSheds) {
  ServeOptions options = base_options("quota");
  options.quota_per_conn = 2;
  TestDaemon daemon(options);

  Client greedy(daemon.server.socket_path());
  const std::string est =
      "{\"op\":\"estimate\",\"spec\":{\"gain\":5000,\"ugf_hz\":1e6}}";
  EXPECT_EQ(field(call_json(greedy, est), "status"), "ok");
  EXPECT_EQ(field(call_json(greedy, est), "status"), "ok");
  json::Value shed = call_json(greedy, est);
  EXPECT_EQ(field(shed, "status"), "shed");
  EXPECT_EQ(field(shed, "reason"), "quota");
  // ping / stats are exempt (they are how you observe a shedding daemon)...
  EXPECT_EQ(field(call_json(greedy, "{\"op\":\"ping\"}"), "status"), "ok");
  // ...and a new connection gets a fresh quota.
  Client fresh(daemon.server.socket_path());
  EXPECT_EQ(field(call_json(fresh, est), "status"), "ok");
  json::Value stats = call_json(fresh, "{\"op\":\"stats\"}");
  EXPECT_EQ(num_field(stats, "shed_quota"), 1.0);
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, DeadlineMidSolveStillAnswers) {
  TestDaemon daemon(base_options("deadline"));
  Client client(daemon.server.socket_path());
  // A deadline far too small for 4000 anneal iterations: the job must
  // stop at a budget probe and answer — degraded estimate or best-so-far
  // with deadline_hit — never hang past the cap.
  json::Value r = call_json(
      client,
      "{\"op\":\"synthesize\",\"id\":\"d\",\"timeout_ms\":1,"
      "\"iterations\":4000,\"spec\":{\"gain\":2000,\"ugf_hz\":1e6,"
      "\"cload\":5e-12}}");
  EXPECT_EQ(field(r, "id"), "d");
  const std::string status = field(r, "status");
  EXPECT_TRUE(status == "ok" || status == "shed") << status;
  if (status == "ok") {
    const json::Value* degraded = r.find("degraded");
    const json::Value* hit = r.find("deadline_hit");
    EXPECT_TRUE((degraded != nullptr && degraded->boolean) ||
                (hit != nullptr && hit->boolean));
  }
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, SimulateSolvesADeck) {
  TestDaemon daemon(base_options("simulate"));
  Client client(daemon.server.socket_path());
  json::Value r = call_json(
      client,
      "{\"op\":\"simulate\",\"id\":\"sim\",\"netlist\":\"divider\\n"
      "V1 in 0 2\\nR1 in out 1k\\nR2 out 0 1k\\n.end\\n\"}");
  ASSERT_EQ(field(r, "status"), "ok") << field(r, "error");
  const json::Value* nodes = r.find("nodes");
  ASSERT_NE(nodes, nullptr);
  const json::Value* out = nodes->find("out");
  ASSERT_NE(out, nullptr);
  EXPECT_NEAR(out->as_number(), 1.0, 1e-6);

  json::Value bad = call_json(
      client, "{\"op\":\"simulate\",\"netlist\":\"garbage deck\\n\"}");
  EXPECT_EQ(field(bad, "status"), "error");
  EXPECT_EQ(daemon.stop(), 0);
}

// ---------------------------------------------------------------------------
// Overload and drain.

TEST(ServeDaemon, OverloadSoakShedsInsteadOfCollapsing) {
  ServeOptions options = base_options("soak");
  options.max_in_flight = 2;   // K
  options.queue_slots = 2;
  options.cache_capacity = 8;  // force eviction churn under load
  TestDaemon daemon(options);

  // 4x max_in_flight concurrent synthesize bursts, each a distinct spec
  // (cache misses, real work). Every request is answered ok or shed;
  // nothing hangs, nothing crashes, nothing gets a corrupt frame.
  const int burst = 4 * options.max_in_flight;
  std::vector<std::thread> threads;
  std::atomic<int> answered{0}, rejected{0};
  for (int i = 0; i < burst; ++i) {
    threads.emplace_back([&, i] {
      Client client(daemon.server.socket_path());
      const std::string request =
          "{\"op\":\"synthesize\",\"id\":\"s" + std::to_string(i) +
          "\",\"iterations\":30,\"spec\":{\"gain\":" +
          std::to_string(2000 + i * 10) +
          ",\"ugf_hz\":1e6,\"cload\":5e-12}}";
      const json::Value r = json::parse(client.call(request));
      const std::string s = field(r, "status");
      ASSERT_TRUE(s == "ok" || s == "shed") << s;
      answered.fetch_add(1);
      if (s == "shed") rejected.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(answered.load(), burst);  // every request got a decision

  const ServerStats s = daemon.server.stats();
  EXPECT_EQ(s.accepted + s.shed_overload, burst);
  EXPECT_LE(s.peak_in_flight, options.max_in_flight + options.queue_slots);
  EXPECT_EQ(daemon.server.load(), 0);  // nothing leaked a load slot

  // The bounded cache stayed bounded through the churn.
  const runtime::CacheStats cs = daemon.server.cache_stats();
  EXPECT_LE(cs.entries, static_cast<long>(options.cache_capacity));
  EXPECT_EQ(daemon.stop(), 0);
}

TEST(ServeDaemon, DrainAnswersEveryAcceptedRequest) {
  ServeOptions options = base_options("drain");
  options.max_in_flight = 1;
  options.queue_slots = 1;
  options.drain_grace_s = 0.2;  // force the cancel path, not just the grace
  TestDaemon daemon(options);

  std::vector<std::thread> threads;
  std::atomic<int> answered{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      try {
        Client client(daemon.server.socket_path());
        const json::Value r = json::parse(client.call(
            "{\"op\":\"synthesize\",\"id\":\"dr" + std::to_string(i) +
            "\",\"iterations\":2000,\"spec\":{\"gain\":" +
            std::to_string(3000 + i) + ",\"ugf_hz\":1e6}}"));
        const std::string s = field(r, "status");
        EXPECT_TRUE(s == "ok" || s == "shed") << s;
        answered.fetch_add(1);
      } catch (const Error&) {
        // Connection raced the listener close before its frame was read:
        // that request was never *accepted*, so no answer is owed.
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(daemon.stop(), 0);  // drain: finish/shed in-flight, exit 0
  for (auto& t : threads) t.join();

  const ServerStats s = daemon.server.stats();
  // Every accepted heavy request produced exactly one response: it
  // completed (possibly degraded), was cancelled into a shed "draining"
  // answer, or failed with an error — no fourth fate, nothing dropped.
  EXPECT_EQ(s.accepted, s.completed_ok + s.cancelled + s.errors);
  EXPECT_EQ(daemon.server.load(), 0);
}

TEST(ServeDaemon, SigtermWakeFdTriggersCleanDrain) {
  // The real signal path: install the handler, raise SIGTERM, and hand
  // the wake pipe to serve_forever — it must observe the wake, drain and
  // return 0 without any request in flight getting lost.
  static CancelToken stop;
  util::install_cancel_on_signal(stop);

  ServeOptions options = base_options("sigterm");
  Server server(proc(), options);
  Client client(server.socket_path());

  std::raise(SIGTERM);
  ASSERT_TRUE(stop.cancelled());
  EXPECT_EQ(server.serve_forever(util::signal_wake_fd()), 0);
  EXPECT_TRUE(server.draining());
}

TEST(ServeDaemon, RequestsDuringDrainAreShedAsDraining) {
  TestDaemon daemon(base_options("drain-shed"));
  Client client(daemon.server.socket_path());
  EXPECT_EQ(field(call_json(client, "{\"op\":\"ping\"}"), "status"), "ok");

  daemon.server.request_drain();
  // The established connection's next heavy request sheds as draining
  // (the reader may instead see the drain's half-close as EOF — both are
  // clean outcomes; what must not happen is a hang or a torn frame).
  try {
    const json::Value r = call_json(
        client, "{\"op\":\"estimate\",\"spec\":{\"gain\":1000}}");
    EXPECT_EQ(field(r, "status"), "shed");
    EXPECT_EQ(field(r, "reason"), "draining");
  } catch (const Error&) {
  }
  EXPECT_EQ(daemon.stop(), 0);
}

}  // namespace
}  // namespace ape::serve
