#include "src/util/units.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace ape::units {
namespace {

TEST(Units, ParsesPlainNumbers) {
  EXPECT_DOUBLE_EQ(*parse("42"), 42.0);
  EXPECT_DOUBLE_EQ(*parse("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(*parse("1e-6"), 1e-6);
  EXPECT_DOUBLE_EQ(*parse("2.5E3"), 2.5e3);
}

TEST(Units, ParsesSiSuffixes) {
  EXPECT_DOUBLE_EQ(*parse("1k"), 1e3);
  EXPECT_DOUBLE_EQ(*parse("2.2u"), 2.2e-6);
  EXPECT_DOUBLE_EQ(*parse("10n"), 10e-9);
  EXPECT_DOUBLE_EQ(*parse("4p"), 4e-12);
  EXPECT_DOUBLE_EQ(*parse("3f"), 3e-15);
  EXPECT_DOUBLE_EQ(*parse("1.5m"), 1.5e-3);
  EXPECT_DOUBLE_EQ(*parse("7g"), 7e9);
  EXPECT_DOUBLE_EQ(*parse("2t"), 2e12);
}

TEST(Units, MegIsCaseInsensitiveAndDistinctFromMilli) {
  EXPECT_DOUBLE_EQ(*parse("1MEG"), 1e6);
  EXPECT_DOUBLE_EQ(*parse("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(*parse("1M"), 1e-3);  // SPICE: M is milli!
}

TEST(Units, MilIsMicroInch) { EXPECT_NEAR(*parse("1mil"), 25.4e-6, 1e-12); }

TEST(Units, IgnoresTrailingUnitNames) {
  EXPECT_DOUBLE_EQ(*parse("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(*parse("5kohm"), 5e3);
  EXPECT_DOUBLE_EQ(*parse("3V"), 3.0);
}

TEST(Units, RejectsGarbage) {
  EXPECT_FALSE(parse("abc").has_value());
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("1.2.3").has_value());
  EXPECT_FALSE(parse("4k2").has_value());
}

TEST(Units, ParseOrThrowReportsContext) {
  EXPECT_THROW(parse_or_throw("xyz", "line 7"), ape::ParseError);
  EXPECT_DOUBLE_EQ(parse_or_throw("1u", "ctx"), 1e-6);
}

TEST(Units, FormatEngPicksPrefix) {
  EXPECT_EQ(format_eng(2.5e-6), "2.5u");
  EXPECT_EQ(format_eng(1e3), "1k");
  EXPECT_EQ(format_eng(0.0), "0");
}

TEST(Units, FormatEngRoundTripsThroughParse) {
  for (double v : {1.0, 3.3e-9, 4.7e3, 2.2e-12, 8.1e6}) {
    EXPECT_NEAR(*parse(format_eng(v, 9)), v, std::abs(v) * 1e-6);
  }
}

}  // namespace
}  // namespace ape::units
