#include "src/estimator/opamp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/verify.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

class OpAmpTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
  OpAmpEstimator oe_{proc_};

  static OpAmpSpec basic_spec() {
    OpAmpSpec s;
    s.gain = 200.0;
    s.ugf_hz = 5e6;
    s.ibias = 10e-6;
    s.cload = 10e-12;
    return s;
  }
};

TEST_F(OpAmpTest, SizingMeetsGainAndUgf) {
  const OpAmpDesign d = oe_.estimate(basic_spec());
  EXPECT_GE(d.perf.gain, 200.0);  // gain is a lower-bound constraint
  EXPECT_NEAR(d.perf.ugf_hz, 5e6, 5e6 * 0.05);
  EXPECT_GT(d.perf.phase_margin, 45.0);
  EXPECT_EQ(d.transistors.size(), 8u);  // two-stage, mirror tail, no buffer
}

TEST_F(OpAmpTest, SimulationAgreesWithEstimate) {
  const OpAmpDesign d = oe_.estimate(basic_spec());
  const OpAmpSimReport r = simulate_opamp(d, proc_, /*with_transient=*/false);
  EXPECT_NEAR(r.gain, d.perf.gain, d.perf.gain * 0.15);
  ASSERT_TRUE(r.ugf_hz.has_value());
  EXPECT_NEAR(*r.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.15);
  EXPECT_NEAR(r.power, d.perf.dc_power, d.perf.dc_power * 0.1);
  EXPECT_NEAR(r.ibias, d.perf.ibias, d.perf.ibias * 0.1);
  EXPECT_NEAR(r.zout, d.perf.zout, d.perf.zout * 0.2);
}

TEST_F(OpAmpTest, WilsonTailBuilds) {
  OpAmpSpec s = basic_spec();
  s.source = CurrentSourceKind::Wilson;
  const OpAmpDesign d = oe_.estimate(s);
  // Wilson adds a third tail device.
  EXPECT_EQ(d.transistors.size(), 9u);
  const OpAmpSimReport r = simulate_opamp(d, proc_, false);
  EXPECT_NEAR(r.gain, d.perf.gain, d.perf.gain * 0.15);
  ASSERT_TRUE(r.ugf_hz.has_value());
  EXPECT_NEAR(*r.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.2);
}

TEST_F(OpAmpTest, BufferLowersOutputImpedance) {
  OpAmpSpec s = basic_spec();
  const OpAmpDesign open = oe_.estimate(s);
  s.buffer = true;
  s.zout = 2e3;
  const OpAmpDesign buf = oe_.estimate(s);
  EXPECT_EQ(buf.transistors.size(), 10u);
  EXPECT_LT(buf.perf.zout, 0.05 * open.perf.zout);
  const OpAmpSimReport r = simulate_opamp(buf, proc_, false);
  EXPECT_LT(r.zout, 2.5e3);  // meets the Zout ceiling in simulation
}

TEST_F(OpAmpTest, SlewRateEstimateVsSim) {
  const OpAmpDesign d = oe_.estimate(basic_spec());
  const OpAmpSimReport r = simulate_opamp(d, proc_, /*with_transient=*/true);
  ASSERT_GT(r.slew, 0.0);
  EXPECT_NEAR(r.slew, d.perf.slew, d.perf.slew * 0.6);
}

TEST_F(OpAmpTest, RejectsDegenerateSpecs) {
  OpAmpSpec s = basic_spec();
  s.gain = 0.5;
  EXPECT_THROW(oe_.estimate(s), SpecError);
  s = basic_spec();
  s.ugf_hz = -1.0;
  EXPECT_THROW(oe_.estimate(s), SpecError);
  s = basic_spec();
  s.ibias = 0.0;
  EXPECT_THROW(oe_.estimate(s), SpecError);
  s = basic_spec();
  s.cload = 0.0;
  EXPECT_THROW(oe_.estimate(s), SpecError);
}

TEST_F(OpAmpTest, ExtremeUgfAtTinyBiasThrows) {
  OpAmpSpec s = basic_spec();
  s.ugf_hz = 500e6;
  s.ibias = 0.1e-6;
  // Mirror ratio is capped at 32x: the implied pair overdrive collapses.
  EXPECT_THROW(oe_.estimate(s), SpecError);
}

TEST_F(OpAmpTest, EmitRequiresKnownRoles) {
  OpAmpDesign d = oe_.estimate(basic_spec());
  d.roles[0] = "zz";
  NetlistBuilder nb("x");
  EXPECT_THROW(d.emit(nb, proc_, "x1", "a", "b", "c", "vdd"), LookupError);
}

TEST_F(OpAmpTest, UnityFeedbackHoldsCommonMode) {
  const OpAmpDesign d = oe_.estimate(basic_spec());
  const OpAmpSimReport r = simulate_opamp(d, proc_, false);
  // The open-loop bench closes DC feedback: out sits at the input CM.
  EXPECT_NEAR(r.out_dc, d.perf.input_cm, 0.1);
}

/// Property sweep over the spec space: every feasible estimate must be
/// confirmed by simulation within fixed accuracy bands (the paper's
/// Table 3 claim, parameterized).
struct SpecCase {
  double gain, ugf_hz, ibias;
  CurrentSourceKind source;
  bool buffer;
};

class OpAmpSweep : public ::testing::TestWithParam<SpecCase> {};

TEST_P(OpAmpSweep, EstimateConfirmedBySimulation) {
  const Process proc = Process::default_1u2();
  const OpAmpEstimator oe(proc);
  const SpecCase c = GetParam();
  OpAmpSpec s;
  s.gain = c.gain;
  s.ugf_hz = c.ugf_hz;
  s.ibias = c.ibias;
  s.cload = 10e-12;
  s.source = c.source;
  s.buffer = c.buffer;
  if (c.buffer) s.zout = 2e3;
  const OpAmpDesign d = oe.estimate(s);
  const OpAmpSimReport r = simulate_opamp(d, proc, false);
  EXPECT_NEAR(r.gain, d.perf.gain, d.perf.gain * 0.2);
  ASSERT_TRUE(r.ugf_hz.has_value());
  EXPECT_NEAR(*r.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.2);
  EXPECT_NEAR(r.power, d.perf.dc_power, d.perf.dc_power * 0.12);
  EXPECT_GE(r.gain, 0.9 * c.gain);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Corners, OpAmpSweep,
    ::testing::Values(SpecCase{70, 3e6, 2e-6, CurrentSourceKind::Wilson, true},
                      SpecCase{100, 2e6, 1e-6, CurrentSourceKind::Mirror, true},
                      SpecCase{150, 3e6, 100e-6, CurrentSourceKind::Mirror, false},
                      SpecCase{250, 8e6, 1e-6, CurrentSourceKind::Mirror, false},
                      SpecCase{50, 10e6, 10e-6, CurrentSourceKind::Mirror, false},
                      SpecCase{500, 1e6, 5e-6, CurrentSourceKind::Wilson, false}));

}  // namespace
}  // namespace ape::est
