#include "src/estimator/modules.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

class ModuleTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
  ModuleEstimator me_{proc_};

  /// Transistor-level Bode of a module's testbench output.
  spice::Bode sim_bode(const ModuleDesign& d, double f_lo, double f_hi) {
    const Testbench tb = d.testbench(proc_);
    spice::Circuit ckt = spice::parse_netlist(tb.netlist);
    (void)spice::dc_operating_point(ckt);
    const auto ac = spice::ac_analysis(ckt, f_lo, f_hi, 20);
    return spice::Bode(ac, ckt.find_node("out"));
  }
};

TEST_F(ModuleTest, AudioAmpGainAndBandwidth) {
  ModuleSpec s;
  s.kind = ModuleKind::AudioAmp;
  s.gain = 100.0;
  s.bw_hz = 20e3;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.gain, 100.0, 3.0);
  EXPECT_GE(d.perf.bw_hz, 20e3);
  const spice::Bode bode = sim_bode(d, 100.0, 10e6);
  EXPECT_NEAR(bode.dc_gain(), d.perf.gain, d.perf.gain * 0.05);
  ASSERT_TRUE(bode.f_3db().has_value());
  EXPECT_NEAR(*bode.f_3db(), d.perf.bw_hz, d.perf.bw_hz * 0.3);
}

TEST_F(ModuleTest, AudioAmpRejectsSubUnityGain) {
  ModuleSpec s;
  s.kind = ModuleKind::AudioAmp;
  s.gain = 0.5;
  EXPECT_THROW(me_.estimate(s), SpecError);
}

TEST_F(ModuleTest, SampleHoldGainOfTwo) {
  ModuleSpec s;
  s.kind = ModuleKind::SampleHold;
  s.gain = 2.0;
  s.bw_hz = 20e3;
  s.slew = 1e4;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.gain, 2.0, 0.1);
  EXPECT_GE(d.perf.bw_hz, 20e3);
  EXPECT_GE(d.perf.slew, 4.0 * s.slew * 0.9);  // sized with 4x margin
  EXPECT_EQ(d.switches.size(), 1u);
  const spice::Bode bode = sim_bode(d, 100.0, 10e6);
  EXPECT_NEAR(bode.dc_gain(), 2.0, 0.1);
}

TEST_F(ModuleTest, FlashAdcDelayWithinBudget) {
  ModuleSpec s;
  s.kind = ModuleKind::FlashAdc;
  s.order = 4;
  s.delay_s = 5e-6;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_EQ(d.opamps.size(), 15u);
  EXPECT_LT(d.perf.delay_s, s.delay_s);
  EXPECT_GT(d.perf.delay_s, 0.1 * s.delay_s);
}

TEST_F(ModuleTest, FlashAdcRejectsSillyResolutions) {
  ModuleSpec s;
  s.kind = ModuleKind::FlashAdc;
  s.order = 12;
  EXPECT_THROW(me_.estimate(s), SpecError);
}

TEST_F(ModuleTest, LowPassButterworthCorner) {
  ModuleSpec s;
  s.kind = ModuleKind::LowPassFilter;
  s.order = 4;
  s.f0_hz = 1e3;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_EQ(d.opamps.size(), 2u);
  EXPECT_NEAR(d.perf.f3db_hz, 1e3, 50.0);
  // 4th-order Butterworth: f(-20dB)/f(-3dB) = 99^(1/8) ~= 1.777.
  EXPECT_NEAR(d.perf.f20db_hz / d.perf.f3db_hz, 1.777, 0.08);
  // Equal-RC Sallen-Key gain product: K1*K2 = (3-1/Q1)(3-1/Q2) ~= 2.575.
  EXPECT_NEAR(d.perf.gain, 2.575, 0.05);
}

TEST_F(ModuleTest, LowPassTransistorSimMatchesEstimate) {
  ModuleSpec s;
  s.kind = ModuleKind::LowPassFilter;
  s.order = 4;
  s.f0_hz = 1e3;
  const ModuleDesign d = me_.estimate(s);
  const spice::Bode bode = sim_bode(d, 10.0, 100e3);
  ASSERT_TRUE(bode.f_3db().has_value());
  EXPECT_NEAR(*bode.f_3db(), d.perf.f3db_hz, d.perf.f3db_hz * 0.05);
  EXPECT_NEAR(bode.dc_gain(), d.perf.gain, d.perf.gain * 0.05);
}

TEST_F(ModuleTest, SecondOrderLowPassSupported) {
  ModuleSpec s;
  s.kind = ModuleKind::LowPassFilter;
  s.order = 2;
  s.f0_hz = 5e3;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_EQ(d.opamps.size(), 1u);
  EXPECT_NEAR(d.perf.f3db_hz, 5e3, 300.0);
}

TEST_F(ModuleTest, OddFilterOrderThrows) {
  ModuleSpec s;
  s.kind = ModuleKind::LowPassFilter;
  s.order = 3;
  EXPECT_THROW(me_.estimate(s), SpecError);
}

TEST_F(ModuleTest, BandPassCenterAndQ) {
  ModuleSpec s;
  s.kind = ModuleKind::BandPassFilter;
  s.f0_hz = 1e3;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.f0_hz, 1e3, 50.0);
  EXPECT_NEAR(d.perf.bw_hz, 1e3, 100.0);   // Q = 1
  EXPECT_NEAR(d.perf.gain, 2.0, 0.1);      // MFB: 2 Q^2
  const spice::Bode bode = sim_bode(d, 10.0, 100e3);
  EXPECT_NEAR(bode.peak_freq(), d.perf.f0_hz, d.perf.f0_hz * 0.05);
  EXPECT_NEAR(bode.peak_gain(), d.perf.gain, d.perf.gain * 0.05);
}

TEST_F(ModuleTest, MacroTestbenchAgreesWithTransistorLevel) {
  // The macromodel view (estimation path) and the transistor testbench
  // (verification path) share the wiring; their responses must align.
  ModuleSpec s;
  s.kind = ModuleKind::BandPassFilter;
  s.f0_hz = 2e3;
  const ModuleDesign d = me_.estimate(s);
  const Testbench macro = macro_testbench(d, proc_);
  spice::Circuit cm = spice::parse_netlist(macro.netlist);
  (void)spice::dc_operating_point(cm);
  const auto acm = spice::ac_analysis(cm, 20.0, 200e3, 20);
  const spice::Bode bm(acm, cm.find_node("out"));
  const spice::Bode br = sim_bode(d, 20.0, 200e3);
  EXPECT_NEAR(bm.peak_freq(), br.peak_freq(), br.peak_freq() * 0.05);
  EXPECT_NEAR(bm.peak_gain(), br.peak_gain(), br.peak_gain() * 0.05);
}

TEST_F(ModuleTest, PassiveLookupThrowsOnMissingName) {
  ModuleSpec s;
  s.kind = ModuleKind::BandPassFilter;
  s.f0_hz = 1e3;
  ModuleDesign d = me_.estimate(s);
  d.passives.clear();
  EXPECT_THROW(d.testbench(proc_), Error);
}

/// Property sweep: the LPF corner lands on the requested frequency across
/// two decades of f0.
class LpfSweep : public ::testing::TestWithParam<double> {};

TEST_P(LpfSweep, CornerTracksSpec) {
  const Process proc = Process::default_1u2();
  const ModuleEstimator me(proc);
  ModuleSpec s;
  s.kind = ModuleKind::LowPassFilter;
  s.order = 4;
  s.f0_hz = GetParam();
  const ModuleDesign d = me.estimate(s);
  EXPECT_NEAR(d.perf.f3db_hz, s.f0_hz, s.f0_hz * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Corners, LpfSweep,
                         ::testing::Values(200.0, 1e3, 5e3, 20e3));

}  // namespace
}  // namespace ape::est
