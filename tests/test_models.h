#pragma once
/// Shared model cards for tests: a representative 1.2um-class CMOS process
/// (level 1 with capacitance data). Mirrors ape::est::Process::default_1u2().

#include "src/spice/mos_model.h"

namespace ape::test {

inline spice::MosModelCard nmos_card() {
  spice::MosModelCard m;
  m.name = "modn";
  m.type = spice::MosType::Nmos;
  m.level = 1;
  m.vto = 0.8;
  m.kp = 8.0e-5;
  m.gamma = 0.4;
  m.phi = 0.6;
  m.lambda = 0.02;
  m.tox = 2.0e-8;
  m.ld = 0.1e-6;
  m.cgso = 3.0e-10;
  m.cgdo = 3.0e-10;
  m.cj = 3.0e-4;
  m.mj = 0.5;
  m.cjsw = 3.0e-10;
  m.mjsw = 0.33;
  m.pb = 0.8;
  m.lref = 2.4e-6;
  return m;
}

inline spice::MosModelCard pmos_card() {
  spice::MosModelCard m = nmos_card();
  m.name = "modp";
  m.type = spice::MosType::Pmos;
  m.vto = -0.8;
  m.kp = 2.8e-5;
  m.gamma = 0.5;
  m.lambda = 0.03;
  return m;
}

}  // namespace ape::test
