#include "src/util/sparse.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <random>

#include "src/util/matrix.h"

namespace ape {
namespace {

/// Build a finalized pattern + slot values from a dense matrix, keeping
/// every entry whose |value| > 0 plus any slots in \p extra (structural
/// slots that happen to be zero right now, like a cutoff MOSFET's gm).
template <typename T>
void from_dense(const Matrix<T>& a, SparsePattern& p, std::vector<T>& vals,
                const std::vector<std::pair<int, int>>& extra = {}) {
  p.reset(a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      const double mag = std::abs(a(r, c));
      if (mag > 0.0 || !std::isfinite(mag)) p.add(static_cast<int>(r), static_cast<int>(c));
    }
  }
  for (const auto& rc : extra) p.add(rc.first, rc.second);
  p.finalize();
  vals.assign(p.nnz(), T{});
  for (size_t r = 0; r < a.rows(); ++r) {
    for (int s = p.row_ptr()[r]; s < p.row_ptr()[r + 1]; ++s) {
      vals[s] = a(r, static_cast<size_t>(p.cols()[s]));
    }
  }
}

/// Max relative error of the sparse solution against the dense one.
template <typename T>
double rel_err(const std::vector<T>& xs, const std::vector<T>& xd) {
  double worst = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double denom = std::max(std::abs(xd[i]), 1e-30);
    worst = std::max(worst, std::abs(xs[i] - xd[i]) / denom);
  }
  return worst;
}

TEST(SparsePattern, FinalizeDedupsAndSorts) {
  SparsePattern p(3);
  p.add(2, 1);
  p.add(0, 0);
  p.add(2, 1);  // duplicate
  p.add(2, 0);
  p.finalize();
  EXPECT_EQ(p.nnz(), 3u);
  ASSERT_EQ(p.row_ptr().size(), 4u);
  EXPECT_EQ(p.row_ptr()[1], 1);  // row 0 -> one slot
  EXPECT_EQ(p.row_ptr()[2], 1);  // row 1 -> none
  EXPECT_EQ(p.row_ptr()[3], 3);  // row 2 -> two, sorted
  EXPECT_EQ(p.cols()[1], 0);
  EXPECT_EQ(p.cols()[2], 1);
  EXPECT_NE(p.signature(), 0u);
}

TEST(SparsePattern, SignatureDistinguishesStructures) {
  SparsePattern a(2), b(2);
  a.add(0, 0);
  a.add(1, 1);
  b.add(0, 0);
  b.add(1, 0);
  a.finalize();
  b.finalize();
  EXPECT_NE(a.signature(), b.signature());
}

TEST(SparseLu, SolvesIdentity) {
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLuReal lu;
  lu.factorize(p, vals);
  std::vector<double> x;
  lu.solve_into({3.0, -7.0}, x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -7.0);
}

TEST(SparseLu, HandlesStructurallyZeroDiagonal) {
  // An MNA branch row: a voltage-source pair has zero on both diagonals,
  // so diagonal-only pivoting cannot work. Markowitz must pick the
  // off-diagonal pivots.
  RealMatrix m(2, 2);
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLuReal lu;
  lu.factorize(p, vals);
  std::vector<double> x;
  lu.solve_into({2.0, 9.0}, x);
  EXPECT_NEAR(x[0], 9.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, MatchesDenseOnRandomSparseSystems) {
  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> unif(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 5 + static_cast<size_t>(trial) % 24;
    RealMatrix m(n, n);
    for (size_t i = 0; i < n; ++i) {
      m(i, i) = 2.0 + static_cast<double>(n) + unif(gen);  // diagonally dominant
      for (int k = 0; k < 3; ++k) {
        m(i, gen() % n) += unif(gen);
      }
    }
    std::vector<double> b(n);
    for (auto& v : b) v = unif(gen);

    LuSolver<double> dense;
    dense.factorize(m);
    std::vector<double> xd;
    dense.solve_into(b, xd);

    SparsePattern p;
    std::vector<double> vals;
    from_dense(m, p, vals);
    SparseLuReal lu;
    lu.factorize(p, vals);
    std::vector<double> xs;
    lu.solve_into(b, xs);

    EXPECT_LT(rel_err(xs, xd), 1e-10) << "trial " << trial;
  }
}

TEST(SparseLu, MatchesDenseOnComplexSystems) {
  std::mt19937_64 gen(7);
  std::uniform_real_distribution<double> unif(-1.0, 1.0);
  const size_t n = 17;
  ComplexMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    m(i, i) = {4.0 + unif(gen), unif(gen)};
    m(i, (i + 1) % n) = {unif(gen), unif(gen)};
    m((i + 3) % n, i) += std::complex<double>(unif(gen), unif(gen));
  }
  std::vector<std::complex<double>> b(n);
  for (auto& v : b) v = {unif(gen), unif(gen)};

  LuSolver<std::complex<double>> dense;
  dense.factorize(m);
  std::vector<std::complex<double>> xd;
  dense.solve_into(b, xd);

  SparsePattern p;
  std::vector<std::complex<double>> vals;
  from_dense(m, p, vals);
  SparseLuComplex lu;
  lu.factorize(p, vals);
  std::vector<std::complex<double>> xs;
  lu.solve_into(b, xs);
  EXPECT_LT(rel_err(xs, xd), 1e-10);
}

TEST(SparseLu, SymbolicReuseAcrossRefactorizations) {
  // Tridiagonal system, Newton-style: same structure, changing values.
  const size_t n = 200;
  RealMatrix m(n, n);
  auto fill = [&](double shift) {
    for (size_t i = 0; i < n; ++i) {
      m(i, i) = 4.0 + shift * static_cast<double>(i % 7);
      if (i > 0) m(i, i - 1) = -1.0 - shift;
      if (i + 1 < n) m(i, i + 1) = -1.0 + 0.5 * shift;
    }
  };
  fill(0.1);
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLuReal lu;
  lu.factorize(p, vals);
  EXPECT_EQ(lu.stats().symbolic_analyses, 1);
  EXPECT_EQ(lu.stats().symbolic_reuses, 0);
  EXPECT_EQ(lu.stats().numeric_refactors, 1);

  for (int it = 1; it <= 5; ++it) {
    fill(0.1 * it);
    for (size_t r = 0; r < n; ++r) {
      for (int s = p.row_ptr()[r]; s < p.row_ptr()[r + 1]; ++s) {
        vals[s] = m(r, static_cast<size_t>(p.cols()[s]));
      }
    }
    std::vector<double> b(n, 1.0);
    lu.factorize(p, vals);
    std::vector<double> xs;
    lu.solve_into(b, xs);

    LuSolver<double> dense;
    dense.factorize(m);
    std::vector<double> xd;
    dense.solve_into(b, xd);
    EXPECT_LT(rel_err(xs, xd), 1e-10) << "refactor " << it;
  }
  EXPECT_EQ(lu.stats().symbolic_analyses, 1);
  EXPECT_EQ(lu.stats().symbolic_reuses, 5);
  EXPECT_EQ(lu.stats().numeric_refactors, 6);
  // Tridiagonal elimination with diagonal pivots generates no fill.
  EXPECT_EQ(lu.stats().fill_in, 0u);
  EXPECT_EQ(lu.stats().nnz, 3 * n - 2);
  EXPECT_GT(lu.memory_bytes(), 0u);
}

TEST(SparseLu, StructuralZeroSlotBecomesNonzeroLater) {
  // A slot registered in the pattern but 0.0 at analysis time (cutoff
  // device) must still have storage when a later refactor activates it.
  RealMatrix m(3, 3);
  m(0, 0) = 2.0;
  m(1, 1) = 3.0;
  m(2, 2) = 4.0;
  m(0, 1) = 1.0;
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals, {{1, 0}, {2, 0}});  // structural, currently 0.0
  SparseLuReal lu;
  lu.factorize(p, vals);

  m(1, 0) = -1.5;  // the "device" turned on
  m(2, 0) = 0.5;
  for (size_t r = 0; r < 3; ++r) {
    for (int s = p.row_ptr()[r]; s < p.row_ptr()[r + 1]; ++s) {
      vals[s] = m(r, static_cast<size_t>(p.cols()[s]));
    }
  }
  lu.factorize(p, vals);
  EXPECT_EQ(lu.stats().symbolic_reuses, 1);
  std::vector<double> b = {1.0, 2.0, 3.0};
  std::vector<double> xs;
  lu.solve_into(b, xs);

  LuSolver<double> dense;
  dense.factorize(m);
  std::vector<double> xd;
  dense.solve_into(b, xd);
  EXPECT_LT(rel_err(xs, xd), 1e-12);
}

TEST(SparseLu, PatternChangeTriggersReanalysis) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 2.0;
  SparsePattern p1;
  std::vector<double> v1;
  from_dense(a, p1, v1);
  SparseLuReal lu;
  lu.factorize(p1, v1);

  a(0, 1) = 0.5;
  SparsePattern p2;
  std::vector<double> v2;
  from_dense(a, p2, v2);
  lu.factorize(p2, v2);
  EXPECT_EQ(lu.stats().symbolic_analyses, 2);
  EXPECT_EQ(lu.stats().symbolic_reuses, 0);
}

TEST(SparseLu, ThrowsOnSingular) {
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 4.0;  // rank 1
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLuReal lu;
  EXPECT_THROW(lu.factorize(p, vals), NumericError);
}

TEST(SparseLu, ThrowsOnZeroMatrix) {
  SparsePattern p(2);
  p.add(0, 0);
  p.add(1, 1);
  p.finalize();
  std::vector<double> vals = {0.0, 0.0};
  SparseLuReal lu;
  EXPECT_THROW(lu.factorize(p, vals), NumericError);
}

TEST(SparseLu, NanPropagatesLikeDensePath) {
  // Fault probes poison a matrix entry with NaN; the dense LuSolver does
  // not throw (NaN fails every pivot comparison) — it produces a
  // non-finite solution that newton's all_finite check rejects. The
  // sparse path must behave the same so fault ordinals stay aligned.
  RealMatrix m(3, 3);
  m(0, 0) = std::nan("");
  m(1, 1) = 2.0;
  m(2, 2) = 3.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLuReal lu;
  EXPECT_NO_THROW(lu.factorize(p, vals));
  std::vector<double> x;
  lu.solve_into({1.0, 1.0, 1.0}, x);
  bool any_nonfinite = false;
  for (double v : x) any_nonfinite = any_nonfinite || !std::isfinite(v);
  EXPECT_TRUE(any_nonfinite);
}

TEST(SparseLu, RefactorPivotCollapseThrows) {
  // First factorization sees a well-conditioned system; a refactor whose
  // values make the chosen pivot exactly zero must throw (the kernel
  // then falls back to dense and re-pivots).
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  SparsePattern p;
  std::vector<double> vals;
  from_dense(m, p, vals);
  SparseLuReal lu;
  lu.factorize(p, vals);
  std::vector<double> collapsed = {0.0, 1.0};
  EXPECT_THROW(lu.factorize(p, collapsed), NumericError);
}

}  // namespace
}  // namespace ape
