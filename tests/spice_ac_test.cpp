#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "tests/test_models.h"

namespace ape::spice {
namespace {

Waveform dc_ac(double dc, double ac) {
  Waveform w;
  w.dc = dc;
  w.ac_mag = ac;
  return w;
}

TEST(SpiceAc, RcLowPassPole) {
  // R = 1k, C = 1u -> f3db = 1/(2 pi R C) ~= 159.15 Hz.
  Circuit ckt("rc");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dc_ac(0.0, 1.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
  ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-6);
  (void)dc_operating_point(ckt);
  const auto ac = ac_analysis(ckt, 1.0, 1e5, 40);
  const Bode bode(ac, ckt.find_node("out"));
  EXPECT_NEAR(bode.dc_gain(), 1.0, 1e-3);
  ASSERT_TRUE(bode.f_3db().has_value());
  EXPECT_NEAR(*bode.f_3db(), 159.155, 2.0);
  // One decade above the pole the gain drops ~20 dB.
  EXPECT_NEAR(bode.mag_at(1591.5), 0.1, 0.01);
}

TEST(SpiceAc, RcPhaseAtPoleIs45Degrees) {
  Circuit ckt("rcph");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dc_ac(0.0, 1.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
  ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-6);
  (void)dc_operating_point(ckt);
  const auto ac = ac_analysis(ckt, 159.155, 159.155 * 1.001, 10);
  const Bode bode(ac, ckt.find_node("out"));
  EXPECT_NEAR(bode.phase_deg(0), -45.0, 1.0);
}

TEST(SpiceAc, VcvsIsFrequencyFlat) {
  Circuit ckt("evcvs");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dc_ac(0.0, 1.0));
  ckt.add<Vcvs>("e1", ckt.node("out"), kGround, ckt.node("in"), kGround, 42.0);
  ckt.add<Resistor>("rl", ckt.node("out"), kGround, 1e3);
  (void)dc_operating_point(ckt);
  const auto ac = ac_analysis(ckt, 1.0, 1e6, 10);
  const Bode bode(ac, ckt.find_node("out"));
  EXPECT_NEAR(bode.dc_gain(), 42.0, 1e-6);
  EXPECT_NEAR(bode.mag(bode.size() - 1), 42.0, 1e-6);
}

TEST(SpiceAc, CommonSourceGainMatchesGmRo) {
  // |Av| = gm * (Rd || ro) at low frequency.
  Circuit ckt("csac");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dc_ac(5.0, 0.0));
  ckt.add<VSource>("vg", ckt.node("g"), kGround, dc_ac(2.0, 1.0));
  ckt.add<Resistor>("rd", ckt.node("vdd"), ckt.node("d"), 10e3);
  ckt.add<Mosfet>("m1", ckt.node("d"), ckt.node("g"), kGround, kGround, m,
                  10e-6, 2e-6);
  (void)dc_operating_point(ckt);
  const auto& m1 = ckt.find_as<Mosfet>("m1");
  const double gm = m1.op().gm;
  const double ro = 1.0 / m1.op().gds;
  const double want = gm * (10e3 * ro) / (10e3 + ro);
  const auto ac = ac_analysis(ckt, 10.0, 100.0, 5);
  const Bode bode(ac, ckt.find_node("d"));
  EXPECT_NEAR(bode.dc_gain(), want, want * 0.01);
}

TEST(SpiceAc, CommonSourceWithLoadCapRollsOff) {
  Circuit ckt("csrolloff");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dc_ac(5.0, 0.0));
  ckt.add<VSource>("vg", ckt.node("g"), kGround, dc_ac(2.0, 1.0));
  ckt.add<Resistor>("rd", ckt.node("vdd"), ckt.node("d"), 10e3);
  ckt.add<Capacitor>("cl", ckt.node("d"), kGround, 10e-12);
  ckt.add<Mosfet>("m1", ckt.node("d"), ckt.node("g"), kGround, kGround, m,
                  10e-6, 2e-6);
  (void)dc_operating_point(ckt);
  const auto ac = ac_analysis(ckt, 100.0, 1e9, 10);
  const Bode bode(ac, ckt.find_node("d"));
  ASSERT_TRUE(bode.f_3db().has_value());
  const auto& m1 = ckt.find_as<Mosfet>("m1");
  const double rout = 1.0 / (1.0 / 10e3 + m1.op().gds);
  const double f_want = 1.0 / (2.0 * M_PI * rout * 10e-12);
  // Within ~15% (device junction caps add to the 10 pF load).
  EXPECT_NEAR(*bode.f_3db(), f_want, f_want * 0.15);
}

TEST(SpiceAc, InductorShortsAtDcOpensAtHf) {
  Circuit ckt("rl");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dc_ac(0.0, 1.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
  ckt.add<Inductor>("l1", ckt.node("out"), kGround, 1e-3);
  (void)dc_operating_point(ckt);
  const auto ac = ac_analysis(ckt, 1.0, 1e9, 10);
  const Bode bode(ac, ckt.find_node("out"));
  EXPECT_LT(bode.mag(0), 1e-4);             // shorted at low f
  EXPECT_NEAR(bode.mag(bode.size() - 1), 1.0, 1e-3);  // open at high f
}

TEST(SpiceAc, BadRangeThrows) {
  Circuit ckt("bad");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dc_ac(0.0, 1.0));
  ckt.add<Resistor>("r1", ckt.node("in"), kGround, 1e3);
  (void)dc_operating_point(ckt);
  EXPECT_THROW(ac_analysis(ckt, -1.0, 10.0), SpecError);
  EXPECT_THROW(ac_analysis(ckt, 100.0, 10.0), SpecError);
}

}  // namespace
}  // namespace ape::spice
