#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "tests/test_models.h"

namespace ape::spice {
namespace {

Waveform step(double v0, double v1, double td = 1e-6) {
  Waveform w;
  w.kind = Waveform::Kind::Pulse;
  w.v1 = v0;
  w.v2 = v1;
  w.td = td;
  w.tr = 1e-9;
  w.tf = 1e-9;
  w.pw = 1.0;  // effectively a step
  w.per = 2.0;
  w.dc = v0;
  return w;
}

TEST(SpiceTran, RcStepResponseTimeConstant) {
  // tau = 1 ms; at t = tau the output reaches 1 - 1/e.
  Circuit ckt("rct");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, step(0.0, 1.0, 0.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
  ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-6);
  const auto tr = transient(ckt, 10e-6, 10e-3);
  const NodeId out = ckt.find_node("out");
  // Sample near t = tau.
  double v_tau = 0.0;
  for (size_t k = 0; k < tr.time_s.size(); ++k) {
    if (tr.time_s[k] >= 1e-3) {
      v_tau = tr.voltage(out, k);
      break;
    }
  }
  EXPECT_NEAR(v_tau, 1.0 - std::exp(-1.0), 0.01);
  EXPECT_NEAR(final_value(tr, out), 1.0, 1e-3);
}

TEST(SpiceTran, SinSourceAmplitude) {
  Circuit ckt("sint");
  Waveform w;
  w.kind = Waveform::Kind::Sin;
  w.sin_vo = 1.0;
  w.sin_va = 0.5;
  w.sin_freq = 1e3;
  ckt.add<VSource>("vin", ckt.node("in"), kGround, w);
  ckt.add<Resistor>("r1", ckt.node("in"), kGround, 1e3);
  const auto tr = transient(ckt, 5e-6, 2e-3);
  const NodeId in = ckt.find_node("in");
  double vmin = 1e9, vmax = -1e9;
  for (size_t k = 0; k < tr.time_s.size(); ++k) {
    vmin = std::min(vmin, tr.voltage(in, k));
    vmax = std::max(vmax, tr.voltage(in, k));
  }
  EXPECT_NEAR(vmax, 1.5, 0.01);
  EXPECT_NEAR(vmin, 0.5, 0.01);
}

TEST(SpiceTran, PwlRamp) {
  Circuit ckt("pwlt");
  Waveform w;
  w.kind = Waveform::Kind::Pwl;
  w.pwl = {{0.0, 0.0}, {1e-3, 2.0}};
  ckt.add<VSource>("vin", ckt.node("in"), kGround, w);
  ckt.add<Resistor>("r1", ckt.node("in"), kGround, 1e3);
  const auto tr = transient(ckt, 50e-6, 1e-3);
  const NodeId in = ckt.find_node("in");
  // Slope = 2 V / 1 ms = 2000 V/s.
  EXPECT_NEAR(slew_rate(tr, in), 2000.0, 20.0);
}

TEST(SpiceTran, CurrentSourceChargesCapLinearly) {
  // A 1 uA current step into 1 nF slews at 1000 V/ms.
  Circuit ckt("ict");
  Waveform w;
  w.kind = Waveform::Kind::Pulse;
  w.v1 = 0.0;
  w.v2 = 1e-6;
  w.td = 0.0;
  w.tr = 1e-9;
  w.tf = 1e-9;
  w.pw = 1.0;
  w.per = 2.0;
  w.dc = 0.0;
  ckt.add<ISource>("i1", kGround, ckt.node("out"), w);
  ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-9);
  ckt.add<Resistor>("rleak", ckt.node("out"), kGround, 1e12);
  const auto tr = transient(ckt, 10e-6, 1e-3);
  const NodeId out = ckt.find_node("out");
  // dv/dt = I/C = 1e-6/1e-9 = 1000 V/s; after 1 ms the node sits near 1 V.
  EXPECT_NEAR(final_value(tr, out), 1.0, 0.02);
  EXPECT_NEAR(slew_rate(tr, out), 1000.0, 20.0);
}

TEST(SpiceTran, InverterSwitchesAndDelays) {
  // Resistive-load NMOS inverter driven by a step.
  Circuit ckt("inv");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, [] {
    Waveform w;
    w.dc = 5.0;
    return w;
  }());
  ckt.add<VSource>("vg", ckt.node("g"), kGround, step(0.0, 5.0, 1e-7));
  ckt.add<Resistor>("rd", ckt.node("vdd"), ckt.node("d"), 20e3);
  ckt.add<Capacitor>("cl", ckt.node("d"), kGround, 1e-12);
  ckt.add<Mosfet>("m1", ckt.node("d"), ckt.node("g"), kGround, kGround, m,
                  10e-6, 2e-6);
  const auto tr = transient(ckt, 2e-9, 1e-6);
  const NodeId d = ckt.find_node("d");
  EXPECT_NEAR(tr.voltage(d, 0), 5.0, 0.01);  // off before the step
  EXPECT_LT(final_value(tr, d), 0.5);        // pulled low after
  const auto tcross = crossing_time(tr, d, 2.5);
  ASSERT_TRUE(tcross.has_value());
  EXPECT_GT(*tcross, 1e-7);
  EXPECT_LT(*tcross, 3e-7);
}

TEST(SpiceTran, BadRangeThrows) {
  Circuit ckt("bad");
  ckt.add<VSource>("v1", ckt.node("a"), kGround, step(0, 1));
  ckt.add<Resistor>("r1", ckt.node("a"), kGround, 1e3);
  EXPECT_THROW(transient(ckt, 0.0, 1e-3), SpecError);
  EXPECT_THROW(transient(ckt, 1e-3, 1e-4), SpecError);
}

TEST(SpiceTran, TrapezoidalBeatsLargeStepError) {
  // Even with a coarse step the trapezoidal rule keeps the RC solution
  // within a percent at t >> tau transitions.
  Circuit ckt("rc2");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, step(0.0, 1.0, 0.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
  ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-6);
  const auto tr = transient(ckt, 100e-6, 10e-3);
  EXPECT_NEAR(final_value(tr, ckt.find_node("out")), 1.0, 1e-3);
}

}  // namespace
}  // namespace ape::spice
