/// Tests for the estimator-to-simulator bridge (src/estimator/verify.*)
/// and failure-injection paths: what happens when circuits cannot
/// converge, probes are missing, or measurements have nothing to measure.

#include "src/estimator/verify.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

class VerifyTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
};

TEST_F(VerifyTest, SimulateExtractsAllBasicFields) {
  Testbench tb;
  tb.netlist = R"(bridge
Vdd vdd 0 DC 5
Vin in 0 DC 1 AC 1
R1 vdd out 10k
R2 in out 10k
C1 out 0 1n
)";
  tb.out_node = "out";
  tb.in_source = "Vin";
  tb.supply_source = "Vdd";
  const SimMeasurement m = simulate(tb, 10.0, 10e6, 10);
  EXPECT_NEAR(m.out_dc, 3.0, 1e-6);   // (5 + 1)/2 through the divider
  EXPECT_NEAR(m.dc_gain, 0.5, 1e-3);  // R-R divider from the AC input
  EXPECT_GT(m.power, 0.0);
  ASSERT_TRUE(m.f3db_hz.has_value());
  // Pole at 1/(2 pi (R1||R2) C).
  EXPECT_NEAR(*m.f3db_hz, 1.0 / (2.0 * M_PI * 5e3 * 1e-9), 2e3);
}

TEST_F(VerifyTest, DifferentialProbeSubtracts) {
  Testbench tb;
  tb.netlist = R"(diffprobe
Vin in 0 AC 1
R1 in a 1k
R2 a 0 1k
R3 in b 1k
R4 b 0 3k
)";
  tb.out_node = "b";    // 0.75
  tb.out_node2 = "a";   // 0.50
  tb.in_source = "Vin";
  const SimMeasurement m = simulate(tb, 10.0, 1e3, 5);
  EXPECT_NEAR(m.dc_gain, 0.25, 1e-6);
}

TEST_F(VerifyTest, NegativeGainCarriesSign) {
  Testbench tb;
  tb.netlist = R"(inverting
Vin in 0 AC 1
E1 out 0 0 in 2
Rl out 0 1k
)";
  tb.out_node = "out";
  tb.in_source = "Vin";
  const SimMeasurement m = simulate(tb, 10.0, 1e3, 5);
  EXPECT_NEAR(m.dc_gain, -2.0, 1e-6);
}

TEST_F(VerifyTest, ZoutMeasuredThroughProbeSource) {
  Testbench tb;
  tb.netlist = R"(zout
V1 out 0 DC 2 AC 1
R1 out 0 5k
)";
  tb.out_node = "out";
  tb.in_source = "V1";
  const SimMeasurement m = simulate(tb, 10.0, 1e3, 5);
  // AC 1 V across 5k: |I| = 0.2 mA -> zout = 5k.
  EXPECT_NEAR(m.zout, 5e3, 1.0);
}

TEST_F(VerifyTest, SimulateThrowsOnGarbageNetlist) {
  Testbench tb;
  tb.netlist = "title\nR1 a 0\n";
  tb.out_node = "a";
  EXPECT_THROW(simulate(tb), ParseError);
}

TEST_F(VerifyTest, SimulateThrowsOnMissingProbe) {
  Testbench tb;
  tb.netlist = R"(ok
Vin in 0 AC 1
R1 in 0 1k
)";
  tb.out_node = "nonexistent";
  EXPECT_THROW(simulate(tb), LookupError);
}

TEST_F(VerifyTest, DcNonConvergenceSurfacesAsNumericError) {
  // An unsatisfiable loop: two ideal sources forcing different voltages
  // across the same node pair -> singular MNA at every gmin step.
  Testbench tb;
  tb.netlist = R"(conflict
V1 a 0 DC 1
V2 a 0 DC 2
R1 a 0 1k
)";
  tb.out_node = "a";
  EXPECT_THROW(simulate(tb), NumericError);
}

TEST_F(VerifyTest, OpAmpReportSurvivesTransientTrouble) {
  // simulate_opamp must return AC results even when asked for a transient
  // on a design whose step response is marginal; slew falls back to 0
  // rather than poisoning the report.
  OpAmpSpec spec;
  spec.gain = 150;
  spec.ugf_hz = 2e6;
  spec.ibias = 5e-6;
  spec.cload = 10e-12;
  const OpAmpDesign d = OpAmpEstimator(proc_).estimate(spec);
  const OpAmpSimReport r = simulate_opamp(d, proc_, /*with_transient=*/true);
  EXPECT_GT(r.gain, 150.0);
  ASSERT_TRUE(r.ugf_hz.has_value());
  EXPECT_GE(r.slew, 0.0);
}

TEST_F(VerifyTest, ComponentReportContainsCmrrOnlyForDiffPairs) {
  const ComponentEstimator ce(proc_);
  ComponentSpec mirror{ComponentKind::CurrentMirror, 100e-6, 0.0, 0.0, 0.0};
  const ComponentSimReport rm = simulate_component(ce.estimate(mirror), proc_);
  EXPECT_FALSE(rm.cmrr_db.has_value());
  ComponentSpec diff{ComponentKind::DiffCmos, 1e-6, 1000.0, 0.0, 0.5e-12};
  const ComponentSimReport rd = simulate_component(ce.estimate(diff), proc_);
  EXPECT_TRUE(rd.cmrr_db.has_value());
}

}  // namespace
}  // namespace ape::est
