#include "src/util/matrix.h"

#include <gtest/gtest.h>

#include <complex>
#include <random>

namespace ape {
namespace {

TEST(Matrix, StartsZeroed) {
  RealMatrix m(3, 3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, SetZeroClearsEntries) {
  RealMatrix m(2, 2);
  m(0, 1) = 5.0;
  m.set_zero();
  EXPECT_EQ(m(0, 1), 0.0);
}

TEST(Lu, SolvesIdentity) {
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  LuSolver<double> lu(m);
  const auto x = lu.solve({3.0, -7.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -7.0);
}

TEST(Lu, Solves2x2) {
  RealMatrix m(2, 2);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 3.0;
  LuSolver<double> lu(m);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  RealMatrix m(2, 2);
  m(0, 0) = 0.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 0.0;
  LuSolver<double> lu(m);
  const auto x = lu.solve({2.0, 9.0});
  EXPECT_NEAR(x[0], 9.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, ThrowsOnSingular) {
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 4.0;
  EXPECT_THROW(LuSolver<double> lu(m), NumericError);
}

TEST(Lu, ThrowsOnZeroMatrix) {
  RealMatrix m(3, 3);
  EXPECT_THROW(LuSolver<double> lu(m), NumericError);
}

TEST(Lu, ThrowsOnRhsSizeMismatch) {
  RealMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = 1.0;
  LuSolver<double> lu(m);
  EXPECT_THROW(lu.solve({1.0}), NumericError);
}

TEST(Lu, ComplexSolve) {
  using C = std::complex<double>;
  ComplexMatrix m(2, 2);
  m(0, 0) = C{1.0, 1.0};
  m(0, 1) = C{0.0, 0.0};
  m(1, 0) = C{0.0, 0.0};
  m(1, 1) = C{0.0, 2.0};
  LuSolver<C> lu(m);
  const auto x = lu.solve({C{2.0, 0.0}, C{0.0, 4.0}});
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].real(), 2.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), 0.0, 1e-12);
}

/// Property: random well-conditioned systems solve to residual ~ 0.
TEST(Lu, RandomSystemsResidualProperty) {
  std::mt19937_64 gen(12345);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + static_cast<size_t>(trial % 12);
    RealMatrix a(n, n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) a(i, j) = dist(gen);
      a(i, i) += 4.0;  // diagonal dominance => well-conditioned
    }
    std::vector<double> b(n);
    for (auto& v : b) v = dist(gen);
    RealMatrix a_copy = a;
    LuSolver<double> lu(std::move(a_copy));
    const auto x = lu.solve(b);
    for (size_t i = 0; i < n; ++i) {
      double r = -b[i];
      for (size_t j = 0; j < n; ++j) r += a(i, j) * x[j];
      EXPECT_NEAR(r, 0.0, 1e-9) << "trial " << trial << " row " << i;
    }
  }
}

}  // namespace
}  // namespace ape
