/// \file fault_injection_test.cpp
/// The robustness harness for the estimate -> verify -> synthesize
/// pipeline: every injected fault must either be recovered by a fallback
/// plan or surface as an ape::Error carrying the full provenance chain —
/// never a crash, a hang, or a silently wrong answer.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/runtime/supervisor.h"
#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/spice/devices.h"
#include "src/spice/fault.h"
#include "src/synth/anneal.h"
#include "src/synth/astrx.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"
#include "src/util/retry.h"
#include "src/util/units.h"

namespace ape::spice {
namespace {

Waveform dcv(double v) {
  Waveform w;
  w.dc = v;
  return w;
}

/// A mildly nonlinear circuit (needs a few Newton iterations per rung):
/// 5 V source, 1 k resistor, forward diode to ground.
void build_diode_divider(Circuit& ckt, double vin = 5.0) {
  ckt.add<VSource>("v1", ckt.node("in"), kGround, dcv(vin));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("d"), 1e3);
  ckt.add<Diode>("d1", ckt.node("d"), kGround);
}

double unfaulted_diode_voltage() {
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);
  const auto sol = dc_operating_point(ckt);
  return node_voltage(ckt, sol, "d");
}

// --- Fault 1: singular LU ---------------------------------------------------

TEST(FaultInjection, SingularLuOnFirstRungRecoversViaSourceStepping) {
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);

  FaultInjector fi;
  fi.fail_lu(0, 1);  // first LU solve reports a singular matrix
  ScopedFaultInjection scope(fi);

  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const auto sol = dc_operating_point(ckt, opts);

  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.plan, DcPlan::SourceStepping);  // Plan A died on the fault
  EXPECT_EQ(rep.lu_failures, 1);
  EXPECT_EQ(fi.counts().injected_singular, 1);
  // The recovered answer matches the unfaulted solve: no silent skew.
  EXPECT_NEAR(node_voltage(ckt, sol, "d"), unfaulted_diode_voltage(), 1e-9);
}

TEST(FaultInjection, PersistentSingularLuSurfacesContextChain) {
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);

  FaultInjector fi;
  fi.fail_lu_from(0);  // every LU solve fails: both plans must give up
  ScopedFaultInjection scope(fi);

  try {
    dc_operating_point(ckt);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dc('diode-divider')"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Newton failed to converge"), std::string::npos) << msg;
    EXPECT_NE(msg.find("lu_failures"), std::string::npos) << msg;
  }
}

// --- Fault 2: non-finite stamp ----------------------------------------------

TEST(FaultInjection, PoisonedStampFailsFastAndRecovers) {
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);

  FaultInjector fi;
  fi.poison_stamp(0);  // NaN in the very first assembled system
  ScopedFaultInjection scope(fi);

  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const auto sol = dc_operating_point(ckt, opts);

  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.nonfinite_rejections, 1);
  EXPECT_EQ(fi.counts().injected_nonfinite, 1);
  // Fail-fast contract: the poisoned rung dies after ONE iteration
  // instead of burning max_iterations (300) on NaN updates. The whole
  // recovery (source stepping + full ladder) stays far below one rung's
  // iteration cap.
  EXPECT_LT(rep.newton_iterations, opts.max_iterations);
  EXPECT_NEAR(node_voltage(ckt, sol, "d"), unfaulted_diode_voltage(), 1e-9);
}

TEST(FaultInjection, PersistentPoisonSurfacesErrorWithCounters) {
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);

  FaultInjector fi;
  fi.poison_stamp(0, std::numeric_limits<long>::max());
  ScopedFaultInjection scope(fi);

  try {
    dc_operating_point(ckt);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nonfinite"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dc('diode-divider')"), std::string::npos) << msg;
  }
}

// --- Fault 3: forced non-convergence at a gmin rung -------------------------

TEST(FaultInjection, GminRungVetoRecoversViaSourceStepping) {
  // The DC recovery ladder end-to-end: plain gmin stepping fails (the
  // first rung's convergence is vetoed), source stepping (Plan B) then
  // carries the solve, and its final ladder revisits the rung unvetoed.
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);

  FaultInjector fi;
  fi.veto_gmin_rung(1e-2, 1);
  ScopedFaultInjection scope(fi);

  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const auto sol = dc_operating_point(ckt, opts);

  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(rep.plan, DcPlan::SourceStepping);
  EXPECT_EQ(rep.convergence_vetoes, 1);
  EXPECT_EQ(rep.source_steps_completed,
            static_cast<int>(opts.source_steps.size()));
  EXPECT_EQ(rep.gmin_rungs_completed, static_cast<int>(opts.gmin_steps.size()));
  EXPECT_NEAR(node_voltage(ckt, sol, "d"), unfaulted_diode_voltage(), 1e-9);
}

TEST(FaultInjection, VetoOnBothPlansSurfacesError) {
  Circuit ckt("diode-divider");
  build_diode_divider(ckt);

  FaultInjector fi;
  fi.veto_gmin_rung(1e-2, 2);  // kills Plan A and Plan B's final ladder
  ScopedFaultInjection scope(fi);

  try {
    dc_operating_point(ckt);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("vetoes=2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("dc('diode-divider')"), std::string::npos) << msg;
  }
  EXPECT_EQ(fi.counts().injected_vetoes, 2);
}

// --- Numerical-health probes: refine / equilibrate / condest faults ---------

/// The extreme-spread divider (the committed
/// examples/circuits/extreme_spread_divider.sp fixture, built
/// programmatically): 1e3 S next to 1e-9 S, cond ~ 5e11, so ambient
/// Auto mode estimates the condition number and refines every solve.
void build_spread_divider(Circuit& ckt) {
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dcv(1.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("mid"), 1e-3);
  ckt.add<Resistor>("r2", ckt.node("mid"), ckt.node("out"), 1e9);
  ckt.add<Resistor>("r3", ckt.node("out"), kGround, 1e9);
}

TEST(FaultInjection, RefineDivergenceEscalatesToEquilibrationAndLands) {
  Circuit ckt("spread-divider");
  build_spread_divider(ckt);
  FaultInjector fi;
  fi.refine_diverge(0, 1);  // first refinement "diverges"
  ScopedFaultInjection scope(fi);

  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const auto sol = dc_operating_point(ckt, opts);

  // Containment: the injected divergence walks the in-kernel ladder —
  // equilibrate, refactorize, refine again — and the answer still lands.
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(fi.counts().injected_refine_diverge, 1);
  EXPECT_GE(rep.kernel.numeric_recoveries, 1L) << rep.kernel.summary();
  EXPECT_GE(rep.kernel.equilibrated_solves, 1L);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 0.5, 1e-2);
}

TEST(FaultInjection, EquilibrationOverflowFaultDegradesGracefully) {
  Circuit ckt("spread-divider");
  build_spread_divider(ckt);
  FaultInjector fi;
  fi.equilibrate_overflow(0, 1000);  // every equilibration "overflows"
  ScopedFaultInjection scope(fi);

  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  // Even the Force rung must survive equilibration being unavailable:
  // it falls back to refining the unscaled factorization.
  ScopedNumericHealthMode force(NumericHealthMode::Force);
  const auto sol = dc_operating_point(ckt, opts);

  EXPECT_TRUE(rep.converged);
  EXPECT_GT(fi.counts().injected_equilibrate_overflow, 0);
  EXPECT_FALSE(rep.health.equilibrated) << rep.health.summary();
  EXPECT_GT(rep.kernel.refinement_solves, 0L);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 0.5, 1e-2);
}

TEST(FaultInjection, CondEstimateFaultStillForcesRefinement) {
  Circuit ckt("spread-divider");
  build_spread_divider(ckt);
  FaultInjector fi;
  fi.cond_estimate_fail(0, 1000);  // every condest probe fails
  ScopedFaultInjection scope(fi);

  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const auto sol = dc_operating_point(ckt, opts);

  // A failed estimate reads as "unknown, assume the worst": the +inf
  // estimate fails the healthy-side comparison, so refinement still
  // runs and the solve still lands at the right answer.
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(fi.counts().injected_cond_fails, 0);
  EXPECT_TRUE(std::isinf(rep.health.cond_estimate))
      << rep.health.summary();
  EXPECT_GT(rep.kernel.refinement_solves, 0L);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 0.5, 1e-2);
}

// --- dc_sweep: a mid-sweep failure names the failing sweep value ------------

TEST(FaultInjection, DcSweepFailureNamesFailingValue) {
  // Learn how many LU solves the first sweep point needs, then make
  // every solve after that fail: the second point (0.25 V) cannot
  // converge and the error must say so.
  long first_point_solves = 0;
  {
    Circuit ckt("sweep-ckt");
    build_diode_divider(ckt, 0.0);
    FaultInjector counter;
    ScopedFaultInjection scope(counter);
    dc_operating_point(ckt);
    first_point_solves = counter.counts().lu_solves;
  }

  Circuit ckt("sweep-ckt");
  build_diode_divider(ckt, 0.0);
  FaultInjector fi;
  fi.fail_lu_from(first_point_solves);
  ScopedFaultInjection scope(fi);

  try {
    dc_sweep(ckt, "v1", 0.0, 1.0, 0.25);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("dc_sweep('v1')"), std::string::npos) << msg;
    EXPECT_NE(msg.find("failed at sweep value"), std::string::npos) << msg;
    EXPECT_NE(msg.find(units::format_eng(0.25)), std::string::npos) << msg;
  }
  // The swept source is restored even on the failure path.
  EXPECT_EQ(ckt.find_as<VSource>("v1").wave().dc, 0.0);
}

// --- transient: vetoed steps sub-step but stay on the user grid -------------

TEST(FaultInjection, TransientSubStepsStayOnUserGrid) {
  // RC step response; the input steps at t = 1 us, so the vetoes (which
  // hit the first, still-flat interval) force sub-stepping without
  // changing the trajectory at all.
  auto build_rc = [](Circuit& ckt) {
    Waveform w;
    w.kind = Waveform::Kind::Pulse;
    w.v1 = 0.0;
    w.v2 = 1.0;
    w.td = 1e-6;
    w.tr = 1e-9;
    w.tf = 1e-9;
    w.pw = 1.0;
    w.per = 2.0;
    w.dc = 0.0;
    ckt.add<VSource>("vin", ckt.node("in"), kGround, w);
    ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
    ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-9);
  };
  const double t_step = 1e-6, t_stop = 10e-6;

  Circuit ref("rc");
  build_rc(ref);
  const auto tr_ref = transient(ref, t_step, t_stop);

  Circuit ckt("rc");
  build_rc(ckt);
  FaultInjector fi;
  fi.veto_transient(3);  // forces step halvings -> internal sub-steps
  ScopedFaultInjection scope(fi);
  ConvergenceReport rep;
  TranOptions opts;
  opts.report = &rep;
  const auto tr = transient(ckt, t_step, t_stop, opts);

  EXPECT_GE(rep.step_halvings, 3);
  // Output contract: exactly the user grid, no sub-step points recorded.
  ASSERT_EQ(tr.time_s.size(), tr_ref.time_s.size());
  ASSERT_EQ(tr.time_s.size(), 11u);
  for (size_t k = 0; k < tr.time_s.size(); ++k) {
    EXPECT_DOUBLE_EQ(tr.time_s[k], tr_ref.time_s[k]);
  }
  // And the waveform matches the unfaulted run: sub-stepping the flat
  // interval must not bend the response.
  const NodeId out = ckt.find_node("out");
  const NodeId out_ref = ref.find_node("out");
  for (size_t k = 0; k < tr.time_s.size(); ++k) {
    EXPECT_NEAR(tr.voltage(out, k), tr_ref.voltage(out_ref, k), 1e-9);
  }
}

TEST(FaultInjection, TransientExhaustedHalvingsSurfacesError) {
  Circuit ckt("rc");
  ckt.add<VSource>("vin", ckt.node("in"), kGround, dcv(1.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), 1e3);
  ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 1e-9);

  FaultInjector fi;
  fi.veto_transient(1000);  // more vetoes than halvings allow
  ScopedFaultInjection scope(fi);
  try {
    transient(ckt, 1e-6, 10e-6);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("transient('rc')"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Newton failed at t="), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace ape::spice

// ---------------------------------------------------------------------------
// Faults 4 & 5 live at the synthesis layer.

namespace ape::synth {
namespace {

// --- Fault 4: NaN anneal cost ------------------------------------------------

TEST(FaultInjection, NanCostIsRejectedNeverAccepted) {
  // Cost surface with a NaN trench at x in [0.5, 1.5]; minimum at x = 3.
  auto cost = [](const std::vector<double>& x) {
    if (x[0] > 0.5 && x[0] < 1.5) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return (x[0] - 3.0) * (x[0] - 3.0);
  };
  AnnealOptions opts;
  opts.iterations = 4000;
  opts.seed = 7;
  const auto r = anneal(cost, {{-5.0, 5.0}}, {0.0}, opts);
  EXPECT_GT(r.rejected_nonfinite, 0);
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_TRUE(std::isfinite(r.best_x[0]));
  EXPECT_NEAR(r.best_x[0], 3.0, 0.3);
  EXPECT_EQ(r.evaluations, opts.iterations);
}

TEST(FaultInjection, NanStartCostStillFindsFinitePoints) {
  auto cost = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::quiet_NaN();
    return x[0] * x[0];
  };
  AnnealOptions opts;
  opts.iterations = 3000;
  const auto r = anneal(cost, {{-1.0, 4.0}}, {-0.5}, opts);  // starts in NaN land
  EXPECT_TRUE(std::isnan(r.start_cost));
  EXPECT_GT(r.rejected_nonfinite, 0);
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_GE(r.best_x[0], 0.0);
}

// --- RunBudget: anneal returns best-so-far at expiry -------------------------

TEST(FaultInjection, AnnealReturnsBestSoFarWhenBudgetExpires) {
  auto cost = [](const std::vector<double>& x) {
    return (x[0] - 2.0) * (x[0] - 2.0);
  };
  RunBudget budget = RunBudget::with_evaluations(50);
  AnnealOptions opts;
  opts.iterations = 4000;
  opts.budget = &budget;
  const auto r = anneal(cost, {{-10.0, 10.0}}, {9.0}, opts);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LE(r.evaluations, 50);
  EXPECT_LT(r.evaluations, opts.iterations);
  // Best-so-far, not garbage: never worse than the start point.
  EXPECT_LE(r.best_cost, r.start_cost);
  EXPECT_TRUE(std::isfinite(r.best_cost));
}

TEST(FaultInjection, AnnealExpiredDeadlineStopsImmediately) {
  int calls = 0;
  auto cost = [&](const std::vector<double>& x) {
    ++calls;
    return x[0] * x[0];
  };
  RunBudget budget = RunBudget::with_deadline(0.0);
  AnnealOptions opts;
  opts.iterations = 100000;
  opts.budget = &budget;
  const auto r = anneal(cost, {{-1.0, 1.0}}, {0.5}, opts);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.evaluations, 1);  // only the mandatory start evaluation
  EXPECT_EQ(calls, 1);
  EXPECT_DOUBLE_EQ(r.best_cost, 0.25);
}

// --- Fault 5: estimator SpecError mid-synthesis ------------------------------

TEST(FaultInjection, SpecErrorMidSynthesisIsCountedNotFatal) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 150.0;
  spec.ugf_hz = 3e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;

  spice::FaultInjector fi;
  fi.throw_spec_error_every(3);  // every 3rd candidate evaluation throws
  spice::ScopedFaultInjection scope(fi);

  SynthesisOptions opts;
  opts.use_ape_seed = true;
  opts.anneal.iterations = 60;
  SynthesisOutcome out;
  ASSERT_NO_THROW(out = synthesize_opamp(proc, spec, opts));
  EXPECT_EQ(out.evaluations, 60);
  EXPECT_EQ(out.skipped_candidates, 60 / 3);
  EXPECT_EQ(fi.counts().injected_spec_errors, 60 / 3);
  EXPECT_TRUE(std::isfinite(out.cost));
}

TEST(FaultInjection, SynthesisUnderExpiringBudgetReturnsBestSoFar) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 150.0;
  spec.ugf_hz = 3e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;

  RunBudget budget = RunBudget::with_evaluations(30);
  SynthesisOptions opts;
  opts.use_ape_seed = true;
  opts.anneal.iterations = 5000;
  opts.anneal.budget = &budget;
  const auto out = synthesize_opamp(proc, spec, opts);
  EXPECT_TRUE(out.budget_exhausted);
  EXPECT_LE(out.evaluations, 30);
  EXPECT_LT(out.evaluations, opts.anneal.iterations);
  EXPECT_TRUE(std::isfinite(out.cost));
}

}  // namespace
}  // namespace ape::synth

// ---------------------------------------------------------------------------
// The supervised-recovery matrix (DESIGN.md section 10): each spice-layer
// fault site crossed with the retry-ladder rungs. A fault that clears
// after the first attempt must be recovered by the plain Retry rung, a
// longer-lived one by the Relaxed rung, and a persistent one must leave
// the job with its best-so-far synthesized outcome (never swapped for a
// bare estimate, never a crash or a hang).

namespace ape::runtime {
namespace {

/// A fault site of the simulator layer, armed on an injector. All of
/// these break the *verification* simulation of a synthesized design, so
/// they surface as sim_failed outcomes that the ladder escalates.
struct FaultSite {
  const char* name;
  void (*arm)(spice::FaultInjector&);
};

const FaultSite kEscalatingSites[] = {
    {"singular-lu", [](spice::FaultInjector& fi) { fi.fail_lu_from(0); }},
    {"poisoned-stamp",
     [](spice::FaultInjector& fi) {
       fi.poison_stamp(0, std::numeric_limits<long>::max());
     }},
    {"gmin-veto",
     [](spice::FaultInjector& fi) { fi.veto_gmin_rung(1e-2, 1 << 20); }},
};

est::OpAmpSpec matrix_spec() {
  est::OpAmpSpec s;
  s.gain = 150.0;
  s.ugf_hz = 3e6;
  s.ibias = 10e-6;
  s.cload = 10e-12;
  return s;
}

/// One supervised single-spec batch with the fault armed on attempts
/// [0, faulted_attempts).
SupervisedOpAmpResult run_matrix_job(const FaultSite& site,
                                     int faulted_attempts) {
  SupervisorOptions sup;
  sup.batch.seed = 77;
  sup.batch.synth.use_ape_seed = true;
  sup.batch.synth.anneal.iterations = 60;
  sup.batch.threads = 1;
  sup.retry.plain_retries = 1;
  sup.retry.relaxed_retries = 1;
  sup.retry.estimate_fallback = true;
  sup.fault_setup = [&site, faulted_attempts](size_t, int attempt,
                                              spice::FaultInjector& fi) {
    if (attempt < faulted_attempts) site.arm(fi);
  };
  const auto r = run_supervised_opamp_batch(
      est::Process::default_1u2(), {matrix_spec()}, sup);
  return r.jobs.at(0);
}

TEST(FaultInjectionSupervised, FaultClearingAfterOneAttemptRecoversOnRetry) {
  for (const FaultSite& site : kEscalatingSites) {
    SCOPED_TRACE(site.name);
    const auto job = run_matrix_job(site, /*faulted_attempts=*/1);
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.attempts, 2);
    EXPECT_EQ(job.final_rung, RetryRung::Retry);
    EXPECT_FALSE(job.outcome.sim_failed);
    EXPECT_FALSE(job.estimate_fallback);
  }
}

TEST(FaultInjectionSupervised, FaultClearingAfterTwoAttemptsRecoversRelaxed) {
  for (const FaultSite& site : kEscalatingSites) {
    SCOPED_TRACE(site.name);
    const auto job = run_matrix_job(site, /*faulted_attempts=*/2);
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.attempts, 3);
    EXPECT_EQ(job.final_rung, RetryRung::Relaxed);
    EXPECT_FALSE(job.outcome.sim_failed);
  }
}

TEST(FaultInjectionSupervised, PersistentFaultKeepsBestSoFarNotEstimate) {
  for (const FaultSite& site : kEscalatingSites) {
    SCOPED_TRACE(site.name);
    const auto job = run_matrix_job(site, /*faulted_attempts=*/1 << 20);
    // Every verification died, but synthesis itself finished: the ladder
    // runs dry and keeps the synthesized best-so-far outcome instead of
    // discarding it for the bare estimate.
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.attempts, 3);  // initial + retry + relaxed, then stop
    EXPECT_TRUE(job.outcome.sim_failed);
    EXPECT_FALSE(job.estimate_fallback);
    EXPECT_FALSE(job.outcome.best_x.empty());
    EXPECT_EQ(job.outcome.comment, "doesn't work");
  }
}

TEST(FaultInjectionSupervised, InnerRecoveryAbsorbsFaultsWithoutEscalation) {
  // Faults the solver's own ladders absorb must never reach the retry
  // ladder: transient Newton vetoes sub-step, cost-eval SpecErrors skip
  // the candidate, and the attempt count stays at one.
  const FaultSite absorbed[] = {
      {"transient-veto",
       [](spice::FaultInjector& fi) { fi.veto_transient(1 << 20); }},
      {"cost-eval-spec-error",
       [](spice::FaultInjector& fi) { fi.throw_spec_error_every(3); }},
  };
  for (const FaultSite& site : absorbed) {
    SCOPED_TRACE(site.name);
    const auto job = run_matrix_job(site, /*faulted_attempts=*/1 << 20);
    ASSERT_TRUE(job.ok) << job.error;
    EXPECT_EQ(job.attempts, 1);
    EXPECT_EQ(job.final_rung, RetryRung::Initial);
    EXPECT_FALSE(job.outcome.sim_failed);
  }
}

TEST(FaultInjectionSupervised, StalledTransientIsKilledByTheDeadline) {
  // The "hanging spec": every transient Newton probe stalls. Unsupervised
  // this burns seconds per verification; under a deadline the job stops
  // at the next probe and reports its partial outcome.
  SupervisorOptions sup;
  sup.batch.seed = 77;
  sup.batch.synth.use_ape_seed = true;
  sup.batch.synth.anneal.iterations = 60;
  sup.batch.threads = 1;
  sup.job_timeout_s = 0.5;
  sup.fault_setup = [](size_t, int, spice::FaultInjector& fi) {
    fi.stall_transient(0.010);
  };
  const auto r = run_supervised_opamp_batch(est::Process::default_1u2(),
                                            {matrix_spec()}, sup);
  ASSERT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_TRUE(r.jobs[0].deadline_hit);
  EXPECT_EQ(r.supervision.deadline_hits, 1);
  // Bounded: well under the unsupervised stall time, above the deadline.
  EXPECT_LT(r.stats.wall_seconds, 5.0);
}

TEST(FaultInjectionSupervised, PermanentSynthFailureFallsBackToEstimate) {
  // ModuleKind::Integrator is estimable but not synthesizable: synthesis
  // throws a permanent SpecError, so the ladder jumps straight to the
  // EstimateOnly rung, which succeeds with the analytic module estimate.
  std::vector<est::ModuleSpec> specs(1);
  specs[0].kind = est::ModuleKind::Integrator;
  specs[0].gain = 10.0;
  specs[0].bw_hz = 10e3;
  SupervisorOptions sup;
  sup.batch.seed = 3;
  sup.batch.synth.anneal.iterations = 40;
  sup.batch.threads = 1;
  sup.retry.plain_retries = 2;
  sup.retry.relaxed_retries = 1;
  sup.retry.estimate_fallback = true;
  const auto r =
      run_supervised_module_batch(est::Process::default_1u2(), specs, sup);
  ASSERT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_TRUE(r.jobs[0].estimate_fallback);
  EXPECT_EQ(r.jobs[0].final_rung, RetryRung::EstimateOnly);
  // Permanent: the plain/relaxed rungs were skipped, not burned.
  EXPECT_EQ(r.jobs[0].attempts, 2);
  EXPECT_EQ(r.supervision.estimate_fallbacks, 1);
  EXPECT_FALSE(r.jobs[0].outcome.design.opamps.empty());
}

}  // namespace
}  // namespace ape::runtime
