#include "src/synth/astrx.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace ape::synth {
namespace {

using est::ModuleKind;
using est::ModuleSpec;
using est::OpAmpSpec;
using est::Process;

OpAmpSpec easy_spec() {
  OpAmpSpec s;
  s.gain = 150.0;
  s.ugf_hz = 3e6;
  s.ibias = 10e-6;
  s.cload = 10e-12;
  s.area_budget = 20000e-12;
  return s;
}

TEST(Astrx, SeededSynthesisMeetsSpec) {
  const Process proc = Process::default_1u2();
  SynthesisOptions opts;
  opts.use_ape_seed = true;
  opts.anneal.iterations = 3000;
  opts.anneal.seed = 5;
  const auto r = synthesize_opamp(proc, easy_spec(), opts);
  EXPECT_TRUE(r.functional);
  EXPECT_TRUE(r.meets_spec) << r.comment;
  EXPECT_GE(r.sim.gain, 0.9 * 150.0);
  ASSERT_TRUE(r.sim.ugf_hz.has_value());
  EXPECT_GE(*r.sim.ugf_hz, 0.9 * 3e6);
  EXPECT_GT(r.cpu_seconds, 0.0);
}

TEST(Astrx, SeededBeatsBlindOnEqualBudget) {
  const Process proc = Process::default_1u2();
  SynthesisOptions blind;
  blind.use_ape_seed = false;
  blind.anneal.iterations = 3000;
  blind.anneal.seed = 5;
  const auto rb = synthesize_opamp(proc, easy_spec(), blind);
  SynthesisOptions seeded = blind;
  seeded.use_ape_seed = true;
  const auto rs = synthesize_opamp(proc, easy_spec(), seeded);
  // The Table 1 vs Table 4 contrast in one assertion.
  EXPECT_LE(rs.cost, rb.cost);
  EXPECT_TRUE(rs.meets_spec);
}

TEST(Astrx, BlindGetsDiagnosticComment) {
  const Process proc = Process::default_1u2();
  SynthesisOptions blind;
  blind.use_ape_seed = false;
  blind.anneal.iterations = 400;  // starved on purpose
  blind.anneal.seed = 17;
  const auto r = synthesize_opamp(proc, easy_spec(), blind);
  EXPECT_FALSE(r.comment.empty());
  EXPECT_NE(r.comment, "Meets spec");
}

TEST(Astrx, TighterIntervalsInheritTheSeed) {
  const Process proc = Process::default_1u2();
  SynthesisOptions opts;
  opts.use_ape_seed = true;
  opts.interval_frac = 0.02;  // almost frozen at the APE point
  opts.anneal.iterations = 500;
  const auto r = synthesize_opamp(proc, easy_spec(), opts);
  EXPECT_TRUE(r.functional);
  // The APE seed already meets this spec, so near-zero intervals do too.
  EXPECT_TRUE(r.meets_spec) << r.comment;
}

TEST(Astrx, ModuleSeededSynthesisLpf) {
  const Process proc = Process::default_1u2();
  ModuleSpec spec;
  spec.kind = ModuleKind::LowPassFilter;
  spec.order = 4;
  spec.f0_hz = 1e3;
  SynthesisOptions opts;
  opts.use_ape_seed = true;
  opts.anneal.iterations = 800;
  opts.anneal.seed = 7;
  const auto r = synthesize_module(proc, spec, opts);
  EXPECT_TRUE(r.functional);
  EXPECT_TRUE(r.meets_spec) << r.comment;
  EXPECT_NEAR(r.sim_f3db_hz, 1e3, 150.0);
}

TEST(Astrx, ModuleBlindUsuallyFailsOnBudget) {
  const Process proc = Process::default_1u2();
  ModuleSpec spec;
  spec.kind = ModuleKind::BandPassFilter;
  spec.order = 2;
  spec.f0_hz = 1e3;
  SynthesisOptions blind;
  blind.use_ape_seed = false;
  blind.anneal.iterations = 400;
  blind.anneal.seed = 3;
  const auto r = synthesize_module(proc, spec, blind);
  EXPECT_FALSE(r.meets_spec);
}

TEST(Astrx, VerifyModuleFillsSimFields) {
  const Process proc = Process::default_1u2();
  ModuleSpec spec;
  spec.kind = ModuleKind::AudioAmp;
  spec.gain = 100.0;
  spec.bw_hz = 20e3;
  const est::ModuleDesign d = est::ModuleEstimator(proc).estimate(spec);
  ModuleSynthesisOutcome out;
  verify_module(proc, d, out);
  EXPECT_NEAR(std::fabs(out.sim_gain), 100.0, 10.0);
  EXPECT_GT(out.sim_bw_hz, 20e3 * 0.8);
  EXPECT_GT(out.sim_area, 0.0);
}

}  // namespace
}  // namespace ape::synth
