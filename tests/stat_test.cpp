/// \file stat_test.cpp
/// The statistical subsystem (DESIGN.md section 12): PVT corner
/// derivation (skew directions, temperature scaling, cache identity),
/// Pelgrom mismatch sampling (determinism, 1/sqrt(WL) scaling, stream-id
/// field-width validation), stream-id collision freedom across every
/// registered derive_stream domain, Wilson/yield arithmetic against
/// hand-computed values, and the sweep runner's acceptance properties —
/// bit-identical YieldReports at any thread count and across a mid-run
/// cancel + --resume, corner-shared cache hits, and the yield-aware
/// annealer cost changing the winning sizing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/estimator/process.h"
#include "src/runtime/cache.h"
#include "src/runtime/supervisor.h"
#include "src/runtime/sweep.h"
#include "src/stat/corners.h"
#include "src/stat/mismatch.h"
#include "src/stat/yield.h"
#include "src/synth/astrx.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/stream_ids.h"

namespace ape::stat {
namespace {

using est::OpAmpSpec;
using est::Process;

const Process& proc() {
  static const Process p = Process::default_1u2();
  return p;
}

OpAmpSpec easy_spec(int i) {
  OpAmpSpec s;
  s.gain = 120.0 + 10.0 * double(i % 8);
  s.ugf_hz = 2e6 + 0.5e6 * double(i % 4);
  s.ibias = 10e-6;
  s.cload = 10e-12;
  return s;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// CornerSet: construction, parsing, realization.

TEST(StatCorners, AllHasTheSevenDocumentedCornersInOrder) {
  const CornerSet all = CornerSet::all();
  ASSERT_EQ(all.size(), 7u);
  EXPECT_EQ(all.names(), "tm,wp,ws,wo,wz,hot,cold");
  EXPECT_EQ(all.index_of("tm"), 0);
  EXPECT_EQ(all.index_of("cold"), 6);
  EXPECT_EQ(all.index_of("nope"), -1);
}

TEST(StatCorners, ParseSubsetKeepsRequestOrder) {
  const CornerSet s = CornerSet::parse("ws,tm,hot");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].name, "ws");
  EXPECT_EQ(s[1].name, "tm");
  EXPECT_EQ(s[2].name, "hot");
  EXPECT_EQ(CornerSet::parse("all").names(), CornerSet::all().names());
  EXPECT_EQ(CornerSet::nominal().names(), "tm");
}

TEST(StatCorners, ParseRejectsUnknownDuplicateAndBlankNames) {
  EXPECT_THROW(CornerSet::parse("tm,bogus"), SpecError);
  EXPECT_THROW(CornerSet::parse("tm,ws,tm"), SpecError);
  EXPECT_THROW(CornerSet::parse("tm,,ws"), SpecError);
  // "" is the CLI's "not specified" and means the full set.
  EXPECT_EQ(CornerSet::parse("").names(), CornerSet::all().names());
}

TEST(StatCorners, WorstSpeedSkewsSlowLowVddHot) {
  const CornerSet all = CornerSet::all();
  const Process ws = proc().corner(all[all.index_of("ws")]);
  // Net |Vth| shift = +100 mV slow skew - 2 mV/K x 98 K: at 125 C the
  // temperature drop dominates, so the magnitude-frame delta is -96 mV.
  const double dvth = 0.1 - 2.0e-3 * 98.0;
  EXPECT_NEAR(ws.nmos.vto, proc().nmos.vto + dvth, 1e-12);
  EXPECT_NEAR(ws.pmos.vto, proc().pmos.vto - dvth, 1e-12);
  // K': 0.9 slow skew compounded with hot mobility degradation.
  const double mobility = std::pow(398.15 / 300.15, -1.5);
  EXPECT_NEAR(ws.nmos.kp, proc().nmos.kp * 0.9 * mobility, 1e-12);
  EXPECT_NEAR(ws.pmos.kp, proc().pmos.kp * 0.9 * mobility, 1e-12);
  EXPECT_DOUBLE_EQ(ws.vdd, proc().vdd * 0.9);
  EXPECT_DOUBLE_EQ(ws.temp_c, 125.0);
  EXPECT_EQ(ws.variant, "ws");
}

TEST(StatCorners, WorstPowerSkewsFastHighVddCold) {
  const CornerSet all = CornerSet::all();
  const Process wp = proc().corner(all[all.index_of("wp")]);
  // Net |Vth| shift = -100 mV fast skew + 2 mV/K x 67 K cold rise:
  // +34 mV in the magnitude frame.
  const double dvth = -0.1 - 2.0e-3 * (-40.0 - 27.0);
  EXPECT_NEAR(wp.nmos.vto, proc().nmos.vto + dvth, 1e-12);
  EXPECT_NEAR(wp.pmos.vto, proc().pmos.vto - dvth, 1e-12);
  // -40 C: mobility scaling (T/Tnom)^-1.5 > 1 compounds the fast skew.
  EXPECT_GT(wp.nmos.kp, proc().nmos.kp);
  EXPECT_GT(wp.pmos.kp, proc().pmos.kp);
  EXPECT_DOUBLE_EQ(wp.vdd, proc().vdd * 1.1);
  EXPECT_DOUBLE_EQ(wp.temp_c, -40.0);
}

TEST(StatCorners, HotCornerAppliesFirstOrderTemperatureLaws) {
  const CornerSet all = CornerSet::all();
  const Process hot = proc().corner(all[all.index_of("hot")]);
  const double mobility = std::pow(398.15 / 300.15, -1.5);
  EXPECT_NEAR(hot.nmos.kp, proc().nmos.kp * mobility, 1e-12);
  EXPECT_NEAR(hot.pmos.kp, proc().pmos.kp * mobility, 1e-12);
  // |Vth| drops 2 mV/K over the 98 K rise — both polarities, magnitude
  // frame.
  EXPECT_NEAR(hot.nmos.vto, proc().nmos.vto - 2.0e-3 * 98.0, 1e-12);
  EXPECT_NEAR(hot.pmos.vto, proc().pmos.vto + 2.0e-3 * 98.0, 1e-12);
  EXPECT_DOUBLE_EQ(hot.vdd, proc().vdd);  // temperature-only corner
}

TEST(StatCorners, BsimCardsSkewViaVfbAndMuz) {
  const Process base = Process::default_1u2_bsim();
  const CornerSet all = CornerSet::all();
  const Process ws = base.corner(all[all.index_of("ws")]);
  // LEVEL 4 cards ignore vto/kp: the skew must land on vfb/muz instead.
  // Same net -96 mV magnitude delta as the LEVEL 1 worst-speed card.
  const double dvth = 0.1 - 2.0e-3 * 98.0;
  EXPECT_NEAR(ws.nmos.vfb, base.nmos.vfb + dvth, 1e-12);
  EXPECT_NEAR(ws.pmos.vfb, base.pmos.vfb - dvth, 1e-12);
  EXPECT_LT(ws.nmos.muz, base.nmos.muz);
  EXPECT_LT(ws.pmos.muz, base.pmos.muz);
  EXPECT_DOUBLE_EQ(ws.nmos.vto, base.nmos.vto);
  EXPECT_DOUBLE_EQ(ws.nmos.kp, base.nmos.kp);
}

TEST(StatCorners, TmRealizesNumericallyIdenticalButDistinctVariant) {
  const CornerSet nom = CornerSet::nominal();
  const Process tm = proc().corner(nom[0]);
  EXPECT_EQ(tm.nmos.vto, proc().nmos.vto);
  EXPECT_EQ(tm.nmos.kp, proc().nmos.kp);
  EXPECT_EQ(tm.pmos.vto, proc().pmos.vto);
  EXPECT_EQ(tm.vdd, proc().vdd);
  EXPECT_EQ(tm.temp_c, proc().temp_c);
  EXPECT_EQ(tm.variant, "tm");
  EXPECT_EQ(proc().variant, "");
}

TEST(StatCorners, BelowAbsoluteZeroThrows) {
  est::CornerDelta d;
  d.temp_c = -300.0;
  EXPECT_THROW(proc().corner(d), SpecError);
}

// ---------------------------------------------------------------------------
// Satellite (a): corner identity folds into cache keys and fingerprints.

TEST(StatCacheIdentity, TmCornerHasItsOwnCacheKey) {
  const OpAmpSpec spec = easy_spec(0);
  const Process tm = proc().corner(CornerSet::nominal()[0]);
  // Numerically identical cards — only variant/temp identity separates
  // them. A blind numeric key would collide; the regression is that it
  // must not.
  EXPECT_NE(runtime::cache_key(proc(), spec), runtime::cache_key(tm, spec));
  EXPECT_NE(runtime::spec_fingerprint(proc(), spec),
            runtime::spec_fingerprint(tm, spec));
}

TEST(StatCacheIdentity, EveryCornerAndSampleKeysDistinctly) {
  const OpAmpSpec spec = easy_spec(0);
  std::set<std::string> keys{runtime::cache_key(proc(), spec)};
  for (const est::Process& cp : CornerSet::all().realize(proc())) {
    EXPECT_TRUE(keys.insert(runtime::cache_key(cp, spec)).second)
        << "corner '" << cp.variant << "' collided";
  }
  // Mismatch samples tag the variant further ("ws/mc3").
  const Process ws = proc().corner(CornerSet::all()[2]);
  PelgromModel pm;
  for (uint64_t s = 0; s < 4; ++s) {
    const Process mc = sample_mismatch(ws, pm, 7, 0, 2, s);
    EXPECT_EQ(mc.variant, "ws/mc" + std::to_string(s));
    EXPECT_TRUE(keys.insert(runtime::cache_key(mc, spec)).second);
  }
}

// ---------------------------------------------------------------------------
// Pelgrom mismatch sampling.

TEST(StatMismatch, SigmaScalesAsOneOverSqrtArea) {
  PelgromModel pm;
  // Exact: quadrupling the area halves both sigmas.
  EXPECT_DOUBLE_EQ(pm.sigma_vth(4.0 * pm.w_ref, pm.l_ref),
                   pm.sigma_vth(pm.w_ref, pm.l_ref) / 2.0);
  EXPECT_DOUBLE_EQ(pm.sigma_k(pm.w_ref, 4.0 * pm.l_ref),
                   pm.sigma_k(pm.w_ref, pm.l_ref) / 2.0);
  EXPECT_NEAR(pm.sigma_vth(pm.w_ref, pm.l_ref),
              pm.a_vt / std::sqrt(pm.w_ref * pm.l_ref), 1e-18);
  EXPECT_THROW(pm.sigma_vth(0.0, pm.l_ref), SpecError);
  EXPECT_THROW(pm.sigma_k(pm.w_ref, -1e-6), SpecError);
}

TEST(StatMismatch, SamplesAreDeterministicAndStreamSeparated) {
  PelgromModel pm;
  const Process a = sample_mismatch(proc(), pm, 99, 3, 1, 17);
  const Process b = sample_mismatch(proc(), pm, 99, 3, 1, 17);
  EXPECT_EQ(a.nmos.vto, b.nmos.vto);
  EXPECT_EQ(a.nmos.kp, b.nmos.kp);
  EXPECT_EQ(a.pmos.vto, b.pmos.vto);
  EXPECT_EQ(a.pmos.kp, b.pmos.kp);
  // Any coordinate change selects a different stream.
  const Process other_sample = sample_mismatch(proc(), pm, 99, 3, 1, 18);
  const Process other_corner = sample_mismatch(proc(), pm, 99, 3, 2, 17);
  const Process other_job = sample_mismatch(proc(), pm, 99, 4, 1, 17);
  EXPECT_NE(a.nmos.vto, other_sample.nmos.vto);
  EXPECT_NE(a.nmos.vto, other_corner.nmos.vto);
  EXPECT_NE(a.nmos.vto, other_job.nmos.vto);
  // And the draw is sigma-linear: doubling A_vt exactly doubles the
  // threshold delta (same gaussian deviate from the same stream).
  PelgromModel big = pm;
  big.a_vt = 2.0 * pm.a_vt;
  const Process c = sample_mismatch(proc(), big, 99, 3, 1, 17);
  EXPECT_DOUBLE_EQ(c.nmos.vto - proc().nmos.vto,
                   2.0 * (a.nmos.vto - proc().nmos.vto));
}

TEST(StatMismatch, FieldWidthLimitsAreEnforced) {
  PelgromModel pm;
  EXPECT_THROW(sample_mismatch(proc(), pm, 1, uint64_t(1) << 30, 0, 0),
               SpecError);
  EXPECT_THROW(sample_mismatch(proc(), pm, 1, 0, 64, 0), SpecError);
  EXPECT_THROW(sample_mismatch(proc(), pm, 1, 0, 0, uint64_t(1) << 20),
               SpecError);
  // The largest legal coordinates are accepted.
  EXPECT_NO_THROW(sample_mismatch(proc(), pm, 1, (uint64_t(1) << 30) - 1, 63,
                                  (uint64_t(1) << 20) - 1));
}

// ---------------------------------------------------------------------------
// Satellite (b): the stream-id registry is collision-free across domains.

TEST(StatStreamIds, MismatchIdsNeverCollideAcrossTheGridOrWithBatchIds) {
  std::set<uint64_t> seen;
  // Batch jobs and anneal restarts share the small-integer range.
  for (uint64_t j = 0; j < 4096; ++j) {
    seen.insert(streams::kBatchJobStream(j));
  }
  // Mismatch ids: edges and interior of every field.
  const std::vector<uint64_t> jobs{0, 1, 2, 1023, (uint64_t(1) << 30) - 1};
  const std::vector<uint64_t> samples{0, 1, 31, (uint64_t(1) << 20) - 1};
  for (uint64_t j : jobs) {
    for (uint64_t c = 0; c < 7; ++c) {
      for (uint64_t s : samples) {
        const uint64_t id = streams::kMismatchStream(j, c, s);
        EXPECT_EQ(id >> 56, 0xA5ull) << "tag byte missing";
        EXPECT_TRUE(seen.insert(id).second)
            << "collision at (" << j << "," << c << "," << s << ")";
      }
    }
  }
}

TEST(StatStreamIds, RetryJitterIdsAreInjectivePerJobAttempt) {
  std::set<uint64_t> seen;
  for (uint64_t j = 0; j < 64; ++j) {
    for (uint64_t a = 0; a < 16; ++a) {
      EXPECT_TRUE(seen.insert(streams::kRetryJitterStream(j, a)).second);
    }
  }
}

TEST(StatStreamIds, PackingRoundTripsItsFields) {
  const uint64_t id = streams::kMismatchStream(12345, 5, 67890);
  EXPECT_EQ((id >> 26) & ((uint64_t(1) << 30) - 1), 12345u);
  EXPECT_EQ((id >> 20) & 63u, 5u);
  EXPECT_EQ(id & ((uint64_t(1) << 20) - 1), 67890u);
}

// ---------------------------------------------------------------------------
// Satellite (c): Wilson interval and YieldReport arithmetic.

TEST(StatYield, WilsonMatchesHandComputedValues) {
  // 8/10 at z=1.96: center 0.71674, margin 0.22658.
  const WilsonInterval w = wilson_interval(8, 10);
  EXPECT_NEAR(w.lo, 0.49016, 1e-4);
  EXPECT_NEAR(w.hi, 0.94332, 1e-4);
  // Degenerate proportions stay inside [0, 1].
  const WilsonInterval zero = wilson_interval(0, 10);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_NEAR(zero.hi, 0.27753, 1e-4);
  const WilsonInterval one = wilson_interval(10, 10);
  EXPECT_NEAR(one.lo, 0.72247, 1e-4);
  EXPECT_DOUBLE_EQ(one.hi, 1.0);
  // No samples: the vacuous interval.
  const WilsonInterval none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
  EXPECT_DOUBLE_EQ(none.hi, 1.0);
}

PointOutcome pass_point() {
  PointOutcome p;
  p.evaluated = p.functional = p.gain_ok = p.ugf_ok = p.pm_ok = true;
  return p;
}

TEST(StatYield, ReportAggregatesAndFindsTheWorstCorner) {
  YieldReport r(std::vector<std::string>{"tm", "ws"});
  PointOutcome fail_ugf = pass_point();
  fail_ugf.ugf_ok = false;
  r.add(0, pass_point());
  r.add(0, pass_point());
  r.add(1, pass_point());
  r.add(1, fail_ugf);
  r.finalize();
  EXPECT_EQ(r.total.samples, 4);
  EXPECT_EQ(r.total.pass, 3);
  EXPECT_DOUBLE_EQ(r.yield(), 0.75);
  EXPECT_EQ(r.worst_corner, 1);
  EXPECT_EQ(r.worst_corner_name(), "ws");
  EXPECT_EQ(r.corners[1].second.ugf, 1);
  EXPECT_EQ(r.corners[1].second.functional, 2);
  EXPECT_THROW(r.add(2, pass_point()), SpecError);
  // Ties resolve to the lowest index — deterministic worst corner.
  YieldReport tie(std::vector<std::string>{"a", "b"});
  tie.add(0, pass_point());
  tie.add(1, pass_point());
  tie.finalize();
  EXPECT_EQ(tie.worst_corner, 0);
}

TEST(StatYield, MergeRequiresTheSameLayout) {
  YieldReport a(std::vector<std::string>{"tm", "ws"});
  YieldReport b(std::vector<std::string>{"tm", "ws"});
  a.add(0, pass_point());
  b.add(1, pass_point());
  a.merge(b);
  EXPECT_EQ(a.total.samples, 2);
  EXPECT_EQ(a.corners[1].second.samples, 1);
  YieldReport other(std::vector<std::string>{"tm"});
  EXPECT_THROW(a.merge(other), SpecError);
}

TEST(StatYield, JsonCarriesYieldCiAndPerCornerCounts) {
  YieldReport r(std::vector<std::string>{"tm"});
  r.add(0, pass_point());
  r.finalize();
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"yield\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"ci_lo\":"), std::string::npos);
  EXPECT_NE(j.find("\"worst_corner\":\"tm\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"tm\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// The sweep runner: determinism, cache sharing, resume.

runtime::SweepOptions estimate_sweep(int threads, int mc,
                                     runtime::EstimateCache* cache) {
  runtime::SweepOptions o;
  o.supervisor.batch.threads = threads;
  o.supervisor.batch.seed = 2026;
  o.supervisor.batch.cache = cache;
  o.mc_samples = mc;
  return o;
}

TEST(StatSweep, MonteCarloIsBitIdenticalAcrossThreadCounts) {
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 3; ++i) specs.push_back(easy_spec(i));
  runtime::EstimateCache c1, c8;
  const auto serial =
      runtime::run_monte_carlo(proc(), specs, estimate_sweep(1, 32, &c1));
  const auto pooled =
      runtime::run_monte_carlo(proc(), specs, estimate_sweep(8, 32, &c8));
  ASSERT_EQ(serial.jobs.size(), pooled.jobs.size());
  EXPECT_EQ(serial.aggregate.to_json(), pooled.aggregate.to_json());
  for (size_t i = 0; i < serial.jobs.size(); ++i) {
    ASSERT_TRUE(serial.jobs[i].ok) << serial.jobs[i].error;
    EXPECT_EQ(serial.jobs[i].report.to_json(), pooled.jobs[i].report.to_json());
    EXPECT_EQ(serial.jobs[i].corner_estimate_ok,
              pooled.jobs[i].corner_estimate_ok);
  }
  // 7 corners x 32 samples x 3 jobs.
  EXPECT_EQ(serial.aggregate.total.samples, 7L * 32L * 3L);
  EXPECT_EQ(serial.samples_per_corner, 32);
}

TEST(StatSweep, CornerReEstimatesShareTheCache) {
  std::vector<OpAmpSpec> specs{easy_spec(0), easy_spec(0), easy_spec(1)};
  runtime::EstimateCache cache;
  const auto r =
      runtime::run_corner_sweep(proc(), specs, estimate_sweep(2, 0, &cache));
  for (const auto& j : r.jobs) ASSERT_TRUE(j.ok) << j.error;
  // Duplicate specs hit at every corner, and the tm re-estimate hits the
  // entry phase A warmed — structural hits, not luck.
  EXPECT_GT(r.stats.cache.hits, 0);
  EXPECT_GT(r.stats.cache.hit_rate(), 0.0);
  // 2 distinct specs x (nominal-tm + 6 other corners) = 14 misses.
  EXPECT_EQ(r.stats.cache.misses, 14);
}

TEST(StatSweep, ProvenInfeasibleCornersArePrunedBeforeAnyGridWork) {
  OpAmpSpec impossible = easy_spec(0);
  impossible.area_budget = 1e-11;  // below the 8-device min-geometry floor
  std::vector<OpAmpSpec> specs{easy_spec(0), impossible};
  const size_t n_corners = CornerSet::all().size();

  runtime::EstimateCache cache;
  const auto r =
      runtime::run_corner_sweep(proc(), specs, estimate_sweep(2, 0, &cache));
  ASSERT_EQ(r.jobs.size(), 2u);

  // The sane spec: nothing pruned, every corner re-estimated.
  ASSERT_TRUE(r.jobs[0].ok) << r.jobs[0].error;
  EXPECT_EQ(r.jobs[0].corner_proven_infeasible,
            std::vector<uint8_t>(n_corners, 0));

  // The impossible spec: phase A still succeeds (the estimator treats
  // the area budget as informational), but the interval proof refutes
  // the spec at every corner card, so each cell skips its re-estimate
  // and its sample work — the grid slots are recorded as failed points
  // (zero yield, invariant report shape).
  ASSERT_TRUE(r.jobs[1].ok) << r.jobs[1].error;
  EXPECT_EQ(r.jobs[1].corner_proven_infeasible,
            std::vector<uint8_t>(n_corners, 1));
  EXPECT_EQ(r.jobs[1].corner_estimate_ok, std::vector<uint8_t>(n_corners, 0));
  EXPECT_EQ(r.jobs[1].report.total.samples, long(n_corners));
  EXPECT_EQ(r.jobs[1].report.total.pass, 0L);
  EXPECT_EQ(r.corners_pruned, int(n_corners));

  // Proving off: the same grid runs every cell (the default is on).
  runtime::EstimateCache blind_cache;
  runtime::SweepOptions blind = estimate_sweep(2, 0, &blind_cache);
  blind.prove_corners = false;
  const auto rb = runtime::run_corner_sweep(proc(), specs, blind);
  EXPECT_EQ(rb.corners_pruned, 0);
  ASSERT_TRUE(rb.jobs[1].ok) << rb.jobs[1].error;
  EXPECT_EQ(rb.jobs[1].corner_proven_infeasible,
            std::vector<uint8_t>(n_corners, 0));
  EXPECT_EQ(rb.jobs[1].corner_estimate_ok, std::vector<uint8_t>(n_corners, 1));
}

TEST(StatSweep, MonteCarloRequiresSamples) {
  std::vector<OpAmpSpec> specs{easy_spec(0)};
  runtime::EstimateCache cache;
  EXPECT_THROW(
      runtime::run_monte_carlo(proc(), specs, estimate_sweep(1, 0, &cache)),
      SpecError);
}

TEST(StatSweep, ResumeAfterMidRunCancelMatchesUninterrupted) {
  std::vector<OpAmpSpec> specs;
  for (int i = 0; i < 4; ++i) specs.push_back(easy_spec(i));

  auto synth_sweep = [](int threads, runtime::EstimateCache* cache) {
    runtime::SweepOptions o;
    o.supervisor.batch.threads = threads;
    o.supervisor.batch.seed = 2026;
    o.supervisor.batch.cache = cache;
    o.supervisor.batch.synth.use_ape_seed = true;
    o.supervisor.batch.synth.anneal.iterations = 120;
    o.synthesize = true;
    o.corners = CornerSet::parse("tm,ws,hot");
    o.mc_samples = 4;
    return o;
  };

  runtime::EstimateCache ref_cache;
  const auto ref =
      runtime::run_monte_carlo(proc(), specs, synth_sweep(1, &ref_cache));
  ASSERT_EQ(ref.stats.failed, 0);

  // Interrupt phase A after two designs; the checkpoint records them.
  const std::string ckpt = temp_path("stat_sweep.ckpt");
  CancelToken cancel;
  runtime::EstimateCache int_cache;
  runtime::SweepOptions interrupted = synth_sweep(1, &int_cache);
  interrupted.supervisor.checkpoint_path = ckpt;
  interrupted.supervisor.cancel = &cancel;
  int completed = 0;
  interrupted.supervisor.on_job_done = [&](size_t, bool) {
    if (++completed == 2) cancel.cancel();
  };
  const auto cancelled_run =
      runtime::run_monte_carlo(proc(), specs, interrupted);
  int cancelled_jobs = 0;
  for (const auto& j : cancelled_run.jobs) cancelled_jobs += j.ok ? 0 : 1;
  ASSERT_GT(cancelled_jobs, 0);

  // Resume at 8 threads: the full grid reproduces the uninterrupted run.
  runtime::EstimateCache res_cache;
  runtime::SweepOptions resumed = synth_sweep(8, &res_cache);
  resumed.supervisor.resume_path = ckpt;
  const auto r = runtime::run_monte_carlo(proc(), specs, resumed);
  ASSERT_EQ(r.stats.failed, 0);
  EXPECT_GT(r.supervision.resumed_jobs, 0);
  EXPECT_EQ(ref.aggregate.to_json(), r.aggregate.to_json());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(r.jobs[i].ok) << r.jobs[i].error;
    EXPECT_EQ(ref.jobs[i].report.to_json(), r.jobs[i].report.to_json());
    ASSERT_EQ(ref.jobs[i].nominal.best_x.size(), r.jobs[i].nominal.best_x.size());
    for (size_t k = 0; k < ref.jobs[i].nominal.best_x.size(); ++k) {
      EXPECT_EQ(ref.jobs[i].nominal.best_x[k], r.jobs[i].nominal.best_x[k]);
    }
  }
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------------
// Yield-aware synthesis cost.

TEST(StatYieldAwareSynthesis, CornerTermChangesTheWinningSizing) {
  OpAmpSpec spec = easy_spec(2);
  synth::SynthesisOptions nominal;
  nominal.use_ape_seed = true;
  nominal.anneal.iterations = 250;
  nominal.anneal.seed = 7;

  synth::SynthesisOptions yield_aware = nominal;
  yield_aware.yield_weight = 4.0;
  yield_aware.corner_procs = CornerSet::parse("ws,hot").realize(proc());

  const auto a = synth::synthesize_opamp(proc(), spec, nominal);
  const auto b = synth::synthesize_opamp(proc(), spec, yield_aware);
  ASSERT_FALSE(a.best_x.empty());
  ASSERT_FALSE(b.best_x.empty());
  // Same seed, same spec: only the corner cost term differs, and it must
  // steer the anneal to a different winning point.
  bool differs = a.best_x.size() != b.best_x.size();
  for (size_t k = 0; !differs && k < a.best_x.size(); ++k) {
    differs = a.best_x[k] != b.best_x[k];
  }
  EXPECT_TRUE(differs) << "yield_weight had no effect on the sizing";
  // And zero weight reproduces the nominal run bit-identically.
  synth::SynthesisOptions zero = nominal;
  zero.yield_weight = 0.0;
  zero.corner_procs = yield_aware.corner_procs;
  const auto c = synth::synthesize_opamp(proc(), spec, zero);
  ASSERT_EQ(a.best_x.size(), c.best_x.size());
  for (size_t k = 0; k < a.best_x.size(); ++k) {
    EXPECT_EQ(a.best_x[k], c.best_x[k]);
  }
}

}  // namespace
}  // namespace ape::stat
