#include "src/synth/anneal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace ape::synth {
namespace {

TEST(Anneal, MinimizesConvexQuadratic) {
  auto cost = [](const std::vector<double>& x) {
    return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
  };
  AnnealOptions opts;
  opts.iterations = 5000;
  const auto r = anneal(cost, {{-10, 10}, {-10, 10}}, {0.0, 0.0}, opts);
  EXPECT_NEAR(r.best_x[0], 3.0, 0.2);
  EXPECT_NEAR(r.best_x[1], -1.0, 0.2);
  EXPECT_LT(r.best_cost, 0.05);
  EXPECT_EQ(r.evaluations, 5000);
}

TEST(Anneal, EscapesLocalMinimum) {
  // Double well: local minimum at x=-1 (cost 0.5), global at x=2 (cost 0).
  auto cost = [](const std::vector<double>& x) {
    const double a = (x[0] + 1.0) * (x[0] + 1.0) + 0.5;
    const double b = (x[0] - 2.0) * (x[0] - 2.0);
    return std::min(a, b);
  };
  AnnealOptions opts;
  opts.iterations = 8000;
  opts.seed = 3;
  const auto r = anneal(cost, {{-5, 5}}, {-1.0}, opts);
  EXPECT_NEAR(r.best_x[0], 2.0, 0.3);
}

TEST(Anneal, RespectsBounds) {
  // Optimum outside the box: must pin at the boundary.
  auto cost = [](const std::vector<double>& x) { return -x[0]; };
  AnnealOptions opts;
  opts.iterations = 2000;
  const auto r = anneal(cost, {{0.0, 1.0}}, {0.5}, opts);
  EXPECT_LE(r.best_x[0], 1.0);
  EXPECT_NEAR(r.best_x[0], 1.0, 0.01);
}

TEST(Anneal, ClampsStartIntoBox) {
  auto cost = [](const std::vector<double>& x) { return x[0] * x[0]; };
  AnnealOptions opts;
  opts.iterations = 100;
  const auto r = anneal(cost, {{1.0, 2.0}}, {50.0}, opts);
  EXPECT_GE(r.best_x[0], 1.0);
  EXPECT_LE(r.best_x[0], 2.0);
}

TEST(Anneal, DeterministicForFixedSeed) {
  auto cost = [](const std::vector<double>& x) {
    return std::sin(5.0 * x[0]) + x[0] * x[0];
  };
  AnnealOptions opts;
  opts.iterations = 1000;
  opts.seed = 42;
  const auto r1 = anneal(cost, {{-3, 3}}, {0.0}, opts);
  const auto r2 = anneal(cost, {{-3, 3}}, {0.0}, opts);
  EXPECT_EQ(r1.best_x[0], r2.best_x[0]);
  EXPECT_EQ(r1.best_cost, r2.best_cost);
  EXPECT_EQ(r1.accepted, r2.accepted);
}

TEST(Anneal, DifferentSeedsExploreDifferently) {
  auto cost = [](const std::vector<double>& x) {
    return std::sin(50.0 * x[0]) * std::cos(30.0 * x[1]);
  };
  AnnealOptions a, b;
  a.iterations = b.iterations = 500;
  a.seed = 1;
  b.seed = 2;
  const auto r1 = anneal(cost, {{-1, 1}, {-1, 1}}, {0, 0}, a);
  const auto r2 = anneal(cost, {{-1, 1}, {-1, 1}}, {0, 0}, b);
  EXPECT_NE(r1.best_x[0], r2.best_x[0]);
}

TEST(Anneal, RejectsBadInput) {
  auto cost = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW(anneal(cost, {{0, 1}}, {0.0, 0.0}, {}), SpecError);
  EXPECT_THROW(anneal(cost, {{1, 0}}, {0.5}, {}), SpecError);
}

TEST(Anneal, InfiniteCostIsRejectedAndCounted) {
  // The documented finite-cost contract, enforced: +inf (like NaN) can
  // never win the acceptance test nor become best_cost.
  auto cost = [](const std::vector<double>& x) {
    if (x[0] < 0.0) return std::numeric_limits<double>::infinity();
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  AnnealOptions opts;
  opts.iterations = 3000;
  opts.seed = 11;
  const auto r = anneal(cost, {{-2.0, 2.0}}, {1.5}, opts);
  EXPECT_GT(r.rejected_nonfinite, 0);
  EXPECT_TRUE(std::isfinite(r.best_cost));
  EXPECT_GE(r.best_x[0], 0.0);
  EXPECT_NEAR(r.best_x[0], 0.5, 0.2);
  // Every iteration still evaluated: rejection skips acceptance, not work.
  EXPECT_EQ(r.evaluations, opts.iterations);
}

TEST(Anneal, NarrowBoundsBeatWideBoundsOnBudget) {
  // The paper's interval-narrowing argument in miniature: the same budget
  // finds a much better point when the box is tight around the optimum.
  auto cost = [](const std::vector<double>& x) {
    double c = 0.0;
    for (double v : x) c += (v - 0.7) * (v - 0.7);
    return c;
  };
  std::vector<std::pair<double, double>> wide(8, {-100.0, 100.0});
  std::vector<std::pair<double, double>> narrow(8, {0.5, 0.9});
  AnnealOptions opts;
  opts.iterations = 1500;
  opts.seed = 9;
  const auto rw = anneal(cost, wide, std::vector<double>(8, 0.0), opts);
  const auto rn = anneal(cost, narrow, std::vector<double>(8, 0.6), opts);
  EXPECT_LT(rn.best_cost, rw.best_cost * 0.1);
}

}  // namespace
}  // namespace ape::synth
