#include "src/synth/netlist_estimate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/components.h"
#include "src/estimator/verify.h"
#include "src/util/error.h"

namespace ape::synth {
namespace {

TEST(NetlistEstimate, RcLowPassExact) {
  const char* net = R"(rc
Vin in 0 AC 1
R1 in out 1k
C1 out 0 1u
)";
  NetlistEstimateOptions rc_opts;
  rc_opts.out_node = "out";
  const NetlistEstimate e = estimate_netlist(net, rc_opts);
  EXPECT_NEAR(e.dc_gain, 1.0, 1e-6);
  ASSERT_TRUE(e.f3db_hz.has_value());
  EXPECT_NEAR(*e.f3db_hz, 1000.0 / (2.0 * M_PI), 0.5);
  EXPECT_EQ(e.n_mosfets, 0);
}

TEST(NetlistEstimate, ActiveAmplifierAttributes) {
  const char* net = R"(cs amp
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02)
Vdd vdd 0 DC 5
Vin g 0 DC 2 AC 1
Rd vdd d 10k
Cl d 0 10p
M1 d g 0 0 mn W=10u L=2u
)";
  NetlistEstimateOptions opts;
  opts.out_node = "d";
  opts.supply_source = "Vdd";
  const NetlistEstimate e = estimate_netlist(net, opts);
  EXPECT_EQ(e.n_mosfets, 1);
  EXPECT_NEAR(e.gate_area_m2, 10e-6 * 2e-6, 1e-15);
  EXPECT_GT(e.dc_gain, 4.0);
  EXPECT_GT(e.power_w, 1e-4);
  ASSERT_TRUE(e.f3db_hz.has_value());
  // Pole ~ 1/(2 pi Rout CL): sanity band.
  EXPECT_GT(*e.f3db_hz, 5e5);
  EXPECT_LT(*e.f3db_hz, 5e6);
}

TEST(NetlistEstimate, MatchesFullSimulationOnGeneratedDesign) {
  // The hierarchy closes: estimate a generated component testbench's
  // netlist text as if a user had written it, and compare with the
  // simulator's own measurement.
  const est::Process proc = est::Process::default_1u2();
  est::ComponentSpec spec{est::ComponentKind::GainCmos, 120e-6, 10.0, 0.0,
                          1e-12};
  const est::ComponentDesign d = est::ComponentEstimator(proc).estimate(spec);
  const est::Testbench tb = d.testbench(proc);

  NetlistEstimateOptions opts;
  opts.out_node = tb.out_node;
  opts.supply_source = "Vdd";
  // The diode-loaded stage is dominantly first-order; higher AWE orders
  // would make the moment matrix singular.
  opts.awe_order = 1;
  const NetlistEstimate e = estimate_netlist(tb.netlist, opts);

  const est::ComponentSimReport sim = est::simulate_component(d, proc);
  EXPECT_NEAR(e.dc_gain, std::fabs(sim.gain), std::fabs(sim.gain) * 0.02);
  ASSERT_TRUE(e.ugf_hz.has_value());
  ASSERT_TRUE(sim.ugf_hz.has_value());
  EXPECT_NEAR(*e.ugf_hz, *sim.ugf_hz, *sim.ugf_hz * 0.15);
  EXPECT_NEAR(e.power_w, sim.power, sim.power * 0.05);
}

TEST(NetlistEstimate, StablePolesForPassiveNetwork) {
  const char* net = R"(ladder
Vin in 0 AC 1
R1 in a 1k
C1 a 0 1n
R2 a out 10k
C2 out 0 100p
)";
  NetlistEstimateOptions opts;
  opts.out_node = "out";
  opts.awe_order = 2;
  const NetlistEstimate e = estimate_netlist(net, opts);
  for (const auto& p : e.poles) EXPECT_LT(p.real(), 0.0);
}

TEST(NetlistEstimate, ErrorsPropagate) {
  EXPECT_THROW(estimate_netlist("", {}), ParseError);
  const char* net = R"(x
Vin in 0 AC 1
R1 in out 1k
C1 out 0 1n
)";
  NetlistEstimateOptions bad;
  bad.out_node = "nope";
  EXPECT_THROW(estimate_netlist(net, bad), LookupError);
}

}  // namespace
}  // namespace ape::synth
