/// Static analyzer tests (DESIGN.md section 9): one deliberately broken
/// circuit per structural rule, the spec/design sanity rules, and the
/// "clean designs lint clean" guarantees for the shipped testbenches.

#include "src/lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/lint/prove.h"
#include "src/runtime/batch.h"
#include "src/spice/analysis.h"
#include "src/stat/corners.h"
#include "src/spice/devices.h"
#include "src/spice/parser.h"

namespace ape::lint {
namespace {

// --- structural rules, one broken circuit each -----------------------------

TEST(LintCircuit, FloatingNodeWarns) {
  const Report rep = lint_netlist(R"(floating
V1 in 0 DC 1
R1 in out 1k
R2 out 0 1k
R3 out stub 1k
)");
  ASSERT_TRUE(rep.has("APE-L001"));
  EXPECT_EQ(rep.first("APE-L001")->severity, Severity::Warn);
  EXPECT_NE(rep.first("APE-L001")->message.find("stub"), std::string::npos);
  EXPECT_TRUE(rep.ok()) << "a dangling node is a warning, not an error";
}

TEST(LintCircuit, VoltageSourceLoopIsError) {
  const Report rep = lint_netlist(R"(vloop
V1 a 0 DC 5
V2 a 0 DC 3
R1 a 0 1k
)");
  ASSERT_TRUE(rep.has("APE-L002"));
  EXPECT_EQ(rep.first("APE-L002")->severity, Severity::Error);
  EXPECT_FALSE(rep.ok());
}

TEST(LintCircuit, InductorClosesVoltageLoop) {
  // V - L - ground is a DC short across the source: two voltage-defined
  // branches around one mesh.
  const Report rep = lint_netlist(R"(vl loop
V1 a 0 DC 1
L1 a 0 1m
)");
  EXPECT_TRUE(rep.has("APE-L002"));
}

TEST(LintCircuit, CurrentSourceCutsetIsError) {
  const Report rep = lint_netlist(R"(cutset
V1 in 0 DC 1
R1 in 0 1k
I1 0 iso DC 1u
C1 iso 0 1p
)");
  ASSERT_TRUE(rep.has("APE-L003"));
  EXPECT_EQ(rep.first("APE-L003")->severity, Severity::Error);
  EXPECT_NE(rep.first("APE-L003")->message.find("I1"), std::string::npos);
}

TEST(LintCircuit, NoGroundPathIsError) {
  // Node held up only by capacitors: no current source involved, so the
  // island classifies as APE-L004 rather than a cutset.
  const Report rep = lint_netlist(R"(capisland
V1 in 0 DC 1
R1 in 0 1k
C1 in mid 1p
C2 mid 0 1p
)");
  ASSERT_TRUE(rep.has("APE-L004"));
  EXPECT_EQ(rep.first("APE-L004")->severity, Severity::Error);
  EXPECT_FALSE(rep.has("APE-L003"));
}

TEST(LintCircuit, SelfLoopIsError) {
  // The parser rejects self-loops at parse time, so build the circuit
  // programmatically to exercise the analyzer's own rule.
  spice::Circuit ckt("selfloop");
  const spice::NodeId a = ckt.node("a");
  ckt.add<spice::Resistor>("r1", a, a, 1e3);
  ckt.add<spice::VSource>("v1", a, spice::kGround, spice::Waveform{});
  const Report rep = lint_circuit(ckt);
  ASSERT_TRUE(rep.has("APE-L005"));
  EXPECT_EQ(rep.first("APE-L005")->severity, Severity::Error);
}

TEST(LintCircuit, DuplicateDeviceNameIsError) {
  spice::Circuit ckt("dup");
  const spice::NodeId a = ckt.node("a");
  ckt.add<spice::Resistor>("r1", a, spice::kGround, 1e3);
  ckt.add<spice::Resistor>("R1", a, spice::kGround, 2e3);
  ckt.add<spice::VSource>("v1", a, spice::kGround, spice::Waveform{});
  const Report rep = lint_circuit(ckt);
  ASSERT_TRUE(rep.has("APE-L006"));
  EXPECT_EQ(rep.first("APE-L006")->severity, Severity::Error);
}

TEST(LintCircuit, EmptyCircuitWarns) {
  spice::Circuit ckt("empty");
  const Report rep = lint_circuit(ckt);
  EXPECT_TRUE(rep.has("APE-L007"));
  EXPECT_TRUE(rep.ok());
}

TEST(LintNetlist, CaseAliasedNodeGetsNote) {
  const Report rep = lint_netlist(R"(alias
V1 Out 0 DC 1
R1 out 0 1k
)");
  ASSERT_TRUE(rep.has("APE-L008"));
  EXPECT_EQ(rep.first("APE-L008")->severity, Severity::Note);
  EXPECT_TRUE(rep.ok());
}

TEST(LintNetlist, ParseFailureIsSingleFinding) {
  const Report rep = lint_netlist("broken\nQ1 a b c bjt\n");
  ASSERT_TRUE(rep.has("APE-P001"));
  EXPECT_EQ(rep.errors(), 1);
}

TEST(LintCircuit, MosfetGateNeedsNoDcPathButIsCounted) {
  // A MOS gate driven only through a capacitor *is* a missing-ground-path
  // defect; a gate driven by a source is fine. Both gates have degree >= 2
  // so neither is "dangling".
  const Report bad = lint_netlist(R"(floating gate
.model modn nmos (level=1 vto=0.8 kp=80u)
Vdd d 0 DC 5
C1 d g 1p
M1 d g 0 0 modn w=10u l=1u
)");
  EXPECT_TRUE(bad.has("APE-L004"));

  const Report good = lint_netlist(R"(driven gate
.model modn nmos (level=1 vto=0.8 kp=80u)
Vdd d 0 DC 5
Vg g 0 DC 2
M1 d g 0 0 modn w=10u l=1u
)");
  EXPECT_TRUE(good.ok()) << good.to_json();
}

// --- spec / design rules ----------------------------------------------------

TEST(LintSpec, NonPositiveSpecValueIsError) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.cload = -1e-12;
  const Report rep = lint_spec(spec, proc);
  ASSERT_TRUE(rep.has("APE-S001"));
  EXPECT_FALSE(rep.ok());
}

TEST(LintSpec, ImplausibleMagnitudeWarns) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.ugf_hz = 1e13;  // 10 THz in a 1.2 um process: a unit slip
  const Report rep = lint_spec(spec, proc);
  ASSERT_TRUE(rep.has("APE-S002"));
  EXPECT_EQ(rep.first("APE-S002")->severity, Severity::Warn);
  EXPECT_TRUE(rep.ok());
}

TEST(LintSpec, HeadroomInfeasibleSupplyIsError) {
  est::Process proc = est::Process::default_1u2();
  proc.vdd = 1.8;  // |vto_n| + |vto_p| + 3 x 0.15 = 2.05 V > 1.8 V
  est::OpAmpSpec spec;
  const Report rep = lint_spec(spec, proc);
  ASSERT_TRUE(rep.has("APE-S004"));
  EXPECT_EQ(rep.first("APE-S004")->severity, Severity::Error);

  // The default 5 V supply fits comfortably.
  EXPECT_FALSE(lint_spec(spec, est::Process::default_1u2()).has("APE-S004"));
}

TEST(LintSpec, ZoutWithoutBufferGetsNote) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.zout = 500.0;
  spec.buffer = false;
  const Report rep = lint_spec(spec, proc);
  EXPECT_TRUE(rep.has("APE-S005"));
  EXPECT_TRUE(rep.ok());
}

TEST(LintSpec, ModuleOrderOutOfRangeIsError) {
  const est::Process proc = est::Process::default_1u2();
  est::ModuleSpec spec;
  spec.kind = est::ModuleKind::FlashAdc;
  spec.order = 0;
  EXPECT_TRUE(lint_spec(spec, proc).has("APE-S001"));

  spec.kind = est::ModuleKind::LowPassFilter;
  spec.order = 9;
  EXPECT_TRUE(lint_spec(spec, proc).has("APE-S001"));
}

TEST(LintDesign, WidthOutsideProcessBoundsIsError) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpDesign design;
  est::TransistorDesign t;
  t.w = proc.wmin / 2.0;
  t.l = proc.lmin;
  design.transistors.push_back(t);
  design.roles.push_back("m1_input");
  const Report rep = lint_design(design, proc);
  ASSERT_TRUE(rep.has("APE-S003"));
  EXPECT_NE(rep.first("APE-S003")->message.find("m1_input"), std::string::npos);
}

// --- testbench rules --------------------------------------------------------

TEST(LintTestbench, MissingProbeAndBadSourceRef) {
  est::Testbench tb;
  tb.netlist = "tb\nV1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n";
  tb.out_node = "nosuch";
  tb.in_source = "vmissing";
  tb.supply_source = "r1";  // exists, but is not a voltage source
  const Report rep = lint_testbench(tb);
  EXPECT_TRUE(rep.has("APE-T001"));
  EXPECT_TRUE(rep.has("APE-T002"));
  EXPECT_FALSE(rep.ok());
}

// --- clean designs lint clean ----------------------------------------------

TEST(LintClean, TwoStageOpampTestbenchesLintClean) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 400.0;
  spec.ugf_hz = 2e6;
  spec.source = est::CurrentSourceKind::Wilson;
  const est::OpAmpDesign design = est::OpAmpEstimator(proc).estimate(spec);

  for (const auto mode :
       {est::OpAmpTb::OpenLoop, est::OpAmpTb::CommonMode,
        est::OpAmpTb::ZoutProbe, est::OpAmpTb::UnityStep}) {
    const Report rep = lint_testbench(design.testbench(proc, mode));
    EXPECT_EQ(rep.errors(), 0) << rep.to_json();
    EXPECT_EQ(rep.warnings(), 0) << rep.to_json();
  }
  EXPECT_TRUE(lint_spec(spec, proc).ok());
  EXPECT_TRUE(lint_design(design, proc).ok());
}

TEST(LintClean, ModuleTestbenchLintsClean) {
  const est::Process proc = est::Process::default_1u2();
  est::ModuleSpec spec;
  spec.kind = est::ModuleKind::LowPassFilter;
  spec.f0_hz = 10e3;
  spec.order = 2;
  const est::ModuleDesign design = est::ModuleEstimator(proc).estimate(spec);
  const Report rep = lint_testbench(design.testbench(proc));
  EXPECT_EQ(rep.errors(), 0) << rep.to_json();
}

// --- corner invariance ------------------------------------------------------
// The APE-L/P/S/T rules are structural: their verdicts depend on the
// netlist/spec shape, not on the model skews a PVT corner applies. For
// every rule a corner-realized card can reach, the (rule, severity,
// where) verdict sequence must be identical across tm/wp/ws/wo/wz —
// only the feasibility family (APE-F) is allowed to see skews.

std::vector<std::string> verdict_keys(const Report& rep) {
  std::vector<std::string> keys;
  for (const auto& f : rep.findings) {
    keys.push_back(f.rule + '/' + to_string(f.severity) + '/' + f.where);
  }
  return keys;
}

TEST(LintCornerInvariance, SpecAndTestbenchVerdictsMatchAcrossSkewCards) {
  const est::Process base = est::Process::default_1u2();
  const std::vector<est::Process> cards =
      stat::CornerSet::parse("tm,wp,ws,wo,wz").realize(base);
  ASSERT_EQ(cards.size(), 5u);

  // A battery covering every proc-consuming rule family: clean spec,
  // bad value (S001), unit slip (S002), zout note (S005), W/L bounds
  // (S003), module order (S001), and a dirty testbench (T001/T002).
  std::vector<est::OpAmpSpec> specs(4);
  specs[1].cload = -1e-12;
  specs[2].ugf_hz = 1e13;
  specs[3].zout = 500.0;
  est::ModuleSpec module_spec;
  module_spec.kind = est::ModuleKind::FlashAdc;
  module_spec.order = 0;
  est::OpAmpDesign design;
  est::TransistorDesign t;
  t.w = base.wmin / 2.0;
  t.l = base.lmin;
  design.transistors.push_back(t);
  design.roles.push_back("m1_input");
  est::Testbench tb;
  tb.netlist = "tb\nV1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n";
  tb.out_node = "nosuch";
  tb.in_source = "vmissing";

  std::vector<std::vector<std::string>> baseline;
  for (const est::OpAmpSpec& s : specs) {
    baseline.push_back(verdict_keys(lint_spec(s, cards[0])));
  }
  baseline.push_back(verdict_keys(lint_spec(module_spec, cards[0])));
  baseline.push_back(verdict_keys(lint_design(design, cards[0])));
  baseline.push_back(verdict_keys(lint_testbench(tb)));
  // The battery must actually trip rules for the invariance to bite.
  EXPECT_TRUE(lint_spec(specs[1], cards[0]).has("APE-S001"));
  EXPECT_TRUE(lint_spec(specs[2], cards[0]).has("APE-S002"));
  EXPECT_TRUE(lint_spec(specs[3], cards[0]).has("APE-S005"));
  EXPECT_TRUE(lint_design(design, cards[0]).has("APE-S003"));

  for (size_t c = 1; c < cards.size(); ++c) {
    size_t k = 0;
    for (const est::OpAmpSpec& s : specs) {
      EXPECT_EQ(verdict_keys(lint_spec(s, cards[c])), baseline[k++])
          << "spec verdict drifted at corner " << cards[c].variant;
    }
    EXPECT_EQ(verdict_keys(lint_spec(module_spec, cards[c])), baseline[k++])
        << cards[c].variant;
    EXPECT_EQ(verdict_keys(lint_design(design, cards[c])), baseline[k++])
        << cards[c].variant;
    EXPECT_EQ(verdict_keys(lint_testbench(tb)), baseline[k++])
        << cards[c].variant;
  }
}

// APE-F is the one family that *should* consult the corner card — but
// its verdict on clearly-sided specs must still agree at every skew:
// a budget below minimum geometry is infeasible everywhere, a sane
// default spec feasible everywhere, and the proof names its corner.
TEST(LintCornerInvariance, ApeFVerdictsPerCorner) {
  const est::Process base = est::Process::default_1u2();
  est::OpAmpSpec impossible;
  impossible.area_budget = 1e-11;  // < 8 devices at minimum geometry
  const est::OpAmpSpec sane;
  for (const est::Process& card :
       stat::CornerSet::parse("tm,wp,ws,wo,wz").realize(base)) {
    const FeasibilityProof bad = prove_opamp_feasibility(card, impossible);
    EXPECT_TRUE(bad.infeasible) << card.variant;
    ASSERT_TRUE(bad.report.has("APE-F001")) << card.variant;
    EXPECT_EQ(bad.report.first("APE-F001")->severity, Severity::Error);
    EXPECT_EQ(bad.corner, card.variant);

    const FeasibilityProof good = prove_opamp_feasibility(card, sane);
    EXPECT_FALSE(good.infeasible) << card.variant;
    EXPECT_EQ(good.report.errors(), 0) << card.variant;
  }
}

// --- lint-first integration -------------------------------------------------

TEST(LintFirst, DcPreflightThrowsLintErrorOnSingularTopology) {
  spice::Circuit ckt = spice::parse_netlist(R"(cutset
I1 0 iso DC 1u
C1 iso 0 1p
)");
  bool threw = false;
  try {
    lint_first_dc(ckt);
  } catch (const LintError& e) {
    threw = true;
    EXPECT_TRUE(e.report().has("APE-L003"));
    EXPECT_NE(std::string(e.what()).find("APE-L003"), std::string::npos);
  }
  EXPECT_TRUE(threw);
}

TEST(LintFirst, CleanCircuitSolvesThroughPreflight) {
  spice::Circuit ckt = spice::parse_netlist(R"(divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
)");
  spice::DcOptions opts;
  opts.preflight = preflight();
  const spice::Solution sol = spice::dc_operating_point(ckt, opts);
  EXPECT_NEAR(spice::node_voltage(ckt, sol, "mid"), 7.5, 1e-6);
}

TEST(LintFirst, BatchGateFailsOnlyTheDirtyJob) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec good;
  est::OpAmpSpec bad;
  bad.cload = -1.0;
  runtime::BatchOptions opts;
  opts.threads = 1;
  opts.lint_first = true;
  const auto result = runtime::estimate_opamp_batch(proc, {good, bad}, opts);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_TRUE(result.jobs[0].ok);
  EXPECT_FALSE(result.jobs[1].ok);
  EXPECT_NE(result.jobs[1].error.find("APE-S001"), std::string::npos);
  // The per-job provenance frame is stamped on the captured lint error.
  EXPECT_NE(result.jobs[1].error.find("opamp_estimate[1]"), std::string::npos);
}

// --- report plumbing --------------------------------------------------------

TEST(LintReport, JsonAndSummaryCarryTheFindings) {
  Report rep;
  rep.add("APE-L002", Severity::Error, "loop of \"v1\"", "ckt");
  rep.add("APE-L001", Severity::Warn, "dangling", "ckt");
  EXPECT_EQ(rep.errors(), 1);
  EXPECT_EQ(rep.warnings(), 1);
  EXPECT_FALSE(rep.ok());

  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"rule\":\"APE-L002\""), std::string::npos);
  EXPECT_NE(json.find("\\\"v1\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);

  const std::string sum = rep.summary();
  EXPECT_NE(sum.find("1 error"), std::string::npos);
  EXPECT_NE(sum.find("APE-L002"), std::string::npos);

  Report clean;
  EXPECT_EQ(clean.summary(), "clean");
  EXPECT_NO_THROW(require_clean(clean, "noop"));
  EXPECT_THROW(require_clean(rep, "gate"), LintError);
}

}  // namespace
}  // namespace ape::lint
