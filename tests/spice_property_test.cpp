/// Cross-cutting simulator properties: conservation laws, consistency
/// between analyses, and randomized sweeps - invariants rather than
/// single-circuit spot checks.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "tests/test_models.h"

namespace ape::spice {
namespace {

Waveform dcv(double v) {
  Waveform w;
  w.dc = v;
  return w;
}

/// KCL at the converged operating point: for every non-ground node of a
/// random resistive network, branch currents sum to ~0.
TEST(SpiceProperty, KclHoldsOnRandomResistiveNetworks) {
  std::mt19937_64 gen(77);
  std::uniform_real_distribution<double> rval(100.0, 100e3);
  std::uniform_int_distribution<int> node_pick(0, 5);
  for (int trial = 0; trial < 20; ++trial) {
    Circuit ckt("random");
    std::vector<NodeId> nodes{kGround};
    for (int i = 0; i < 6; ++i) nodes.push_back(ckt.node("n" + std::to_string(i)));
    ckt.add<VSource>("v1", nodes[1], kGround, dcv(5.0));
    // Random resistor mesh; ensure every node has a path to ground.
    struct Edge { NodeId a, b; double r; };
    std::vector<Edge> edges;
    for (int i = 1; i < 6; ++i) {
      edges.push_back({nodes[static_cast<size_t>(i)], nodes[static_cast<size_t>(i + 1)], rval(gen)});
    }
    edges.push_back({nodes[6], kGround, rval(gen)});
    for (int i = 0; i < 5; ++i) {
      edges.push_back({nodes[static_cast<size_t>(node_pick(gen)) + 1],
                       nodes[static_cast<size_t>(node_pick(gen)) + 1], rval(gen)});
    }
    int k = 0;
    for (auto& e : edges) {
      if (e.a == e.b) continue;
      ckt.add<Resistor>("r" + std::to_string(k++), e.a, e.b, e.r);
    }
    const auto sol = dc_operating_point(ckt);
    // KCL residual per node from the resistor currents.
    std::vector<double> residual(7, 0.0);
    for (const auto& e : edges) {
      if (e.a == e.b) continue;
      const double i = (sol.at(e.a) - sol.at(e.b)) / e.r;
      if (e.a != kGround) residual[static_cast<size_t>(e.a)] -= i;
      if (e.b != kGround) residual[static_cast<size_t>(e.b)] += i;
    }
    // Node n0 carries the source; others must balance to ~gmin leakage.
    for (int i = 1; i < 7; ++i) {
      if (nodes[static_cast<size_t>(i)] == ckt.find_node("n0")) continue;
      EXPECT_NEAR(residual[static_cast<size_t>(nodes[static_cast<size_t>(i)])], 0.0, 1e-8)
          << "trial " << trial << " node " << i;
    }
  }
}

/// The supply current equals the sum of all branch currents leaving VDD -
/// power bookkeeping is conservative in a MOS circuit.
TEST(SpiceProperty, SupplyCurrentMatchesDeviceSum) {
  Circuit ckt("mirror3");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<ISource>("iref", ckt.node("vdd"), ckt.node("ref"), dcv(50e-6));
  ckt.add<Mosfet>("m1", ckt.node("ref"), ckt.node("ref"), kGround, kGround, m, 10e-6, 2.4e-6);
  ckt.add<Mosfet>("m2", ckt.node("o1"), ckt.node("ref"), kGround, kGround, m, 10e-6, 2.4e-6);
  ckt.add<Mosfet>("m3", ckt.node("o2"), ckt.node("ref"), kGround, kGround, m, 20e-6, 2.4e-6);
  ckt.add<Resistor>("r1", ckt.node("vdd"), ckt.node("o1"), 20e3);
  ckt.add<Resistor>("r2", ckt.node("vdd"), ckt.node("o2"), 10e3);
  const auto sol = dc_operating_point(ckt);
  const double i_vdd = -source_current(ckt, sol, "vdd");
  const double i_r1 = (sol.at(ckt.find_node("vdd")) - sol.at(ckt.find_node("o1"))) / 20e3;
  const double i_r2 = (sol.at(ckt.find_node("vdd")) - sol.at(ckt.find_node("o2"))) / 10e3;
  EXPECT_NEAR(i_vdd, 50e-6 + i_r1 + i_r2, 1e-8);
}

/// AC and transient agree: an RC filter's step-response time constant
/// equals 1/(2 pi f3dB) from the AC sweep.
TEST(SpiceProperty, AcAndTransientConsistentOnRc) {
  for (double r : {1e3, 22e3}) {
    const double c = 4.7e-9;
    Circuit ckt("rcx");
    Waveform w;
    w.kind = Waveform::Kind::Pulse;
    w.v1 = 0.0;
    w.v2 = 1.0;
    w.td = 0.0;
    w.tr = 1e-9;
    w.tf = 1e-9;
    w.pw = 1.0;
    w.per = 2.0;
    w.ac_mag = 1.0;
    ckt.add<VSource>("vin", ckt.node("in"), kGround, w);
    ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), r);
    ckt.add<Capacitor>("c1", ckt.node("out"), kGround, c);
    (void)dc_operating_point(ckt);
    const auto ac = ac_analysis(ckt, 10.0, 10e6, 20);
    const Bode bode(ac, ckt.find_node("out"));
    ASSERT_TRUE(bode.f_3db().has_value());
    const double tau_ac = 1.0 / (2.0 * M_PI * *bode.f_3db());

    Circuit ckt2("rcx2");
    ckt2.add<VSource>("vin", ckt2.node("in"), kGround, w);
    ckt2.add<Resistor>("r1", ckt2.node("in"), ckt2.node("out"), r);
    ckt2.add<Capacitor>("c1", ckt2.node("out"), kGround, c);
    const double tau = r * c;
    const auto tr = transient(ckt2, tau / 50.0, 8.0 * tau);
    const auto t63 = crossing_time(tr, ckt2.find_node("out"), 1.0 - std::exp(-1.0));
    ASSERT_TRUE(t63.has_value());
    EXPECT_NEAR(*t63, tau_ac, tau_ac * 0.03) << "R = " << r;
  }
}

/// DC sweep of a diode-connected device reproduces the model's I-V curve.
TEST(SpiceProperty, DcSweepMatchesModelCurve) {
  Circuit ckt("sweep");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vg", ckt.node("g"), kGround, dcv(0.0));
  ckt.add<VSource>("vmeas", ckt.node("g"), ckt.node("d"), dcv(0.0));
  ckt.add<Mosfet>("m1", ckt.node("d"), ckt.node("d"), kGround, kGround, m,
                  10e-6, 2.4e-6);
  const auto sw = dc_sweep(ckt, "vg", 0.5, 3.0, 0.25);
  ASSERT_EQ(sw.values.size(), 11u);
  for (size_t k = 0; k < sw.values.size(); ++k) {
    const double v = sw.values[k];
    const double want = mos_eval(*m, v, v, 0.0, 10e-6, 2.4e-6).ids;
    const double got = sw.solutions[k].at(
        ckt.find_as<VSource>("vmeas").branch());
    EXPECT_NEAR(got, want, std::max(want * 0.01, 2e-8)) << "Vg = " << v;
  }
}

/// DC sweep warm-start equals cold solves point by point.
TEST(SpiceProperty, DcSweepMatchesPointwiseSolves) {
  const char* net = R"(inverter
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02 lref=2.4u ld=0.1u)
Vdd vdd 0 DC 5
Vg g 0 DC 0
Rd vdd d 20k
M1 d g 0 0 mn W=10u L=2.4u
)";
  Circuit ckt = parse_netlist(net);
  const auto sw = dc_sweep(ckt, "Vg", 0.0, 3.0, 0.5);
  for (size_t k = 0; k < sw.values.size(); ++k) {
    Circuit cold = parse_netlist(net);
    cold.find_as<VSource>("Vg").wave().dc = sw.values[k];
    const auto sol = dc_operating_point(cold);
    EXPECT_NEAR(sw.voltage(ckt.find_node("d"), k),
                node_voltage(cold, sol, "d"), 1e-5)
        << "Vg = " << sw.values[k];
  }
}

TEST(SpiceProperty, DcSweepRestoresSourceValue) {
  const char* net = R"(x
V1 a 0 DC 1.5
R1 a 0 1k
)";
  Circuit ckt = parse_netlist(net);
  (void)dc_sweep(ckt, "V1", 0.0, 2.0, 0.5);
  EXPECT_DOUBLE_EQ(ckt.find_as<VSource>("V1").wave().dc, 1.5);
}

TEST(SpiceProperty, DcSweepRejectsBadRange) {
  const char* net = R"(x
V1 a 0 DC 1
R1 a 0 1k
)";
  Circuit ckt = parse_netlist(net);
  EXPECT_THROW(dc_sweep(ckt, "V1", 1.0, 0.0, 0.1), SpecError);
  EXPECT_THROW(dc_sweep(ckt, "V1", 0.0, 1.0, -0.1), SpecError);
}

/// Linearity of the AC solution: doubling the stimulus doubles every
/// node phasor (the small-signal system is linear by construction, so
/// this pins the stamping, not physics).
TEST(SpiceProperty, AcSolutionIsLinearInStimulus) {
  const char* net = R"(lin
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02)
Vdd vdd 0 DC 5
Vg g 0 DC 2 AC 1
Rd vdd d 10k
Cl d 0 5p
M1 d g 0 0 mn W=10u L=2u
)";
  Circuit a = parse_netlist(net);
  (void)dc_operating_point(a);
  const auto ra = ac_analysis(a, 1e3, 1e7, 5);

  Circuit b = parse_netlist(net);
  b.find_as<VSource>("Vg").wave().ac_mag = 2.0;
  (void)dc_operating_point(b);
  const auto rb = ac_analysis(b, 1e3, 1e7, 5);

  const NodeId d = a.find_node("d");
  for (size_t k = 0; k < ra.freq_hz.size(); ++k) {
    const auto ha = ra.voltage(d, k);
    const auto hb = rb.voltage(d, k);
    EXPECT_NEAR(std::abs(hb), 2.0 * std::abs(ha), std::abs(ha) * 1e-9);
  }
}

/// Mirror output current is monotone in reference current (parameterized
/// decade sweep).
class MirrorMonotone : public ::testing::TestWithParam<double> {};

TEST_P(MirrorMonotone, OutputTracksReference) {
  const double iref = GetParam();
  Circuit ckt("mm");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<ISource>("iref", ckt.node("vdd"), ckt.node("ref"), dcv(iref));
  ckt.add<Mosfet>("m1", ckt.node("ref"), ckt.node("ref"), kGround, kGround, m, 20e-6, 2.4e-6);
  ckt.add<Mosfet>("m2", ckt.node("out"), ckt.node("ref"), kGround, kGround, m, 20e-6, 2.4e-6);
  ckt.add<VSource>("vout", ckt.node("out"), kGround, dcv(2.5));
  const auto sol = dc_operating_point(ckt);
  // The mirror sinks current out of the probe source's + terminal, so the
  // branch current (flowing + to - inside the source) reads negative.
  const double iout = -source_current(ckt, sol, "vout");
  EXPECT_NEAR(iout, iref, iref * 0.12);
}

INSTANTIATE_TEST_SUITE_P(Decades, MirrorMonotone,
                         ::testing::Values(1e-6, 5e-6, 20e-6, 100e-6, 400e-6));

}  // namespace
}  // namespace ape::spice
