#include "src/util/diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "src/util/error.h"

namespace ape {
namespace {

TEST(ErrorContext, ChainJoinsOpenFrames) {
  EXPECT_EQ(ErrorContext::chain(), "");
  EXPECT_EQ(ErrorContext::depth(), 0u);
  ErrorContext outer("module");
  {
    ErrorContext inner("component");
    EXPECT_EQ(ErrorContext::chain(), "module -> component");
    EXPECT_EQ(ErrorContext::depth(), 2u);
  }
  EXPECT_EQ(ErrorContext::chain(), "module");
  EXPECT_EQ(ErrorContext::depth(), 1u);
}

TEST(ErrorContext, ApeErrorsCarryTheChain) {
  ErrorContext outer("synthesize_opamp");
  ErrorContext inner("dc('testbench')");
  const Error e("Newton failed");
  EXPECT_EQ(std::string(e.what()),
            "[synthesize_opamp -> dc('testbench')] Newton failed");
  // Subclasses are annotated through the same base constructor.
  const NumericError n("singular");
  EXPECT_EQ(std::string(n.what()),
            "[synthesize_opamp -> dc('testbench')] singular");
}

TEST(ErrorContext, NoChainMeansNoPrefix) {
  const Error e("plain message");
  EXPECT_EQ(std::string(e.what()), "plain message");
}

TEST(ErrorContext, StackIsPerThread) {
  ErrorContext scope("main-thread-frame");
  std::string other_chain = "unset";
  std::thread t([&] { other_chain = ErrorContext::chain(); });
  t.join();
  EXPECT_EQ(other_chain, "");
  EXPECT_EQ(ErrorContext::chain(), "main-thread-frame");
}

// ---------------------------------------------------------------------------

TEST(RunBudget, UnlimitedByDefault) {
  RunBudget b;
  EXPECT_FALSE(b.exhausted());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(b.charge());
  EXPECT_FALSE(b.exhausted());
  EXPECT_EQ(b.evaluations_used(), 1000);
  EXPECT_TRUE(std::isinf(b.seconds_left()));
}

TEST(RunBudget, EvaluationCap) {
  RunBudget b = RunBudget::with_evaluations(3);
  EXPECT_FALSE(b.exhausted());
  EXPECT_TRUE(b.charge());   // 1
  EXPECT_TRUE(b.charge());   // 2
  EXPECT_FALSE(b.charge());  // 3: cap reached
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.evaluations_used(), 3);
}

TEST(RunBudget, ExpiredDeadline) {
  RunBudget b = RunBudget::with_deadline(0.0);
  EXPECT_TRUE(b.exhausted());
  EXPECT_LE(b.seconds_left(), 0.0);
}

TEST(RunBudget, FutureDeadline) {
  RunBudget b = RunBudget::with_deadline(60.0);
  EXPECT_FALSE(b.exhausted());
  EXPECT_GT(b.seconds_left(), 30.0);
  // Charging evaluations does not expire a pure-deadline budget.
  for (int i = 0; i < 100; ++i) b.charge();
  EXPECT_FALSE(b.exhausted());
}

// ---------------------------------------------------------------------------

TEST(ConvergenceReport, SummaryNamesPlanAndCounters) {
  ConvergenceReport rep;
  rep.converged = true;
  rep.plan = DcPlan::SourceStepping;
  rep.final_gmin = 1e-12;
  rep.gmin_rungs_completed = 11;
  rep.source_steps_completed = 6;
  rep.newton_iterations = 42;
  rep.lu_failures = 1;
  const std::string s = rep.summary();
  EXPECT_NE(s.find("converged"), std::string::npos);
  EXPECT_NE(s.find("source-stepping"), std::string::npos);
  EXPECT_NE(s.find("rungs=11"), std::string::npos);
  EXPECT_NE(s.find("src_steps=6"), std::string::npos);
  EXPECT_NE(s.find("newton_iters=42"), std::string::npos);
  EXPECT_NE(s.find("lu_failures=1"), std::string::npos);
}

TEST(ConvergenceReport, FailedSummary) {
  ConvergenceReport rep;
  const std::string s = rep.summary();
  EXPECT_NE(s.find("FAILED"), std::string::npos);
  EXPECT_NE(s.find("plan=none"), std::string::npos);
}

}  // namespace
}  // namespace ape
