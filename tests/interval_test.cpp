/// \file interval_test.cpp
/// The interval-arithmetic substrate of the feasibility prover
/// (src/util/interval.h): constructor/hull semantics, outward rounding,
/// the extended (Kahan) division case split, NaN poisoning, empty-set
/// propagation, the monotone function extensions — and a randomized
/// containment property over compound expressions, which is the
/// contract the prover's soundness rests on.

#include "src/util/interval.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/util/rng.h"

namespace ape::util {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(IntervalBasics, DefaultIsPointZero) {
  const Interval v;
  EXPECT_TRUE(v.is_point());
  EXPECT_EQ(v.lo(), 0.0);
  EXPECT_EQ(v.hi(), 0.0);
  EXPECT_FALSE(v.empty());
}

TEST(IntervalBasics, PointConstructorIsExact) {
  const Interval v(3.25);
  EXPECT_EQ(v.lo(), 3.25);
  EXPECT_EQ(v.hi(), 3.25);
  EXPECT_TRUE(v.is_point());
}

TEST(IntervalBasics, SwappedEndpointsAreHulled) {
  const Interval v(5.0, 2.0);
  EXPECT_EQ(v.lo(), 2.0);
  EXPECT_EQ(v.hi(), 5.0);
}

TEST(IntervalBasics, NanEndpointWidensToWholeLine) {
  const Interval v(kNan, 2.0);
  EXPECT_EQ(v.lo(), -kInf);
  EXPECT_EQ(v.hi(), kInf);
}

TEST(IntervalBasics, ContainsAndIntersects) {
  const Interval v(1.0, 4.0);
  EXPECT_TRUE(v.contains(1.0));
  EXPECT_TRUE(v.contains(4.0));
  EXPECT_FALSE(v.contains(4.5));
  EXPECT_TRUE(v.contains(Interval(2.0, 3.0)));
  EXPECT_FALSE(v.contains(Interval(2.0, 5.0)));
  EXPECT_TRUE(v.intersects(Interval(4.0, 9.0)));   // shared endpoint
  EXPECT_FALSE(v.intersects(Interval(4.5, 9.0)));
  EXPECT_FALSE(v.intersects(Interval::empty_set()));
}

TEST(IntervalBasics, IntersectAndJoin) {
  const Interval a(1.0, 4.0), b(3.0, 9.0);
  const Interval cap = Interval::intersect(a, b);
  EXPECT_EQ(cap.lo(), 3.0);
  EXPECT_EQ(cap.hi(), 4.0);
  EXPECT_TRUE(Interval::intersect(a, Interval(5.0, 6.0)).empty());
  const Interval cup = Interval::join(a, b);
  EXPECT_EQ(cup.lo(), 1.0);
  EXPECT_EQ(cup.hi(), 9.0);
}

TEST(IntervalBasics, EmptySetPropagatesThroughEverything) {
  const Interval e = Interval::empty_set();
  const Interval v(1.0, 2.0);
  EXPECT_TRUE((e + v).empty());
  EXPECT_TRUE((v - e).empty());
  EXPECT_TRUE((e * v).empty());
  EXPECT_TRUE((v / e).empty());
  EXPECT_TRUE((-e).empty());
  EXPECT_TRUE(sqrt(e).empty());
  EXPECT_TRUE(atan(e).empty());
  EXPECT_TRUE(min(e, v).empty());
  EXPECT_TRUE(max(v, e).empty());
  EXPECT_FALSE(e.contains(0.0));
}

// --- outward rounding ------------------------------------------------------

TEST(IntervalRounding, SumBoundsAreWidenedOutward) {
  // 0.1 + 0.2 is the canonical inexact sum; the enclosure must strictly
  // contain the rounded double result on both sides.
  const Interval s = Interval(0.1) + Interval(0.2);
  EXPECT_LT(s.lo(), 0.1 + 0.2);
  EXPECT_GT(s.hi(), 0.1 + 0.2);
  EXPECT_TRUE(s.contains(0.1 + 0.2));
}

TEST(IntervalRounding, ExactZeroIsNotWidened) {
  const Interval z = Interval(1.0) - Interval(1.0);
  EXPECT_EQ(z.lo(), 0.0);
  EXPECT_EQ(z.hi(), 0.0);
}

TEST(IntervalRounding, InfiniteBoundsStayInfinite) {
  const Interval v(1.0, kInf);
  const Interval s = v + Interval(1.0);
  EXPECT_EQ(s.hi(), kInf);
  EXPECT_TRUE(std::isfinite(s.lo()));
}

// --- multiplication --------------------------------------------------------

TEST(IntervalMul, SignCasesCoverAllCandidateProducts) {
  const Interval r = Interval(-2.0, 3.0) * Interval(-5.0, 4.0);
  // True extremes: min(-2*4, 3*-5) = -15, max(-2*-5, 3*4) = 12.
  EXPECT_LE(r.lo(), -15.0);
  EXPECT_GE(r.hi(), 12.0);
  EXPECT_GE(r.lo(), -15.0 - 1e-9);
  EXPECT_LE(r.hi(), 12.0 + 1e-9);
}

TEST(IntervalMul, ZeroTimesInfinityIsZeroNotNan) {
  const Interval r = Interval(0.0) * Interval(0.0, kInf);
  EXPECT_TRUE(r.contains(0.0));
  EXPECT_FALSE(std::isnan(r.lo()));
  EXPECT_FALSE(std::isnan(r.hi()));
}

// --- extended division -----------------------------------------------------

TEST(IntervalDiv, BoundedAwayFromZero) {
  const Interval r = Interval(1.0, 2.0) / Interval(4.0, 8.0);
  EXPECT_TRUE(r.contains(0.125));
  EXPECT_TRUE(r.contains(0.5));
  EXPECT_LE(r.lo(), 0.125);
  EXPECT_GE(r.hi(), 0.5);
}

TEST(IntervalDiv, ZeroPointDivisorGivesWholeLine) {
  const Interval r = Interval(1.0, 2.0) / Interval(0.0);
  EXPECT_EQ(r.lo(), -kInf);
  EXPECT_EQ(r.hi(), kInf);
}

TEST(IntervalDiv, ZeroDividendByZeroPointIsZero) {
  // The exact quotient set of {0}/{0} under the closed-hull convention
  // collapses to the point 0 (0/x == 0 for every nonzero x in any
  // neighbourhood); the implementation returns [0, 0].
  const Interval r = Interval(0.0) / Interval(0.0);
  EXPECT_TRUE(r.contains(0.0));
}

TEST(IntervalDiv, DivisorTouchingZeroFromAboveIsHalfInfinite) {
  // [1,2] / [0,4]: quotients run from 1/4 up to +inf.
  const Interval r = Interval(1.0, 2.0) / Interval(0.0, 4.0);
  EXPECT_EQ(r.hi(), kInf);
  EXPECT_LE(r.lo(), 0.25);
  EXPECT_GT(r.lo(), 0.0);
}

TEST(IntervalDiv, DivisorTouchingZeroFromBelowMirrors) {
  // [1,2] / [-4,0]: quotients run from -inf up to -1/4.
  const Interval r = Interval(1.0, 2.0) / Interval(-4.0, 0.0);
  EXPECT_EQ(r.lo(), -kInf);
  EXPECT_GE(r.hi(), -0.25 - 1e-12);
  EXPECT_LT(r.hi(), 0.0);
}

TEST(IntervalDiv, InteriorZeroDivisorGivesWholeLine) {
  const Interval r = Interval(1.0, 2.0) / Interval(-1.0, 1.0);
  EXPECT_EQ(r.lo(), -kInf);
  EXPECT_EQ(r.hi(), kInf);
}

// --- monotone extensions ---------------------------------------------------

TEST(IntervalFns, SqrtClampsNegativePart) {
  const Interval r = sqrt(Interval(-4.0, 9.0));
  EXPECT_GE(r.lo(), 0.0);
  EXPECT_GE(r.hi(), 3.0);
  EXPECT_TRUE(sqrt(Interval(-9.0, -4.0)).empty());
}

TEST(IntervalFns, AtanIsMonotone) {
  const Interval r = atan(Interval(0.0, 1.0));
  EXPECT_LE(r.lo(), 0.0);
  EXPECT_GE(r.hi(), std::atan(1.0));
  EXPECT_TRUE(r.contains(std::atan(0.5)));
}

TEST(IntervalFns, AbsFoldsSignCases) {
  const Interval r = abs(Interval(-3.0, 2.0));
  EXPECT_EQ(r.lo(), 0.0);
  EXPECT_GE(r.hi(), 3.0);
}

TEST(IntervalFns, MinMaxArePointwise) {
  const Interval a(1.0, 5.0), b(3.0, 4.0);
  const Interval lo = min(a, b);
  EXPECT_EQ(lo.lo(), 1.0);
  EXPECT_EQ(lo.hi(), 4.0);
  const Interval hi = max(a, b);
  EXPECT_EQ(hi.lo(), 3.0);
  EXPECT_EQ(hi.hi(), 5.0);
}

TEST(IntervalFns, DoubleOverloadsForwardToStd) {
  // The unqualified-call trick of the prover: util::sqrt(double) etc.
  // must agree with std.
  EXPECT_EQ(sqrt(4.0), 2.0);
  EXPECT_EQ(atan(1.0), std::atan(1.0));
  EXPECT_EQ(abs(-2.5), 2.5);
  EXPECT_EQ(min(1.0, 2.0), 1.0);
  EXPECT_EQ(max(1.0, 2.0), 2.0);
}

// --- the containment property ----------------------------------------------

/// Randomized fundamental-theorem check: for random boxes [a] x [b] and
/// random points inside them, every arithmetic primitive's interval
/// result contains its double result. This single property is what makes
/// the prover's interval evaluation a sound outer bound.
TEST(IntervalProperty, PrimitivesContainPointResults) {
  Rng rng(20260808);
  for (int trial = 0; trial < 4000; ++trial) {
    const double a1 = rng.uniform(-10.0, 10.0);
    const double a2 = rng.uniform(-10.0, 10.0);
    const double b1 = rng.uniform(-10.0, 10.0);
    const double b2 = rng.uniform(-10.0, 10.0);
    const Interval A = Interval::hull(a1, a2);
    const Interval B = Interval::hull(b1, b2);
    const double x = rng.uniform(A.lo(), A.hi());
    const double y = rng.uniform(B.lo(), B.hi());

    EXPECT_TRUE((A + B).contains(x + y));
    EXPECT_TRUE((A - B).contains(x - y));
    EXPECT_TRUE((A * B).contains(x * y));
    if (y != 0.0) {
      EXPECT_TRUE((A / B).contains(x / y));
    }
    if (x >= 0.0) {
      EXPECT_TRUE(sqrt(A).contains(std::sqrt(x)));
    }
    EXPECT_TRUE(atan(A).contains(std::atan(x)));
    EXPECT_TRUE(abs(A).contains(std::fabs(x)));
    EXPECT_TRUE(min(A, B).contains(std::min(x, y)));
    EXPECT_TRUE(max(A, B).contains(std::max(x, y)));
    if (x > 0.0) {
      EXPECT_TRUE(log10(A).contains(std::log10(x)));
    }
  }
}

/// Compound-expression containment: a nontrivial rational expression in
/// three variables, evaluated both ways over random boxes.
TEST(IntervalProperty, CompoundExpressionContainsPointResults) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    const Interval A = Interval::hull(rng.uniform(0.1, 5.0),
                                      rng.uniform(0.1, 5.0));
    const Interval B = Interval::hull(rng.uniform(0.1, 5.0),
                                      rng.uniform(0.1, 5.0));
    const Interval C = Interval::hull(rng.uniform(-2.0, 2.0),
                                      rng.uniform(-2.0, 2.0));
    const double x = rng.uniform(A.lo(), A.hi());
    const double y = rng.uniform(B.lo(), B.hi());
    const double z = rng.uniform(C.lo(), C.hi());

    const Interval iv = sqrt(A * B) / (A + B) + atan(C * C) - 2.0 * C / A;
    const double pv =
        std::sqrt(x * y) / (x + y) + std::atan(z * z) - 2.0 * z / x;
    EXPECT_TRUE(iv.contains(pv))
        << "trial " << trial << ": " << pv << " not in " << iv.str();
  }
}

}  // namespace
}  // namespace ape::util
