#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/spice/devices.h"
#include "tests/test_models.h"

namespace ape::spice {
namespace {

Waveform dcv(double v) {
  Waveform w;
  w.dc = v;
  return w;
}

TEST(SpiceDc, VoltageDivider) {
  Circuit ckt("divider");
  ckt.add<VSource>("v1", ckt.node("in"), kGround, dcv(10.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("mid"), 1e3);
  ckt.add<Resistor>("r2", ckt.node("mid"), kGround, 3e3);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "mid"), 7.5, 1e-6);
  EXPECT_NEAR(source_current(ckt, sol, "v1"), -10.0 / 4e3, 1e-9);
}

TEST(SpiceDc, CurrentSourceIntoResistor) {
  Circuit ckt("isrc");
  ckt.add<ISource>("i1", kGround, ckt.node("out"), dcv(1e-3));
  ckt.add<Resistor>("r1", ckt.node("out"), kGround, 2e3);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 2.0, 1e-6);
}

TEST(SpiceDc, VcvsAmplifies) {
  Circuit ckt("vcvs");
  ckt.add<VSource>("v1", ckt.node("in"), kGround, dcv(0.25));
  ckt.add<Vcvs>("e1", ckt.node("out"), kGround, ckt.node("in"), kGround, 8.0);
  ckt.add<Resistor>("rl", ckt.node("out"), kGround, 1e3);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 2.0, 1e-6);
}

TEST(SpiceDc, VccsIntoLoad) {
  Circuit ckt("vccs");
  ckt.add<VSource>("v1", ckt.node("in"), kGround, dcv(1.0));
  // i(out->gnd) = gm*vin into 1k: v(out) = -gm*R*vin with current direction
  ckt.add<Vccs>("g1", ckt.node("out"), kGround, ckt.node("in"), kGround, 1e-3);
  ckt.add<Resistor>("rl", ckt.node("out"), kGround, 1e3);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), -1.0, 1e-6);
}

TEST(SpiceDc, CccsMirrorsCurrent) {
  Circuit ckt("cccs");
  ckt.add<VSource>("vs", ckt.node("a"), kGround, dcv(5.0));
  ckt.add<Resistor>("r1", ckt.node("a"), ckt.node("b"), 1e3);
  ckt.add<VSource>("vmeas", ckt.node("b"), kGround, dcv(0.0));
  // 5mA flows through vmeas; F doubles it into rl.
  ckt.add<Cccs>("f1", kGround, ckt.node("out"), &ckt.find_as<VSource>("vmeas"), 2.0);
  ckt.add<Resistor>("rl", ckt.node("out"), kGround, 100.0);
  const auto sol = dc_operating_point(ckt);
  // Branch current flows + to - through vmeas: +5 mA here.
  EXPECT_NEAR(source_current(ckt, sol, "vmeas"), 5e-3, 1e-7);
  // F injects 2 * 5 mA into "out" (p = ground), so v = 10 mA * 100 ohm.
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 1.0, 1e-5);
}

TEST(SpiceDc, DiodeForwardDrop) {
  Circuit ckt("diode");
  ckt.add<VSource>("v1", ckt.node("in"), kGround, dcv(5.0));
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("d"), 1e3);
  ckt.add<Diode>("d1", ckt.node("d"), kGround);
  const auto sol = dc_operating_point(ckt);
  const double vd = node_voltage(ckt, sol, "d");
  EXPECT_GT(vd, 0.45);
  EXPECT_LT(vd, 0.8);
}

TEST(SpiceDc, NmosCommonSourceOperatingPoint) {
  // VDD=5, Rd=10k, Vg=2V; lambda=0 so Id is the pure square law.
  auto card = test::nmos_card();
  card.lambda = 0.0;
  Circuit ckt("cs");
  const auto* m = ckt.add_model(card);
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<VSource>("vg", ckt.node("g"), kGround, dcv(2.0));
  ckt.add<Resistor>("rd", ckt.node("vdd"), ckt.node("d"), 10e3);
  ckt.add<Mosfet>("m1", ckt.node("d"), ckt.node("g"), kGround, kGround, m,
                  10e-6, 2e-6);
  const auto sol = dc_operating_point(ckt);
  const double leff = 2e-6 - 2.0 * card.ld;
  const double id = 0.5 * card.kp * (10e-6 / leff) * (2.0 - 0.8) * (2.0 - 0.8);
  EXPECT_NEAR(node_voltage(ckt, sol, "d"), 5.0 - id * 10e3, 2e-3);
  const auto& m1 = ckt.find_as<Mosfet>("m1");
  EXPECT_EQ(m1.op().region, MosRegion::Saturation);
}

TEST(SpiceDc, PmosCommonSource) {
  Circuit ckt("csp");
  const auto* m = ckt.add_model(test::pmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<VSource>("vg", ckt.node("g"), kGround, dcv(3.0));  // vgs = -2
  ckt.add<Resistor>("rd", ckt.node("d"), kGround, 10e3);
  ckt.add<Mosfet>("m1", ckt.node("d"), ckt.node("g"), ckt.node("vdd"),
                  ckt.node("vdd"), m, 30e-6, 2e-6);
  const auto sol = dc_operating_point(ckt);
  const double vd = node_voltage(ckt, sol, "d");
  EXPECT_GT(vd, 0.5);  // PMOS pulls the output high through the load
  EXPECT_LT(vd, 5.0);
}

TEST(SpiceDc, SimpleCurrentMirrorCopiesCurrent) {
  Circuit ckt("mirror");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<ISource>("iref", ckt.node("vdd"), ckt.node("ref"), dcv(100e-6));
  // Diode-connected reference device.
  ckt.add<Mosfet>("m1", ckt.node("ref"), ckt.node("ref"), kGround, kGround, m,
                  20e-6, 2e-6);
  ckt.add<Mosfet>("m2", ckt.node("out"), ckt.node("ref"), kGround, kGround, m,
                  20e-6, 2e-6);
  ckt.add<Resistor>("rl", ckt.node("vdd"), ckt.node("out"), 10e3);
  const auto sol = dc_operating_point(ckt);
  const double vout = node_voltage(ckt, sol, "out");
  const double i_out = (5.0 - vout) / 10e3;
  // Copy accuracy within a few percent (lambda mismatch between branches).
  EXPECT_NEAR(i_out, 100e-6, 8e-6);
}

TEST(SpiceDc, MirrorRatioScalesWithWidth) {
  Circuit ckt("mirror2x");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<ISource>("iref", ckt.node("vdd"), ckt.node("ref"), dcv(50e-6));
  ckt.add<Mosfet>("m1", ckt.node("ref"), ckt.node("ref"), kGround, kGround, m,
                  10e-6, 2e-6);
  ckt.add<Mosfet>("m2", ckt.node("out"), ckt.node("ref"), kGround, kGround, m,
                  20e-6, 2e-6);  // 2x width -> 2x current
  ckt.add<Resistor>("rl", ckt.node("vdd"), ckt.node("out"), 10e3);
  const auto sol = dc_operating_point(ckt);
  const double i_out = (5.0 - node_voltage(ckt, sol, "out")) / 10e3;
  EXPECT_NEAR(i_out, 100e-6, 10e-6);
}

TEST(SpiceDc, SourceCurrentMatchesLoad) {
  Circuit ckt("kcl");
  ckt.add<VSource>("v1", ckt.node("a"), kGround, dcv(1.0));
  ckt.add<Resistor>("r1", ckt.node("a"), kGround, 50.0);
  ckt.add<Resistor>("r2", ckt.node("a"), kGround, 50.0);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(source_current(ckt, sol, "v1"), -(1.0 / 50.0 + 1.0 / 50.0), 1e-9);
}

TEST(SpiceDc, ThrowsForUnknownNode) {
  Circuit ckt("x");
  ckt.add<VSource>("v1", ckt.node("a"), kGround, dcv(1.0));
  ckt.add<Resistor>("r1", ckt.node("a"), kGround, 50.0);
  const auto sol = dc_operating_point(ckt);
  EXPECT_THROW(node_voltage(ckt, sol, "nope"), LookupError);
}

TEST(SpiceDc, EditAfterFinalizeThrows) {
  Circuit ckt("frozen");
  ckt.add<VSource>("v1", ckt.node("a"), kGround, dcv(1.0));
  ckt.add<Resistor>("r1", ckt.node("a"), kGround, 50.0);
  (void)dc_operating_point(ckt);
  EXPECT_THROW(ckt.add<Resistor>("r2", ckt.node("a"), kGround, 50.0), Error);
}

}  // namespace
}  // namespace ape::spice
