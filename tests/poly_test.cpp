#include "src/util/poly.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace ape {
namespace {

void expect_contains_root(const std::vector<Complex>& roots, Complex want,
                          double tol = 1e-6) {
  const bool found = std::any_of(roots.begin(), roots.end(), [&](Complex r) {
    return std::abs(r - want) < tol * std::max(1.0, std::abs(want));
  });
  EXPECT_TRUE(found) << "missing root " << want.real() << "+" << want.imag() << "i";
}

TEST(Poly, EvalHorner) {
  // 1 + 2x + 3x^2 at x = 2 -> 17
  const std::vector<Complex> c{{1, 0}, {2, 0}, {3, 0}};
  EXPECT_NEAR(poly_eval(c, {2.0, 0.0}).real(), 17.0, 1e-12);
}

TEST(Poly, LinearRoot) {
  // 2 + x = 0 -> x = -2
  const auto roots = poly_roots(std::vector<double>{2.0, 1.0});
  ASSERT_EQ(roots.size(), 1u);
  expect_contains_root(roots, {-2.0, 0.0});
}

TEST(Poly, QuadraticRealRoots) {
  // (x - 1)(x - 3) = 3 - 4x + x^2
  const auto roots = poly_roots(std::vector<double>{3.0, -4.0, 1.0});
  ASSERT_EQ(roots.size(), 2u);
  expect_contains_root(roots, {1.0, 0.0});
  expect_contains_root(roots, {3.0, 0.0});
}

TEST(Poly, ComplexConjugateRoots) {
  // x^2 + 1 -> +/- i
  const auto roots = poly_roots(std::vector<double>{1.0, 0.0, 1.0});
  expect_contains_root(roots, {0.0, 1.0});
  expect_contains_root(roots, {0.0, -1.0});
}

TEST(Poly, WidelySpreadRoots) {
  // Pole spreads like an opamp: (x + 1e2)(x + 1e6)
  // = 1e8 + (1e2 + 1e6) x + x^2
  const auto roots = poly_roots(std::vector<double>{1e8, 1e2 + 1e6, 1.0});
  expect_contains_root(roots, {-1e2, 0.0}, 1e-3);
  expect_contains_root(roots, {-1e6, 0.0}, 1e-3);
}

TEST(Poly, TrimsLeadingZeroCoefficients) {
  // 6 - 5x + x^2 + 0*x^3 -> roots 2 and 3
  const auto roots = poly_roots(std::vector<double>{6.0, -5.0, 1.0, 0.0});
  ASSERT_EQ(roots.size(), 2u);
  expect_contains_root(roots, {2.0, 0.0});
  expect_contains_root(roots, {3.0, 0.0});
}

TEST(Poly, ThrowsOnConstant) {
  EXPECT_THROW(poly_roots(std::vector<double>{1.0}), NumericError);
  EXPECT_THROW(poly_roots(std::vector<double>{0.0, 0.0}), NumericError);
}

TEST(Pade, FirstOrderMatchesSinglePole) {
  // H(s) = 1/(1 + s tau): moments m_k = (-tau)^k.
  const double tau = 1e-3;
  const std::vector<double> m{1.0, -tau};
  const auto b = pade_denominator(m, 1);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_NEAR(b[0], tau, 1e-12);
}

TEST(Pade, SecondOrderRecoversTwoPoles) {
  // H(s) = 1/((1 + s/p1)(1 + s/p2)), p1 = 10, p2 = 1000.
  // Moments of 1/D(s): D = 1 + b1 s + b2 s^2 with
  // b1 = 1/p1 + 1/p2, b2 = 1/(p1 p2). Series 1/D = 1 - b1 s + (b1^2-b2)s^2 ...
  const double p1 = 10.0, p2 = 1000.0;
  const double b1 = 1.0 / p1 + 1.0 / p2;
  const double b2 = 1.0 / (p1 * p2);
  const double m0 = 1.0;
  const double m1 = -b1;
  const double m2 = b1 * b1 - b2;
  const double m3 = -(b1 * b1 * b1 - 2.0 * b1 * b2);
  const auto b = pade_denominator({m0, m1, m2, m3}, 2);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_NEAR(b[0], b1, 1e-9);
  EXPECT_NEAR(b[1], b2, 1e-12);
  // Roots of D(s) are the (negated) poles.
  const auto roots = poly_roots(std::vector<double>{1.0, b[0], b[1]});
  expect_contains_root(roots, {-p1, 0.0}, 1e-6);
  expect_contains_root(roots, {-p2, 0.0}, 1e-6);
}

TEST(Pade, ThrowsWithoutEnoughMoments) {
  EXPECT_THROW(pade_denominator({1.0, 2.0}, 2), NumericError);
}

}  // namespace
}  // namespace ape
