#include "src/synth/sizing.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/opamp.h"
#include "src/util/error.h"

namespace ape::synth {
namespace {

using est::OpAmpDesign;
using est::OpAmpEstimator;
using est::OpAmpSpec;
using est::Process;

OpAmpSpec basic_spec() {
  OpAmpSpec s;
  s.gain = 200.0;
  s.ugf_hz = 5e6;
  s.ibias = 10e-6;
  s.cload = 10e-12;
  return s;
}

TEST(OpAmpVars, PackUnpackRoundTrip) {
  OpAmpVars v;
  v.w1 = 11e-6;
  v.l1 = 3e-6;
  v.w3 = 7e-6;
  v.l3 = 4e-6;
  v.w5 = 9e-6;
  v.l5 = 6e-6;
  v.w6 = 40e-6;
  v.l6 = 2.5e-6;
  v.w7 = 15e-6;
  v.l7 = 3.3e-6;
  v.w8 = 5e-6;
  v.l8 = 4.8e-6;
  v.cc = 3e-12;
  const auto x = v.pack();
  EXPECT_EQ(x.size(), 13u);
  const OpAmpVars u = OpAmpVars::unpack(x, false);
  EXPECT_EQ(u.pack(), x);

  OpAmpVars vb = v;
  vb.w9 = 20e-6;
  vb.w10 = 25e-6;
  const auto xb = vb.pack();
  EXPECT_EQ(xb.size(), 15u);
  EXPECT_EQ(OpAmpVars::unpack(xb, true).pack(), xb);
}

TEST(OpAmpVars, UnpackRejectsWrongSize) {
  EXPECT_THROW(OpAmpVars::unpack({1.0, 2.0}, false), SpecError);
  EXPECT_THROW(OpAmpVars::unpack(std::vector<double>(13, 1.0), true), SpecError);
}

TEST(OpAmpVars, NamesMatchVectorLayout) {
  EXPECT_EQ(OpAmpVars::names(false).size(), 13u);
  EXPECT_EQ(OpAmpVars::names(true).size(), 15u);
  EXPECT_EQ(OpAmpVars::names(true).back(), "w10");
}

TEST(Sizing, ApeSeedEvaluatesFunctional) {
  // The synthesis evaluator must agree that APE's designs work - this is
  // the contract Table 4 rests on.
  const Process proc = Process::default_1u2();
  const OpAmpDesign d = OpAmpEstimator(proc).estimate(basic_spec());
  const OpAmpVars v = vars_from_design(d);
  const OpAmpEval e = evaluate_opamp_vars(proc, v, 10e-6, 10e-12);
  ASSERT_TRUE(e.functional);
  EXPECT_NEAR(e.gain, d.perf.gain, d.perf.gain * 0.15);
  EXPECT_NEAR(e.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.1);
  EXPECT_NEAR(e.dc_power, d.perf.dc_power, d.perf.dc_power * 0.1);
}

TEST(Sizing, WilsonSeedMapsOntoMirrorTemplate) {
  const Process proc = Process::default_1u2();
  OpAmpSpec s = basic_spec();
  s.source = est::CurrentSourceKind::Wilson;
  s.buffer = true;
  s.zout = 2e3;
  const OpAmpDesign d = OpAmpEstimator(proc).estimate(s);
  const OpAmpVars v = vars_from_design(d);
  const OpAmpEval e = evaluate_opamp_vars(proc, v, s.ibias, s.cload);
  EXPECT_TRUE(e.functional);
  EXPECT_NEAR(e.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.25);
}

TEST(Sizing, BrokenGeometryIsNonFunctionalNotThrowing) {
  // A starved second stage sticks the output at a rail: the evaluator
  // must report it gracefully (the annealer relies on this).
  const Process proc = Process::default_1u2();
  OpAmpVars v;  // defaults
  v.w6 = 2e-6;
  v.w7 = 500e-6;  // sink dwarfs the PMOS: output stuck low
  const OpAmpEval e = evaluate_opamp_vars(proc, v, 10e-6, 10e-12);
  EXPECT_FALSE(e.functional);
  EXPECT_GT(e.imbalance, 0.0);
}

TEST(Sizing, CostPrefersFeasibleOverBroken) {
  const Process proc = Process::default_1u2();
  const OpAmpSpec spec = basic_spec();
  const OpAmpVars good = vars_from_design(OpAmpEstimator(proc).estimate(spec));
  OpAmpVars bad = good;
  bad.w7 = 800e-6;
  const double c_good =
      opamp_cost(evaluate_opamp_vars(proc, good, spec.ibias, spec.cload), spec);
  const double c_bad =
      opamp_cost(evaluate_opamp_vars(proc, bad, spec.ibias, spec.cload), spec);
  EXPECT_LT(c_good, 10.0);
  EXPECT_GT(c_bad, 100.0);
}

TEST(Sizing, CostPenalizesConstraintViolations) {
  const Process proc = Process::default_1u2();
  const OpAmpSpec spec = basic_spec();
  const OpAmpVars v = vars_from_design(OpAmpEstimator(proc).estimate(spec));
  const OpAmpEval e = evaluate_opamp_vars(proc, v, spec.ibias, spec.cload);
  OpAmpSpec harder = spec;
  harder.ugf_hz *= 4.0;  // now badly under target
  EXPECT_GT(opamp_cost(e, harder), opamp_cost(e, spec) + 1.0);
}

TEST(Sizing, BlindBoundsCoverSeed) {
  const Process proc = Process::default_1u2();
  const OpAmpVars v = vars_from_design(OpAmpEstimator(proc).estimate(basic_spec()));
  const auto x = v.pack();
  const auto b = blind_bounds(proc, false);
  ASSERT_EQ(b.size(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_GE(x[i], b[i].first) << OpAmpVars::names(false)[i];
    EXPECT_LE(x[i], b[i].second) << OpAmpVars::names(false)[i];
  }
}

TEST(Sizing, SeededBoundsBracketTheSeed) {
  const Process proc = Process::default_1u2();
  const OpAmpVars v = vars_from_design(OpAmpEstimator(proc).estimate(basic_spec()));
  const auto seed = v.pack();
  const auto b = seeded_bounds(seed, 0.2, proc, false);
  for (size_t i = 0; i < seed.size(); ++i) {
    EXPECT_LE(b[i].first, seed[i]);
    EXPECT_GE(b[i].second, seed[i]);
    EXPECT_LE(b[i].second / b[i].first, 1.21 / 0.79);
  }
}

TEST(Sizing, DesignFromVarsRoundTripsThroughVars) {
  const Process proc = Process::default_1u2();
  const OpAmpSpec spec = basic_spec();
  const OpAmpVars v = vars_from_design(OpAmpEstimator(proc).estimate(spec));
  const OpAmpDesign d2 = design_from_vars(proc, v, spec);
  const OpAmpVars v2 = vars_from_design(d2);
  const auto a = v.pack();
  const auto b = v2.pack();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], std::fabs(a[i]) * 1e-9);
  }
}

TEST(Sizing, VarsFromNonOpAmpDesignThrows) {
  OpAmpDesign empty;
  EXPECT_THROW(vars_from_design(empty), SpecError);
}

}  // namespace
}  // namespace ape::synth
