#include "src/synth/awe.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>

#include "src/estimator/opamp.h"
#include "src/estimator/verify.h"
#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/kernel.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape::synth {
namespace {

using spice::Circuit;

TEST(Awe, SinglePoleRcIsExactAtOrderOne) {
  const char* net = R"(rc
Vin in 0 AC 1
R1 in out 1k
C1 out 0 1u
)";
  Circuit ckt = spice::parse_netlist(net);
  (void)spice::dc_operating_point(ckt);
  const AweModel m = awe_reduce(ckt, "out", 1);
  EXPECT_NEAR(m.dc_gain(), 1.0, 1e-6);
  ASSERT_EQ(m.poles().size(), 1u);
  // Pole at -1/RC = -1000 rad/s.
  EXPECT_NEAR(m.poles()[0].real(), -1000.0, 1.0);
  EXPECT_NEAR(m.f_3db(), 1000.0 / (2.0 * M_PI), 0.5);
}

TEST(Awe, TwoPoleLadderRecoversBothPoles) {
  // Widely split poles via two RC sections buffered by an ideal VCVS.
  const char* net = R"(two pole
Vin in 0 AC 1
R1 in a 1k
C1 a 0 1u
E1 b 0 a 0 1
R2 b out 1k
C2 out 0 1n
)";
  Circuit ckt = spice::parse_netlist(net);
  (void)spice::dc_operating_point(ckt);
  const AweModel m = awe_reduce(ckt, "out", 2);
  EXPECT_NEAR(m.dc_gain(), 1.0, 1e-6);
  ASSERT_EQ(m.poles().size(), 2u);
  double p_slow = 0.0, p_fast = 0.0;
  for (const auto& p : m.poles()) {
    if (std::abs(p) < 1e4) p_slow = p.real();
    if (std::abs(p) > 1e5) p_fast = p.real();
  }
  EXPECT_NEAR(p_slow, -1000.0, 20.0);
  EXPECT_NEAR(p_fast, -1e6, 2e4);
}

TEST(Awe, ModelEvalMatchesAcSweep) {
  const char* net = R"(rc eval
Vin in 0 AC 1
R1 in out 10k
C1 out 0 100n
)";
  Circuit ckt = spice::parse_netlist(net);
  (void)spice::dc_operating_point(ckt);
  // q = 1 is the true order of this circuit: a higher q would make the
  // moment (Hankel) matrix singular.
  const AweModel m = awe_reduce(ckt, "out", 1);
  const auto ac = spice::ac_analysis(ckt, 1.0, 1e5, 20);
  const spice::Bode bode(ac, ckt.find_node("out"));
  for (size_t k = 0; k < bode.size(); k += 10) {
    EXPECT_NEAR(std::abs(m.eval(bode.freq(k))), bode.mag(k),
                std::max(bode.mag(k) * 0.01, 1e-6));
  }
}

TEST(Awe, OpampOpenLoopMatchesFullSweep) {
  // The ablation bench's scenario as a regression test: a sized opamp's
  // open-loop gain and UGF from a q=3 AWE model vs the AC sweep.
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  const est::OpAmpDesign d = est::OpAmpEstimator(proc).estimate(spec);
  const est::Testbench tb = d.testbench(proc, est::OpAmpTb::OpenLoop);
  Circuit ckt = spice::parse_netlist(tb.netlist);
  (void)spice::dc_operating_point(ckt);

  std::vector<std::string> bias_trick;
  for (const auto& dev : ckt.devices()) {
    if (const auto* l = dynamic_cast<const spice::Inductor*>(dev.get())) {
      if (l->inductance() >= 1.0) bias_trick.push_back(l->name());
    }
    if (const auto* c = dynamic_cast<const spice::Capacitor*>(dev.get())) {
      if (c->capacitance() >= 0.1) bias_trick.push_back(c->name());
    }
  }
  const AweModel m = awe_reduce(ckt, "out", 2, bias_trick, {{"vm", 1.0}});

  const auto ac = spice::ac_analysis(ckt, 1.0, 1e9, 20);
  const spice::Bode bode(ac, ckt.find_node("out"));
  EXPECT_NEAR(std::fabs(m.dc_gain()), bode.dc_gain(), bode.dc_gain() * 0.01);
  ASSERT_TRUE(bode.unity_gain_freq().has_value());
  EXPECT_NEAR(m.unity_gain_freq(), *bode.unity_gain_freq(),
              *bode.unity_gain_freq() * 0.05);
  // The dominant (slowest) pole sits in the left half plane; higher-order
  // AWE fits can produce spurious far-away RHP poles with tiny residues,
  // a known artifact of moment matching.
  double min_mag = 1e300;
  double dom_real = 0.0;
  for (const auto& p : m.poles()) {
    if (std::abs(p) < min_mag) {
      min_mag = std::abs(p);
      dom_real = p.real();
    }
  }
  EXPECT_LT(dom_real, 0.0);
}

TEST(Awe, RejectsBadArguments) {
  const char* net = R"(rc
Vin in 0 AC 1
R1 in out 1k
C1 out 0 1u
)";
  Circuit ckt = spice::parse_netlist(net);
  (void)spice::dc_operating_point(ckt);
  EXPECT_THROW(awe_reduce(ckt, "out", 0), SpecError);
  EXPECT_THROW(awe_reduce(ckt, "out", 99), SpecError);
  EXPECT_THROW(awe_reduce(ckt, "0", 2), SpecError);
  EXPECT_THROW(awe_reduce(ckt, "nonexistent", 2), LookupError);
}

TEST(Awe, UnityCrossingAbsentReturnsZero) {
  // A passive attenuator never crosses |H| = 1 from above... it starts at
  // 0.5 and falls: the crossing finder must return 0, not garbage.
  const char* net = R"(atten
Vin in 0 AC 1
R1 in out 1k
R2 out 0 1k
C1 out 0 1u
)";
  Circuit ckt = spice::parse_netlist(net);
  (void)spice::dc_operating_point(ckt);
  const AweModel m = awe_reduce(ckt, "out", 1);
  EXPECT_NEAR(m.dc_gain(), 0.5, 1e-6);
  EXPECT_EQ(m.unity_gain_freq(), 0.0);
}

TEST(Awe, SparseMomentPathMatchesDense) {
  // A 40-section RC interconnect ladder is exactly the system the sparse
  // moment path exists for: forced through both factorizations, the
  // reduced models must agree on poles, DC gain, and the transfer
  // function over the band of interest.
  std::string net = "ladder\nVin n0 0 AC 1\n";
  for (int i = 0; i < 40; ++i) {
    net += "R" + std::to_string(i) + " n" + std::to_string(i) + " n" +
           std::to_string(i + 1) + " 100\n";
    net += "C" + std::to_string(i) + " n" + std::to_string(i + 1) +
           " 0 1p\n";
  }
  const spice::KernelPolicy force_dense{spice::KernelPath::ForceDense};
  const spice::KernelPolicy force_sparse{spice::KernelPath::ForceSparse};
  AweModel dense;
  {
    Circuit ckt = spice::parse_netlist(net);
    (void)spice::dc_operating_point(ckt);
    spice::ScopedKernelPolicy guard(force_dense);
    dense = awe_reduce(ckt, "n40", 3);
  }
  AweModel sparse;
  {
    Circuit ckt = spice::parse_netlist(net);
    (void)spice::dc_operating_point(ckt);
    spice::ScopedKernelPolicy guard(force_sparse);
    sparse = awe_reduce(ckt, "n40", 3);
  }
  EXPECT_NEAR(sparse.dc_gain(), dense.dc_gain(), 1e-9 * std::abs(dense.dc_gain()));
  ASSERT_EQ(sparse.poles().size(), dense.poles().size());
  for (double f = 1e3; f <= 1e9; f *= 10.0) {
    const std::complex<double> hd = dense.eval(f);
    const std::complex<double> hs = sparse.eval(f);
    EXPECT_LE(std::abs(hd - hs), 1e-12 + 1e-6 * std::abs(hd)) << "f=" << f;
  }
}

}  // namespace
}  // namespace ape::synth
