/// Tests of the batch-estimation runtime (DESIGN.md section 7): the
/// thread pool, the memoizing estimate cache, batch determinism across
/// thread counts, per-job error isolation, and parallel multi-start
/// synthesis. This suite is also the documented ThreadSanitizer target:
/// `cmake -B build-tsan -DAPE_TSAN=ON && ctest -R Runtime`.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "src/runtime/batch.h"
#include "src/runtime/cache.h"
#include "src/runtime/executor.h"
#include "src/runtime/supervisor.h"
#include "src/spice/fault.h"
#include "src/synth/astrx.h"
#include "src/util/error.h"

namespace ape::runtime {
namespace {

using est::OpAmpSpec;
using est::Process;

const Process& proc() {
  static const Process p = Process::default_1u2();
  return p;
}

// ---------------------------------------------------------------------------
// Executor

TEST(RuntimeExecutor, RunsAllJobsAndReturnsValues) {
  Executor pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[size_t(i)].get(), i * i);
}

TEST(RuntimeExecutor, ExceptionsLandInTheFuture) {
  Executor pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw SpecError("job exploded"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), SpecError);
}

TEST(RuntimeExecutor, DestructorDrainsSubmittedJobs) {
  std::atomic<int> ran{0};
  {
    Executor pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~Executor joins after the queue drains
  EXPECT_EQ(ran.load(), 50);
}

// ---------------------------------------------------------------------------
// MemoCache / EstimateCache

TEST(RuntimeCache, ComputesOnceAndCountsHits) {
  MemoCache<int> cache;
  std::atomic<int> computes{0};
  for (int i = 0; i < 5; ++i) {
    auto v = cache.get_or_compute("k", [&] {
      computes.fetch_add(1);
      return 42;
    });
    EXPECT_EQ(*v, 42);
  }
  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 4);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.8);
}

TEST(RuntimeCache, ConcurrentRequestsOfOneKeyFillOnce) {
  MemoCache<int> cache;
  std::atomic<int> computes{0};
  Executor pool(8);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&] {
      return *cache.get_or_compute("shared", [&] {
        computes.fetch_add(1);
        return 99;
      });
    }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), 99);
  EXPECT_EQ(computes.load(), 1);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 63);
}

TEST(RuntimeCache, ErrorsAreMemoizedAndRethrown) {
  MemoCache<int> cache;
  std::atomic<int> computes{0};
  auto boom = [&]() -> int {
    computes.fetch_add(1);
    throw SpecError("infeasible");  // Permanent: stays negative-cached
  };
  EXPECT_THROW(cache.get_or_compute("bad", boom), SpecError);
  EXPECT_THROW(cache.get_or_compute("bad", boom), SpecError);
  EXPECT_EQ(computes.load(), 1);  // the failure itself is cached
}

TEST(RuntimeCache, TransientFillFailureReleasesTheSlot) {
  // Regression: an injected transient fault on the *first* fill must not
  // poison the key — the fill slot is released and a retry recomputes.
  // (Before the supervised runtime this negative-cached like a permanent
  // failure, so one transient fault starved every later retry.)
  MemoCache<int> cache;
  int computes = 0;
  auto flaky = [&]() -> int {
    if (++computes == 1) throw NumericError("injected transient fault");
    return 7;
  };
  EXPECT_THROW(cache.get_or_compute("k", flaky), NumericError);
  EXPECT_EQ(cache.size(), 0u);  // the failed entry is gone from the map
  EXPECT_EQ(*cache.get_or_compute("k", flaky), 7);
  EXPECT_EQ(computes, 2);
  // The healthy value is now memoized like any other.
  EXPECT_EQ(*cache.get_or_compute("k", flaky), 7);
  EXPECT_EQ(computes, 2);
}

TEST(RuntimeCache, LruBoundEvictsOldestCompletedEntry) {
  MemoCache<int> cache(2);
  int computes = 0;
  auto compute = [&] { return ++computes; };
  cache.get_or_compute("a", compute);
  cache.get_or_compute("b", compute);
  cache.get_or_compute("c", compute);  // bound 2 -> "a" (LRU) evicted
  auto s = cache.stats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  // "b" is still resident; touching it makes "c" the LRU...
  EXPECT_EQ(computes, 3);
  cache.get_or_compute("b", compute);
  EXPECT_EQ(computes, 3);  // hit
  cache.get_or_compute("d", compute);  // ...so "d" evicts "c", not "b"
  cache.get_or_compute("b", compute);
  EXPECT_EQ(computes, 4);  // "b" survived both evictions
  // "a" was evicted: requesting it recomputes.
  cache.get_or_compute("a", compute);
  EXPECT_EQ(computes, 5);
}

TEST(RuntimeCache, EvictedValueSurvivesThroughHeldSharedPtr) {
  MemoCache<int> cache(1);
  auto held = cache.get_or_compute("old", [] { return 11; });
  cache.get_or_compute("new", [] { return 22; });  // evicts "old" from the map
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(*held, 11);  // the map forgot it; the holder did not
}

TEST(RuntimeCache, InFlightFillIsNeverEvicted) {
  // A capacity-1 cache whose first fill *itself* inserts two more keys:
  // while "outer" is mid-fill it must be skipped by the eviction walk
  // (waiters block on its fill mutex), so the completed inner entries
  // are the only eviction candidates.
  MemoCache<int> cache(1);
  auto outer = cache.get_or_compute("outer", [&] {
    cache.get_or_compute("inner1", [] { return 1; });
    cache.get_or_compute("inner2", [] { return 2; });  // evicts inner1
    return 3;
  });
  EXPECT_EQ(*outer, 3);
  const auto s = cache.stats();
  EXPECT_GE(s.evictions, 2);  // inner1 then inner2 (outer's finish trims)
  EXPECT_EQ(s.entries, 1);
  // The survivor is "outer" itself — the in-flight entry the walk skipped.
  int computes = 0;
  EXPECT_EQ(*cache.get_or_compute("outer", [&] { return ++computes; }), 3);
  EXPECT_EQ(computes, 0);
}

TEST(RuntimeCache, SetCapacityTrimsImmediately) {
  EstimateCache cache;  // unbounded
  OpAmpSpec s;
  s.gain = 150.0;
  s.ugf_hz = 3e6;
  for (int i = 0; i < 4; ++i) {
    OpAmpSpec si = s;
    si.gain += double(i);
    cache.opamp(proc(), si);
  }
  EXPECT_EQ(cache.stats().entries, 4);
  EXPECT_EQ(cache.stats().evictions, 0);
  cache.set_capacity_per_level(2);
  auto cs = cache.stats();
  EXPECT_EQ(cs.entries, 2);
  EXPECT_EQ(cs.evictions, 2);
  // The two most recently used (gain+2, gain+3) survived.
  OpAmpSpec recent = s;
  recent.gain += 3.0;
  cache.opamp(proc(), recent);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(RuntimeCache, BoundedConcurrentChurnStaysWithinCapacity) {
  // TSan-relevant: concurrent fills + evictions on a small bound. The
  // bound only holds for *completed* entries, so the final occupancy may
  // exceed capacity transiently mid-run but must settle within it.
  MemoCache<int> cache(4);
  Executor pool(8);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 256; ++i) {
    futures.push_back(pool.submit([&cache, i] {
      return *cache.get_or_compute("k" + std::to_string(i % 16),
                                   [i] { return i; });
    }));
  }
  for (auto& f : futures) f.get();
  const auto s = cache.stats();
  EXPECT_LE(s.entries, 4);
  EXPECT_EQ(s.hits + s.misses, 256);
  EXPECT_GE(s.evictions, s.misses - 4);  // every excess fill was evicted
}

TEST(RuntimeCache, EstimateCacheKeysSeparateSpecs) {
  EstimateCache cache;
  OpAmpSpec a;
  a.gain = 150.0;
  a.ugf_hz = 3e6;
  a.ibias = 10e-6;
  OpAmpSpec b = a;
  b.gain = 151.0;  // one field differs -> distinct key
  auto da1 = cache.opamp(proc(), a);
  auto da2 = cache.opamp(proc(), a);
  auto db = cache.opamp(proc(), b);
  EXPECT_EQ(da1.get(), da2.get());  // same shared entry
  EXPECT_NE(da1.get(), db.get());
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(RuntimeCache, KeyIsContentDerived) {
  OpAmpSpec a;
  const std::string k1 = cache_key(proc(), a);
  const std::string k2 = cache_key(proc(), a);
  EXPECT_EQ(k1, k2);
  Process p2 = proc();
  p2.nmos.vto += 1e-12;  // tiny model-card change -> different process
  EXPECT_NE(cache_key(p2, a), k1);
  OpAmpSpec b = a;
  b.cload *= 1.0 + 1e-15;
  EXPECT_NE(cache_key(proc(), b), k1);
}

// ---------------------------------------------------------------------------
// Batch determinism (the headline contract): a 32-spec opamp batch gives
// bit-identical designs and costs at 1 thread and at 8 threads.

std::vector<OpAmpSpec> batch_specs(size_t n) {
  std::vector<OpAmpSpec> specs;
  for (size_t i = 0; i < n; ++i) {
    OpAmpSpec s;
    s.gain = 120.0 + 10.0 * double(i % 8);
    s.ugf_hz = 2e6 + 0.5e6 * double(i % 4);
    s.ibias = 10e-6;
    s.cload = 10e-12;
    specs.push_back(s);
  }
  return specs;
}

BatchOptions fast_synth_options() {
  BatchOptions o;
  o.seed = 2026;
  o.synth.use_ape_seed = true;
  o.synth.anneal.iterations = 120;  // enough to move, cheap enough to batch
  return o;
}

/// Everything deterministic about an outcome, flattened for comparison.
std::vector<double> fingerprint(const synth::SynthesisOutcome& r) {
  std::vector<double> f{r.cost, double(r.functional), double(r.meets_spec),
                        double(r.skipped_candidates), double(r.evaluations),
                        double(r.restarts_run), double(r.best_restart),
                        r.design.perf.gain, r.design.perf.ugf_hz,
                        r.design.perf.gate_area, r.design.perf.cc};
  for (const auto& t : r.design.transistors) {
    f.push_back(t.w);
    f.push_back(t.l);
  }
  return f;
}

TEST(RuntimeBatch, OpAmpBatchBitIdenticalAcrossThreadCounts) {
  const auto specs = batch_specs(32);
  EstimateCache cache1, cache8;

  BatchOptions serial = fast_synth_options();
  serial.threads = 1;
  serial.cache = &cache1;
  const auto r1 = run_opamp_batch(proc(), specs, serial);

  BatchOptions pooled = fast_synth_options();
  pooled.threads = 8;
  pooled.cache = &cache8;
  const auto r8 = run_opamp_batch(proc(), specs, pooled);

  ASSERT_EQ(r1.jobs.size(), specs.size());
  ASSERT_EQ(r8.jobs.size(), specs.size());
  EXPECT_EQ(r1.stats.threads, 1);
  EXPECT_EQ(r8.stats.threads, 8);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(r1.jobs[i].ok) << r1.jobs[i].error;
    ASSERT_TRUE(r8.jobs[i].ok) << r8.jobs[i].error;
    EXPECT_EQ(r1.jobs[i].index, i);
    const auto f1 = fingerprint(r1.jobs[i].outcome);
    const auto f8 = fingerprint(r8.jobs[i].outcome);
    ASSERT_EQ(f1.size(), f8.size());
    for (size_t k = 0; k < f1.size(); ++k) {
      // Bit-identical, not approximately equal.
      EXPECT_EQ(f1[k], f8[k]) << "job " << i << " field " << k;
    }
  }
  // Same cache traffic either way: 32 jobs over the repeating specs.
  EXPECT_EQ(cache1.stats().hits + cache1.stats().misses, 32);
  EXPECT_EQ(cache1.stats().misses, long(cache8.stats().misses));
}

TEST(RuntimeBatch, JobsAreSeedDecorrelated) {
  // Two identical specs in one batch must anneal with different streams:
  // forcing pure blind search makes identical seeds produce identical
  // costs, so differing costs prove differing streams.
  std::vector<OpAmpSpec> specs(2, batch_specs(1)[0]);
  BatchOptions o;
  o.threads = 1;
  o.seed = 7;
  o.synth.use_ape_seed = false;
  o.synth.anneal.iterations = 200;
  const auto r = run_opamp_batch(proc(), specs, o);
  ASSERT_TRUE(r.jobs[0].ok && r.jobs[1].ok);
  EXPECT_NE(r.jobs[0].outcome.cost, r.jobs[1].outcome.cost);
}

TEST(RuntimeBatch, CacheAccountingAcrossDuplicateSpecs) {
  // 32 specs but only 8 distinct ((i % 8, i % 4) repeats every 8 jobs):
  // the cache must fill once per distinct spec and hit for every repeat.
  const auto specs = batch_specs(32);
  std::set<std::string> distinct;
  for (const auto& s : specs) distinct.insert(cache_key(proc(), s));

  EstimateCache cache;
  BatchOptions o = fast_synth_options();
  o.threads = 4;
  o.cache = &cache;
  const auto r = run_opamp_batch(proc(), specs, o);
  EXPECT_EQ(r.stats.failed, 0);
  EXPECT_EQ(size_t(cache.stats().misses), distinct.size());
  EXPECT_EQ(size_t(cache.stats().hits), specs.size() - distinct.size());
  EXPECT_EQ(r.stats.cache.hits, cache.stats().hits);
  EXPECT_EQ(r.stats.cache.misses, cache.stats().misses);
  EXPECT_GT(r.stats.cache.hit_rate(), 0.5);
  EXPECT_GT(r.stats.jobs_per_second, 0.0);
}

TEST(RuntimeBatch, KernelCountersAggregateAcrossJobsAndThreads) {
  // Every synthesis job verifies its design on the simulator, so the
  // batch aggregate must surface the kernel work — and because each job
  // tallies into its own ambient sink before the per-batch merge (a
  // commutative sum), the counters are thread-count invariant like the
  // job outcomes themselves.
  const auto specs = batch_specs(6);
  BatchOptions serial = fast_synth_options();
  serial.threads = 1;
  const auto r1 = run_opamp_batch(proc(), specs, serial);
  BatchOptions pooled = fast_synth_options();
  pooled.threads = 4;
  const auto r4 = run_opamp_batch(proc(), specs, pooled);
  const KernelStats& k1 = r1.stats.kernel;
  const KernelStats& k4 = r4.stats.kernel;
  EXPECT_GT(k1.solves, 0);
  EXPECT_GT(k1.factorizations + k1.numeric_refactors, 0);
  EXPECT_GT(k1.ac_points_fused, 0);
  EXPECT_GT(k1.baseline_builds, 0);
  EXPECT_EQ(k1.solves, k4.solves);
  EXPECT_EQ(k1.factorizations, k4.factorizations);
  EXPECT_EQ(k1.numeric_refactors, k4.numeric_refactors);
  EXPECT_EQ(k1.ac_points_fused, k4.ac_points_fused);
  EXPECT_EQ(k1.baseline_builds, k4.baseline_builds);
  EXPECT_EQ(k1.nonlinear_stamps, k4.nonlinear_stamps);
}

TEST(RuntimeBatch, PoisonedSpecFailsAloneAndNamesItsJob) {
  auto specs = batch_specs(6);
  specs[3].ibias = -1.0;  // nonsensical bias: the estimator must throw
  BatchOptions o = fast_synth_options();
  o.threads = 4;
  EstimateCache cache;
  o.cache = &cache;
  const auto r = run_opamp_batch(proc(), specs, o);
  ASSERT_EQ(r.jobs.size(), 6u);
  EXPECT_FALSE(r.jobs[3].ok);
  EXPECT_NE(r.jobs[3].error.find("opamp_batch[3]"), std::string::npos)
      << r.jobs[3].error;
  EXPECT_EQ(r.stats.failed, 1);
  for (size_t i = 0; i < 6; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(r.jobs[i].ok) << i << ": " << r.jobs[i].error;
  }
}

TEST(RuntimeBatch, EstimateBatchMatchesDirectEstimator) {
  const auto specs = batch_specs(8);
  BatchOptions o;
  o.threads = 4;
  EstimateCache cache;
  o.cache = &cache;
  const auto r = estimate_opamp_batch(proc(), specs, o);
  ASSERT_EQ(r.jobs.size(), 8u);
  const est::OpAmpEstimator direct(proc());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(r.jobs[i].ok) << r.jobs[i].error;
    const auto want = direct.estimate(specs[i]);
    EXPECT_EQ(r.jobs[i].outcome->perf.gain, want.perf.gain);
    EXPECT_EQ(r.jobs[i].outcome->perf.ugf_hz, want.perf.ugf_hz);
  }
}

TEST(RuntimeBatch, ModuleBatchDeterministicAndIsolated) {
  using est::ModuleKind;
  using est::ModuleSpec;
  std::vector<ModuleSpec> specs;
  ModuleSpec amp;
  amp.kind = ModuleKind::AudioAmp;
  amp.gain = 100.0;
  amp.bw_hz = 20e3;
  specs.push_back(amp);
  ModuleSpec bad;
  bad.kind = ModuleKind::Integrator;  // not a Table-5 synthesis kind
  specs.push_back(bad);
  specs.push_back(amp);

  BatchOptions o;
  o.seed = 5;
  o.synth.use_ape_seed = true;
  o.synth.anneal.iterations = 60;
  o.threads = 1;
  EstimateCache c1;
  o.cache = &c1;
  const auto r1 = run_module_batch(proc(), specs, o);
  o.threads = 8;
  EstimateCache c8;
  o.cache = &c8;
  const auto r8 = run_module_batch(proc(), specs, o);

  ASSERT_EQ(r1.jobs.size(), 3u);
  EXPECT_TRUE(r1.jobs[0].ok) << r1.jobs[0].error;
  EXPECT_FALSE(r1.jobs[1].ok);
  EXPECT_NE(r1.jobs[1].error.find("module_batch[1]"), std::string::npos)
      << r1.jobs[1].error;
  EXPECT_TRUE(r1.jobs[2].ok) << r1.jobs[2].error;
  EXPECT_EQ(r1.stats.failed, 1);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r1.jobs[i].ok, r8.jobs[i].ok);
    if (r1.jobs[i].ok) {
      EXPECT_EQ(r1.jobs[i].outcome.cost, r8.jobs[i].outcome.cost) << i;
    }
  }
  // Jobs 0 and 2 share a spec; both caches see one miss + one hit for it.
  EXPECT_EQ(c1.stats().misses, c8.stats().misses);
  EXPECT_GE(c1.stats().hits, 1);
}

// ---------------------------------------------------------------------------
// Supervised batches keep the determinism contract: retries and resume
// change nothing about which bits come out at 1 thread vs 8 threads.

TEST(RuntimeBatch, SupervisedRetriesAndResumeDeterministicAcrossThreads) {
  const auto specs = batch_specs(12);
  auto supervised = [&](int threads) {
    SupervisorOptions sup;
    sup.batch = fast_synth_options();
    sup.batch.threads = threads;
    sup.retry.plain_retries = 1;
    sup.retry.relaxed_retries = 1;
    sup.retry.estimate_fallback = true;
    // Every third job's first attempt dies in verification (singular LU)
    // and recovers on the plain retry. Faults are keyed on (job, attempt)
    // only, so the schedule is identical at any thread count.
    sup.fault_setup = [](size_t index, int attempt,
                         spice::FaultInjector& fi) {
      if (index % 3 == 0 && attempt == 0) fi.fail_lu_from(0);
    };
    return sup;
  };

  const auto r1 = run_supervised_opamp_batch(proc(), specs, supervised(1));
  const auto r8 = run_supervised_opamp_batch(proc(), specs, supervised(8));
  ASSERT_EQ(r1.jobs.size(), specs.size());
  EXPECT_EQ(r1.supervision.retries, 4);  // jobs 0, 3, 6, 9
  EXPECT_EQ(r8.supervision.retries, 4);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(r1.jobs[i].ok) << r1.jobs[i].error;
    ASSERT_TRUE(r8.jobs[i].ok) << r8.jobs[i].error;
    EXPECT_EQ(r1.jobs[i].attempts, r8.jobs[i].attempts) << i;
    const auto f1 = fingerprint(r1.jobs[i].outcome);
    const auto f8 = fingerprint(r8.jobs[i].outcome);
    ASSERT_EQ(f1.size(), f8.size());
    for (size_t k = 0; k < f1.size(); ++k) {
      EXPECT_EQ(f1[k], f8[k]) << "job " << i << " field " << k;
    }
  }

  // Interrupt an 8-thread retrying run mid-way, then resume at 1 thread:
  // the stitched-together results still match the uninterrupted ones.
  const std::string ckpt = testing::TempDir() + "runtime_resume.ckpt";
  CancelToken cancel;
  SupervisorOptions interrupted = supervised(8);
  interrupted.checkpoint_path = ckpt;
  interrupted.cancel = &cancel;
  std::atomic<int> completed{0};
  interrupted.on_job_done = [&](size_t, bool) {
    if (completed.fetch_add(1) + 1 == 5) cancel.cancel();
  };
  (void)run_supervised_opamp_batch(proc(), specs, interrupted);

  SupervisorOptions resumed = supervised(1);
  resumed.resume_path = ckpt;
  const auto rr = run_supervised_opamp_batch(proc(), specs, resumed);
  ASSERT_EQ(rr.jobs.size(), specs.size());
  EXPECT_GE(rr.supervision.resumed_jobs, 1);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(rr.jobs[i].ok) << rr.jobs[i].error;
    const auto f1 = fingerprint(r1.jobs[i].outcome);
    const auto fr = fingerprint(rr.jobs[i].outcome);
    ASSERT_EQ(f1.size(), fr.size());
    for (size_t k = 0; k < f1.size(); ++k) {
      EXPECT_EQ(f1[k], fr[k]) << "resumed job " << i << " field " << k;
    }
  }
  std::remove(ckpt.c_str());
}

// ---------------------------------------------------------------------------
// Multi-start synthesis through the executor.

TEST(RuntimeMultiStart, BestOfRestartsNeverWorseAndDeterministic) {
  est::OpAmpSpec spec;
  spec.gain = 150.0;
  spec.ugf_hz = 3e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;

  synth::SynthesisOptions single;
  single.use_ape_seed = true;
  single.anneal.iterations = 150;
  single.anneal.seed = 11;
  const auto r1 = synth::synthesize_opamp(proc(), spec, single);

  synth::SynthesisOptions multi = single;
  multi.restarts = 4;
  multi.restart_threads = 4;
  const auto r4 = synth::synthesize_opamp(proc(), spec, multi);
  EXPECT_EQ(r4.restarts_run, 4);
  // Restart 0 replays the single-start search, so best-of can only help.
  EXPECT_LE(r4.cost, r1.cost);
  EXPECT_GE(r4.evaluations, r1.evaluations);

  synth::SynthesisOptions serial = multi;
  serial.restart_threads = 1;
  const auto rs = synth::synthesize_opamp(proc(), spec, serial);
  EXPECT_EQ(rs.cost, r4.cost);
  EXPECT_EQ(rs.best_restart, r4.best_restart);
  EXPECT_EQ(rs.skipped_candidates, r4.skipped_candidates);
  EXPECT_EQ(rs.evaluations, r4.evaluations);
}

TEST(RuntimeMultiStart, SingleRestartMatchesLegacySingleStart) {
  est::OpAmpSpec spec;
  spec.gain = 140.0;
  spec.ugf_hz = 2.5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  synth::SynthesisOptions opts;
  opts.use_ape_seed = true;
  opts.anneal.iterations = 150;
  opts.anneal.seed = 3;
  const auto a = synth::synthesize_opamp(proc(), spec, opts);
  opts.restarts = 1;
  opts.restart_threads = 8;  // irrelevant at one restart
  const auto b = synth::synthesize_opamp(proc(), spec, opts);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.best_restart, 0);
}

}  // namespace
}  // namespace ape::runtime
