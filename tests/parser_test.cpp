#include "src/spice/parser.h"

#include <gtest/gtest.h>

#include "src/spice/analysis.h"
#include "src/spice/devices.h"

namespace ape::spice {
namespace {

TEST(Parser, DividerNetlistSolves) {
  const char* net = R"(simple divider
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
.end
)";
  Circuit ckt = parse_netlist(net);
  EXPECT_EQ(ckt.title(), "simple divider");
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "mid"), 7.5, 1e-6);
}

TEST(Parser, BareDcValueAndCaseInsensitivity) {
  const char* net = R"(case test
v1 IN 0 5
r1 in OUT 2K
R2 out 0 2k
)";
  Circuit ckt = parse_netlist(net);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "out"), 2.5, 1e-6);
}

TEST(Parser, ContinuationLines) {
  const char* net = R"(continuation
V1 in 0
+ DC 4
R1 in 0 1k
)";
  Circuit ckt = parse_netlist(net);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "in"), 4.0, 1e-9);
}

TEST(Parser, CommentsAndInlineComments) {
  const char* net = R"(comments
* a full-line comment
V1 in 0 DC 1 $ inline comment
R1 in 0 1k ; another style
)";
  Circuit ckt = parse_netlist(net);
  EXPECT_NE(ckt.find("r1"), nullptr);
  EXPECT_NE(ckt.find("V1"), nullptr);
}

TEST(Parser, ModelCardAndMosfet) {
  const char* net = R"(mos test
.model modn nmos (level=1 vto=0.8 kp=80u lambda=0.02 gamma=0.4 phi=0.6)
Vdd vdd 0 DC 5
Vg g 0 DC 2
Rd vdd d 10k
M1 d g 0 0 modn W=10u L=2u
)";
  Circuit ckt = parse_netlist(net);
  const auto& m1 = ckt.find_as<Mosfet>("m1");
  EXPECT_DOUBLE_EQ(m1.width(), 10e-6);
  EXPECT_DOUBLE_EQ(m1.length(), 2e-6);
  EXPECT_EQ(m1.model().level, 1);
  EXPECT_DOUBLE_EQ(m1.model().kp, 80e-6);
  const auto sol = dc_operating_point(ckt);
  EXPECT_LT(node_voltage(ckt, sol, "d"), 5.0);
}

TEST(Parser, ModelDefinedAfterUse) {
  const char* net = R"(order independence
Vg g 0 DC 2
M1 d g 0 0 late W=5u L=1u
Rd d 0 1k
.model late nmos (vto=0.7 kp=50u)
)";
  Circuit ckt = parse_netlist(net);
  EXPECT_NO_THROW(ckt.find_as<Mosfet>("m1"));
}

TEST(Parser, PmosModelDefaultsNegativeVto) {
  const auto m = parse_model_card(".model mp pmos (kp=28u)");
  EXPECT_EQ(m.type, MosType::Pmos);
  EXPECT_DOUBLE_EQ(m.vto, -0.8);
}

TEST(Parser, PulseSinPwlSources) {
  const char* net = R"(sources
V1 a 0 PULSE(0 5 1u 2n 2n 1m 2m)
V2 b 0 SIN(2.5 0.1 10k)
V3 c 0 PWL(0 0 1m 1 2m 0)
V4 d 0 DC 1 AC 1 90
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
)";
  Circuit ckt = parse_netlist(net);
  const auto& v1 = ckt.find_as<VSource>("v1");
  EXPECT_EQ(v1.wave().kind, Waveform::Kind::Pulse);
  EXPECT_DOUBLE_EQ(v1.wave().value(0.0), 0.0);
  EXPECT_NEAR(v1.wave().value(1.1e-6), 5.0, 1e-9);
  const auto& v2 = ckt.find_as<VSource>("v2");
  EXPECT_NEAR(v2.wave().value(0.0), 2.5, 1e-12);
  const auto& v3 = ckt.find_as<VSource>("v3");
  EXPECT_NEAR(v3.wave().value(0.5e-3), 0.5, 1e-9);
  const auto& v4 = ckt.find_as<VSource>("v4");
  EXPECT_DOUBLE_EQ(v4.wave().ac_mag, 1.0);
  EXPECT_DOUBLE_EQ(v4.wave().ac_phase_deg, 90.0);
}

TEST(Parser, ControlledSources) {
  const char* net = R"(controlled
V1 in 0 DC 1
E1 e 0 in 0 10
G1 gout 0 in 0 1m
Rg gout 0 1k
Vm m 0 DC 0
Rm in m 100
F1 f 0 Vm 2
Rf f 0 50
H1 h 0 Vm 1000
Rh h 0 1k
Re e 0 1k
)";
  Circuit ckt = parse_netlist(net);
  const auto sol = dc_operating_point(ckt);
  EXPECT_NEAR(node_voltage(ckt, sol, "e"), 10.0, 1e-6);
  EXPECT_NEAR(node_voltage(ckt, sol, "gout"), -1.0, 1e-6);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("title\nR1 a 0\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, RejectsUnknownElement) {
  EXPECT_THROW(parse_netlist("t\nQ1 a b c qmod\n"), ParseError);
}

TEST(Parser, RejectsUnknownModelParameter) {
  EXPECT_THROW(parse_model_card(".model bad nmos (zzz=1)"), ParseError);
}

TEST(Parser, RejectsUnsupportedLevel) {
  EXPECT_THROW(parse_model_card(".model bad nmos (level=49)"), ParseError);
}

TEST(Parser, RejectsUnknownCard) {
  EXPECT_THROW(parse_netlist("t\n.tran 1n 1u\n"), ParseError);
}

TEST(Parser, RejectsEmpty) { EXPECT_THROW(parse_netlist(""), ParseError); }

TEST(Parser, MosfetNeedsKnownModel) {
  EXPECT_THROW(parse_netlist("t\nM1 d g 0 0 nosuch W=1u L=1u\n"), LookupError);
}

TEST(Parser, RejectsDuplicateDeviceName) {
  try {
    parse_netlist("t\nR1 a 0 1k\nr1 a 0 2k\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate device name"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Parser, RejectsSelfLoopedTwoTerminalDevices) {
  EXPECT_THROW(parse_netlist("t\nR1 a a 1k\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\nC1 0 gnd 1p\n"), ParseError);  // both ground
  EXPECT_THROW(parse_netlist("t\nV1 x x DC 1\n"), ParseError);
  EXPECT_THROW(parse_netlist("t\nV1 a 0 DC 1\nF1 b b v1 2\n"), ParseError);
  try {
    parse_netlist("t\nL1 n1 N1 1m\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("both terminals"), std::string::npos);
  }
}

}  // namespace
}  // namespace ape::spice
