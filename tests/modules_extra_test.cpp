#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/modules.h"
#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/synth/astrx.h"
#include "src/util/error.h"

namespace ape::est {
namespace {

class ExtraModuleTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
  ModuleEstimator me_{proc_};
};

TEST_F(ExtraModuleTest, InvertingAmpGainAndSign) {
  ModuleSpec s;
  s.kind = ModuleKind::InvertingAmp;
  s.gain = 10.0;
  s.bw_hz = 50e3;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.gain, 10.0, 0.3);
  EXPECT_GE(d.perf.bw_hz, 50e3);

  // Transistor-level: gain magnitude and the inverting sign.
  const Testbench tb = d.testbench(proc_);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  (void)spice::dc_operating_point(ckt);
  const auto ac = spice::ac_analysis(ckt, 100.0, 100.0 * 1.01, 5);
  const auto h = ac.voltage(ckt.find_node("out"), 0);
  EXPECT_NEAR(std::abs(h), 10.0, 0.3);
  EXPECT_LT(h.real(), 0.0);  // inverting
}

TEST_F(ExtraModuleTest, InvertingAmpRejectsZeroGain) {
  ModuleSpec s;
  s.kind = ModuleKind::InvertingAmp;
  s.gain = 0.0;
  EXPECT_THROW(me_.estimate(s), SpecError);
}

TEST_F(ExtraModuleTest, IntegratorUnityGainFrequency) {
  ModuleSpec s;
  s.kind = ModuleKind::Integrator;
  s.f0_hz = 10e3;
  s.gain = 100.0;  // DC gain of the lossy realization
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.f_unity_hz, 10e3, 1.5e3);
  EXPECT_NEAR(d.perf.gain, 100.0, 10.0);
  // The lossy corner sits at f_unity / dc_gain.
  EXPECT_NEAR(d.perf.f3db_hz, 100.0, 20.0);
}

TEST_F(ExtraModuleTest, IntegratorRollsOffAtMinus20dBPerDecade) {
  ModuleSpec s;
  s.kind = ModuleKind::Integrator;
  s.f0_hz = 10e3;
  s.gain = 100.0;
  const ModuleDesign d = me_.estimate(s);
  const Testbench tb = d.testbench(proc_);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  (void)spice::dc_operating_point(ckt);
  const auto ac = spice::ac_analysis(ckt, 500.0, 50e3, 20);
  const spice::Bode bode(ac, ckt.find_node("out"));
  // One decade inside the integration region: |H(1k)| / |H(10k)| ~ 10.
  EXPECT_NEAR(bode.mag_at(1e3) / bode.mag_at(10e3), 10.0, 1.0);
}

TEST_F(ExtraModuleTest, ComparatorDelayVerified) {
  ModuleSpec s;
  s.kind = ModuleKind::Comparator;
  s.delay_s = 2e-6;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_LT(d.perf.delay_s, s.delay_s);
  synth::ModuleSynthesisOutcome out;
  synth::verify_module(proc_, d, out);
  // Measured response within the budget and within ~2x of the estimate.
  EXPECT_LT(out.sim_delay_s, 1.2 * s.delay_s);
  EXPECT_GT(out.sim_delay_s, 0.3 * d.perf.delay_s);
}

TEST_F(ExtraModuleTest, AdderSumsAllInputs) {
  ModuleSpec s;
  s.kind = ModuleKind::Adder;
  s.order = 3;
  s.gain = 2.0;
  s.bw_hz = 50e3;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.gain, 2.0, 0.1);

  // DC check: shift input 1 by +0.1 V; out must move by -gain * 0.1.
  const Testbench tb = d.testbench(proc_);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  auto& vin = ckt.find_as<spice::VSource>("Vin");
  const auto sol0 = spice::dc_operating_point(ckt);
  const double out0 = spice::node_voltage(ckt, sol0, "out");

  spice::Circuit ckt2 = spice::parse_netlist(tb.netlist);
  ckt2.find_as<spice::VSource>("Vin").wave().dc = vin.wave().dc + 0.1;
  const auto sol1 = spice::dc_operating_point(ckt2);
  const double out1 = spice::node_voltage(ckt2, sol1, "out");
  EXPECT_NEAR(out1 - out0, -0.2, 0.02);
}

TEST_F(ExtraModuleTest, AdderClampsInputCount) {
  ModuleSpec s;
  s.kind = ModuleKind::Adder;
  s.order = 9;
  s.gain = 1.0;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_EQ(d.spec.order, 4);
}

TEST_F(ExtraModuleTest, DacProducesExactMidCode) {
  ModuleSpec s;
  s.kind = ModuleKind::R2RDac;
  s.order = 4;
  s.delay_s = 2e-6;
  const ModuleDesign d = me_.estimate(s);
  EXPECT_NEAR(d.perf.lsb_v, proc_.vdd / 16.0, 1e-9);

  // Default testbench code is 0101 (bits 1 and 3 high) = 10 LSB.
  const Testbench tb = d.testbench(proc_);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  const auto sol = spice::dc_operating_point(ckt);
  EXPECT_NEAR(spice::node_voltage(ckt, sol, "out"), 10.0 * proc_.vdd / 16.0,
              0.03);
}

TEST_F(ExtraModuleTest, DacLadderIsMonotonicAcrossCodes) {
  ModuleSpec s;
  s.kind = ModuleKind::R2RDac;
  s.order = 4;
  s.delay_s = 2e-6;
  const ModuleDesign d = me_.estimate(s);
  const Testbench tb = d.testbench(proc_);
  // Codes whose output stays inside the NMOS follower buffer's range
  // (its output tops out near VDD - Vdsat6 - Vgs9 ~ 3.4 V).
  double prev = -1.0;
  for (int code = 4; code <= 10; ++code) {
    spice::Circuit ckt = spice::parse_netlist(tb.netlist);
    for (int b = 0; b < 4; ++b) {
      ckt.find_as<spice::VSource>("Vb" + std::to_string(b)).wave().dc =
          ((code >> b) & 1) ? proc_.vdd : 0.0;
    }
    const auto sol = spice::dc_operating_point(ckt);
    const double v = spice::node_voltage(ckt, sol, "out");
    EXPECT_NEAR(v, code * proc_.vdd / 16.0, 0.05) << "code " << code;
    EXPECT_GT(v, prev) << "code " << code;
    prev = v;
  }
}

TEST_F(ExtraModuleTest, DacRejectsSillyResolutions) {
  ModuleSpec s;
  s.kind = ModuleKind::R2RDac;
  s.order = 16;
  EXPECT_THROW(me_.estimate(s), SpecError);
}

TEST_F(ExtraModuleTest, SynthesisRejectsNonTable5Kinds) {
  ModuleSpec s;
  s.kind = ModuleKind::InvertingAmp;
  s.gain = 10.0;
  synth::SynthesisOptions opts;
  EXPECT_THROW(synth::synthesize_module(proc_, s, opts), SpecError);
}

TEST_F(ExtraModuleTest, ToStringCoversNewKinds) {
  for (auto k : {ModuleKind::InvertingAmp, ModuleKind::Integrator,
                 ModuleKind::Comparator, ModuleKind::Adder, ModuleKind::R2RDac}) {
    EXPECT_STRNE(to_string(k), "?");
  }
}

}  // namespace
}  // namespace ape::est
