#include "src/spice/measure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/spice/circuit.h"
#include "src/spice/devices.h"

namespace ape::spice {
namespace {

/// Build a synthetic AC result for H(s) = A0 / (1 + s/p) at node 0.
AcResult synth_single_pole(double a0, double pole_hz, double f0, double f1,
                           int pts) {
  AcResult ac;
  for (int k = 0; k < pts; ++k) {
    const double f = f0 * std::pow(f1 / f0, static_cast<double>(k) / (pts - 1));
    const std::complex<double> s{0.0, f / pole_hz};
    ac.freq_hz.push_back(f);
    ac.solutions.push_back({a0 / (1.0 + s)});
  }
  return ac;
}

TEST(Measure, DcGainAndPole) {
  const auto ac = synth_single_pole(100.0, 1e4, 1.0, 1e8, 400);
  const Bode bode(ac, 0);
  EXPECT_NEAR(bode.dc_gain(), 100.0, 0.01);
  ASSERT_TRUE(bode.f_3db().has_value());
  EXPECT_NEAR(*bode.f_3db(), 1e4, 100.0);
}

TEST(Measure, UnityGainFrequencyOfSinglePole) {
  // UGF ~ A0 * pole for A0 >> 1.
  const auto ac = synth_single_pole(100.0, 1e4, 1.0, 1e8, 400);
  const Bode bode(ac, 0);
  ASSERT_TRUE(bode.unity_gain_freq().has_value());
  EXPECT_NEAR(*bode.unity_gain_freq(), 1e6, 2e4);
}

TEST(Measure, PhaseMarginOfSinglePoleIsNear90) {
  const auto ac = synth_single_pole(100.0, 1e4, 1.0, 1e8, 400);
  const Bode bode(ac, 0);
  ASSERT_TRUE(bode.phase_margin_deg().has_value());
  EXPECT_NEAR(*bode.phase_margin_deg(), 90.6, 2.0);
}

TEST(Measure, NoUnityCrossingReturnsNullopt) {
  const auto ac = synth_single_pole(0.5, 1e4, 1.0, 1e6, 100);
  const Bode bode(ac, 0);
  EXPECT_FALSE(bode.unity_gain_freq().has_value());
}

TEST(Measure, MagAtInterpolates) {
  const auto ac = synth_single_pole(10.0, 1e3, 1.0, 1e6, 200);
  const Bode bode(ac, 0);
  EXPECT_NEAR(bode.mag_at(1e3), 10.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(bode.mag_at(0.1), 10.0, 0.01);   // below sweep -> first point
  EXPECT_NEAR(bode.mag_at(1e7), bode.mag(bode.size() - 1), 1e-9);
}

TEST(Measure, BandPassPeakAndBandwidth) {
  // H = s/w0 / (1 + s/(Q w0) + (s/w0)^2), Q = 1, f0 = 1 kHz.
  AcResult ac;
  const double f0 = 1e3, q = 1.0;
  for (int k = 0; k < 600; ++k) {
    const double f = 10.0 * std::pow(1e5 / 10.0, k / 599.0);
    const std::complex<double> s{0.0, f / f0};
    ac.freq_hz.push_back(f);
    ac.solutions.push_back({s / (1.0 + s / q + s * s)});
  }
  const Bode bode(ac, 0);
  EXPECT_NEAR(bode.peak_freq(), f0, 20.0);
  EXPECT_NEAR(bode.peak_gain(), 1.0, 0.01);
  ASSERT_TRUE(bode.bandwidth_3db().has_value());
  // For this biquad BW = f0 / Q.
  EXPECT_NEAR(*bode.bandwidth_3db(), f0 / q, 50.0);
}

TEST(Measure, SlewRateOfRamp) {
  TranResult tr;
  for (int k = 0; k <= 100; ++k) {
    tr.time_s.push_back(k * 1e-6);
    Solution s;
    s.x = {k * 1e-6 * 2e6};  // 2 V/us ramp
    tr.solutions.push_back(s);
  }
  EXPECT_NEAR(slew_rate(tr, 0) / 1e6, 2.0, 1e-6);
}

TEST(Measure, CrossingTimeInterpolates) {
  TranResult tr;
  for (int k = 0; k <= 10; ++k) {
    tr.time_s.push_back(k * 1.0);
    Solution s;
    s.x = {static_cast<double>(k)};  // v = t
    tr.solutions.push_back(s);
  }
  const auto t = crossing_time(tr, 0, 4.5);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 4.5, 1e-9);
}

TEST(Measure, CrossingDirectionInferred) {
  TranResult tr;
  for (int k = 0; k <= 10; ++k) {
    tr.time_s.push_back(k * 1.0);
    Solution s;
    s.x = {10.0 - k};  // falling
    tr.solutions.push_back(s);
  }
  const auto t = crossing_time(tr, 0, 2.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 8.0, 1e-9);
}

TEST(Measure, SettlingTime) {
  TranResult tr;
  for (int k = 0; k <= 100; ++k) {
    const double t = k * 1e-3;
    tr.time_s.push_back(t);
    Solution s;
    s.x = {1.0 - std::exp(-t / 5e-3)};  // tau = 5 ms
    tr.solutions.push_back(s);
  }
  const auto ts = settling_time(tr, 0, 0.02);
  ASSERT_TRUE(ts.has_value());
  // 2% settling of a first-order response ~= 4 tau = 20 ms (relative to the
  // record's final value, slightly earlier).
  EXPECT_GT(*ts, 5e-3);
  EXPECT_LT(*ts, 25e-3);
}

TEST(Measure, NeverCrossesReturnsNullopt) {
  TranResult tr;
  for (int k = 0; k <= 5; ++k) {
    tr.time_s.push_back(k * 1.0);
    Solution s;
    s.x = {0.0};
    tr.solutions.push_back(s);
  }
  EXPECT_FALSE(crossing_time(tr, 0, 3.0).has_value());
}

}  // namespace
}  // namespace ape::spice
