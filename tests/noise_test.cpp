#include "src/spice/noise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/opamp.h"
#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape::spice {
namespace {

constexpr double k4kT = 4.0 * 1.380649e-23 * 300.0;
constexpr double kBoltzmannT = 1.380649e-23 * 300.0;

TEST(Noise, SingleResistorSpotNoise) {
  // Output PSD of a grounded resistor driven by nothing: 4kTR.
  const char* net = R"(r noise
Vin in 0 AC 1
Rs in out 1e9
R1 out 0 10k
)";
  Circuit ckt = parse_netlist(net);
  (void)dc_operating_point(ckt);
  const NoiseResult nr = noise_analysis(ckt, "out", 1.0, 1e3, 5);
  // Rs >> R1: the divider leaves ~4kT*R1 at the output.
  EXPECT_NEAR(nr.out_v2.front(), k4kT * 10e3, k4kT * 10e3 * 0.01);
}

TEST(Noise, ParallelResistorsCombine) {
  // Two resistors to ground: output sees 4kT * (R1 || R2).
  const char* net = R"(par
Vmeas probe 0 AC 0
Rp probe out 1e12
R1 out 0 10k
R2 out 0 40k
)";
  Circuit ckt = parse_netlist(net);
  (void)dc_operating_point(ckt);
  const NoiseResult nr = noise_analysis(ckt, "out", 1.0, 1e2, 5);
  const double rpar = 10e3 * 40e3 / 50e3;
  EXPECT_NEAR(nr.out_v2.front(), k4kT * rpar, k4kT * rpar * 0.02);
}

TEST(Noise, KtOverCProperty) {
  // The classic: total integrated noise of any RC low-pass is kT/C,
  // independent of R. Verify for two very different resistances.
  for (double r : {1e3, 100e3}) {
    Circuit ckt("ktc");
    Waveform w;
    ckt.add<VSource>("vin", ckt.node("in"), kGround, w);
    ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("out"), r);
    ckt.add<Capacitor>("c1", ckt.node("out"), kGround, 10e-12);
    (void)dc_operating_point(ckt);
    const double f_pole = 1.0 / (2.0 * M_PI * r * 10e-12);
    const NoiseResult nr =
        noise_analysis(ckt, "out", f_pole * 1e-3, f_pole * 1e3, 20);
    const double want = std::sqrt(kBoltzmannT / 10e-12);
    EXPECT_NEAR(nr.integrated_out_vrms(f_pole * 1e-3, f_pole * 1e3), want,
                want * 0.05)
        << "R = " << r;
  }
}

TEST(Noise, FlickerRaisesLowFrequencyNoise) {
  const char* net = R"(flicker
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02 kf=1e-24 af=1)
Vdd vdd 0 DC 5
Vg g 0 DC 2 AC 1
Rd vdd d 10k
M1 d g 0 0 mn W=10u L=2u
)";
  Circuit ckt = parse_netlist(net);
  (void)dc_operating_point(ckt);
  const NoiseResult nr = noise_analysis(ckt, "d", 1.0, 1e6, 5, "Vg");
  // 1/f dominated at 1 Hz, white at 1 MHz.
  EXPECT_GT(nr.out_v2.front(), 10.0 * nr.out_v2.back());
  // Input-referred density is finite and positive where gain exists.
  EXPECT_GT(nr.in_v2.back(), 0.0);
}

TEST(Noise, CommonSourceInputReferredMatchesHandFormula) {
  // White region: v_in^2 = 4kT*(2/3)/gm + 4kT*Rd/(gm*Rd)^2 (load term).
  const char* net = R"(cs noise
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02)
Vdd vdd 0 DC 5
Vg g 0 DC 2 AC 1
Rd vdd d 10k
M1 d g 0 0 mn W=10u L=2u
)";
  Circuit ckt = parse_netlist(net);
  (void)dc_operating_point(ckt);
  auto& m1 = ckt.find_as<Mosfet>("m1");
  const double gm = m1.op().gm;
  const double gout = 1.0 / 10e3 + m1.op().gds;
  const NoiseResult nr = noise_analysis(ckt, "d", 1e3, 1e4, 5, "Vg");
  const double gain2 = (gm / gout) * (gm / gout);
  const double want =
      (k4kT * (2.0 / 3.0) * gm + k4kT / 10e3) / (gout * gout) / gain2;
  EXPECT_NEAR(nr.in_v2.front(), want, want * 0.05);
}

TEST(Noise, OpAmpEstimateMatchesSimulatedInputNoise) {
  // The estimator's input-referred white-noise composition vs the full
  // noise analysis of the open-loop testbench, in the flat region.
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 5e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  const est::OpAmpDesign d = est::OpAmpEstimator(proc).estimate(spec);
  const est::Testbench tb = d.testbench(proc, est::OpAmpTb::OpenLoop);
  Circuit ckt = parse_netlist(tb.netlist);
  (void)dc_operating_point(ckt);
  const NoiseResult nr = noise_analysis(ckt, "out", 1e3, 1e4, 5, "Vin");
  ASSERT_GT(d.perf.input_noise_v2, 0.0);
  // Within 2x: the estimate counts only the first stage's four devices.
  EXPECT_GT(nr.in_v2.front(), 0.5 * d.perf.input_noise_v2);
  EXPECT_LT(nr.in_v2.front(), 2.0 * d.perf.input_noise_v2);
}

TEST(Noise, RejectsBadArguments) {
  Circuit ckt("x");
  Waveform w;
  ckt.add<VSource>("v1", ckt.node("a"), kGround, w);
  ckt.add<Resistor>("r1", ckt.node("a"), kGround, 1e3);
  (void)dc_operating_point(ckt);
  EXPECT_THROW(noise_analysis(ckt, "a", -1.0, 10.0), SpecError);
  EXPECT_THROW(noise_analysis(ckt, "0", 1.0, 10.0), SpecError);
  EXPECT_THROW(noise_analysis(ckt, "nope", 1.0, 10.0), LookupError);
}

}  // namespace
}  // namespace ape::spice
