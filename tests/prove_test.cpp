/// \file prove_test.cpp
/// The feasibility prover (src/lint/prove.h, DESIGN.md section 14).
///
/// The load-bearing test is the randomized soundness property: over
/// >= 1000 (spec, box, corner) cases, every point sample of the
/// performance equations lies inside the proven interval — so an
/// APE-F001 verdict can never reject a spec some sizing could have met.
/// The synth-layer pins keep the prover's duplicated constants
/// (default box, cost weights) in lockstep with the real synthesizer,
/// and the verdict units exercise each APE-F rule plus the consumers'
/// require_feasible contract.

#include "src/lint/prove.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/estimator/process.h"
#include "src/stat/corners.h"
#include "src/synth/sizing.h"
#include "src/util/rng.h"

namespace ape::lint {
namespace {

using util::Interval;

bool in_interval(const Interval& b, double v) {
  if (b.empty()) return false;
  if (std::isnan(v)) return false;  // a NaN sample poisons bounds to whole()
  return b.lo() <= v && v <= b.hi();
}

std::vector<double> sample_point(const std::vector<std::pair<double, double>>& box,
                                 Rng& rng) {
  std::vector<double> x(box.size());
  for (size_t i = 0; i < box.size(); ++i) {
    // Log-uniform: sizing ranges span 2-3 decades, uniform sampling
    // would never visit the bottom decade where extrema live.
    const double lo = std::log(box[i].first);
    const double hi = std::log(box[i].second);
    x[i] = std::exp(rng.uniform(lo, hi));
  }
  return x;
}

std::vector<std::pair<double, double>> random_subbox(
    const std::vector<std::pair<double, double>>& outer, Rng& rng) {
  std::vector<std::pair<double, double>> box(outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    const double la = std::log(outer[i].first);
    const double lb = std::log(outer[i].second);
    double a = rng.uniform(la, lb);
    double b = rng.uniform(la, lb);
    if (a > b) std::swap(a, b);
    box[i] = {std::exp(a), std::exp(b)};
  }
  return box;
}

est::OpAmpSpec random_spec(Rng& rng) {
  est::OpAmpSpec spec;
  spec.gain = std::pow(10.0, rng.uniform(0.5, 5.0));
  spec.ugf_hz = std::pow(10.0, rng.uniform(3.0, 9.0));
  spec.ibias = std::pow(10.0, rng.uniform(-7.0, -4.0));
  spec.cload = std::pow(10.0, rng.uniform(-13.0, -10.0));
  if (rng.uniform() < 0.5) {
    spec.area_budget = std::pow(10.0, rng.uniform(-10.0, -6.0));
  }
  return spec;
}

// --- the soundness property ------------------------------------------------

// >= 1000 randomized (spec, box, corner) cases: every metric of a point
// sampled inside the box must lie inside the interval the prover
// computed for that box. This is the contract every consumer relies on:
// it is what makes an infeasible verdict a *proof* rather than a guess.
TEST(ProveSoundness, PointSamplesLieInsideProvenIntervals) {
  const est::Process base = est::Process::default_1u2();
  const std::vector<est::Process> corners =
      stat::CornerSet::all().realize(base);
  Rng rng(0xF001u);
  ProveOptions opts;
  opts.contraction_segments = 0;  // raw input-box bounds, no contraction
  int cases = 0;
  for (int iter = 0; iter < 360; ++iter) {
    const est::Process& proc = corners[iter % corners.size()];
    const est::OpAmpSpec spec = random_spec(rng);
    const std::vector<std::pair<double, double>> box =
        random_subbox(default_prove_box(proc), rng);
    opts.box = box;
    const FeasibilityProof proof = prove_opamp_feasibility(proc, spec, opts);
    for (int s = 0; s < 3; ++s, ++cases) {
      const std::vector<double> x = sample_point(box, rng);
      const PointMetrics p = prove_point_metrics(proc, spec, x);
      EXPECT_TRUE(in_interval(proof.bounds.gain, p.gain))
          << "gain " << p.gain << " outside " << proof.bounds.gain.str();
      EXPECT_TRUE(in_interval(proof.bounds.ugf_hz, p.ugf_hz))
          << "ugf " << p.ugf_hz << " outside " << proof.bounds.ugf_hz.str();
      EXPECT_TRUE(in_interval(proof.bounds.phase_margin, p.phase_margin))
          << "pm " << p.phase_margin << " outside "
          << proof.bounds.phase_margin.str();
      EXPECT_TRUE(in_interval(proof.bounds.slew, p.slew))
          << "slew " << p.slew << " outside " << proof.bounds.slew.str();
      EXPECT_TRUE(in_interval(proof.bounds.dc_power, p.dc_power))
          << "power " << p.dc_power << " outside "
          << proof.bounds.dc_power.str();
      EXPECT_TRUE(in_interval(proof.bounds.gate_area, p.gate_area))
          << "area " << p.gate_area << " outside "
          << proof.bounds.gate_area.str();
      EXPECT_TRUE(in_interval(proof.bounds.input_noise_v2, p.input_noise_v2))
          << "noise " << p.input_noise_v2 << " outside "
          << proof.bounds.input_noise_v2.str();
    }
  }
  EXPECT_GE(cases, 1000);
}

// Contraction soundness: a point in the input box whose point metrics
// satisfy every spec requirement must survive into the contracted
// feasible box — branch-and-prune may only drop provably-hopeless
// segments, never a witness.
TEST(ProveSoundness, FeasiblePointsSurviveContraction) {
  const est::Process proc = est::Process::default_1u2();
  Rng rng(0xF002u);
  ProveOptions opts;  // contraction on (the default)
  int witnesses = 0;
  for (int iter = 0; iter < 40; ++iter) {
    const est::OpAmpSpec spec = random_spec(rng);
    const std::vector<std::pair<double, double>> box =
        default_prove_box(proc);
    const FeasibilityProof proof = prove_opamp_feasibility(proc, spec, opts);
    for (int s = 0; s < 50; ++s) {
      const std::vector<double> x = sample_point(box, rng);
      const PointMetrics p = prove_point_metrics(proc, spec, x);
      const bool meets =
          (spec.gain <= 0.0 || p.gain >= spec.gain) &&
          (spec.ugf_hz <= 0.0 || p.ugf_hz >= spec.ugf_hz) &&
          (spec.area_budget <= 0.0 || p.gate_area <= spec.area_budget) &&
          p.phase_margin >= 45.0;
      if (!meets) continue;
      ++witnesses;
      ASSERT_FALSE(proof.infeasible)
          << "witness exists but spec was declared infeasible";
      ASSERT_EQ(proof.feasible_box.size(), x.size());
      for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_GE(x[i], proof.feasible_box[i].first) << "var " << i;
        EXPECT_LE(x[i], proof.feasible_box[i].second) << "var " << i;
      }
    }
  }
  // The sampler must actually have found spec-satisfying witnesses for
  // the property to mean anything.
  EXPECT_GT(witnesses, 10);
}

// --- pins against the synthesis layer --------------------------------------

// The prover cannot link against ape_synth (layering), so it duplicates
// the blind sizing box. This pin makes silent drift impossible.
TEST(ProvePins, DefaultBoxEqualsSynthBlindBounds) {
  for (const est::Process& proc :
       {est::Process::default_1u2(), est::Process::default_1u2_level3()}) {
    const auto ours = default_prove_box(proc);
    const auto theirs = synth::blind_bounds(proc, /*buffered=*/false);
    ASSERT_EQ(ours.size(), theirs.size());
    for (size_t i = 0; i < ours.size(); ++i) {
      EXPECT_EQ(ours[i].first, theirs[i].first) << "var " << i;
      EXPECT_EQ(ours[i].second, theirs[i].second) << "var " << i;
    }
  }
}

// cost_lower_bound mirrors synth::opamp_cost's weights. At a degenerate
// (point) box the interval metrics collapse to the prover's point
// metrics, so the floor must equal opamp_cost evaluated on those same
// numbers (capped at the non-functional plateau 1e3) — any weight edit
// on either side breaks the equality.
TEST(ProvePins, CostFloorMatchesOpampCostWeightsAtPointBox) {
  const est::Process proc = est::Process::default_1u2();
  Rng rng(0xF003u);
  ProveOptions opts;
  opts.contraction_segments = 0;
  for (int iter = 0; iter < 50; ++iter) {
    const est::OpAmpSpec spec = random_spec(rng);
    const std::vector<double> x = sample_point(default_prove_box(proc), rng);
    opts.box.clear();
    for (const double v : x) opts.box.push_back({v, v});
    const FeasibilityProof proof = prove_opamp_feasibility(proc, spec, opts);
    const PointMetrics p = prove_point_metrics(proc, spec, x);
    synth::OpAmpEval e;
    e.functional = true;  // the floor assumes the best case
    e.gain = p.gain;
    e.ugf_hz = p.ugf_hz;
    e.phase_margin = p.phase_margin;
    e.gate_area = p.gate_area;
    e.dc_power = p.dc_power;
    e.slew = p.slew;
    const double expect = std::min(synth::opamp_cost(e, spec), 1e3);
    EXPECT_NEAR(proof.cost_lower_bound, expect,
                1e-9 * std::abs(expect) + 1e-12)
        << "iter " << iter;
  }
}

// The floor can never exceed the non-functional plateau: a box full of
// non-functional points still scores 1e3 in the real cost.
TEST(ProvePins, CostFloorNeverExceedsPlateau) {
  const est::Process proc = est::Process::default_1u2();
  Rng rng(0xF004u);
  for (int iter = 0; iter < 20; ++iter) {
    est::OpAmpSpec spec = random_spec(rng);
    spec.gain = 1e30;  // maximally-violated spec maximizes the floor
    spec.ugf_hz = 1e30;
    const FeasibilityProof proof = prove_opamp_feasibility(proc, spec);
    EXPECT_LE(proof.cost_lower_bound, 1e3);
  }
}

// --- APE-F verdict units ---------------------------------------------------

TEST(ProveVerdicts, AbsurdGainIsProvenInfeasible) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 1e30;  // orders of magnitude past any square-law two-stage
  const FeasibilityProof proof = prove_opamp_feasibility(proc, spec);
  EXPECT_TRUE(proof.infeasible);
  ASSERT_GT(proof.report.errors(), 0);
  bool named = false;
  for (const auto& f : proof.report.findings) {
    if (f.rule == "APE-F001") {
      EXPECT_EQ(f.severity, Severity::Error);
      // The finding must carry the violated inequality and the interval.
      if (f.message.find("gain") != std::string::npos) named = true;
      EXPECT_NE(f.message.find(">="), std::string::npos);
      EXPECT_NE(f.message.find("["), std::string::npos);
    }
  }
  EXPECT_TRUE(named);
}

TEST(ProveVerdicts, TightSpecWarns) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  // Probe the proven UGF ceiling, then ask for 95% of it: reachable,
  // but within the default 25% tightness margin.
  const FeasibilityProof probe = prove_opamp_feasibility(proc, spec);
  ASSERT_FALSE(probe.bounds.ugf_hz.empty());
  spec.ugf_hz = probe.bounds.ugf_hz.hi() * 0.95;
  ProveOptions opts;
  opts.contraction_segments = 0;
  const FeasibilityProof proof = prove_opamp_feasibility(proc, spec, opts);
  EXPECT_FALSE(proof.infeasible);
  bool tight = false;
  for (const auto& f : proof.report.findings) {
    if (f.rule == "APE-F002" && f.where == "spec.ugf_hz") {
      EXPECT_EQ(f.severity, Severity::Warn);
      tight = true;
    }
  }
  EXPECT_TRUE(tight);
}

TEST(ProveVerdicts, VacuousAreaBudgetNotes) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.area_budget = 1.0;  // 1 m^2 of gate area: satisfied by any sizing
  const FeasibilityProof proof = prove_opamp_feasibility(proc, spec);
  EXPECT_FALSE(proof.infeasible);
  bool vacuous = false;
  for (const auto& f : proof.report.findings) {
    if (f.rule == "APE-F003" && f.where == "spec.area_budget") {
      EXPECT_EQ(f.severity, Severity::Note);
      vacuous = true;
    }
  }
  EXPECT_TRUE(vacuous);
}

// A sane default spec must prove feasible with no error findings and a
// non-empty feasible box inside the input box — the lint-first gates
// run this exact check on every batch job.
TEST(ProveVerdicts, DefaultSpecIsFeasible) {
  const est::Process proc = est::Process::default_1u2();
  const est::OpAmpSpec spec;
  const FeasibilityProof proof = prove_opamp_feasibility(proc, spec);
  EXPECT_FALSE(proof.infeasible);
  EXPECT_EQ(proof.report.errors(), 0);
  const auto outer = default_prove_box(proc);
  ASSERT_EQ(proof.feasible_box.size(), outer.size());
  for (size_t i = 0; i < outer.size(); ++i) {
    EXPECT_GE(proof.feasible_box[i].first, outer[i].first);
    EXPECT_LE(proof.feasible_box[i].second, outer[i].second);
    EXPECT_LE(proof.feasible_box[i].first, proof.feasible_box[i].second);
  }
  EXPECT_EQ(proof.corner, "nominal");
}

// APE-F verdicts per corner: an absurd spec is infeasible at every PVT
// card, a sane one feasible at every card, and the proof records which
// corner it ran at.
TEST(ProveVerdicts, VerdictsHoldAtEveryCorner) {
  const est::Process base = est::Process::default_1u2();
  est::OpAmpSpec absurd;
  absurd.gain = 1e30;
  const est::OpAmpSpec sane;
  for (const est::Process& proc : stat::CornerSet::all().realize(base)) {
    const FeasibilityProof bad = prove_opamp_feasibility(proc, absurd);
    EXPECT_TRUE(bad.infeasible) << proc.variant;
    EXPECT_EQ(bad.corner, proc.variant);
    const FeasibilityProof good = prove_opamp_feasibility(proc, sane);
    EXPECT_FALSE(good.infeasible) << proc.variant;
  }
}

TEST(ProveVerdicts, BufferedSpecStaysNeutral) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.buffer = true;
  spec.gain = 1e30;  // would be infeasible unbuffered — but no model, no claim
  const FeasibilityProof proof = prove_opamp_feasibility(proc, spec);
  EXPECT_FALSE(proof.infeasible);
  EXPECT_TRUE(proof.report.findings.empty());
  EXPECT_EQ(proof.cost_lower_bound, 0.0);
  EXPECT_EQ(proof.feasible_box.size(), 13u);
}

// --- the consumer contract -------------------------------------------------

TEST(ProveConsumers, RequireFeasibleThrowsPermanentLintError) {
  const est::Process proc = est::Process::default_1u2();
  est::OpAmpSpec spec;
  spec.gain = 1e30;
  const FeasibilityProof proof = prove_opamp_feasibility(proc, spec);
  try {
    require_feasible(proof, "unit");
    FAIL() << "require_feasible did not throw";
  } catch (const LintError& e) {
    // Permanent is what routes the supervisor ladder straight to the
    // estimate-only fallback with no retries.
    EXPECT_EQ(e.klass(), ErrorClass::Permanent);
    EXPECT_NE(std::string(e.what()).find("infeasible"), std::string::npos);
    EXPECT_GT(e.report().errors(), 0);
  }
  // Feasible proofs pass through silently.
  const FeasibilityProof ok =
      prove_opamp_feasibility(proc, est::OpAmpSpec{});
  EXPECT_NO_THROW(require_feasible(ok, "unit"));
}

TEST(ProveConsumers, InputValidationThrowsSpecError) {
  const est::Process proc = est::Process::default_1u2();
  const est::OpAmpSpec spec;
  EXPECT_THROW(prove_point_metrics(proc, spec, {1.0, 2.0}), SpecError);
  ProveOptions opts;
  opts.box.assign(13, {1e-6, 2e-6});
  opts.box[4] = {-1.0, 2e-6};  // non-positive lower bound
  EXPECT_THROW(prove_opamp_feasibility(proc, spec, opts), SpecError);
  opts.box.assign(5, {1e-6, 2e-6});  // wrong arity
  EXPECT_THROW(prove_opamp_feasibility(proc, spec, opts), SpecError);
}

}  // namespace
}  // namespace ape::lint
