#include "src/estimator/constraints.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/error.h"

namespace ape::est {
namespace {

class ConstraintTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
};

TEST_F(ConstraintTest, GainChainMeetsSystemSpec) {
  const auto a = allocate_gain_chain(proc_, 100.0, 20e3, 2);
  ASSERT_EQ(a.designs.size(), 2u);
  EXPECT_TRUE(a.feasible);
  EXPECT_NEAR(a.system_gain, 100.0, 10.0);
  EXPECT_GE(a.system_bw_hz, 20e3);
  // Per-stage budgets carry the cascade-shrinkage factor: each stage's
  // bandwidth exceeds the end-to-end requirement.
  for (const auto& s : a.stage_specs) {
    EXPECT_GT(s.bw_hz, 20e3);
    EXPECT_NEAR(s.gain, 10.0, 0.01);
  }
}

TEST_F(ConstraintTest, ThreeStageChainSharesGainEvenly) {
  const auto a = allocate_gain_chain(proc_, 64.0, 10e3, 3);
  EXPECT_TRUE(a.feasible);
  for (const auto& s : a.stage_specs) EXPECT_NEAR(s.gain, 4.0, 0.01);
  EXPECT_NEAR(a.system_gain, 64.0, 8.0);
}

TEST_F(ConstraintTest, SingleStageNeedsNoShrinkage) {
  const auto a = allocate_gain_chain(proc_, 10.0, 20e3, 1);
  EXPECT_TRUE(a.feasible);
  EXPECT_NEAR(a.stage_specs[0].bw_hz, 20e3, 1.0);
}

TEST_F(ConstraintTest, GainChainRejectsBadSpecs) {
  EXPECT_THROW(allocate_gain_chain(proc_, 0.5, 1e3, 2), SpecError);
  EXPECT_THROW(allocate_gain_chain(proc_, 10.0, 1e3, 0), SpecError);
  EXPECT_THROW(allocate_gain_chain(proc_, 10.0, -1.0, 2), SpecError);
}

TEST_F(ConstraintTest, GainChainAreaBudgetEnforced) {
  const auto tight = allocate_gain_chain(proc_, 100.0, 20e3, 2, 1e-12);
  EXPECT_FALSE(tight.feasible);  // 1 um^2 is never enough
  const auto loose = allocate_gain_chain(proc_, 100.0, 20e3, 2, 1e-6);
  EXPECT_TRUE(loose.feasible);
}

TEST_F(ConstraintTest, AmpFilterChainHoldsTheCorner) {
  const auto a = allocate_amp_filter_chain(proc_, 20.0, 1e3);
  ASSERT_TRUE(a.feasible);
  ASSERT_EQ(a.designs.size(), 2u);
  // The composed corner sits within a few percent of the filter's 1 kHz.
  EXPECT_NEAR(a.system_bw_hz, 1e3, 60.0);
  // System gain = amp gain * filter passband gain (2.575 for the
  // 4th-order equal-RC Sallen-Key cascade).
  EXPECT_NEAR(a.system_gain, 20.0 * 2.575, 5.0);
  // The transformed amplifier constraint is at least the 2x f0 floor
  // (the search widens it only if the composed corner sags - APE's
  // amplifiers carry enough margin that the floor usually suffices).
  EXPECT_GE(a.stage_specs[0].bw_hz, 2.0 * 1e3);
}

TEST_F(ConstraintTest, AmpFilterSearchIterates) {
  const auto a = allocate_amp_filter_chain(proc_, 20.0, 1e3);
  EXPECT_GE(a.iterations, 1);
  EXPECT_LE(a.iterations, 12);
}

TEST_F(ConstraintTest, AmpFilterRejectsBadSpecs) {
  EXPECT_THROW(allocate_amp_filter_chain(proc_, 0.5, 1e3), SpecError);
  EXPECT_THROW(allocate_amp_filter_chain(proc_, 10.0, 0.0), SpecError);
}

}  // namespace
}  // namespace ape::est
