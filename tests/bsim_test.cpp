#include <gtest/gtest.h>

#include <cmath>

#include "src/estimator/opamp.h"
#include "src/estimator/transistor.h"
#include "src/estimator/verify.h"
#include "src/spice/mos_model.h"
#include "src/spice/parser.h"
#include "src/util/error.h"

namespace ape {
namespace {

using est::Process;
using spice::mos_eval;
using spice::MosModelCard;
using spice::MosRegion;
using spice::MosType;

constexpr double kW = 10e-6;
constexpr double kL = 2.4e-6;

/// A BSIM card calibrated to the LEVEL 1 default (as in default_1u2_bsim
/// but without the extra degradation terms).
MosModelCard calibrated_bsim(bool degradation = false) {
  const Process p1 = Process::default_1u2();
  MosModelCard c = p1.nmos;
  c.level = 4;
  c.k1 = c.gamma;
  c.k2 = 0.0;
  c.vfb = c.vto - c.phi - c.k1 * std::sqrt(c.phi);
  c.muz = c.kp / c.cox() * 1e4;
  c.kp = 0.0;
  if (degradation) {
    c.u0v = 0.05;
    c.u1 = 2e-8;
  }
  return c;
}

TEST(Bsim, ThresholdMatchesLevel1AtZeroBodyBias) {
  const MosModelCard b = calibrated_bsim();
  const MosModelCard l1 = Process::default_1u2().nmos;
  const auto eb = mos_eval(b, 2.0, 3.0, 0.0, kW, kL);
  const auto e1 = mos_eval(l1, 2.0, 3.0, 0.0, kW, kL);
  EXPECT_NEAR(eb.vth, e1.vth, 1e-9);
}

TEST(Bsim, BodyEffectTracksK1) {
  const MosModelCard b = calibrated_bsim();
  const auto e0 = mos_eval(b, 2.0, 3.0, 0.0, kW, kL);
  const auto e1 = mos_eval(b, 2.0, 3.0, -2.0, kW, kL);
  // Vth(Vsb) = VFB + PHI + K1 sqrt(PHI + Vsb): check the shift exactly.
  const double want =
      b.k1 * (std::sqrt(b.phi + 2.0) - std::sqrt(b.phi));
  EXPECT_NEAR(e1.vth - e0.vth, want, 1e-9);
}

TEST(Bsim, K2ReducesBodyEffect) {
  MosModelCard b = calibrated_bsim();
  const auto without = mos_eval(b, 2.0, 3.0, -2.0, kW, kL);
  b.k2 = 0.05;
  const auto with_k2 = mos_eval(b, 2.0, 3.0, -2.0, kW, kL);
  EXPECT_LT(with_k2.vth, without.vth);
}

TEST(Bsim, DiblLowersThresholdWithVds) {
  MosModelCard b = calibrated_bsim();
  b.eta = 0.02;
  const auto lo = mos_eval(b, 2.0, 1.0, 0.0, kW, kL);
  const auto hi = mos_eval(b, 2.0, 4.0, 0.0, kW, kL);
  EXPECT_NEAR(lo.vth - hi.vth, 0.02 * 3.0, 1e-6);
  EXPECT_GT(hi.ids, lo.ids);
}

TEST(Bsim, VerticalFieldDegradationCutsCurrent) {
  const MosModelCard clean = calibrated_bsim(false);
  const MosModelCard rough = calibrated_bsim(true);
  const auto ec = mos_eval(clean, 3.5, 4.0, 0.0, kW, kL);
  const auto er = mos_eval(rough, 3.5, 4.0, 0.0, kW, kL);
  EXPECT_LT(er.ids, ec.ids);
  EXPECT_LT(er.vdsat, ec.vdsat);  // u1 also pulls vdsat in
}

TEST(Bsim, BodyFactorShapesSaturationCurrent) {
  // With a = 1 + K1/(2 sqrt(PHI)), Idsat = beta/(2a) Vov^2 < the
  // square-law value.
  const MosModelCard b = calibrated_bsim();
  const auto e = mos_eval(b, 2.0, 4.0, 0.0, kW, kL);
  const double leff = b.leff(kL);
  const double beta = b.muz * 1e-4 * b.cox() * kW / leff;
  const double a = 1.0 + b.k1 / (2.0 * std::sqrt(b.phi));
  const double vov = 2.0 - e.vth;
  const double lam = b.lambda * (b.lref > 0 ? b.lref / leff : 1.0);
  const double want = beta / (2.0 * a) * vov * vov * (1.0 + lam * 4.0);
  EXPECT_NEAR(e.ids, want, want * 1e-6);
}

TEST(Bsim, CurrentContinuousAcrossVdsat) {
  const MosModelCard b = calibrated_bsim(true);
  const auto probe = mos_eval(b, 2.5, 5.0, 0.0, kW, kL);
  const double vdsat = probe.vdsat;
  const auto lo = mos_eval(b, 2.5, vdsat - 1e-7, 0.0, kW, kL);
  const auto hi = mos_eval(b, 2.5, vdsat + 1e-7, 0.0, kW, kL);
  EXPECT_NEAR(lo.ids, hi.ids, std::fabs(hi.ids) * 1e-4);
}

TEST(Bsim, PmosNormalizationWorks) {
  const Process p = Process::default_1u2_bsim();
  const auto e = mos_eval(p.pmos, 2.0, 2.5, 0.0, kW, kL);
  EXPECT_GT(e.ids, 0.0);
  EXPECT_EQ(e.region, MosRegion::Saturation);
  EXPECT_NEAR(e.vth, 0.8, 0.05);  // matches |VTO| of the base card
}

TEST(Bsim, ParserRoundTripsLevel4Card) {
  const Process p = Process::default_1u2_bsim();
  const MosModelCard parsed =
      spice::parse_model_card(spice::to_card_string(p.nmos));
  EXPECT_EQ(parsed.level, 4);
  EXPECT_NEAR(parsed.vfb, p.nmos.vfb, std::fabs(p.nmos.vfb) * 1e-8);
  EXPECT_NEAR(parsed.k1, p.nmos.k1, 1e-8);
  EXPECT_NEAR(parsed.muz, p.nmos.muz, p.nmos.muz * 1e-8);
  EXPECT_NEAR(parsed.u0v, p.nmos.u0v, 1e-12);
  const auto a = mos_eval(p.nmos, 2.0, 3.0, 0.0, kW, kL);
  const auto b = mos_eval(parsed, 2.0, 3.0, 0.0, kW, kL);
  EXPECT_NEAR(a.ids, b.ids, a.ids * 1e-7);
}

TEST(Bsim, ParserRejectsLevel5) {
  EXPECT_THROW(spice::parse_model_card(".model x nmos (level=5)"),
               ParseError);
}

TEST(Bsim, TransistorEstimatorSizesAgainstBsim) {
  // The paper's claim: "the current version of APE can use Level 1, 2, 3
  // or BSIM SPICE device models". The closed-form LEVEL 1 seed plus the
  // numeric refinement must hit gm targets on the BSIM card too.
  const Process p = Process::default_1u2_bsim();
  const est::TransistorEstimator xe(p);
  const auto d = xe.size_for_gm_id(MosType::Nmos, 100e-6, 10e-6);
  const auto e = mos_eval(p.nmos, d.vgs, d.vds, d.vbs, d.w, d.l);
  EXPECT_NEAR(e.gm, 100e-6, 100e-6 * 0.02);
  EXPECT_NEAR(e.ids, 10e-6, 10e-6 * 0.02);
}

TEST(Bsim, FullOpAmpFlowOnBsimProcess) {
  // End to end: size a two-stage opamp against the BSIM card and verify
  // it on the simulator running the same card.
  const Process p = Process::default_1u2_bsim();
  est::OpAmpSpec spec;
  spec.gain = 200;
  spec.ugf_hz = 3e6;
  spec.ibias = 10e-6;
  spec.cload = 10e-12;
  const est::OpAmpDesign d = est::OpAmpEstimator(p).estimate(spec);
  const est::OpAmpSimReport r =
      est::simulate_opamp(d, p, /*with_transient=*/false);
  EXPECT_GE(r.gain, 200.0);
  ASSERT_TRUE(r.ugf_hz.has_value());
  EXPECT_NEAR(*r.ugf_hz, d.perf.ugf_hz, d.perf.ugf_hz * 0.25);
  EXPECT_NEAR(r.power, d.perf.dc_power, d.perf.dc_power * 0.15);
}

}  // namespace
}  // namespace ape
