/// \file kernel_test.cpp
/// Equivalence tests for the compiled MNA kernel (src/spice/kernel.h):
/// the rewired analyses must match the pre-kernel algorithms — full
/// per-iteration restamping through virtual dispatch with a fresh
/// LuSolver per solve — to floating-point noise, across DC operating
/// points, full AC sweeps and transient waveforms on several topologies,
/// and the fault-injection probes must keep firing on the kernel path.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/spice/devices.h"
#include "src/spice/fault.h"
#include "src/spice/kernel.h"
#include "src/spice/noise.h"
#include "src/spice/parser.h"
#include "tests/test_models.h"

namespace ape::spice {
namespace {

Waveform dcv(double v) {
  Waveform w;
  w.dc = v;
  return w;
}

Waveform dc_ac(double dc, double ac) {
  Waveform w;
  w.dc = dc;
  w.ac_mag = ac;
  return w;
}

// ---------------------------------------------------------------------------
// Reference implementations: the pre-kernel analysis algorithms, kept
// verbatim (minus probes / reporting) as the ground truth the compiled
// path must reproduce.

bool ref_all_finite(const std::vector<double>& v) {
  for (double e : v) {
    if (!std::isfinite(e)) return false;
  }
  return true;
}

bool ref_newton_dc(Circuit& ckt, Solution& x, double gmin, double src_scale,
                   const DcOptions& opts) {
  const size_t dim = ckt.dim();
  const size_t n_nodes = ckt.num_nodes();
  MnaReal mna(dim);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_dc(mna, x, src_scale);
    for (size_t i = 0; i < n_nodes; ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), gmin);
    }
    std::vector<double> xnew;
    try {
      LuSolver<double> lu(mna.matrix());
      xnew = lu.solve(mna.rhs());
    } catch (const NumericError&) {
      return false;
    }
    if (!ref_all_finite(xnew)) return false;
    bool converged = true;
    double max_ratio = 1.0;
    for (size_t i = 0; i < n_nodes; ++i) {
      const double dv = std::fabs(xnew[i] - x.x[i]);
      if (dv > opts.vstep_limit) max_ratio = std::max(max_ratio, dv / opts.vstep_limit);
    }
    max_ratio = std::min(max_ratio, opts.max_damping_ratio);
    for (size_t i = 0; i < dim; ++i) {
      const double step = (xnew[i] - x.x[i]) / max_ratio;
      const double next = x.x[i] + step;
      const double tol = (i < n_nodes)
                             ? opts.vntol + opts.reltol * std::max(std::fabs(next), std::fabs(x.x[i]))
                             : opts.abstol + opts.reltol * std::max(std::fabs(next), std::fabs(x.x[i]));
      if (std::fabs(step) > tol) converged = false;
      x.x[i] = next;
    }
    if (converged && max_ratio == 1.0 && iter > 0) return true;
  }
  return false;
}

Solution ref_dc_operating_point(Circuit& ckt) {
  const DcOptions opts;
  ckt.finalize();
  Solution x;
  x.x.assign(ckt.dim(), 0.0);
  bool ok = true;
  for (double gmin : opts.gmin_steps) {
    if (!ref_newton_dc(ckt, x, gmin, 1.0, opts)) {
      ok = false;
      break;
    }
  }
  if (!ok) {
    x.x.assign(ckt.dim(), 0.0);
    ok = true;
    for (double s : opts.source_steps) {
      if (!ref_newton_dc(ckt, x, 1e-9, s, opts)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (double gmin : opts.gmin_steps) {
        if (!ref_newton_dc(ckt, x, gmin, 1.0, opts)) {
          ok = false;
          break;
        }
      }
    }
  }
  if (!ok) throw NumericError("ref_dc_operating_point: no convergence");
  for (const auto& dev : ckt.devices()) dev->save_op(x);
  return x;
}

AcResult ref_ac_analysis(Circuit& ckt, double f_start, double f_stop,
                         int points_per_decade) {
  AcResult out;
  const double decades = std::log10(f_stop / f_start);
  const int n = std::max(2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  const size_t dim = ckt.dim();
  MnaComplex mna(dim);
  for (int k = 0; k < n; ++k) {
    const double f = f_start * std::pow(10.0, decades * k / (n - 1));
    const double omega = 2.0 * M_PI * f;
    mna.clear();
    for (const auto& dev : ckt.devices()) dev->stamp_ac(mna, omega);
    for (size_t i = 0; i < ckt.num_nodes(); ++i) {
      mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), {1e-12, 0.0});
    }
    LuSolver<std::complex<double>> lu(mna.matrix());
    out.freq_hz.push_back(f);
    out.solutions.push_back(lu.solve(mna.rhs()));
  }
  return out;
}

TranResult ref_transient(Circuit& ckt, double t_step, double t_stop) {
  const TranOptions opts;
  Solution x = ref_dc_operating_point(ckt);
  TranResult out;
  out.time_s.push_back(0.0);
  out.solutions.push_back(x);
  const size_t dim = ckt.dim();
  const size_t n_nodes = ckt.num_nodes();
  MnaReal mna(dim);
  double t = 0.0;
  bool first = true;
  while (t < t_stop - 1e-15) {
    const double t_target = std::min(t + t_step, t_stop);
    double dt = t_target - t;
    int halvings = 0;
    while (t < t_target - 1e-15) {
      dt = std::min(dt, t_target - t);
      TranContext tc{dt, t + dt, first};
      Solution xc = x;
      bool converged = false;
      for (int iter = 0; iter < opts.max_iterations; ++iter) {
        mna.clear();
        for (const auto& dev : ckt.devices()) dev->stamp_tran(mna, xc, tc);
        for (size_t i = 0; i < n_nodes; ++i) {
          mna.add(static_cast<NodeId>(i), static_cast<NodeId>(i), 1e-12);
        }
        std::vector<double> xnew;
        try {
          LuSolver<double> lu(mna.matrix());
          xnew = lu.solve(mna.rhs());
        } catch (const NumericError&) {
          break;
        }
        if (!ref_all_finite(xnew)) break;
        converged = true;
        for (size_t i = 0; i < dim; ++i) {
          const double step = xnew[i] - xc.x[i];
          const double tol = opts.vntol + opts.reltol *
                                 std::max(std::fabs(xnew[i]), std::fabs(xc.x[i]));
          if (std::fabs(step) > tol) converged = false;
          xc.x[i] = xnew[i];
        }
        if (converged && iter > 0) break;
        converged = false;
      }
      if (converged) {
        for (const auto& dev : ckt.devices()) dev->accept_tran_step(xc, tc);
        x = std::move(xc);
        t += dt;
        first = false;
        continue;
      }
      if (++halvings > opts.max_step_halvings) {
        throw NumericError("ref_transient: Newton failed");
      }
      dt *= 0.5;
    }
    t = t_target;
    out.time_s.push_back(t);
    out.solutions.push_back(x);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Topologies. Each builder constructs a fresh identical circuit so the
// reference and kernel paths run on independent device state.

Circuit make_current_mirror() {
  Circuit ckt("mirror");
  const auto* m = ckt.add_model(test::nmos_card());
  ckt.add<VSource>("vdd", ckt.node("vdd"), kGround, dcv(5.0));
  ckt.add<ISource>("iref", ckt.node("vdd"), ckt.node("ref"), dc_ac(100e-6, 1.0));
  ckt.add<Mosfet>("m1", ckt.node("ref"), ckt.node("ref"), kGround, kGround, m,
                  20e-6, 2e-6);
  ckt.add<Mosfet>("m2", ckt.node("out"), ckt.node("ref"), kGround, kGround, m,
                  20e-6, 2e-6);
  ckt.add<Resistor>("rl", ckt.node("vdd"), ckt.node("out"), 10e3);
  return ckt;
}

Circuit make_sallen_key() {
  // Unity-gain VCVS Sallen-Key low-pass, f0 ~ 1.6 kHz, driven by a pulse
  // for transient and AC 1 for the sweep.
  Circuit ckt("sallen-key");
  Waveform in;
  in.kind = Waveform::Kind::Pulse;
  in.v1 = 0.0;
  in.v2 = 1.0;
  in.td = 10e-6;
  in.tr = 1e-6;
  in.tf = 1e-6;
  in.pw = 400e-6;
  in.per = 1e-3;
  in.ac_mag = 1.0;
  ckt.add<VSource>("vin", ckt.node("in"), kGround, in);
  ckt.add<Resistor>("r1", ckt.node("in"), ckt.node("a"), 10e3);
  ckt.add<Resistor>("r2", ckt.node("a"), ckt.node("b"), 10e3);
  ckt.add<Capacitor>("c1", ckt.node("a"), ckt.node("out"), 10e-9);
  ckt.add<Capacitor>("c2", ckt.node("b"), kGround, 10e-9);
  ckt.add<Vcvs>("e1", ckt.node("out"), kGround, ckt.node("b"), kGround, 1.0);
  ckt.add<Resistor>("rl", ckt.node("out"), kGround, 100e3);
  return ckt;
}

est::OpAmpDesign sized_opamp(const est::Process& proc) {
  est::OpAmpSpec spec;
  spec.gain = 1000.0;
  spec.ugf_hz = 2e6;
  spec.ibias = 5e-6;
  spec.cload = 10e-12;
  return est::OpAmpEstimator(proc).estimate(spec);
}

Circuit make_opamp_tb(est::OpAmpTb mode) {
  const est::Process proc = est::Process::default_1u2();
  return parse_netlist(sized_opamp(proc).testbench(proc, mode).netlist);
}

// Compare two solution vectors entry-wise within rtol/atol.
void expect_close(const std::vector<double>& a, const std::vector<double>& b,
                  double rtol, double atol, const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    const double tol = atol + rtol * std::max(std::fabs(a[i]), std::fabs(b[i]));
    EXPECT_NEAR(a[i], b[i], tol) << what << " entry " << i;
  }
}

// ---------------------------------------------------------------------------
// DC operating-point equivalence

void check_dc_equivalence(Circuit ref_ckt, Circuit ckt, const std::string& what,
                          double rtol, double atol) {
  const Solution ref = ref_dc_operating_point(ref_ckt);
  const Solution got = dc_operating_point(ckt);
  expect_close(ref.x, got.x, rtol, atol, what);
}

TEST(KernelEquivalence, DcCurrentMirror) {
  check_dc_equivalence(make_current_mirror(), make_current_mirror(),
                       "mirror dc", 1e-9, 1e-12);
}

TEST(KernelEquivalence, DcSallenKey) {
  check_dc_equivalence(make_sallen_key(), make_sallen_key(),
                       "sallen-key dc", 1e-12, 1e-15);
}

TEST(KernelEquivalence, DcTwoStageOpampTestbench) {
  check_dc_equivalence(make_opamp_tb(est::OpAmpTb::OpenLoop),
                       make_opamp_tb(est::OpAmpTb::OpenLoop),
                       "opamp dc", 1e-8, 1e-9);
}

// ---------------------------------------------------------------------------
// AC sweep equivalence (full sweeps; the kernel's fused G + jwC path
// against per-point virtual restamping)

void check_ac_equivalence(Circuit ref_ckt, Circuit ckt, double f0, double f1,
                          int ppd, const std::string& what) {
  (void)ref_dc_operating_point(ref_ckt);
  (void)dc_operating_point(ckt);
  const AcResult ref = ref_ac_analysis(ref_ckt, f0, f1, ppd);
  KernelStats ks;
  const AcResult got = ac_analysis(ckt, f0, f1, ppd, &ks);
  ASSERT_EQ(ref.freq_hz.size(), got.freq_hz.size()) << what;
  EXPECT_EQ(ks.ac_points_fused, static_cast<long>(got.freq_hz.size())) << what;
  EXPECT_EQ(ks.ac_points_virtual, 0) << what;
  for (size_t k = 0; k < ref.freq_hz.size(); ++k) {
    // The hoisted log grid accumulates multiplicatively; allow FP noise.
    EXPECT_NEAR(ref.freq_hz[k], got.freq_hz[k], 1e-10 * ref.freq_hz[k]) << what;
    ASSERT_EQ(ref.solutions[k].size(), got.solutions[k].size());
    for (size_t i = 0; i < ref.solutions[k].size(); ++i) {
      const double mag = std::max(std::abs(ref.solutions[k][i]),
                                  std::abs(got.solutions[k][i]));
      EXPECT_LE(std::abs(ref.solutions[k][i] - got.solutions[k][i]),
                1e-12 + 1e-8 * mag)
          << what << " point " << k << " entry " << i;
    }
  }
}

TEST(KernelEquivalence, AcCurrentMirror) {
  check_ac_equivalence(make_current_mirror(), make_current_mirror(), 1e2, 1e8,
                       10, "mirror ac");
}

TEST(KernelEquivalence, AcSallenKey) {
  check_ac_equivalence(make_sallen_key(), make_sallen_key(), 1.0, 1e6, 20,
                       "sallen-key ac");
}

TEST(KernelEquivalence, AcTwoStageOpampTestbench) {
  check_ac_equivalence(make_opamp_tb(est::OpAmpTb::OpenLoop),
                       make_opamp_tb(est::OpAmpTb::OpenLoop), 1.0, 1e8, 5,
                       "opamp ac");
}

// ---------------------------------------------------------------------------
// Transient waveform equivalence

void check_tran_equivalence(Circuit ref_ckt, Circuit ckt, double t_step,
                            double t_stop, double rtol, double atol,
                            const std::string& what) {
  const TranResult ref = ref_transient(ref_ckt, t_step, t_stop);
  const TranResult got = transient(ckt, t_step, t_stop);
  ASSERT_EQ(ref.time_s.size(), got.time_s.size()) << what;
  for (size_t k = 0; k < ref.time_s.size(); ++k) {
    EXPECT_DOUBLE_EQ(ref.time_s[k], got.time_s[k]) << what;
    expect_close(ref.solutions[k].x, got.solutions[k].x, rtol, atol,
                 what + " @t[" + std::to_string(k) + "]");
  }
}

TEST(KernelEquivalence, TranSallenKey) {
  check_tran_equivalence(make_sallen_key(), make_sallen_key(), 5e-6, 500e-6,
                         1e-9, 1e-12, "sallen-key tran");
}

TEST(KernelEquivalence, TranCurrentMirror) {
  check_tran_equivalence(make_current_mirror(), make_current_mirror(), 1e-6,
                         50e-6, 1e-8, 1e-10, "mirror tran");
}

TEST(KernelEquivalence, TranTwoStageOpampUnityStep) {
  check_tran_equivalence(make_opamp_tb(est::OpAmpTb::UnityStep),
                         make_opamp_tb(est::OpAmpTb::UnityStep), 1e-6, 30e-6,
                         1e-6, 1e-8, "opamp tran");
}

// ---------------------------------------------------------------------------
// Fault-injection hooks must keep firing through the compiled kernel.

TEST(KernelFaults, AssemblyPoisonStillFiresAndRecovers) {
  Circuit ckt = make_current_mirror();
  FaultInjector fi;
  fi.poison_stamp(1);  // poison the second Newton assembly with a NaN
  ScopedFaultInjection guard(fi);
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const Solution sol = dc_operating_point(ckt, opts);  // ladder recovers
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(fi.counts().assemblies, 0);
  EXPECT_EQ(fi.counts().injected_nonfinite, 1);
  EXPECT_EQ(rep.nonfinite_rejections, 1);
  EXPECT_TRUE(ref_all_finite(sol.x));
}

TEST(KernelFaults, LuSolveHookStillFiresAndRecovers) {
  Circuit ckt = make_current_mirror();
  FaultInjector fi;
  fi.fail_lu(0);  // first LU solve reports injected singularity
  ScopedFaultInjection guard(fi);
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  (void)dc_operating_point(ckt, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(fi.counts().lu_solves, 0);
  EXPECT_EQ(fi.counts().injected_singular, 1);
  EXPECT_EQ(rep.lu_failures, 1);
}

TEST(KernelFaults, TransientHooksFireOnKernelPath) {
  Circuit ckt = make_sallen_key();
  FaultInjector fi;
  fi.veto_transient(2);  // forces sub-stepping through the kernel path
  ScopedFaultInjection guard(fi);
  ConvergenceReport rep;
  TranOptions opts;
  opts.report = &rep;
  const TranResult out = transient(ckt, 5e-6, 100e-6, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_GT(fi.counts().tran_steps, 0);
  EXPECT_GT(fi.counts().assemblies, 0);
  EXPECT_EQ(fi.counts().injected_vetoes, 2);
  EXPECT_GE(rep.step_halvings, 1);
  // The output grid is unaffected by the internal sub-stepping.
  ASSERT_GE(out.time_s.size(), 2u);
  EXPECT_DOUBLE_EQ(out.time_s[1], 5e-6);
}

// ---------------------------------------------------------------------------
// KernelStats bookkeeping

TEST(KernelStats_, DcReportCountsWorkAndStaysAllocationFree) {
  Circuit ckt = make_current_mirror();
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  (void)dc_operating_point(ckt, opts);
  const KernelStats& ks = rep.kernel;
  // One baseline per ladder rung, one restore per Newton iteration, and
  // only the two MOSFETs restamped per iteration.
  EXPECT_EQ(ks.baseline_builds, rep.gmin_rungs_completed);
  EXPECT_EQ(ks.baseline_restores, rep.newton_iterations);
  EXPECT_EQ(ks.nonlinear_stamps, 2 * rep.newton_iterations);
  EXPECT_EQ(ks.linear_stamps_skipped, 3 * rep.newton_iterations);
  EXPECT_EQ(ks.factorizations, rep.newton_iterations);
  EXPECT_GT(ks.workspace_bytes, 0u);
  EXPECT_EQ(ks.workspace_regrowths, 0);
  EXPECT_NE(ks.summary().find("factorizations="), std::string::npos);
}

TEST(KernelStats_, AcSweepIsFusedAndAllocationFree) {
  Circuit ckt = make_sallen_key();
  (void)dc_operating_point(ckt);
  KernelStats ks;
  const AcResult ac = ac_analysis(ckt, 1.0, 1e6, 20, &ks);
  EXPECT_EQ(ks.ac_points_fused, static_cast<long>(ac.freq_hz.size()));
  EXPECT_EQ(ks.ac_points_virtual, 0);
  EXPECT_EQ(ks.factorizations, static_cast<long>(ac.freq_hz.size()));
  EXPECT_EQ(ks.workspace_regrowths, 0);
}

TEST(KernelStats_, AcKernelSplitIsExactForShippedDevices) {
  Circuit ckt = make_opamp_tb(est::OpAmpTb::OpenLoop);
  (void)dc_operating_point(ckt);
  AcKernel kern(ckt);
  EXPECT_TRUE(kern.exact_split());
}

TEST(KernelStats_, AccumulateSumsCountersAndMaxesBytes) {
  KernelStats a, b;
  a.factorizations = 3;
  a.workspace_bytes = 100;
  b.factorizations = 4;
  b.workspace_bytes = 200;
  b.ac_points_fused = 7;
  a.accumulate(b);
  EXPECT_EQ(a.factorizations, 7);
  EXPECT_EQ(a.ac_points_fused, 7);
  EXPECT_EQ(a.workspace_bytes, 200u);
}

// ---------------------------------------------------------------------------
// Sparse path equivalence: the same analyses forced through the sparse
// LU (ScopedKernelPolicy, KernelPath::ForceSparse) must match the dense
// path to <= 1e-9 relative on every topology, the sparse counters must
// prove the symbolic factorization was reused (analyses == 1, one
// refactorization per subsequent solve, zero dense fallbacks), and the
// workspace must stay allocation-free after the factor storage settles.

const KernelPolicy kForceDense{KernelPath::ForceDense};
const KernelPolicy kForceSparse{KernelPath::ForceSparse};

void check_sparse_dc(Circuit dense_ckt, Circuit sparse_ckt,
                     const std::string& what, double rtol, double atol) {
  Solution dense;
  {
    ScopedKernelPolicy guard(kForceDense);
    dense = dc_operating_point(dense_ckt);
  }
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  Solution sparse;
  {
    ScopedKernelPolicy guard(kForceSparse);
    sparse = dc_operating_point(sparse_ckt, opts);
  }
  expect_close(dense.x, sparse.x, rtol, atol, what);
  const KernelStats& ks = rep.kernel;
  EXPECT_EQ(ks.factorizations, 0) << what;  // never rescued by dense LU
  EXPECT_EQ(ks.sparse_fallbacks, 0) << what;
  EXPECT_EQ(ks.symbolic_analyses, 1) << what;
  EXPECT_GT(ks.symbolic_reuses, 0) << what;
  // Every solve runs the numeric pass; only the first pays the analysis.
  EXPECT_EQ(ks.numeric_refactors, ks.symbolic_analyses + ks.symbolic_reuses)
      << what;
  EXPECT_EQ(ks.solves, rep.newton_iterations) << what;
  EXPECT_GT(ks.sparse_nnz, 0) << what;
  EXPECT_EQ(ks.workspace_regrowths, 0) << what;
}

TEST(SparseEquivalence, DcCurrentMirror) {
  check_sparse_dc(make_current_mirror(), make_current_mirror(),
                  "mirror sparse dc", 1e-9, 1e-12);
}

TEST(SparseEquivalence, DcSallenKey) {
  check_sparse_dc(make_sallen_key(), make_sallen_key(),
                  "sallen-key sparse dc", 1e-9, 1e-12);
}

TEST(SparseEquivalence, DcTwoStageOpampTestbench) {
  check_sparse_dc(make_opamp_tb(est::OpAmpTb::OpenLoop),
                  make_opamp_tb(est::OpAmpTb::OpenLoop),
                  "opamp sparse dc", 1e-9, 1e-9);
}

void check_sparse_ac(Circuit dense_ckt, Circuit sparse_ckt, double f0,
                     double f1, int ppd, const std::string& what) {
  AcResult dense;
  {
    ScopedKernelPolicy guard(kForceDense);
    (void)dc_operating_point(dense_ckt);
    dense = ac_analysis(dense_ckt, f0, f1, ppd);
  }
  AcResult sparse;
  KernelStats ks;
  {
    ScopedKernelPolicy guard(kForceSparse);
    (void)dc_operating_point(sparse_ckt);
    sparse = ac_analysis(sparse_ckt, f0, f1, ppd, &ks);
  }
  ASSERT_EQ(dense.freq_hz.size(), sparse.freq_hz.size()) << what;
  const long n = static_cast<long>(sparse.freq_hz.size());
  EXPECT_EQ(ks.ac_points_fused, n) << what;
  EXPECT_EQ(ks.factorizations, 0) << what;
  EXPECT_EQ(ks.sparse_fallbacks, 0) << what;
  EXPECT_EQ(ks.symbolic_analyses, 1) << what;
  EXPECT_EQ(ks.symbolic_reuses, n - 1) << what;
  EXPECT_EQ(ks.workspace_regrowths, 0) << what;
  for (size_t k = 0; k < dense.freq_hz.size(); ++k) {
    ASSERT_EQ(dense.solutions[k].size(), sparse.solutions[k].size());
    for (size_t i = 0; i < dense.solutions[k].size(); ++i) {
      const double mag = std::max(std::abs(dense.solutions[k][i]),
                                  std::abs(sparse.solutions[k][i]));
      EXPECT_LE(std::abs(dense.solutions[k][i] - sparse.solutions[k][i]),
                1e-12 + 1e-9 * mag)
          << what << " point " << k << " entry " << i;
    }
  }
}

TEST(SparseEquivalence, AcCurrentMirror) {
  check_sparse_ac(make_current_mirror(), make_current_mirror(), 1e2, 1e8, 10,
                  "mirror sparse ac");
}

TEST(SparseEquivalence, AcSallenKey) {
  check_sparse_ac(make_sallen_key(), make_sallen_key(), 1.0, 1e6, 20,
                  "sallen-key sparse ac");
}

TEST(SparseEquivalence, AcTwoStageOpampTestbench) {
  check_sparse_ac(make_opamp_tb(est::OpAmpTb::OpenLoop),
                  make_opamp_tb(est::OpAmpTb::OpenLoop), 1.0, 1e8, 5,
                  "opamp sparse ac");
}

void check_sparse_tran(Circuit dense_ckt, Circuit sparse_ckt, double t_step,
                       double t_stop, double rtol, double atol,
                       const std::string& what) {
  TranResult dense;
  {
    ScopedKernelPolicy guard(kForceDense);
    dense = transient(dense_ckt, t_step, t_stop);
  }
  TranResult sparse;
  ConvergenceReport rep;
  TranOptions opts;
  opts.report = &rep;
  {
    ScopedKernelPolicy guard(kForceSparse);
    sparse = transient(sparse_ckt, t_step, t_stop, opts);
  }
  ASSERT_EQ(dense.time_s.size(), sparse.time_s.size()) << what;
  EXPECT_EQ(rep.kernel.sparse_fallbacks, 0) << what;
  EXPECT_GT(rep.kernel.symbolic_reuses, 0) << what;
  for (size_t k = 0; k < dense.time_s.size(); ++k) {
    EXPECT_DOUBLE_EQ(dense.time_s[k], sparse.time_s[k]) << what;
    expect_close(dense.solutions[k].x, sparse.solutions[k].x, rtol, atol,
                 what + " @t[" + std::to_string(k) + "]");
  }
}

TEST(SparseEquivalence, TranSallenKey) {
  check_sparse_tran(make_sallen_key(), make_sallen_key(), 5e-6, 500e-6, 1e-9,
                    1e-12, "sallen-key sparse tran");
}

TEST(SparseEquivalence, TranCurrentMirror) {
  check_sparse_tran(make_current_mirror(), make_current_mirror(), 1e-6, 50e-6,
                    1e-9, 1e-11, "mirror sparse tran");
}

TEST(SparseEquivalence, TranTwoStageOpampUnityStep) {
  check_sparse_tran(make_opamp_tb(est::OpAmpTb::UnityStep),
                    make_opamp_tb(est::OpAmpTb::UnityStep), 1e-6, 30e-6, 1e-7,
                    1e-9, "opamp sparse tran");
}

TEST(SparseEquivalence, NoiseSallenKey) {
  NoiseResult dense;
  {
    ScopedKernelPolicy guard(kForceDense);
    Circuit ckt = make_sallen_key();
    (void)dc_operating_point(ckt);
    dense = noise_analysis(ckt, "out", 1.0, 1e6, 10, "vin");
  }
  NoiseResult sparse;
  KernelStats ks;
  {
    ScopedKernelPolicy guard(kForceSparse);
    Circuit ckt = make_sallen_key();
    (void)dc_operating_point(ckt);
    sparse = noise_analysis(ckt, "out", 1.0, 1e6, 10, "vin", &ks);
  }
  ASSERT_EQ(dense.freq_hz.size(), sparse.freq_hz.size());
  EXPECT_EQ(ks.factorizations, 0);
  EXPECT_EQ(ks.sparse_fallbacks, 0);
  EXPECT_EQ(ks.symbolic_analyses, 1);
  EXPECT_GT(ks.symbolic_reuses, 0);
  for (size_t k = 0; k < dense.freq_hz.size(); ++k) {
    EXPECT_LE(std::fabs(dense.out_v2[k] - sparse.out_v2[k]),
              1e-30 + 1e-9 * dense.out_v2[k])
        << "noise point " << k;
    EXPECT_LE(std::fabs(dense.in_v2[k] - sparse.in_v2[k]),
              1e-30 + 1e-9 * dense.in_v2[k])
        << "input-referred point " << k;
  }
}

// The fault-injection hooks (DESIGN.md section 10) act on the assembled
// dense MNA image that the sparse path gathers from, so poisons and
// injected singularities must keep firing — and the recovery ladder must
// keep recovering — with the sparse LU forced on.

TEST(SparseEquivalence, AssemblyPoisonFiresOnSparsePath) {
  ScopedKernelPolicy policy(kForceSparse);
  Circuit ckt = make_current_mirror();
  FaultInjector fi;
  fi.poison_stamp(1);
  ScopedFaultInjection guard(fi);
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  const Solution sol = dc_operating_point(ckt, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(fi.counts().injected_nonfinite, 1);
  EXPECT_EQ(rep.nonfinite_rejections, 1);
  EXPECT_TRUE(ref_all_finite(sol.x));
  EXPECT_GT(rep.kernel.symbolic_reuses, 0);
}

TEST(SparseEquivalence, LuSolveHookFiresOnSparsePath) {
  ScopedKernelPolicy policy(kForceSparse);
  Circuit ckt = make_current_mirror();
  FaultInjector fi;
  fi.fail_lu(0);
  ScopedFaultInjection guard(fi);
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  (void)dc_operating_point(ckt, opts);
  EXPECT_TRUE(rep.converged);
  EXPECT_EQ(fi.counts().injected_singular, 1);
  EXPECT_EQ(rep.lu_failures, 1);
}

TEST(SparseEquivalence, AutoPolicyKeepsSmallTestbenchesDense) {
  // The default crossover must not move the paper's estimate testbenches
  // (dim ~15-30) off the proven dense path.
  Circuit ckt = make_opamp_tb(est::OpAmpTb::OpenLoop);
  ConvergenceReport rep;
  DcOptions opts;
  opts.report = &rep;
  (void)dc_operating_point(ckt, opts);
  EXPECT_EQ(rep.kernel.numeric_refactors, 0);
  EXPECT_EQ(rep.kernel.factorizations, rep.newton_iterations);
}

}  // namespace
}  // namespace ape::spice
