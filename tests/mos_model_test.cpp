#include "src/spice/mos_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/error.h"
#include "tests/test_models.h"

namespace ape::spice {
namespace {

using test::nmos_card;
using test::pmos_card;

constexpr double kW = 10e-6;
constexpr double kL = 2e-6;

TEST(MosModel, CutoffHasNoCurrent) {
  const auto e = mos_eval(nmos_card(), 0.5, 2.0, 0.0, kW, kL);
  EXPECT_EQ(e.region, MosRegion::Cutoff);
  EXPECT_DOUBLE_EQ(e.ids, 0.0);
}

TEST(MosModel, SaturationMatchesSquareLaw) {
  auto m = nmos_card();
  m.lambda = 0.0;  // pure square law
  const double vgs = 2.0, vds = 3.0;
  const auto e = mos_eval(m, vgs, vds, 0.0, kW, kL);
  EXPECT_EQ(e.region, MosRegion::Saturation);
  const double leff = kL - 2.0 * m.ld;
  const double beta = m.kp * kW / leff;
  const double want = 0.5 * beta * (vgs - m.vto) * (vgs - m.vto);
  EXPECT_NEAR(e.ids, want, want * 1e-9);
}

TEST(MosModel, TriodeMatchesFormula) {
  auto m = nmos_card();
  m.lambda = 0.0;
  const double vgs = 3.0, vds = 0.5;  // vdsat = 2.2 > vds
  const auto e = mos_eval(m, vgs, vds, 0.0, kW, kL);
  EXPECT_EQ(e.region, MosRegion::Triode);
  const double leff = kL - 2.0 * m.ld;
  const double beta = m.kp * kW / leff;
  const double want = beta * ((vgs - m.vto) * vds - 0.5 * vds * vds);
  EXPECT_NEAR(e.ids, want, want * 1e-9);
}

TEST(MosModel, GmMatchesPaperEquation2) {
  // Paper eq. (2) with KP = uCox/2 convention: gm = sqrt(2 KP_spice W/L Id).
  auto m = nmos_card();
  m.lambda = 0.0;
  const auto e = mos_eval(m, 2.0, 3.0, 0.0, kW, kL);
  const double leff = kL - 2.0 * m.ld;
  const double want = std::sqrt(2.0 * m.kp * (kW / leff) * e.ids);
  EXPECT_NEAR(e.gm, want, want * 1e-3);
}

TEST(MosModel, GdsMatchesPaperEquation4) {
  // Paper eq. (4): gd = lambda*Ids / (1 + lambda*Vds), with our lref
  // extension scaling lambda by lref/Leff.
  const auto m = nmos_card();
  const double vds = 3.0;
  const auto e = mos_eval(m, 2.0, vds, 0.0, kW, kL);
  const double lam = m.lambda * (m.lref > 0.0 ? m.lref / m.leff(kL) : 1.0);
  const double want = lam * e.ids / (1.0 + lam * vds);
  EXPECT_NEAR(e.gds, want, want * 1e-2);
}

TEST(MosModel, LrefExtensionScalesGdsInverselyWithLength) {
  // Doubling L should roughly quadruple ro (1/L from lambda, 1/L from beta).
  const auto m = nmos_card();
  const auto short_l = mos_eval(m, 2.0, 3.0, 0.0, kW, 2e-6);
  const auto long_l = mos_eval(m, 2.0, 3.0, 0.0, kW, 4e-6);
  const double ro_ratio = (1.0 / long_l.gds) / (1.0 / short_l.gds);
  EXPECT_GT(ro_ratio, 3.0);
  EXPECT_LT(ro_ratio, 6.0);
}

TEST(MosModel, GmbMatchesPaperEquation3) {
  // Paper eq. (3): gmb = gm * gamma / (2 sqrt(2 phi_f + Vsb)).
  const auto m = nmos_card();
  const double vbs = -1.0;  // Vsb = 1
  const auto e = mos_eval(m, 2.5, 3.0, vbs, kW, kL);
  const double want = e.gm * m.gamma / (2.0 * std::sqrt(m.phi + 1.0));
  EXPECT_NEAR(e.gmb, want, want * 1e-2);
}

TEST(MosModel, BodyEffectRaisesThreshold) {
  const auto m = nmos_card();
  const auto e0 = mos_eval(m, 2.0, 3.0, 0.0, kW, kL);
  const auto e1 = mos_eval(m, 2.0, 3.0, -2.0, kW, kL);
  EXPECT_GT(e1.vth, e0.vth);
  EXPECT_LT(e1.ids, e0.ids);
}

TEST(MosModel, ReverseVdsIsAntisymmetric) {
  const auto m = nmos_card();
  // With the source/drain roles swapped the current must flip sign.
  const auto fwd = mos_eval(m, 2.0, 1.5, 0.0, kW, kL);
  const auto rev = mos_eval(m, 2.0 - 1.5, -1.5, -1.5, kW, kL);
  EXPECT_NEAR(rev.ids, -fwd.ids, std::fabs(fwd.ids) * 1e-9);
}

TEST(MosModel, PmosSignedConventions) {
  const auto m = pmos_card();
  // PMOS with source at 5V, gate at 3V, drain at 2V: vgs=-2, vds=-3, on.
  const auto e = mos_eval_signed(m, -2.0, -3.0, 0.0, kW, kL);
  EXPECT_LT(e.ids, 0.0);  // current flows out of the drain terminal
  EXPECT_GT(e.gm, 0.0);
  EXPECT_GT(e.gds, 0.0);
}

TEST(MosModel, CurrentScalesWithWidth) {
  const auto m = nmos_card();
  const auto e1 = mos_eval(m, 2.0, 3.0, 0.0, kW, kL);
  const auto e2 = mos_eval(m, 2.0, 3.0, 0.0, 2.0 * kW, kL);
  EXPECT_NEAR(e2.ids / e1.ids, 2.0, 1e-6);
}

TEST(MosModel, CurrentContinuousAcrossVdsat) {
  const auto m = nmos_card();
  const double vgs = 2.0;
  const double vdsat = vgs - mos_eval(m, vgs, 5.0, 0.0, kW, kL).vth;
  const auto lo = mos_eval(m, vgs, vdsat - 1e-7, 0.0, kW, kL);
  const auto hi = mos_eval(m, vgs, vdsat + 1e-7, 0.0, kW, kL);
  EXPECT_NEAR(lo.ids, hi.ids, std::fabs(hi.ids) * 1e-4);
}

TEST(MosModel, MeyerCapsByRegion) {
  const auto m = nmos_card();
  const double cox_tot = m.cox() * kW * m.leff(kL);
  const auto sat = mos_eval(m, 2.0, 3.0, 0.0, kW, kL);
  EXPECT_NEAR(sat.cgs - m.cgso * kW, (2.0 / 3.0) * cox_tot, cox_tot * 1e-6);
  const auto cut = mos_eval(m, 0.0, 3.0, 0.0, kW, kL);
  EXPECT_NEAR(cut.cgb, cox_tot + m.cgbo * kL, cox_tot * 1e-6);
  const auto tri = mos_eval(m, 4.0, 0.2, 0.0, kW, kL);
  EXPECT_NEAR(tri.cgs - m.cgso * kW, 0.5 * cox_tot, cox_tot * 1e-6);
  EXPECT_NEAR(tri.cgd - m.cgdo * kW, 0.5 * cox_tot, cox_tot * 1e-6);
}

TEST(MosModel, JunctionCapsShrinkWithReverseBias) {
  const auto m = nmos_card();
  const double ad = 3.0 * kL * kW, pd = 2.0 * (3.0 * kL + kW);
  const auto lo = mos_eval(m, 2.0, 1.0, 0.0, kW, kL, ad, ad, pd, pd);
  const auto hi = mos_eval(m, 2.0, 4.0, 0.0, kW, kL, ad, ad, pd, pd);
  EXPECT_GT(lo.cdb, hi.cdb);
  EXPECT_GT(lo.cdb, 0.0);
}

TEST(MosModel, Level3ThetaReducesCurrent) {
  auto m = nmos_card();
  const auto base = mos_eval(m, 3.0, 4.0, 0.0, kW, kL);
  m.level = 3;
  m.theta = 0.2;
  const auto degraded = mos_eval(m, 3.0, 4.0, 0.0, kW, kL);
  EXPECT_LT(degraded.ids, base.ids);
  EXPECT_GT(degraded.ids, 0.0);
}

TEST(MosModel, Level3VmaxLowersVdsat) {
  auto m = nmos_card();
  m.level = 3;
  const auto no_vsat = mos_eval(m, 3.0, 4.0, 0.0, kW, kL);
  m.vmax = 5e4;
  const auto vsat = mos_eval(m, 3.0, 4.0, 0.0, kW, kL);
  EXPECT_LT(vsat.vdsat, no_vsat.vdsat);
  EXPECT_LT(vsat.ids, no_vsat.ids);
}

TEST(MosModel, Level2MobilityDegradation) {
  auto m = nmos_card();
  const auto base = mos_eval(m, 4.0, 4.5, 0.0, kW, kL);
  m.level = 2;
  m.uexp = 0.3;
  m.ucrit = 1e4;
  const auto degraded = mos_eval(m, 4.0, 4.5, 0.0, kW, kL);
  EXPECT_LE(degraded.ids, base.ids);
}

TEST(MosModel, ThrowsOnNonPositiveGeometry) {
  EXPECT_THROW(mos_eval(nmos_card(), 2.0, 3.0, 0.0, 0.0, kL), NumericError);
  EXPECT_THROW(mos_eval(nmos_card(), 2.0, 3.0, 0.0, kW, -1e-6), NumericError);
}

TEST(MosModel, KpDerivedFromMobilityWhenAbsent) {
  auto m = nmos_card();
  const double kp_explicit = m.kp;
  m.kp = 0.0;
  m.u0 = kp_explicit / m.cox() * 1e4;  // cm^2/Vs that reproduces kp
  const auto e = mos_eval(m, 2.0, 3.0, 0.0, kW, kL);
  auto m2 = nmos_card();
  const auto want = mos_eval(m2, 2.0, 3.0, 0.0, kW, kL);
  EXPECT_NEAR(e.ids, want.ids, want.ids * 1e-6);
}

}  // namespace
}  // namespace ape::spice
