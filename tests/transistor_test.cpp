#include "src/estimator/transistor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/error.h"

namespace ape::est {
namespace {

using spice::MosType;

class TransistorEstimatorTest : public ::testing::Test {
protected:
  Process proc_ = Process::default_1u2();
  TransistorEstimator xe_{proc_};
};

TEST_F(TransistorEstimatorTest, GmIdSizingHitsTargets) {
  const double gm = 100e-6, id = 10e-6;
  const TransistorDesign d = xe_.size_for_gm_id(MosType::Nmos, gm, id);
  EXPECT_NEAR(d.gm, gm, gm * 0.01);
  EXPECT_NEAR(d.id, id, id * 0.01);
  EXPECT_GE(d.w, proc_.wmin);
  EXPECT_GE(d.l, proc_.lmin);
}

TEST_F(TransistorEstimatorTest, GmIdMatchesPaperClosedForm) {
  // The paper's eq. 2 seed: W/Leff = gm^2 / (2 KP Id). The refined size
  // should stay close for a LEVEL 1 card with zero body bias.
  const double gm = 200e-6, id = 20e-6;
  const TransistorDesign d = xe_.size_for_gm_id(MosType::Nmos, gm, id, 2.5, 0.0);
  const double seed_ratio = gm * gm / (2.0 * proc_.nmos.kp * id);
  EXPECT_NEAR(d.w / proc_.nmos.leff(d.l), seed_ratio, seed_ratio * 0.1);
}

TEST_F(TransistorEstimatorTest, PmosSizingWorks) {
  const TransistorDesign d = xe_.size_for_gm_id(MosType::Pmos, 50e-6, 5e-6);
  EXPECT_EQ(d.type, MosType::Pmos);
  EXPECT_NEAR(d.gm, 50e-6, 50e-6 * 0.01);
  // PMOS kp is ~3x lower: wider device than the NMOS equivalent.
  const TransistorDesign n = xe_.size_for_gm_id(MosType::Nmos, 50e-6, 5e-6);
  EXPECT_GT(d.w, n.w);
}

TEST_F(TransistorEstimatorTest, SubthresholdRequestThrows) {
  // gm/Id = 100 -> Vov = 20 mV: not a strong-inversion design.
  EXPECT_THROW(xe_.size_for_gm_id(MosType::Nmos, 100e-6, 1e-6), SpecError);
}

TEST_F(TransistorEstimatorTest, SupplyLimitThrows) {
  // Vov = 2 Id / gm = 8 V exceeds the 5 V supply.
  EXPECT_THROW(xe_.size_for_gm_id(MosType::Nmos, 25e-6, 100e-6), SpecError);
}

TEST_F(TransistorEstimatorTest, NarrowSeedTradesLengthForWidth) {
  // Tiny gm at tiny current needs W below Wmin; the estimator must
  // stretch L instead and still hit gm.
  const double gm = 2e-6, id = 0.2e-6;
  const TransistorDesign d = xe_.size_for_gm_id(MosType::Nmos, gm, id);
  EXPECT_LT(d.w, 1.5 * proc_.wmin);
  EXPECT_GT(d.l, 2.0 * proc_.lmin);
  EXPECT_NEAR(d.gm, gm, gm * 0.05);
}

TEST_F(TransistorEstimatorTest, IdVovSizingHitsOverdrive) {
  const TransistorDesign d =
      xe_.size_for_id_vov(MosType::Nmos, 50e-6, 0.3, 2.5, 0.0);
  EXPECT_NEAR(d.vgs - d.vth, 0.3, 0.01);
  EXPECT_NEAR(d.id, 50e-6, 50e-6 * 0.01);
}

TEST_F(TransistorEstimatorTest, IdVovRespectsBodyEffect) {
  const TransistorDesign d0 =
      xe_.size_for_id_vov(MosType::Nmos, 50e-6, 0.3, 2.5, 0.0);
  const TransistorDesign db =
      xe_.size_for_id_vov(MosType::Nmos, 50e-6, 0.3, 2.5, -2.0);
  // Same overdrive target, but body effect raises Vth, hence Vgs.
  EXPECT_GT(db.vgs, d0.vgs + 0.2);
  EXPECT_NEAR(db.vgs - db.vth, 0.3, 0.02);
}

TEST_F(TransistorEstimatorTest, VgsForIdInvertsTheModel) {
  const double vgs = xe_.vgs_for_id(MosType::Nmos, 10e-6, 2.4e-6, 30e-6, 2.5);
  const auto e = spice::mos_eval(proc_.nmos, vgs, 2.5, 0.0, 10e-6, 2.4e-6);
  EXPECT_NEAR(e.ids, 30e-6, 30e-6 * 1e-3);
}

TEST_F(TransistorEstimatorTest, VgsForIdThrowsWhenUnreachable) {
  // 1 A through a minimum device is not going to happen.
  EXPECT_THROW(xe_.vgs_for_id(MosType::Nmos, proc_.wmin, 2.4e-6, 1.0, 2.5),
               SpecError);
}

TEST_F(TransistorEstimatorTest, EvaluateRejectsSubMinimumGeometry) {
  EXPECT_THROW(xe_.evaluate(MosType::Nmos, 0.5e-6, 2.4e-6, 2.0, 2.5), SpecError);
  EXPECT_THROW(xe_.evaluate(MosType::Nmos, 10e-6, 0.5e-6, 2.0, 2.5), SpecError);
}

TEST_F(TransistorEstimatorTest, Level3CardSizesViaRefinement) {
  // The closed-form seed is LEVEL 1; the refinement must absorb the
  // LEVEL 3 mobility degradation and still deliver the gm target.
  const Process p3 = Process::default_1u2_level3();
  const TransistorEstimator xe3(p3);
  const TransistorDesign d = xe3.size_for_gm_id(MosType::Nmos, 100e-6, 10e-6);
  EXPECT_NEAR(d.gm, 100e-6, 100e-6 * 0.01);
  // Mobility degradation costs width relative to LEVEL 1.
  const TransistorDesign d1 = xe_.size_for_gm_id(MosType::Nmos, 100e-6, 10e-6);
  EXPECT_GT(d.w, d1.w);
}

TEST_F(TransistorEstimatorTest, GateAreaAndCapsPopulated) {
  const TransistorDesign d = xe_.size_for_gm_id(MosType::Nmos, 100e-6, 10e-6);
  EXPECT_GT(d.gate_area(), 0.0);
  EXPECT_GT(d.cgs, 0.0);
  EXPECT_GT(d.cdb, 0.0);
  EXPECT_GT(d.cg_total(), d.cgs);
  EXPECT_GT(d.self_gain(), 10.0);
}

/// Property sweep: gm/Id inversion is exact across a broad design space.
class GmIdSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GmIdSweep, RoundTripsThroughTheModel) {
  const Process proc = Process::default_1u2();
  const TransistorEstimator xe(proc);
  const auto [gm_over_id, id] = GetParam();
  const double gm = gm_over_id * id;
  // Skip infeasible corners the estimator is specified to reject.
  if (2.0 * id / gm < 0.05) GTEST_SKIP();
  const TransistorDesign d = xe.size_for_gm_id(spice::MosType::Nmos, gm, id);
  const auto e = spice::mos_eval(proc.nmos, d.vgs, d.vds, d.vbs, d.w, d.l);
  EXPECT_NEAR(e.gm, gm, gm * 0.02);
  EXPECT_NEAR(e.ids, id, id * 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, GmIdSweep,
    ::testing::Combine(::testing::Values(2.0, 5.0, 8.0, 12.0),
                       ::testing::Values(1e-6, 10e-6, 100e-6, 1e-3)));

}  // namespace
}  // namespace ape::est
