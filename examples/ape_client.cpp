/// \file ape_client.cpp
/// Command-line client for the ape_serve daemon: build one request from
/// flags (or pass raw JSON), print the response payload to stdout.
///
///   ape_client --socket /tmp/ape.sock --op ping
///   ape_client --socket /tmp/ape.sock --op estimate --gain 5000
///   ape_client --socket /tmp/ape.sock --op synthesize --iters 400
///   ape_client --socket /tmp/ape.sock --json '{"op":"stats"}'
///
/// Exit status: 0 when the response status is "ok", 2 when "shed",
/// 1 on "error" or any transport failure — so shell scripts can
/// distinguish a load-shedding daemon from a broken one.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/serve/client.h"
#include "src/util/error.h"
#include "src/util/json.h"

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ape_client: %s\n", msg.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string op = "ping";
  std::string id;
  std::string raw_json;
  std::string netlist_path;
  double timeout_ms = 0.0;
  int iterations = 0;
  uint64_t seed = 0;
  int repeat = 1;
  std::string corners;
  int mc_samples = 0;
  ape::serve::ConnectOptions connect;
  ape::est::OpAmpSpec spec;
  bool spec_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--socket") {
      socket_path = next();
    } else if (arg == "--op") {
      op = next();
    } else if (arg == "--id") {
      id = next();
    } else if (arg == "--json") {
      raw_json = next();
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atof(next().c_str());
    } else if (arg == "--iters") {
      iterations = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--repeat") {
      repeat = std::atoi(next().c_str());
    } else if (arg == "--gain") {
      spec.gain = std::atof(next().c_str());
      spec_set = true;
    } else if (arg == "--ugf") {
      spec.ugf_hz = std::atof(next().c_str());
      spec_set = true;
    } else if (arg == "--ibias") {
      spec.ibias = std::atof(next().c_str());
      spec_set = true;
    } else if (arg == "--cload") {
      spec.cload = std::atof(next().c_str());
      spec_set = true;
    } else if (arg == "--netlist") {
      netlist_path = next();
    } else if (arg == "--corners") {
      corners = next();
    } else if (arg == "--mc-samples") {
      mc_samples = std::atoi(next().c_str());
    } else if (arg == "--connect-retries") {
      connect.retries = std::atoi(next().c_str());
    } else if (arg == "--connect-backoff-ms") {
      connect.backoff_ms = std::atoi(next().c_str());
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ape_client --socket PATH [--op ping|estimate|synthesize|"
          "simulate|corner_sweep|stats]\n"
          "                  [--id ID] [--timeout-ms T] [--iters N] [--seed S]\n"
          "                  [--gain X] [--ugf HZ] [--ibias A] [--cload F]\n"
          "                  [--corners SEL] [--mc-samples N]\n"
          "                  [--netlist FILE] [--json REQUEST] [--repeat N]\n"
          "                  [--connect-retries N] [--connect-backoff-ms MS]\n"
          "\n"
          "--connect-retries retries a refused / absent socket with bounded\n"
          "exponential backoff (first wait --connect-backoff-ms, doubling,\n"
          "capped at 2 s) — rides out a daemon that is still starting up.\n");
      return 0;
    } else {
      die("unknown option '" + arg + "' (see --help)");
    }
  }
  if (socket_path.empty()) die("--socket is required (see --help)");

  std::string request = raw_json;
  if (request.empty()) {
    request = "{\"op\":\"" + op + "\"";
    if (!id.empty()) request += ",\"id\":\"" + ape::json::escape(id) + "\"";
    if (timeout_ms > 0.0) {
      char buf[48];
      std::snprintf(buf, sizeof buf, ",\"timeout_ms\":%.17g", timeout_ms);
      request += buf;
    }
    if (iterations > 0) request += ",\"iterations\":" + std::to_string(iterations);
    if (seed != 0) request += ",\"seed\":" + std::to_string(seed);
    if (spec_set) request += ",\"spec\":" + ape::serve::spec_to_json(spec);
    if (!corners.empty()) {
      request += ",\"corners\":\"" + ape::json::escape(corners) + "\"";
    }
    if (mc_samples > 0) request += ",\"mc_samples\":" + std::to_string(mc_samples);
    if (!netlist_path.empty()) {
      std::ifstream in(netlist_path);
      if (!in) die("cannot read netlist '" + netlist_path + "'");
      std::ostringstream ss;
      ss << in.rdbuf();
      request += ",\"netlist\":\"" + ape::json::escape(ss.str()) + "\"";
    }
    request += "}";
  }

  try {
    ape::serve::Client client(socket_path, connect);
    int exit_code = 0;
    for (int r = 0; r < repeat; ++r) {
      const std::string response = client.call(request);
      std::printf("%s\n", response.c_str());
      const ape::json::Value doc = ape::json::parse(response);
      const ape::json::Value* status = doc.find("status");
      const std::string s =
          status != nullptr ? status->as_string() : std::string("error");
      if (s == "shed") {
        exit_code = std::max(exit_code, 2);
      } else if (s != "ok") {
        exit_code = std::max(exit_code, 1);
      }
    }
    return exit_code;
  } catch (const ape::Error& e) {
    die(e.what());
  }
}
