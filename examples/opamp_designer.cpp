/// Opamp designer: full level-3 flow for a two-stage Miller opamp.
///
///   opamp_designer [gain] [ugf_mhz] [ibias_uA] [cl_pF] [wilson] [buffer]
///
/// Prints the sized devices, the estimated vs simulated performance
/// report (the paper's Table 3 row for this design), and the complete
/// SPICE netlist of the open-loop verification testbench.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/estimator/opamp.h"
#include "src/util/error.h"
#include "src/estimator/verify.h"

using namespace ape::est;

int main(int argc, char** argv) {
  OpAmpSpec spec;
  spec.gain = argc > 1 ? std::atof(argv[1]) : 200.0;
  spec.ugf_hz = (argc > 2 ? std::atof(argv[2]) : 5.0) * 1e6;
  spec.ibias = (argc > 3 ? std::atof(argv[3]) : 10.0) * 1e-6;
  spec.cload = (argc > 4 ? std::atof(argv[4]) : 10.0) * 1e-12;
  spec.source = (argc > 5 && std::strcmp(argv[5], "wilson") == 0)
                    ? CurrentSourceKind::Wilson
                    : CurrentSourceKind::Mirror;
  spec.buffer = argc > 6 && std::strcmp(argv[6], "buffer") == 0;
  if (spec.buffer) spec.zout = 1e3;

  const Process proc = Process::default_1u2();
  std::printf("spec: gain>=%.0f, UGF>=%.2f MHz, Ibias=%.1f uA, CL=%.1f pF, %s tail%s\n\n",
              spec.gain, spec.ugf_hz / 1e6, spec.ibias * 1e6, spec.cload * 1e12,
              spec.source == CurrentSourceKind::Wilson ? "Wilson" : "mirror",
              spec.buffer ? ", buffered" : "");

  const OpAmpEstimator designer(proc);
  OpAmpDesign d;
  try {
    d = designer.estimate(spec);
  } catch (const ape::SpecError& e) {
    std::printf("infeasible specification: %s\n", e.what());
    return 1;
  }

  std::printf("%-8s %-5s %10s %10s %10s %10s\n", "role", "type", "W (um)",
              "L (um)", "Id (uA)", "gm (uS)");
  for (size_t i = 0; i < d.transistors.size(); ++i) {
    const TransistorDesign& t = d.transistors[i];
    std::printf("%-8s %-5s %10.2f %10.2f %10.3f %10.2f\n", d.roles[i].c_str(),
                t.type == ape::spice::MosType::Nmos ? "NMOS" : "PMOS",
                t.w * 1e6, t.l * 1e6, t.id * 1e6, t.gm * 1e6);
  }
  std::printf("compensation: Cc=%.2f pF  Rz=%.0f ohm\n\n", d.perf.cc * 1e12,
              d.perf.rz);

  const OpAmpSimReport sim = simulate_opamp(d, proc);
  std::printf("%-14s %12s %12s\n", "quantity", "APE estimate", "simulated");
  std::printf("%-14s %12.0f %12.0f\n", "DC gain", d.perf.gain, sim.gain);
  std::printf("%-14s %12.3f %12.3f\n", "UGF (MHz)", d.perf.ugf_hz / 1e6,
              sim.ugf_hz.value_or(0.0) / 1e6);
  std::printf("%-14s %12.1f %12.1f\n", "phase mgn (d)", d.perf.phase_margin,
              sim.phase_margin.value_or(0.0));
  std::printf("%-14s %12.3f %12.3f\n", "power (mW)", d.perf.dc_power * 1e3,
              sim.power * 1e3);
  std::printf("%-14s %12.2f %12.2f\n", "Itail (uA)", d.perf.ibias * 1e6,
              sim.ibias * 1e6);
  std::printf("%-14s %12.1f %12.1f\n", "Zout (kohm)", d.perf.zout / 1e3,
              sim.zout / 1e3);
  std::printf("%-14s %12.1f %12s\n", "CMRR (dB)", d.perf.cmrr_db,
              sim.cmrr_db ? "see below" : "-");
  if (sim.cmrr_db) std::printf("%-14s %12s %12.1f\n", "", "", *sim.cmrr_db);
  std::printf("%-14s %12.2f %12.2f\n", "slew (V/us)", d.perf.slew / 1e6,
              sim.slew / 1e6);
  std::printf("%-14s %12.1f %12s\n", "area (um2)", d.perf.gate_area * 1e12,
              "(same)");

  std::printf("\nopen-loop testbench netlist:\n%s",
              d.testbench(proc, OpAmpTb::OpenLoop).netlist.c_str());
  return 0;
}
