/// End-to-end synthesis flow: the paper's headline methodology (Figure 1's
/// "estimation to guide synthesis" loop) on one opamp specification.
///
///   1. try the annealing sizer blind (ASTRX/OBLX stand-alone, Table 1),
///   2. run APE for an initial design point (0.1-1 ms),
///   3. re-run the annealer seeded at the APE point with +/-20% intervals
///      (Table 4),
///   4. verify both outcomes on the MNA circuit simulator.
///
///   synthesis_flow [gain] [ugf_mhz] [ibias_uA] [blind_iters] [seeded_iters]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/estimator/opamp.h"
#include "src/estimator/verify.h"
#include "src/synth/astrx.h"

using namespace ape;
using namespace ape::est;

int main(int argc, char** argv) {
  OpAmpSpec spec;
  spec.gain = argc > 1 ? std::atof(argv[1]) : 200.0;
  spec.ugf_hz = (argc > 2 ? std::atof(argv[2]) : 5.0) * 1e6;
  spec.ibias = (argc > 3 ? std::atof(argv[3]) : 10.0) * 1e-6;
  spec.cload = 10e-12;
  spec.area_budget = 20000e-12;
  const int blind_iters = argc > 4 ? std::atoi(argv[4]) : 30000;
  const int seeded_iters = argc > 5 ? std::atoi(argv[5]) : 8000;

  const Process proc = Process::default_1u2();
  std::printf("target: gain>=%.0f, UGF>=%.2f MHz, Ibias=%.1f uA, CL=%.0f pF\n\n",
              spec.gain, spec.ugf_hz / 1e6, spec.ibias * 1e6, spec.cload * 1e12);

  // --- 1. Blind annealing (no initial point) -------------------------------
  std::printf("[1] annealing sizer, stand-alone (%d iterations)...\n", blind_iters);
  synth::SynthesisOptions blind;
  blind.use_ape_seed = false;
  blind.anneal.iterations = blind_iters;
  const auto rb = synth::synthesize_opamp(proc, spec, blind);
  std::printf("    verdict: %s  (sim gain=%.0f, UGF=%.2f MHz, %.2f s)\n\n",
              rb.comment.c_str(), rb.sim.gain,
              rb.sim.ugf_hz.value_or(0.0) / 1e6, rb.cpu_seconds);

  // --- 2. APE estimate ------------------------------------------------------
  std::printf("[2] APE hierarchical estimation...\n");
  const auto t0 = std::chrono::steady_clock::now();
  const OpAmpDesign seed = OpAmpEstimator(proc).estimate(spec);
  const double t_ape =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("    sized in %.3f ms: gain=%.0f, UGF=%.2f MHz, area=%.0f um2, power=%.2f mW\n\n",
              t_ape * 1e3, seed.perf.gain, seed.perf.ugf_hz / 1e6,
              seed.perf.gate_area * 1e12, seed.perf.dc_power * 1e3);

  // --- 3. Seeded annealing --------------------------------------------------
  std::printf("[3] annealing sizer seeded at the APE point, +/-20%% (%d iterations)...\n",
              seeded_iters);
  synth::SynthesisOptions seeded;
  seeded.use_ape_seed = true;
  seeded.interval_frac = 0.2;
  seeded.anneal.iterations = seeded_iters;
  const auto rs = synth::synthesize_opamp(proc, spec, seeded);
  std::printf("    verdict: %s  (sim gain=%.0f, UGF=%.2f MHz, area=%.0f um2, %.2f s)\n\n",
              rs.comment.c_str(), rs.sim.gain,
              rs.sim.ugf_hz.value_or(0.0) / 1e6,
              rs.design.perf.gate_area * 1e12, rs.cpu_seconds);

  // --- 4. The paper's punchline ---------------------------------------------
  std::printf("summary\n");
  std::printf("  blind search : %-14s %.2f s\n", rb.comment.c_str(), rb.cpu_seconds);
  std::printf("  APE estimate : %.3f ms (negligible)\n", t_ape * 1e3);
  std::printf("  APE + search : %-14s %.2f s (%.0f%% of the blind time)\n",
              rs.comment.c_str(), rs.cpu_seconds,
              100.0 * rs.cpu_seconds / std::max(rb.cpu_seconds, 1e-9));
  return rs.meets_spec ? 0 : 1;
}
