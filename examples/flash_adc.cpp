/// Flash ADC: level-4 flow for the paper's 4-bit flash converter (Table 5
/// adc row, Figure 3e). Sizes the ladder + 15 comparators, then runs a
/// transient conversion of a slow input ramp through the full
/// transistor-level converter and decodes the thermometer output.
///
///   flash_adc [bits] [delay_budget_us]   (defaults 4, 5)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/estimator/modules.h"
#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"

using namespace ape;
using namespace ape::est;

int main(int argc, char** argv) {
  const int bits = argc > 1 ? std::atoi(argv[1]) : 4;
  const double delay_us = argc > 2 ? std::atof(argv[2]) : 5.0;
  const Process proc = Process::default_1u2();

  ModuleSpec spec;
  spec.kind = ModuleKind::FlashAdc;
  spec.order = bits;
  spec.delay_s = delay_us * 1e-6;
  const ModuleEstimator designer(proc);
  const ModuleDesign d = designer.estimate(spec);

  const int n_comp = (1 << bits) - 1;
  std::printf("%d-bit flash ADC: %d comparators, ladder Rseg=%.0f ohm\n", bits,
              n_comp, d.passives[0].value);
  std::printf("comparator: UGF=%.2f MHz, gain=%.0f, area=%.1f um2 each\n",
              d.opamps[0].perf.ugf_hz / 1e6, d.opamps[0].perf.gain,
              d.opamps[0].perf.gate_area * 1e12);
  std::printf("estimates: delay=%.2f us (budget %.2f), total area=%.0f um2, power=%.2f mW\n\n",
              d.perf.delay_s * 1e6, delay_us, d.perf.gate_area * 1e12,
              d.perf.dc_power * 1e3);

  // Transient conversion demo: step the input through a few codes and read
  // the thermometer outputs of the full transistor-level converter.
  const Testbench tb = d.testbench(proc);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);
  auto& vin = ckt.find_as<spice::VSource>("Vin");

  std::printf("static transfer check (DC sweep of the full converter):\n");
  std::printf("%10s | thermometer code (comparator outputs, LSB first) | code\n",
              "Vin (V)");
  const double lsb = proc.vdd / (1 << bits);
  for (int step = 0; step < 5; ++step) {
    const double v = (2.0 + step * 2.7) * lsb;  // a few scattered codes
    vin.wave().dc = v;
    vin.wave().kind = spice::Waveform::Kind::Dc;
    const auto sol = spice::dc_operating_point(ckt);
    int code = 0;
    std::string therm;
    for (int k = 1; k <= n_comp; ++k) {
      const std::string node =
          (k == (n_comp + 1) / 2) ? "out" : "cmp" + std::to_string(k);
      const bool high = spice::node_voltage(ckt, sol, node) > 0.5 * proc.vdd;
      therm += high ? '1' : '0';
      if (high) ++code;
    }
    std::printf("%10.3f | %-47s | %d\n", v, therm.c_str(), code);
  }

  std::printf("\nconversion delay (transient, half-LSB overdrive on the mid tap):\n");
  {
    spice::Circuit ckt2 = spice::parse_netlist(tb.netlist);
    const double window = 3.0 * spec.delay_s + 2e-6;
    const auto tr = spice::transient(ckt2, window / 600.0, 1e-6 + window);
    const auto tc =
        spice::crossing_time(tr, ckt2.find_node("out"), 0.5 * proc.vdd);
    if (tc) {
      std::printf("  measured: %.2f us (estimate %.2f us, budget %.2f us)\n",
                  (*tc - 1e-6) * 1e6, d.perf.delay_s * 1e6, delay_us);
    } else {
      std::printf("  comparator did not settle inside the window\n");
    }
  }
  return 0;
}
