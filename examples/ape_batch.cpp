/// ape_batch — batch estimation / synthesis over a spec file.
///
/// The service-shaped front end of the batch runtime (DESIGN.md §7):
/// reads opamp specs (one per line, `key=value` tokens), fans them
/// across the runtime::Executor pool with a shared estimate cache, and
/// emits per-job JSON plus aggregate throughput.
///
///   ape_batch                           # built-in Table-1 spec set
///   ape_batch --threads 8 specs.txt     # pooled synthesis batch
///   ape_batch --estimate-only specs.txt # APE estimates only (no anneal)
///   ape_batch --timeout-ms 500 --retries 2 specs.txt   # supervised run
///   ape_batch --checkpoint run.ckpt specs.txt          # checkpointed run
///   ape_batch --resume run.ckpt --checkpoint run.ckpt specs.txt
///   ape_batch --corners all --mc-samples 64 --yield    # PVT + MC yield
///
/// Corner sweeps (DESIGN.md §12): any of --corners/--mc-samples/--yield
/// switches to sweep mode — each spec's nominal design (the APE
/// estimate by default; --synthesize for a full supervised synthesis
/// pass, which also honours --timeout-ms/--retries/--checkpoint/
/// --resume) is evaluated across the selected PVT corners and, with
/// --mc-samples N, across N Pelgrom mismatch draws per corner, and the
/// per-job + pooled YieldReports (pass rates, worst corner, Wilson CI)
/// are emitted. --yield-weight W adds the worst-corner cost term to the
/// annealer in any synthesis mode.
///
/// Synthesis batches run under the supervised runtime (DESIGN.md §10):
/// --timeout-ms bounds each job's wall clock, --retries configures the
/// recovery ladder (N plain retries + 1 relaxed-tolerance retry + the
/// APE estimate-only fallback), --quarantine N trips the circuit breaker
/// after N consecutive failures of the same spec fingerprint, and
/// --checkpoint/--resume persist and restore finished jobs bit-exactly.
///
/// Spec file grammar (one spec per line, '#' starts a comment):
///
///   name=oa0 gain=200 ugf=1.3e6 ibias=1e-6 cload=10e-12
///   name=oa1 gain=500 source=wilson buffer=1 zout=1e3 area=5000e-12
///
/// Unknown keys are rejected; omitted keys keep OpAmpSpec defaults.
/// Output is a single JSON document on stdout (or --out FILE):
/// {"config":{...},"jobs":[...],"aggregate":{...}}.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/runtime/batch.h"
#include "src/runtime/cache.h"
#include "src/runtime/supervisor.h"
#include "src/runtime/sweep.h"
#include "src/stat/corners.h"
#include "src/util/error.h"
#include "src/util/signal.h"

using namespace ape;

namespace {

struct NamedSpec {
  std::string name;
  est::OpAmpSpec spec;
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ape_batch: %s\n", msg.c_str());
  std::exit(2);
}

/// Parse one `key=value` token into \p out.
void apply_token(const std::string& tok, int line_no, NamedSpec& out) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos || eq == 0) {
    die("line " + std::to_string(line_no) + ": expected key=value, got '" +
        tok + "'");
  }
  const std::string key = tok.substr(0, eq);
  const std::string val = tok.substr(eq + 1);
  auto num = [&] {
    try {
      size_t used = 0;
      const double v = std::stod(val, &used);
      if (used != val.size()) throw std::invalid_argument(val);
      return v;
    } catch (const std::exception&) {
      die("line " + std::to_string(line_no) + ": bad number '" + val +
          "' for key '" + key + "'");
    }
  };
  if (key == "name") {
    out.name = val;
  } else if (key == "gain") {
    out.spec.gain = num();
  } else if (key == "ugf") {
    out.spec.ugf_hz = num();
  } else if (key == "ibias") {
    out.spec.ibias = num();
  } else if (key == "cload") {
    out.spec.cload = num();
  } else if (key == "zout") {
    out.spec.zout = num();
  } else if (key == "area") {
    out.spec.area_budget = num();
  } else if (key == "buffer") {
    out.spec.buffer = num() != 0.0;
  } else if (key == "source") {
    if (val == "mirror") {
      out.spec.source = est::CurrentSourceKind::Mirror;
    } else if (val == "wilson") {
      out.spec.source = est::CurrentSourceKind::Wilson;
    } else {
      die("line " + std::to_string(line_no) +
          ": source must be mirror|wilson, got '" + val + "'");
    }
  } else {
    die("line " + std::to_string(line_no) + ": unknown key '" + key + "'");
  }
}

std::vector<NamedSpec> read_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open spec file '" + path + "'");
  std::vector<NamedSpec> specs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string tok;
    NamedSpec ns;
    bool any = false;
    while (tokens >> tok) {
      apply_token(tok, line_no, ns);
      any = true;
    }
    if (!any) continue;
    if (ns.name.empty()) ns.name = "job" + std::to_string(specs.size());
    specs.push_back(std::move(ns));
  }
  if (specs.empty()) die("spec file '" + path + "' contains no specs");
  return specs;
}

std::vector<NamedSpec> builtin_specs() {
  std::vector<NamedSpec> specs;
  for (const auto& row : bench::table1_specs()) {
    specs.push_back({row.name, bench::to_spec(row)});
  }
  return specs;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void put_kv(std::string& json, const char* key, double v, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.17g", key, v);
  json += buf;
  if (comma) json += ',';
}

}  // namespace

int main(int argc, char** argv) {
  runtime::BatchOptions options;
  options.synth.use_ape_seed = true;
  options.synth.anneal.iterations = 2000;
  bool estimate_only = false;
  std::string spec_path;
  std::string out_path;
  double timeout_ms = 0.0;
  int retries = 0;
  int quarantine_threshold = 0;  // 0 = quarantine disabled
  std::string checkpoint_path;
  int checkpoint_every = 1;
  std::string resume_path;
  std::string corners_sel;       // --corners (empty = no sweep)
  int mc_samples = 0;            // --mc-samples
  bool yield_flag = false;       // --yield (sweep with default corners)
  bool sweep_synthesize = false; // --synthesize (sweep nominal pass)
  double yield_weight = 0.0;     // --yield-weight (annealer corner term)

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--threads") {
      options.threads = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--iters") {
      options.synth.anneal.iterations = std::atoi(next().c_str());
    } else if (arg == "--restarts") {
      options.synth.restarts = std::atoi(next().c_str());
    } else if (arg == "--blind") {
      options.synth.use_ape_seed = false;
    } else if (arg == "--estimate-only") {
      estimate_only = true;
    } else if (arg == "--timeout-ms") {
      timeout_ms = std::atof(next().c_str());
    } else if (arg == "--retries") {
      retries = std::atoi(next().c_str());
    } else if (arg == "--quarantine") {
      quarantine_threshold = std::atoi(next().c_str());
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = std::atoi(next().c_str());
    } else if (arg == "--resume") {
      resume_path = next();
    } else if (arg == "--corners") {
      corners_sel = next();
    } else if (arg == "--mc-samples") {
      mc_samples = std::atoi(next().c_str());
    } else if (arg == "--yield") {
      yield_flag = true;
    } else if (arg == "--synthesize") {
      sweep_synthesize = true;
    } else if (arg == "--yield-weight") {
      yield_weight = std::atof(next().c_str());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ape_batch [--threads N] [--seed S] [--iters N]\n"
          "                 [--restarts M] [--blind] [--estimate-only]\n"
          "                 [--timeout-ms T] [--retries N] [--quarantine N]\n"
          "                 [--checkpoint FILE] [--checkpoint-every N]\n"
          "                 [--resume FILE]\n"
          "                 [--corners all|tm,ws,...] [--mc-samples N]\n"
          "                 [--yield] [--synthesize] [--yield-weight W]\n"
          "                 [--out FILE] [specfile]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option '" + arg + "' (see --help)");
    } else {
      spec_path = arg;
    }
  }
  if (estimate_only &&
      (!checkpoint_path.empty() || !resume_path.empty())) {
    die("--checkpoint/--resume apply to synthesis batches only");
  }

  const std::vector<NamedSpec> named =
      spec_path.empty() ? builtin_specs() : read_spec_file(spec_path);
  std::vector<est::OpAmpSpec> specs;
  specs.reserve(named.size());
  for (const auto& ns : named) specs.push_back(ns.spec);

  const est::Process proc = est::Process::default_1u2();
  runtime::EstimateCache cache;
  options.cache = &cache;

  const bool sweep_mode = !corners_sel.empty() || mc_samples > 0 || yield_flag;
  stat::CornerSet corner_set;
  if (sweep_mode || yield_weight > 0.0) {
    try {
      corner_set =
          stat::CornerSet::parse(corners_sel.empty() ? "all" : corners_sel);
    } catch (const Error& e) {
      die(e.what());
    }
  }
  if (yield_weight > 0.0) {
    // Worst-corner cost term in the annealer (any synthesis mode).
    options.synth.yield_weight = yield_weight;
    options.synth.corner_procs = corner_set.realize(proc);
  }

  if (sweep_mode) {
    if (estimate_only && sweep_synthesize) {
      die("--estimate-only and --synthesize conflict");
    }
    if (!sweep_synthesize && (!checkpoint_path.empty() || !resume_path.empty())) {
      die("--checkpoint/--resume in sweep mode require --synthesize");
    }
    runtime::SweepOptions sw;
    sw.supervisor.batch = options;
    sw.supervisor.job_timeout_s = timeout_ms / 1000.0;
    if (retries > 0) {
      sw.supervisor.retry.plain_retries = retries;
      sw.supervisor.retry.numeric_recovery_retries = 1;
      sw.supervisor.retry.relaxed_retries = 1;
      sw.supervisor.retry.estimate_fallback = true;
    }
    runtime::QuarantineRegistry sweep_quarantine;
    if (quarantine_threshold > 0) {
      sw.supervisor.quarantine = &sweep_quarantine;
      sw.supervisor.quarantine_threshold = quarantine_threshold;
    }
    sw.supervisor.checkpoint_path = checkpoint_path;
    sw.supervisor.checkpoint_every = checkpoint_every > 0 ? checkpoint_every : 1;
    sw.supervisor.resume_path = resume_path;
    static CancelToken sweep_interrupt;
    util::install_cancel_on_signal(sweep_interrupt);
    sw.supervisor.cancel = &sweep_interrupt;
    sw.corners = corner_set;
    sw.mc_samples = mc_samples;
    sw.synthesize = sweep_synthesize;

    runtime::SweepResult r;
    try {
      r = mc_samples > 0 ? runtime::run_monte_carlo(proc, specs, sw)
                         : runtime::run_corner_sweep(proc, specs, sw);
    } catch (const Error& e) {
      die(e.what());
    }

    std::string json = "{\"config\":{";
    put_kv(json, "jobs", double(specs.size()));
    put_kv(json, "seed", double(options.seed));
    put_kv(json, "mc_samples", double(r.samples_per_corner));
    json += "\"corners\":\"" + json_escape(sw.corners.names()) + "\",";
    json += std::string("\"mode\":\"") +
            (sweep_synthesize ? "sweep-synthesize" : "sweep-estimate") +
            "\"},\n\"jobs\":[\n";
    for (size_t i = 0; i < r.jobs.size(); ++i) {
      const auto& j = r.jobs[i];
      json += "{\"name\":\"" + json_escape(named[i].name) + "\",";
      put_kv(json, "index", double(j.index));
      if (j.ok) {
        const auto ci = j.report.ci();
        json += "\"ok\":true,";
        put_kv(json, "yield", j.report.yield());
        put_kv(json, "ci_lo", ci.lo);
        put_kv(json, "ci_hi", ci.hi);
        put_kv(json, "samples", double(j.report.total.samples));
        put_kv(json, "passes", double(j.report.total.pass));
        json += "\"worst_corner\":\"" +
                json_escape(j.report.worst_corner_name()) + "\",";
        std::string feasible;
        for (uint8_t ok : j.corner_estimate_ok) feasible += ok ? '1' : '0';
        json += "\"corner_estimate_ok\":\"" + feasible + "\",";
        json += "\"report\":" + j.report.to_json();
      } else {
        json += "\"ok\":false,\"error\":\"" + json_escape(j.error) + "\"";
      }
      json += i + 1 < r.jobs.size() ? "},\n" : "}\n";
    }
    json += "],\n\"aggregate\":{";
    const auto ci = r.aggregate.ci();
    put_kv(json, "jobs", double(r.stats.jobs));
    put_kv(json, "failed", double(r.stats.failed));
    put_kv(json, "met_spec", double(r.stats.met_spec));
    put_kv(json, "threads", double(r.stats.threads));
    put_kv(json, "wall_seconds", r.stats.wall_seconds);
    put_kv(json, "jobs_per_second", r.stats.jobs_per_second);
    put_kv(json, "cache_hits", double(r.stats.cache.hits));
    put_kv(json, "cache_misses", double(r.stats.cache.misses));
    put_kv(json, "cache_hit_rate", r.stats.cache.hit_rate());
    put_kv(json, "yield", r.aggregate.yield());
    put_kv(json, "ci_lo", ci.lo);
    put_kv(json, "ci_hi", ci.hi);
    put_kv(json, "yield_samples", double(r.aggregate.total.samples));
    put_kv(json, "yield_passes", double(r.aggregate.total.pass));
    json += "\"worst_corner\":\"" +
            json_escape(r.aggregate.worst_corner_name()) + "\",";
    put_kv(json, "samples_per_corner", double(r.samples_per_corner));
    put_kv(json, "cancelled_jobs", double(r.supervision.cancelled_jobs));
    put_kv(json, "resumed_jobs", double(r.supervision.resumed_jobs), false);
    json += "}}\n";

    if (out_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::ofstream out(out_path);
      if (!out) die("cannot write '" + out_path + "'");
      out << json;
      std::fprintf(stderr,
                   "ape_batch: wrote %s (%d jobs x %zu corners x %d samples, "
                   "yield %.1f%%)\n",
                   out_path.c_str(), r.stats.jobs, sw.corners.size(),
                   r.samples_per_corner, 100.0 * r.aggregate.yield());
    }
    if (util::last_signal() != 0) return 130;
    return r.stats.failed == 0 ? 0 : 1;
  }

  std::string json = "{\"config\":{";
  put_kv(json, "jobs", double(specs.size()));
  put_kv(json, "seed", double(options.seed));
  put_kv(json, "iterations", double(options.synth.anneal.iterations));
  put_kv(json, "restarts", double(options.synth.restarts));
  json += std::string("\"mode\":\"") +
          (estimate_only ? "estimate" : "synthesize") + "\"},\n\"jobs\":[\n";

  runtime::BatchStats stats;
  runtime::SupervisionStats supervision;
  if (estimate_only) {
    const auto r = runtime::estimate_opamp_batch(proc, specs, options);
    stats = r.stats;
    for (size_t i = 0; i < r.jobs.size(); ++i) {
      const auto& j = r.jobs[i];
      json += "{\"name\":\"" + json_escape(named[i].name) + "\",";
      put_kv(json, "index", double(j.index));
      if (j.ok) {
        json += "\"ok\":true,";
        const est::OpAmpPerf& p = j.outcome->perf;
        put_kv(json, "gain", p.gain);
        put_kv(json, "ugf_hz", p.ugf_hz);
        put_kv(json, "phase_margin", p.phase_margin);
        put_kv(json, "gate_area", p.gate_area);
        put_kv(json, "dc_power", p.dc_power, false);
      } else {
        json += "\"ok\":false,\"error\":\"" + json_escape(j.error) + "\"";
      }
      json += i + 1 < r.jobs.size() ? "},\n" : "}\n";
    }
  } else {
    runtime::SupervisorOptions sup;
    sup.batch = options;
    sup.job_timeout_s = timeout_ms / 1000.0;
    if (retries > 0) {
      sup.retry.plain_retries = retries;
      sup.retry.numeric_recovery_retries = 1;
      sup.retry.relaxed_retries = 1;
      sup.retry.estimate_fallback = true;
    }
    runtime::QuarantineRegistry quarantine;
    if (quarantine_threshold > 0) {
      sup.quarantine = &quarantine;
      sup.quarantine_threshold = quarantine_threshold;
    }
    sup.checkpoint_path = checkpoint_path;
    sup.checkpoint_every = checkpoint_every > 0 ? checkpoint_every : 1;
    sup.resume_path = resume_path;

    // SIGINT/SIGTERM trip the run's CancelToken instead of killing the
    // process: in-flight jobs stop at their next probe, the supervisor
    // writes its final checkpoint (cancelled jobs recorded unfinished,
    // so --resume re-runs exactly those), and we exit 130 below. A
    // second signal falls through to the default disposition.
    static CancelToken interrupt;
    util::install_cancel_on_signal(interrupt);
    sup.cancel = &interrupt;

    const auto r = runtime::run_supervised_opamp_batch(proc, specs, sup);
    stats = r.stats;
    supervision = r.supervision;
    for (size_t i = 0; i < r.jobs.size(); ++i) {
      const auto& j = r.jobs[i];
      json += "{\"name\":\"" + json_escape(named[i].name) + "\",";
      put_kv(json, "index", double(j.index));
      put_kv(json, "attempts", double(j.attempts));
      json += std::string("\"rung\":\"") + to_string(j.final_rung) + "\",";
      json += std::string("\"deadline_hit\":") +
              (j.deadline_hit ? "true," : "false,");
      json += std::string("\"quarantined\":") +
              (j.quarantined ? "true," : "false,");
      json += std::string("\"resumed\":") + (j.resumed ? "true," : "false,");
      json += std::string("\"estimate_fallback\":") +
              (j.estimate_fallback ? "true," : "false,");
      if (j.ok) {
        const synth::SynthesisOutcome& o = j.outcome;
        json += "\"ok\":true,";
        json += std::string("\"meets_spec\":") +
                (o.meets_spec ? "true," : "false,");
        json += std::string("\"sim_failed\":") +
                (o.sim_failed ? "true," : "false,");
        json += "\"comment\":\"" + json_escape(o.comment) + "\",";
        put_kv(json, "cost", o.cost);
        put_kv(json, "evaluations", double(o.evaluations));
        put_kv(json, "skipped_candidates", double(o.skipped_candidates));
        put_kv(json, "sim_gain", o.sim.gain);
        put_kv(json, "sim_ugf_hz", o.sim.ugf_hz.value_or(0.0));
        put_kv(json, "gate_area", o.design.perf.gate_area);
        put_kv(json, "cpu_seconds", o.cpu_seconds, false);
      } else {
        json += "\"ok\":false,\"error\":\"" + json_escape(j.error) + "\"";
      }
      json += i + 1 < r.jobs.size() ? "},\n" : "}\n";
    }
  }

  json += "],\n\"aggregate\":{";
  put_kv(json, "jobs", double(stats.jobs));
  put_kv(json, "failed", double(stats.failed));
  put_kv(json, "met_spec", double(stats.met_spec));
  put_kv(json, "threads", double(stats.threads));
  put_kv(json, "wall_seconds", stats.wall_seconds);
  put_kv(json, "jobs_per_second", stats.jobs_per_second);
  put_kv(json, "cache_hits", double(stats.cache.hits));
  put_kv(json, "cache_misses", double(stats.cache.misses));
  put_kv(json, "cache_hit_rate", stats.cache.hit_rate());
  put_kv(json, "attempts", double(supervision.attempts));
  put_kv(json, "retries", double(supervision.retries));
  put_kv(json, "numeric_recovery_attempts",
         double(supervision.numeric_recovery_attempts));
  put_kv(json, "relaxed_attempts", double(supervision.relaxed_attempts));
  put_kv(json, "estimate_fallbacks", double(supervision.estimate_fallbacks));
  put_kv(json, "deadline_hits", double(supervision.deadline_hits));
  put_kv(json, "cancelled_jobs", double(supervision.cancelled_jobs));
  put_kv(json, "quarantine_skips", double(supervision.quarantine_skips));
  put_kv(json, "quarantined_new", double(supervision.quarantined_new));
  put_kv(json, "checkpoints_written", double(supervision.checkpoints_written));
  put_kv(json, "resumed_jobs", double(supervision.resumed_jobs));
  put_kv(json, "numeric_recoveries", double(stats.kernel.numeric_recoveries));
  put_kv(json, "refinement_solves", double(stats.kernel.refinement_solves));
  put_kv(json, "equilibrated_solves", double(stats.kernel.equilibrated_solves));
  put_kv(json, "residual_norm_max", stats.kernel.residual_norm_max, false);
  json += "}}\n";

  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) die("cannot write '" + out_path + "'");
    out << json;
    std::fprintf(stderr, "ape_batch: wrote %s (%d jobs, %.2f jobs/s)\n",
                 out_path.c_str(), stats.jobs, stats.jobs_per_second);
  }
  if (util::last_signal() != 0) {
    std::fprintf(stderr,
                 "ape_batch: interrupted by signal %d after %d cancelled "
                 "job(s)%s\n",
                 util::last_signal(), supervision.cancelled_jobs,
                 checkpoint_path.empty()
                     ? ""
                     : ("; resume with --resume " + checkpoint_path).c_str());
    return 130;
  }
  return stats.failed == 0 ? 0 : 1;
}
