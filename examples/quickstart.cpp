/// Quickstart: size a CMOS differential amplifier with APE and check the
/// estimate against the bundled circuit simulator.
///
/// This walks the paper's core loop in ~40 lines of user code:
///   1. pick a fabrication process,
///   2. hand APE a performance requirement,
///   3. get back sized transistors + estimated performance,
///   4. emit a SPICE testbench and verify on the MNA simulator.

#include <cstdio>

#include "src/estimator/components.h"
#include "src/estimator/verify.h"

using namespace ape::est;

int main() {
  // 1. The technology: a representative 1.2 um CMOS card (Level 1).
  const Process proc = Process::default_1u2();
  std::printf("process: %s (VDD = %.1f V)\n\n", proc.name.c_str(), proc.vdd);

  // 2. The requirement: a mirror-loaded differential amplifier with a
  //    differential gain of 1000 at a 1 uA tail (paper Table 2's DiffCMOS).
  ComponentSpec spec;
  spec.kind = ComponentKind::DiffCmos;
  spec.gain = 1000.0;
  spec.ibias = 1e-6;
  spec.cload = 0.5e-12;

  // 3. Estimate: sizes every transistor and composes the performance.
  const ComponentEstimator designer(proc);
  const ComponentDesign d = designer.estimate(spec);

  std::printf("sized transistors:\n");
  for (size_t i = 0; i < d.transistors.size(); ++i) {
    const TransistorDesign& t = d.transistors[i];
    std::printf("  %-9s %s  W=%6.2f um  L=%6.2f um  Id=%6.3f uA  gm=%8.3g S\n",
                d.roles[i].c_str(),
                t.type == ape::spice::MosType::Nmos ? "NMOS" : "PMOS",
                t.w * 1e6, t.l * 1e6, t.id * 1e6, t.gm);
  }
  std::printf("\nestimates: gain=%.1f  UGF=%.2f MHz  CMRR=%.1f dB  area=%.1f um2  power=%.1f uW\n",
              d.perf.gain, d.perf.ugf_hz / 1e6, d.perf.cmrr_db,
              d.perf.gate_area * 1e12, d.perf.dc_power * 1e6);

  // 4. Verify: run the design's own testbench through the simulator.
  const ComponentSimReport sim = simulate_component(d, proc);
  std::printf("simulated: gain=%.1f  UGF=%.2f MHz  CMRR=%s dB  power=%.1f uW\n",
              sim.gain, sim.ugf_hz.value_or(0.0) / 1e6,
              sim.cmrr_db ? std::to_string(*sim.cmrr_db).substr(0, 5).c_str() : "-",
              sim.power * 1e6);

  std::printf("\ngenerated testbench netlist:\n%s",
              d.testbench(proc).netlist.c_str());
  return 0;
}
