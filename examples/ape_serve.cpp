/// \file ape_serve.cpp
/// The estimation daemon (DESIGN.md section 11): serve estimate /
/// synthesize / simulate requests over a Unix socket until SIGTERM (or
/// SIGINT), then drain gracefully and exit 0.
///
///   ape_serve --socket /tmp/ape.sock --max-in-flight 2 --queue 4
///
/// SIGTERM starts the drain: the listener closes, in-flight requests get
/// drain_grace_s to finish (each one is answered — completed, degraded
/// or shed "draining"), the stats flush to stderr and the process exits
/// 0. A second SIGTERM falls back to the default disposition (kill).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/estimator/process.h"
#include "src/serve/server.h"
#include "src/util/error.h"
#include "src/util/signal.h"

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ape_serve: %s\n", msg.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  ape::serve::ServeOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--socket") {
      options.socket_path = next();
    } else if (arg == "--max-in-flight") {
      options.max_in_flight = std::atoi(next().c_str());
    } else if (arg == "--queue") {
      options.queue_slots = std::atoi(next().c_str());
    } else if (arg == "--max-connections") {
      options.max_connections = std::atoi(next().c_str());
    } else if (arg == "--quota") {
      options.quota_per_conn = std::atoi(next().c_str());
    } else if (arg == "--max-deadline-s") {
      options.max_deadline_s = std::atof(next().c_str());
    } else if (arg == "--drain-grace-s") {
      options.drain_grace_s = std::atof(next().c_str());
    } else if (arg == "--cache") {
      options.cache_capacity = static_cast<size_t>(std::atol(next().c_str()));
    } else if (arg == "--iters") {
      options.synth_iterations = std::atoi(next().c_str());
    } else if (arg == "--retries") {
      options.retries = std::atoi(next().c_str());
    } else if (arg == "--quarantine") {
      options.quarantine_threshold = std::atoi(next().c_str());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: ape_serve --socket PATH [--max-in-flight N] [--queue N]\n"
          "                 [--max-connections N] [--quota N]\n"
          "                 [--max-deadline-s S] [--drain-grace-s S]\n"
          "                 [--cache N] [--iters N] [--retries N]\n"
          "                 [--quarantine N] [--seed S]\n");
      return 0;
    } else {
      die("unknown option '" + arg + "' (see --help)");
    }
  }
  if (options.socket_path.empty()) die("--socket is required (see --help)");

  // The signal handler cancels this token and tickles the wake pipe; the
  // server's accept loop polls the pipe and starts its drain. The token
  // itself is not the server's drain token (that one fires only after
  // the grace window) — it exists for the handler's contract.
  static ape::CancelToken stop;
  ape::util::install_cancel_on_signal(stop);

  try {
    const ape::est::Process proc = ape::est::Process::default_1u2();
    ape::serve::Server server(proc, options);
    std::fprintf(stderr, "ape_serve: listening on %s (max_in_flight=%d queue=%d)\n",
                 server.socket_path().c_str(), options.max_in_flight,
                 options.queue_slots);
    return server.serve_forever(ape::util::signal_wake_fd());
  } catch (const ape::Error& e) {
    die(e.what());
  }
}
