/// System-level constraint transformation: the VASE flow of the paper's
/// Figure 1 in miniature. A system requirement ("amplify by G, then
/// low-pass at f0") is decomposed onto analog modules, each module's
/// constraints are transformed with guidance from APE estimates, and the
/// composed chain is verified at the transistor level.
///
///   system_chain [gain] [f0_hz]   (defaults 20, 1000)

#include <cstdio>
#include <cstdlib>

#include "src/estimator/constraints.h"
#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/units.h"

using namespace ape;
using namespace ape::est;

int main(int argc, char** argv) {
  const double gain = argc > 1 ? std::atof(argv[1]) : 20.0;
  const double f0 = argc > 2 ? std::atof(argv[2]) : 1000.0;
  const Process proc = Process::default_1u2();

  std::printf("system spec: gain %.1f into a 4th-order low-pass at %s\n\n",
              gain, units::format_eng(f0).c_str());

  std::printf("[1] constraint transformation (directed search on the amp BW)...\n");
  const ChainAllocation a = allocate_amp_filter_chain(proc, gain, f0);
  std::printf("    %d search iterations, %s\n", a.iterations,
              a.feasible ? "feasible" : "INFEASIBLE");
  for (size_t i = 0; i < a.stage_specs.size(); ++i) {
    const ModuleSpec& s = a.stage_specs[i];
    std::printf("    stage %zu: %-7s gain=%-6s BW/f0=%sHz  ->  area %.0f um2, %.2f mW\n",
                i, to_string(s.kind),
                s.kind == ModuleKind::LowPassFilter
                    ? "-"
                    : units::format_eng(s.gain, 4).c_str(),
                units::format_eng(s.kind == ModuleKind::LowPassFilter ? s.f0_hz
                                                                      : s.bw_hz)
                    .c_str(),
                a.designs[i].perf.gate_area * 1e12,
                a.designs[i].perf.dc_power * 1e3);
  }
  std::printf("\n[2] composed estimate: gain=%.2f, corner=%sHz, area=%.0f um2, %.2f mW\n",
              a.system_gain, units::format_eng(a.system_bw_hz).c_str(),
              a.total_area * 1e12, a.total_power * 1e3);

  // [3] Transistor-level verification of each stage.
  std::printf("\n[3] transistor-level verification, stage by stage:\n");
  double chain_gain = 1.0;
  for (size_t i = 0; i < a.designs.size(); ++i) {
    const Testbench tb = a.designs[i].testbench(proc);
    spice::Circuit ckt = spice::parse_netlist(tb.netlist);
    (void)spice::dc_operating_point(ckt);
    const auto ac = spice::ac_analysis(ckt, f0 * 1e-2, f0 * 1e2, 15);
    const spice::Bode bode(ac, ckt.find_node("out"));
    std::printf("    stage %zu: sim gain %.3f, f-3dB %sHz\n", i,
                bode.dc_gain(),
                units::format_eng(bode.f_3db().value_or(0.0)).c_str());
    chain_gain *= bode.dc_gain();
  }
  std::printf("\nchain passband gain: estimated %.2f, stage-product simulated %.2f\n",
              a.system_gain, chain_gain);

  // [4] Gain-chain variant: same gain from two cascaded amplifiers.
  std::printf("\n[4] alternative decomposition: two-stage gain chain at 20 kHz BW\n");
  const ChainAllocation g2 = allocate_gain_chain(proc, gain * gain, 20e3, 2);
  std::printf("    per-stage gain %.2f, per-stage BW budget %sHz (cascade shrinkage)\n",
              g2.stage_specs[0].gain,
              units::format_eng(g2.stage_specs[0].bw_hz).c_str());
  std::printf("    composed: gain=%.1f, BW=%sHz, %s\n", g2.system_gain,
              units::format_eng(g2.system_bw_hz).c_str(),
              g2.feasible ? "feasible" : "INFEASIBLE");
  return a.feasible && g2.feasible ? 0 : 1;
}
