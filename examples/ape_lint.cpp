/// \file ape_lint.cpp
/// Static netlist analyzer CLI (DESIGN.md section 9).
///
///   ape_lint [options] [netlist.sp ...]
///
/// Reads each netlist file (or stdin when no file is given), runs the
/// full lint rule set (topology + MNA-solvability + case-alias scan) and
/// prints one JSON report. Exit status: 0 = clean, 1 = findings with
/// severity error, 2 = usage / I/O failure.
///
/// Options:
///   --warnings-as-errors   exit 1 on warnings too
///   --quiet                suppress the JSON, keep only the exit status
///   --help                 usage

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace {

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "ape_lint: %s\n", msg.c_str());
  std::exit(2);
}

void usage() {
  std::printf(
      "usage: ape_lint [--warnings-as-errors] [--quiet] [netlist.sp ...]\n"
      "Lints SPICE netlists (stdin when no file given); prints JSON findings.\n"
      "Exit: 0 clean, 1 lint errors, 2 usage/IO failure.\n"
      "Rule catalog: src/lint/lint.h / DESIGN.md section 9.\n");
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_stdin() {
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool warnings_as_errors = false;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--warnings-as-errors") {
      warnings_as_errors = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option '" + arg + "' (see --help)");
    } else {
      files.push_back(arg);
    }
  }

  ape::lint::Report report;
  if (files.empty()) {
    report = ape::lint::lint_netlist(read_stdin());
  } else {
    for (const std::string& path : files) {
      ape::ErrorContext scope(path);
      report.merge(ape::lint::lint_netlist(read_file(path)));
    }
  }

  if (!quiet) std::printf("%s\n", report.to_json().c_str());
  const bool fail =
      report.errors() > 0 || (warnings_as_errors && report.warnings() > 0);
  if (fail && !quiet) {
    std::fprintf(stderr, "ape_lint: %s\n", report.summary().c_str());
  }
  return fail ? 1 : 0;
}
