/// \file ape_lint.cpp
/// Static netlist / spec analyzer CLI (DESIGN.md sections 9 and 14).
///
///   ape_lint [options] [netlist.sp ...]           netlist lint mode
///   ape_lint --prove [spec options]               feasibility-proof mode
///
/// Netlist mode reads each netlist file (or stdin when no file is
/// given), runs the full lint rule set (topology + MNA-solvability +
/// case-alias scan) and prints one JSON report. Prove mode builds an
/// opamp spec from the --gain/--ugf/--ibias/--cload flags and proves
/// (or refutes) its feasibility over the sizing box with interval
/// arithmetic, emitting APE-F findings plus the guaranteed metric
/// bounds and the contracted feasible box.
///
/// Exit status contract (documented in --help, enforced by CI):
///   0   clean, or warnings/notes only
///   1   at least one error-severity finding (APE-F001 included)
///   2   warnings present and --werror given (no errors)
///   64  usage error (unknown flag, bad flag value)
///   66  an input file could not be opened / read

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lint/lint.h"
#include "src/lint/prove.h"
#include "src/stat/corners.h"
#include "src/util/json.h"

namespace {

// sysexits.h-style codes; kept literal so the --help text, the tests and
// the CI job agree without including a platform header.
constexpr int kExitClean = 0;
constexpr int kExitErrors = 1;
constexpr int kExitWerror = 2;
constexpr int kExitUsage = 64;
constexpr int kExitNoInput = 66;

void usage() {
  std::printf(
      "usage: ape_lint [options] [netlist.sp ...]\n"
      "       ape_lint --prove [spec options]\n"
      "\n"
      "Netlist mode (default): lint SPICE netlists (stdin when no file is\n"
      "given) and print one JSON findings report. Repeated findings on the\n"
      "same (rule, location) pair are reported once.\n"
      "\n"
      "Prove mode (--prove): prove opamp-spec feasibility over the sizing\n"
      "box (APE-F rules, interval arithmetic) and print the findings plus\n"
      "guaranteed metric bounds and the contracted feasible box.\n"
      "  --gain X         DC gain target (default 200)\n"
      "  --ugf HZ         unity-gain frequency target [Hz] (default 1e6)\n"
      "  --ibias A        reference current [A] (default 1e-6)\n"
      "  --cload F        load capacitance [F] (default 10e-12)\n"
      "  --area M2        gate-area budget [m^2] (default: none)\n"
      "  --corner NAME    prove at a PVT corner (tm|wp|ws|wo|wz|ts|tf)\n"
      "  --tight-margin F APE-F002 relative threshold (default 0.25)\n"
      "\n"
      "Common options:\n"
      "  --werror         exit 2 when warnings are found (and no errors)\n"
      "  --warnings-as-errors  alias for --werror\n"
      "  --quiet          suppress the JSON, keep only the exit status\n"
      "  --help           this text\n"
      "\n"
      "Exit: 0 clean or warnings-only; 1 error findings; 2 warnings with\n"
      "--werror; 64 usage error; 66 unreadable input file.\n"
      "Rule catalog: src/lint/lint.h + src/lint/prove.h / DESIGN.md 9, 14.\n");
}

[[noreturn]] void die(const std::string& msg, int code) {
  std::fprintf(stderr, "ape_lint: %s\n", msg.c_str());
  std::exit(code);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) die("cannot open '" + path + "'", kExitNoInput);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_stdin() {
  std::ostringstream ss;
  ss << std::cin.rdbuf();
  return ss.str();
}

double parse_double_flag(const std::string& flag, const char* value) {
  if (value == nullptr) die("missing value for " + flag, kExitUsage);
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0') {
    die("bad value '" + std::string(value) + "' for " + flag, kExitUsage);
  }
  return v;
}

/// Drop findings that duplicate an earlier one's (rule, where, message)
/// key: merging N files (or one netlist tripping the same rule on the
/// same device through two code paths) reports each defect once.
ape::lint::Report dedupe(const ape::lint::Report& in) {
  ape::lint::Report out;
  std::vector<std::string> seen;
  for (const auto& f : in.findings) {
    const std::string key = f.rule + '\x1f' + f.where + '\x1f' + f.message;
    bool dup = false;
    for (const auto& k : seen) {
      if (k == key) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    seen.push_back(key);
    out.findings.push_back(f);
  }
  return out;
}

int exit_code_for(const ape::lint::Report& report, bool werror) {
  if (report.errors() > 0) return kExitErrors;
  if (werror && report.warnings() > 0) return kExitWerror;
  return kExitClean;
}

std::string interval_json(const ape::util::Interval& v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "[%.17g,%.17g]", v.lo(), v.hi());
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool quiet = false;
  bool prove = false;
  bool spec_flag_seen = false;
  ape::est::OpAmpSpec spec;
  std::string corner;
  double tight_margin = -1.0;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") {
      usage();
      return kExitClean;
    } else if (arg == "--werror" || arg == "--warnings-as-errors") {
      werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--prove") {
      prove = true;
    } else if (arg == "--gain") {
      spec.gain = parse_double_flag(arg, next);
      spec_flag_seen = true;
      ++i;
    } else if (arg == "--ugf") {
      spec.ugf_hz = parse_double_flag(arg, next);
      spec_flag_seen = true;
      ++i;
    } else if (arg == "--ibias") {
      spec.ibias = parse_double_flag(arg, next);
      spec_flag_seen = true;
      ++i;
    } else if (arg == "--cload") {
      spec.cload = parse_double_flag(arg, next);
      spec_flag_seen = true;
      ++i;
    } else if (arg == "--area") {
      spec.area_budget = parse_double_flag(arg, next);
      spec_flag_seen = true;
      ++i;
    } else if (arg == "--tight-margin") {
      tight_margin = parse_double_flag(arg, next);
      spec_flag_seen = true;
      ++i;
    } else if (arg == "--corner") {
      if (next == nullptr) die("missing value for --corner", kExitUsage);
      corner = next;
      spec_flag_seen = true;
      ++i;
    } else if (!arg.empty() && arg[0] == '-') {
      die("unknown option '" + arg + "' (see --help)", kExitUsage);
    } else {
      files.push_back(arg);
    }
  }
  if (!prove && spec_flag_seen) {
    // Spec flags without --prove are almost certainly a mistyped
    // invocation; refuse instead of silently linting stdin.
    die("spec/corner flags require --prove (see --help)", kExitUsage);
  }

  if (prove) {
    if (!files.empty()) {
      die("--prove takes spec flags, not netlist files", kExitUsage);
    }
    ape::est::Process proc = ape::est::Process::default_1u2();
    if (!corner.empty()) {
      try {
        const ape::stat::CornerSet set = ape::stat::CornerSet::parse(corner);
        if (set.size() != 1) {
          die("--corner takes exactly one corner name", kExitUsage);
        }
        proc = set.realize(proc).at(0);
      } catch (const ape::Error& e) {
        die(std::string("--corner: ") + e.what(), kExitUsage);
      }
    }
    ape::lint::ProveOptions opts;
    if (tight_margin >= 0.0) opts.tight_margin = tight_margin;
    ape::lint::FeasibilityProof proof;
    try {
      proof = ape::lint::prove_opamp_feasibility(proc, spec, opts);
    } catch (const ape::Error& e) {
      die(std::string("prove: ") + e.what(), kExitUsage);
    }
    const ape::lint::Report report = dedupe(proof.report);
    if (!quiet) {
      std::string json = "{\"mode\":\"prove\",\"infeasible\":";
      json += proof.infeasible ? "true" : "false";
      json += ",\"corner\":\"" + ape::json::escape(proof.corner) + "\"";
      json += ",\"bounds\":{";
      json += "\"gain\":" + interval_json(proof.bounds.gain);
      json += ",\"ugf_hz\":" + interval_json(proof.bounds.ugf_hz);
      json += ",\"phase_margin\":" + interval_json(proof.bounds.phase_margin);
      json += ",\"slew\":" + interval_json(proof.bounds.slew);
      json += ",\"dc_power\":" + interval_json(proof.bounds.dc_power);
      json += ",\"gate_area\":" + interval_json(proof.bounds.gate_area);
      json += ",\"input_noise_v2\":" +
              interval_json(proof.bounds.input_noise_v2);
      json += "}";
      char buf[64];
      std::snprintf(buf, sizeof buf, ",\"cost_lower_bound\":%.17g",
                    proof.cost_lower_bound);
      json += buf;
      json += ",\"feasible_box\":[";
      for (size_t i = 0; i < proof.feasible_box.size(); ++i) {
        if (i != 0) json += ',';
        std::snprintf(buf, sizeof buf, "[%.17g,%.17g]",
                      proof.feasible_box[i].first,
                      proof.feasible_box[i].second);
        json += buf;
      }
      json += "],\"report\":" + report.to_json() + "}";
      std::printf("%s\n", json.c_str());
    }
    const int code = exit_code_for(report, werror);
    if (code != kExitClean && !quiet) {
      std::fprintf(stderr, "ape_lint: %s\n", report.summary().c_str());
    }
    return code;
  }

  ape::lint::Report merged;
  if (files.empty()) {
    merged = ape::lint::lint_netlist(read_stdin());
  } else {
    for (const std::string& path : files) {
      ape::ErrorContext scope(path);
      merged.merge(ape::lint::lint_netlist(read_file(path)));
    }
  }
  const ape::lint::Report report = dedupe(merged);

  if (!quiet) std::printf("%s\n", report.to_json().c_str());
  const int code = exit_code_for(report, werror);
  if (code != kExitClean && !quiet) {
    std::fprintf(stderr, "ape_lint: %s\n", report.summary().c_str());
  }
  return code;
}
