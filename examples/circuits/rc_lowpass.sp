rc lowpass: single-pole reference circuit
* Pole at -1/RC = -1000 rad/s; used throughout the AWE tests.
Vin in 0 AC 1
R1 in out 1k
C1 out 0 1u
.end
