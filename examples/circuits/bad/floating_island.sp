bad: floating island
* Deliberately broken (negative control for the lint-examples CI job):
* R2/C1 form an island with no DC path to ground, held up only by
* gmin. ape_lint must report APE-L004 (error) and exit 1 on this file.
Vin in 0 DC 1
R1 in 0 1k
R2 x y 1k
C1 y x 1p
.end
