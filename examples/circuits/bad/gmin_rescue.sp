bad: capacitively floating sense node (gmin rescue)
* Deliberately broken (negative control for the lint-examples CI job):
* 'sense' reaches the rest of the circuit only through C1, so it has no
* DC path to ground and ape_lint must report APE-L004 (error) and exit
* 1 on this file. Unlike the other negative controls, DC *simulation*
* still succeeds: the gmin floor of the recovery ladder (DESIGN.md
* section 15) holds the node up. numeric_health_test and serve-smoke
* replay this file as the committed rescued-by-gmin fixture.
Vin in 0 DC 1
R1 in out 1k
R2 out 0 1k
C1 out sense 1p
.end
