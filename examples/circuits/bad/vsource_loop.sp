bad: voltage-source loop
* Deliberately broken (negative control for the lint-examples CI job):
* two ideal voltage sources in parallel form a voltage-defined cycle,
* so the MNA system is structurally singular. ape_lint must report
* APE-L002 (error) and exit 1 on this file.
V1 a 0 DC 1
V2 a 0 DC 2
R1 a 0 1k
.end
