extreme spread divider: twelve-decade conductance spread
* Structurally clean (this file must lint green) but numerically nasty:
* the 1 mohm feed puts a 1e3 S conductance in the same nodal matrix as
* the two 1 Gohm (1e-9 S) branches that are all that hold node 'out',
* so ||A|| ~ 1e3 while out's Thevenin resistance is ~5e8 ohm and the
* MNA condition number is ~5e11 — far past the health layer's 1e10
* trigger, so a plain double LU solve of this system has lost digits.
* The numerical-health layer (DESIGN.md section 15) spots the spread
* via its pivot monitors, estimates the condition number and refines
* the solve back to ~1e-12 relative residual; numeric_health_test and
* the serve smoke test replay this file to pin that behaviour. Exact
* answer: V(out) = 0.5 V (equal-gigaohm divider, shifted ~0.05% by the
* solver's 1e-12 S gmin floor), V(mid) ~ 1 V.
Vin in 0 DC 1
R1 in mid 1m
R2 mid out 1G
R3 out 0 1G
.end
