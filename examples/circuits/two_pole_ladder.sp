two-pole ladder: widely split poles via a buffered RC cascade
* Two RC sections decoupled by an ideal unity VCVS; AWE recovers both
* poles (1e3 and 1e6 rad/s).
Vin in 0 AC 1
R1 in a 1k
C1 a 0 1u
E1 b 0 a 0 1
R2 b out 1k
C2 out 0 1n
.end
