noise divider: parallel resistors to ground
* Output thermal noise is 4kT * (R1 || R2); probed through a huge
* series resistor so the AC source does not short the node.
Vmeas probe 0 AC 0
Rp probe out 1e12
R1 out 0 10k
R2 out 0 40k
.end
