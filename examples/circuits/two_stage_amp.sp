demo: resistively loaded two-stage amplifier
* The built-in demo of examples/netlist_estimate.cpp as a standalone
* file: `netlist_estimate examples/circuits/two_stage_amp.sp out Vdd`.
* CI lints every circuit in this directory (see .github/workflows/ci.yml,
* job lint-examples) and fails on any error-severity finding.
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02 gamma=0.4 phi=0.6 tox=20n ld=0.1u cgso=300p cgdo=300p cj=0.3m cjsw=300p lref=2.4u)
.model mp pmos (level=1 vto=-0.8 kp=28u lambda=0.03 gamma=0.5 phi=0.6 tox=20n ld=0.1u cgso=300p cgdo=300p cj=0.3m cjsw=300p lref=2.4u)
Vdd vdd 0 DC 5
Vin in 0 DC 1.1 AC 1
* stage 1: common source with PMOS diode load
M1 s1 in 0 0 mn W=40u L=2.4u
M2 s1 s1 vdd vdd mp W=10u L=2.4u
* stage 2: common source, resistive load
M3 out s1 vdd vdd mp W=15u L=2.4u
Rl out 0 20k
Cl out 0 5p
.end
