/// User-netlist estimation: the paper's "future work" implemented. Feed
/// any SPICE netlist (a file path, or the built-in two-stage-amplifier
/// demo) and get APE-style performance attributes in milliseconds via
/// DC + AWE reduced-order modeling - no full AC sweep.
///
///   netlist_estimate [file.cir] [out_node] [supply_source]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/synth/netlist_estimate.h"
#include "src/util/units.h"

using namespace ape;

namespace {

const char* kDemo = R"(demo: resistively loaded two-stage amplifier
.model mn nmos (level=1 vto=0.8 kp=80u lambda=0.02 gamma=0.4 phi=0.6 tox=20n ld=0.1u cgso=300p cgdo=300p cj=0.3m cjsw=300p lref=2.4u)
.model mp pmos (level=1 vto=-0.8 kp=28u lambda=0.03 gamma=0.5 phi=0.6 tox=20n ld=0.1u cgso=300p cgdo=300p cj=0.3m cjsw=300p lref=2.4u)
Vdd vdd 0 DC 5
Vin in 0 DC 1.1 AC 1
* stage 1: common source with PMOS diode load
M1 s1 in 0 0 mn W=40u L=2.4u
M2 s1 s1 vdd vdd mp W=10u L=2.4u
* stage 2: common source, resistive load
M3 out s1 vdd vdd mp W=15u L=2.4u
Rl out 0 20k
Cl out 0 5p
.end
)";

}  // namespace

int main(int argc, char** argv) {
  std::string netlist = kDemo;
  std::string source_label = "(built-in demo netlist)";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    netlist = ss.str();
    source_label = argv[1];
  }

  synth::NetlistEstimateOptions opts;
  opts.out_node = argc > 2 ? argv[2] : "out";
  opts.supply_source = argc > 3 ? argv[3] : "Vdd";

  std::printf("estimating %s ...\n\n", source_label.c_str());
  try {
    const synth::NetlistEstimate e = synth::estimate_netlist(netlist, opts);
    std::printf("nodes          : %d\n", e.n_nodes);
    std::printf("MOSFETs        : %d (gate area %.1f um2)\n", e.n_mosfets,
                e.gate_area_m2 * 1e12);
    std::printf("output DC      : %.3f V\n", e.out_dc);
    std::printf("supply power   : %.3f mW\n", e.power_w * 1e3);
    std::printf("DC gain        : %.2f (%.1f dB)\n", e.dc_gain,
                20.0 * std::log10(std::max(e.dc_gain, 1e-12)));
    std::printf("f-3dB          : %s\n",
                e.f3db_hz ? (units::format_eng(*e.f3db_hz) + "Hz").c_str() : "-");
    std::printf("UGF            : %s\n",
                e.ugf_hz ? (units::format_eng(*e.ugf_hz) + "Hz").c_str() : "-");
    std::printf("reduced poles  :");
    for (const auto& p : e.poles) {
      std::printf(" (%.3g%+.3gj)", p.real(), p.imag());
    }
    std::printf(" rad/s\n");
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "estimation failed: %s\n", ex.what());
    return 1;
  }
  return 0;
}
