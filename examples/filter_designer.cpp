/// Filter designer: level-4 flow for the paper's Sallen-Key low-pass and
/// MFB band-pass modules (Table 5's lpf/bpf rows and Figure 3c/3d).
///
///   filter_designer [f0_hz]   (default 1000)
///
/// Designs a 4th-order Butterworth low-pass and a Q=1 band-pass at f0,
/// prints the passive values, the constituent opamps, an estimated-vs-
/// simulated frequency response table, and the LPF's full netlist.

#include <cstdio>
#include <cstdlib>

#include "src/estimator/modules.h"
#include "src/spice/analysis.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/units.h"

using namespace ape;
using namespace ape::est;

namespace {

void response_table(const Process& proc, const ModuleDesign& d, double f0) {
  // Estimated response: the macromodel view; simulated: transistor level.
  Testbench macro = macro_testbench(d, proc);
  Testbench real = d.testbench(proc);

  spice::Circuit cm = spice::parse_netlist(macro.netlist);
  (void)spice::dc_operating_point(cm);
  const auto acm = spice::ac_analysis(cm, f0 * 1e-2, f0 * 1e2, 10);
  const spice::Bode bm(acm, cm.find_node("out"));

  spice::Circuit cr = spice::parse_netlist(real.netlist);
  (void)spice::dc_operating_point(cr);
  const auto acr = spice::ac_analysis(cr, f0 * 1e-2, f0 * 1e2, 10);
  const spice::Bode br(acr, cr.find_node("out"));

  std::printf("  %-12s %14s %14s\n", "freq", "|H| est", "|H| sim");
  for (double mult : {0.1, 0.3, 0.7, 1.0, 1.5, 3.0, 10.0}) {
    const double f = f0 * mult;
    std::printf("  %-12s %14.4f %14.4f\n", units::format_eng(f).c_str(),
                bm.mag_at(f), br.mag_at(f));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double f0 = argc > 1 ? std::atof(argv[1]) : 1000.0;
  const Process proc = Process::default_1u2();
  const ModuleEstimator designer(proc);

  // --- 4th-order Sallen-Key Butterworth low-pass ---------------------------
  ModuleSpec lpf;
  lpf.kind = ModuleKind::LowPassFilter;
  lpf.order = 4;
  lpf.f0_hz = f0;
  const ModuleDesign dl = designer.estimate(lpf);
  std::printf("=== 4th-order Sallen-Key Butterworth LPF, fc = %s ===\n",
              units::format_eng(f0).c_str());
  std::printf("passives:");
  for (const auto& p : dl.passives) {
    std::printf("  %s=%s%s", p.name.c_str(), units::format_eng(p.value).c_str(),
                p.name[0] == 'C' ? "F" : "ohm");
  }
  std::printf("\nopamps: %zu (buffered two-stage, UGF %.0f kHz each)\n",
              dl.opamps.size(), dl.opamps[0].perf.ugf_hz / 1e3);
  std::printf("estimates: gain=%.3f  f-3dB=%s  f-20dB=%s  area=%.0f um2\n\n",
              dl.perf.gain, units::format_eng(dl.perf.f3db_hz).c_str(),
              units::format_eng(dl.perf.f20db_hz).c_str(),
              dl.perf.gate_area * 1e12);
  response_table(proc, dl, f0);

  // --- Q=1 MFB band-pass ----------------------------------------------------
  ModuleSpec bpf;
  bpf.kind = ModuleKind::BandPassFilter;
  bpf.order = 2;
  bpf.f0_hz = f0;
  const ModuleDesign db = designer.estimate(bpf);
  std::printf("\n=== MFB band-pass, f0 = %s, Q = 1 ===\n",
              units::format_eng(f0).c_str());
  std::printf("passives:");
  for (const auto& p : db.passives) {
    std::printf("  %s=%s%s", p.name.c_str(), units::format_eng(p.value).c_str(),
                p.name[0] == 'C' ? "F" : "ohm");
  }
  std::printf("\nestimates: peak gain=%.3f  f0=%s  BW=%s  area=%.0f um2\n\n",
              db.perf.gain, units::format_eng(db.perf.f0_hz).c_str(),
              units::format_eng(db.perf.bw_hz).c_str(),
              db.perf.gate_area * 1e12);
  response_table(proc, db, f0);

  std::printf("\nfull transistor-level LPF netlist:\n%s",
              dl.testbench(proc).netlist.c_str());
  return 0;
}
