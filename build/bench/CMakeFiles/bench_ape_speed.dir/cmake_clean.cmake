file(REMOVE_RECURSE
  "CMakeFiles/bench_ape_speed.dir/bench_ape_speed.cpp.o"
  "CMakeFiles/bench_ape_speed.dir/bench_ape_speed.cpp.o.d"
  "bench_ape_speed"
  "bench_ape_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ape_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
