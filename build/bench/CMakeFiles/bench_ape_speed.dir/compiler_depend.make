# Empty compiler generated dependencies file for bench_ape_speed.
# This may be replaced when dependencies are built.
