file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_awe.dir/bench_ablation_awe.cpp.o"
  "CMakeFiles/bench_ablation_awe.dir/bench_ablation_awe.cpp.o.d"
  "bench_ablation_awe"
  "bench_ablation_awe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_awe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
