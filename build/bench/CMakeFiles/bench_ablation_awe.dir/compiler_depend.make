# Empty compiler generated dependencies file for bench_ablation_awe.
# This may be replaced when dependencies are built.
