# Empty dependencies file for bench_ablation_intervals.
# This may be replaced when dependencies are built.
