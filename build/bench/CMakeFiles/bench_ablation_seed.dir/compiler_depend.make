# Empty compiler generated dependencies file for bench_ablation_seed.
# This may be replaced when dependencies are built.
