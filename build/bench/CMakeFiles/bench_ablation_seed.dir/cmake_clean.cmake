file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seed.dir/bench_ablation_seed.cpp.o"
  "CMakeFiles/bench_ablation_seed.dir/bench_ablation_seed.cpp.o.d"
  "bench_ablation_seed"
  "bench_ablation_seed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
