file(REMOVE_RECURSE
  "CMakeFiles/spice_tran_test.dir/spice_tran_test.cpp.o"
  "CMakeFiles/spice_tran_test.dir/spice_tran_test.cpp.o.d"
  "spice_tran_test"
  "spice_tran_test.pdb"
  "spice_tran_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spice_tran_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
