# Empty compiler generated dependencies file for spice_tran_test.
# This may be replaced when dependencies are built.
