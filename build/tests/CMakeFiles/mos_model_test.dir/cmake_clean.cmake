file(REMOVE_RECURSE
  "CMakeFiles/mos_model_test.dir/mos_model_test.cpp.o"
  "CMakeFiles/mos_model_test.dir/mos_model_test.cpp.o.d"
  "mos_model_test"
  "mos_model_test.pdb"
  "mos_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mos_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
