# Empty dependencies file for mos_model_test.
# This may be replaced when dependencies are built.
