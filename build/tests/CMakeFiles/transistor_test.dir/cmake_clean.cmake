file(REMOVE_RECURSE
  "CMakeFiles/transistor_test.dir/transistor_test.cpp.o"
  "CMakeFiles/transistor_test.dir/transistor_test.cpp.o.d"
  "transistor_test"
  "transistor_test.pdb"
  "transistor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transistor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
