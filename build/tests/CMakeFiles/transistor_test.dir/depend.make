# Empty dependencies file for transistor_test.
# This may be replaced when dependencies are built.
