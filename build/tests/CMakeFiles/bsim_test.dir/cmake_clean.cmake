file(REMOVE_RECURSE
  "CMakeFiles/bsim_test.dir/bsim_test.cpp.o"
  "CMakeFiles/bsim_test.dir/bsim_test.cpp.o.d"
  "bsim_test"
  "bsim_test.pdb"
  "bsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
