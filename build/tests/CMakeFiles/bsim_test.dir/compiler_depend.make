# Empty compiler generated dependencies file for bsim_test.
# This may be replaced when dependencies are built.
