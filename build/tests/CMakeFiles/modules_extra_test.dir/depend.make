# Empty dependencies file for modules_extra_test.
# This may be replaced when dependencies are built.
