file(REMOVE_RECURSE
  "CMakeFiles/modules_extra_test.dir/modules_extra_test.cpp.o"
  "CMakeFiles/modules_extra_test.dir/modules_extra_test.cpp.o.d"
  "modules_extra_test"
  "modules_extra_test.pdb"
  "modules_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modules_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
