# Empty dependencies file for astrx_test.
# This may be replaced when dependencies are built.
