file(REMOVE_RECURSE
  "CMakeFiles/astrx_test.dir/astrx_test.cpp.o"
  "CMakeFiles/astrx_test.dir/astrx_test.cpp.o.d"
  "astrx_test"
  "astrx_test.pdb"
  "astrx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astrx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
