file(REMOVE_RECURSE
  "CMakeFiles/opamp_test.dir/opamp_test.cpp.o"
  "CMakeFiles/opamp_test.dir/opamp_test.cpp.o.d"
  "opamp_test"
  "opamp_test.pdb"
  "opamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
