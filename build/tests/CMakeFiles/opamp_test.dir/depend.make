# Empty dependencies file for opamp_test.
# This may be replaced when dependencies are built.
