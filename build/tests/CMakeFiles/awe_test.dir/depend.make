# Empty dependencies file for awe_test.
# This may be replaced when dependencies are built.
