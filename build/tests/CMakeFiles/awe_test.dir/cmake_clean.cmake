file(REMOVE_RECURSE
  "CMakeFiles/awe_test.dir/awe_test.cpp.o"
  "CMakeFiles/awe_test.dir/awe_test.cpp.o.d"
  "awe_test"
  "awe_test.pdb"
  "awe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/awe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
