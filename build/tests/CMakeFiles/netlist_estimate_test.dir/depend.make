# Empty dependencies file for netlist_estimate_test.
# This may be replaced when dependencies are built.
