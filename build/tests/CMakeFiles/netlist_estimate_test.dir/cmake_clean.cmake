file(REMOVE_RECURSE
  "CMakeFiles/netlist_estimate_test.dir/netlist_estimate_test.cpp.o"
  "CMakeFiles/netlist_estimate_test.dir/netlist_estimate_test.cpp.o.d"
  "netlist_estimate_test"
  "netlist_estimate_test.pdb"
  "netlist_estimate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_estimate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
