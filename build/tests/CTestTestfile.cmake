# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/units_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/poly_test[1]_include.cmake")
include("/root/repo/build/tests/mos_model_test[1]_include.cmake")
include("/root/repo/build/tests/bsim_test[1]_include.cmake")
include("/root/repo/build/tests/spice_dc_test[1]_include.cmake")
include("/root/repo/build/tests/spice_ac_test[1]_include.cmake")
include("/root/repo/build/tests/spice_tran_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/measure_test[1]_include.cmake")
include("/root/repo/build/tests/spice_property_test[1]_include.cmake")
include("/root/repo/build/tests/noise_test[1]_include.cmake")
include("/root/repo/build/tests/transistor_test[1]_include.cmake")
include("/root/repo/build/tests/components_test[1]_include.cmake")
include("/root/repo/build/tests/opamp_test[1]_include.cmake")
include("/root/repo/build/tests/modules_test[1]_include.cmake")
include("/root/repo/build/tests/modules_extra_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/anneal_test[1]_include.cmake")
include("/root/repo/build/tests/awe_test[1]_include.cmake")
include("/root/repo/build/tests/sizing_test[1]_include.cmake")
include("/root/repo/build/tests/astrx_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_estimate_test[1]_include.cmake")
