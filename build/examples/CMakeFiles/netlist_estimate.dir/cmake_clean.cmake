file(REMOVE_RECURSE
  "CMakeFiles/netlist_estimate.dir/netlist_estimate.cpp.o"
  "CMakeFiles/netlist_estimate.dir/netlist_estimate.cpp.o.d"
  "netlist_estimate"
  "netlist_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netlist_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
