# Empty dependencies file for netlist_estimate.
# This may be replaced when dependencies are built.
