file(REMOVE_RECURSE
  "CMakeFiles/opamp_designer.dir/opamp_designer.cpp.o"
  "CMakeFiles/opamp_designer.dir/opamp_designer.cpp.o.d"
  "opamp_designer"
  "opamp_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
