
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/opamp_designer.cpp" "examples/CMakeFiles/opamp_designer.dir/opamp_designer.cpp.o" "gcc" "examples/CMakeFiles/opamp_designer.dir/opamp_designer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synth/CMakeFiles/ape_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/ape_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ape_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
