# Empty dependencies file for opamp_designer.
# This may be replaced when dependencies are built.
