file(REMOVE_RECURSE
  "CMakeFiles/system_chain.dir/system_chain.cpp.o"
  "CMakeFiles/system_chain.dir/system_chain.cpp.o.d"
  "system_chain"
  "system_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
