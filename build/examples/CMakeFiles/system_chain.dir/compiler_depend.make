# Empty compiler generated dependencies file for system_chain.
# This may be replaced when dependencies are built.
