# Empty compiler generated dependencies file for flash_adc.
# This may be replaced when dependencies are built.
