file(REMOVE_RECURSE
  "CMakeFiles/flash_adc.dir/flash_adc.cpp.o"
  "CMakeFiles/flash_adc.dir/flash_adc.cpp.o.d"
  "flash_adc"
  "flash_adc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_adc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
