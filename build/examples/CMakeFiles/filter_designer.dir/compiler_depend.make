# Empty compiler generated dependencies file for filter_designer.
# This may be replaced when dependencies are built.
