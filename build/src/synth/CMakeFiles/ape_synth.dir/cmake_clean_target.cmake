file(REMOVE_RECURSE
  "libape_synth.a"
)
