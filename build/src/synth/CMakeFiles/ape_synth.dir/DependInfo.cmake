
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/anneal.cpp" "src/synth/CMakeFiles/ape_synth.dir/anneal.cpp.o" "gcc" "src/synth/CMakeFiles/ape_synth.dir/anneal.cpp.o.d"
  "/root/repo/src/synth/astrx.cpp" "src/synth/CMakeFiles/ape_synth.dir/astrx.cpp.o" "gcc" "src/synth/CMakeFiles/ape_synth.dir/astrx.cpp.o.d"
  "/root/repo/src/synth/awe.cpp" "src/synth/CMakeFiles/ape_synth.dir/awe.cpp.o" "gcc" "src/synth/CMakeFiles/ape_synth.dir/awe.cpp.o.d"
  "/root/repo/src/synth/netlist_estimate.cpp" "src/synth/CMakeFiles/ape_synth.dir/netlist_estimate.cpp.o" "gcc" "src/synth/CMakeFiles/ape_synth.dir/netlist_estimate.cpp.o.d"
  "/root/repo/src/synth/sizing.cpp" "src/synth/CMakeFiles/ape_synth.dir/sizing.cpp.o" "gcc" "src/synth/CMakeFiles/ape_synth.dir/sizing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/estimator/CMakeFiles/ape_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/ape_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
