# Empty compiler generated dependencies file for ape_synth.
# This may be replaced when dependencies are built.
