file(REMOVE_RECURSE
  "CMakeFiles/ape_synth.dir/anneal.cpp.o"
  "CMakeFiles/ape_synth.dir/anneal.cpp.o.d"
  "CMakeFiles/ape_synth.dir/astrx.cpp.o"
  "CMakeFiles/ape_synth.dir/astrx.cpp.o.d"
  "CMakeFiles/ape_synth.dir/awe.cpp.o"
  "CMakeFiles/ape_synth.dir/awe.cpp.o.d"
  "CMakeFiles/ape_synth.dir/netlist_estimate.cpp.o"
  "CMakeFiles/ape_synth.dir/netlist_estimate.cpp.o.d"
  "CMakeFiles/ape_synth.dir/sizing.cpp.o"
  "CMakeFiles/ape_synth.dir/sizing.cpp.o.d"
  "libape_synth.a"
  "libape_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
