
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimator/component_testbench.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/component_testbench.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/component_testbench.cpp.o.d"
  "/root/repo/src/estimator/components.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/components.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/components.cpp.o.d"
  "/root/repo/src/estimator/constraints.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/constraints.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/constraints.cpp.o.d"
  "/root/repo/src/estimator/modules.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/modules.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/modules.cpp.o.d"
  "/root/repo/src/estimator/modules_extra.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/modules_extra.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/modules_extra.cpp.o.d"
  "/root/repo/src/estimator/netlist.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/netlist.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/netlist.cpp.o.d"
  "/root/repo/src/estimator/opamp.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/opamp.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/opamp.cpp.o.d"
  "/root/repo/src/estimator/opamp_testbench.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/opamp_testbench.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/opamp_testbench.cpp.o.d"
  "/root/repo/src/estimator/process.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/process.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/process.cpp.o.d"
  "/root/repo/src/estimator/transistor.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/transistor.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/transistor.cpp.o.d"
  "/root/repo/src/estimator/verify.cpp" "src/estimator/CMakeFiles/ape_estimator.dir/verify.cpp.o" "gcc" "src/estimator/CMakeFiles/ape_estimator.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/ape_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
