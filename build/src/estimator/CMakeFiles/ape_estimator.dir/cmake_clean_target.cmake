file(REMOVE_RECURSE
  "libape_estimator.a"
)
