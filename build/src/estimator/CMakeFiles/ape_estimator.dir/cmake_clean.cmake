file(REMOVE_RECURSE
  "CMakeFiles/ape_estimator.dir/component_testbench.cpp.o"
  "CMakeFiles/ape_estimator.dir/component_testbench.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/components.cpp.o"
  "CMakeFiles/ape_estimator.dir/components.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/constraints.cpp.o"
  "CMakeFiles/ape_estimator.dir/constraints.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/modules.cpp.o"
  "CMakeFiles/ape_estimator.dir/modules.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/modules_extra.cpp.o"
  "CMakeFiles/ape_estimator.dir/modules_extra.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/netlist.cpp.o"
  "CMakeFiles/ape_estimator.dir/netlist.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/opamp.cpp.o"
  "CMakeFiles/ape_estimator.dir/opamp.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/opamp_testbench.cpp.o"
  "CMakeFiles/ape_estimator.dir/opamp_testbench.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/process.cpp.o"
  "CMakeFiles/ape_estimator.dir/process.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/transistor.cpp.o"
  "CMakeFiles/ape_estimator.dir/transistor.cpp.o.d"
  "CMakeFiles/ape_estimator.dir/verify.cpp.o"
  "CMakeFiles/ape_estimator.dir/verify.cpp.o.d"
  "libape_estimator.a"
  "libape_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
