# Empty dependencies file for ape_estimator.
# This may be replaced when dependencies are built.
