
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/analysis.cpp" "src/spice/CMakeFiles/ape_spice.dir/analysis.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/analysis.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/ape_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/devices.cpp" "src/spice/CMakeFiles/ape_spice.dir/devices.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/devices.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/spice/CMakeFiles/ape_spice.dir/measure.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/measure.cpp.o.d"
  "/root/repo/src/spice/mos_model.cpp" "src/spice/CMakeFiles/ape_spice.dir/mos_model.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/mos_model.cpp.o.d"
  "/root/repo/src/spice/noise.cpp" "src/spice/CMakeFiles/ape_spice.dir/noise.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/noise.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/spice/CMakeFiles/ape_spice.dir/parser.cpp.o" "gcc" "src/spice/CMakeFiles/ape_spice.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ape_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
