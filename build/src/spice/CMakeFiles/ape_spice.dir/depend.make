# Empty dependencies file for ape_spice.
# This may be replaced when dependencies are built.
