file(REMOVE_RECURSE
  "libape_spice.a"
)
