file(REMOVE_RECURSE
  "CMakeFiles/ape_spice.dir/analysis.cpp.o"
  "CMakeFiles/ape_spice.dir/analysis.cpp.o.d"
  "CMakeFiles/ape_spice.dir/circuit.cpp.o"
  "CMakeFiles/ape_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/ape_spice.dir/devices.cpp.o"
  "CMakeFiles/ape_spice.dir/devices.cpp.o.d"
  "CMakeFiles/ape_spice.dir/measure.cpp.o"
  "CMakeFiles/ape_spice.dir/measure.cpp.o.d"
  "CMakeFiles/ape_spice.dir/mos_model.cpp.o"
  "CMakeFiles/ape_spice.dir/mos_model.cpp.o.d"
  "CMakeFiles/ape_spice.dir/noise.cpp.o"
  "CMakeFiles/ape_spice.dir/noise.cpp.o.d"
  "CMakeFiles/ape_spice.dir/parser.cpp.o"
  "CMakeFiles/ape_spice.dir/parser.cpp.o.d"
  "libape_spice.a"
  "libape_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
