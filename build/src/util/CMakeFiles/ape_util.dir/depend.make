# Empty dependencies file for ape_util.
# This may be replaced when dependencies are built.
