file(REMOVE_RECURSE
  "libape_util.a"
)
