file(REMOVE_RECURSE
  "CMakeFiles/ape_util.dir/poly.cpp.o"
  "CMakeFiles/ape_util.dir/poly.cpp.o.d"
  "CMakeFiles/ape_util.dir/units.cpp.o"
  "CMakeFiles/ape_util.dir/units.cpp.o.d"
  "libape_util.a"
  "libape_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ape_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
