#pragma once
/// \file sizing.h
/// The circuit-sizing problem the ASTRX/OBLX-like engine optimizes: a
/// fixed opamp topology whose device geometries and compensation are the
/// unknowns (paper section 3: "the circuit topology is already selected;
/// the transistor sizes and bias points are set as unknowns; the user
/// provides intervals to establish ranges of allowable values").
///
/// Candidate points are scored by an analytic evaluation: the DC bias is
/// solved per branch from the model cards (including the second stage's
/// operating-point consistency, which is where blind search most often
/// produces non-functional designs), then the small-signal performance
/// composition. Final designs are always re-verified on the full MNA
/// simulator.

#include <string>
#include <vector>

#include "src/estimator/opamp.h"
#include "src/estimator/process.h"

namespace ape::synth {

/// The unknown vector of the two-stage (optionally buffered) opamp.
struct OpAmpVars {
  double w1 = 10e-6, l1 = 2.4e-6;  ///< input pair
  double w3 = 10e-6, l3 = 2.4e-6;  ///< PMOS mirror load (and M6's Vov ref)
  double w5 = 10e-6, l5 = 4.8e-6;  ///< tail device
  double w6 = 20e-6, l6 = 2.4e-6;  ///< second-stage PMOS
  double w7 = 10e-6, l7 = 2.4e-6;  ///< second-stage sink
  double w8 = 5e-6;                ///< bias diode
  double l8 = 4.8e-6;              ///< bias diode length
  double w9 = 0.0, w10 = 0.0;      ///< buffer devices (0 = unbuffered)
  double cc = 2e-12;               ///< Miller capacitor

  bool buffered() const { return w9 > 0.0; }

  /// Flatten to the optimizer vector (13 entries, 15 when buffered).
  std::vector<double> pack() const;
  static OpAmpVars unpack(const std::vector<double>& x, bool buffered);
  static std::vector<std::string> names(bool buffered);
};

/// Analytic performance evaluation at a candidate point.
struct OpAmpEval {
  bool functional = false;  ///< bias point exists with all devices saturated
  double gain = 0.0;
  double ugf_hz = 0.0;
  double phase_margin = 0.0;
  double gate_area = 0.0;   ///< [m^2]
  double dc_power = 0.0;    ///< [W]
  double slew = 0.0;        ///< [V/s]
  double zout = 0.0;
  double itail = 0.0;
  double imbalance = 0.0;   ///< second-stage current mismatch when stuck
};

/// Evaluate an opamp candidate against the process at (ibias, cload).
OpAmpEval evaluate_opamp_vars(const est::Process& proc, const OpAmpVars& v,
                              double ibias, double cload);

/// Scalarized ASTRX-style cost: sum of squared relative constraint
/// violations (gain/UGF/area/phase margin) plus a small power objective;
/// non-functional points get a large plateau plus an imbalance hint.
double opamp_cost(const OpAmpEval& e, const est::OpAmpSpec& spec);

/// Search box helpers.
/// Blind (Table 1): the full technology-legal ranges.
std::vector<std::pair<double, double>> blind_bounds(const est::Process& proc,
                                                    bool buffered);
/// APE-seeded (Table 4): +/- frac around the seed point.
std::vector<std::pair<double, double>> seeded_bounds(
    const std::vector<double>& seed, double frac,
    const est::Process& proc, bool buffered);

/// Extract the unknown vector from an APE design (the seed point).
OpAmpVars vars_from_design(const est::OpAmpDesign& d);

/// Materialize a full OpAmpDesign (for netlisting / SPICE verification)
/// from a candidate point; perf fields come from the analytic evaluation.
est::OpAmpDesign design_from_vars(const est::Process& proc, const OpAmpVars& v,
                                  const est::OpAmpSpec& spec);

}  // namespace ape::synth
