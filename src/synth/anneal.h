#pragma once
/// \file anneal.h
/// Generic simulated-annealing minimizer - the search paradigm of
/// ASTRX/OBLX (paper section 3: "the optimization engine is based on a
/// simulated annealing algorithm").

#include <functional>
#include <utility>
#include <vector>

#include "src/util/diagnostics.h"
#include "src/util/rng.h"

namespace ape::synth {

struct AnnealOptions {
  int iterations = 4000;      ///< total cost evaluations
  double t_start_frac = 0.3;  ///< initial temperature as a fraction of |cost0|
  double t_end_frac = 1e-5;   ///< final temperature fraction
  double move_frac = 0.25;    ///< initial move size as a fraction of range
  uint64_t seed = 1;
  /// Cooperative budget (deadline and/or evaluation cap); checked once
  /// per iteration. When it expires the search stops and returns its
  /// best-so-far point with evaluations < iterations. Each cost
  /// evaluation charges one unit. Not owned.
  RunBudget* budget = nullptr;
};

struct AnnealResult {
  std::vector<double> best_x;
  double best_cost = 0.0;
  double start_cost = 0.0;
  int evaluations = 0;
  int accepted = 0;
  /// Candidates whose cost came back NaN/inf: always rejected (the
  /// acceptance test and best-point tracking only ever see finite
  /// costs), counted here so callers can spot a sick cost function.
  int rejected_nonfinite = 0;
  bool budget_exhausted = false;  ///< stopped early on an expired RunBudget
};

/// Minimize \p cost over the box \p bounds starting from \p x0 (clamped
/// into the box). The cost function should be finite and return large
/// values for infeasible points; NaN/inf costs are tolerated by treating
/// the candidate as rejected (see AnnealResult::rejected_nonfinite), and
/// a cost throwing ape::Error propagates (synthesis drivers wrap their
/// cost functions to absorb per-candidate failures).
AnnealResult anneal(const std::function<double(const std::vector<double>&)>& cost,
                    const std::vector<std::pair<double, double>>& bounds,
                    std::vector<double> x0, const AnnealOptions& opts = {});

}  // namespace ape::synth
