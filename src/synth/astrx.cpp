#include "src/synth/astrx.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>

#include "src/runtime/executor.h"
#include "src/spice/analysis.h"
#include "src/spice/fault.h"
#include "src/spice/measure.h"
#include "src/spice/parser.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"

namespace ape::synth {
namespace {

/// Cost assigned to candidates whose evaluation threw: a plateau far
/// above any real constraint-violation cost so the annealer walks away,
/// while the failure is counted instead of silently dropped.
constexpr double kSkippedCandidateCost = 1e6;

using est::ModuleDesign;
using est::ModuleKind;
using est::ModuleSpec;
using est::OpAmpDesign;
using est::OpAmpSpec;
using est::Process;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Geometric center of a box (the "no initial point" start).
std::vector<double> box_center(const std::vector<std::pair<double, double>>& b) {
  std::vector<double> x(b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    x[i] = std::sqrt(std::max(b[i].first, 1e-300) *
                     std::max(b[i].second, 1e-300));
  }
  return x;
}

/// One restart's search outcome plus its absorbed-failure counter (the
/// counter is per-restart so parallel restarts never share a mutable).
struct RestartRun {
  AnnealResult ar;
  int skipped = 0;
};

/// Aggregated multi-start result.
struct MultiStartResult {
  AnnealResult best;
  int best_restart = 0;
  int restarts_run = 1;
  int skipped = 0;             ///< summed over restarts
  int rejected_nonfinite = 0;  ///< summed over restarts
  int evaluations = 0;         ///< summed over restarts
  bool budget_exhausted = false;
};

/// Run opts.restarts independent anneals of the cost produced by
/// \p make_cost (called once per restart with that restart's skipped
/// counter) and pick the winner: lowest best_cost, lowest restart index
/// on ties. Restart 0 anneals with opts.anneal.seed verbatim; restart
/// r > 0 with the derived stream Rng::derive_stream(seed, r). Every
/// restart always runs to completion, so the aggregate is bit-identical
/// whether the restarts execute serially or on a pool of any size.
MultiStartResult multi_start_anneal(
    const std::function<std::function<double(const std::vector<double>&)>(
        int* skipped)>& make_cost,
    const std::vector<std::pair<double, double>>& bounds,
    const std::vector<double>& x0, const SynthesisOptions& opts) {
  const int m = std::max(opts.restarts, 1);
  std::vector<RestartRun> runs(static_cast<size_t>(m));

  auto run_one = [&](int r) {
    AnnealOptions ao = opts.anneal;
    if (r > 0) ao.seed = Rng::derive_stream(opts.anneal.seed, uint64_t(r));
    RestartRun run;
    run.ar = anneal(make_cost(&run.skipped), bounds, x0, ao);
    return run;
  };

  int threads = opts.restart_threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  threads = std::min(threads, m);

  int executed = m;
  if (m == 1 || threads <= 1) {
    // Serial mode honours the proven cost floor: once a restart lands
    // within early_stop_frac of a bound no point in the box can beat,
    // further restarts are provably wasted and are not launched.
    double best_so_far = std::numeric_limits<double>::infinity();
    for (int r = 0; r < m; ++r) {
      runs[size_t(r)] = run_one(r);
      best_so_far = std::min(best_so_far, runs[size_t(r)].ar.best_cost);
      if (opts.cost_lower_bound > 0.0 && r + 1 < m &&
          best_so_far <=
              opts.cost_lower_bound * (1.0 + opts.early_stop_frac)) {
        executed = r + 1;
        break;
      }
    }
  } else {
    // Worker threads have empty provenance stacks; re-anchor each
    // restart under the chain open on the calling thread.
    const std::string parent = ErrorContext::chain();
    runtime::Executor pool(threads);
    std::vector<std::future<RestartRun>> futures;
    futures.reserve(static_cast<size_t>(m));
    for (int r = 0; r < m; ++r) {
      futures.push_back(pool.submit([&run_one, &parent, r] {
        const std::string frame = "restart[" + std::to_string(r) + "]";
        ErrorContext scope(parent.empty() ? frame : parent + " -> " + frame);
        return run_one(r);
      }));
    }
    for (int r = 0; r < m; ++r) runs[size_t(r)] = futures[size_t(r)].get();
  }

  MultiStartResult ms;
  ms.restarts_run = executed;
  ms.best = runs[0].ar;
  for (int r = 0; r < executed; ++r) {
    const RestartRun& run = runs[size_t(r)];
    ms.skipped += run.skipped;
    ms.rejected_nonfinite += run.ar.rejected_nonfinite;
    ms.evaluations += run.ar.evaluations;
    ms.budget_exhausted = ms.budget_exhausted || run.ar.budget_exhausted;
    if (r > 0 && run.ar.best_cost < ms.best.best_cost) {
      ms.best = run.ar;
      ms.best_restart = r;
    }
  }
  return ms;
}

}  // namespace

SynthesisOutcome synthesize_opamp(const Process& proc, const OpAmpSpec& spec,
                                  const SynthesisOptions& opts) {
  ErrorContext scope("synthesize_opamp");
  const double t0 = now_seconds();
  const bool buffered = spec.buffer;

  std::vector<std::pair<double, double>> bounds;
  std::vector<double> x0;
  if (opts.use_ape_seed) {
    OpAmpDesign seed_local;
    const OpAmpDesign* seed = opts.seed_design;
    if (seed == nullptr) {
      seed_local = est::OpAmpEstimator(proc).estimate(spec);
      seed = &seed_local;
    }
    x0 = vars_from_design(*seed).pack();
    bounds = seeded_bounds(x0, opts.interval_frac, proc, buffered);
  } else {
    bounds = blind_bounds(proc, buffered);
    x0 = box_center(bounds);
  }
  // Proven feasible box (SynthesisOptions::feasible_box): every sizing
  // that can meet the spec lies inside it, so restricting the search —
  // and therefore every restart's random walk — to the intersection
  // loses nothing and skips provably-hopeless regions. Dimension
  // mismatch (buffered layout vs the 13-var proof) leaves the bounds
  // untouched.
  if (opts.feasible_box.size() == bounds.size()) {
    for (size_t i = 0; i < bounds.size(); ++i) {
      const double lo = std::max(bounds[i].first, opts.feasible_box[i].first);
      const double hi = std::min(bounds[i].second, opts.feasible_box[i].second);
      if (lo <= hi) {
        bounds[i] = {lo, hi};
        x0[i] = std::clamp(x0[i], lo, hi);
      }
    }
  }

  OpAmpSpec target = spec;
  target.gain *= opts.target_margin;
  target.ugf_hz *= opts.target_margin;
  // Worst-corner yield term (SynthesisOptions::yield_weight): score the
  // candidate at every corner card and add the worst weighted corner
  // cost on top of the nominal cost. A corner that cannot evaluate the
  // candidate contributes the skipped plateau, so corner-fragile points
  // are penalized, never silently accepted.
  const bool yield_aware =
      opts.yield_weight > 0.0 && !opts.corner_procs.empty();
  auto corner_term = [&opts, &spec, target, buffered,
                      yield_aware](const OpAmpVars& v) {
    if (!yield_aware) return 0.0;
    double worst = 0.0;
    for (const est::Process& cp : opts.corner_procs) {
      double c;
      try {
        c = opamp_cost(evaluate_opamp_vars(cp, v, spec.ibias, spec.cload),
                       target);
      } catch (const Error&) {
        c = kSkippedCandidateCost;
      }
      if (c > worst) worst = c;
    }
    return opts.yield_weight * worst;
  };
  auto make_cost = [&proc, &spec, target, buffered, &corner_term](int* skipped) {
    return [&proc, &spec, target, buffered, &corner_term,
            skipped](const std::vector<double>& x) {
      try {
        if (auto* fi = spice::fault_injector()) fi->on_cost_eval();
        const OpAmpVars v = OpAmpVars::unpack(x, buffered);
        return opamp_cost(evaluate_opamp_vars(proc, v, spec.ibias, spec.cload),
                          target) +
               corner_term(v);
      } catch (const Error&) {
        // A candidate the estimator cannot evaluate (SpecError on a wild
        // geometry, numerical failure) is a bad point, not a dead run.
        ++*skipped;
        return kSkippedCandidateCost;
      }
    };
  };
  const MultiStartResult ms = multi_start_anneal(make_cost, bounds, x0, opts);
  const AnnealResult& ar = ms.best;

  SynthesisOutcome out = finalize_opamp_outcome(proc, spec, ar.best_x, ar.best_cost);
  out.skipped_candidates = ms.skipped;
  out.rejected_nonfinite = ms.rejected_nonfinite;
  out.budget_exhausted = ms.budget_exhausted;
  out.evaluations = ms.evaluations;
  out.restarts_run = ms.restarts_run;
  out.best_restart = ms.best_restart;
  out.cpu_seconds = now_seconds() - t0;
  return out;
}

SynthesisOutcome finalize_opamp_outcome(const Process& proc,
                                        const OpAmpSpec& spec,
                                        const std::vector<double>& best_x,
                                        double best_cost) {
  ErrorContext scope("finalize_opamp_outcome");
  const bool buffered = spec.buffer;
  SynthesisOutcome out;
  out.cost = best_cost;
  out.best_x = best_x;
  const OpAmpVars best = OpAmpVars::unpack(best_x, buffered);
  const OpAmpEval ev = evaluate_opamp_vars(proc, best, spec.ibias, spec.cload);
  out.functional = ev.functional;
  out.design = design_from_vars(proc, best, spec);

  // Verify on the full simulator (skip the transient when clearly broken).
  bool sim_ok = false;
  try {
    out.sim = est::simulate_opamp(out.design, proc, /*with_transient=*/ev.functional);
    sim_ok = true;
  } catch (const Error&) {
    sim_ok = false;
  }
  out.sim_failed = !sim_ok;

  // Table-1 style diagnosis against the spec.
  const double vdd = proc.vdd;
  if (!sim_ok || !ev.functional || out.sim.out_dc < 0.25 ||
      out.sim.out_dc > vdd - 0.25) {
    out.comment = "doesn't work";
    return out;
  }
  if (out.sim.gain < 0.9 * spec.gain) {
    out.comment = out.sim.gain < 0.5 * spec.gain ? "Gain << Spec" : "Gain < spec";
    return out;
  }
  const double ugf = out.sim.ugf_hz.value_or(0.0);
  if (ugf < 0.9 * spec.ugf_hz) {
    out.comment = "UGF < spec";
    return out;
  }
  if (spec.area_budget > 0.0 &&
      out.design.perf.gate_area > 1.15 * spec.area_budget) {
    out.comment = out.design.perf.gate_area > 3.0 * spec.area_budget
                      ? "Area >> Spec"
                      : "Area > spec";
    return out;
  }
  out.meets_spec = true;
  out.comment = "Meets spec";
  return out;
}

// ---------------------------------------------------------------------------
// Module-level synthesis.

namespace {

/// How many distinct opamp geometry blocks a module optimizes (the flash
/// ADC shares one comparator sizing across all 2^n - 1 instances).
size_t distinct_amps(const ModuleDesign& proto) {
  switch (proto.spec.kind) {
    case ModuleKind::FlashAdc: return 1;
    default: return proto.opamps.size();
  }
}

bool table5_kind(ModuleKind k) {
  switch (k) {
    case ModuleKind::AudioAmp:
    case ModuleKind::SampleHold:
    case ModuleKind::FlashAdc:
    case ModuleKind::LowPassFilter:
    case ModuleKind::BandPassFilter:
      return true;
    default:
      return false;
  }
}

/// Names of the passive unknowns per kind.
std::vector<std::string> passive_vars(const ModuleDesign& proto) {
  switch (proto.spec.kind) {
    case ModuleKind::AudioAmp: return {"Rb"};
    case ModuleKind::SampleHold: return {"Rb", "Ch"};
    case ModuleKind::FlashAdc: return {"Rseg"};
    case ModuleKind::LowPassFilter: {
      std::vector<std::string> names;
      for (size_t st = 0; st < proto.opamps.size(); ++st) {
        const std::string s = std::to_string(st);
        names.push_back("R" + s);
        names.push_back("C" + s);
        names.push_back("Rb" + s);
      }
      return names;
    }
    case ModuleKind::BandPassFilter: return {"R1", "R2", "C"};
    default: return {};
  }
}

std::pair<double, double> passive_blind_bound(const std::string& name) {
  if (name == "Ch") return {1e-12, 1e-9};
  if (name == "Rseg") return {500.0, 100e3};
  if (name[0] == 'C') return {10e-12, 1e-6};
  return {100.0, 10e6};  // resistors
}

double get_passive(const ModuleDesign& d, const std::string& name) {
  for (const auto& p : d.passives) {
    if (p.name == name) return p.value;
  }
  throw SpecError("module synthesis: missing passive " + name);
}

void set_passive(ModuleDesign& d, const std::string& name, double value) {
  for (auto& p : d.passives) {
    if (p.name == name) {
      p.value = value;
      return;
    }
  }
  throw SpecError("module synthesis: missing passive " + name);
}

/// Build the candidate module design from an unknown vector.
ModuleDesign module_from_vars(const Process& proc, const ModuleDesign& proto,
                              const std::vector<double>& x,
                              bool* functional_out) {
  ModuleDesign d = proto;
  const size_t n_amps = distinct_amps(proto);
  const bool buffered = proto.opamps.front().spec.buffer;
  const size_t stride = buffered ? 15 : 13;
  bool functional = true;

  for (size_t a = 0; a < n_amps; ++a) {
    std::vector<double> sub(x.begin() + a * stride,
                            x.begin() + (a + 1) * stride);
    const OpAmpVars v = OpAmpVars::unpack(sub, buffered);
    const OpAmpSpec aspec = proto.opamps[a].spec;
    const OpAmpEval ev = evaluate_opamp_vars(proc, v, aspec.ibias, aspec.cload);
    if (!ev.functional) functional = false;
    OpAmpDesign ad = design_from_vars(proc, v, aspec);
    if (proto.spec.kind == ModuleKind::FlashAdc) {
      for (auto& amp : d.opamps) amp = ad;
    } else {
      d.opamps[a] = ad;
    }
  }
  const auto pnames = passive_vars(proto);
  for (size_t i = 0; i < pnames.size(); ++i) {
    set_passive(d, pnames[i], x[n_amps * stride + i]);
  }
  if (functional_out != nullptr) *functional_out = functional;
  return d;
}

/// Fast (macromodel / analytic) metrics of a candidate module.
struct ModuleMetrics {
  bool ok = false;
  double gain = 0.0, bw = 0.0, f3db = 0.0, f0 = 0.0, delay = 0.0, area = 0.0,
         slew = 0.0;
};

ModuleMetrics module_metrics_fast(const Process& proc, const ModuleDesign& d,
                                  bool functional, int* skipped) {
  ModuleMetrics m;
  m.area = 0.0;
  for (const auto& a : d.opamps) m.area += a.perf.gate_area;
  for (const auto& s : d.switches) m.area += s.gate_area();
  if (!functional) return m;

  if (d.spec.kind == ModuleKind::FlashAdc) {
    const auto& comp = d.opamps.front().perf;
    const double lsb = proc.vdd / (1 << d.spec.order);
    const double v_ov = 0.5 * lsb;
    const double t_linear =
        0.5 * proc.vdd / (2.0 * M_PI * std::max(comp.ugf_hz, 1.0) * v_ov);
    const double t_slew = 0.5 * proc.vdd / std::max(comp.slew, 1.0);
    const double r_ladder = get_passive(d, "Rseg") * (1 << d.spec.order) / 4.0;
    const double cin = d.opamps.front().transistors.front().cgs * 2.0;
    m.delay = std::max(t_linear, t_slew) + 3.0 * r_ladder * cin;
    m.slew = comp.slew;
    m.ok = comp.gain > 10.0;
    return m;
  }

  try {
    const est::Testbench tb = est::macro_testbench(d, proc);
    const double fc = d.spec.kind == ModuleKind::AudioAmp ||
                              d.spec.kind == ModuleKind::SampleHold
                          ? d.spec.bw_hz
                          : d.spec.f0_hz;
    spice::Circuit ckt = spice::parse_netlist(tb.netlist);
    (void)spice::dc_operating_point(ckt);
    const auto ac = spice::ac_analysis(ckt, fc * 1e-2, fc * 1e2, 10);
    const spice::Bode bode(ac, ckt.find_node("out"));
    m.gain = bode.dc_gain();
    m.bw = bode.f_3db().value_or(0.0);
    m.f3db = m.bw;
    if (d.spec.kind == ModuleKind::BandPassFilter) {
      m.f0 = bode.peak_freq();
      m.gain = bode.peak_gain();
      m.bw = bode.bandwidth_3db().value_or(0.0);
    }
    m.slew = d.opamps.front().perf.slew;
    m.ok = true;
  } catch (const Error&) {
    // Macromodel netlist failed to parse/solve for this candidate:
    // score it as non-functional and count the skip.
    m.ok = false;
    if (skipped != nullptr) ++*skipped;
  }
  return m;
}

double module_cost(const ModuleMetrics& m, const ModuleSpec& spec,
                   bool functional) {
  if (!functional || !m.ok) return 1e3;
  auto rel = [](double value, double target) {
    return target > 0.0 ? value / target - 1.0 : 0.0;
  };
  auto under = [&](double value, double target) {
    return std::max(0.0, -rel(value, target));
  };
  auto over = [&](double value, double target) {
    return std::max(0.0, rel(value, target));
  };
  double c = 0.0;
  switch (spec.kind) {
    case ModuleKind::AudioAmp: {
      const double g = std::fabs(rel(std::fabs(m.gain), spec.gain));
      const double b = under(m.bw, spec.bw_hz);
      c = 10.0 * g * g + 10.0 * b * b;
      break;
    }
    case ModuleKind::SampleHold: {
      const double g = std::fabs(rel(std::fabs(m.gain), spec.gain));
      const double b = under(m.bw, spec.bw_hz);
      const double s = under(m.slew, spec.slew);
      c = 10.0 * g * g + 10.0 * b * b + 4.0 * s * s;
      break;
    }
    case ModuleKind::FlashAdc: {
      const double dl = over(m.delay, spec.delay_s);
      c = 10.0 * dl * dl;
      break;
    }
    case ModuleKind::LowPassFilter: {
      const double f = std::fabs(rel(m.f3db, spec.f0_hz));
      c = 20.0 * f * f;
      break;
    }
    case ModuleKind::BandPassFilter: {
      const double f = std::fabs(rel(m.f0, spec.f0_hz));
      const double b = std::fabs(rel(m.bw, spec.f0_hz));  // BW = f0 shape
      c = 20.0 * f * f + 5.0 * b * b;
      break;
    }
    default:
      break;  // unreachable: synthesize_module guards on table5_kind
  }
  if (spec.area_budget > 0.0) {
    const double a = over(m.area, spec.area_budget);
    c += 4.0 * a * a;
  }
  c += 0.02 * m.area / 5e-9;
  return c;
}

}  // namespace

void verify_module(const Process& proc, const ModuleDesign& d,
                   ModuleSynthesisOutcome& out) {
  ErrorContext scope("verify_module");
  const est::Testbench tb = d.testbench(proc);
  spice::Circuit ckt = spice::parse_netlist(tb.netlist);

  out.sim_area = 0.0;
  for (const auto& a : d.opamps) out.sim_area += a.perf.gate_area;
  for (const auto& s : d.switches) out.sim_area += s.gate_area();

  if (d.spec.kind == ModuleKind::FlashAdc ||
      d.spec.kind == ModuleKind::Comparator) {
    const double window = 3.0 * std::max(d.spec.delay_s, d.perf.delay_s) + 2e-6;
    const auto tr = spice::transient(ckt, window / 600.0, 1e-6 + window);
    const auto tc = spice::crossing_time(tr, ckt.find_node("out"), 0.5 * proc.vdd);
    out.sim_delay_s = tc ? std::max(*tc - 1e-6, 0.0) : window;
    return;
  }

  (void)spice::dc_operating_point(ckt);
  const double fc = (d.spec.kind == ModuleKind::AudioAmp ||
                     d.spec.kind == ModuleKind::SampleHold ||
                     d.spec.kind == ModuleKind::InvertingAmp ||
                     d.spec.kind == ModuleKind::Adder)
                        ? d.spec.bw_hz
                        : d.spec.f0_hz;
  // Integrators put their lossy corner decades below the unity-gain
  // frequency: start the sweep low enough to see the true DC gain.
  const double f_start =
      d.spec.kind == ModuleKind::Integrator ? fc * 1e-4 : fc * 1e-2;
  const auto ac = spice::ac_analysis(ckt, f_start, fc * 300.0, 20);
  const spice::Bode bode(ac, ckt.find_node("out"));
  out.sim_gain = bode.dc_gain();
  out.sim_bw_hz = bode.f_3db().value_or(0.0);
  out.sim_f3db_hz = out.sim_bw_hz;
  out.sim_f20db_hz = bode.mag_crossing(bode.dc_gain() / 10.0).value_or(0.0);
  if (d.spec.kind == ModuleKind::BandPassFilter) {
    out.sim_f0_hz = bode.peak_freq();
    out.sim_gain = bode.peak_gain();
    out.sim_bw_hz = bode.bandwidth_3db().value_or(0.0);
  }

  if (d.spec.kind == ModuleKind::SampleHold) {
    // Slew from the built-in input pulse.
    const double est_slew = std::max(d.perf.slew, 1e3);
    const double window = std::clamp(8.0 * 0.4 / est_slew, 2e-6, 1e-2);
    const auto tr = spice::transient(ckt, window / 300.0, 1e-6 + window);
    const spice::NodeId out_node = ckt.find_node("out");
    const double v0 = tr.voltage(out_node, 0);
    const double v1 = spice::final_value(tr, out_node);
    const auto t20 = spice::crossing_time(tr, out_node, v0 + 0.2 * (v1 - v0));
    const auto t80 = spice::crossing_time(tr, out_node, v0 + 0.8 * (v1 - v0));
    if (t20 && t80 && *t80 > *t20) {
      out.sim_slew = 0.6 * std::fabs(v1 - v0) / (*t80 - *t20);
    }
  }
}

ModuleSynthesisOutcome synthesize_module(const Process& proc,
                                         const ModuleSpec& spec,
                                         const SynthesisOptions& opts) {
  ErrorContext scope("synthesize_module");
  if (!table5_kind(spec.kind)) {
    throw SpecError(
        "synthesize_module: only the Table-5 module kinds (amp, s&h, adc, "
        "lpf, bpf) have synthesis cost models; estimate() supports all kinds");
  }
  const double t0 = now_seconds();

  // Structure (topology) comes from the estimator in both modes; blind
  // mode discards its sizing, mirroring ASTRX's fixed-topology premise.
  ModuleDesign proto_local;
  if (opts.module_proto == nullptr) {
    proto_local = est::ModuleEstimator(proc).estimate(spec);
  }
  const ModuleDesign& proto =
      opts.module_proto != nullptr ? *opts.module_proto : proto_local;
  const size_t n_amps = distinct_amps(proto);
  const bool buffered = proto.opamps.front().spec.buffer;
  const auto pnames = passive_vars(proto);

  std::vector<std::pair<double, double>> bounds;
  std::vector<double> seed;
  for (size_t a = 0; a < n_amps; ++a) {
    const auto sub = vars_from_design(proto.opamps[a]).pack();
    seed.insert(seed.end(), sub.begin(), sub.end());
    const auto b = blind_bounds(proc, buffered);
    bounds.insert(bounds.end(), b.begin(), b.end());
  }
  for (const auto& name : pnames) {
    seed.push_back(get_passive(proto, name));
    bounds.push_back(passive_blind_bound(name));
  }
  std::vector<double> x0;
  if (opts.use_ape_seed) {
    x0 = seed;
    auto nb = bounds;
    for (size_t i = 0; i < seed.size(); ++i) {
      nb[i] = {std::max(seed[i] * (1.0 - opts.interval_frac), bounds[i].first),
               std::min(seed[i] * (1.0 + opts.interval_frac), bounds[i].second)};
      if (nb[i].first > nb[i].second) {
        const double pin = std::clamp(seed[i], bounds[i].first, bounds[i].second);
        nb[i] = {pin, pin};
      }
    }
    bounds = nb;
  } else {
    x0 = box_center(bounds);
  }

  auto make_cost = [&proc, &proto, &spec](int* skipped) {
    return [&proc, &proto, &spec, skipped](const std::vector<double>& x) {
      try {
        if (auto* fi = spice::fault_injector()) fi->on_cost_eval();
        bool functional = false;
        const ModuleDesign cand = module_from_vars(proc, proto, x, &functional);
        return module_cost(module_metrics_fast(proc, cand, functional, skipped),
                           spec, functional);
      } catch (const Error&) {
        ++*skipped;
        return kSkippedCandidateCost;
      }
    };
  };
  const MultiStartResult ms = multi_start_anneal(make_cost, bounds, x0, opts);
  const AnnealResult& ar = ms.best;

  ModuleSynthesisOutcome out;
  out.cost = ar.best_cost;
  out.skipped_candidates = ms.skipped;
  out.rejected_nonfinite = ms.rejected_nonfinite;
  out.budget_exhausted = ms.budget_exhausted;
  out.evaluations = ms.evaluations;
  out.restarts_run = ms.restarts_run;
  out.best_restart = ms.best_restart;
  out.best_x = ar.best_x;
  bool functional = false;
  out.design = module_from_vars(proc, proto, ar.best_x, &functional);
  out.functional = functional;

  bool sim_ok = false;
  try {
    verify_module(proc, out.design, out);
    sim_ok = true;
  } catch (const Error&) {
    sim_ok = false;
  }
  out.sim_failed = !sim_ok;
  out.cpu_seconds = now_seconds() - t0;

  if (!sim_ok || !functional) {
    out.comment = "Doesn't Work";
    return out;
  }

  // Spec check per kind (simulator-verified).
  auto within = [](double value, double target, double frac) {
    return target <= 0.0 ||
           (value >= target * (1.0 - frac) && value <= target * (1.0 + frac));
  };
  bool ok = true;
  std::string why;
  switch (spec.kind) {
    case ModuleKind::AudioAmp:
      if (!within(std::fabs(out.sim_gain), spec.gain, 0.35)) {
        ok = false;
        why = "gain off spec";
      } else if (out.sim_bw_hz < 0.9 * spec.bw_hz) {
        ok = false;
        why = "BW < spec";
      }
      break;
    case ModuleKind::SampleHold:
      if (!within(std::fabs(out.sim_gain), spec.gain, 0.25)) {
        ok = false;
        why = "gain off spec";
      } else if (out.sim_bw_hz < 0.9 * spec.bw_hz) {
        ok = false;
        why = "BW < spec";
      } else if (out.sim_slew < 0.9 * spec.slew) {
        ok = false;
        why = "SR < spec";
      }
      break;
    case ModuleKind::FlashAdc:
      if (out.sim_delay_s > 1.1 * spec.delay_s) {
        ok = false;
        why = "delay > spec";
      }
      break;
    case ModuleKind::LowPassFilter:
      if (!within(out.sim_f3db_hz, spec.f0_hz, 0.15)) {
        ok = false;
        why = "f-3dB off spec";
      }
      break;
    case ModuleKind::BandPassFilter:
      if (!within(out.sim_f0_hz, spec.f0_hz, 0.15)) {
        ok = false;
        why = "f0 off spec";
      }
      break;
    default:
      break;  // unreachable: synthesize_module guards on table5_kind
  }
  if (ok && spec.area_budget > 0.0 && out.sim_area > 2.0 * spec.area_budget) {
    ok = false;
    why = "area >> spec";
  }
  out.meets_spec = ok;
  out.comment = ok ? "Meets spec" : why;
  return out;
}

}  // namespace ape::synth
