#pragma once
/// \file awe.h
/// Asymptotic Waveform Evaluation (Pillage & Rohrer) - the reduced-order
/// AC evaluator ASTRX/OBLX used inside its annealing loop (paper section
/// 3: "The AWE technique is used to simulate the circuit").
///
/// Given a circuit with a cached DC operating point, the linearized MNA
/// system is (G + sC) X(s) = B. Moments of X are m0 = G^-1 B,
/// m_k = -G^-1 C m_{k-1}; a Pade approximation of order q turns the first
/// 2q moments of the probed output into a rational model whose poles and
/// residues give the full frequency response at negligible cost.

#include <complex>
#include <string>
#include <utility>
#include <vector>

#include "src/spice/circuit.h"

namespace ape::synth {

/// A reduced-order model of one transfer function H(s) = V(out) / stimulus.
class AweModel {
public:
  /// Magnitude/phase of the reduced model at frequency f [Hz].
  std::complex<double> eval(double f_hz) const;

  /// DC value of the transfer function (moment 0).
  double dc_gain() const { return m0_; }

  /// Model poles [rad/s] (negative real parts for a stable circuit).
  const std::vector<std::complex<double>>& poles() const { return poles_; }

  /// First |H| = 1 crossing, found by bisection on the model [Hz];
  /// 0 when the model never crosses unity below f_max.
  double unity_gain_freq(double f_max = 1e12) const;

  /// First |H| = dc/sqrt(2) crossing [Hz].
  double f_3db(double f_max = 1e12) const;

private:
  friend AweModel awe_reduce(
      spice::Circuit&, const std::string&, int,
      const std::vector<std::string>&,
      const std::vector<std::pair<std::string, double>>&);
  double m0_ = 0.0;
  std::vector<std::complex<double>> poles_;
  std::vector<std::complex<double>> residues_;
};

/// Build a q-pole AWE model of the voltage at \p out_node with respect to
/// the circuit's AC stimulus. Requires dc_operating_point() to have run
/// (devices must hold their small-signal caches). Typical q: 2..6.
/// \p exclude lists device names to omit from the linearized system -
/// used to drop DC-feedback bias tricks (huge L / C) so the expansion
/// around s = 0 sees the open loop. Throws NumericError if the moment
/// matrix is singular (raise/lower q).
/// \p ground_ties adds a conductance from each named node to ground in
/// the linearized system (AC-grounding a bias node whose feedback element
/// was excluded, without touching the cached operating point).
AweModel awe_reduce(
    spice::Circuit& ckt, const std::string& out_node, int q = 4,
    const std::vector<std::string>& exclude = {},
    const std::vector<std::pair<std::string, double>>& ground_ties = {});

}  // namespace ape::synth
