#pragma once
/// \file astrx.h
/// The ASTRX/OBLX-like synthesis driver: simulated-annealing sizing of a
/// fixed topology, run either blind over the full technology-legal box
/// (Table 1) or seeded at the APE estimate with narrow intervals
/// (Table 4 / Table 5). Final candidates are verified on the MNA
/// simulator, mirroring the paper's SPICE check of synthesis output.

#include <string>
#include <vector>

#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/estimator/verify.h"
#include "src/synth/anneal.h"
#include "src/synth/sizing.h"

namespace ape::synth {

struct SynthesisOptions {
  bool use_ape_seed = false;   ///< seed + narrow intervals from APE
  double interval_frac = 0.2;  ///< +/- fraction around the seed (paper: 20%)
  /// Design margin applied to the gain/UGF targets inside the cost
  /// function (the analytic evaluator sits a few percent optimistic of
  /// the simulator, exactly as ASTRX's AWE models did).
  double target_margin = 1.15;
  AnnealOptions anneal;

  /// Independent annealing restarts (multi-start). Restart 0 uses
  /// anneal.seed unchanged (so restarts = 1 reproduces the single-start
  /// result exactly); restart r > 0 anneals with the decorrelated stream
  /// Rng::derive_stream(anneal.seed, r). The best restart is selected by
  /// lowest cost with the lowest restart index as the fixed tie-break —
  /// a pure function of the seeds, identical at any thread count.
  int restarts = 1;
  /// Worker threads for the restarts: 0 = min(restarts, hardware
  /// concurrency); 1 forces serial execution on the calling thread.
  /// Note: a thread_local FaultInjector installed on the calling thread
  /// is not visible to pool workers (fault tests run serially), and a
  /// shared anneal.budget makes the outcome scheduling-dependent.
  int restart_threads = 0;

  /// Optional precomputed APE seed design (used when use_ape_seed is
  /// true): the batch runtime passes its cache entry here so N jobs with
  /// the same spec estimate once. Not owned; nullptr = estimate inline.
  const est::OpAmpDesign* seed_design = nullptr;
  /// Same for module synthesis: the topology/sizing prototype normally
  /// produced by ModuleEstimator::estimate. Not owned.
  const est::ModuleDesign* module_proto = nullptr;

  /// Yield-aware cost (opamp synthesis only; DESIGN.md section 12).
  /// When yield_weight > 0 and corner_procs is non-empty, every
  /// candidate is additionally scored at each corner process and the
  /// *worst-corner* cost, weighted by yield_weight, is added to the
  /// nominal cost — so the annealer trades nominal optimality for
  /// designs that keep working across PVT. Callers realize the corner
  /// cards once (stat::CornerSet::realize) and pass them here; synth
  /// stays independent of the stat layer. A corner where a candidate
  /// cannot be evaluated scores the skipped-candidate plateau, exactly
  /// like a nominal evaluation failure.
  double yield_weight = 0.0;
  std::vector<est::Process> corner_procs;

  /// Externally-proven feasibility artifacts (src/lint/prove.h), passed
  /// in by the lint-first runtime — synthesis itself stays independent
  /// of the lint layer. When feasible_box has the search's
  /// dimensionality (13 pairs, unbuffered opamp layout), the anneal
  /// bounds are intersected with it so every restart is seeded inside
  /// the proven-feasible region instead of the blind technology box.
  std::vector<std::pair<double, double>> feasible_box;
  /// Proven lower bound on the nominal cost over the box (> 0 enables
  /// early termination): serial multi-start stops launching further
  /// restarts once the best cost is within early_stop_frac of the
  /// bound — no restart can beat a proven floor by more than the
  /// tolerance. Parallel restart pools ignore it so their aggregate
  /// stays thread-count invariant.
  double cost_lower_bound = 0.0;
  double early_stop_frac = 0.05;
};

/// Outcome of one opamp synthesis run.
struct SynthesisOutcome {
  est::OpAmpDesign design;       ///< best point found
  double cost = 0.0;             ///< final annealing cost
  bool functional = false;       ///< analytic bias point exists
  est::OpAmpSimReport sim;       ///< full simulator verification
  double cpu_seconds = 0.0;      ///< wall-clock of the search
  bool meets_spec = false;       ///< simulator-verified constraint check
  std::string comment;           ///< Table-1 style diagnosis
  /// Candidates whose evaluation threw an ape::Error: scored with a
  /// large penalty and skipped, never dropped silently.
  int skipped_candidates = 0;
  int rejected_nonfinite = 0;    ///< NaN/inf costs rejected by the annealer
  bool budget_exhausted = false; ///< search stopped early on RunBudget expiry
  int evaluations = 0;           ///< cost evaluations actually performed
  int restarts_run = 1;          ///< anneal restarts executed (multi-start)
  int best_restart = 0;          ///< index of the winning restart
  /// The winning annealer point (packed OpAmpVars). design/sim/comment
  /// are pure functions of (proc, spec, best_x), which is what makes a
  /// checkpointed outcome reconstructible bit-identically on resume.
  std::vector<double> best_x;
  /// True when the final simulator verification threw: the design and
  /// cost are still the search's best, but sim is empty and the comment
  /// reads "doesn't work". The supervision ladder retries these when
  /// RetryPolicy::retry_sim_failures is set.
  bool sim_failed = false;
};

/// Size a two-stage opamp to \p spec. Blind mode ignores APE entirely;
/// seeded mode calls the APE internally for the starting point.
SynthesisOutcome synthesize_opamp(const est::Process& proc,
                                  const est::OpAmpSpec& spec,
                                  const SynthesisOptions& opts);

/// Rebuild the verified tail of an opamp synthesis outcome from its
/// winning point: unpack \p best_x, re-derive the design, re-run the
/// simulator verification and the Table-1 diagnosis. Deterministic given
/// (proc, spec, best_x), so a checkpoint need only persist best_x and the
/// search counters — used by synthesize_opamp itself and by the
/// supervisor's --resume path. Search counters and cpu_seconds are left
/// at their defaults for the caller to fill.
SynthesisOutcome finalize_opamp_outcome(const est::Process& proc,
                                        const est::OpAmpSpec& spec,
                                        const std::vector<double>& best_x,
                                        double best_cost);

/// Outcome of one analog-module synthesis run.
struct ModuleSynthesisOutcome {
  est::ModuleDesign design;
  double cost = 0.0;
  bool functional = false;
  double cpu_seconds = 0.0;
  bool meets_spec = false;
  std::string comment;
  /// Per-candidate failures absorbed during the search (see
  /// SynthesisOutcome for field semantics).
  int skipped_candidates = 0;
  int rejected_nonfinite = 0;
  bool budget_exhausted = false;
  int evaluations = 0;
  int restarts_run = 1;
  int best_restart = 0;
  std::vector<double> best_x;    ///< winning annealer point (see SynthesisOutcome)
  bool sim_failed = false;       ///< simulator verification threw
  // Simulator-verified module metrics (meaning depends on the kind).
  double sim_gain = 0.0;
  double sim_bw_hz = 0.0;
  double sim_f3db_hz = 0.0;
  double sim_f20db_hz = 0.0;
  double sim_f0_hz = 0.0;
  double sim_delay_s = 0.0;
  double sim_slew = 0.0;
  double sim_area = 0.0;   ///< est area of the found sizes (geometry-derived)
};

/// Size an analog module (Table 5): the unknowns are every constituent
/// opamp's geometry plus the passive values.
ModuleSynthesisOutcome synthesize_module(const est::Process& proc,
                                         const est::ModuleSpec& spec,
                                         const SynthesisOptions& opts);

/// Simulator verification of a module design (fills the sim_* fields of
/// a ModuleSynthesisOutcome; also used for APE-only rows of Table 5).
void verify_module(const est::Process& proc, const est::ModuleDesign& d,
                   ModuleSynthesisOutcome& out);

}  // namespace ape::synth
