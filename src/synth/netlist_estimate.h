#pragma once
/// \file netlist_estimate.h
/// Performance estimation for user-level analog netlists - the paper's
/// stated next step ("we are currently incorporating into the APE
/// performance estimation procedures for user-level analog netlists").
///
/// Given an arbitrary SPICE netlist with an AC-stimulated input source,
/// the estimator solves the DC operating point once, builds an AWE
/// reduced-order model of the probed output (milliseconds instead of a
/// full AC sweep), and reports the usual APE attributes.

#include <complex>
#include <optional>
#include <string>
#include <vector>

#include "src/synth/awe.h"

namespace ape::synth {

struct NetlistEstimate {
  double dc_gain = 0.0;              ///< |H(0)| of the reduced model
  std::optional<double> ugf_hz;      ///< |H| = 1 crossing
  std::optional<double> f3db_hz;     ///< -3 dB frequency
  std::vector<std::complex<double>> poles;  ///< reduced-model poles [rad/s]
  double out_dc = 0.0;               ///< DC level of the output node [V]
  double power_w = 0.0;              ///< supply power (0 if no supply named)
  double gate_area_m2 = 0.0;         ///< total MOSFET gate area
  int n_mosfets = 0;
  int n_nodes = 0;
};

struct NetlistEstimateOptions {
  std::string out_node = "out";
  std::string supply_source;   ///< optional VDD source name for power
  int awe_order = 3;
  /// Device names excluded from the linearization plus node ground-ties -
  /// the open-loop bias-trick handling of awe_reduce.
  std::vector<std::string> exclude;
  std::vector<std::pair<std::string, double>> ground_ties;
};

/// Estimate a user netlist's small-signal performance.
/// Throws ParseError / NumericError / LookupError on malformed input,
/// non-convergent bias or unknown probe names.
NetlistEstimate estimate_netlist(const std::string& netlist,
                                 const NetlistEstimateOptions& opts = {});

}  // namespace ape::synth
