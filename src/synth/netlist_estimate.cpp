#include "src/synth/netlist_estimate.h"

#include <cmath>

#include "src/spice/analysis.h"
#include "src/spice/devices.h"
#include "src/spice/parser.h"

namespace ape::synth {

NetlistEstimate estimate_netlist(const std::string& netlist,
                                 const NetlistEstimateOptions& opts) {
  spice::Circuit ckt = spice::parse_netlist(netlist);
  const auto sol = spice::dc_operating_point(ckt);

  NetlistEstimate e;
  e.n_nodes = static_cast<int>(ckt.num_nodes());
  e.out_dc = spice::node_voltage(ckt, sol, opts.out_node);
  for (const auto& dev : ckt.devices()) {
    if (const auto* m = dynamic_cast<const spice::Mosfet*>(dev.get())) {
      e.gate_area_m2 += m->width() * m->length();
      ++e.n_mosfets;
    }
  }
  if (!opts.supply_source.empty()) {
    const double i = spice::source_current(ckt, sol, opts.supply_source);
    // Power across the source's own DC value.
    const auto& vs = ckt.find_as<spice::VSource>(opts.supply_source);
    e.power_w = std::fabs(i * vs.wave().value(0.0));
  }

  const AweModel model = awe_reduce(ckt, opts.out_node, opts.awe_order,
                                    opts.exclude, opts.ground_ties);
  e.dc_gain = std::fabs(model.dc_gain());
  e.poles = model.poles();
  const double ugf = model.unity_gain_freq();
  if (ugf > 0.0) e.ugf_hz = ugf;
  const double f3 = model.f_3db();
  if (f3 > 0.0) e.f3db_hz = f3;
  return e;
}

}  // namespace ape::synth
