#include "src/synth/sizing.h"

#include <algorithm>
#include <cmath>

#include "src/spice/mos_model.h"
#include "src/util/error.h"

namespace ape::synth {
namespace {

using est::OpAmpDesign;
using est::OpAmpSpec;
using est::Process;
using est::TransistorDesign;
using spice::MosEval;
using spice::MosType;

constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kVtail = 0.3;

/// Gate voltage of a diode-connected device conducting \p id
/// (NMOS-normalized). Bisection on the model card.
double diode_vgs(const spice::MosModelCard& card, double w, double l, double id,
                 double vbs = 0.0) {
  double lo = 0.0, hi = 12.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (spice::mos_eval(card, mid, mid, vbs, w, l).ids < id) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

/// Gate voltage for \p id at fixed (vds, vbs).
double vgs_at(const spice::MosModelCard& card, double w, double l, double id,
              double vds, double vbs) {
  double lo = 0.0, hi = 12.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (spice::mos_eval(card, mid, vds, vbs, w, l).ids < id) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

TransistorDesign make_design(MosType type, double w, double l, const MosEval& e,
                             double vgs, double vds, double vbs) {
  TransistorDesign t;
  t.type = type;
  t.w = w;
  t.l = l;
  t.id = e.ids;
  t.vgs = vgs;
  t.vds = vds;
  t.vbs = vbs;
  t.vth = e.vth;
  t.vdsat = e.vdsat;
  t.gm = e.gm;
  t.gds = e.gds;
  t.gmb = e.gmb;
  t.cgs = e.cgs;
  t.cgd = e.cgd;
  t.cgb = e.cgb;
  t.cdb = e.cdb;
  t.csb = e.csb;
  return t;
}

/// Everything the evaluation solves; reused by design_from_vars.
struct BiasSolution {
  bool functional = false;
  double imbalance = 0.0;
  double vgs8 = 0.0, itail = 0.0, i1 = 0.0, vgs3 = 0.0, o1 = 0.0, vgs1 = 0.0;
  double out2 = 0.0, i6 = 0.0;
  double i9 = 0.0, vgs9 = 0.0, out_dc = 0.0;
  double vtail = kVtail;
  MosEval e1, e3, e4, e5, e6, e7, e8, e9, e10;
};

BiasSolution solve_bias(const Process& proc, const OpAmpVars& v, double ibias) {
  BiasSolution b;
  const auto& nn = proc.nmos;
  const auto& pp = proc.pmos;
  const double vdd = proc.vdd;
  const double l8 = v.l8;

  // Bias diode and tail mirror.
  b.vgs8 = diode_vgs(nn, v.w8, l8, ibias);
  b.e8 = spice::mos_eval(nn, b.vgs8, b.vgs8, 0.0, v.w8, l8);
  b.e5 = spice::mos_eval(nn, b.vgs8, b.vtail, 0.0, v.w5, v.l5);
  b.itail = b.e5.ids;
  if (b.itail < 0.05 * ibias) {
    b.imbalance = 1.0;
    return b;  // tail effectively off
  }
  b.i1 = 0.5 * b.itail;

  // First stage: PMOS mirror diode fixes o1.
  b.vgs3 = diode_vgs(pp, v.w3, v.l3, b.i1);
  b.e3 = spice::mos_eval(pp, b.vgs3, b.vgs3, 0.0, v.w3, v.l3);
  b.e4 = b.e3;
  b.o1 = vdd - b.vgs3;
  if (b.o1 < b.vtail + 0.2) {
    b.imbalance = 1.0;
    return b;  // no headroom for the pair
  }
  b.vgs1 = vgs_at(nn, v.w1, v.l1, b.i1, b.o1 - b.vtail, -b.vtail);
  b.e1 = spice::mos_eval(nn, b.vgs1, b.o1 - b.vtail, -b.vtail, v.w1, v.l1);

  // Second stage: find out2 where M6 (gate at o1) and M7 (gate at bias)
  // conduct the same current. No crossing inside the rails means the
  // output is stuck - the classic blind-search failure.
  auto i6_at = [&](double out2) {
    return spice::mos_eval(pp, b.vgs3, vdd - out2, 0.0, v.w6, v.l6).ids;
  };
  auto i7_at = [&](double out2) {
    return spice::mos_eval(nn, b.vgs8, out2, 0.0, v.w7, v.l7).ids;
  };
  double lo = 0.05, hi = vdd - 0.05;
  const double f_lo = i6_at(lo) - i7_at(lo);
  const double f_hi = i6_at(hi) - i7_at(hi);
  if (f_lo * f_hi > 0.0) {
    // Output stuck at a rail: grade the failure by the mid-rail current
    // mismatch so the annealer has a slope off the plateau.
    const double i6m = i6_at(0.5 * vdd);
    const double i7m = i7_at(0.5 * vdd);
    b.imbalance = std::fabs(i6m - i7m) / std::max(i6m + i7m, 1e-15);
    return b;
  }
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if ((i6_at(mid) - i7_at(mid)) * f_lo > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  b.out2 = 0.5 * (lo + hi);
  b.e6 = spice::mos_eval(pp, b.vgs3, vdd - b.out2, 0.0, v.w6, v.l6);
  b.e7 = spice::mos_eval(nn, b.vgs8, b.out2, 0.0, v.w7, v.l7);
  b.i6 = 0.5 * (b.e6.ids + b.e7.ids);

  // Saturation checks: pair, load mirror output, and both stage-2 devices.
  const double margin = 0.02;
  const bool sat =
      (b.e1.region == spice::MosRegion::Saturation) &&
      (vdd - b.out2 >= b.e6.vdsat - margin) && (b.out2 >= b.e7.vdsat - margin);
  if (!sat) {
    b.imbalance = 0.5;
    return b;
  }

  // Optional buffer.
  b.out_dc = b.out2;
  if (v.buffered()) {
    const double l9 = 2.0 * proc.lmin;
    // Iterate the follower level: i10 depends on out, vgs9 on i10.
    double out = b.out2 - 1.2;
    for (int it = 0; it < 8; ++it) {
      b.e10 = spice::mos_eval(nn, b.vgs8, std::max(out, 0.05), 0.0, v.w10, l9);
      b.i9 = b.e10.ids;
      if (b.i9 <= 0.0) {
        b.imbalance = 0.7;
        return b;
      }
      b.vgs9 = vgs_at(nn, v.w9, l9, b.i9, vdd - std::max(out, 0.05),
                      -std::max(out, 0.05));
      out = b.out2 - b.vgs9;
    }
    if (out < 0.1) {
      b.imbalance = 0.6;
      return b;
    }
    b.out_dc = out;
    b.e9 = spice::mos_eval(nn, b.vgs9, vdd - out, -out, v.w9, l9);
  }

  b.functional = true;
  return b;
}

}  // namespace

std::vector<double> OpAmpVars::pack() const {
  std::vector<double> x{w1, l1, w3, l3, w5, l5, w6, l6, w7, l7, w8, l8, cc};
  if (buffered()) {
    x.push_back(w9);
    x.push_back(w10);
  }
  return x;
}

OpAmpVars OpAmpVars::unpack(const std::vector<double>& x, bool buffered) {
  if (x.size() != (buffered ? 15u : 13u)) {
    throw SpecError("OpAmpVars::unpack: wrong vector size");
  }
  OpAmpVars v;
  v.w1 = x[0];
  v.l1 = x[1];
  v.w3 = x[2];
  v.l3 = x[3];
  v.w5 = x[4];
  v.l5 = x[5];
  v.w6 = x[6];
  v.l6 = x[7];
  v.w7 = x[8];
  v.l7 = x[9];
  v.w8 = x[10];
  v.l8 = x[11];
  v.cc = x[12];
  if (buffered) {
    v.w9 = x[13];
    v.w10 = x[14];
  }
  return v;
}

std::vector<std::string> OpAmpVars::names(bool buffered) {
  std::vector<std::string> n{"w1", "l1", "w3", "l3", "w5", "l5", "w6",
                             "l6", "w7", "l7", "w8", "l8", "cc"};
  if (buffered) {
    n.push_back("w9");
    n.push_back("w10");
  }
  return n;
}

OpAmpEval evaluate_opamp_vars(const Process& proc, const OpAmpVars& v,
                              double ibias, double cload) {
  OpAmpEval e;
  const BiasSolution b = solve_bias(proc, v, ibias);
  e.imbalance = b.imbalance;
  if (!b.functional) return e;

  e.functional = true;
  e.itail = b.itail;
  const double a1 = b.e1.gm / std::max(b.e1.gds + b.e4.gds, 1e-15);
  const double a2 = b.e6.gm / std::max(b.e6.gds + b.e7.gds, 1e-15);
  double ab = 1.0;
  if (v.buffered()) {
    ab = b.e9.gm / std::max(b.e9.gm + b.e9.gmb + b.e9.gds + b.e10.gds, 1e-15);
  }
  e.gain = a1 * a2 * ab;
  const double cl2 = v.buffered() ? 2e-12 : cload;
  const double fp2 = b.e6.gm / (kTwoPi * (cl2 + b.e6.cdb + b.e7.cdb));
  const double fpb =
      v.buffered()
          ? (b.e9.gm + b.e9.gmb + b.e9.gds + b.e10.gds) / (kTwoPi * cload)
          : 1e18;
  // UGF with the M6 Miller overlap added to Cc and the second-pole and
  // buffer-pole magnitude droops folded in.
  const double u0 = b.e1.gm / (kTwoPi * (v.cc + b.e6.cgd));
  double fu = u0;
  for (int i = 0; i < 4; ++i) {
    fu = u0 / std::sqrt((1.0 + (fu / fp2) * (fu / fp2)) *
                        (1.0 + (fu / fpb) * (fu / fpb)));
  }
  e.ugf_hz = fu;
  e.phase_margin = 90.0 - std::atan(e.ugf_hz / fp2) * 180.0 / M_PI;
  e.gate_area = 2.0 * v.w1 * v.l1 + 2.0 * v.w3 * v.l3 + v.w5 * v.l5 +
                v.w6 * v.l6 + v.w7 * v.l7 + v.w8 * v.l8;
  if (v.buffered()) e.gate_area += (v.w9 + v.w10) * 2.0 * proc.lmin;
  e.dc_power = proc.vdd * (ibias + b.itail + b.i6 + b.i9);
  e.slew = std::min(b.itail / v.cc, b.i6 / (cl2 + v.cc));
  if (v.buffered() && b.i9 > 0.0) e.slew = std::min(e.slew, b.i9 / cload);
  e.zout = v.buffered()
               ? 1.0 / std::max(b.e9.gm + b.e9.gmb + b.e9.gds + b.e10.gds, 1e-15)
               : 1.0 / std::max(b.e6.gds + b.e7.gds, 1e-15);
  return e;
}

double opamp_cost(const OpAmpEval& e, const OpAmpSpec& spec) {
  if (!e.functional) return 1e3 * (1.0 + e.imbalance);
  auto under = [](double value, double target) {
    return target > 0.0 ? std::max(0.0, 1.0 - value / target) : 0.0;
  };
  auto over = [](double value, double target) {
    return target > 0.0 ? std::max(0.0, value / target - 1.0) : 0.0;
  };
  double c = 0.0;
  const double g_under = under(e.gain, spec.gain);
  const double u_under = under(e.ugf_hz, spec.ugf_hz);
  const double a_over = over(e.gate_area, spec.area_budget);
  c += 10.0 * g_under * g_under;
  c += 10.0 * u_under * u_under;
  c += 4.0 * a_over * a_over;
  const double pm_deficit = std::max(0.0, 45.0 - e.phase_margin) / 45.0;
  c += 2.0 * pm_deficit * pm_deficit;
  if (spec.buffer && spec.zout > 0.0) {
    const double z_over = over(e.zout, spec.zout);
    c += 2.0 * z_over * z_over;
  }
  // Objective terms: minimize power (and area when unconstrained).
  c += 0.05 * e.dc_power / 1e-3;
  c += 0.02 * e.gate_area / 5e-9;
  return c;
}

std::vector<std::pair<double, double>> blind_bounds(const Process& proc,
                                                    bool buffered) {
  const std::pair<double, double> w{proc.wmin, 1000e-6};
  const std::pair<double, double> l{2.0 * proc.lmin, 120e-6};
  std::vector<std::pair<double, double>> b{w, l, w, l, w, l, w, l, w, l, w, l,
                                           {0.1e-12, 30e-12}};
  if (buffered) {
    b.push_back(w);
    b.push_back(w);
  }
  return b;
}

std::vector<std::pair<double, double>> seeded_bounds(
    const std::vector<double>& seed, double frac, const Process& proc,
    bool buffered) {
  auto blind = blind_bounds(proc, buffered);
  if (seed.size() != blind.size()) {
    throw SpecError("seeded_bounds: seed size mismatch");
  }
  std::vector<std::pair<double, double>> b(seed.size());
  for (size_t i = 0; i < seed.size(); ++i) {
    b[i] = {std::max(seed[i] * (1.0 - frac), blind[i].first),
            std::min(seed[i] * (1.0 + frac), blind[i].second)};
    if (b[i].first > b[i].second) {
      // Seed outside the technology box: pin to the nearest legal point.
      const double pin = std::clamp(seed[i], blind[i].first, blind[i].second);
      b[i] = {pin, pin};
    }
  }
  return b;
}

OpAmpVars vars_from_design(const OpAmpDesign& d) {
  OpAmpVars v;
  auto find = [&](const std::string& role) -> const TransistorDesign* {
    for (size_t i = 0; i < d.roles.size(); ++i) {
      if (d.roles[i] == role) return &d.transistors[i];
    }
    return nullptr;
  };
  const TransistorDesign* m1 = find("m1");
  const TransistorDesign* m3 = find("m3");
  const TransistorDesign* m6 = find("m6");
  const TransistorDesign* m7 = find("m7");
  if (m1 == nullptr || m3 == nullptr || m6 == nullptr || m7 == nullptr) {
    throw SpecError("vars_from_design: not a two-stage opamp design");
  }
  v.w1 = m1->w;
  v.l1 = m1->l;
  v.w3 = m3->w;
  v.l3 = m3->l;
  v.w6 = m6->w;
  v.l6 = m6->l;
  v.w7 = m7->w;
  v.l7 = m7->l;
  v.cc = d.perf.cc;
  // Tail/bias: simple-mirror roles, or the Wilson equivalents mapped onto
  // the mirror template (the synthesis engine optimizes the mirror-tail
  // topology; Wilson seeds land on their equivalent mirror sizing).
  if (const TransistorDesign* m5 = find("m5")) {
    v.w5 = m5->w;
    v.l5 = m5->l;
    v.w8 = find("m8")->w;
    v.l8 = find("m8")->l;
  } else {
    v.w5 = find("w_diode")->w;
    v.l5 = find("w_diode")->l;
    v.w8 = find("w_in")->w;
    v.l8 = find("w_in")->l;
  }
  if (const TransistorDesign* m9 = find("m9")) {
    v.w9 = m9->w;
    v.w10 = find("m10")->w;
  }
  return v;
}

OpAmpDesign design_from_vars(const Process& proc, const OpAmpVars& v,
                             const OpAmpSpec& spec) {
  const BiasSolution b = solve_bias(proc, v, spec.ibias);
  const double vdd = proc.vdd;
  const double l8 = v.l8;
  const double l9 = 2.0 * proc.lmin;

  OpAmpDesign d;
  d.spec = spec;
  d.spec.source = est::CurrentSourceKind::Mirror;  // synthesis template
  d.spec.buffer = v.buffered();

  TransistorDesign m1 = make_design(MosType::Nmos, v.w1, v.l1, b.e1, b.vgs1,
                                    b.o1 - b.vtail, -b.vtail);
  TransistorDesign m3 =
      make_design(MosType::Pmos, v.w3, v.l3, b.e3, b.vgs3, b.vgs3, 0.0);
  TransistorDesign m6 = make_design(MosType::Pmos, v.w6, v.l6, b.e6, b.vgs3,
                                    vdd - b.out2, 0.0);
  TransistorDesign m7 =
      make_design(MosType::Nmos, v.w7, v.l7, b.e7, b.vgs8, b.out2, 0.0);
  TransistorDesign m5 =
      make_design(MosType::Nmos, v.w5, v.l5, b.e5, b.vgs8, b.vtail, 0.0);
  TransistorDesign m8 =
      make_design(MosType::Nmos, v.w8, l8, b.e8, b.vgs8, b.vgs8, 0.0);

  d.transistors = {m1, m1, m3, m3, m6, m7, m5, m8};
  d.roles = {"m1", "m2", "m3", "m4", "m6", "m7", "m5", "m8"};
  if (v.buffered()) {
    TransistorDesign m9 = make_design(MosType::Nmos, v.w9, l9, b.e9, b.vgs9,
                                      vdd - b.out_dc, -b.out_dc);
    TransistorDesign m10 =
        make_design(MosType::Nmos, v.w10, l9, b.e10, b.vgs8, b.out_dc, 0.0);
    d.transistors.push_back(m9);
    d.transistors.push_back(m10);
    d.roles.push_back("m9");
    d.roles.push_back("m10");
  }

  const OpAmpEval e = evaluate_opamp_vars(proc, v, spec.ibias, spec.cload);
  d.perf.gain = e.gain;
  d.perf.ugf_hz = e.ugf_hz;
  d.perf.phase_margin = e.phase_margin;
  d.perf.dc_power = e.dc_power;
  d.perf.gate_area = e.gate_area;
  d.perf.ibias = e.itail;
  d.perf.zout = e.zout;
  d.perf.slew = e.slew;
  d.perf.cc = v.cc;
  d.perf.rz = b.e6.gm > 0.0 ? 1.0 / b.e6.gm : 1e3;
  d.perf.input_cm = b.vtail + b.vgs1;
  return d;
}

}  // namespace ape::synth
