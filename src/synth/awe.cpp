#include "src/synth/awe.h"

#include <algorithm>
#include <cmath>

#include "src/spice/device.h"
#include "src/spice/kernel.h"
#include "src/util/error.h"
#include "src/util/matrix.h"
#include "src/util/poly.h"
#include "src/util/sparse.h"

namespace ape::synth {
namespace {

constexpr double kTwoPi = 2.0 * M_PI;

}  // namespace

std::complex<double> AweModel::eval(double f_hz) const {
  const std::complex<double> s{0.0, kTwoPi * f_hz};
  std::complex<double> h{0.0, 0.0};
  for (size_t i = 0; i < poles_.size(); ++i) h += residues_[i] / (s - poles_[i]);
  return h;
}

namespace {

/// First downward crossing of |H| through `level` on a log grid + bisection.
double mag_crossing(const AweModel& m, double level, double f_max) {
  double f_prev = 1e-2;
  double mag_prev = std::abs(m.eval(f_prev));
  for (double f = 1e-2; f <= f_max; f *= 1.2) {
    const double mag = std::abs(m.eval(f));
    if (mag_prev >= level && mag < level) {
      // Bisect inside [f_prev, f].
      double lo = f_prev, hi = f;
      for (int i = 0; i < 60; ++i) {
        const double mid = std::sqrt(lo * hi);
        if (std::abs(m.eval(mid)) >= level) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      return std::sqrt(lo * hi);
    }
    f_prev = f;
    mag_prev = mag;
  }
  return 0.0;
}

}  // namespace

double AweModel::unity_gain_freq(double f_max) const {
  return mag_crossing(*this, 1.0, f_max);
}

double AweModel::f_3db(double f_max) const {
  return mag_crossing(*this, std::fabs(m0_) / std::sqrt(2.0), f_max);
}

AweModel awe_reduce(
    spice::Circuit& ckt, const std::string& out_node, int q,
    const std::vector<std::string>& exclude,
    const std::vector<std::pair<std::string, double>>& ground_ties) {
  if (q < 1 || q > 10) throw SpecError("awe_reduce: order q must be 1..10");
  ckt.finalize();
  const size_t dim = ckt.dim();
  const spice::NodeId out = ckt.find_node(out_node);
  if (out == spice::kGround) throw SpecError("awe_reduce: output is ground");

  auto excluded = [&](const spice::Device& d) {
    for (const auto& name : exclude) {
      if (d.name() == name) return true;
    }
    return false;
  };

  // Extract G, C and the stimulus vector from two complex AC stamps:
  // A(w) = G + jwC, so G = Re A(0) and C = Im A(1 rad/s).
  spice::MnaComplex mna(dim);
  mna.clear();
  for (const auto& dev : ckt.devices()) {
    if (!excluded(*dev)) dev->stamp_ac(mna, 0.0);
  }
  RealMatrix g(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) g(i, j) = mna.matrix()(i, j).real();
    g(i, i) += 1e-12;  // same floating-node guard as the AC analysis
  }
  for (const auto& [node, cond] : ground_ties) {
    const spice::NodeId n = ckt.find_node(node);
    if (n != spice::kGround) {
      g(static_cast<size_t>(n), static_cast<size_t>(n)) += cond;
    }
  }
  std::vector<double> b(dim);
  for (size_t i = 0; i < dim; ++i) b[i] = mna.rhs()[i].real();

  mna.clear();
  for (const auto& dev : ckt.devices()) {
    if (!excluded(*dev)) dev->stamp_ac(mna, 1.0);
  }
  RealMatrix c(dim, dim);
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) c(i, j) = mna.matrix()(i, j).imag();
  }

  // Moment recursion: one factorization, 2q in-place solves. Only the
  // latest moment vector is needed, so two reused buffers replace the
  // old per-order allocations (the recursion only ever reads m_cur).
  //
  // Large reduced networks (interconnect ladders) go through the sparse
  // LU and a CSR matvec for C, selected by the same crossover policy as
  // the MNA kernel. A plain value scan is a safe pattern source here —
  // unlike the Newton kernel, G and C are fixed for the whole reduction,
  // so a zero entry can never "turn on" later.
  SparsePattern gp(dim);
  std::vector<double> gvals;
  std::vector<int> c_rp, c_cols;
  std::vector<double> c_vals;
  for (size_t i = 0; i < dim; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      if (g(i, j) != 0.0) gp.add(static_cast<int>(i), static_cast<int>(j));
    }
  }
  gp.finalize();
  const bool use_sparse = spice::kernel_policy().wants_sparse(dim, gp.density());
  LuSolver<double> lu;
  SparseLuReal slu;
  if (use_sparse) {
    gvals.resize(gp.nnz());
    for (size_t i = 0; i < dim; ++i) {
      for (int s = gp.row_ptr()[i]; s < gp.row_ptr()[i + 1]; ++s) {
        gvals[s] = g(i, static_cast<size_t>(gp.cols()[s]));
      }
    }
    slu.factorize(gp, gvals);
    c_rp.assign(dim + 1, 0);
    for (size_t i = 0; i < dim; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        if (c(i, j) != 0.0) {
          c_cols.push_back(static_cast<int>(j));
          c_vals.push_back(c(i, j));
        }
      }
      c_rp[i + 1] = static_cast<int>(c_cols.size());
    }
  } else {
    lu.factorize(g);
  }
  auto solve = [&](const std::vector<double>& rhs_in, std::vector<double>& x_out) {
    if (use_sparse) {
      slu.solve_into(rhs_in, x_out);
    } else {
      lu.solve_into(rhs_in, x_out);
    }
  };
  std::vector<double> m_cur(dim), mrhs(dim);
  solve(b, m_cur);
  std::vector<double> mu;
  mu.reserve(static_cast<size_t>(2 * q));
  mu.push_back(m_cur[static_cast<size_t>(out)]);
  for (int k = 1; k < 2 * q; ++k) {
    if (use_sparse) {
      for (size_t i = 0; i < dim; ++i) {
        double acc = 0.0;
        for (int s = c_rp[i]; s < c_rp[i + 1]; ++s) {
          acc += c_vals[s] * m_cur[static_cast<size_t>(c_cols[s])];
        }
        mrhs[i] = -acc;
      }
    } else {
      for (size_t i = 0; i < dim; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < dim; ++j) acc += c(i, j) * m_cur[j];
        mrhs[i] = -acc;
      }
    }
    solve(mrhs, m_cur);
    mu.push_back(m_cur[static_cast<size_t>(out)]);
  }

  // Scale the moment series (moments grow like 1/|p_dom|^k) to keep the
  // Pade solve well-conditioned: work with nu_k = mu_k * s0^k where
  // s0 ~ |mu_0 / mu_1| approximates the dominant pole.
  const double s0 = (std::fabs(mu[1]) > 0.0 && std::fabs(mu[0]) > 0.0)
                        ? std::fabs(mu[0] / mu[1])
                        : 1.0;
  std::vector<double> nu(mu.size());
  double scale = 1.0;
  for (size_t k = 0; k < mu.size(); ++k) {
    nu[k] = mu[k] * scale;
    scale *= s0;
  }

  const std::vector<double> bpade = pade_denominator(nu, q);
  // D(z) = 1 + b1 z + ... + bq z^q in z = s/s0; poles: roots scaled by s0.
  std::vector<double> dpoly{1.0};
  dpoly.insert(dpoly.end(), bpade.begin(), bpade.end());
  const auto zroots = poly_roots(dpoly);

  AweModel model;
  model.m0_ = mu[0];
  for (const auto& z : zroots) {
    // z is a root of D(s/s0): pole p = s0 / z ... D expressed in z = s/s0
    // with coefficients of z^k, so s_pole = z * s0? D(z)=0 at z=z_i and
    // z = s/s0 => s_i = z_i * s0.
    model.poles_.push_back(z * s0);
  }

  // Residues from the first q scaled moments:
  //   mu_k = -sum_i r_i / p_i^{k+1}
  ComplexMatrix a(static_cast<size_t>(q), static_cast<size_t>(q));
  std::vector<std::complex<double>> rhs(static_cast<size_t>(q));
  for (int k = 0; k < q; ++k) {
    for (int i = 0; i < q; ++i) {
      a(static_cast<size_t>(k), static_cast<size_t>(i)) =
          -1.0 / std::pow(model.poles_[static_cast<size_t>(i)], k + 1);
    }
    rhs[static_cast<size_t>(k)] = std::complex<double>{mu[static_cast<size_t>(k)], 0.0};
  }
  LuSolver<std::complex<double>> rlu(a);
  model.residues_ = rlu.solve(rhs);
  return model;
}

}  // namespace ape::synth
