#include "src/synth/anneal.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/error.h"

namespace ape::synth {

AnnealResult anneal(const std::function<double(const std::vector<double>&)>& cost,
                    const std::vector<std::pair<double, double>>& bounds,
                    std::vector<double> x0, const AnnealOptions& opts) {
  const size_t n = bounds.size();
  if (x0.size() != n) throw SpecError("anneal: x0/bounds size mismatch");
  for (size_t i = 0; i < n; ++i) {
    if (bounds[i].second < bounds[i].first) {
      throw SpecError("anneal: inverted bound at index " + std::to_string(i));
    }
    x0[i] = std::clamp(x0[i], bounds[i].first, bounds[i].second);
  }

  Rng rng(opts.seed);
  AnnealResult res;
  std::vector<double> x = x0;
  double c = cost(x);
  res.start_cost = c;
  res.evaluations = 1;
  if (opts.budget != nullptr) opts.budget->charge(1);

  // Finite-cost contract: a NaN/inf cost is never accepted and never
  // stored as best_cost. A non-finite start is treated as +inf so the
  // first finite candidate always displaces it; until one shows up
  // best_cost is +inf (a deliberate "no feasible point seen" sentinel).
  res.best_x = x;
  if (std::isfinite(c)) {
    res.best_cost = c;
  } else {
    ++res.rejected_nonfinite;
    c = std::numeric_limits<double>::infinity();
    res.best_cost = c;
  }

  // Geometric cooling from t_start to t_end over the iteration budget.
  const double c_scale = std::isfinite(c) ? std::fabs(c) : 1.0;
  const double t_start = std::max(c_scale, 1e-6) * opts.t_start_frac;
  const double t_end = std::max(c_scale, 1e-6) * opts.t_end_frac;
  const double alpha =
      std::pow(t_end / t_start, 1.0 / std::max(opts.iterations - 1, 1));

  double t = t_start;
  std::vector<double> cand = x;
  for (int it = 1; it < opts.iterations; ++it, t *= alpha) {
    // Polls the options budget and the thread's ambient job budget, so a
    // supervisor deadline / cancellation stops the search between moves
    // with best-so-far intact.
    if (exhausted_budget(opts.budget) != nullptr) {
      res.budget_exhausted = true;
      break;
    }
    // Move: perturb one coordinate; the move range shrinks with T.
    cand = x;
    const size_t j = rng.index(n);
    const double range = bounds[j].second - bounds[j].first;
    if (range > 0.0) {
      const double scale =
          opts.move_frac * (0.1 + 0.9 * (t - t_end) / (t_start - t_end + 1e-300));
      cand[j] = std::clamp(cand[j] + rng.gauss() * scale * range,
                           bounds[j].first, bounds[j].second);
    }
    const double cc = cost(cand);
    ++res.evaluations;
    if (opts.budget != nullptr) opts.budget->charge(1);
    if (!std::isfinite(cc)) {
      // Reject outright: a NaN delta would otherwise poison the
      // acceptance test (NaN comparisons are all false, so the uphill
      // branch could accept an infeasible point as the new state).
      ++res.rejected_nonfinite;
      continue;
    }
    const double dc = cc - c;
    if (dc <= 0.0 || rng.uniform() < std::exp(-dc / std::max(t, 1e-300))) {
      x = cand;
      c = cc;
      ++res.accepted;
      if (c < res.best_cost) {
        res.best_cost = c;
        res.best_x = x;
      }
    }
  }
  return res;
}

}  // namespace ape::synth
