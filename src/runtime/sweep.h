#pragma once
/// \file sweep.h
/// Corner-sweep and Monte-Carlo batch entry points (DESIGN.md section
/// 12): fan a (design x corner x sample) grid across the Executor and
/// aggregate stat::YieldReports.
///
/// Two-phase structure per run:
///
///  Phase A — nominal designs: one design per spec, either the bare APE
///  estimate resolved through the shared cache (default: the paper's
///  estimate-for-simulation trade applied to yield analysis) or a full
///  supervised synthesis batch (SweepOptions::synthesize — deadlines,
///  retry ladder, quarantine, checkpoint/--resume all inherited from
///  supervisor.h).
///
///  Phase B — the grid: every (job, corner) pair becomes one Executor
///  task that (1) re-estimates the spec AT the corner through the shared
///  cache — whether APE can still size the circuit there is reported per
///  corner, and duplicate specs share these entries across the whole run
///  (the tm corner entry is also shared with phase A's nominal
///  estimate) — and (2) evaluates the *fixed* nominal design under the
///  corner card (plus Pelgrom mismatch per Monte-Carlo sample,
///  stat/mismatch.h) with the analytic evaluator. Points aggregate into
///  per-job YieldReports and a pooled run report in (job, corner,
///  sample) index order.
///
/// Determinism contract: phase A inherits the batch/supervisor
/// determinism guarantees; every phase-B point is a pure function of
/// (process, corner set, Pelgrom model, seed, job, corner, sample,
/// nominal design) with its RNG stream derived per point
/// (stream_ids.h), and aggregation order is fixed — so the YieldReports
/// are bit-identical at any thread count and across --resume.

#include <cstdint>
#include <string>
#include <vector>

#include "src/runtime/supervisor.h"
#include "src/stat/corners.h"
#include "src/stat/mismatch.h"
#include "src/stat/yield.h"

namespace ape::runtime {

struct SweepOptions {
  /// Phase-A configuration: batch (threads, seed, synth template,
  /// cache, lint-first) plus the supervision knobs (ladder, deadlines,
  /// cancel, quarantine, checkpoint/resume) used when synthesize is on.
  /// The cancel token and threads also govern phase B.
  SupervisorOptions supervisor;

  /// The corners to sweep (order = YieldReport slot order).
  stat::CornerSet corners = stat::CornerSet::all();

  /// Monte-Carlo samples per (job, corner); 0 = corner sweep only (one
  /// unperturbed point per corner). run_monte_carlo requires >= 1.
  int mc_samples = 0;

  /// Pelgrom matching model for the mismatch draws.
  stat::PelgromModel pelgrom;

  /// Phase A: false = nominal design is the APE estimate (fast, the
  /// default), true = full supervised synthesis per spec.
  bool synthesize = false;

  /// Prove each (job, corner) cell's spec feasible over the sizing box
  /// at the corner-realized process before spending any phase-B work on
  /// it (lint::prove_opamp_feasibility, global check only — a few
  /// microseconds per cell). A provably-infeasible cell is pruned: no
  /// corner re-estimate, no sample evaluations; its grid slots are
  /// recorded as failed points so YieldReport shapes stay invariant,
  /// and the verdict surfaces in SweepJobResult::corner_proven_infeasible.
  bool prove_corners = true;
};

/// One spec's sweep outcome.
struct SweepJobResult {
  size_t index = 0;
  bool ok = false;      ///< phase A produced a design and the grid ran
  std::string error;    ///< empty when ok
  /// The nominal design (estimate-wrapped or synthesized outcome).
  synth::SynthesisOutcome nominal;
  /// This job's (corner x sample) yield grid (finalized).
  stat::YieldReport report;
  /// Per corner: 1 when APE could size the spec at that corner (the
  /// phase-B re-estimate succeeded), 0 otherwise. Same order as
  /// SweepOptions::corners.
  std::vector<uint8_t> corner_estimate_ok;
  /// Per corner: 1 when the spec was proven infeasible over the whole
  /// sizing box at that corner (APE-F001) and the cell was pruned, 0
  /// otherwise. Same order as SweepOptions::corners; all zeros when
  /// SweepOptions::prove_corners is off.
  std::vector<uint8_t> corner_proven_infeasible;

  SweepJobResult() : report(std::vector<std::string>{}) {}
};

struct SweepResult {
  std::vector<SweepJobResult> jobs;   ///< jobs[i] is specs[i]
  BatchStats stats;                   ///< whole-run accounting + cache delta
  SupervisionStats supervision;       ///< phase A (synthesize mode)
  stat::YieldReport aggregate;        ///< pooled over ok jobs (finalized)
  int samples_per_corner = 1;         ///< grid depth actually used
  /// (job, corner) cells pruned by a per-corner infeasibility proof —
  /// the work the 7x corner fan-out did NOT spend.
  int corners_pruned = 0;

  SweepResult() : aggregate(std::vector<std::string>{}) {}
};

/// Sweep every spec across the corner set (one unperturbed point per
/// corner unless mc_samples > 0, in which case mismatch sampling is
/// applied exactly as run_monte_carlo does).
SweepResult run_corner_sweep(const est::Process& proc,
                             const std::vector<est::OpAmpSpec>& specs,
                             const SweepOptions& options);

/// Monte-Carlo yield run: corners x mc_samples mismatch draws per spec.
/// Throws SpecError when options.mc_samples < 1.
SweepResult run_monte_carlo(const est::Process& proc,
                            const std::vector<est::OpAmpSpec>& specs,
                            const SweepOptions& options);

}  // namespace ape::runtime
