#include "src/runtime/sweep.h"

#include <chrono>
#include <future>
#include <thread>

#include "src/lint/lint.h"
#include "src/lint/prove.h"
#include "src/runtime/executor.h"
#include "src/synth/sizing.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"
#include "src/util/stream_ids.h"

namespace ape::runtime {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

/// Pass criteria of one evaluation point: the same 0.9x acceptance band
/// the synthesis diagnosis uses for gain/UGF, plus the classic 45-degree
/// stability floor (informational, see stat::PointOutcome).
constexpr double kPassBand = 0.9;
constexpr double kMinPhaseMargin = 45.0;

stat::PointOutcome check_point(const est::Process& p, const synth::OpAmpVars& v,
                               const est::OpAmpSpec& spec) {
  stat::PointOutcome o;
  try {
    const synth::OpAmpEval e =
        synth::evaluate_opamp_vars(p, v, spec.ibias, spec.cload);
    o.evaluated = true;
    o.functional = e.functional;
    o.gain_ok = e.gain >= kPassBand * spec.gain;
    o.ugf_ok = e.ugf_hz >= kPassBand * spec.ugf_hz;
    o.pm_ok = e.phase_margin >= kMinPhaseMargin;
  } catch (const Error&) {
    // An unevaluable point is a failed point, not a dead sweep.
  }
  return o;
}

/// One (job, corner) grid cell: the corner re-estimate flag plus every
/// sample's outcome, computed on one worker and aggregated serially.
struct Cell {
  std::vector<stat::PointOutcome> points;
  uint8_t estimate_ok = 0;
  uint8_t proven_infeasible = 0;  ///< APE-F001 at this corner; cell pruned
  bool ran = false;  ///< false when skipped by cancellation
};

}  // namespace

SweepResult run_corner_sweep(const est::Process& proc,
                             const std::vector<est::OpAmpSpec>& specs,
                             const SweepOptions& options) {
  ErrorContext scope("corner_sweep");
  const double t0 = now_seconds();
  const BatchOptions& batch = options.supervisor.batch;
  const bool mismatch = options.mc_samples > 0;
  const int samples = std::max(1, options.mc_samples);
  if (static_cast<uint64_t>(samples) >= (1ULL << streams::kMismatchSampleBits)) {
    throw SpecError("run_corner_sweep: mc_samples exceeds the stream-id "
                    "sample field (see stream_ids.h)");
  }
  const auto& deltas = options.corners.corners();
  if (deltas.empty()) {
    throw SpecError("run_corner_sweep: empty corner set");
  }
  std::vector<std::string> corner_names;
  corner_names.reserve(deltas.size());
  for (const auto& d : deltas) corner_names.push_back(d.name);
  const std::vector<est::Process> corner_procs =
      options.corners.realize(proc);
  const size_t n_corners = corner_procs.size();
  const size_t n_jobs = specs.size();

  SweepResult out;
  out.samples_per_corner = samples;
  out.jobs.resize(n_jobs);
  EstimateCache* cache = batch.cache;
  const CacheStats cache_before = cache != nullptr ? cache->stats() : CacheStats{};
  const int threads = resolve_threads(batch.threads);
  const CancelToken* cancel = options.supervisor.cancel;

  // ---- Phase A: one nominal design per spec ----
  if (options.synthesize) {
    SupervisedOpAmpBatchResult a =
        run_supervised_opamp_batch(proc, specs, options.supervisor);
    out.supervision = a.supervision;
    for (size_t i = 0; i < n_jobs; ++i) {
      out.jobs[i].index = i;
      out.jobs[i].ok = a.jobs[i].ok;
      out.jobs[i].error = a.jobs[i].error;
      out.jobs[i].nominal = std::move(a.jobs[i].outcome);
    }
  } else {
    // Estimate-only nominal pass. The estimate is taken at the tm
    // corner process when the set has one (numerically identical to the
    // base, but sharing its cache identity with phase B's tm
    // re-estimate — that shared entry is the guaranteed cross-corner
    // cache hit of every sweep).
    const int tm = options.corners.index_of("tm");
    const est::Process& nominal_proc =
        tm >= 0 ? corner_procs[static_cast<size_t>(tm)] : proc;
    const std::string parent = ErrorContext::chain();
    auto run_nominal = [&](size_t i) {
      SweepJobResult r;
      r.index = i;
      const std::string frame = "sweep_nominal[" + std::to_string(i) + "]";
      ErrorContext ctx(parent.empty() ? frame : parent + " -> " + frame);
      try {
        if (batch.lint_first) {
          lint::require_clean(lint::lint_spec(specs[i], proc), "lint-first");
        }
        if (cache != nullptr) {
          r.nominal.design = *cache->opamp(nominal_proc, specs[i]);
        } else {
          r.nominal.design = est::OpAmpEstimator(nominal_proc).estimate(specs[i]);
        }
        r.nominal.functional = true;
        r.nominal.comment = "APE estimate (sweep nominal)";
        r.nominal.restarts_run = 0;
        r.ok = true;
      } catch (const Error& e) {
        r.error = e.what();
      }
      return r;
    };
    if (threads <= 1 || n_jobs <= 1) {
      for (size_t i = 0; i < n_jobs; ++i) out.jobs[i] = run_nominal(i);
    } else {
      Executor pool(static_cast<int>(
          std::min(static_cast<size_t>(threads), n_jobs)));
      std::vector<std::future<SweepJobResult>> futures;
      futures.reserve(n_jobs);
      for (size_t i = 0; i < n_jobs; ++i) {
        futures.push_back(pool.submit([&run_nominal, i] { return run_nominal(i); }));
      }
      for (size_t i = 0; i < n_jobs; ++i) out.jobs[i] = futures[i].get();
    }
  }

  // The fixed evaluation vehicle of every grid point: the nominal
  // design's unknown vector (pure data, shared read-only across cells).
  std::vector<synth::OpAmpVars> vars(n_jobs);
  for (size_t i = 0; i < n_jobs; ++i) {
    if (out.jobs[i].ok) {
      vars[i] = synth::vars_from_design(out.jobs[i].nominal.design);
    }
  }

  // ---- Phase B: the (job x corner) grid, one cell per Executor task ----
  std::vector<Cell> cells(n_jobs * n_corners);
  const std::string parent = ErrorContext::chain();
  auto run_cell = [&](size_t cell_index) {
    const size_t i = cell_index / n_corners;
    const size_t c = cell_index % n_corners;
    if (!out.jobs[i].ok) return;
    if (cancel != nullptr && cancel->cancelled()) return;  // cell stays !ran
    Cell& cell = cells[cell_index];
    cell.ran = true;
    const std::string frame = "sweep_cell[" + std::to_string(i) + "," +
                              corner_names[c] + "]";
    ErrorContext ctx(parent.empty() ? frame : parent + " -> " + frame);
    // Feasibility pre-check at the corner card: when no sizing in the
    // whole box can reach the spec under this corner's parameters, the
    // re-estimate and the sample grid are provably wasted work. Prune
    // the cell (global interval check only, a few microseconds) and
    // record its slots as failed points so report shapes stay fixed.
    if (options.prove_corners) {
      lint::ProveOptions po;
      po.contraction_segments = 0;
      const lint::FeasibilityProof proof =
          lint::prove_opamp_feasibility(corner_procs[c], specs[i], po);
      if (proof.infeasible) {
        cell.proven_infeasible = 1;
        cell.points.assign(static_cast<size_t>(samples), stat::PointOutcome{});
        return;
      }
    }
    // Can APE still size this spec AT the corner? Shared cache entry —
    // duplicate specs answer this once per corner for the whole run.
    try {
      if (cache != nullptr) {
        cache->opamp(corner_procs[c], specs[i]);
      } else {
        est::OpAmpEstimator(corner_procs[c]).estimate(specs[i]);
      }
      cell.estimate_ok = 1;
    } catch (const Error&) {
      // Infeasible at this corner: recorded per corner, not fatal.
    }
    cell.points.reserve(static_cast<size_t>(samples));
    for (int s = 0; s < samples; ++s) {
      if (mismatch) {
        try {
          const est::Process p = stat::sample_mismatch(
              corner_procs[c], options.pelgrom, batch.seed, i, c,
              static_cast<uint64_t>(s));
          cell.points.push_back(check_point(p, vars[i], specs[i]));
          continue;
        } catch (const Error&) {
          cell.points.push_back(stat::PointOutcome{});  // unevaluable draw
          continue;
        }
      }
      cell.points.push_back(check_point(corner_procs[c], vars[i], specs[i]));
    }
  };
  const size_t n_cells = cells.size();
  if (threads <= 1 || n_cells <= 1) {
    for (size_t k = 0; k < n_cells; ++k) run_cell(k);
  } else {
    Executor pool(static_cast<int>(
        std::min(static_cast<size_t>(threads), n_cells)));
    std::vector<std::future<void>> futures;
    futures.reserve(n_cells);
    for (size_t k = 0; k < n_cells; ++k) {
      futures.push_back(pool.submit([&run_cell, k] { run_cell(k); }));
    }
    for (auto& f : futures) f.get();
  }

  // ---- Aggregation, in (job, corner, sample) index order ----
  out.aggregate = stat::YieldReport(corner_names);
  for (size_t i = 0; i < n_jobs; ++i) {
    SweepJobResult& jr = out.jobs[i];
    jr.report = stat::YieldReport(corner_names);
    jr.corner_estimate_ok.assign(n_corners, 0);
    jr.corner_proven_infeasible.assign(n_corners, 0);
    if (!jr.ok) continue;
    bool incomplete = false;
    for (size_t c = 0; c < n_corners; ++c) {
      const Cell& cell = cells[i * n_corners + c];
      if (!cell.ran) {
        incomplete = true;
        continue;
      }
      jr.corner_estimate_ok[c] = cell.estimate_ok;
      jr.corner_proven_infeasible[c] = cell.proven_infeasible;
      if (cell.proven_infeasible) ++out.corners_pruned;
      for (const auto& p : cell.points) jr.report.add(c, p);
    }
    if (incomplete) {
      jr.ok = false;
      jr.error = "cancelled: corner sweep incomplete";
      continue;
    }
    jr.report.finalize();
    out.aggregate.merge(jr.report);
  }
  out.aggregate.finalize();

  BatchStats& s = out.stats;
  s.jobs = static_cast<int>(n_jobs);
  s.threads = threads;
  for (const auto& j : out.jobs) {
    if (!j.ok) {
      ++s.failed;
    } else if (j.report.total.samples > 0 &&
               j.report.total.pass == j.report.total.samples) {
      ++s.met_spec;  // passes everywhere on the grid
    }
  }
  s.wall_seconds = now_seconds() - t0;
  s.jobs_per_second = s.wall_seconds > 0.0 ? s.jobs / s.wall_seconds : 0.0;
  if (cache != nullptr) {
    const CacheStats after = cache->stats();
    s.cache.hits = after.hits - cache_before.hits;
    s.cache.misses = after.misses - cache_before.misses;
  }
  return out;
}

SweepResult run_monte_carlo(const est::Process& proc,
                            const std::vector<est::OpAmpSpec>& specs,
                            const SweepOptions& options) {
  if (options.mc_samples < 1) {
    throw SpecError("run_monte_carlo: mc_samples must be >= 1");
  }
  return run_corner_sweep(proc, specs, options);
}

}  // namespace ape::runtime
