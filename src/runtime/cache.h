#pragma once
/// \file cache.h
/// Shared memoizing estimate cache for the batch runtime (DESIGN.md
/// section 7).
///
/// Batch workloads (spec sweeps, multi-start synthesis, repeated CLI
/// invocations over overlapping spec files) re-estimate identical
/// (process, spec) pairs constantly; APE estimates are pure functions of
/// those inputs, so they memoize safely. MemoCache<Value> provides the
/// generic single-fill discipline:
///
///  - the first thread to request a key computes it (a per-entry mutex
///    serializes the fill; other requesters of the *same* key block until
///    the value is ready, requesters of different keys proceed);
///  - a compute that throws is rethrown to every requester already
///    waiting on the fill. Whether the failure is *memoized* depends on
///    its ErrorClass (error.h): a Permanent failure (infeasible spec) is
///    cached as an error entry — infeasible once is infeasible forever —
///    while a Transient failure (numerical, budget, injected fault)
///    releases the fill slot so a later request recomputes. Without the
///    release, one transient fault would poison the key for every retry
///    the supervisor ladder makes (DESIGN.md section 10);
///  - values are immutable after fill and handed out as
///    shared_ptr<const Value>, so a hit is safe to hold across the
///    lifetime of the cache entry and across threads.
///
/// EstimateCache bundles the two concrete caches (opamp + module) behind
/// content-derived keys: the key serializes every electrically relevant
/// field of the Process (both model cards, supplies, geometry limits) and
/// the full spec, with hex float formatting so distinct doubles never
/// collide and equal doubles always match bit-for-bit.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/util/error.h"

namespace ape::runtime {

/// Hit/miss counters of one cache (snapshot semantics).
struct CacheStats {
  long hits = 0;    ///< requests served from a completed or in-flight fill
  long misses = 0;  ///< requests that had to compute the value

  double hit_rate() const {
    const long total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    return *this;
  }
};

/// Generic memoizing map with single-fill guarantee (see file comment).
template <class Value>
class MemoCache {
public:
  /// Return the cached value for \p key, computing it with \p compute on
  /// first request. Concurrent requests for the same key compute once;
  /// a throwing compute is memoized and rethrown to all requesters.
  std::shared_ptr<const Value> get_or_compute(
      const std::string& key, const std::function<Value()>& compute) {
    std::shared_ptr<Entry> entry;
    bool creator = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        entry = std::make_shared<Entry>();
        // Take the fill lock before the entry becomes visible so every
        // other requester of this key blocks until the fill completes.
        entry->fill.lock();
        map_.emplace(key, entry);
        creator = true;
        ++misses_;
      } else {
        entry = it->second;
        ++hits_;
      }
    }
    if (creator) {
      std::lock_guard<std::mutex> fill(entry->fill, std::adopt_lock);
      try {
        entry->value = std::make_shared<const Value>(compute());
      } catch (...) {
        entry->error = std::current_exception();
        if (!should_negative_cache(entry->error)) {
          // Transient failure: drop the entry so the next requester
          // recomputes. Requesters already holding this entry still see
          // the error below — only the *map* forgets it. Taking mu_
          // while holding entry->fill cannot deadlock: no thread waits
          // on a fill mutex while holding mu_.
          std::lock_guard<std::mutex> lock(mu_);
          auto it = map_.find(key);
          if (it != map_.end() && it->second == entry) map_.erase(it);
        }
      }
    } else {
      // Block until the creator releases the fill lock (a no-op wait for
      // entries filled in the past); the lock pairing also orders the
      // fill's writes before our reads below.
      std::lock_guard<std::mutex> wait(entry->fill);
    }
    if (entry->error) std::rethrow_exception(entry->error);
    return entry->value;
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_};
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    hits_ = misses_ = 0;
  }

private:
  struct Entry {
    /// Held by the creator for exactly the fill window; value/error are
    /// immutable once it is released.
    std::mutex fill;
    std::shared_ptr<const Value> value;
    std::exception_ptr error;
  };

  /// Negative-cache a failed fill only when the failure is Permanent by
  /// the error taxonomy; anything that is not an ape::Error is treated as
  /// transient (we know nothing about it, so keeping the key retryable
  /// is the safe default).
  static bool should_negative_cache(const std::exception_ptr& ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const Error& e) {
      return !e.transient();
    } catch (...) {
      return false;
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
  long hits_ = 0;
  long misses_ = 0;
};

/// Content-derived cache keys (process + spec; see file comment).
std::string cache_key(const est::Process& proc, const est::OpAmpSpec& spec);
std::string cache_key(const est::Process& proc, const est::ModuleSpec& spec);

/// The shared estimate cache of a batch run: memoized OpAmpEstimator /
/// ModuleEstimator results keyed on (process, spec).
class EstimateCache {
public:
  /// Memoized est::OpAmpEstimator(proc).estimate(spec). Throws what the
  /// estimator threw (also on a negative-cache hit).
  std::shared_ptr<const est::OpAmpDesign> opamp(const est::Process& proc,
                                                const est::OpAmpSpec& spec);

  /// Memoized est::ModuleEstimator(proc).estimate(spec).
  std::shared_ptr<const est::ModuleDesign> module(const est::Process& proc,
                                                  const est::ModuleSpec& spec);

  /// Combined hit/miss counters across both levels.
  CacheStats stats() const;

  size_t size() const { return opamps_.size() + modules_.size(); }

  void clear() {
    opamps_.clear();
    modules_.clear();
  }

private:
  MemoCache<est::OpAmpDesign> opamps_;
  MemoCache<est::ModuleDesign> modules_;
};

}  // namespace ape::runtime
