#pragma once
/// \file cache.h
/// Shared memoizing estimate cache for the batch runtime (DESIGN.md
/// section 7).
///
/// Batch workloads (spec sweeps, multi-start synthesis, repeated CLI
/// invocations over overlapping spec files) re-estimate identical
/// (process, spec) pairs constantly; APE estimates are pure functions of
/// those inputs, so they memoize safely. MemoCache<Value> provides the
/// generic single-fill discipline:
///
///  - the first thread to request a key computes it (a per-entry mutex
///    serializes the fill; other requesters of the *same* key block until
///    the value is ready, requesters of different keys proceed);
///  - a compute that throws is rethrown to every requester already
///    waiting on the fill. Whether the failure is *memoized* depends on
///    its ErrorClass (error.h): a Permanent failure (infeasible spec) is
///    cached as an error entry — infeasible once is infeasible forever —
///    while a Transient failure (numerical, budget, injected fault)
///    releases the fill slot so a later request recomputes. Without the
///    release, one transient fault would poison the key for every retry
///    the supervisor ladder makes (DESIGN.md section 10);
///  - values are immutable after fill and handed out as
///    shared_ptr<const Value>, so a hit is safe to hold across the
///    lifetime of the cache entry and across threads;
///  - occupancy is bounded: a cache constructed with (or given) a
///    nonzero capacity evicts least-recently-used *completed* entries
///    once the map exceeds it. Entries whose fill is still in flight are
///    never evicted (requesters are blocked on them), so occupancy can
///    transiently exceed capacity by the number of concurrent fills —
///    which the admission control of any long-lived owner (the ape_serve
///    daemon, DESIGN.md section 11) already bounds. An evicted entry
///    that requesters still hold stays alive through their shared_ptr;
///    only the map forgets it. Capacity 0 means unbounded (the batch CLI
///    default, where the run's spec file bounds occupancy naturally).
///
/// EstimateCache bundles the two concrete caches (opamp + module) behind
/// content-derived keys: the key serializes every electrically relevant
/// field of the Process (both model cards, supplies, geometry limits) and
/// the full spec, with hex float formatting so distinct doubles never
/// collide and equal doubles always match bit-for-bit.

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/util/error.h"

namespace ape::runtime {

/// Hit/miss/eviction counters of one cache (snapshot semantics).
struct CacheStats {
  long hits = 0;    ///< requests served from a completed or in-flight fill
  long misses = 0;  ///< requests that had to compute the value
  long evictions = 0;  ///< completed entries dropped by the LRU bound
  long entries = 0;    ///< current occupancy at snapshot time

  double hit_rate() const {
    const long total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
  CacheStats& operator+=(const CacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    entries += o.entries;
    return *this;
  }
};

/// Generic memoizing map with single-fill guarantee and an optional LRU
/// occupancy bound (see file comment).
template <class Value>
class MemoCache {
public:
  /// \p capacity bounds occupancy (0 = unbounded).
  explicit MemoCache(size_t capacity = 0) : capacity_(capacity) {}

  /// Change the occupancy bound; excess completed entries are evicted
  /// immediately (LRU first).
  void set_capacity(size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = capacity;
    evict_excess_locked();
  }

  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }

  /// Return the cached value for \p key, computing it with \p compute on
  /// first request. Concurrent requests for the same key compute once;
  /// a throwing compute is memoized and rethrown to all requesters.
  std::shared_ptr<const Value> get_or_compute(
      const std::string& key, const std::function<Value()>& compute) {
    std::shared_ptr<Entry> entry;
    bool creator = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        entry = it->second;
        // Touch: most-recently-used entries migrate to the list front,
        // so eviction (from the back) drops the coldest keys first.
        if (entry->in_map) lru_.splice(lru_.begin(), lru_, entry->lru_it);
        ++hits_;
      }
    }
    if (!entry) {
      // Probable miss: build the entry and take its fill lock while it is
      // still private (uncontended, and crucially *outside* mu_ — the only
      // lock ordering in this file is fill -> mu_, never the reverse).
      // Publication happens under mu_ below; losing the insert race just
      // discards the speculative entry.
      auto fresh = std::make_shared<Entry>();
      fresh->fill.lock();
      std::lock_guard<std::mutex> lock(mu_);
      auto it = map_.find(key);
      if (it == map_.end()) {
        lru_.push_front(key);
        fresh->lru_it = lru_.begin();
        map_.emplace(key, fresh);
        entry = fresh;
        creator = true;
        ++misses_;
      } else {
        fresh->fill.unlock();
        entry = it->second;
        if (entry->in_map) lru_.splice(lru_.begin(), lru_, entry->lru_it);
        ++hits_;
      }
    }
    if (creator) {
      std::lock_guard<std::mutex> fill(entry->fill, std::adopt_lock);
      try {
        entry->value = std::make_shared<const Value>(compute());
        finish_fill(key, entry, /*keep=*/true);
      } catch (...) {
        entry->error = std::current_exception();
        // Transient failure: drop the entry so the next requester
        // recomputes. Requesters already holding this entry still see
        // the error below — only the *map* forgets it. Taking mu_
        // while holding entry->fill cannot deadlock: no thread waits
        // on a fill mutex while holding mu_.
        finish_fill(key, entry, should_negative_cache(entry->error));
      }
    } else {
      // Block until the creator releases the fill lock (a no-op wait for
      // entries filled in the past); the lock pairing also orders the
      // fill's writes before our reads below.
      std::lock_guard<std::mutex> wait(entry->fill);
    }
    if (entry->error) std::rethrow_exception(entry->error);
    return entry->value;
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = static_cast<long>(map_.size());
    return s;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, entry] : map_) entry->in_map = false;
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evictions_ = 0;
  }

private:
  struct Entry {
    /// Held by the creator for exactly the fill window; value/error are
    /// immutable once it is released.
    std::mutex fill;
    std::shared_ptr<const Value> value;
    std::exception_ptr error;
    // The remaining fields are guarded by the cache's mu_.
    bool done = false;    ///< fill completed (value or negative cache)
    bool in_map = true;   ///< false once evicted / released / cleared
    std::list<std::string>::iterator lru_it;  ///< valid while in_map
  };

  /// Completion bookkeeping for a creator: mark the entry done (it is
  /// now evictable), or release it (transient failure), then apply the
  /// occupancy bound.
  void finish_fill(const std::string& key, const std::shared_ptr<Entry>& entry,
                   bool keep) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->in_map) {
      if (keep) {
        entry->done = true;
      } else {
        auto it = map_.find(key);
        if (it != map_.end() && it->second == entry) {
          lru_.erase(entry->lru_it);
          entry->in_map = false;
          map_.erase(it);
        }
      }
    }
    evict_excess_locked();
  }

  /// Drop completed entries, coldest first, until occupancy fits the
  /// capacity. In-flight fills are skipped: their requesters are blocked
  /// on them, and the fill's own completion re-applies the bound.
  void evict_excess_locked() {
    if (capacity_ == 0 || map_.size() <= capacity_) return;
    auto it = lru_.end();
    while (it != lru_.begin() && map_.size() > capacity_) {
      --it;
      auto mit = map_.find(*it);
      if (mit == map_.end() || !mit->second->done) continue;
      mit->second->in_map = false;
      map_.erase(mit);
      it = lru_.erase(it);
      ++evictions_;
    }
  }

  size_t capacity_ = 0;  ///< 0 = unbounded

  /// Negative-cache a failed fill only when the failure is Permanent by
  /// the error taxonomy; anything that is not an ape::Error is treated as
  /// transient (we know nothing about it, so keeping the key retryable
  /// is the safe default).
  static bool should_negative_cache(const std::exception_ptr& ep) {
    try {
      std::rethrow_exception(ep);
    } catch (const Error& e) {
      return !e.transient();
    } catch (...) {
      return false;
    }
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
  std::list<std::string> lru_;  ///< front = most recent, back = eviction end
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
};

/// Content-derived cache keys (process + spec; see file comment).
std::string cache_key(const est::Process& proc, const est::OpAmpSpec& spec);
std::string cache_key(const est::Process& proc, const est::ModuleSpec& spec);

/// The shared estimate cache of a batch run: memoized OpAmpEstimator /
/// ModuleEstimator results keyed on (process, spec).
class EstimateCache {
public:
  /// \p capacity_per_level bounds each underlying cache (opamp and
  /// module) independently; 0 = unbounded. Long-lived owners (the
  /// ape_serve daemon) must pass a bound — see the MemoCache comment.
  explicit EstimateCache(size_t capacity_per_level = 0)
      : opamps_(capacity_per_level), modules_(capacity_per_level) {}

  /// Re-bound both levels (evicting immediately when shrinking).
  void set_capacity_per_level(size_t capacity) {
    opamps_.set_capacity(capacity);
    modules_.set_capacity(capacity);
  }

  /// Memoized est::OpAmpEstimator(proc).estimate(spec). Throws what the
  /// estimator threw (also on a negative-cache hit).
  std::shared_ptr<const est::OpAmpDesign> opamp(const est::Process& proc,
                                                const est::OpAmpSpec& spec);

  /// Memoized est::ModuleEstimator(proc).estimate(spec).
  std::shared_ptr<const est::ModuleDesign> module(const est::Process& proc,
                                                  const est::ModuleSpec& spec);

  /// Combined hit/miss/eviction/occupancy counters across both levels.
  CacheStats stats() const;

  size_t size() const { return opamps_.size() + modules_.size(); }

  void clear() {
    opamps_.clear();
    modules_.clear();
  }

private:
  MemoCache<est::OpAmpDesign> opamps_;
  MemoCache<est::ModuleDesign> modules_;
};

}  // namespace ape::runtime
