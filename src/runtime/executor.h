#pragma once
/// \file executor.h
/// Fixed-size thread pool with a FIFO job queue and future-based results
/// — the execution substrate of the batch-estimation runtime (DESIGN.md
/// section 7).
///
/// Design rules that keep pooled runs equivalent to serial runs:
///
///  - The pool never owns randomness or provenance: every job derives its
///    own Rng stream (Rng::derive_stream) and opens its own ErrorContext
///    scope, so results are a pure function of (inputs, seed) and
///    independent of worker count and scheduling order.
///  - submit() returns a std::future; an exception thrown by the job is
///    captured into the future and rethrows in the consumer, never in the
///    worker (workers cannot die).
///  - Header-only so low-level layers (the synthesis drivers' multi-start
///    anneal) can use the pool without linking against ape_runtime.
///
/// The destructor drains the queue: jobs already submitted run to
/// completion before the workers join.

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ape::runtime {

class Executor {
public:
  /// Create a pool of \p threads workers; 0 picks the hardware
  /// concurrency (at least 1).
  explicit Executor(int threads = 0) {
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
      if (threads <= 0) threads = 1;
    }
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~Executor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueue \p fn; the returned future yields its result (or rethrows
  /// its exception).
  template <class F>
  auto submit(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job();  // packaged_task: exceptions land in the future
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ape::runtime
