#include "src/runtime/cache.h"

#include <cstdio>

namespace ape::runtime {
namespace {

/// Append a double in hex-float form: exact (no rounding collisions) and
/// locale-independent, so the key is a faithful fingerprint of the value.
void put(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%a;", v);
  out += buf;
}

void put(std::string& out, const spice::MosModelCard& c) {
  out += c.name;
  out += ';';
  out += std::to_string(static_cast<int>(c.type));
  out += ';';
  out += std::to_string(c.level);
  out += ';';
  // Every numeric field of the card, DC through noise (parser order).
  for (double v : {c.vto, c.kp, c.gamma, c.phi, c.lambda, c.u0, c.tox,
                   c.nsub, c.ld, c.ucrit, c.uexp, c.vmax, c.theta, c.eta,
                   c.kappa, c.xj, c.vfb, c.k1, c.k2, c.muz, c.u0v, c.u1,
                   c.cgso, c.cgdo, c.cgbo, c.cj, c.mj, c.cjsw, c.mjsw,
                   c.pb, c.js, c.kf, c.af, c.rsh, c.lref}) {
    put(out, v);
  }
}

std::string process_key(const est::Process& proc) {
  std::string key;
  key.reserve(512);
  key += proc.name;
  key += '|';
  // Scenario identity: the corner / Monte-Carlo variant tag and the
  // temperature condition. Without these, a zero-width perturbation (or
  // a corner whose numeric deltas happen to cancel) would collide with
  // the nominal process in the cache AND in quarantine/checkpoint
  // fingerprints, which hash this same key (supervisor.h).
  key += proc.variant;
  key += '|';
  put(key, proc.temp_c);
  key += '|';
  put(key, proc.nmos);
  key += '|';
  put(key, proc.pmos);
  key += '|';
  for (double v : {proc.vdd, proc.vss, proc.lmin, proc.wmin, proc.wmax}) {
    put(key, v);
  }
  return key;
}

}  // namespace

std::string cache_key(const est::Process& proc, const est::OpAmpSpec& spec) {
  std::string key = process_key(proc);
  key += "|opamp|";
  key += std::to_string(static_cast<int>(spec.source));
  key += spec.buffer ? ";1;" : ";0;";
  for (double v : {spec.gain, spec.ugf_hz, spec.ibias, spec.cload, spec.zout,
                   spec.area_budget}) {
    put(key, v);
  }
  return key;
}

std::string cache_key(const est::Process& proc, const est::ModuleSpec& spec) {
  std::string key = process_key(proc);
  key += "|module|";
  key += std::to_string(static_cast<int>(spec.kind));
  key += ';';
  key += std::to_string(spec.order);
  key += ';';
  for (double v : {spec.gain, spec.bw_hz, spec.f0_hz, spec.delay_s, spec.slew,
                   spec.area_budget}) {
    put(key, v);
  }
  return key;
}

std::shared_ptr<const est::OpAmpDesign> EstimateCache::opamp(
    const est::Process& proc, const est::OpAmpSpec& spec) {
  return opamps_.get_or_compute(cache_key(proc, spec), [&] {
    return est::OpAmpEstimator(proc).estimate(spec);
  });
}

std::shared_ptr<const est::ModuleDesign> EstimateCache::module(
    const est::Process& proc, const est::ModuleSpec& spec) {
  return modules_.get_or_compute(cache_key(proc, spec), [&] {
    return est::ModuleEstimator(proc).estimate(spec);
  });
}

CacheStats EstimateCache::stats() const {
  CacheStats s = opamps_.stats();
  s += modules_.stats();
  return s;
}

}  // namespace ape::runtime
