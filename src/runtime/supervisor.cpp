#include "src/runtime/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <optional>
#include <sstream>
#include <thread>

#include "src/lint/lint.h"
#include "src/runtime/executor.h"
#include "src/util/error.h"
#include "src/util/json.h"

namespace ape::runtime {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

void merge(SupervisionStats& into, const SupervisionStats& from) {
  into.attempts += from.attempts;
  into.retries += from.retries;
  into.numeric_recovery_attempts += from.numeric_recovery_attempts;
  into.relaxed_attempts += from.relaxed_attempts;
  into.estimate_fallbacks += from.estimate_fallbacks;
  into.backoff_waits += from.backoff_waits;
  into.backoff_seconds += from.backoff_seconds;
  into.deadline_hits += from.deadline_hits;
  into.cancelled_jobs += from.cancelled_jobs;
  into.quarantine_skips += from.quarantine_skips;
  into.quarantined_new += from.quarantined_new;
  into.checkpoints_written += from.checkpoints_written;
  into.resumed_jobs += from.resumed_jobs;
}

RetryRung rung_from_string(const std::string& s) {
  for (RetryRung r : {RetryRung::Initial, RetryRung::Retry,
                      RetryRung::NumericRecovery, RetryRung::Relaxed,
                      RetryRung::EstimateOnly, RetryRung::Fail}) {
    if (s == to_string(r)) return r;
  }
  throw ParseError("checkpoint: unknown retry rung '" + s + "'");
}

template <class Spec>
void lint_gate(bool enabled, const est::Process& proc, const Spec& spec) {
  if (!enabled) return;
  lint::require_clean(lint::lint_spec(spec, proc), "lint-first");
}

/// The EstimateOnly rung for an opamp job: the bare APE estimate wrapped
/// in a SynthesisOutcome — no annealing, no simulator. Deterministic, so
/// a resumed run re-derives it instead of persisting the design.
synth::SynthesisOutcome estimate_only_opamp(const est::Process& proc,
                                            const est::OpAmpSpec& spec,
                                            const BatchOptions& options) {
  lint_gate(options.lint_first, proc, spec);
  synth::SynthesisOutcome out;
  if (options.cache != nullptr) {
    out.design = *options.cache->opamp(proc, spec);
  } else {
    out.design = est::OpAmpEstimator(proc).estimate(spec);
  }
  out.functional = true;
  out.comment = "estimate-only fallback";
  out.restarts_run = 0;
  return out;
}

synth::ModuleSynthesisOutcome estimate_only_module(const est::Process& proc,
                                                  const est::ModuleSpec& spec,
                                                  const BatchOptions& options) {
  lint_gate(options.lint_first, proc, spec);
  synth::ModuleSynthesisOutcome out;
  if (options.cache != nullptr) {
    out.design = *options.cache->module(proc, spec);
  } else {
    out.design = est::ModuleEstimator(proc).estimate(spec);
  }
  out.functional = true;
  out.comment = "estimate-only fallback";
  out.restarts_run = 0;
  return out;
}

/// Run one job's full recovery ladder (see supervisor.h). \p run_attempt
/// executes a normal synthesis attempt, \p estimate_only the fallback
/// rung; both are invoked on the current (worker) thread under the job's
/// ambient budget and, on relaxed rungs, under ScopedSolverRelaxation.
template <class Outcome, class RunAttempt, class EstimateOnly>
SupervisedJobResult<Outcome> supervise_one(size_t index, uint64_t fp,
                                           const SupervisorOptions& options,
                                           SupervisionStats& stats,
                                           const RunAttempt& run_attempt,
                                           const EstimateOnly& estimate_only) {
  SupervisedJobResult<Outcome> r;
  r.index = index;
  const RetryPolicy& policy = options.retry;

  if (options.quarantine != nullptr) {
    std::string why;
    if (options.quarantine->quarantined(fp, &why)) {
      r.quarantined = true;
      r.error = annotate_with_context("quarantined: " + why);
      ++stats.quarantine_skips;
      return r;
    }
  }

  // One budget for the whole ladder: the deadline bounds the job, not
  // each attempt. Installed ambiently so every solver poll site below
  // (Newton ladders, sweeps, transient sub-steps, AC points, the anneal
  // loop) observes it without options plumbing.
  RunBudget budget;
  if (options.job_timeout_s > 0.0) budget.set_deadline_in(options.job_timeout_s);
  if (options.cancel != nullptr) budget.attach_cancel(options.cancel);
  ScopedJobBudget ambient(budget);

  Outcome best{};
  bool have_best = false;
  int attempt = 0;
  RetryRung rung = RetryRung::Initial;
  std::string last_error;

  auto cancelled_result = [&]() {
    r.cancelled = true;
    r.ok = false;
    r.error = annotate_with_context("cancelled");
    ++stats.cancelled_jobs;
  };
  auto deadline_result = [&]() {
    r.deadline_hit = true;
    ++stats.deadline_hits;
    if (have_best) {
      // Best-so-far from an earlier attempt: partial but reportable.
      r.outcome = std::move(best);
      r.ok = true;
    } else {
      r.error = annotate_with_context(
          std::string("deadline exceeded") +
          (last_error.empty() ? "" : " (last attempt: " + last_error + ")"));
    }
  };
  // Set once a lint/feasibility verdict (LintError, e.g. APE-F001) has
  // fired for this job: the spec is provably defective, which is a fact
  // about the *input*, not flakiness of the pipeline — so neither the
  // verdict nor the follow-on estimate-fallback failure may feed the
  // quarantine registry (it tracks fingerprints that fail *unexpectedly*).
  bool lint_verdict = false;
  auto record_attempt_failure = [&](const std::string& error) {
    last_error = error;
    if (!lint_verdict && options.quarantine != nullptr &&
        options.quarantine->record_failure(fp, error,
                                           options.quarantine_threshold)) {
      ++stats.quarantined_new;
    }
  };
  auto escalate = [&](ErrorClass klass) {
    rung = policy.next_rung(klass, attempt);
    // A permanent failure jumps straight to the estimate fallback; the
    // attempt ordinal must jump with it, so a *failing* estimate then
    // maps to Fail instead of re-entering the EstimateOnly rung.
    attempt = rung == RetryRung::EstimateOnly
                  ? std::max(policy.estimate_attempt(), attempt + 1)
                  : attempt + 1;
  };

  for (;;) {
    if (budget.cancelled()) {
      cancelled_result();
      return r;
    }
    if (budget.exhausted()) {
      deadline_result();
      return r;
    }
    if (rung == RetryRung::Fail) break;

    if (attempt > 0) {
      double wait = policy.backoff_s(index, attempt);
      wait = std::min(wait, std::max(budget.seconds_left(), 0.0));
      if (wait > 0.0 && std::isfinite(wait)) {
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
        ++stats.backoff_waits;
        stats.backoff_seconds += wait;
      }
    }

    r.final_rung = rung;
    ++r.attempts;
    ++stats.attempts;
    if (attempt > 0) ++stats.retries;
    if (rung == RetryRung::Relaxed) ++stats.relaxed_attempts;
    if (rung == RetryRung::NumericRecovery) ++stats.numeric_recovery_attempts;

    ErrorContext attempt_scope("attempt[" + std::to_string(attempt) + "](" +
                               to_string(rung) + ")");
    std::optional<ScopedSolverRelaxation> relax;
    if (rung == RetryRung::Relaxed) relax.emplace(policy.relaxation);
    // The numeric-recovery rung re-runs the attempt with the health
    // layer forced on: every solve equilibrates, estimates its condition
    // and refines (DESIGN.md section 15).
    std::optional<ScopedNumericHealthMode> health_mode;
    if (rung == RetryRung::NumericRecovery) {
      health_mode.emplace(NumericHealthMode::Force);
    }
    // Per-attempt fault injection (tests): configured and installed here,
    // on the worker thread, because a thread_local injector installed on
    // the submitting thread never reaches a pool worker.
    spice::FaultInjector injector;
    std::optional<spice::ScopedFaultInjection> fault;
    if (options.fault_setup) {
      options.fault_setup(index, attempt, injector);
      fault.emplace(injector);
    }

    try {
      if (rung == RetryRung::EstimateOnly) {
        r.outcome = estimate_only(index);
        r.ok = true;
        r.estimate_fallback = true;
        ++stats.estimate_fallbacks;
        return r;
      }
      Outcome out = run_attempt(index);
      if (budget.cancelled()) {
        cancelled_result();
        return r;
      }
      if (budget.exhausted()) {
        // The deadline fired mid-attempt but the search still returned
        // (the anneal loop stops cooperatively): keep the partial result.
        r.outcome = std::move(out);
        r.ok = true;
        r.deadline_hit = true;
        ++stats.deadline_hits;
        return r;
      }
      if (out.sim_failed && policy.retry_sim_failures) {
        // Synthesis finished but the simulator verification threw —
        // usually transient non-convergence the Relaxed rung can clear.
        // Keep the outcome: if the ladder runs dry, best-so-far beats an
        // empty failure, and the EstimateOnly rung would *discard* a
        // synthesized design for a bare estimate, so stop before it.
        best = std::move(out);
        have_best = true;
        record_attempt_failure(annotate_with_context(
            "simulator verification failed (best-so-far outcome kept)"));
        const RetryRung next = policy.next_rung(ErrorClass::Transient, attempt);
        ++attempt;
        if (next == RetryRung::EstimateOnly || next == RetryRung::Fail) break;
        rung = next;
        continue;
      }
      r.outcome = std::move(out);
      r.ok = true;
      if (options.quarantine != nullptr) options.quarantine->record_success(fp);
      return r;
    } catch (const lint::LintError& e) {
      if (budget.cancelled()) {
        cancelled_result();
        return r;
      }
      lint_verdict = true;
      record_attempt_failure(e.what());
      if (budget.exhausted()) {
        deadline_result();
        return r;
      }
      escalate(e.klass());  // Permanent: straight to the estimate fallback
    } catch (const Error& e) {
      if (budget.cancelled()) {
        cancelled_result();
        return r;
      }
      record_attempt_failure(e.what());
      if (budget.exhausted()) {
        deadline_result();
        return r;
      }
      escalate(e.klass());
    } catch (const std::exception& e) {
      // Non-ape exceptions carry no taxonomy; treat them as transient
      // (same safe default as the MemoCache negative-caching policy).
      record_attempt_failure(annotate_with_context(e.what()));
      if (budget.exhausted()) {
        deadline_result();
        return r;
      }
      escalate(ErrorClass::Transient);
    }
  }

  // Ladder exhausted.
  if (have_best) {
    r.outcome = std::move(best);
    r.ok = true;
  } else {
    r.error = last_error.empty()
                  ? annotate_with_context("retry ladder exhausted")
                  : last_error;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Checkpoint format (opamp batches), version 1:
//
//   { "version": 1, "kind": "opamp", "seed": "<u64 decimal>",
//     "jobs": [ { "index": i, "fp": "<u64 decimal>", "done": bool,
//                 "ok": bool, "error": "...", "attempts": n,
//                 "rung": "initial|retry|relaxed|estimate-only|fail",
//                 "deadline_hit": b, "quarantined": b,
//                 "estimate_fallback": b,
//                 "cost": "<hex-float>", "evaluations": n, "skipped": n,
//                 "nonfinite": n, "budget_exhausted": b,
//                 "restarts_run": n, "best_restart": n,
//                 "sim_failed": b, "functional": b, "meets_spec": b,
//                 "comment": "...", "best_x": ["<hex-float>", ...] }, ... ] }
//
// best_x as hex floats is the whole trick: design, simulator report and
// Table-1 diagnosis are pure functions of (process, spec, best_x)
// (finalize_opamp_outcome), and job seeds are pure streams of (seed, i),
// so no RNG state and no design serialization are needed for bit-exact
// resume. Cancelled jobs are written done=false so a resume re-runs them.

std::string checkpoint_json(uint64_t seed, const std::vector<uint64_t>& fps,
                            const std::vector<SupervisedOpAmpResult>& jobs,
                            const std::vector<char>& done) {
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"kind\": \"opamp\",\n  \"seed\": \"" << seed
     << "\",\n  \"jobs\": [\n";
  for (size_t i = 0; i < jobs.size(); ++i) {
    const SupervisedOpAmpResult& j = jobs[i];
    const synth::SynthesisOutcome& o = j.outcome;
    os << "    {\"index\": " << i << ", \"fp\": \"" << fps[i] << "\""
       << ", \"done\": " << (done[i] != 0 ? "true" : "false")
       << ", \"ok\": " << (j.ok ? "true" : "false") << ", \"error\": \""
       << json::escape(j.error) << "\", \"attempts\": " << j.attempts
       << ", \"rung\": \"" << to_string(j.final_rung) << "\""
       << ", \"deadline_hit\": " << (j.deadline_hit ? "true" : "false")
       << ", \"quarantined\": " << (j.quarantined ? "true" : "false")
       << ", \"estimate_fallback\": " << (j.estimate_fallback ? "true" : "false")
       << ", \"cost\": \"" << json::hex_double(o.cost) << "\""
       << ", \"evaluations\": " << o.evaluations
       << ", \"skipped\": " << o.skipped_candidates
       << ", \"nonfinite\": " << o.rejected_nonfinite
       << ", \"budget_exhausted\": " << (o.budget_exhausted ? "true" : "false")
       << ", \"restarts_run\": " << o.restarts_run
       << ", \"best_restart\": " << o.best_restart
       << ", \"sim_failed\": " << (o.sim_failed ? "true" : "false")
       << ", \"functional\": " << (o.functional ? "true" : "false")
       << ", \"meets_spec\": " << (o.meets_spec ? "true" : "false")
       << ", \"comment\": \"" << json::escape(o.comment) << "\""
       << ", \"best_x\": [";
    for (size_t k = 0; k < o.best_x.size(); ++k) {
      if (k != 0) os << ", ";
      os << "\"" << json::hex_double(o.best_x[k]) << "\"";
    }
    os << "]}" << (i + 1 < jobs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

void write_checkpoint(const std::string& path, uint64_t seed,
                      const std::vector<uint64_t>& fps,
                      const std::vector<SupervisedOpAmpResult>& jobs,
                      const std::vector<char>& done) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::trunc);
    if (!f) throw Error("checkpoint: cannot write '" + tmp + "'");
    f << checkpoint_json(seed, fps, jobs, done);
    if (!f.good()) throw Error("checkpoint: write to '" + tmp + "' failed");
  }
  // Atomic publication: a reader (or a crash) sees the old checkpoint or
  // the new one, never a torn file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

uint64_t parse_u64(const json::Value& v, const char* what) {
  const std::string& s = v.as_string();
  char* end = nullptr;
  const uint64_t value = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || end == s.c_str() || *end != '\0') {
    throw ParseError(std::string("checkpoint: bad ") + what + " '" + s + "'");
  }
  return value;
}

const json::Value& require(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) {
    throw ParseError(std::string("checkpoint: missing field '") + key + "'");
  }
  return *v;
}

/// Restore finished jobs from \p path into jobs/done. Validates that the
/// checkpoint belongs to this exact run (seed, job count, per-job spec
/// fingerprints) before touching anything.
void restore_checkpoint(const std::string& path, const est::Process& proc,
                        const std::vector<est::OpAmpSpec>& specs,
                        const SupervisorOptions& options,
                        const std::vector<uint64_t>& fps,
                        std::vector<SupervisedOpAmpResult>& jobs,
                        std::vector<char>& done, SupervisionStats& stats) {
  ErrorContext scope("resume('" + path + "')");
  std::ifstream f(path);
  if (!f) throw ParseError("checkpoint: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << f.rdbuf();
  const json::Value doc = json::parse(buf.str());

  if (require(doc, "version").as_long() != 1) {
    throw ParseError("checkpoint: unsupported version");
  }
  if (require(doc, "kind").as_string() != "opamp") {
    throw ParseError("checkpoint: kind is not 'opamp'");
  }
  if (parse_u64(require(doc, "seed"), "seed") != options.batch.seed) {
    throw ParseError("checkpoint: seed does not match this run");
  }
  const json::Value& entries = require(doc, "jobs");
  if (entries.items.size() != specs.size()) {
    throw ParseError("checkpoint: job count " +
                     std::to_string(entries.items.size()) +
                     " does not match spec count " +
                     std::to_string(specs.size()));
  }

  for (const json::Value& e : entries.items) {
    const size_t i = static_cast<size_t>(require(e, "index").as_long());
    if (i >= specs.size()) throw ParseError("checkpoint: job index out of range");
    if (parse_u64(require(e, "fp"), "fp") != fps[i]) {
      throw ParseError("checkpoint: spec fingerprint mismatch at job " +
                       std::to_string(i) + " (different spec file or process?)");
    }
    if (!require(e, "done").as_bool()) continue;

    SupervisedOpAmpResult r;
    r.index = i;
    r.ok = require(e, "ok").as_bool();
    r.error = require(e, "error").as_string();
    r.attempts = static_cast<int>(require(e, "attempts").as_long());
    r.final_rung = rung_from_string(require(e, "rung").as_string());
    r.deadline_hit = require(e, "deadline_hit").as_bool();
    r.quarantined = require(e, "quarantined").as_bool();
    r.estimate_fallback = require(e, "estimate_fallback").as_bool();
    r.resumed = true;

    if (r.ok) {
      const bool sim_failed = require(e, "sim_failed").as_bool();
      const double cost = require(e, "cost").as_hex_double();
      std::vector<double> best_x;
      for (const json::Value& x : require(e, "best_x").items) {
        best_x.push_back(x.as_hex_double());
      }
      if (r.estimate_fallback) {
        // The fallback is a pure estimate: re-derive it.
        r.outcome = estimate_only_opamp(proc, specs[i], options.batch);
      } else if (!sim_failed) {
        // Full bit-exact re-derivation from the winning point.
        r.outcome =
            synth::finalize_opamp_outcome(proc, specs[i], best_x, cost);
      } else {
        // The stored attempt's verification failed (deadline or fault):
        // re-running the simulator now could produce a *different*
        // outcome, so reconstruct analytically and keep the stored
        // diagnosis instead.
        r.outcome.cost = cost;
        r.outcome.best_x = best_x;
        r.outcome.sim_failed = true;
        r.outcome.functional = require(e, "functional").as_bool();
        r.outcome.meets_spec = require(e, "meets_spec").as_bool();
        r.outcome.comment = require(e, "comment").as_string();
        if (!best_x.empty()) {
          const synth::OpAmpVars v =
              synth::OpAmpVars::unpack(best_x, specs[i].buffer);
          r.outcome.design = synth::design_from_vars(proc, v, specs[i]);
        }
      }
      r.outcome.evaluations =
          static_cast<int>(require(e, "evaluations").as_long());
      r.outcome.skipped_candidates =
          static_cast<int>(require(e, "skipped").as_long());
      r.outcome.rejected_nonfinite =
          static_cast<int>(require(e, "nonfinite").as_long());
      r.outcome.budget_exhausted = require(e, "budget_exhausted").as_bool();
      r.outcome.restarts_run =
          static_cast<int>(require(e, "restarts_run").as_long());
      r.outcome.best_restart =
          static_cast<int>(require(e, "best_restart").as_long());
    }

    jobs[i] = std::move(r);
    done[i] = 1;
    ++stats.resumed_jobs;
  }
}

}  // namespace

uint64_t spec_fingerprint(const est::Process& proc,
                          const est::OpAmpSpec& spec) {
  return fnv1a(cache_key(proc, spec));
}

uint64_t spec_fingerprint(const est::Process& proc,
                          const est::ModuleSpec& spec) {
  return fnv1a(cache_key(proc, spec));
}

bool QuarantineRegistry::quarantined(uint64_t fp, std::string* why) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fp);
  if (it == map_.end() || !it->second.quarantined) return false;
  if (why != nullptr) *why = it->second.error;
  return true;
}

bool QuarantineRegistry::record_failure(uint64_t fp, const std::string& error,
                                        int threshold) {
  std::lock_guard<std::mutex> lock(mu_);
  State& st = map_[fp];
  ++st.consecutive;
  if (st.quarantined || st.consecutive < std::max(threshold, 1)) return false;
  st.quarantined = true;
  st.error = error;
  return true;
}

void QuarantineRegistry::record_success(uint64_t fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fp);
  if (it != map_.end()) it->second.consecutive = 0;
}

size_t QuarantineRegistry::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [fp, st] : map_) {
    if (st.quarantined) ++n;
  }
  return n;
}

void QuarantineRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
}

std::string SupervisionStats::summary() const {
  std::ostringstream os;
  os << "supervision: attempts=" << attempts << " retries=" << retries
     << " numeric_recovery=" << numeric_recovery_attempts
     << " relaxed=" << relaxed_attempts
     << " estimate_fallbacks=" << estimate_fallbacks;
  if (backoff_waits > 0) {
    os << " backoff_waits=" << backoff_waits << " backoff_s=" << backoff_seconds;
  }
  os << " deadline_hits=" << deadline_hits << " cancelled=" << cancelled_jobs
     << " quarantine_skips=" << quarantine_skips
     << " quarantined_new=" << quarantined_new;
  if (checkpoints_written > 0) os << " checkpoints=" << checkpoints_written;
  if (resumed_jobs > 0) os << " resumed=" << resumed_jobs;
  return os.str();
}

SupervisedOpAmpBatchResult run_supervised_opamp_batch(
    const est::Process& proc, const std::vector<est::OpAmpSpec>& specs,
    const SupervisorOptions& options) {
  const double t0 = now_seconds();
  const int threads = resolve_threads(options.batch.threads);
  const CacheStats cache_before =
      options.batch.cache != nullptr ? options.batch.cache->stats()
                                     : CacheStats{};
  const size_t n = specs.size();

  SupervisedOpAmpBatchResult out;
  out.jobs.resize(n);
  for (size_t i = 0; i < n; ++i) out.jobs[i].index = i;
  std::vector<uint64_t> fps(n);
  for (size_t i = 0; i < n; ++i) fps[i] = spec_fingerprint(proc, specs[i]);
  std::vector<char> done(n, 0);

  if (!options.resume_path.empty()) {
    restore_checkpoint(options.resume_path, proc, specs, options, fps,
                       out.jobs, done, out.supervision);
  }

  // One mutex serializes result publication, stats merging, checkpoint
  // writes and the on_job_done hook — checkpoints therefore always
  // snapshot a consistent (jobs, done) pair.
  std::mutex mu;
  size_t since_checkpoint = 0;
  const size_t every =
      static_cast<size_t>(std::max(options.checkpoint_every, 1));
  const std::string parent = ErrorContext::chain();

  auto run_job = [&](size_t i) {
    const std::string frame = "opamp_batch[" + std::to_string(i) + "]";
    ErrorContext scope(parent.empty() ? frame : parent + " -> " + frame);
    SupervisionStats local;
    SupervisedOpAmpResult r = supervise_one<synth::SynthesisOutcome>(
        i, fps[i], options, local,
        [&](size_t j) {
          return detail::run_one_opamp(proc, specs[j], j, options.batch);
        },
        [&](size_t j) {
          return estimate_only_opamp(proc, specs[j], options.batch);
        });
    const bool ok = r.ok;
    {
      std::lock_guard<std::mutex> lock(mu);
      // A cancelled job is *unfinished*: a resume re-runs it, which is
      // what makes resumed results identical to an uninterrupted run.
      done[i] = r.cancelled ? 0 : 1;
      out.jobs[i] = std::move(r);
      merge(out.supervision, local);
      if (!options.checkpoint_path.empty() && ++since_checkpoint >= every) {
        write_checkpoint(options.checkpoint_path, options.batch.seed, fps,
                         out.jobs, done);
        ++out.supervision.checkpoints_written;
        since_checkpoint = 0;
      }
      if (options.on_job_done) options.on_job_done(i, ok);
    }
  };

  std::vector<size_t> pending;
  for (size_t i = 0; i < n; ++i) {
    if (done[i] == 0) pending.push_back(i);
  }
  if (threads <= 1 || pending.size() <= 1) {
    for (size_t i : pending) run_job(i);
  } else {
    Executor pool(static_cast<int>(
        std::min(static_cast<size_t>(threads), pending.size())));
    std::vector<std::future<void>> futures;
    futures.reserve(pending.size());
    for (size_t i : pending) {
      futures.push_back(pool.submit([&run_job, i] { run_job(i); }));
    }
    for (auto& f : futures) f.get();
  }

  if (!options.checkpoint_path.empty()) {
    std::lock_guard<std::mutex> lock(mu);
    write_checkpoint(options.checkpoint_path, options.batch.seed, fps,
                     out.jobs, done);
    ++out.supervision.checkpoints_written;
  }

  BatchStats& s = out.stats;
  s.jobs = static_cast<int>(n);
  s.threads = threads;
  for (const auto& j : out.jobs) {
    if (!j.ok) ++s.failed;
    if (j.ok && j.outcome.meets_spec) ++s.met_spec;
  }
  s.wall_seconds = now_seconds() - t0;
  s.jobs_per_second = s.wall_seconds > 0.0 ? s.jobs / s.wall_seconds : 0.0;
  if (options.batch.cache != nullptr) {
    const CacheStats after = options.batch.cache->stats();
    s.cache.hits = after.hits - cache_before.hits;
    s.cache.misses = after.misses - cache_before.misses;
  }
  return out;
}

SupervisedOpAmpResult run_supervised_opamp_job(const est::Process& proc,
                                               const est::OpAmpSpec& spec,
                                               const SupervisorOptions& options,
                                               size_t index,
                                               SupervisionStats* stats) {
  if (!options.checkpoint_path.empty() || !options.resume_path.empty()) {
    throw SpecError(
        "run_supervised_opamp_job: checkpoint/resume applies to batches, "
        "not single supervised jobs");
  }
  const uint64_t fp = spec_fingerprint(proc, spec);
  SupervisionStats local;
  SupervisedOpAmpResult r = supervise_one<synth::SynthesisOutcome>(
      index, fp, options, local,
      [&](size_t j) {
        return detail::run_one_opamp(proc, spec, j, options.batch);
      },
      [&](size_t) { return estimate_only_opamp(proc, spec, options.batch); });
  if (stats != nullptr) merge(*stats, local);
  return r;
}

SupervisedModuleBatchResult run_supervised_module_batch(
    const est::Process& proc, const std::vector<est::ModuleSpec>& specs,
    const SupervisorOptions& options) {
  if (!options.checkpoint_path.empty() || !options.resume_path.empty()) {
    throw SpecError(
        "run_supervised_module_batch: checkpoint/resume is only supported "
        "for opamp batches (module outcomes are not reconstructible from "
        "best_x alone yet)");
  }
  const double t0 = now_seconds();
  const int threads = resolve_threads(options.batch.threads);
  const CacheStats cache_before =
      options.batch.cache != nullptr ? options.batch.cache->stats()
                                     : CacheStats{};
  const size_t n = specs.size();

  SupervisedModuleBatchResult out;
  out.jobs.resize(n);
  for (size_t i = 0; i < n; ++i) out.jobs[i].index = i;
  std::vector<uint64_t> fps(n);
  for (size_t i = 0; i < n; ++i) fps[i] = spec_fingerprint(proc, specs[i]);

  std::mutex mu;
  const std::string parent = ErrorContext::chain();
  auto run_job = [&](size_t i) {
    const std::string frame = "module_batch[" + std::to_string(i) + "]";
    ErrorContext scope(parent.empty() ? frame : parent + " -> " + frame);
    SupervisionStats local;
    SupervisedModuleResult r = supervise_one<synth::ModuleSynthesisOutcome>(
        i, fps[i], options, local,
        [&](size_t j) {
          return detail::run_one_module(proc, specs[j], j, options.batch);
        },
        [&](size_t j) {
          return estimate_only_module(proc, specs[j], options.batch);
        });
    const bool ok = r.ok;
    {
      std::lock_guard<std::mutex> lock(mu);
      out.jobs[i] = std::move(r);
      merge(out.supervision, local);
      if (options.on_job_done) options.on_job_done(i, ok);
    }
  };

  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) run_job(i);
  } else {
    Executor pool(
        static_cast<int>(std::min(static_cast<size_t>(threads), n)));
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(pool.submit([&run_job, i] { run_job(i); }));
    }
    for (auto& f : futures) f.get();
  }

  BatchStats& s = out.stats;
  s.jobs = static_cast<int>(n);
  s.threads = threads;
  for (const auto& j : out.jobs) {
    if (!j.ok) ++s.failed;
    if (j.ok && j.outcome.meets_spec) ++s.met_spec;
  }
  s.wall_seconds = now_seconds() - t0;
  s.jobs_per_second = s.wall_seconds > 0.0 ? s.jobs / s.wall_seconds : 0.0;
  if (options.batch.cache != nullptr) {
    const CacheStats after = options.batch.cache->stats();
    s.cache.hits = after.hits - cache_before.hits;
    s.cache.misses = after.misses - cache_before.misses;
  }
  return out;
}

}  // namespace ape::runtime
