#pragma once
/// \file batch.h
/// Batch entry points of the estimation runtime (DESIGN.md section 7):
/// fan a vector of specs across a runtime::Executor and collect per-job
/// results, with per-job error isolation and deterministic seeding.
///
/// Seeding discipline: job i always synthesizes with the anneal seed
/// Rng::derive_stream(options.seed, i) (restarts inside a job derive
/// further sub-streams), and every job runs to completion regardless of
/// which worker picks it up — so a batch of N specs produces bit-identical
/// designs and costs at 1 thread and at k threads. The only supported
/// sources of nondeterminism are the wall-clock fields (cpu_seconds,
/// BatchStats timings) and an optional *shared* RunBudget/deadline in
/// options.synth.anneal.budget, which trades determinism for boundedness.
///
/// Error isolation: a job whose synthesis or estimation throws ape::Error
/// fails alone — the error (already carrying the job's ErrorContext
/// provenance, stamped "opamp_batch[i]" / "module_batch[i]") is captured
/// on the job result and the rest of the batch completes normally.

#include <memory>
#include <string>
#include <vector>

#include "src/estimator/modules.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/runtime/cache.h"
#include "src/synth/astrx.h"
#include "src/util/diagnostics.h"

namespace ape::runtime {

/// Knobs shared by every batch entry point.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = serial (still through
  /// the same code path, so serial and pooled results are comparable).
  int threads = 0;
  /// Base seed of the batch; job i anneals with stream i derived from it.
  uint64_t seed = 1;
  /// Template synthesis options applied to every job (the per-job seed
  /// and cached-estimate pointers are overridden per job).
  synth::SynthesisOptions synth;
  /// Optional shared estimate cache (memoizes the APE seed designs /
  /// module prototypes across jobs and batches). Not owned.
  EstimateCache* cache = nullptr;
  /// Lint every job's spec (lint::lint_spec, DESIGN.md section 9) before
  /// synthesizing / estimating it, then prove its feasibility over the
  /// sizing box (lint::prove_opamp_feasibility, DESIGN.md section 14).
  /// A spec with lint errors — or a proven-infeasible one (APE-F001) —
  /// fails its job with a Permanent LintError before any synthesis
  /// budget is spent: the supervision ladder skips every retry rung and
  /// goes straight to the estimate fallback, and quarantine is
  /// untouched. For feasible opamp jobs the proof's contracted box and
  /// cost floor are handed to the annealer (SynthesisOptions).
  bool lint_first = false;
};

/// One job's outcome; `ok == false` means the job threw and `error`
/// holds the provenance-annotated message.
template <class Outcome>
struct JobResult {
  size_t index = 0;    ///< position in the input spec vector
  bool ok = false;
  std::string error;   ///< empty when ok
  Outcome outcome{};   ///< default-constructed when !ok
};

using OpAmpJobResult = JobResult<synth::SynthesisOutcome>;
using ModuleJobResult = JobResult<synth::ModuleSynthesisOutcome>;

/// Aggregate batch accounting (wall-clock fields are nondeterministic).
struct BatchStats {
  int jobs = 0;
  int failed = 0;          ///< jobs with ok == false
  int met_spec = 0;        ///< jobs whose outcome meets the spec
  int threads = 1;         ///< pool size actually used
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  CacheStats cache;        ///< cache delta attributable to this batch
  /// Solver-kernel counters summed over every job in the batch (each job
  /// runs under its own ambient KernelStats sink; per-job tallies are
  /// merged with KernelStats::accumulate, so the counter sums are
  /// bit-identical at any thread count). Newton iterations, LU
  /// factorizations, fused AC points, and the sparse-path counters
  /// (symbolic analyses/reuses, numeric refactorizations, fallbacks)
  /// all surface here.
  KernelStats kernel;
};

struct OpAmpBatchResult {
  std::vector<OpAmpJobResult> jobs;  ///< jobs[i] is specs[i] (index order)
  BatchStats stats;
};

struct ModuleBatchResult {
  std::vector<ModuleJobResult> jobs;
  BatchStats stats;
};

/// Synthesize every opamp spec (one synthesize_opamp job per spec).
OpAmpBatchResult run_opamp_batch(const est::Process& proc,
                                 const std::vector<est::OpAmpSpec>& specs,
                                 const BatchOptions& options);

/// Synthesize every module spec (one synthesize_module job per spec).
ModuleBatchResult run_module_batch(const est::Process& proc,
                                   const std::vector<est::ModuleSpec>& specs,
                                   const BatchOptions& options);

/// Estimate-only batches: the APE itself (no annealing, no simulator),
/// the workload of the paper's 0.12 s / 0.14 s CPU-time claims at scale.
/// Designs are shared cache entries when a cache is supplied.
struct OpAmpEstimateBatchResult {
  std::vector<JobResult<std::shared_ptr<const est::OpAmpDesign>>> jobs;
  BatchStats stats;
};
struct ModuleEstimateBatchResult {
  std::vector<JobResult<std::shared_ptr<const est::ModuleDesign>>> jobs;
  BatchStats stats;
};

OpAmpEstimateBatchResult estimate_opamp_batch(
    const est::Process& proc, const std::vector<est::OpAmpSpec>& specs,
    const BatchOptions& options);

ModuleEstimateBatchResult estimate_module_batch(
    const est::Process& proc, const std::vector<est::ModuleSpec>& specs,
    const BatchOptions& options);

namespace detail {

/// The body of one opamp batch job (lint gate, per-job seed derivation,
/// cached APE-seed resolution, synthesis) without the fan-out / error
/// capture around it. Exposed so the supervised runtime (supervisor.h)
/// re-runs exactly the same job under its retry ladder: a supervised
/// attempt and an unsupervised job are byte-for-byte the same work.
synth::SynthesisOutcome run_one_opamp(const est::Process& proc,
                                      const est::OpAmpSpec& spec, size_t index,
                                      const BatchOptions& options);

/// Module counterpart of run_one_opamp.
synth::ModuleSynthesisOutcome run_one_module(const est::Process& proc,
                                             const est::ModuleSpec& spec,
                                             size_t index,
                                             const BatchOptions& options);

}  // namespace detail

}  // namespace ape::runtime
