#include "src/runtime/batch.h"

#include <chrono>
#include <future>
#include <mutex>
#include <thread>

#include "src/lint/lint.h"
#include "src/lint/prove.h"
#include "src/runtime/executor.h"
#include "src/util/diagnostics.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace ape::runtime {
namespace {

/// BatchOptions::lint_first gate; throws lint::LintError on a dirty spec.
template <class Spec>
void lint_gate(bool enabled, const est::Process& proc, const Spec& spec) {
  if (!enabled) return;
  lint::require_clean(lint::lint_spec(spec, proc), "lint-first");
}

/// Feasibility half of the lint-first gate (APE-F, src/lint/prove.h):
/// prove the spec reachable over the sizing box before any solve.
/// Throws LintError — ErrorClass::Permanent, so the supervision ladder
/// skips every retry rung and goes straight to the estimate fallback,
/// and the quarantine registry is never involved. Contraction is only
/// worth its ~100 extra interval evaluations when the proof artifacts
/// feed a synthesis run; the estimate-only gates pass contract=false.
lint::FeasibilityProof prove_gate(const est::Process& proc,
                                  const est::OpAmpSpec& spec, bool contract) {
  lint::ProveOptions po;
  if (!contract) po.contraction_segments = 0;
  lint::FeasibilityProof proof = lint::prove_opamp_feasibility(proc, spec, po);
  lint::require_feasible(proof, "lint-first");
  return proof;
}

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

/// Run \p job(i) for every i in [0, n) on a pool of \p threads workers
/// (inline when threads == 1), storing into \p results[i]. Each job is
/// wrapped with its own ErrorContext frame (re-anchored to the chain open
/// on the calling thread) and its ape::Errors are captured per job.
/// Every job also runs under its own ambient KernelStats sink; the
/// per-job tallies are merged into \p kernel_agg under a mutex. Counter
/// merging is a commutative sum (max for the byte gauges), so the
/// aggregate is thread-count invariant like the job outcomes themselves.
template <class Result, class Job>
void fan_out(size_t n, int threads, const char* label,
             std::vector<Result>& results, KernelStats& kernel_agg,
             const Job& job) {
  results.resize(n);
  const std::string parent = ErrorContext::chain();
  std::mutex agg_mu;

  auto run_one = [&](size_t i) {
    Result r;
    r.index = i;
    const std::string frame =
        std::string(label) + "[" + std::to_string(i) + "]";
    ErrorContext scope(parent.empty() ? frame : parent + " -> " + frame);
    KernelStats job_kernel;
    {
      ScopedKernelStatsSink sink(job_kernel);
      try {
        r.outcome = job(i);
        r.ok = true;
      } catch (const Error& e) {
        r.error = e.what();
      } catch (const std::exception& e) {
        // Non-ape exceptions (bad_alloc, logic errors) are still isolated
        // per job; annotate manually since only ape::Error self-annotates.
        r.error = annotate_with_context(e.what());
      }
    }
    {
      std::lock_guard<std::mutex> lock(agg_mu);
      kernel_agg.accumulate(job_kernel);
    }
    return r;
  };

  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) results[i] = run_one(i);
    return;
  }
  Executor pool(static_cast<int>(
      std::min(static_cast<size_t>(threads), n)));
  std::vector<std::future<Result>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&run_one, i] { return run_one(i); }));
  }
  for (size_t i = 0; i < n; ++i) results[i] = futures[i].get();
}

/// Fill the aggregate stats: timings, failure counts, cache delta.
template <class BatchResult>
void finish_stats(BatchResult& out, int threads, double t0,
                  const EstimateCache* cache, const CacheStats& cache_before) {
  BatchStats& s = out.stats;
  s.jobs = static_cast<int>(out.jobs.size());
  s.threads = threads;
  for (const auto& j : out.jobs) {
    if (!j.ok) ++s.failed;
  }
  s.wall_seconds = now_seconds() - t0;
  s.jobs_per_second = s.wall_seconds > 0.0 ? s.jobs / s.wall_seconds : 0.0;
  if (cache != nullptr) {
    const CacheStats after = cache->stats();
    s.cache.hits = after.hits - cache_before.hits;
    s.cache.misses = after.misses - cache_before.misses;
  }
}

}  // namespace

namespace detail {

synth::SynthesisOutcome run_one_opamp(const est::Process& proc,
                                      const est::OpAmpSpec& spec, size_t index,
                                      const BatchOptions& options) {
  lint_gate(options.lint_first, proc, spec);
  synth::SynthesisOptions so = options.synth;
  if (options.lint_first) {
    const lint::FeasibilityProof proof =
        prove_gate(proc, spec, /*contract=*/true);
    // Hand the proof artifacts to the annealer: restarts sample inside
    // the proven-feasible box, and the proven cost floor lets serial
    // multi-start stop early. Explicit caller-provided values win.
    if (so.feasible_box.empty()) so.feasible_box = proof.feasible_box;
    if (so.cost_lower_bound <= 0.0) {
      so.cost_lower_bound = proof.cost_lower_bound;
    }
  }
  so.anneal.seed = Rng::derive_stream(options.seed, index);
  // The job runs on one pool slot; its restarts stay serial unless the
  // caller explicitly asked for nested parallelism.
  if (options.synth.restart_threads == 0) so.restart_threads = 1;
  // Resolve the APE seed through the shared cache so identical specs
  // estimate once across the whole batch. The shared_ptr pins the
  // entry for the lifetime of the job.
  std::shared_ptr<const est::OpAmpDesign> seed;
  if (so.use_ape_seed && options.cache != nullptr && so.seed_design == nullptr) {
    seed = options.cache->opamp(proc, spec);
    so.seed_design = seed.get();
  }
  return synth::synthesize_opamp(proc, spec, so);
}

synth::ModuleSynthesisOutcome run_one_module(const est::Process& proc,
                                             const est::ModuleSpec& spec,
                                             size_t index,
                                             const BatchOptions& options) {
  lint_gate(options.lint_first, proc, spec);
  synth::SynthesisOptions so = options.synth;
  so.anneal.seed = Rng::derive_stream(options.seed, index);
  if (options.synth.restart_threads == 0) so.restart_threads = 1;
  std::shared_ptr<const est::ModuleDesign> proto;
  if (options.cache != nullptr && so.module_proto == nullptr) {
    proto = options.cache->module(proc, spec);
    so.module_proto = proto.get();
  }
  return synth::synthesize_module(proc, spec, so);
}

}  // namespace detail

OpAmpBatchResult run_opamp_batch(const est::Process& proc,
                                 const std::vector<est::OpAmpSpec>& specs,
                                 const BatchOptions& options) {
  const double t0 = now_seconds();
  const int threads = resolve_threads(options.threads);
  const CacheStats before =
      options.cache != nullptr ? options.cache->stats() : CacheStats{};

  OpAmpBatchResult out;
  fan_out(specs.size(), threads, "opamp_batch", out.jobs,
          out.stats.kernel, [&](size_t i) {
    return detail::run_one_opamp(proc, specs[i], i, options);
  });
  for (const auto& j : out.jobs) {
    if (j.ok && j.outcome.meets_spec) ++out.stats.met_spec;
  }
  finish_stats(out, threads, t0, options.cache, before);
  return out;
}

ModuleBatchResult run_module_batch(const est::Process& proc,
                                   const std::vector<est::ModuleSpec>& specs,
                                   const BatchOptions& options) {
  const double t0 = now_seconds();
  const int threads = resolve_threads(options.threads);
  const CacheStats before =
      options.cache != nullptr ? options.cache->stats() : CacheStats{};

  ModuleBatchResult out;
  fan_out(specs.size(), threads, "module_batch", out.jobs,
          out.stats.kernel, [&](size_t i) {
    return detail::run_one_module(proc, specs[i], i, options);
  });
  for (const auto& j : out.jobs) {
    if (j.ok && j.outcome.meets_spec) ++out.stats.met_spec;
  }
  finish_stats(out, threads, t0, options.cache, before);
  return out;
}

OpAmpEstimateBatchResult estimate_opamp_batch(
    const est::Process& proc, const std::vector<est::OpAmpSpec>& specs,
    const BatchOptions& options) {
  const double t0 = now_seconds();
  const int threads = resolve_threads(options.threads);
  const CacheStats before =
      options.cache != nullptr ? options.cache->stats() : CacheStats{};

  OpAmpEstimateBatchResult out;
  fan_out(specs.size(), threads, "opamp_estimate", out.jobs,
          out.stats.kernel, [&](size_t i) {
    lint_gate(options.lint_first, proc, specs[i]);
    if (options.lint_first) prove_gate(proc, specs[i], /*contract=*/false);
    if (options.cache != nullptr) return options.cache->opamp(proc, specs[i]);
    return std::make_shared<const est::OpAmpDesign>(
        est::OpAmpEstimator(proc).estimate(specs[i]));
  });
  finish_stats(out, threads, t0, options.cache, before);
  return out;
}

ModuleEstimateBatchResult estimate_module_batch(
    const est::Process& proc, const std::vector<est::ModuleSpec>& specs,
    const BatchOptions& options) {
  const double t0 = now_seconds();
  const int threads = resolve_threads(options.threads);
  const CacheStats before =
      options.cache != nullptr ? options.cache->stats() : CacheStats{};

  ModuleEstimateBatchResult out;
  fan_out(specs.size(), threads, "module_estimate", out.jobs,
          out.stats.kernel, [&](size_t i) {
    lint_gate(options.lint_first, proc, specs[i]);
    if (options.cache != nullptr) return options.cache->module(proc, specs[i]);
    return std::make_shared<const est::ModuleDesign>(
        est::ModuleEstimator(proc).estimate(specs[i]));
  });
  finish_stats(out, threads, t0, options.cache, before);
  return out;
}

}  // namespace ape::runtime
