#pragma once
/// \file supervisor.h
/// Supervised batch runtime (DESIGN.md section 10): deadlines,
/// cancellation, retry/backoff recovery ladders, spec quarantine and
/// checkpoint/resume layered over the plain batch entry points.
///
/// The plain batch runtime (batch.h) gives per-job error *isolation*; the
/// supervisor adds per-job error *recovery*:
///
///  - Deadlines & cancellation: every job runs under a per-job RunBudget
///    (wall-clock deadline + the run's CancelToken) installed as the
///    worker thread's ambient budget (ScopedJobBudget), so every solver
///    loop — Newton ladders, dc_sweep, transient sub-stepping, AC points,
///    the anneal loop — doubles as a cooperative stop point. A job past
///    its deadline stops at the next probe and reports its best-so-far
///    outcome (deadline_hit = true) instead of hanging the batch.
///  - Retry ladder: failures are classified by ErrorClass (error.h) and
///    walked through the RetryPolicy rungs (retry.h): plain retry ->
///    relaxed solver tolerances (ScopedSolverRelaxation) -> APE
///    estimate-only fallback -> fail, with deterministic exponential
///    backoff between attempts. Permanent failures skip straight to the
///    estimate fallback. Simulator-verification failures (sim_failed
///    outcomes) escalate the same way but never discard a synthesized
///    design for a bare estimate: they keep the best-so-far outcome.
///  - Quarantine: a spec failing quarantine_threshold consecutive
///    attempts is quarantined in the (shareable) QuarantineRegistry with
///    its full provenance-annotated error; later jobs with the same
///    content fingerprint fail fast instead of burning their ladder.
///    Quarantine state is advisory and timing-dependent across thread
///    counts (like a shared RunBudget); determinism tests run without a
///    registry.
///  - Checkpoint/resume (opamp batches): the run periodically writes a
///    JSON checkpoint of every finished job — the winning annealer point
///    best_x as bit-exact hex floats plus the search counters — and
///    --resume restarts only the unfinished jobs. Because job i's seed is
///    the pure stream derive_stream(seed, i) and the outcome tail is a
///    pure function of (process, spec, best_x) (finalize_opamp_outcome),
///    a resumed run reproduces the uninterrupted results bit-identically
///    at any thread count. No RNG state needs persisting.
///
/// Determinism contract: a clean job (no faults, no deadline) under
/// supervision runs detail::run_one_opamp / run_one_module — byte-for-
/// byte the same work as the unsupervised batch — so supervised and
/// unsupervised results of clean jobs are identical.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/runtime/batch.h"
#include "src/spice/fault.h"
#include "src/util/diagnostics.h"
#include "src/util/retry.h"

namespace ape::runtime {

/// Content fingerprint of a (process, spec) pair: FNV-1a over the same
/// serialized key the EstimateCache uses, so two jobs share a quarantine
/// / checkpoint identity exactly when they would share a cache entry.
uint64_t spec_fingerprint(const est::Process& proc, const est::OpAmpSpec& spec);
uint64_t spec_fingerprint(const est::Process& proc, const est::ModuleSpec& spec);

/// Circuit breaker over spec fingerprints (THREAD-SAFETY RULE category
/// (c): explicitly synchronized, shareable across batches and threads).
/// Quarantine decisions depend on attempt completion order, so runs that
/// must be bit-identical across thread counts use no registry.
class QuarantineRegistry {
public:
  /// True when \p fp is quarantined; *why receives the recorded error.
  bool quarantined(uint64_t fp, std::string* why = nullptr) const;

  /// Record one failed attempt. Once \p threshold consecutive failures
  /// accumulate the fingerprint is quarantined with \p error (the first
  /// quarantining error wins). Returns true when this call newly
  /// quarantined the fingerprint.
  bool record_failure(uint64_t fp, const std::string& error, int threshold);

  /// Reset the consecutive-failure counter (a success proves the spec
  /// viable; an already-quarantined fingerprint stays quarantined).
  void record_success(uint64_t fp);

  size_t quarantined_count() const;
  void clear();

private:
  struct State {
    int consecutive = 0;
    bool quarantined = false;
    std::string error;  ///< provenance-annotated error that tripped it
  };
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, State> map_;
};

/// Aggregate supervision counters for one supervised batch.
struct SupervisionStats {
  int attempts = 0;           ///< ladder attempts actually run
  int retries = 0;            ///< attempts beyond each job's first
  int numeric_recovery_attempts = 0;  ///< attempts under NumericHealthMode::Force
  int relaxed_attempts = 0;   ///< attempts run under ScopedSolverRelaxation
  int estimate_fallbacks = 0; ///< jobs resolved by the estimate-only rung
  int backoff_waits = 0;      ///< backoff sleeps taken
  double backoff_seconds = 0.0;
  int deadline_hits = 0;      ///< jobs stopped by their deadline
  int cancelled_jobs = 0;     ///< jobs stopped by the CancelToken
  int quarantine_skips = 0;   ///< jobs skipped on a quarantined fingerprint
  int quarantined_new = 0;    ///< fingerprints newly quarantined this run
  int checkpoints_written = 0;
  int resumed_jobs = 0;       ///< jobs restored from the resume checkpoint

  /// One-line human-readable summary (same idiom as KernelStats).
  std::string summary() const;
};

/// One supervised job: the plain JobResult fields plus the ladder's
/// accounting of how the result was obtained.
template <class Outcome>
struct SupervisedJobResult {
  size_t index = 0;
  bool ok = false;
  std::string error;  ///< empty when ok
  Outcome outcome{};  ///< default-constructed when !ok
  int attempts = 0;                            ///< attempts run (0 if skipped)
  RetryRung final_rung = RetryRung::Initial;   ///< rung of the last attempt
  bool deadline_hit = false;  ///< stopped by the per-job deadline
  bool cancelled = false;     ///< stopped by the CancelToken
  bool quarantined = false;   ///< skipped: fingerprint was quarantined
  bool estimate_fallback = false;  ///< outcome is the bare APE estimate
  bool resumed = false;       ///< restored from a checkpoint, not re-run
};

using SupervisedOpAmpResult = SupervisedJobResult<synth::SynthesisOutcome>;
using SupervisedModuleResult =
    SupervisedJobResult<synth::ModuleSynthesisOutcome>;

struct SupervisorOptions {
  /// The underlying batch configuration (threads, seed, synth template,
  /// cache, lint-first). Clean jobs run exactly as run_opamp_batch would.
  BatchOptions batch;

  /// The recovery ladder (see retry.h). The default policy is a single
  /// attempt — supervision without retries still provides deadlines,
  /// cancellation, quarantine and checkpointing.
  RetryPolicy retry;

  /// Per-job wall-clock deadline in seconds (0 = none). The deadline
  /// covers the job's whole ladder, not each attempt.
  double job_timeout_s = 0.0;

  /// Optional cancellation token for the whole run (not owned). Jobs in
  /// flight stop at their next probe point; unstarted jobs fail fast.
  /// Cancelled jobs are recorded as unfinished in checkpoints so a
  /// resumed run re-executes them.
  const CancelToken* cancel = nullptr;

  /// Optional shared quarantine registry (not owned; nullptr disables
  /// quarantine entirely).
  QuarantineRegistry* quarantine = nullptr;
  /// Consecutive failed attempts before a fingerprint is quarantined.
  int quarantine_threshold = 3;

  /// Checkpoint file path ("" disables checkpointing). Written
  /// atomically (tmp + rename) after every checkpoint_every completed
  /// jobs and once at the end. Opamp batches only.
  std::string checkpoint_path;
  int checkpoint_every = 1;

  /// Resume from this checkpoint ("" = fresh run): finished jobs are
  /// restored (resumed = true) and only unfinished jobs execute. The
  /// checkpoint must match the current run's seed, job count and per-job
  /// spec fingerprints, else the run fails with a ParseError.
  std::string resume_path;

  /// Progress hook, invoked serialized (under the supervisor's mutex)
  /// after each job completes. Tests use it to fire the CancelToken
  /// mid-run deterministically.
  std::function<void(size_t index, bool ok)> on_job_done;

  /// Test hook: configure a per-attempt FaultInjector for (job, attempt)
  /// before the attempt runs on its worker thread. Installed injectors
  /// are scoped to the attempt; keying on (job, attempt) keeps fault
  /// schedules deterministic at any thread count (the thread_local
  /// injector of the submitting thread never reaches pool workers).
  std::function<void(size_t index, int attempt, spice::FaultInjector&)>
      fault_setup;
};

struct SupervisedOpAmpBatchResult {
  std::vector<SupervisedOpAmpResult> jobs;  ///< jobs[i] is specs[i]
  BatchStats stats;
  SupervisionStats supervision;
};

struct SupervisedModuleBatchResult {
  std::vector<SupervisedModuleResult> jobs;
  BatchStats stats;
  SupervisionStats supervision;
};

/// Supervised opamp synthesis batch (see file comment).
SupervisedOpAmpBatchResult run_supervised_opamp_batch(
    const est::Process& proc, const std::vector<est::OpAmpSpec>& specs,
    const SupervisorOptions& options);

/// Supervised module synthesis batch. Same ladder / deadlines /
/// quarantine; checkpoint/resume is not supported for modules (their
/// outcome tail is not yet reconstructible from best_x alone) — setting
/// checkpoint_path or resume_path throws a SpecError.
SupervisedModuleBatchResult run_supervised_module_batch(
    const est::Process& proc, const std::vector<est::ModuleSpec>& specs,
    const SupervisorOptions& options);

/// One supervised opamp job on the *calling* thread — the per-request
/// lifecycle of the estimation service (src/serve, DESIGN.md section
/// 11): the full retry ladder, deadline/cancellation and quarantine
/// semantics of a batch job, without a batch's fan-out, checkpointing or
/// its private Executor. checkpoint_path / resume_path must be empty
/// (throws SpecError); options.batch.threads only bounds multi-start
/// restart workers inside the attempt. \p stats, when non-null, receives
/// the ladder's accounting merged in (callers aggregate across
/// requests). \p index keys the deterministic seed stream and backoff
/// jitter, exactly like a batch job's position.
SupervisedOpAmpResult run_supervised_opamp_job(const est::Process& proc,
                                               const est::OpAmpSpec& spec,
                                               const SupervisorOptions& options,
                                               size_t index = 0,
                                               SupervisionStats* stats = nullptr);

}  // namespace ape::runtime
