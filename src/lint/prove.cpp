#include "src/lint/prove.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/spice/mos_model.h"
#include "src/util/error.h"

namespace ape::lint {
namespace {

using util::Interval;

constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kBoltzmann = 1.380649e-23;
/// The synthesizer's phase-margin floor (synth::opamp_cost).
constexpr double kMinPhaseMargin = 45.0;
/// Non-functional plateau of synth::opamp_cost: 1e3 * (1 + imbalance).
constexpr double kPlateauCost = 1e3;

const char* const kVarNames[13] = {"w1", "l1", "w3", "l3", "w5", "l5", "w6",
                                   "l6", "w7", "l7", "w8", "l8", "cc"};

std::string fmt(const char* f, double a) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, a);
  return buf;
}

/// The square-law parameters the performance equations consume,
/// extracted from any card level. LEVEL 4 (simplified BSIM1) cards keep
/// K' in MUZ (cm^2/Vs) rather than KP and have no lambda — their gds
/// lower bound degenerates to 0, which only *widens* the gain
/// enclosure (sound, just less sharp).
struct DevParams {
  double kp = 0.0;
  double lambda = 0.0;
  double lref = 0.0;
};

DevParams dev_params(const spice::MosModelCard& c) {
  DevParams d;
  if (c.level == 4) {
    d.kp = c.muz * 1e-4 * c.cox();  // cm^2/Vs -> m^2/Vs, times Cox
  } else {
    d.kp = c.kp;
    d.lambda = c.lambda;
    d.lref = c.lref;
  }
  return d;
}

/// Effective channel-length modulation: lambda * lref / L when the
/// Early-voltage extension is active (mos_model.h), plain lambda else.
template <class T>
T lambda_eff(const DevParams& d, const T& l) {
  if (d.lref > 0.0) return (d.lambda * d.lref) / l;
  return T(d.lambda);
}

/// The seven estimated metrics, templated on the numeric type. THE
/// soundness trick of this file: exactly one definition of the
/// equations, instantiated at double (point sample) and at Interval
/// (outer enclosure), so containment holds by construction.
template <class T>
struct Metrics {
  T gain, ugf, pm, slew, power, area, noise;
};

template <class T>
Metrics<T> eval_metrics(const est::Process& proc, const est::OpAmpSpec& spec,
                        const std::array<T, 13>& x) {
  // Unqualified calls resolve to util::* for both double and Interval.
  using util::atan;
  using util::min;
  using util::sqrt;
  const DevParams nn = dev_params(proc.nmos);
  const DevParams pp = dev_params(proc.pmos);
  const double ibias = spec.ibias;
  const double cload = spec.cload;
  const T &w1 = x[0], &l1 = x[1], &w3 = x[2], &l3 = x[3], &w5 = x[4],
          &l5 = x[5], &w6 = x[6], &l6 = x[7], &w7 = x[8], &l7 = x[9],
          &w8 = x[10], &l8 = x[11], &cc = x[12];

  // Mirror currents of the synthesis template (sizing.cpp): M8 is the
  // bias diode, M5 the tail, M7 the class-A sink, all square-law ratios.
  const T mirror8 = w8 / l8;
  const T itail = ibias * (w5 / l5) / mirror8;
  const T i1 = 0.5 * itail;
  const T i6 = ibias * (w7 / l7) / mirror8;

  const T gm1 = sqrt(2.0 * nn.kp * (w1 / l1) * i1);
  const T gm3 = sqrt(2.0 * pp.kp * (w3 / l3) * i1);
  const T gm6 = sqrt(2.0 * pp.kp * (w6 / l6) * i6);
  const T gds1 = lambda_eff(nn, l1) * i1;
  const T gds4 = lambda_eff(pp, l3) * i1;
  const T gds6 = lambda_eff(pp, l6) * i6;
  const T gds7 = lambda_eff(nn, l7) * i6;

  Metrics<T> m;
  m.gain = (gm1 / (gds1 + gds4)) * (gm6 / (gds6 + gds7));
  m.ugf = gm1 / (kTwoPi * cc);
  const T fp2 = gm6 / (kTwoPi * cload);
  m.pm = 90.0 - atan(m.ugf / fp2) * (180.0 / M_PI);
  m.slew = min(itail / cc, i6 / (cload + cc));
  m.power = proc.vdd * (ibias + itail + i6);
  m.area = 2.0 * (w1 * l1) + 2.0 * (w3 * l3) + w5 * l5 + w6 * l6 + w7 * l7 +
           w8 * l8;
  const double kt = kBoltzmann * (273.15 + proc.temp_c);
  m.noise = (16.0 / 3.0) * kt / gm1 * (1.0 + gm3 / gm1);
  return m;
}

std::array<Interval, 13> box_to_intervals(
    const std::vector<std::pair<double, double>>& box) {
  std::array<Interval, 13> x;
  for (size_t i = 0; i < 13; ++i) x[i] = Interval(box[i].first, box[i].second);
  return x;
}

/// True when the enclosure \p m *proves* some spec requirement cannot be
/// met anywhere in the evaluated box.
bool provably_violates(const est::OpAmpSpec& spec,
                       const Metrics<Interval>& m) {
  if (spec.gain > 0.0 && m.gain.hi() < spec.gain) return true;
  if (spec.ugf_hz > 0.0 && m.ugf.hi() < spec.ugf_hz) return true;
  if (spec.area_budget > 0.0 && m.area.lo() > spec.area_budget) return true;
  if (m.pm.hi() < kMinPhaseMargin) return true;
  return false;
}

/// Verdict for a "metric must be >= spec" requirement.
void verdict_lower(Report& rep, const char* name, const char* where,
                   const Interval& b, double s, double margin,
                   bool emit_vacuous, bool& infeasible) {
  if (s <= 0.0 || b.empty()) return;
  if (b.hi() < s) {
    infeasible = true;
    rep.add("APE-F001", Severity::Error,
            std::string(name) + ": spec requires >= " + fmt("%.4g", s) +
                " but the proven bound over the sizing box is " + b.str() +
                " — no sizing can reach it",
            where);
  } else if (emit_vacuous && b.lo() >= s) {
    rep.add("APE-F003", Severity::Note,
            std::string(name) + ": spec >= " + fmt("%.4g", s) +
                " is satisfied over the entire sizing box " + b.str() +
                " — the constraint cannot bind the search",
            where);
  } else if (b.hi() < s * (1.0 + margin)) {
    rep.add("APE-F002", Severity::Warn,
            std::string(name) + ": spec >= " + fmt("%.4g", s) +
                " is within " + fmt("%.0f", margin * 100.0) +
                "% of the proven bound " + b.str(),
            where);
  }
}

/// Verdict for a "metric must be <= spec" requirement.
void verdict_upper(Report& rep, const char* name, const char* where,
                   const Interval& b, double s, double margin,
                   bool& infeasible) {
  if (s <= 0.0 || b.empty()) return;
  if (b.lo() > s) {
    infeasible = true;
    rep.add("APE-F001", Severity::Error,
            std::string(name) + ": spec requires <= " + fmt("%.4g", s) +
                " but the proven bound over the sizing box is " + b.str() +
                " — no sizing can fit it",
            where);
  } else if (b.hi() <= s) {
    rep.add("APE-F003", Severity::Note,
            std::string(name) + ": spec <= " + fmt("%.4g", s) +
                " is satisfied over the entire sizing box " + b.str() +
                " — the constraint cannot bind the search",
            where);
  } else if (b.lo() > s / (1.0 + margin)) {
    rep.add("APE-F002", Severity::Warn,
            std::string(name) + ": spec <= " + fmt("%.4g", s) +
                " is within " + fmt("%.0f", margin * 100.0) +
                "% of the proven bound " + b.str(),
            where);
  }
}

/// Proven lower bound on synth::opamp_cost over a box with metric
/// enclosures \p b. Mirrors the cost weights (prove_test pins them
/// against the real function): each penalty/objective term is minimized
/// independently, and the non-functional plateau 1e3*(1+imbalance)
/// floors the whole thing.
double cost_floor(const est::OpAmpSpec& spec, const MetricBounds& b) {
  auto sq = [](double v) { return v * v; };
  double c = 0.0;
  if (spec.gain > 0.0) {
    c += 10.0 * sq(std::max(0.0, 1.0 - b.gain.hi() / spec.gain));
  }
  if (spec.ugf_hz > 0.0) {
    c += 10.0 * sq(std::max(0.0, 1.0 - b.ugf_hz.hi() / spec.ugf_hz));
  }
  if (spec.area_budget > 0.0) {
    c += 4.0 * sq(std::max(0.0, b.gate_area.lo() / spec.area_budget - 1.0));
  }
  c += 2.0 * sq(std::max(0.0, kMinPhaseMargin - b.phase_margin.hi()) /
                kMinPhaseMargin);
  c += 0.05 * std::max(0.0, b.dc_power.lo()) / 1e-3;
  c += 0.02 * std::max(0.0, b.gate_area.lo()) / 5e-9;
  return std::min(c, kPlateauCost);
}

MetricBounds to_bounds(const Metrics<Interval>& m) {
  MetricBounds b;
  b.gain = m.gain;
  b.ugf_hz = m.ugf;
  b.phase_margin = m.pm;
  b.slew = m.slew;
  b.dc_power = m.power;
  b.gate_area = m.area;
  b.input_noise_v2 = m.noise;
  return b;
}

/// One branch-and-prune sweep: per variable, split the range into
/// geometric segments, drop every segment whose sub-box enclosure
/// provably violates a requirement, and keep the hull of the survivors.
/// Segments cover the range exactly (segment s's upper endpoint is the
/// same expression as segment s+1's lower), so a feasible point is
/// always inside some evaluated sub-box and can never be dropped.
/// Returns false (and names the variable) when every segment of some
/// variable dies — a stronger infeasibility proof than the whole-box
/// enclosure.
bool contract_box(const est::Process& proc, const est::OpAmpSpec& spec,
                  const ProveOptions& opts,
                  std::vector<std::pair<double, double>>& box,
                  std::string& dead_var) {
  const int segments = opts.contraction_segments;
  if (segments < 2) return true;
  for (int pass = 0; pass < opts.contraction_passes; ++pass) {
    for (size_t i = 0; i < box.size(); ++i) {
      const double lo = box[i].first;
      const double hi = box[i].second;
      if (!(lo > 0.0) || !(hi > lo)) continue;
      const double ratio = hi / lo;
      double keep_lo = std::numeric_limits<double>::infinity();
      double keep_hi = -std::numeric_limits<double>::infinity();
      for (int s = 0; s < segments; ++s) {
        const double a =
            s == 0 ? lo
                   : lo * std::pow(ratio, static_cast<double>(s) / segments);
        const double b =
            s == segments - 1
                ? hi
                : lo * std::pow(ratio, static_cast<double>(s + 1) / segments);
        auto sub = box;
        sub[i] = {a, b};
        if (!provably_violates(spec, eval_metrics<Interval>(
                                         proc, spec, box_to_intervals(sub)))) {
          keep_lo = std::min(keep_lo, a);
          keep_hi = std::max(keep_hi, b);
        }
      }
      if (keep_lo > keep_hi) {
        dead_var = kVarNames[i];
        return false;
      }
      box[i] = {keep_lo, keep_hi};
    }
  }
  return true;
}

}  // namespace

std::vector<std::pair<double, double>> default_prove_box(
    const est::Process& proc) {
  // Mirrors synth::blind_bounds(proc, /*buffered=*/false); prove_test
  // pins the two against each other so they cannot drift apart.
  const std::pair<double, double> w{proc.wmin, 1000e-6};
  const std::pair<double, double> l{2.0 * proc.lmin, 120e-6};
  return {w, l, w, l, w, l, w, l, w, l, w, l, {0.1e-12, 30e-12}};
}

PointMetrics prove_point_metrics(const est::Process& proc,
                                 const est::OpAmpSpec& spec,
                                 const std::vector<double>& x) {
  if (x.size() != 13) {
    throw SpecError("prove_point_metrics: expected 13 sizing variables, got " +
                    std::to_string(x.size()));
  }
  std::array<double, 13> a;
  for (size_t i = 0; i < 13; ++i) a[i] = x[i];
  const Metrics<double> m = eval_metrics<double>(proc, spec, a);
  PointMetrics p;
  p.gain = m.gain;
  p.ugf_hz = m.ugf;
  p.phase_margin = m.pm;
  p.slew = m.slew;
  p.dc_power = m.power;
  p.gate_area = m.area;
  p.input_noise_v2 = m.noise;
  return p;
}

FeasibilityProof prove_opamp_feasibility(const est::Process& proc,
                                         const est::OpAmpSpec& spec,
                                         const ProveOptions& opts) {
  FeasibilityProof proof;
  proof.corner = proc.variant.empty() ? "nominal" : proc.variant;

  // The interval model covers the unbuffered two-stage synthesis
  // template. A buffered spec adds follower devices the equations do
  // not model, so no claim is made: the proof stays neutral (no
  // findings, blind feasible box, zero cost floor).
  std::vector<std::pair<double, double>> box =
      opts.box.empty() ? default_prove_box(proc) : opts.box;
  if (box.size() != 13) {
    throw SpecError("prove_opamp_feasibility: sizing box must have 13 "
                    "[lo, hi] pairs, got " +
                    std::to_string(box.size()));
  }
  for (size_t i = 0; i < box.size(); ++i) {
    if (!(box[i].first > 0.0) || !(box[i].second >= box[i].first) ||
        !std::isfinite(box[i].second)) {
      throw SpecError(std::string("prove_opamp_feasibility: bad range for ") +
                      kVarNames[i]);
    }
  }
  if (spec.buffer) {
    proof.feasible_box = box;
    return proof;
  }

  const Metrics<Interval> m =
      eval_metrics<Interval>(proc, spec, box_to_intervals(box));
  proof.bounds = to_bounds(m);
  proof.cost_lower_bound = cost_floor(spec, proof.bounds);

  verdict_lower(proof.report, "gain", "spec.gain", m.gain, spec.gain,
                opts.tight_margin, /*emit_vacuous=*/true, proof.infeasible);
  verdict_lower(proof.report, "ugf_hz", "spec.ugf_hz", m.ugf, spec.ugf_hz,
                opts.tight_margin, /*emit_vacuous=*/true, proof.infeasible);
  verdict_upper(proof.report, "gate_area", "spec.area_budget", m.area,
                spec.area_budget, opts.tight_margin, proof.infeasible);
  // The synthesizer's 45 deg phase-margin floor is not a user spec
  // field, so a box-wide pass is unremarkable — only report trouble.
  verdict_lower(proof.report, "phase_margin", "phase_margin.floor", m.pm,
                kMinPhaseMargin, opts.tight_margin, /*emit_vacuous=*/false,
                proof.infeasible);

  if (!proof.infeasible) {
    std::string dead_var;
    if (contract_box(proc, spec, opts, box, dead_var)) {
      proof.feasible_box = box;
    } else {
      proof.infeasible = true;
      proof.report.add(
          "APE-F001", Severity::Error,
          "sizing box contracted to the empty set: every segment of " +
              dead_var + " provably violates a spec requirement",
          "spec");
    }
  }
  return proof;
}

void require_feasible(const FeasibilityProof& proof, const std::string& what) {
  if (!proof.infeasible) return;
  throw LintError(
      what + ": spec proven infeasible at corner '" + proof.corner +
          "': " + proof.report.summary(),
      proof.report);
}

}  // namespace ape::lint
