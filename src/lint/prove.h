#pragma once
/// \file prove.h
/// Feasibility proving over the analytic performance equations — the
/// APE-F rule family (DESIGN.md §14).
///
/// ape-lint (lint.h) proves MNA *solvability*: the circuit has a unique
/// DC solution. This layer proves (or refutes) *achievability*: can any
/// sizing inside the technology box meet the spec at all? The level-1
/// square-law performance equations of the two-stage Miller opamp
/// (gain, UGF, phase-margin surrogate, slew, power, area, input noise)
/// are evaluated once, templated on the numeric type — `double` for a
/// point sample, `util::Interval` for a guaranteed outer enclosure over
/// the whole sizing box. A spec the enclosure *excludes* is provably
/// unreachable by the topology in this process (at this corner), so the
/// verdict is sound by construction: no retry ladder, anneal restart or
/// simulator minute can ever rescue such a job.
///
/// Rule catalog (stable ids, severities in parentheses):
///
///   APE-F001 infeasible-spec (error) a proven metric bound excludes the
///                                    spec; the finding carries the
///                                    violated inequality and interval
///   APE-F002 tight-spec      (warn)  the spec sits within a configurable
///                                    margin of the proven bound
///   APE-F003 vacuous-spec    (note)  the spec is satisfied over the
///                                    entire box (the constraint cannot
///                                    bind the search)
///
/// Consumers: `BatchOptions::lint_first` classifies APE-F001 jobs as
/// ErrorClass::Permanent pre-solve (LintError), `ape_serve` rejects
/// infeasible synthesize requests at admission with the proof,
/// `run_corner_sweep` skips provably-infeasible corners, and
/// `SynthesisOptions.{feasible_box, cost_lower_bound}` seed the
/// multi-start annealer and its early-termination bound.

#include <string>
#include <utility>
#include <vector>

#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/lint/lint.h"
#include "src/util/interval.h"

namespace ape::lint {

/// Knobs for the prover. The defaults are what every lint-first gate
/// uses; tests tighten `tight_margin` and pass explicit boxes.
struct ProveOptions {
  /// APE-F002 fires when the spec is within this relative distance of
  /// the proven bound (0.25 = within 25%).
  double tight_margin = 0.25;
  /// Box-contraction sweep: geometric segments per variable and passes
  /// over the variable list. 0 segments disables contraction.
  int contraction_segments = 8;
  int contraction_passes = 2;
  /// Optional explicit sizing box: 13 [lo, hi] pairs in
  /// synth::OpAmpVars::pack order (w1 l1 w3 l3 w5 l5 w6 l6 w7 l7 w8 l8
  /// cc, unbuffered layout). Empty = default_prove_box(proc), which
  /// mirrors the synthesizer's blind bounds.
  std::vector<std::pair<double, double>> box;
};

/// Outer enclosures of every estimated metric over the sizing box.
struct MetricBounds {
  util::Interval gain;
  util::Interval ugf_hz;
  util::Interval phase_margin;  ///< [deg]
  util::Interval slew;          ///< [V/s]
  util::Interval dc_power;      ///< [W]
  util::Interval gate_area;     ///< [m^2]
  util::Interval input_noise_v2;  ///< [V^2/Hz]
};

/// Point twin of MetricBounds: the same equations instantiated at
/// `double`. The soundness property — tested over randomized (spec,
/// box, corner) cases — is that for any x inside the box every field
/// here lies inside the matching interval of the box's MetricBounds.
struct PointMetrics {
  double gain = 0.0;
  double ugf_hz = 0.0;
  double phase_margin = 0.0;
  double slew = 0.0;
  double dc_power = 0.0;
  double gate_area = 0.0;
  double input_noise_v2 = 0.0;
};

/// A feasibility verdict with its evidence.
struct FeasibilityProof {
  Report report;            ///< APE-F findings (also carries provenance)
  bool infeasible = false;  ///< some APE-F001 fired
  MetricBounds bounds;      ///< enclosures over the *input* box
  /// Contracted per-variable hull: every sizing inside the input box
  /// that satisfies the spec provably lies inside this box (it is never
  /// empty unless `infeasible`). Same layout as ProveOptions::box.
  std::vector<std::pair<double, double>> feasible_box;
  /// Proven lower bound on synth::opamp_cost over the input box
  /// (mirrors the cost weights; prove_test pins them against the real
  /// cost function). Sound for early termination: no point in the box
  /// can score below it.
  double cost_lower_bound = 0.0;
  std::string corner;  ///< Process::variant the proof was run at
};

/// The synthesizer's blind sizing box (13 pairs, unbuffered layout).
/// Kept in lockstep with synth::blind_bounds — prove_test pins the two
/// against each other.
std::vector<std::pair<double, double>> default_prove_box(
    const est::Process& proc);

/// Evaluate the prover's performance equations at one sizing point
/// \p x (13 values, OpAmpVars::pack order). Used by the soundness
/// property test and by anyone wanting the analytic point model.
PointMetrics prove_point_metrics(const est::Process& proc,
                                 const est::OpAmpSpec& spec,
                                 const std::vector<double>& x);

/// Prove (or refute) feasibility of \p spec over the sizing box.
/// Never throws on an infeasible spec — the verdict is data; use
/// require_feasible() for the throwing lint-first form.
FeasibilityProof prove_opamp_feasibility(const est::Process& proc,
                                         const est::OpAmpSpec& spec,
                                         const ProveOptions& opts = {});

/// Throw LintError (ErrorClass::Permanent) when \p proof is infeasible;
/// \p what names the gated operation. The proof's findings ride along
/// in the error's report.
void require_feasible(const FeasibilityProof& proof, const std::string& what);

}  // namespace ape::lint
