#include "src/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "src/spice/devices.h"
#include "src/spice/parser.h"
#include "src/util/diagnostics.h"
#include "src/util/units.h"

namespace ape::lint {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Union-find over MNA nodes; slot 0 is ground, node id i is slot i + 1.
class UnionFind {
public:
  explicit UnionFind(size_t num_nodes) : parent_(num_nodes + 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t slot(spice::NodeId id) const {
    return id == spice::kGround ? 0 : static_cast<size_t>(id) + 1;
  }

  size_t find(size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  /// Returns false when the two slots were already connected (i.e. the
  /// new edge closes a cycle).
  bool unite(spice::NodeId a, spice::NodeId b) {
    const size_t ra = find(slot(a));
    const size_t rb = find(slot(b));
    if (ra == rb) return false;
    // Keep ground's root stable so "connected to ground" stays find(0).
    if (rb == find(0)) {
      parent_[ra] = rb;
    } else {
      parent_[rb] = ra;
    }
    return true;
  }

  bool grounded(spice::NodeId id) { return find(slot(id)) == find(0); }

private:
  std::vector<size_t> parent_;
};

/// Format an island's node names, truncated for readability.
std::string island_names(const spice::Circuit& ckt,
                         const std::vector<spice::NodeId>& nodes) {
  std::string out;
  const size_t shown = std::min<size_t>(nodes.size(), 4);
  for (size_t i = 0; i < shown; ++i) {
    if (i != 0) out += ", ";
    out += "'" + ckt.node_name(nodes[i]) + "'";
  }
  if (nodes.size() > shown) {
    out += ", … (" + std::to_string(nodes.size()) + " nodes)";
  }
  return out;
}

bool bad_positive(double v) { return !std::isfinite(v) || v <= 0.0; }

}  // namespace

const char* to_string(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warn: return "warn";
    case Severity::Error: return "error";
  }
  return "?";
}

void Report::add(std::string rule, Severity severity, std::string message,
                 std::string where) {
  findings.push_back({std::move(rule), severity, std::move(message),
                      std::move(where), ErrorContext::chain()});
}

void Report::merge(const Report& other) {
  findings.insert(findings.end(), other.findings.begin(), other.findings.end());
}

int Report::errors() const {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.severity == Severity::Error; }));
}

int Report::warnings() const {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.severity == Severity::Warn; }));
}

int Report::notes() const {
  return static_cast<int>(std::count_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.severity == Severity::Note; }));
}

bool Report::has(const std::string& rule) const {
  return first(rule) != nullptr;
}

const Finding* Report::first(const std::string& rule) const {
  for (const auto& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

std::string Report::summary() const {
  const int e = errors();
  const int w = warnings();
  if (e == 0 && w == 0) return "clean";
  std::string out = std::to_string(e) + (e == 1 ? " error" : " errors") + ", " +
                    std::to_string(w) + (w == 1 ? " warning" : " warnings");
  for (const auto& f : findings) {
    if (f.severity == Severity::Error) {
      out += " (first: " + f.rule + " " + f.message + ")";
      break;
    }
  }
  return out;
}

std::string Report::to_json() const {
  std::string out = "{\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out += ',';
    out += "{\"rule\":\"" + json_escape(f.rule) + "\",\"severity\":\"" +
           to_string(f.severity) + "\",\"message\":\"" +
           json_escape(f.message) + "\"";
    if (!f.where.empty()) out += ",\"where\":\"" + json_escape(f.where) + "\"";
    if (!f.provenance.empty()) {
      out += ",\"provenance\":\"" + json_escape(f.provenance) + "\"";
    }
    out += "}";
  }
  out += "],\"errors\":" + std::to_string(errors()) +
         ",\"warnings\":" + std::to_string(warnings()) +
         ",\"notes\":" + std::to_string(notes()) + "}";
  return out;
}

// --- circuit-level analysis -------------------------------------------------

Report lint_circuit(const spice::Circuit& ckt) {
  ErrorContext scope("lint('" + ckt.title() + "')");
  Report rep;
  const std::string& where = ckt.title();
  const size_t n_nodes = ckt.num_nodes();

  if (ckt.devices().empty()) {
    rep.add("APE-L007", Severity::Warn, "circuit has no devices", where);
    return rep;
  }

  // One pass over the device structures feeds every rule below.
  std::vector<int> degree(n_nodes, 0);
  UnionFind vloops(n_nodes);   // voltage-defined edges only
  UnionFind dcpath(n_nodes);   // conductive + voltage-defined edges
  // Current-source attachments and capacitive endpoints, for classifying
  // groundless islands (APE-L003 vs APE-L004 message detail).
  std::vector<std::pair<spice::NodeId, const spice::Device*>> current_taps;
  std::map<std::string, int> name_count;

  auto bump = [&](spice::NodeId id) {
    if (id != spice::kGround) ++degree[static_cast<size_t>(id)];
  };

  for (const auto& dev : ckt.devices()) {
    ++name_count[lower(dev->name())];
    const spice::DeviceStructure st = dev->structure();
    if (st.edges.empty() && st.sense.empty()) {
      rep.add("APE-L009", Severity::Note,
              "device '" + dev->name() +
                  "' has no structural model; topology rules cannot see it",
              where);
      continue;
    }
    for (spice::NodeId s : st.sense) bump(s);
    for (const spice::StructuralEdge& e : st.edges) {
      bump(e.p);
      bump(e.n);
      if (e.p == e.n) {
        rep.add("APE-L005", Severity::Error,
                "device '" + dev->name() + "' is self-looped on node '" +
                    ckt.node_name(e.p) + "'",
                where);
        continue;  // a degenerate edge must not poison the graph passes
      }
      switch (e.kind) {
        case spice::EdgeKind::VoltageDefined:
          if (!vloops.unite(e.p, e.n)) {
            rep.add("APE-L002", Severity::Error,
                    "device '" + dev->name() +
                        "' closes a loop of voltage-defined branches between '" +
                        ckt.node_name(e.p) + "' and '" + ckt.node_name(e.n) +
                        "' (structurally singular MNA)",
                    where);
          }
          dcpath.unite(e.p, e.n);
          break;
        case spice::EdgeKind::Conductive:
          dcpath.unite(e.p, e.n);
          break;
        case spice::EdgeKind::CurrentSource:
          current_taps.emplace_back(e.p, dev.get());
          current_taps.emplace_back(e.n, dev.get());
          break;
        case spice::EdgeKind::Capacitive:
          break;
      }
    }
  }

  for (const auto& [name, count] : name_count) {
    if (count > 1) {
      rep.add("APE-L006", Severity::Error,
              "duplicate device name '" + name + "' (" +
                  std::to_string(count) + " devices)",
              where);
    }
  }

  for (size_t i = 0; i < n_nodes; ++i) {
    if (degree[i] == 0) {
      rep.add("APE-L001", Severity::Warn,
              "node '" + ckt.node_name(static_cast<spice::NodeId>(i)) +
                  "' is declared but never connected",
              where);
    } else if (degree[i] == 1) {
      rep.add("APE-L001", Severity::Warn,
              "node '" + ckt.node_name(static_cast<spice::NodeId>(i)) +
                  "' dangles from a single device terminal",
              where);
    }
  }

  // Group the groundless nodes into islands and classify each.
  std::map<size_t, std::vector<spice::NodeId>> islands;
  for (size_t i = 0; i < n_nodes; ++i) {
    const auto id = static_cast<spice::NodeId>(i);
    if (!dcpath.grounded(id)) islands[dcpath.find(dcpath.slot(id))].push_back(id);
  }
  for (const auto& [root, nodes] : islands) {
    const spice::Device* tap = nullptr;
    for (const auto& [node, dev] : current_taps) {
      if (node != spice::kGround &&
          dcpath.find(dcpath.slot(node)) == root) {
        tap = dev;
        break;
      }
    }
    if (tap != nullptr) {
      rep.add("APE-L003", Severity::Error,
              "current source '" + tap->name() + "' drives island " +
                  island_names(ckt, nodes) +
                  " with no DC path to ground (current-source cutset; KCL "
                  "unsatisfiable)",
              where);
    } else {
      rep.add("APE-L004", Severity::Error,
              "no DC path to ground for " + island_names(ckt, nodes) +
                  " (held up only by gmin; floating gate/bulk or "
                  "capacitor-only node)",
              where);
    }
  }

  return rep;
}

// --- netlist-text analysis --------------------------------------------------

namespace {

/// Re-assemble the parser's logical lines (continuations merged, comments
/// stripped) so the alias scan sees the same text the parser did.
std::vector<std::string> logical_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    const size_t cpos = raw.find_first_of("$;");
    if (cpos != std::string::npos) raw.erase(cpos);
    while (!raw.empty() &&
           (raw.back() == '\r' ||
            std::isspace(static_cast<unsigned char>(raw.back())))) {
      raw.pop_back();
    }
    size_t start = 0;
    while (start < raw.size() && std::isspace(static_cast<unsigned char>(raw[start]))) {
      ++start;
    }
    raw.erase(0, start);
    if (raw.empty() || raw[0] == '*') continue;
    if (raw[0] == '+') {
      if (!lines.empty()) lines.back() += " " + raw.substr(1);
    } else {
      lines.push_back(raw);
    }
  }
  return lines;
}

/// Node-token positions per element letter (mirrors parser.cpp's grammar).
int node_token_count(char kind) {
  switch (kind) {
    case 'r': case 'c': case 'l': case 'v': case 'i':
    case 'f': case 'h': case 'd':
      return 2;
    case 'e': case 'g': case 'm':
      return 4;
    default:
      return 0;
  }
}

/// APE-L008: the parser folds node names case-insensitively, so "Out"
/// and "out" silently become one node. Surface the aliasing as a note.
void scan_node_aliases(const std::string& text, Report& rep) {
  std::map<std::string, std::set<std::string>> spellings;
  const std::vector<std::string> lines = logical_lines(text);
  for (size_t li = 1; li < lines.size(); ++li) {  // line 0 is the title
    const std::string& line = lines[li];
    if (line.empty() || line[0] == '.') continue;
    std::istringstream toks(line);
    std::string tok;
    if (!(toks >> tok)) continue;
    const char kind =
        static_cast<char>(std::tolower(static_cast<unsigned char>(tok[0])));
    int want = node_token_count(kind);
    while (want-- > 0 && (toks >> tok)) {
      spellings[lower(tok)].insert(tok);
    }
  }
  for (const auto& [key, names] : spellings) {
    if (names.size() > 1) {
      std::string list;
      for (const auto& n : names) {
        if (!list.empty()) list += ", ";
        list += "'" + n + "'";
      }
      rep.add("APE-L008", Severity::Note,
              "node '" + key + "' is spelled " + list +
                  "; the parser folds these into one node");
    }
  }
}

}  // namespace

Report lint_netlist(const std::string& text) {
  Report rep;
  spice::Circuit ckt;
  try {
    ckt = spice::parse_netlist(text);
  } catch (const Error& e) {
    rep.add("APE-P001", Severity::Error, e.what());
    return rep;
  }
  rep.merge(lint_circuit(ckt));
  scan_node_aliases(text, rep);
  return rep;
}

Report lint_testbench(const est::Testbench& tb) {
  ErrorContext scope("lint_testbench");
  Report rep;
  spice::Circuit ckt;
  try {
    ckt = spice::parse_netlist(tb.netlist);
  } catch (const Error& e) {
    rep.add("APE-P001", Severity::Error, e.what());
    return rep;
  }
  rep.merge(lint_circuit(ckt));
  scan_node_aliases(tb.netlist, rep);

  // The measurement layer dereferences these by name; a missing probe is
  // unreachable exactly like a fault probe on an absent ordinal.
  auto need_node = [&](const std::string& node, const char* role) {
    if (node.empty()) return;
    try {
      (void)ckt.find_node(node);
    } catch (const Error&) {
      rep.add("APE-T001", Severity::Error,
              std::string(role) + " probe node '" + node +
                  "' does not exist in the netlist",
              ckt.title());
    }
  };
  need_node(tb.out_node, "output");
  need_node(tb.out_node2, "inverting output");

  // An empty supply_source is valid (macromodel benches draw no supply
  // current), so only a *named* reference is checked; an empty stimulus
  // is an error — every testbench flavour drives something.
  auto need_source = [&](const std::string& name, const char* role,
                         bool vsource_only, bool required) {
    if (name.empty()) {
      if (required) {
        rep.add("APE-T002", Severity::Error,
                std::string(role) + " source is not set", ckt.title());
      }
      return;
    }
    const spice::Device* d = ckt.find(name);
    if (d == nullptr) {
      rep.add("APE-T002", Severity::Error,
              std::string(role) + " source '" + name +
                  "' does not exist in the netlist",
              ckt.title());
      return;
    }
    const bool is_v = dynamic_cast<const spice::VSource*>(d) != nullptr;
    const bool is_i = dynamic_cast<const spice::ISource*>(d) != nullptr;
    if (vsource_only ? !is_v : !(is_v || is_i)) {
      rep.add("APE-T002", Severity::Error,
              std::string(role) + " source '" + name +
                  "' is not an independent source",
              ckt.title());
    }
  };
  need_source(tb.in_source, "stimulus", false, true);
  need_source(tb.supply_source, "supply", true, false);

  if (tb.cload < 0.0 || !std::isfinite(tb.cload)) {
    rep.add("APE-S001", Severity::Error,
            "testbench cload is " + units::format_eng(tb.cload) + " F",
            ckt.title());
  }
  return rep;
}

// --- spec / design level ----------------------------------------------------

namespace {

/// Minimum usable overdrive per stacked device when checking supply
/// headroom (a device biased below this is barely saturated).
constexpr double kMinVov = 0.15;

void check_positive(Report& rep, const char* field, double v,
                    const std::string& where) {
  if (bad_positive(v)) {
    rep.add("APE-S001", Severity::Error,
            std::string(field) + " must be positive and finite, got " +
                units::format_eng(v),
            where);
  }
}

void check_range(Report& rep, const char* field, double v, double lo,
                 double hi, const char* unit, const std::string& where) {
  if (!std::isfinite(v) || v <= 0.0) return;  // APE-S001 already fired
  if (v < lo || v > hi) {
    rep.add("APE-S002", Severity::Warn,
            std::string(field) + " = " + units::format_eng(v) + " " + unit +
                " is outside the plausible range [" + units::format_eng(lo) +
                ", " + units::format_eng(hi) + "] " + unit +
                " (unit slip?)",
            where);
  }
}

}  // namespace

Report lint_spec(const est::OpAmpSpec& spec, const est::Process& proc) {
  ErrorContext scope("lint_spec(opamp)");
  Report rep;
  const std::string where = "opamp spec";
  check_positive(rep, "gain", spec.gain, where);
  check_positive(rep, "ugf_hz", spec.ugf_hz, where);
  check_positive(rep, "ibias", spec.ibias, where);
  check_positive(rep, "cload", spec.cload, where);
  check_positive(rep, "process vdd - vss", proc.vdd - proc.vss, where);
  check_positive(rep, "process lmin", proc.lmin, where);
  check_positive(rep, "process wmin", proc.wmin, where);

  check_range(rep, "gain", spec.gain, 1.0, 1e6, "", where);
  check_range(rep, "ugf_hz", spec.ugf_hz, 1e3, 1e11, "Hz", where);
  check_range(rep, "ibias", spec.ibias, 1e-12, 1e-2, "A", where);
  check_range(rep, "cload", spec.cload, 1e-15, 1e-6, "F", where);

  // Stacked-Vov headroom of the level-2/3 topology this spec maps to: the
  // supply must fit an NMOS and a PMOS threshold plus one overdrive per
  // stacked device (tail + input pair + mirror; the Wilson source adds a
  // cascode level).
  const int stacked = spec.source == est::CurrentSourceKind::Wilson ? 4 : 3;
  const double need = std::fabs(proc.nmos.vto) + std::fabs(proc.pmos.vto) +
                      stacked * kMinVov;
  const double have = proc.vdd - proc.vss;
  if (std::isfinite(have) && have > 0.0 && have < need) {
    rep.add("APE-S004", Severity::Error,
            "supply " + units::format_eng(have) + " V cannot fit the stacked "
                "Vth + Vov budget of the " +
                (stacked == 4 ? std::string("Wilson") : std::string("mirror")) +
                "-tail two-stage topology (needs >= " +
                units::format_eng(need) + " V)",
            where);
  }

  if (spec.zout > 0.0 && !spec.buffer) {
    rep.add("APE-S005", Severity::Note,
            "zout target is set but buffer = false; the target is ignored",
            where);
  }
  return rep;
}

Report lint_spec(const est::ModuleSpec& spec, const est::Process& proc) {
  ErrorContext scope("lint_spec(module)");
  Report rep;
  const std::string where = std::string("module spec (") +
                            est::to_string(spec.kind) + ")";
  check_positive(rep, "process vdd - vss", proc.vdd - proc.vss, where);
  using est::ModuleKind;
  switch (spec.kind) {
    case ModuleKind::AudioAmp:
    case ModuleKind::InvertingAmp:
    case ModuleKind::Adder:
      check_positive(rep, "gain", spec.gain, where);
      check_positive(rep, "bw_hz", spec.bw_hz, where);
      check_range(rep, "gain", spec.gain, 1.0, 1e4, "", where);
      check_range(rep, "bw_hz", spec.bw_hz, 1.0, 1e9, "Hz", where);
      break;
    case ModuleKind::SampleHold:
      check_positive(rep, "bw_hz", spec.bw_hz, where);
      check_positive(rep, "slew", spec.slew, where);
      break;
    case ModuleKind::LowPassFilter:
    case ModuleKind::BandPassFilter:
    case ModuleKind::Integrator:
      check_positive(rep, "f0_hz", spec.f0_hz, where);
      check_range(rep, "f0_hz", spec.f0_hz, 1.0, 1e9, "Hz", where);
      if (spec.kind != ModuleKind::Integrator &&
          (spec.order < 2 || spec.order > 8)) {
        rep.add("APE-S001", Severity::Error,
                "filter order " + std::to_string(spec.order) +
                    " is outside the supported range [2, 8]",
                where);
      }
      break;
    case ModuleKind::FlashAdc:
    case ModuleKind::R2RDac:
      if (spec.order < 1 || spec.order > 12) {
        rep.add("APE-S001", Severity::Error,
                "converter resolution " + std::to_string(spec.order) +
                    " bits is outside the supported range [1, 12]",
                where);
      }
      check_positive(rep, "delay_s", spec.delay_s, where);
      break;
    case ModuleKind::Comparator:
      check_positive(rep, "delay_s", spec.delay_s, where);
      break;
  }
  return rep;
}

Report lint_design(const est::OpAmpDesign& design, const est::Process& proc) {
  ErrorContext scope("lint_design(opamp)");
  Report rep;
  const std::string where = "opamp design";
  for (size_t i = 0; i < design.transistors.size(); ++i) {
    const est::TransistorDesign& t = design.transistors[i];
    const std::string role =
        i < design.roles.size() ? design.roles[i] : "xtor" + std::to_string(i);
    if (!std::isfinite(t.w) || t.w < proc.wmin || t.w > proc.wmax) {
      rep.add("APE-S003", Severity::Error,
              "transistor '" + role + "' W = " + units::format_eng(t.w) +
                  " m is outside the process range [" +
                  units::format_eng(proc.wmin) + ", " +
                  units::format_eng(proc.wmax) + "] m",
              where);
    }
    if (!std::isfinite(t.l) || t.l < proc.lmin) {
      rep.add("APE-S003", Severity::Error,
              "transistor '" + role + "' L = " + units::format_eng(t.l) +
                  " m is below the process minimum " +
                  units::format_eng(proc.lmin) + " m",
              where);
    }
  }
  return rep;
}

// --- lint-first integration -------------------------------------------------

void require_clean(const Report& report, const std::string& what) {
  if (report.ok()) return;
  throw LintError(what + ": lint found " + report.summary(), report);
}

std::function<void(const spice::Circuit&)> preflight() {
  return [](const spice::Circuit& ckt) {
    require_clean(lint_circuit(ckt), "lint-first('" + ckt.title() + "')");
  };
}

spice::Solution lint_first_dc(spice::Circuit& ckt, spice::DcOptions opts) {
  opts.preflight = preflight();
  return spice::dc_operating_point(ckt, opts);
}

}  // namespace ape::lint
