#pragma once
/// \file lint.h
/// Static circuit / netlist / spec analyzer ("ape-lint", DESIGN.md §9).
///
/// Proves MNA solvability and flags topology and specification defects
/// *before* any solve: a malformed circuit — floating gate, voltage-
/// source loop, current-source cutset, no DC path to ground — fails in
/// microseconds with a named rule instead of burning a RunBudget inside
/// newton_dc's recovery ladder.
///
/// The structural checks consume Device::structure() (src/spice/device.h):
/// each device declares its DC edges (conductive / voltage-defined /
/// current-source / capacitive) and its high-impedance sense terminals,
/// and the analyzer runs two union-find passes:
///
///  - voltage-defined edges only: any edge closing a cycle (including
///    through ground) is a voltage-source loop — two branch equations
///    constrain the same mesh, so the MNA matrix is structurally
///    singular regardless of values (rule APE-L002);
///  - conductive + voltage-defined edges: any component not containing
///    ground has no DC reference. If a current source attaches to such
///    an island, KCL over the island is generically unsatisfiable — a
///    current-source cutset (APE-L003); otherwise the island's voltages
///    are held up only by gmin (APE-L004).
///
/// Rule catalog (ids are stable; severities in parentheses):
///
///   APE-L001 dangling-node     (warn)  node attached to fewer than two
///                                      device terminals
///   APE-L002 vsource-loop      (error) cycle of voltage-defined edges
///   APE-L003 isource-cutset    (error) current source driving an island
///                                      with no DC path to ground
///   APE-L004 no-ground-path    (error) island with no DC path to ground
///                                      (floating gate/bulk, cap-only node)
///   APE-L005 self-loop         (error) device with both terminals on the
///                                      same node
///   APE-L006 duplicate-device  (error) two devices share a name
///   APE-L007 empty-circuit     (warn)  no devices at all
///   APE-L008 node-alias        (note)  one node spelled with differing
///                                      case in the netlist text
///   APE-L009 opaque-device     (note)  device without structural model
///   APE-P001 parse-error       (error) netlist text failed to parse
///   APE-S001 bad-spec-value    (error) non-finite / non-positive spec or
///                                      process field
///   APE-S002 unit-range        (warn)  spec magnitude outside plausible
///                                      engineering range (unit slip)
///   APE-S003 wl-bounds         (error) sized W/L outside process limits
///   APE-S004 headroom          (error) supply cannot fit the stacked
///                                      Vov + Vth budget of the topology
///   APE-S005 zout-ignored      (note)  zout spec without output buffer
///   APE-T001 missing-probe     (error) testbench probe node absent from
///                                      the netlist
///   APE-T002 bad-source-ref    (error) testbench stimulus / supply name
///                                      absent or of the wrong element kind
///
/// Every Finding carries the ErrorContext provenance chain open at lint
/// time, so reports compose with the diagnostics layer exactly like
/// ape::Error messages do. Lint-first entry points: set
/// `DcOptions::preflight = lint::preflight()` (or call
/// lint::lint_first_dc) to fail a DC solve fast with a LintError, and
/// `BatchOptions::lint_first = true` to gate every batch job on its spec
/// lint (src/runtime/batch.h).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/estimator/modules.h"
#include "src/estimator/netlist.h"
#include "src/estimator/opamp.h"
#include "src/estimator/process.h"
#include "src/spice/analysis.h"
#include "src/spice/circuit.h"
#include "src/util/error.h"

namespace ape::lint {

enum class Severity { Note, Warn, Error };

const char* to_string(Severity s);

/// One static-analysis finding.
struct Finding {
  std::string rule;        ///< stable id, e.g. "APE-L002"
  Severity severity = Severity::Note;
  std::string message;     ///< human-readable, names devices/nodes
  std::string where;       ///< circuit title / spec name / file ("" = n/a)
  std::string provenance;  ///< ErrorContext chain open when found ("" = none)
};

/// A collection of findings plus convenience accessors.
struct Report {
  std::vector<Finding> findings;

  void add(std::string rule, Severity severity, std::string message,
           std::string where = "");
  void merge(const Report& other);

  int errors() const;
  int warnings() const;
  int notes() const;
  bool ok() const { return errors() == 0; }

  bool has(const std::string& rule) const;
  const Finding* first(const std::string& rule) const;

  /// "clean" or e.g. "2 errors, 1 warning (first: APE-L002 ...)".
  std::string summary() const;
  /// Machine-readable rendering used by the ape_lint CLI.
  std::string to_json() const;
};

/// Thrown by the lint-first entry points when a report has errors. The
/// report rides along (shared, so the exception stays cheaply copyable).
class LintError : public Error {
public:
  LintError(const std::string& what, Report report)
      : Error(what), report_(std::make_shared<Report>(std::move(report))) {}

  const Report& report() const { return *report_; }

private:
  std::shared_ptr<const Report> report_;
};

// --- circuit / netlist / testbench level -----------------------------------

/// Structural analysis of a built Circuit (rules APE-L001..L007, L009).
/// Works on finalized and non-finalized circuits alike; never solves.
Report lint_circuit(const spice::Circuit& ckt);

/// Parse \p text and lint the result (adds APE-P001 on parse failure and
/// APE-L008 case-alias notes from the raw text).
Report lint_netlist(const std::string& text);

/// Lint a testbench: its netlist plus the probe / stimulus / supply
/// references the measurement layer will dereference (APE-T001/T002).
Report lint_testbench(const est::Testbench& tb);

// --- spec / design level ----------------------------------------------------

/// Sanity rules for an opamp spec against a process (APE-S001/S002/S004/
/// S005): positive finite targets, plausible magnitudes, supply headroom
/// for the stacked Vov budget of the two-stage (+ Wilson) topology.
Report lint_spec(const est::OpAmpSpec& spec, const est::Process& proc);

/// Sanity rules for a module spec (APE-S001/S002).
Report lint_spec(const est::ModuleSpec& spec, const est::Process& proc);

/// W/L bounds of every sized transistor vs. the process (APE-S003).
Report lint_design(const est::OpAmpDesign& design, const est::Process& proc);

// --- lint-first integration -------------------------------------------------

/// Throw LintError when \p report has errors; \p what names the gated
/// operation in the exception message.
void require_clean(const Report& report, const std::string& what);

/// A DcOptions::preflight hook that lints the finalized circuit and
/// throws LintError instead of letting Newton burn budget on a
/// structurally singular system.
std::function<void(const spice::Circuit&)> preflight();

/// dc_operating_point with the lint-first preflight installed.
spice::Solution lint_first_dc(spice::Circuit& ckt, spice::DcOptions opts = {});

}  // namespace ape::lint
