#include "src/util/units.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/error.h"

namespace ape::units {
namespace {

bool iequal_prefix(std::string_view text, std::string_view word) {
  if (text.size() < word.size()) return false;
  for (size_t i = 0; i < word.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<double> parse(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  if (text.empty()) return std::nullopt;

  std::string buf(text);
  char* end = nullptr;
  const double mantissa = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) return std::nullopt;

  std::string_view rest(end);
  double scale = 1.0;
  if (!rest.empty()) {
    // Order matters: "meg" and "mil" must be tested before 'm'.
    if (iequal_prefix(rest, "meg")) {
      scale = 1e6;
    } else if (iequal_prefix(rest, "mil")) {
      scale = 25.4e-6;
    } else {
      switch (std::tolower(static_cast<unsigned char>(rest.front()))) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default:
          // Unknown suffix: accept only if it is purely alphabetic (a unit
          // name such as "V" or "Hz"); otherwise malformed.
          break;
      }
    }
    for (char c : rest) {
      if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
    }
  }
  return mantissa * scale;
}

double parse_or_throw(std::string_view text, std::string_view context) {
  if (auto v = parse(text)) return *v;
  throw ParseError("cannot parse number '" + std::string(text) + "' in " +
                   std::string(context));
}

std::string format_eng(double value, int digits) {
  if (value == 0.0 || !std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*g", digits, value);
    return buf;
  }
  static constexpr struct { double scale; const char* suffix; } kPrefixes[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "Meg"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
  };
  const double mag = std::fabs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.99999999) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*g%s", digits, value / p.scale,
                    p.suffix);
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

}  // namespace ape::units
