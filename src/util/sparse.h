#pragma once
/// \file sparse.h
/// Sparse LU with Markowitz threshold pivoting and a reusable symbolic
/// factorization — the scale-up path of the MNA kernel (DESIGN.md
/// section 13).
///
/// The dense LuSolver (matrix.h) is O(n^3) per factorization, which caps
/// circuit size well below module-level netlists: BENCH_spice_kernel.json
/// put n = 64 at ~52 us and the Newton ladders refactor every iteration.
/// Circuit MNA systems are extremely sparse (a handful of entries per
/// row), so this file implements the classic SPICE solution (Berkeley
/// Sparse1.3 / KLU lineage) split into the two phases the compiled-stamp
/// kernel already separates:
///
///  - ORDER AND FACTOR (once per topology): numeric-threshold Markowitz
///    pivoting — pick the structural entry minimizing the fill estimate
///    (r_i - 1)(c_j - 1) among entries passing |a_ij| >= tau * colmax —
///    while recording the row/column permutations, the fill-in pattern
///    of L + U, and a compiled elimination "program": flat slot-index
///    arrays that name, for every elimination pair, exactly which L + U
///    storage slots participate. This is the symbolic factorization.
///  - REFACTOR (every Newton iteration / AC point): scatter the new
///    values through the precomputed slot map and replay the program —
///    no searching, no allocation, no index arithmetic beyond array
///    reads, O(nnz + fill flops) instead of O(n^3).
///
/// The numeric value type is a template parameter (double for DC /
/// transient, std::complex<double> for AC); the symbolic machinery is
/// shared. A pattern is captured once per topology by the MNA stamp
/// recorder (device.h) — structural slots, not nonzero values, so a
/// cutoff MOSFET whose gm is 0.0 at the first operating point still
/// claims its slots.
///
/// Thread-safety: a SparseLu is owned by one solver workspace and used
/// on one thread, same as LuSolver (see the THREAD-SAFETY RULE in
/// src/util/diagnostics.h).

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/error.h"

namespace ape {

/// Structural (row, col) slots of a sparse system, deduplicated into CSR
/// form by finalize(). Slots are the stable handles the kernel uses to
/// gather values from its dense stamp storage and the solver uses to
/// scatter them into LU storage.
class SparsePattern {
public:
  SparsePattern() = default;
  explicit SparsePattern(size_t n) : n_(n) {}

  /// Reset to an empty n-by-n pattern (keeps buffer capacity).
  void reset(size_t n) {
    n_ = n;
    coords_.clear();
    row_ptr_.clear();
    cols_.clear();
    finalized_ = false;
  }

  /// Record a structural slot. Duplicates are welcome (stamps overlap);
  /// finalize() dedups. Ignored once finalized.
  void add(int r, int c) {
    if (!finalized_) coords_.push_back((static_cast<uint64_t>(r) << 32) | static_cast<uint32_t>(c));
  }

  /// Sort, dedup and build the CSR arrays. Idempotent.
  void finalize();

  size_t n() const { return n_; }
  size_t nnz() const { return cols_.size(); }
  bool finalized() const { return finalized_; }

  /// CSR arrays: row r owns slots [row_ptr()[r], row_ptr()[r+1]), whose
  /// columns are cols()[slot], sorted ascending.
  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& cols() const { return cols_; }

  /// Pattern density nnz / n^2 (0 for empty), the crossover input.
  double density() const {
    return n_ == 0 ? 0.0 : static_cast<double>(nnz()) / (static_cast<double>(n_) * static_cast<double>(n_));
  }

  /// Cheap structural fingerprint (n, nnz, FNV over the CSR arrays) so a
  /// solver can assert the pattern it analyzed is the one it refactors.
  uint64_t signature() const { return signature_; }

  /// Bytes of owned storage (for the workspace allocation audit).
  size_t memory_bytes() const {
    return coords_.capacity() * sizeof(uint64_t) +
           (row_ptr_.capacity() + cols_.capacity()) * sizeof(int);
  }

private:
  size_t n_ = 0;
  std::vector<uint64_t> coords_;  ///< packed (r << 32 | c), pre-finalize
  std::vector<int> row_ptr_;
  std::vector<int> cols_;
  uint64_t signature_ = 0;
  bool finalized_ = false;
};

/// Counters a solver reports up into KernelStats.
struct SparseLuStats {
  long symbolic_analyses = 0;  ///< order-and-factor passes (pattern changes)
  long numeric_refactors = 0;  ///< total numeric factorizations
  long symbolic_reuses = 0;    ///< refactors that replayed a cached program
  size_t nnz = 0;              ///< structural entries of the analyzed pattern
  size_t fill_in = 0;          ///< extra L + U entries created by elimination
  size_t flops = 0;            ///< multiply-subtract ops per refactor
};

/// Sparse LU over T in {double, std::complex<double>}.
template <typename T>
class SparseLu {
public:
  SparseLu() = default;

  /// Factorize the system whose structural slots are \p pattern
  /// (finalized) and whose slot values are \p values (CSR slot order).
  /// The first call (or a call after the pattern's signature changed)
  /// runs the Markowitz order-and-factor pass and compiles the
  /// elimination program; subsequent calls replay the program —
  /// allocation-free and typically 10-100x cheaper. Throws NumericError
  /// on a (numerically) singular system; the solver must be refactorized
  /// before the next solve.
  void factorize(const SparsePattern& pattern, const std::vector<T>& values);

  /// Solve A x = b into \p x (resized; no allocation at steady state).
  /// \p b and \p x must not alias. Requires a successful factorize().
  void solve_into(const std::vector<T>& b, std::vector<T>& x) const;

  /// Solve A^T x = b (plain transpose, no conjugation) against the same
  /// factorization — the Hager condition-estimator probe
  /// (numeric_health.h). Not a hot path. \p b and \p x must not alias.
  void solve_transposed_into(const std::vector<T>& b, std::vector<T>& x) const;

  size_t size() const { return n_; }
  const SparseLuStats& stats() const { return stats_; }

  /// max_k|u_kk| / max|a| of the last refactor — the O(1) diagonal
  /// pivot-growth monitor used by the numerical-health layer (same proxy
  /// as LuSolver::pivot_growth).
  double pivot_growth() const {
    return scale_ > 0.0 ? max_pivot_ / scale_ : 0.0;
  }
  /// Smallest |u_kk| of the last refactor; scale / min_pivot is the
  /// cheap condition-number lower-bound trigger.
  double min_pivot() const { return min_pivot_; }
  /// max|a_ij| of the last refactored values (the singularity scale).
  double max_abs_scale() const { return scale_; }

  /// Bytes of owned storage (for the workspace allocation audit).
  size_t memory_bytes() const;

  /// Numeric pivot-acceptance threshold for the ordering pass: an entry
  /// competes for the pivot only when |a_ij| >= tau * max|a_:j|. 0.01
  /// trades a little growth for much less fill (Sparse1.3 default
  /// territory); the kernel falls back to dense when a refactor pivot
  /// collapses anyway.
  static constexpr double kPivotThreshold = 0.01;

private:
  void order_and_factor(const SparsePattern& pattern, const std::vector<T>& values);
  void refactor(const std::vector<T>& values);

  size_t n_ = 0;
  uint64_t analyzed_signature_ = 0;
  bool factorized_ = false;

  // Permutations: permuted position p holds original row row_orig_[p] /
  // original column col_orig_[p].
  std::vector<int> row_orig_;
  std::vector<int> col_orig_;

  // LU storage: CSR over permuted rows, columns sorted; sub-diagonal
  // entries are the multipliers of unit-lower L, the diagonal + upper
  // entries are U.
  std::vector<int> f_row_ptr_;
  std::vector<int> f_cols_;
  std::vector<int> f_diag_;       ///< slot of (i, i) per permuted row
  std::vector<T> f_vals_;

  // Scatter map: pattern slot s lands in LU slot scatter_[s].
  std::vector<int> scatter_;

  // Compiled elimination program. For pivot step k the U-row slots are
  // the contiguous factor slots (f_diag_[k], f_row_ptr_[k+1]); each
  // elimination pair p in [pair_ptr_[k], pair_ptr_[k+1]) names its
  // multiplier slot l_slot_[p] and the destination slots
  // dst_[dst_ptr_[p] + t], aligned with the U-row slots (the t-th
  // destination pairs with the t-th U slot).
  std::vector<int> pair_ptr_;
  std::vector<int> l_slot_;
  std::vector<int> dst_ptr_;
  std::vector<int> dst_;

  mutable std::vector<T> y_;      ///< permuted solve scratch
  SparseLuStats stats_;
  double scale_ = 0.0;
  double max_pivot_ = 0.0;
  double min_pivot_ = 0.0;
};

extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

using SparseLuReal = SparseLu<double>;
using SparseLuComplex = SparseLu<std::complex<double>>;

}  // namespace ape
