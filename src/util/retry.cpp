#include "src/util/retry.h"

#include <algorithm>
#include <cmath>

#include "src/util/rng.h"
#include "src/util/stream_ids.h"

namespace ape {

const char* to_string(RetryRung rung) {
  switch (rung) {
    case RetryRung::Initial: return "initial";
    case RetryRung::Retry: return "retry";
    case RetryRung::NumericRecovery: return "numeric-recovery";
    case RetryRung::Relaxed: return "relaxed";
    case RetryRung::EstimateOnly: return "estimate-only";
    case RetryRung::Fail: break;
  }
  return "fail";
}

int RetryPolicy::max_attempts() const {
  return 1 + std::max(plain_retries, 0) +
         std::max(numeric_recovery_retries, 0) + std::max(relaxed_retries, 0) +
         (estimate_fallback ? 1 : 0);
}

RetryRung RetryPolicy::rung(int attempt) const {
  const int plain = std::max(plain_retries, 0);
  const int numeric = std::max(numeric_recovery_retries, 0);
  const int relaxed = std::max(relaxed_retries, 0);
  if (attempt <= 0) return RetryRung::Initial;
  if (attempt <= plain) return RetryRung::Retry;
  if (attempt <= plain + numeric) return RetryRung::NumericRecovery;
  if (attempt <= plain + numeric + relaxed) return RetryRung::Relaxed;
  if (estimate_fallback && attempt == estimate_attempt()) {
    return RetryRung::EstimateOnly;
  }
  return RetryRung::Fail;
}

RetryRung RetryPolicy::next_rung(ErrorClass klass, int attempt) const {
  if (klass == ErrorClass::Permanent) {
    // Retrying or relaxing cannot change a permanent failure: jump to
    // the estimate fallback (when enabled and not already tried).
    if (estimate_fallback && attempt < estimate_attempt()) {
      return RetryRung::EstimateOnly;
    }
    return RetryRung::Fail;
  }
  return rung(attempt + 1);
}

int RetryPolicy::estimate_attempt() const {
  return estimate_fallback ? max_attempts() - 1 : -1;
}

double RetryPolicy::backoff_s(uint64_t job, int attempt) const {
  if (attempt <= 0 || backoff_base_s <= 0.0) return 0.0;
  const double raw =
      backoff_base_s * std::pow(backoff_factor, double(attempt - 1));
  // Deterministic jitter: a fresh stream per (job, attempt) so every
  // schedule replays exactly and concurrent jobs never synchronize
  // their retries into a thundering herd. The id layout lives in
  // stream_ids.h with every other derive_stream domain.
  const uint64_t stream = Rng::derive_stream(
      jitter_seed, streams::kRetryJitterStream(job, uint64_t(attempt)));
  const double u = Rng(stream).uniform();  // [0, 1)
  const double jitter = 1.0 + jitter_frac * (2.0 * u - 1.0);
  return std::min(raw * std::max(jitter, 0.0), backoff_max_s);
}

}  // namespace ape
