#pragma once
/// \file poly.h
/// Polynomial utilities for the AWE (Asymptotic Waveform Evaluation)
/// reduced-order evaluator: root finding and Pade coefficient solves.

#include <complex>
#include <vector>

namespace ape {

using Complex = std::complex<double>;

/// Evaluate a polynomial with coefficients c[0] + c[1] x + ... + c[n] x^n.
Complex poly_eval(const std::vector<Complex>& coeffs, Complex x);

/// All complex roots of the polynomial (coefficients low-to-high order,
/// leading coefficient non-zero after trimming). Uses the Durand-Kerner
/// (Weierstrass) simultaneous iteration, which is robust for the small
/// (order <= ~10) denominators AWE produces.
/// Throws ape::NumericError if the polynomial is constant.
std::vector<Complex> poly_roots(const std::vector<Complex>& coeffs);

/// Real-coefficient convenience overload.
std::vector<Complex> poly_roots(const std::vector<double>& coeffs);

/// Compute the denominator coefficients b[1..q] of a Pade approximation
/// from 2q moments m[0..2q-1]:  the b solve
///   sum_{k=1}^{q} b[k] * m[q - 1 - j + (k-1)] = -m[q + j]   (j = 0..q-1)
/// with b[0] = 1 implied. Returns {b1, ..., bq} such that
///   D(s) = 1 + b1 s + ... + bq s^q  matches the moment series.
/// Throws ape::NumericError on a singular moment matrix.
std::vector<double> pade_denominator(const std::vector<double>& moments, int q);

}  // namespace ape
