#pragma once
/// \file units.h
/// SI-prefixed engineering value parsing and formatting, SPICE style.
///
/// SPICE number suffixes: f p n u m k meg g t (case-insensitive), plus
/// "mil" (25.4 um). Trailing alphabetic unit names are ignored after the
/// scale suffix ("10pF" == 10e-12).

#include <optional>
#include <string>
#include <string_view>

namespace ape::units {

/// Parse a SPICE-style engineering number ("2.5u", "10MEG", "4.7k", "1e-6").
/// Returns std::nullopt on malformed input.
std::optional<double> parse(std::string_view text);

/// Parse, throwing ape::ParseError with \p context in the message on failure.
double parse_or_throw(std::string_view text, std::string_view context);

/// Format a value with an engineering SI prefix, e.g. 2.5e-6 -> "2.5u".
/// \p digits controls significant digits of the mantissa.
std::string format_eng(double value, int digits = 4);

}  // namespace ape::units
