#pragma once
/// \file json.h
/// Minimal JSON reader/writer helpers for the runtime's durable
/// artifacts (the supervisor's checkpoint files, DESIGN.md section 10).
///
/// Scope is deliberately tiny: parse a complete document into a Value
/// tree (objects, arrays, strings, numbers, bools, null), plus the two
/// formatting helpers the writers share. Doubles that must round-trip
/// bit-exactly are stored as hex-float *strings* ("0x1.8p+1") — JSON
/// decimal numbers cannot guarantee that — and read back with
/// parse_hex_double(). Malformed input throws ape::ParseError with the
/// offending byte offset.

#include <string>
#include <utility>
#include <vector>

namespace ape::json {

/// One parsed JSON value. A tagged struct rather than a variant: the
/// checkpoint reader walks a handful of small documents, so simplicity
/// beats compactness.
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> items;                          ///< Kind::Array
  std::vector<std::pair<std::string, Value>> members; ///< Kind::Object

  /// Member lookup on an object (nullptr when absent or not an object).
  const Value* find(const std::string& key) const;

  /// Typed accessors; each throws ape::ParseError on a kind mismatch so
  /// a malformed checkpoint fails loudly instead of defaulting silently.
  bool as_bool() const;
  double as_number() const;
  long as_long() const;
  const std::string& as_string() const;

  /// as_string() parsed as a hex-float (see file comment).
  double as_hex_double() const;
};

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Throws ape::ParseError.
Value parse(const std::string& text);

/// Escape \p s for embedding in a JSON string literal (no quotes added).
std::string escape(const std::string& s);

/// Lossless hex-float formatting ("%a") for bit-exact round-trips.
std::string hex_double(double v);

/// Inverse of hex_double (accepts any strtod-parsable spelling).
double parse_hex_double(const std::string& s);

}  // namespace ape::json
