#include "src/util/interval.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ape::util {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Directed rounding: one-ulp outward nudges. Infinities are already
/// extremal and exact zeros stay exact on the side that cannot cross
/// them (a product/quotient of finite operands that is exactly 0.0 is
/// exact in IEEE arithmetic).
double down(double v) {
  if (std::isnan(v)) return -kInf;
  if (v == -kInf || v == 0.0) return v;
  return std::nextafter(v, -kInf);
}

double up(double v) {
  if (std::isnan(v)) return kInf;
  if (v == kInf || v == 0.0) return v;
  return std::nextafter(v, kInf);
}

/// Product of two endpoint values for the candidate scan. IEEE gives
/// 0 * inf = NaN, but in the interval product the correct candidate is
/// 0 (the zero endpoint annihilates any finite point arbitrarily close
/// to the infinite one).
double mul_bound(double a, double b) {
  if ((a == 0.0 && std::isinf(b)) || (b == 0.0 && std::isinf(a))) return 0.0;
  return a * b;
}

}  // namespace

Interval::Interval(double v) : lo_(v), hi_(v) {
  if (std::isnan(v)) {
    lo_ = -kInf;
    hi_ = kInf;
  }
}

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi) {
  if (std::isnan(lo) || std::isnan(hi)) {
    lo_ = -kInf;
    hi_ = kInf;
    return;
  }
  if (lo_ > hi_) std::swap(lo_, hi_);
}

Interval Interval::empty_set() {
  Interval e;
  e.empty_ = true;
  e.lo_ = kInf;
  e.hi_ = -kInf;
  return e;
}

Interval Interval::whole() { return Interval(-kInf, kInf); }

Interval Interval::hull(double a, double b) { return Interval(a, b); }

bool Interval::contains(double v) const {
  return !empty_ && !std::isnan(v) && lo_ <= v && v <= hi_;
}

bool Interval::contains(const Interval& other) const {
  if (other.empty_) return true;
  return !empty_ && lo_ <= other.lo_ && other.hi_ <= hi_;
}

bool Interval::intersects(const Interval& other) const {
  if (empty_ || other.empty_) return false;
  return lo_ <= other.hi_ && other.lo_ <= hi_;
}

double Interval::width() const {
  if (empty_) return 0.0;
  return hi_ - lo_;
}

double Interval::mid() const {
  if (empty_) return 0.0;
  if (std::isinf(lo_) && std::isinf(hi_)) return 0.0;
  if (std::isinf(lo_)) return hi_;
  if (std::isinf(hi_)) return lo_;
  return 0.5 * (lo_ + hi_);
}

Interval Interval::intersect(const Interval& a, const Interval& b) {
  if (a.empty_ || b.empty_) return empty_set();
  const double lo = std::max(a.lo_, b.lo_);
  const double hi = std::min(a.hi_, b.hi_);
  if (lo > hi) return empty_set();
  Interval r;
  r.lo_ = lo;
  r.hi_ = hi;
  return r;
}

Interval Interval::join(const Interval& a, const Interval& b) {
  if (a.empty_) return b;
  if (b.empty_) return a;
  Interval r;
  r.lo_ = std::min(a.lo_, b.lo_);
  r.hi_ = std::max(a.hi_, b.hi_);
  return r;
}

Interval Interval::operator-() const {
  if (empty_) return empty_set();
  Interval r;
  r.lo_ = -hi_;
  r.hi_ = -lo_;
  return r;
}

Interval Interval::operator+(const Interval& rhs) const {
  if (empty_ || rhs.empty_) return empty_set();
  Interval r;
  r.lo_ = down(lo_ + rhs.lo_);
  r.hi_ = up(hi_ + rhs.hi_);
  return r;
}

Interval Interval::operator-(const Interval& rhs) const {
  return *this + (-rhs);
}

Interval Interval::operator*(const Interval& rhs) const {
  if (empty_ || rhs.empty_) return empty_set();
  const double c[4] = {mul_bound(lo_, rhs.lo_), mul_bound(lo_, rhs.hi_),
                       mul_bound(hi_, rhs.lo_), mul_bound(hi_, rhs.hi_)};
  double lo = c[0], hi = c[0];
  for (int i = 1; i < 4; ++i) {
    lo = std::min(lo, c[i]);
    hi = std::max(hi, c[i]);
  }
  Interval r;
  r.lo_ = down(lo);
  r.hi_ = up(hi);
  return r;
}

Interval Interval::operator/(const Interval& rhs) const {
  if (empty_ || rhs.empty_) return empty_set();
  // Divisor bounded away from zero: candidate scan over the endpoint
  // quotients is exact up to rounding.
  if (rhs.lo_ > 0.0 || rhs.hi_ < 0.0) {
    const double c[4] = {lo_ / rhs.lo_, lo_ / rhs.hi_, hi_ / rhs.lo_,
                         hi_ / rhs.hi_};
    bool seeded = false;
    double lo = 0.0, hi = 0.0;
    for (double v : c) {
      if (std::isnan(v)) continue;  // inf/inf: another endpoint bounds it
      if (!seeded) {
        lo = hi = v;
        seeded = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!seeded) return whole();
    Interval r;
    r.lo_ = down(lo);
    r.hi_ = up(hi);
    return r;
  }
  // Divisor contains zero: extended division. The quotient set excludes
  // b = 0 itself but its closure is what we return.
  if (lo_ == 0.0 && hi_ == 0.0) {
    // {0 / b : b != 0} = {0} (empty when rhs is exactly [0,0], but the
    // point [0,0] is still a sound enclosure of the empty quotient set's
    // closure for our use — callers treat it as "no information").
    return Interval(0.0);
  }
  if (rhs.lo_ == 0.0 && rhs.hi_ == 0.0) return whole();
  if (rhs.lo_ == 0.0) {
    // rhs = [0, b2], b2 > 0: dividing by arbitrarily small positive b
    // blows the sign-matching side out to infinity.
    Interval r;
    r.lo_ = lo_ >= 0.0 ? down(lo_ / rhs.hi_) : -kInf;
    r.hi_ = hi_ <= 0.0 ? up(hi_ / rhs.hi_) : kInf;
    return r;
  }
  if (rhs.hi_ == 0.0) {
    // rhs = [b1, 0], b1 < 0: mirror of the case above.
    return -(*this / Interval(0.0, -rhs.lo_));
  }
  // Zero strictly inside the divisor: the quotient set is the whole line.
  return whole();
}

std::string Interval::str() const {
  if (empty_) return "(empty)";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g]", lo_, hi_);
  return buf;
}

Interval sqrt(const Interval& x) {
  if (x.empty() || x.hi() < 0.0) return Interval::empty_set();
  const double lo = x.lo() <= 0.0 ? 0.0 : down(std::sqrt(x.lo()));
  const double hi = up(std::sqrt(x.hi()));
  Interval r(lo < 0.0 ? 0.0 : lo, hi);
  return r;
}

Interval atan(const Interval& x) {
  if (x.empty()) return Interval::empty_set();
  return Interval(down(std::atan(x.lo())), up(std::atan(x.hi())));
}

Interval log10(const Interval& x) {
  if (x.empty() || x.hi() <= 0.0) return Interval::empty_set();
  const double lo = x.lo() <= 0.0
                        ? -std::numeric_limits<double>::infinity()
                        : down(std::log10(x.lo()));
  return Interval(lo, up(std::log10(x.hi())));
}

Interval abs(const Interval& x) {
  if (x.empty()) return Interval::empty_set();
  if (x.lo() >= 0.0) return x;
  if (x.hi() <= 0.0) return -x;
  return Interval(0.0, std::max(-x.lo(), x.hi()));
}

Interval min(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_set();
  Interval r(std::min(a.lo(), b.lo()), std::min(a.hi(), b.hi()));
  return r;
}

Interval max(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_set();
  Interval r(std::max(a.lo(), b.lo()), std::max(a.hi(), b.hi()));
  return r;
}

double sqrt(double x) { return std::sqrt(x); }
double atan(double x) { return std::atan(x); }
double log10(double x) { return std::log10(x); }
double abs(double x) { return std::fabs(x); }
double min(double a, double b) { return std::min(a, b); }
double max(double a, double b) { return std::max(a, b); }

}  // namespace ape::util
