#pragma once
/// \file stream_ids.h
/// Registry of every Rng::derive_stream domain in the codebase — the
/// single place where stream-id layouts are assigned, so new consumers
/// of deterministic randomness cannot silently collide with existing
/// ones (DESIGN.md section 12).
///
/// derive_stream(seed, id) is a splitmix64 finalizer over seed + id:
/// two streams collide exactly when both their seeds and their ids
/// match. Domains therefore separate along two axes:
///
///  1. Different *seeds*: the batch seed (BatchOptions::seed), the
///     anneal seed (AnnealOptions::seed, itself usually a batch-derived
///     stream), and the retry jitter seed (RetryPolicy::jitter_seed,
///     default 0x5eed) are independent root keys. Ids may overlap
///     across them.
///  2. Different *id ranges* under the same seed. The existing domains
///     keyed on the batch seed use small integers, so every new domain
///     must carve out a disjoint range — the mismatch domain below tags
///     its ids with a high byte no small-integer id can reach.
///
/// Existing domains (values are frozen: changing any of them changes
/// every previously published deterministic result):
///
///  - Batch jobs (runtime/batch.cpp): job i anneals with
///    derive_stream(batch_seed, kBatchJobStream(i)) — the plain job
///    index, ids [0, jobs).
///  - Multi-start restarts (synth/astrx.cpp): restart r > 0 anneals
///    with derive_stream(anneal_seed, kAnnealRestartStream(r)) — the
///    plain restart index on the *job's own* seed (restart 0 uses the
///    seed unchanged), ids [1, restarts).
///  - Retry backoff jitter (util/retry.cpp): attempt a of job j jitters
///    with derive_stream(jitter_seed, kRetryJitterStream(j, a)) on the
///    policy's own jitter seed.
///  - Monte-Carlo mismatch (stat/mismatch.cpp): sample s of job j at
///    corner c draws with derive_stream(batch_seed,
///    kMismatchStream(j, c, s)). Tagged ids, disjoint from the batch-job
///    range under the same seed by construction.

#include <cstdint>

namespace ape::streams {

/// Batch job i → stream id i (frozen; see file comment).
constexpr uint64_t kBatchJobStream(uint64_t job) { return job; }

/// Multi-start restart r → stream id r on the job's anneal seed
/// (frozen; restart 0 never derives).
constexpr uint64_t kAnnealRestartStream(uint64_t restart) { return restart; }

/// Retry backoff jitter: (job, attempt) → job * stride + attempt on the
/// policy's jitter seed. The stride bounds attempts per job at 1000003
/// (a prime far above any real ladder) before two jobs could alias.
constexpr uint64_t kRetryJitterStride = 1000003ULL;
constexpr uint64_t kRetryJitterStream(uint64_t job, uint64_t attempt) {
  return job * kRetryJitterStride + attempt;
}

/// Monte-Carlo mismatch streams: (job, corner, sample) packed into a
/// tagged id. The tag occupies the top byte, so a mismatch id can never
/// equal a batch-job id (plain small integer) under the shared batch
/// seed; below it the packing is injective for job < 2^30, corner < 2^6
/// and sample < 2^20 — enforced by bounds-checking callers
/// (stat/mismatch.cpp) and the collision-freedom test.
constexpr uint64_t kMismatchTag = 0xA5ULL << 56;
constexpr uint64_t kMismatchJobBits = 30;
constexpr uint64_t kMismatchCornerBits = 6;
constexpr uint64_t kMismatchSampleBits = 20;
constexpr uint64_t kMismatchStream(uint64_t job, uint64_t corner,
                                   uint64_t sample) {
  return kMismatchTag |
         (job << (kMismatchCornerBits + kMismatchSampleBits)) |
         (corner << kMismatchSampleBits) | sample;
}

}  // namespace ape::streams
