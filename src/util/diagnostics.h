#pragma once
/// \file diagnostics.h
/// Provenance, convergence and budget diagnostics shared by every layer.
///
/// Three small tools that make failures diagnosable and runs bounded:
///
/// - ErrorContext: an RAII scope stack. Each layer that starts a logical
///   unit of work (module -> component -> device -> solver plan) opens a
///   scope; every ape::Error constructed while scopes are open is
///   automatically prefixed with the full chain, so a deep numerical
///   failure names the synthesis candidate, circuit and plan it occurred
///   in without any layer having to re-wrap exceptions.
/// - ConvergenceReport: a record of which recovery plan a DC / transient
///   solve used (gmin rung reached, source steps, Newton iterations,
///   step halvings), filled in when the caller asks for it.
/// - RunBudget: a cooperative budget (wall-clock deadline and/or max
///   cost evaluations). Long-running loops poll it and return their
///   best-so-far result instead of overrunning.
///
/// The scope stack is thread_local: it is the one deliberate exception
/// to the "no global mutable state" convention (DESIGN.md section 5),
/// justified because provenance must cross layers that do not know about
/// each other, and a thread_local stack keeps it race-free.
///
/// THREAD-SAFETY RULE (binding for all estimation / simulation /
/// synthesis paths, enforced since the batch runtime runs them on pool
/// threads — see DESIGN.md section 7): any mutable state reachable from
/// those paths must be (a) owned by the job (locals / value members
/// passed explicitly), (b) thread_local (this file's ErrorContext stack
/// and the FaultInjector slot in src/spice/fault.h are the only two
/// instances), or (c) an explicitly synchronized shared object whose
/// header documents that property (runtime::MemoCache, RunBudget). A
/// worker thread starts with *empty* thread_local state: provenance
/// frames and fault injectors installed on the submitting thread do not
/// follow a job into the pool — the job must re-open its own scope
/// (the runtime's batch entry points do this, stamping each job's
/// index) and, in tests, install its own injector.
///
/// RunBudget is in category (c): charge()/exhausted() are safe to call
/// concurrently from every job of a batch sharing one budget (the
/// evaluation counter is atomic). Note that a *shared* deadline or cap
/// makes results depend on scheduling; deterministic runs use per-job
/// budgets or none (DESIGN.md section 7, "seeding discipline").

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ape {

/// Prefix \p what with the currently open ErrorContext chain (no-op when
/// no scope is open). Called by the ape::Error constructor.
std::string annotate_with_context(const std::string& what);

/// RAII frame on the thread-local provenance stack.
///
///   ErrorContext scope("dc_operating_point('" + ckt.title() + "')");
///
/// Any ape::Error thrown (by any layer) while the scope is alive carries
/// "[outer -> ... -> dc_operating_point('rc')] original message".
class ErrorContext {
public:
  explicit ErrorContext(std::string frame);
  ~ErrorContext();

  ErrorContext(const ErrorContext&) = delete;
  ErrorContext& operator=(const ErrorContext&) = delete;

  /// The chain of open frames joined with " -> " ("" when empty).
  static std::string chain();

  /// Number of open frames on this thread.
  static size_t depth();
};

// ---------------------------------------------------------------------------

/// Counters from the compiled MNA kernel (src/spice/kernel.h): how much
/// work the stamp-program/workspace machinery avoided relative to the
/// naive restamp-everything-and-reallocate path, plus the workspace
/// footprint. Accumulated per analysis call and surfaced through
/// ConvergenceReport (DC/transient) or directly (AC), then aggregated by
/// bench_ape_speed / bench_spice_kernel into the BENCH_*.json records.
struct KernelStats {
  long baseline_builds = 0;      ///< linear (G0, RHS0) baselines stamped
  long baseline_restores = 0;    ///< memcpy restorations of a baseline
  long linear_stamps_skipped = 0;///< per-device restamps avoided by restores
  long nonlinear_stamps = 0;     ///< per-iteration nonlinear device restamps
  long factorizations = 0;       ///< in-place LU factorizations
  long solves = 0;               ///< forward/back substitution passes
  long ac_points_fused = 0;      ///< AC points assembled as fused G + jwC
  long ac_points_virtual = 0;    ///< AC points via per-device virtual stamps
                                 ///< (fallback for non-affine-in-w devices)
  size_t workspace_bytes = 0;    ///< bytes of preallocated solver workspace
  long workspace_regrowths = 0;  ///< times a workspace buffer grew after
                                 ///< setup (0 == allocation-free inner loops)

  /// Merge counters from another analysis (max of workspace footprints).
  void accumulate(const KernelStats& o);

  /// One-line human-readable summary for logs / bench output.
  std::string summary() const;
};

// ---------------------------------------------------------------------------

/// Which plan finally converged a DC operating-point solve.
enum class DcPlan {
  None,            ///< no solve recorded / nothing converged
  GminLadder,      ///< plain gmin stepping (Plan A)
  SourceStepping,  ///< source stepping then the gmin ladder (Plan B)
};

const char* to_string(DcPlan plan);

/// Filled by dc_operating_point() / transient() when the caller passes a
/// report pointer in the options. All counters are totals for the call.
struct ConvergenceReport {
  bool converged = false;
  DcPlan plan = DcPlan::None;
  double final_gmin = 0.0;          ///< last gmin rung that converged
  int gmin_rungs_completed = 0;     ///< rungs of the final ladder that converged
  int source_steps_completed = 0;   ///< source-stepping rungs that converged
  long newton_iterations = 0;       ///< Newton iterations across all rungs
  int lu_failures = 0;              ///< singular-matrix LU solves observed
  int nonfinite_rejections = 0;     ///< fail-fast aborts on non-finite solutions
  int step_halvings = 0;            ///< transient local dt refinements
  int convergence_vetoes = 0;       ///< injected non-convergence (tests only)
  /// Compiled-kernel counters for the call (stamps skipped, in-place
  /// factorizations, workspace bytes); see KernelStats.
  KernelStats kernel;

  /// One-line human-readable summary for logs / error messages.
  std::string summary() const;
};

// ---------------------------------------------------------------------------

/// Cooperative run budget: a wall-clock deadline and/or a cap on cost
/// evaluations. Unlimited by default. Loops call charge() per unit of
/// work and stop (returning best-so-far) once exhausted() is true;
/// nothing is enforced preemptively, so a budget can never corrupt state
/// mid-operation.
class RunBudget {
public:
  RunBudget() = default;  ///< unlimited

  /// Budget that expires \p seconds from now.
  static RunBudget with_deadline(double seconds);
  /// Budget allowing at most \p n charged evaluations.
  static RunBudget with_evaluations(long n);

  void set_deadline_in(double seconds);
  void set_max_evaluations(long n);

  /// Record \p n units of work. Returns true while within budget.
  /// Thread-safe: concurrent jobs may charge one shared budget.
  bool charge(long n = 1);

  /// True once the deadline passed or the evaluation cap is reached.
  bool exhausted() const;

  long evaluations_used() const { return used_.load(std::memory_order_relaxed); }
  long max_evaluations() const { return max_evals_; }

  /// Seconds until the deadline (+inf when none; <= 0 when expired).
  double seconds_left() const;

  // Copyable so factory functions return by value; configuration is
  // copied and the usage counter snapshot carries over. Copying a budget
  // that other threads are actively charging is not supported.
  RunBudget(const RunBudget& o)
      : deadline_(o.deadline_),
        has_deadline_(o.has_deadline_),
        max_evals_(o.max_evals_),
        used_(o.used_.load(std::memory_order_relaxed)) {}
  RunBudget& operator=(const RunBudget& o) {
    deadline_ = o.deadline_;
    has_deadline_ = o.has_deadline_;
    max_evals_ = o.max_evals_;
    used_.store(o.used_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

private:
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  long max_evals_ = -1;  ///< -1 = uncapped
  std::atomic<long> used_{0};
};

}  // namespace ape
