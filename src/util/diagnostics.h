#pragma once
/// \file diagnostics.h
/// Provenance, convergence and budget diagnostics shared by every layer.
///
/// Three small tools that make failures diagnosable and runs bounded:
///
/// - ErrorContext: an RAII scope stack. Each layer that starts a logical
///   unit of work (module -> component -> device -> solver plan) opens a
///   scope; every ape::Error constructed while scopes are open is
///   automatically prefixed with the full chain, so a deep numerical
///   failure names the synthesis candidate, circuit and plan it occurred
///   in without any layer having to re-wrap exceptions.
/// - ConvergenceReport: a record of which recovery plan a DC / transient
///   solve used (gmin rung reached, source steps, Newton iterations,
///   step halvings), filled in when the caller asks for it.
/// - RunBudget: a cooperative budget (wall-clock deadline and/or max
///   cost evaluations, optionally wired to a CancelToken). Long-running
///   loops poll it and return their best-so-far result instead of
///   overrunning.
/// - CancelToken: a sticky, thread-safe cancellation flag. A RunBudget
///   with an attached token reports exhausted() as soon as the token
///   fires, so every budget poll site doubles as a cancellation point.
/// - ScopedJobBudget: RAII installation of a *job-wide* budget on the
///   current thread. Solver loops poll the ambient budget in addition to
///   the one in their options, so a supervisor can impose a deadline on
///   an entire job (estimate -> anneal -> simulator verification)
///   without threading a pointer through every layer.
/// - ScopedSolverRelaxation: RAII installation of relaxed solver
///   tolerances on the current thread — the "relaxed" rung of the
///   supervision retry ladder (DESIGN.md section 10). dc_operating_point
///   and transient() widen their tolerances and stop the gmin ladder at
///   a higher floor while a relaxation is installed.
///
/// The scope stack is thread_local: it is a deliberate exception to the
/// "no global mutable state" convention (DESIGN.md section 5), justified
/// because provenance must cross layers that do not know about each
/// other, and a thread_local stack keeps it race-free.
///
/// THREAD-SAFETY RULE (binding for all estimation / simulation /
/// synthesis paths, enforced since the batch runtime runs them on pool
/// threads — see DESIGN.md section 7): any mutable state reachable from
/// those paths must be (a) owned by the job (locals / value members
/// passed explicitly), (b) thread_local (this file's ErrorContext stack,
/// ambient-budget, solver-relaxation, kernel-stats-sink and
/// numeric-health-mode slots, plus the FaultInjector slot in
/// src/spice/fault.h and the KernelPolicy slot in src/spice/kernel.h,
/// are the only seven
/// instances), or (c) an explicitly synchronized shared object whose
/// header documents that property (runtime::MemoCache, RunBudget,
/// CancelToken, runtime::QuarantineRegistry). A worker thread starts
/// with *empty* thread_local state: provenance frames, fault injectors,
/// ambient budgets and relaxations installed on the submitting thread do
/// not follow a job into the pool — the job must re-open its own scope
/// (the runtime's batch entry points do this, stamping each job's
/// index) and, in tests, install its own injector.
///
/// RunBudget is in category (c): charge()/exhausted() are safe to call
/// concurrently from every job of a batch sharing one budget (the
/// evaluation counter is atomic). Note that a *shared* deadline or cap
/// makes results depend on scheduling; deterministic runs use per-job
/// budgets or none (DESIGN.md section 7, "seeding discipline").

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/numeric_health.h"

namespace ape {

/// Prefix \p what with the currently open ErrorContext chain (no-op when
/// no scope is open). Called by the ape::Error constructor.
std::string annotate_with_context(const std::string& what);

/// RAII frame on the thread-local provenance stack.
///
///   ErrorContext scope("dc_operating_point('" + ckt.title() + "')");
///
/// Any ape::Error thrown (by any layer) while the scope is alive carries
/// "[outer -> ... -> dc_operating_point('rc')] original message".
class ErrorContext {
public:
  explicit ErrorContext(std::string frame);
  ~ErrorContext();

  ErrorContext(const ErrorContext&) = delete;
  ErrorContext& operator=(const ErrorContext&) = delete;

  /// The chain of open frames joined with " -> " ("" when empty).
  static std::string chain();

  /// Number of open frames on this thread.
  static size_t depth();
};

// ---------------------------------------------------------------------------

/// Counters from the compiled MNA kernel (src/spice/kernel.h): how much
/// work the stamp-program/workspace machinery avoided relative to the
/// naive restamp-everything-and-reallocate path, plus the workspace
/// footprint. Accumulated per analysis call and surfaced through
/// ConvergenceReport (DC/transient) or directly (AC), then aggregated by
/// bench_ape_speed / bench_spice_kernel into the BENCH_*.json records.
struct KernelStats {
  long baseline_builds = 0;      ///< linear (G0, RHS0) baselines stamped
  long baseline_restores = 0;    ///< memcpy restorations of a baseline
  long linear_stamps_skipped = 0;///< per-device restamps avoided by restores
  long nonlinear_stamps = 0;     ///< per-iteration nonlinear device restamps
  long factorizations = 0;       ///< in-place LU factorizations
  long solves = 0;               ///< forward/back substitution passes
  long ac_points_fused = 0;      ///< AC points assembled as fused G + jwC
  long ac_points_virtual = 0;    ///< AC points via per-device virtual stamps
                                 ///< (fallback for non-affine-in-w devices)
  size_t workspace_bytes = 0;    ///< bytes of preallocated solver workspace
  long workspace_regrowths = 0;  ///< times a workspace buffer grew after
                                 ///< setup (0 == allocation-free inner loops)
  // Sparse-path counters (src/util/sparse.h; 0 on dense-only runs).
  long symbolic_analyses = 0;    ///< Markowitz order-and-factor passes
  long symbolic_reuses = 0;      ///< refactors replaying a cached program
  long numeric_refactors = 0;    ///< sparse numeric factorizations (total)
  long sparse_fallbacks = 0;     ///< sparse solves rescued by the dense path
  size_t sparse_nnz = 0;         ///< structural nonzeros (max over workspaces)
  size_t sparse_fill_in = 0;     ///< L+U fill entries (max over workspaces)
  // Numerical-health counters (DESIGN.md section 15; 0 on healthy runs).
  long refinement_solves = 0;    ///< solves that ran iterative refinement
  long refinement_iterations = 0;///< total refinement correction steps
  long equilibrated_solves = 0;  ///< solves under row/column equilibration
  long numeric_recoveries = 0;   ///< solves that landed only via a recovery
                                 ///< rung (equilibrate / kernel switch)
  double cond_estimate_max = 0.0;///< worst Hager 1-norm estimate (gauge)
  double pivot_growth_max = 0.0; ///< worst pivot growth factor (gauge)
  double residual_norm_max = 0.0;///< worst measured relative residual (gauge)

  /// Merge counters from another analysis (max of workspace footprints,
  /// sparse pattern sizes and health gauges; everything else sums).
  void accumulate(const KernelStats& o);

  /// One-line human-readable summary for logs / bench output.
  std::string summary() const;
};

// ---------------------------------------------------------------------------

/// Which plan finally converged a DC operating-point solve.
enum class DcPlan {
  None,            ///< no solve recorded / nothing converged
  GminLadder,      ///< plain gmin stepping (Plan A)
  SourceStepping,  ///< source stepping then the gmin ladder (Plan B)
};

const char* to_string(DcPlan plan);

/// Filled by dc_operating_point() / transient() when the caller passes a
/// report pointer in the options. All counters are totals for the call.
struct ConvergenceReport {
  bool converged = false;
  DcPlan plan = DcPlan::None;
  double final_gmin = 0.0;          ///< last gmin rung that converged
  int gmin_rungs_completed = 0;     ///< rungs of the final ladder that converged
  int source_steps_completed = 0;   ///< source-stepping rungs that converged
  long newton_iterations = 0;       ///< Newton iterations across all rungs
  int lu_failures = 0;              ///< singular-matrix LU solves observed
  int nonfinite_rejections = 0;     ///< fail-fast aborts on non-finite solutions
  int step_halvings = 0;            ///< transient local dt refinements
  int convergence_vetoes = 0;       ///< injected non-convergence (tests only)
  /// True when the solve ran under an ambient SolverRelaxation (the
  /// supervision ladder's relaxed rung): tolerances were widened and the
  /// gmin ladder stopped at the relaxed floor.
  bool relaxed_tolerances = false;
  /// Compiled-kernel counters for the call (stamps skipped, in-place
  /// factorizations, workspace bytes); see KernelStats.
  KernelStats kernel;
  /// Numerical health of the final solve (condition estimate, pivot
  /// growth, refinement outcome; see numeric_health.h). Zero gauges mean
  /// the solve was healthy enough that nothing beyond pivot-growth
  /// monitoring ran.
  NumericHealth health;

  /// One-line human-readable summary for logs / error messages.
  std::string summary() const;
};

// ---------------------------------------------------------------------------

/// Sticky, thread-safe cancellation flag. cancel() may be called from any
/// thread (a signal handler, a supervisor, a UI); workers observe it
/// cooperatively through an attached RunBudget or by polling cancelled()
/// directly. Once fired it never resets — create a new token per run.
class CancelToken {
public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> flag_{false};
};

/// Cooperative run budget: a wall-clock deadline and/or a cap on cost
/// evaluations, optionally wired to a CancelToken. Unlimited by default.
/// Loops call charge() per unit of work and stop (returning best-so-far)
/// once exhausted() is true; nothing is enforced preemptively, so a
/// budget can never corrupt state mid-operation.
class RunBudget {
public:
  RunBudget() = default;  ///< unlimited

  /// Budget that expires \p seconds from now.
  static RunBudget with_deadline(double seconds);
  /// Budget allowing at most \p n charged evaluations.
  static RunBudget with_evaluations(long n);

  void set_deadline_in(double seconds);
  void set_max_evaluations(long n);

  /// Attach a cancellation token (not owned; must outlive the budget):
  /// exhausted() also returns true once the token fires, so every budget
  /// poll site becomes a cancellation point.
  void attach_cancel(const CancelToken* token) { cancel_ = token; }

  /// Record \p n units of work. Returns true while within budget.
  /// Thread-safe: concurrent jobs may charge one shared budget.
  bool charge(long n = 1);

  /// True once the deadline passed, the evaluation cap is reached, or an
  /// attached CancelToken fired.
  bool exhausted() const;

  /// Why exhausted() holds: "cancelled", "deadline exceeded" or
  /// "evaluation cap reached" ("within budget" otherwise). Checked in
  /// that priority order so a cancelled run reports the cancellation
  /// even when its deadline also lapsed.
  const char* exhaust_reason() const;

  /// True when an attached CancelToken fired (regardless of deadline).
  bool cancelled() const { return cancel_ != nullptr && cancel_->cancelled(); }

  long evaluations_used() const { return used_.load(std::memory_order_relaxed); }
  long max_evaluations() const { return max_evals_; }

  /// Seconds until the deadline (+inf when none; <= 0 when expired).
  double seconds_left() const;

  // Copyable so factory functions return by value; configuration is
  // copied and the usage counter snapshot carries over. Copying a budget
  // that other threads are actively charging is not supported.
  RunBudget(const RunBudget& o)
      : deadline_(o.deadline_),
        has_deadline_(o.has_deadline_),
        max_evals_(o.max_evals_),
        cancel_(o.cancel_),
        used_(o.used_.load(std::memory_order_relaxed)) {}
  RunBudget& operator=(const RunBudget& o) {
    deadline_ = o.deadline_;
    has_deadline_ = o.has_deadline_;
    max_evals_ = o.max_evals_;
    cancel_ = o.cancel_;
    used_.store(o.used_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

private:
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  long max_evals_ = -1;  ///< -1 = uncapped
  const CancelToken* cancel_ = nullptr;  ///< optional, not owned
  std::atomic<long> used_{0};
};

// ---------------------------------------------------------------------------
// Ambient (thread-local) job budget.

/// RAII installation of \p budget as the current thread's ambient job
/// budget. While installed, every solver loop that polls a RunBudget
/// (newton ladders, dc_sweep, transient stepping, ac_analysis points,
/// the anneal loop) also polls this one — the supervision layer's way of
/// imposing one wall-clock deadline / cancellation point on an entire
/// job without threading options through every layer. Nesting replaces
/// the budget and restores the previous one on scope exit; the budget is
/// not owned and must outlive the scope.
class ScopedJobBudget {
public:
  explicit ScopedJobBudget(const RunBudget& budget);
  ~ScopedJobBudget();

  ScopedJobBudget(const ScopedJobBudget&) = delete;
  ScopedJobBudget& operator=(const ScopedJobBudget&) = delete;

private:
  const RunBudget* previous_;
};

/// The ambient budget installed on this thread (nullptr when none).
const RunBudget* ambient_budget();

/// The first exhausted budget of {\p local, the thread's ambient budget},
/// or nullptr when both are within budget (or absent). Poll sites use
/// the returned budget's exhaust_reason() to name why they stopped.
const RunBudget* exhausted_budget(const RunBudget* local);

// ---------------------------------------------------------------------------
// Ambient (thread-local) solver relaxation.

/// Relaxed-solver parameters for the "relaxed" rung of the supervision
/// retry ladder: a second attempt at a non-convergent job re-runs with
/// tolerances widened by tol_factor and the gmin ladder stopped at
/// gmin_floor (a slightly damped but solvable system) instead of
/// descending to the ideal 1e-12 rung.
struct SolverRelaxation {
  double tol_factor = 10.0;  ///< multiplies reltol / vntol / abstol
  double gmin_floor = 1e-10; ///< lowest gmin rung attempted while relaxed
  int extra_step_halvings = 4; ///< added to TranOptions::max_step_halvings
};

/// RAII installation of a SolverRelaxation on the current thread (same
/// discipline as ScopedJobBudget: nesting replaces, exit restores, the
/// object is not owned).
class ScopedSolverRelaxation {
public:
  explicit ScopedSolverRelaxation(const SolverRelaxation& relax);
  ~ScopedSolverRelaxation();

  ScopedSolverRelaxation(const ScopedSolverRelaxation&) = delete;
  ScopedSolverRelaxation& operator=(const ScopedSolverRelaxation&) = delete;

private:
  const SolverRelaxation* previous_;
};

/// The relaxation installed on this thread (nullptr in normal runs).
const SolverRelaxation* ambient_relaxation();

// ---------------------------------------------------------------------------
// Ambient (thread-local) kernel-stats sink.

/// RAII installation of a KernelStats accumulator on the current thread.
/// While installed, every solver workspace (SolveWorkspace / AcKernel in
/// src/spice/kernel.h) accumulates its counters into the sink when it is
/// destroyed, in addition to whatever report the analysis call fills in.
/// This is how the batch runtime attributes kernel work to jobs whose
/// entry points (estimate_opamp, synthesis anneal, corner cells) never
/// expose a ConvergenceReport: the job wrapper installs a sink around
/// the job body and merges the result into BatchStats under a lock.
/// Same discipline as ScopedJobBudget: nesting replaces, scope exit
/// restores, the sink is not owned and must outlive the scope.
class ScopedKernelStatsSink {
public:
  explicit ScopedKernelStatsSink(KernelStats& sink);
  ~ScopedKernelStatsSink();

  ScopedKernelStatsSink(const ScopedKernelStatsSink&) = delete;
  ScopedKernelStatsSink& operator=(const ScopedKernelStatsSink&) = delete;

private:
  KernelStats* previous_;
};

/// The sink installed on this thread (nullptr when none).
KernelStats* ambient_kernel_sink();

// ---------------------------------------------------------------------------
// Ambient (thread-local) numerical-health mode.

/// How aggressively the solver workspaces run the numerical-health layer
/// (numeric_health.h, DESIGN.md section 15).
enum class NumericHealthMode {
  Off,   ///< no monitoring at all (bench baseline arm)
  Auto,  ///< monitor pivot growth; estimate condition and refine only
         ///< when growth / condition thresholds trip (the default)
  Force, ///< always equilibrate, estimate condition and refine — the
         ///< supervision ladder's numeric-recovery rung
};

/// RAII installation of a NumericHealthMode on the current thread (same
/// discipline as ScopedSolverRelaxation: nesting replaces, exit
/// restores). The supervision ladder installs Force for its
/// numeric-recovery rung; bench_ape_speed installs Off for its baseline
/// timing arm.
class ScopedNumericHealthMode {
public:
  explicit ScopedNumericHealthMode(NumericHealthMode mode);
  ~ScopedNumericHealthMode();

  ScopedNumericHealthMode(const ScopedNumericHealthMode&) = delete;
  ScopedNumericHealthMode& operator=(const ScopedNumericHealthMode&) = delete;

private:
  NumericHealthMode previous_;
};

/// The mode installed on this thread (Auto when none was installed).
NumericHealthMode ambient_health_mode();

}  // namespace ape
