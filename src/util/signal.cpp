#include "src/util/signal.h"

#include <csignal>
#include <cstdint>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>

namespace ape::util {
namespace {

std::atomic<CancelToken*> g_token{nullptr};
std::atomic<int> g_last_signal{0};
int g_wake_pipe[2] = {-1, -1};

extern "C" void handle_cancel_signal(int signum) {
  // Re-delivery escalates: restore the default disposition so a second
  // SIGINT/SIGTERM kills the process even if the drain is stuck.
  std::signal(signum, SIG_DFL);
  g_last_signal.store(signum, std::memory_order_relaxed);
  if (CancelToken* token = g_token.load(std::memory_order_relaxed)) {
    token->cancel();  // lock-free atomic store: async-signal-safe
  }
  if (g_wake_pipe[1] >= 0) {
    const char byte = 1;
    // A full pipe just means wake-ups are already pending.
    [[maybe_unused]] ssize_t n = write(g_wake_pipe[1], &byte, 1);
  }
}

}  // namespace

void install_cancel_on_signal(CancelToken& token) {
  g_token.store(&token, std::memory_order_relaxed);
  if (g_wake_pipe[0] < 0) {
    if (pipe(g_wake_pipe) == 0) {
      for (int fd : g_wake_pipe) {
        fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        fcntl(fd, F_SETFD, FD_CLOEXEC);
      }
    } else {
      g_wake_pipe[0] = g_wake_pipe[1] = -1;  // degrade to token-only
    }
  }
  struct sigaction sa = {};
  sa.sa_handler = handle_cancel_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocked accept/read calls return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
}

int signal_wake_fd() { return g_wake_pipe[0]; }

int last_signal() { return g_last_signal.load(std::memory_order_relaxed); }

}  // namespace ape::util
