#pragma once
/// \file numeric_health.h
/// Numerical-health substrate shared by both MNA kernels (DESIGN.md
/// section 15): equilibration, condition estimation, iterative
/// refinement, and the unified singularity diagnostic.
///
/// The estimator is only as trustworthy as the solves behind it, and the
/// PVT corner skews of the statistical subsystem deliberately produce
/// badly scaled systems (kOhm next to GOhm, fF next to uF). This file
/// gives every solve path a quantified answer to "how many digits did
/// that factorization actually deliver?" and the tools to win digits
/// back when the answer is "not enough":
///
///  - EQUILIBRATION: row/column scale factors snapped to powers of two,
///    so applying and removing them is bit-exact — the stamped matrix
///    and RHS can be scaled in place around a factorization and restored
///    without perturbing a single stamp bit.
///  - CONDITION ESTIMATE: Hager's 1-norm estimator (the LAPACK xxCON
///    family algorithm) — a handful of solve / transpose-solve probes
///    against the existing factorization, no refactorization.
///  - ITERATIVE REFINEMENT: fixed-precision residual correction with a
///    residual-based acceptance test; cheap (one matvec + one solve per
///    iteration, factors reused) and only triggered when pivot growth or
///    the condition estimate says the factorization lost digits.
///
/// Everything here is allocation-disciplined: callers own the scratch
/// vectors, so the solver workspaces can fold them into their audited
/// setup bytes (see SolveWorkspace::measured_bytes).
///
/// Layering: this header depends on nothing above src/util and pulls in
/// no ape headers at all, so diagnostics.h can embed NumericHealth in
/// ConvergenceReport and matrix.h can emit the unified singularity
/// message without an include cycle.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ape {

/// Per-solve numerical-health record surfaced through
/// ConvergenceReport/KernelStats (DESIGN.md section 15). Zero-valued
/// gauges mean "not measured" — on healthy systems only pivot growth is
/// tracked, everything else stays off.
struct NumericHealth {
  double cond_estimate = 0.0;    ///< Hager 1-norm estimate (0 = not run)
  double pivot_growth = 0.0;     ///< max|LU| / max|A| of the factorization
  double residual_norm = 0.0;    ///< final relative residual (0 = not run)
  int refinement_iterations = 0; ///< refinement correction steps applied
  bool equilibrated = false;     ///< row/col scaling was applied
  bool recovered = false;        ///< solve needed a recovery rung to land

  /// One-line human-readable form for logs and error messages.
  std::string summary() const;
};

namespace health {

/// Pivot growth beyond this triggers the condition estimate (growth is
/// tracked on every factorization; it is nearly free).
constexpr double kPivotGrowthTrigger = 1e7;
/// Condition estimate beyond this triggers iterative refinement: with
/// cond ~ 1e10 a double solve has ~6 trustworthy digits left.
constexpr double kCondTrigger = 1e10;
/// Refinement acceptance: relative residual at or below this is "solved
/// to working precision" for an MNA system.
constexpr double kResidualTarget = 1e-12;
/// Fixed-precision refinement cap — beyond this the factorization is too
/// damaged for refinement and the caller escalates (equilibrate, switch
/// kernel, gmin bump).
constexpr int kMaxRefineIters = 4;
/// Shared dense/sparse pivot-collapse tolerance: |pivot| <= max|a| * this
/// declares the factorization singular.
constexpr double kSingularRelTol = 1e-300;

}  // namespace health

/// The unified singularity diagnostic (dense and sparse kernels throw
/// the same structured shape, so retry classification and tests never
/// depend on which kernel ran):
///   "<kernel> LU: singular pivot at step K of N (|pivot| <= 1.2e-297;
///    max|a| 1.2e+03, rel_tol 1e-300)"
std::string singular_message(const char* kernel, size_t step, size_t dim,
                             double scale, double rel_tol);

/// Nearest power of two to \p magnitude, inverted — the scale that maps
/// a row/column of that magnitude to O(1). Returns 1.0 for zero or
/// non-finite magnitudes (degenerate rows are left alone).
double pow2_scale(double magnitude);

/// Compute power-of-two row/column equilibration scales for a dense
/// row-major n-by-n matrix (rows first, then columns of the row-scaled
/// matrix). Returns false — and leaves the scales all-ones — when the
/// matrix is empty or any scale would be non-finite (overflow guard);
/// callers then skip equilibration entirely.
template <typename T>
bool compute_equilibration(const T* a, size_t n, std::vector<double>& row_scale,
                           std::vector<double>& col_scale);

/// CSR variant of compute_equilibration (pattern slots + values).
template <typename T>
bool compute_equilibration_csr(const int* row_ptr, const int* cols,
                               const T* vals, size_t n,
                               std::vector<double>& row_scale,
                               std::vector<double>& col_scale);

/// Apply a_ij *= row_scale[i] * col_scale[j] in place. Exact (and thus
/// exactly reversible via unscale_dense) because the scales are powers
/// of two.
template <typename T>
void scale_dense(T* a, size_t n, const std::vector<double>& row_scale,
                 const std::vector<double>& col_scale);

/// Undo scale_dense bit-exactly (divide by the same power-of-two scales).
template <typename T>
void unscale_dense(T* a, size_t n, const std::vector<double>& row_scale,
                   const std::vector<double>& col_scale);

/// CSR variant of scale_dense (no unscale needed: sparse value arrays
/// are regathered from the stamps before every factorization).
template <typename T>
void scale_csr(const int* row_ptr, const int* cols, T* vals, size_t n,
               const std::vector<double>& row_scale,
               const std::vector<double>& col_scale);

/// v_i *= s_i (use with the inverse scales to unscale; powers of two
/// make either direction exact).
template <typename T>
void scale_vector(std::vector<T>& v, const std::vector<double>& s);

/// v_i /= s_i.
template <typename T>
void unscale_vector(std::vector<T>& v, const std::vector<double>& s);

/// 1-norm (max column absolute sum) of a dense row-major n-by-n matrix.
template <typename T>
double norm1_dense(const T* a, size_t n, std::vector<double>& col_sums);

/// 1-norm of a CSR matrix.
template <typename T>
double norm1_csr(const int* row_ptr, const int* cols, const T* vals, size_t n,
                 std::vector<double>& col_sums);

/// Infinity norm (max row absolute sum) of a dense row-major matrix.
template <typename T>
double norm_inf_dense(const T* a, size_t n);

/// Infinity norm of a CSR matrix.
template <typename T>
double norm_inf_csr(const int* row_ptr, const T* vals, size_t n);

/// max_i |v_i|.
template <typename T>
double norm_inf_vec(const std::vector<T>& v);

/// Hager's 1-norm condition estimate: ||A||_1 * est(||A^-1||_1), where
/// the inverse norm is probed through the callbacks. \p solve overwrites
/// its argument with A^-1 v; \p solve_t with A^-T v (plain transpose,
/// no conjugation — the complex instantiation conjugates internally to
/// form the A^-H probe Higham's algorithm needs). \p work is
/// caller-owned scratch (resized to n). Returns +inf when a probe solve
/// produces non-finite values.
template <typename T>
double condest_1norm(size_t n, double anorm1,
                     const std::function<void(std::vector<T>&)>& solve,
                     const std::function<void(std::vector<T>&)>& solve_t,
                     std::vector<T>& work);

/// Outcome of one refine_solution run.
struct RefineOutcome {
  double residual = 0.0;  ///< final relative residual
  int iterations = 0;     ///< correction steps applied
  bool converged = false; ///< residual reached health::kResidualTarget
  bool diverged = false;  ///< residual grew — factorization unusable
};

/// Fixed-precision iterative refinement of A x = b. \p matvec computes
/// y = A v against the ORIGINAL (unequilibrated) matrix; \p correct
/// solves A d = r through the current factorization (the caller handles
/// equilibration inside the callback). The relative residual is
/// ||b - Ax||_inf / (||A||_inf ||x||_inf + ||b||_inf); iteration stops
/// at health::kResidualTarget, on stagnation, on divergence (x is then
/// rolled back to its best iterate), or after health::kMaxRefineIters.
template <typename T>
RefineOutcome refine_solution(
    const std::vector<T>& b, std::vector<T>& x,
    const std::function<void(const std::vector<T>&, std::vector<T>&)>& matvec,
    const std::function<void(const std::vector<T>&, std::vector<T>&)>& correct,
    double anorm_inf, std::vector<T>& resid, std::vector<T>& dx,
    std::vector<T>& best_x);

/// One residual measurement without correction (the acceptance probe).
template <typename T>
double relative_residual(
    const std::vector<T>& b, const std::vector<T>& x,
    const std::function<void(const std::vector<T>&, std::vector<T>&)>& matvec,
    double anorm_inf, std::vector<T>& resid);

}  // namespace ape
