#pragma once
/// \file signal.h
/// Process-signal to CancelToken plumbing (DESIGN.md sections 10-11):
/// the one place in the codebase that touches sigaction, so every
/// long-running entry point (ape_batch, the ape_serve daemon) shares the
/// same delivery discipline.
///
/// install_cancel_on_signal() registers handlers for SIGINT and SIGTERM
/// that do exactly three async-signal-safe things:
///
///  1. fire the registered CancelToken (a lock-free atomic store), so
///     every cooperative budget poll site in the solvers doubles as a
///     shutdown point;
///  2. record the signal number (async-signal-safe atomic store) for the
///     caller's exit diagnostics;
///  3. write one byte to a self-pipe, so a poll()-based accept loop
///     blocked in the kernel wakes immediately instead of at its next
///     timeout.
///
/// A second delivery of the same signal restores the default disposition
/// first, so a stuck drain can always be killed the classic way (two
/// Ctrl-C). Installation is idempotent and process-wide; the registered
/// token must outlive the process' signal handling (in practice: main()
/// scope). SIGPIPE is set to SIG_IGN by install_cancel_on_signal() —
/// both the daemon and the client treat write-to-closed-peer as an
/// ordinary EPIPE error return, never a process kill.

#include "src/util/diagnostics.h"

namespace ape::util {

/// Install SIGINT/SIGTERM handlers that fire \p token (not owned; must
/// outlive signal delivery) and ignore SIGPIPE. Idempotent; replaces the
/// token on repeat calls.
void install_cancel_on_signal(CancelToken& token);

/// Read end of the self-pipe written on each delivery (-1 before
/// install_cancel_on_signal). poll() it alongside listening sockets;
/// drain it with read() after wakeup.
int signal_wake_fd();

/// The last delivered signal number (0 when none since install).
int last_signal();

}  // namespace ape::util
