#pragma once
/// \file rng.h
/// Deterministic random-number wrapper used by the annealing engine.
///
/// A thin facade over std::mt19937_64 so that every stochastic component
/// takes an explicit, seedable generator — benches and tests stay
/// reproducible run-to-run.

#include <cstdint>
#include <random>

namespace ape {

class Rng {
public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : gen_(seed) {}

  /// Uniform in [0, 1).
  double uniform() { return dist_(gen_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  size_t index(size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(gen_);
  }

  /// Standard normal deviate.
  double gauss() { return normal_(gen_); }

  std::mt19937_64& engine() { return gen_; }

private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace ape
