#pragma once
/// \file rng.h
/// Deterministic random-number wrapper used by the annealing engine.
///
/// A thin facade over std::mt19937_64 so that every stochastic component
/// takes an explicit, seedable generator — benches and tests stay
/// reproducible run-to-run.
///
/// For parallel work (batch jobs, anneal restarts) a generator is never
/// shared: each unit of work derives its own decorrelated stream with
/// derive_stream()/split(), so results are independent of how many
/// threads execute the batch and bit-identical run-to-run.

#include <cstdint>
#include <random>

namespace ape {

class Rng {
public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
      : gen_(seed), seed_(seed) {}

  /// Derive the seed of sub-stream \p stream_id of a generator seeded
  /// with \p seed: a splitmix64 finalizer over (seed, stream_id), so
  /// neighbouring stream ids (0, 1, 2, ...) give statistically
  /// decorrelated, reproducible streams. Pure function of its inputs —
  /// batch job i and anneal restart r always see the same seed no
  /// matter which thread runs them.
  static uint64_t derive_stream(uint64_t seed, uint64_t stream_id) {
    uint64_t z = seed + 0x9e3779b97f4a7c15ull * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// A fresh generator for sub-stream \p stream_id, derived from this
  /// generator's original seed (not its current state — splitting is
  /// insensitive to how many variates were already drawn).
  Rng split(uint64_t stream_id) const {
    return Rng(derive_stream(seed_, stream_id));
  }

  /// The seed this generator was constructed with.
  uint64_t seed() const { return seed_; }

  /// Uniform in [0, 1).
  double uniform() { return dist_(gen_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  size_t index(size_t n) {
    return std::uniform_int_distribution<size_t>(0, n - 1)(gen_);
  }

  /// Standard normal deviate.
  double gauss() { return normal_(gen_); }

  std::mt19937_64& engine() { return gen_; }

private:
  std::mt19937_64 gen_;
  uint64_t seed_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace ape
