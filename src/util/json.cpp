#include "src/util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/util/error.h"

namespace ape::json {
namespace {

[[noreturn]] void fail(size_t pos, const std::string& what) {
  throw ParseError("json: " + what + " at byte " + std::to_string(pos));
}

/// Recursive-descent parser over the whole document string.
class Parser {
public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value document() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail(pos_, "trailing garbage");
    return v;
  }

private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail(pos_, "unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "', got '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Value{};
      default: return number();
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail(pos_, "unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail(pos_, "unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail(pos_, "truncated \\u escape");
          const std::string hex = s_.substr(pos_, 4);
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          // Checkpoints only escape control bytes; anything else would
          // need full UTF-16 handling this reader does not promise.
          if (cp < 0 || cp > 0x7f) fail(pos_, "non-ASCII \\u escape");
          out += static_cast<char>(cp);
          break;
        }
        default: fail(pos_ - 1, "bad escape");
      }
    }
  }

  Value number() {
    const size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail(pos_, "expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number '" + tok + "'");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = d;
    return v;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Value::as_bool() const {
  if (kind != Kind::Bool) throw ParseError("json: expected a bool");
  return boolean;
}

double Value::as_number() const {
  if (kind != Kind::Number) throw ParseError("json: expected a number");
  return number;
}

long Value::as_long() const { return static_cast<long>(as_number()); }

const std::string& Value::as_string() const {
  if (kind != Kind::String) throw ParseError("json: expected a string");
  return str;
}

double Value::as_hex_double() const { return parse_hex_double(as_string()); }

Value parse(const std::string& text) { return Parser(text).document(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_hex_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || end == s.c_str() || *end != '\0') {
    throw ParseError("json: bad hex-float '" + s + "'");
  }
  return v;
}

}  // namespace ape::json
