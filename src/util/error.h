#pragma once
/// \file error.h
/// Error hierarchy for the APE library.
///
/// All library errors derive from ape::Error (itself a std::runtime_error)
/// so callers can catch either the whole family or a specific condition.
///
/// Every ape::Error is automatically prefixed with the provenance chain
/// of the ErrorContext scopes open on the throwing thread (see
/// diagnostics.h), so deep failures name the module / component / device
/// / solver plan they occurred in without manual re-wrapping.

#include <stdexcept>
#include <string>

#include "src/util/diagnostics.h"

namespace ape {

/// Base class of every exception thrown by the APE library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what)
      : std::runtime_error(annotate_with_context(what)) {}
};

/// A user specification cannot be met (e.g. requested gm at the given
/// bias current implies a non-physical device).
class SpecError : public Error {
public:
  explicit SpecError(const std::string& what) : Error(what) {}
};

/// Malformed netlist / model card input.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A numerical procedure failed (singular matrix, Newton divergence, ...).
class NumericError : public Error {
public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// Request references an unknown topology / component / parameter.
class LookupError : public Error {
public:
  explicit LookupError(const std::string& what) : Error(what) {}
};

}  // namespace ape
