#pragma once
/// \file error.h
/// Error hierarchy for the APE library.
///
/// All library errors derive from ape::Error (itself a std::runtime_error)
/// so callers can catch either the whole family or a specific condition.
///
/// Every ape::Error is automatically prefixed with the provenance chain
/// of the ErrorContext scopes open on the throwing thread (see
/// diagnostics.h), so deep failures name the module / component / device
/// / solver plan they occurred in without manual re-wrapping.
///
/// Taxonomy: every error also carries an ErrorClass that recovery layers
/// (the MemoCache negative-caching policy, the batch supervisor's retry
/// ladder — DESIGN.md section 10) use to decide whether trying again can
/// possibly help:
///
///  - Transient: a numerical procedure failed *for this attempt* —
///    Newton non-convergence, a singular factorization, an expired run
///    budget. The same request may succeed on retry, with relaxed
///    tolerances, or once contention passes. NumericError defaults here.
///  - Permanent: the request itself is wrong — an infeasible spec, a
///    malformed netlist, an unknown topology. No amount of retrying
///    changes the answer. SpecError / ParseError / LookupError default
///    here, as does the base Error.

#include <stdexcept>
#include <string>

#include "src/util/diagnostics.h"

namespace ape {

/// Whether a failure can be expected to clear on retry (see file comment).
enum class ErrorClass {
  Transient,  ///< attempt-specific: retry / relax / back off may recover
  Permanent,  ///< request-specific: retrying cannot change the outcome
};

const char* to_string(ErrorClass klass);

/// Base class of every exception thrown by the APE library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what,
                 ErrorClass klass = ErrorClass::Permanent)
      : std::runtime_error(annotate_with_context(what)), klass_(klass) {}

  /// Retry taxonomy of this failure (see file comment).
  ErrorClass klass() const { return klass_; }
  bool transient() const { return klass_ == ErrorClass::Transient; }

private:
  ErrorClass klass_;
};

/// A user specification cannot be met (e.g. requested gm at the given
/// bias current implies a non-physical device).
class SpecError : public Error {
public:
  explicit SpecError(const std::string& what)
      : Error(what, ErrorClass::Permanent) {}
};

/// Malformed netlist / model card input.
class ParseError : public Error {
public:
  explicit ParseError(const std::string& what)
      : Error(what, ErrorClass::Permanent) {}
};

/// A numerical procedure failed (singular matrix, Newton divergence, ...).
/// Transient by default: the failure belongs to the attempt (tolerances,
/// starting point, injected fault), not to the request.
class NumericError : public Error {
public:
  explicit NumericError(const std::string& what,
                        ErrorClass klass = ErrorClass::Transient)
      : Error(what, klass) {}
};

/// Request references an unknown topology / component / parameter.
class LookupError : public Error {
public:
  explicit LookupError(const std::string& what)
      : Error(what, ErrorClass::Permanent) {}
};

/// A cooperative cancellation (CancelToken, diagnostics.h) stopped the
/// work. Permanent for retry purposes: the caller asked to stop, so the
/// supervision ladder must not burn further attempts on the job.
class CancelledError : public Error {
public:
  explicit CancelledError(const std::string& what)
      : Error(what, ErrorClass::Permanent) {}
};

inline const char* to_string(ErrorClass klass) {
  return klass == ErrorClass::Transient ? "transient" : "permanent";
}

}  // namespace ape
