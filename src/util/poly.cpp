#include "src/util/poly.h"

#include <cmath>

#include "src/util/error.h"
#include "src/util/matrix.h"

namespace ape {

Complex poly_eval(const std::vector<Complex>& coeffs, Complex x) {
  Complex acc{0.0, 0.0};
  for (size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::vector<Complex> poly_roots(const std::vector<Complex>& coeffs_in) {
  // Trim (numerically) zero leading coefficients.
  std::vector<Complex> c = coeffs_in;
  double max_abs = 0.0;
  for (const Complex& v : c) max_abs = std::max(max_abs, std::abs(v));
  if (max_abs == 0.0) throw NumericError("poly_roots: zero polynomial");
  while (c.size() > 1 && std::abs(c.back()) < 1e-14 * max_abs) c.pop_back();
  const int n = static_cast<int>(c.size()) - 1;
  if (n < 1) throw NumericError("poly_roots: constant polynomial");

  // Normalize to monic.
  for (Complex& v : c) v /= c.back();

  // Cauchy bound for |root| gives a starting radius.
  double radius = 0.0;
  for (int i = 0; i < n; ++i) radius = std::max(radius, std::abs(c[i]));
  radius = 1.0 + radius;

  // Durand-Kerner initial guesses: non-real, non-uniform spacing to avoid
  // symmetric stagnation.
  std::vector<Complex> r(n);
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * i / n + 0.4;
    r[i] = radius * Complex{std::cos(angle), std::sin(angle)} * (0.4 + 0.6 * (i + 1.0) / n);
  }

  for (int iter = 0; iter < 500; ++iter) {
    double worst = 0.0;
    for (int i = 0; i < n; ++i) {
      Complex denom{1.0, 0.0};
      for (int j = 0; j < n; ++j) {
        if (j != i) denom *= (r[i] - r[j]);
      }
      if (std::abs(denom) < 1e-300) denom = Complex{1e-300, 0.0};
      const Complex delta = poly_eval(c, r[i]) / denom;
      r[i] -= delta;
      worst = std::max(worst, std::abs(delta));
    }
    if (worst < 1e-13 * radius) break;
  }
  return r;
}

std::vector<Complex> poly_roots(const std::vector<double>& coeffs) {
  std::vector<Complex> c(coeffs.size());
  for (size_t i = 0; i < coeffs.size(); ++i) c[i] = Complex{coeffs[i], 0.0};
  return poly_roots(c);
}

std::vector<double> pade_denominator(const std::vector<double>& moments, int q) {
  if (q < 1 || moments.size() < static_cast<size_t>(2 * q)) {
    throw NumericError("pade_denominator: need 2q moments");
  }
  // Hankel system: for j = 0..q-1,
  //   sum_k m[j + k] * b[q - k]  = -m[q + j],  k = 0..q-1
  // where D(s) = 1 + b[1] s + ... + b[q] s^q.
  RealMatrix a(static_cast<size_t>(q), static_cast<size_t>(q));
  std::vector<double> rhs(static_cast<size_t>(q));
  for (int j = 0; j < q; ++j) {
    for (int k = 0; k < q; ++k) {
      // column index k corresponds to unknown b[k+1], coefficient m[q + j - (k+1)]
      a(static_cast<size_t>(j), static_cast<size_t>(k)) =
          moments[static_cast<size_t>(q + j - k - 1)];
    }
    rhs[static_cast<size_t>(j)] = -moments[static_cast<size_t>(q + j)];
  }
  LuSolver<double> lu(std::move(a));
  return lu.solve(rhs);
}

}  // namespace ape
