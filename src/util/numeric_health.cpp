#include "src/util/numeric_health.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <limits>

namespace ape {

namespace {

double abs_of(double v) { return std::abs(v); }
double abs_of(const std::complex<double>& v) { return std::abs(v); }

/// Elementwise sign for Hager's probe: y/|y|, 1 where y == 0.
double sign_of(double v) { return v >= 0.0 ? 1.0 : -1.0; }
std::complex<double> sign_of(const std::complex<double>& v) {
  const double m = std::abs(v);
  return m > 0.0 ? v / m : std::complex<double>(1.0, 0.0);
}

template <typename T>
bool all_finite_vec(const std::vector<T>& v) {
  for (const T& x : v) {
    if (!std::isfinite(abs_of(x))) return false;
  }
  return true;
}

}  // namespace

std::string NumericHealth::summary() const {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "health: cond~%.3g growth=%.3g resid=%.3g refine_iters=%d%s%s",
                cond_estimate, pivot_growth, residual_norm,
                refinement_iterations, equilibrated ? " equilibrated" : "",
                recovered ? " recovered" : "");
  return buf;
}

std::string singular_message(const char* kernel, size_t step, size_t dim,
                             double scale, double rel_tol) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s LU: singular pivot at step %zu of %zu "
                "(|pivot| <= %.3g; max|a| %.3g, rel_tol %.3g)",
                kernel, step, dim, scale * rel_tol, scale, rel_tol);
  return buf;
}

double pow2_scale(double magnitude) {
  if (!(magnitude > 0.0) || !std::isfinite(magnitude)) return 1.0;
  // 2^-round(log2(m)): maps m into [1/sqrt(2), sqrt(2)) exactly.
  const int e = static_cast<int>(std::lround(std::log2(magnitude)));
  return std::ldexp(1.0, -e);
}

template <typename T>
bool compute_equilibration(const T* a, size_t n, std::vector<double>& row_scale,
                           std::vector<double>& col_scale) {
  row_scale.assign(n, 1.0);
  col_scale.assign(n, 1.0);
  if (n == 0) return false;
  for (size_t i = 0; i < n; ++i) {
    double m = 0.0;
    const T* row = a + i * n;
    for (size_t j = 0; j < n; ++j) m = std::max(m, abs_of(row[j]));
    row_scale[i] = pow2_scale(m);
  }
  for (size_t j = 0; j < n; ++j) {
    double m = 0.0;
    for (size_t i = 0; i < n; ++i) {
      m = std::max(m, abs_of(a[i * n + j]) * row_scale[i]);
    }
    col_scale[j] = pow2_scale(m);
  }
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(row_scale[i]) || !std::isfinite(col_scale[i]) ||
        row_scale[i] <= 0.0 || col_scale[i] <= 0.0) {
      row_scale.assign(n, 1.0);
      col_scale.assign(n, 1.0);
      return false;
    }
  }
  return true;
}

template <typename T>
bool compute_equilibration_csr(const int* row_ptr, const int* cols,
                               const T* vals, size_t n,
                               std::vector<double>& row_scale,
                               std::vector<double>& col_scale) {
  row_scale.assign(n, 1.0);
  col_scale.assign(n, 1.0);
  if (n == 0) return false;
  for (size_t i = 0; i < n; ++i) {
    double m = 0.0;
    for (int s = row_ptr[i]; s < row_ptr[i + 1]; ++s) {
      m = std::max(m, abs_of(vals[s]));
    }
    row_scale[i] = pow2_scale(m);
  }
  std::vector<double> colmax(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (int s = row_ptr[i]; s < row_ptr[i + 1]; ++s) {
      colmax[cols[s]] = std::max(colmax[cols[s]], abs_of(vals[s]) * row_scale[i]);
    }
  }
  for (size_t j = 0; j < n; ++j) col_scale[j] = pow2_scale(colmax[j]);
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(row_scale[i]) || !std::isfinite(col_scale[i]) ||
        row_scale[i] <= 0.0 || col_scale[i] <= 0.0) {
      row_scale.assign(n, 1.0);
      col_scale.assign(n, 1.0);
      return false;
    }
  }
  return true;
}

template <typename T>
void scale_dense(T* a, size_t n, const std::vector<double>& row_scale,
                 const std::vector<double>& col_scale) {
  for (size_t i = 0; i < n; ++i) {
    T* row = a + i * n;
    const double r = row_scale[i];
    for (size_t j = 0; j < n; ++j) row[j] *= r * col_scale[j];
  }
}

template <typename T>
void unscale_dense(T* a, size_t n, const std::vector<double>& row_scale,
                   const std::vector<double>& col_scale) {
  for (size_t i = 0; i < n; ++i) {
    T* row = a + i * n;
    const double r = row_scale[i];
    for (size_t j = 0; j < n; ++j) row[j] /= r * col_scale[j];
  }
}

template <typename T>
void scale_csr(const int* row_ptr, const int* cols, T* vals, size_t n,
               const std::vector<double>& row_scale,
               const std::vector<double>& col_scale) {
  for (size_t i = 0; i < n; ++i) {
    const double r = row_scale[i];
    for (int s = row_ptr[i]; s < row_ptr[i + 1]; ++s) {
      vals[s] *= r * col_scale[cols[s]];
    }
  }
}

template <typename T>
void scale_vector(std::vector<T>& v, const std::vector<double>& s) {
  for (size_t i = 0; i < v.size(); ++i) v[i] *= s[i];
}

template <typename T>
void unscale_vector(std::vector<T>& v, const std::vector<double>& s) {
  for (size_t i = 0; i < v.size(); ++i) v[i] /= s[i];
}

template <typename T>
double norm1_dense(const T* a, size_t n, std::vector<double>& col_sums) {
  col_sums.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const T* row = a + i * n;
    for (size_t j = 0; j < n; ++j) col_sums[j] += abs_of(row[j]);
  }
  double m = 0.0;
  for (double s : col_sums) m = std::max(m, s);
  return m;
}

template <typename T>
double norm1_csr(const int* row_ptr, const int* cols, const T* vals, size_t n,
                 std::vector<double>& col_sums) {
  col_sums.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (int s = row_ptr[i]; s < row_ptr[i + 1]; ++s) {
      col_sums[cols[s]] += abs_of(vals[s]);
    }
  }
  double m = 0.0;
  for (double s : col_sums) m = std::max(m, s);
  return m;
}

template <typename T>
double norm_inf_dense(const T* a, size_t n) {
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    const T* row = a + i * n;
    for (size_t j = 0; j < n; ++j) s += abs_of(row[j]);
    m = std::max(m, s);
  }
  return m;
}

template <typename T>
double norm_inf_csr(const int* row_ptr, const T* vals, size_t n) {
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (int slot = row_ptr[i]; slot < row_ptr[i + 1]; ++slot) {
      s += abs_of(vals[slot]);
    }
    m = std::max(m, s);
  }
  return m;
}

template <typename T>
double norm_inf_vec(const std::vector<T>& v) {
  double m = 0.0;
  for (const T& x : v) m = std::max(m, abs_of(x));
  return m;
}

template <typename T>
double condest_1norm(size_t n, double anorm1,
                     const std::function<void(std::vector<T>&)>& solve,
                     const std::function<void(std::vector<T>&)>& solve_t,
                     std::vector<T>& work) {
  if (n == 0) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // A^-H probe: for real T this is the plain transpose solve; for
  // complex T conjugate around the transpose solve.
  auto solve_adj = [&](std::vector<T>& v) {
    if constexpr (std::is_same_v<T, std::complex<double>>) {
      for (T& x : v) x = std::conj(x);
      solve_t(v);
      for (T& x : v) x = std::conj(x);
    } else {
      solve_t(v);
    }
  };
  work.assign(n, T(1.0 / static_cast<double>(n)));
  double est = 0.0;
  size_t last_j = n;  // sentinel: no unit vector chosen yet
  for (int iter = 0; iter < 5; ++iter) {
    // y = A^-1 x (in place).
    solve(work);
    if (!all_finite_vec(work)) return kInf;
    double y1 = 0.0;
    for (const T& v : work) y1 += abs_of(v);
    est = std::max(est, y1);
    // z = A^-H sign(y).
    for (T& v : work) v = sign_of(v);
    solve_adj(work);
    if (!all_finite_vec(work)) return kInf;
    size_t j = 0;
    double zmax = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double m = abs_of(work[i]);
      if (m > zmax) {
        zmax = m;
        j = i;
      }
    }
    // Converged when the dual probe stops finding a steeper direction.
    if (iter > 0 && (zmax <= est || j == last_j)) break;
    last_j = j;
    work.assign(n, T{});
    work[j] = T(1.0);
  }
  return anorm1 * est;
}

template <typename T>
double relative_residual(
    const std::vector<T>& b, const std::vector<T>& x,
    const std::function<void(const std::vector<T>&, std::vector<T>&)>& matvec,
    double anorm_inf, std::vector<T>& resid) {
  matvec(x, resid);
  for (size_t i = 0; i < b.size(); ++i) resid[i] = b[i] - resid[i];
  const double denom = anorm_inf * norm_inf_vec(x) + norm_inf_vec(b);
  if (!(denom > 0.0)) return 0.0;
  const double r = norm_inf_vec(resid) / denom;
  return std::isfinite(r) ? r : std::numeric_limits<double>::infinity();
}

template <typename T>
RefineOutcome refine_solution(
    const std::vector<T>& b, std::vector<T>& x,
    const std::function<void(const std::vector<T>&, std::vector<T>&)>& matvec,
    const std::function<void(const std::vector<T>&, std::vector<T>&)>& correct,
    double anorm_inf, std::vector<T>& resid, std::vector<T>& dx,
    std::vector<T>& best_x) {
  RefineOutcome out;
  out.residual = relative_residual(b, x, matvec, anorm_inf, resid);
  double best = out.residual;
  best_x = x;
  if (out.residual <= health::kResidualTarget) {
    out.converged = true;
    return out;
  }
  for (int it = 0; it < health::kMaxRefineIters; ++it) {
    // resid already holds b - A x from the last measurement.
    correct(resid, dx);
    for (size_t i = 0; i < x.size(); ++i) x[i] += dx[i];
    ++out.iterations;
    const double r = relative_residual(b, x, matvec, anorm_inf, resid);
    if (r < best) {
      best = r;
      best_x = x;
    }
    if (r <= health::kResidualTarget) {
      out.residual = r;
      out.converged = true;
      return out;
    }
    // Divergence or stagnation: a correction that does not at least
    // halve the residual will not start converging later in fixed
    // precision — stop and report the best iterate.
    if (!(r < 0.5 * out.residual)) {
      out.diverged = r > 2.0 * out.residual || !std::isfinite(r);
      break;
    }
    out.residual = r;
  }
  x = best_x;
  out.residual = best;
  out.converged = best <= health::kResidualTarget;
  return out;
}

// Explicit instantiations for the two MNA value types.
#define APE_HEALTH_INSTANTIATE(T)                                            \
  template bool compute_equilibration<T>(const T*, size_t,                   \
                                         std::vector<double>&,               \
                                         std::vector<double>&);              \
  template bool compute_equilibration_csr<T>(                                \
      const int*, const int*, const T*, size_t, std::vector<double>&,        \
      std::vector<double>&);                                                 \
  template void scale_dense<T>(T*, size_t, const std::vector<double>&,       \
                               const std::vector<double>&);                  \
  template void unscale_dense<T>(T*, size_t, const std::vector<double>&,     \
                                 const std::vector<double>&);                \
  template void scale_csr<T>(const int*, const int*, T*, size_t,             \
                             const std::vector<double>&,                     \
                             const std::vector<double>&);                    \
  template void scale_vector<T>(std::vector<T>&,                             \
                                const std::vector<double>&);                 \
  template void unscale_vector<T>(std::vector<T>&,                           \
                                  const std::vector<double>&);               \
  template double norm1_dense<T>(const T*, size_t, std::vector<double>&);    \
  template double norm1_csr<T>(const int*, const int*, const T*, size_t,     \
                               std::vector<double>&);                        \
  template double norm_inf_dense<T>(const T*, size_t);                       \
  template double norm_inf_csr<T>(const int*, const T*, size_t);             \
  template double norm_inf_vec<T>(const std::vector<T>&);                    \
  template double condest_1norm<T>(                                          \
      size_t, double, const std::function<void(std::vector<T>&)>&,           \
      const std::function<void(std::vector<T>&)>&, std::vector<T>&);         \
  template double relative_residual<T>(                                      \
      const std::vector<T>&, const std::vector<T>&,                          \
      const std::function<void(const std::vector<T>&, std::vector<T>&)>&,    \
      double, std::vector<T>&);                                              \
  template RefineOutcome refine_solution<T>(                                 \
      const std::vector<T>&, std::vector<T>&,                                \
      const std::function<void(const std::vector<T>&, std::vector<T>&)>&,    \
      const std::function<void(const std::vector<T>&, std::vector<T>&)>&,    \
      double, std::vector<T>&, std::vector<T>&, std::vector<T>&)

APE_HEALTH_INSTANTIATE(double);
APE_HEALTH_INSTANTIATE(std::complex<double>);

#undef APE_HEALTH_INSTANTIATE

}  // namespace ape
