#pragma once
/// \file retry.h
/// Declarative retry ladder with deterministic exponential backoff — the
/// recovery policy of the supervised batch runtime (DESIGN.md section
/// 10).
///
/// A RetryPolicy maps attempt ordinals onto escalation rungs:
///
///   attempt 0                      -> Initial   (normal configuration)
///   attempts 1 .. plain_retries    -> Retry     (identical re-run; a
///                                                transient fault may
///                                                simply have passed)
///   next numeric_recovery_retries  -> NumericRecovery (re-run under
///                                                NumericHealthMode::Force:
///                                                equilibration, condition
///                                                estimation and iterative
///                                                refinement on every solve
///                                                — DESIGN.md section 15)
///   next relaxed_retries attempts  -> Relaxed   (ScopedSolverRelaxation:
///                                                widened tolerances,
///                                                higher gmin floor)
///   one more, if estimate_fallback -> EstimateOnly (skip synthesis /
///                                                simulation, return the
///                                                APE estimate alone)
///   afterwards                     -> Fail
///
/// Escalation consumes rungs in order for *transient* failures
/// (ErrorClass::Transient — Newton non-convergence, singular LU). A
/// *permanent* failure (infeasible spec, parse error) skips straight to
/// EstimateOnly (retrying cannot change the answer) and from there to
/// Fail.
///
/// Backoff between attempts is exponential with deterministic jitter:
/// backoff_s(job, attempt) is a pure function of (policy, job, attempt)
/// via Rng::derive_stream, so a supervised run waits the same amount
/// run-to-run and replay of a failing schedule is exact.

#include <cstdint>

#include "src/util/diagnostics.h"
#include "src/util/error.h"

namespace ape {

/// The escalation rung an attempt runs at (see file comment).
enum class RetryRung {
  Initial,          ///< attempt 0, normal configuration
  Retry,            ///< plain re-run
  NumericRecovery,  ///< re-run under NumericHealthMode::Force
  Relaxed,          ///< re-run under ScopedSolverRelaxation
  EstimateOnly,     ///< APE estimate fallback, no synthesis / simulation
  Fail,             ///< ladder exhausted
};

const char* to_string(RetryRung rung);

struct RetryPolicy {
  /// Plain re-runs after the initial attempt (rung Retry).
  int plain_retries = 0;
  /// Re-runs under forced numerical-health recovery (rung
  /// NumericRecovery): equilibration + condition estimate + iterative
  /// refinement on every solve. Default 0 keeps existing ladders
  /// unchanged; the batch / serve entry points enable one rung.
  int numeric_recovery_retries = 0;
  /// Re-runs under relaxed solver tolerances (rung Relaxed).
  int relaxed_retries = 0;
  /// Final rung: fall back to the bare APE estimate when every synthesis
  /// attempt failed (the estimate is analytic and nearly always exists).
  bool estimate_fallback = false;
  /// Retry jobs whose synthesis finished but whose simulator
  /// verification threw (outcome.sim_failed): the verification failure
  /// is usually a transient non-convergence that the Relaxed rung can
  /// clear. Jobs that ran out of ladder keep their best-so-far outcome.
  bool retry_sim_failures = true;

  /// Relaxation applied on Relaxed rungs.
  SolverRelaxation relaxation;

  /// First backoff wait in seconds (0 disables waiting entirely).
  double backoff_base_s = 0.0;
  /// Multiplier per subsequent attempt.
  double backoff_factor = 2.0;
  /// Cap on a single wait.
  double backoff_max_s = 5.0;
  /// +/- fraction of deterministic jitter applied to each wait.
  double jitter_frac = 0.25;
  /// Seed of the jitter streams (derived per (job, attempt)).
  uint64_t jitter_seed = 0x5eedULL;

  /// Total attempts the ladder allows (initial + retries + relaxed +
  /// the estimate fallback when enabled). Always >= 1.
  int max_attempts() const;

  /// The rung attempt ordinal \p attempt (0-based) runs at, for a job
  /// escalating one rung per failure.
  RetryRung rung(int attempt) const;

  /// The rung to jump to after a failure of class \p klass at
  /// 0-based attempt \p attempt, honouring the transient/permanent
  /// taxonomy (see file comment). Returns Fail when the ladder is done.
  RetryRung next_rung(ErrorClass klass, int attempt) const;

  /// The 0-based attempt ordinal of the EstimateOnly rung (==
  /// max_attempts() - 1 when the fallback is enabled, -1 otherwise).
  int estimate_attempt() const;

  /// Deterministic backoff before 0-based attempt \p attempt of job
  /// \p job: backoff_base_s * backoff_factor^(attempt-1), jittered by
  /// +/- jitter_frac from the stream derived of (jitter_seed, job,
  /// attempt), capped at backoff_max_s. 0 for the initial attempt or
  /// when backoff_base_s == 0.
  double backoff_s(uint64_t job, int attempt) const;
};

}  // namespace ape
