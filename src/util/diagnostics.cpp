#include "src/util/diagnostics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "src/util/units.h"

namespace ape {
namespace {

/// The per-thread provenance stack. A plain vector of strings: scopes
/// are short-lived and shallow (a handful of frames), so no cleverness.
std::vector<std::string>& context_stack() {
  static thread_local std::vector<std::string> stack;
  return stack;
}

/// The per-thread ambient job budget / solver relaxation / kernel stats
/// sink / numeric-health mode slots (see the THREAD-SAFETY RULE in
/// diagnostics.h: these are four of the seven sanctioned thread_local
/// instances).
thread_local const RunBudget* g_ambient_budget = nullptr;
thread_local const SolverRelaxation* g_ambient_relaxation = nullptr;
thread_local KernelStats* g_ambient_kernel_sink = nullptr;
thread_local NumericHealthMode g_ambient_health_mode = NumericHealthMode::Auto;

}  // namespace

std::string annotate_with_context(const std::string& what) {
  const auto& stack = context_stack();
  if (stack.empty()) return what;
  std::string out = "[";
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i != 0) out += " -> ";
    out += stack[i];
  }
  out += "] ";
  out += what;
  return out;
}

ErrorContext::ErrorContext(std::string frame) {
  context_stack().push_back(std::move(frame));
}

ErrorContext::~ErrorContext() { context_stack().pop_back(); }

std::string ErrorContext::chain() {
  const auto& stack = context_stack();
  std::string out;
  for (size_t i = 0; i < stack.size(); ++i) {
    if (i != 0) out += " -> ";
    out += stack[i];
  }
  return out;
}

size_t ErrorContext::depth() { return context_stack().size(); }

// ---------------------------------------------------------------------------

void KernelStats::accumulate(const KernelStats& o) {
  baseline_builds += o.baseline_builds;
  baseline_restores += o.baseline_restores;
  linear_stamps_skipped += o.linear_stamps_skipped;
  nonlinear_stamps += o.nonlinear_stamps;
  factorizations += o.factorizations;
  solves += o.solves;
  ac_points_fused += o.ac_points_fused;
  ac_points_virtual += o.ac_points_virtual;
  workspace_bytes = std::max(workspace_bytes, o.workspace_bytes);
  workspace_regrowths += o.workspace_regrowths;
  symbolic_analyses += o.symbolic_analyses;
  symbolic_reuses += o.symbolic_reuses;
  numeric_refactors += o.numeric_refactors;
  sparse_fallbacks += o.sparse_fallbacks;
  sparse_nnz = std::max(sparse_nnz, o.sparse_nnz);
  sparse_fill_in = std::max(sparse_fill_in, o.sparse_fill_in);
  refinement_solves += o.refinement_solves;
  refinement_iterations += o.refinement_iterations;
  equilibrated_solves += o.equilibrated_solves;
  numeric_recoveries += o.numeric_recoveries;
  cond_estimate_max = std::max(cond_estimate_max, o.cond_estimate_max);
  pivot_growth_max = std::max(pivot_growth_max, o.pivot_growth_max);
  residual_norm_max = std::max(residual_norm_max, o.residual_norm_max);
}

std::string KernelStats::summary() const {
  std::ostringstream os;
  os << "kernel: baselines=" << baseline_builds
     << " restores=" << baseline_restores
     << " stamps_skipped=" << linear_stamps_skipped
     << " nonlinear_stamps=" << nonlinear_stamps
     << " factorizations=" << factorizations << " solves=" << solves;
  if (ac_points_fused > 0) os << " ac_fused=" << ac_points_fused;
  if (ac_points_virtual > 0) os << " ac_virtual=" << ac_points_virtual;
  os << " workspace_bytes=" << workspace_bytes
     << " regrowths=" << workspace_regrowths;
  if (numeric_refactors > 0) {
    os << " sparse: analyses=" << symbolic_analyses
       << " reuses=" << symbolic_reuses
       << " refactors=" << numeric_refactors
       << " nnz=" << sparse_nnz << " fill=" << sparse_fill_in;
    if (sparse_fallbacks > 0) os << " fallbacks=" << sparse_fallbacks;
  }
  if (refinement_solves > 0 || numeric_recoveries > 0 ||
      equilibrated_solves > 0) {
    os << " health: refined=" << refinement_solves
       << " refine_iters=" << refinement_iterations
       << " equilibrated=" << equilibrated_solves
       << " recoveries=" << numeric_recoveries
       << " cond_max=" << cond_estimate_max
       << " growth_max=" << pivot_growth_max
       << " resid_max=" << residual_norm_max;
  }
  return os.str();
}

const char* to_string(DcPlan plan) {
  switch (plan) {
    case DcPlan::GminLadder: return "gmin-ladder";
    case DcPlan::SourceStepping: return "source-stepping";
    case DcPlan::None: break;
  }
  return "none";
}

std::string ConvergenceReport::summary() const {
  std::ostringstream os;
  os << (converged ? "converged" : "FAILED") << " plan=" << to_string(plan)
     << " gmin=" << units::format_eng(final_gmin)
     << " rungs=" << gmin_rungs_completed
     << " src_steps=" << source_steps_completed
     << " newton_iters=" << newton_iterations;
  if (lu_failures > 0) os << " lu_failures=" << lu_failures;
  if (nonfinite_rejections > 0) os << " nonfinite=" << nonfinite_rejections;
  if (step_halvings > 0) os << " halvings=" << step_halvings;
  if (convergence_vetoes > 0) os << " vetoes=" << convergence_vetoes;
  if (relaxed_tolerances) os << " relaxed";
  if (health.refinement_iterations > 0 || health.equilibrated ||
      health.recovered) {
    os << " " << health.summary();
  }
  return os.str();
}

// ---------------------------------------------------------------------------

RunBudget RunBudget::with_deadline(double seconds) {
  RunBudget b;
  b.set_deadline_in(seconds);
  return b;
}

RunBudget RunBudget::with_evaluations(long n) {
  RunBudget b;
  b.set_max_evaluations(n);
  return b;
}

void RunBudget::set_deadline_in(double seconds) {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  has_deadline_ = true;
}

void RunBudget::set_max_evaluations(long n) { max_evals_ = n; }

bool RunBudget::charge(long n) {
  used_.fetch_add(n, std::memory_order_relaxed);
  return !exhausted();
}

bool RunBudget::exhausted() const {
  if (cancelled()) return true;
  if (max_evals_ >= 0 && used_.load(std::memory_order_relaxed) >= max_evals_) {
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) return true;
  return false;
}

const char* RunBudget::exhaust_reason() const {
  if (cancelled()) return "cancelled";
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return "deadline exceeded";
  }
  if (max_evals_ >= 0 && used_.load(std::memory_order_relaxed) >= max_evals_) {
    return "evaluation cap reached";
  }
  return "within budget";
}

double RunBudget::seconds_left() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ -
                                       std::chrono::steady_clock::now())
      .count();
}

// ---------------------------------------------------------------------------

ScopedJobBudget::ScopedJobBudget(const RunBudget& budget)
    : previous_(g_ambient_budget) {
  g_ambient_budget = &budget;
}

ScopedJobBudget::~ScopedJobBudget() { g_ambient_budget = previous_; }

const RunBudget* ambient_budget() { return g_ambient_budget; }

const RunBudget* exhausted_budget(const RunBudget* local) {
  if (local != nullptr && local->exhausted()) return local;
  if (g_ambient_budget != nullptr && g_ambient_budget->exhausted()) {
    return g_ambient_budget;
  }
  return nullptr;
}

ScopedSolverRelaxation::ScopedSolverRelaxation(const SolverRelaxation& relax)
    : previous_(g_ambient_relaxation) {
  g_ambient_relaxation = &relax;
}

ScopedSolverRelaxation::~ScopedSolverRelaxation() {
  g_ambient_relaxation = previous_;
}

const SolverRelaxation* ambient_relaxation() { return g_ambient_relaxation; }

ScopedKernelStatsSink::ScopedKernelStatsSink(KernelStats& sink)
    : previous_(g_ambient_kernel_sink) {
  g_ambient_kernel_sink = &sink;
}

ScopedKernelStatsSink::~ScopedKernelStatsSink() {
  g_ambient_kernel_sink = previous_;
}

KernelStats* ambient_kernel_sink() { return g_ambient_kernel_sink; }

ScopedNumericHealthMode::ScopedNumericHealthMode(NumericHealthMode mode)
    : previous_(g_ambient_health_mode) {
  g_ambient_health_mode = mode;
}

ScopedNumericHealthMode::~ScopedNumericHealthMode() {
  g_ambient_health_mode = previous_;
}

NumericHealthMode ambient_health_mode() { return g_ambient_health_mode; }

}  // namespace ape
