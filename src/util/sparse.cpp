#include "src/util/sparse.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/util/numeric_health.h"

namespace ape {

namespace {

/// FNV-1a over a byte range, seeded with the running hash.
uint64_t fnv1a(uint64_t h, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

void SparsePattern::finalize() {
  if (finalized_) return;
  std::sort(coords_.begin(), coords_.end());
  coords_.erase(std::unique(coords_.begin(), coords_.end()), coords_.end());
  row_ptr_.assign(n_ + 1, 0);
  cols_.clear();
  cols_.reserve(coords_.size());
  for (uint64_t packed : coords_) {
    const int r = static_cast<int>(packed >> 32);
    const int c = static_cast<int>(packed & 0xffffffffu);
    if (r < 0 || c < 0 || static_cast<size_t>(r) >= n_ || static_cast<size_t>(c) >= n_) {
      throw NumericError("sparse pattern: slot (" + std::to_string(r) + ", " + std::to_string(c) +
                         ") outside " + std::to_string(n_) + "-dim system");
    }
    ++row_ptr_[static_cast<size_t>(r) + 1];
    cols_.push_back(c);
  }
  for (size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  uint64_t h = 0xcbf29ce484222325ull;
  h = fnv1a(h, &n_, sizeof(n_));
  if (!cols_.empty()) h = fnv1a(h, cols_.data(), cols_.size() * sizeof(int));
  if (!row_ptr_.empty()) h = fnv1a(h, row_ptr_.data(), row_ptr_.size() * sizeof(int));
  signature_ = h;
  coords_.clear();
  coords_.shrink_to_fit();
  finalized_ = true;
}

template <typename T>
void SparseLu<T>::factorize(const SparsePattern& pattern, const std::vector<T>& values) {
  if (!pattern.finalized()) throw NumericError("sparse LU: pattern not finalized");
  if (values.size() != pattern.nnz()) throw NumericError("sparse LU: value/slot count mismatch");
  factorized_ = false;
  const bool analyzed = analyzed_signature_ != 0 && analyzed_signature_ == pattern.signature() &&
                        n_ == pattern.n();
  if (!analyzed) {
    analyzed_signature_ = 0;  // invalidated until the analysis succeeds
    order_and_factor(pattern, values);
    analyzed_signature_ = pattern.signature();
    ++stats_.symbolic_analyses;
  } else {
    ++stats_.symbolic_reuses;
  }
  refactor(values);
  factorized_ = true;
}

template <typename T>
void SparseLu<T>::order_and_factor(const SparsePattern& pattern, const std::vector<T>& values) {
  n_ = pattern.n();
  const int n = static_cast<int>(n_);
  if (n == 0) throw NumericError("sparse LU: empty system");

  // Scaling singularity check, NaN-ignoring exactly like Matrix::max_abs.
  double scale = 0.0;
  for (const T& v : values) {
    const double m = std::abs(v);
    if (m > scale) scale = m;
  }
  if (scale == 0.0) throw NumericError("sparse LU: zero matrix");

  // Dense working copies in permuted coordinates: W holds values (then
  // multipliers below the diagonal), S the structural pattern including
  // fill. O(n^2) scratch is acceptable because this pass runs once per
  // topology; it is freed before the first refactor.
  std::vector<T> w(n_ * n_, T{});
  std::vector<uint8_t> s(n_ * n_, 0);
  const std::vector<int>& rp = pattern.row_ptr();
  const std::vector<int>& pc = pattern.cols();
  for (int r = 0; r < n; ++r) {
    for (int slot = rp[r]; slot < rp[r + 1]; ++slot) {
      w[static_cast<size_t>(r) * n_ + pc[slot]] = values[slot];
      s[static_cast<size_t>(r) * n_ + pc[slot]] = 1;
    }
  }
  row_orig_.resize(n_);
  col_orig_.resize(n_);
  for (int i = 0; i < n; ++i) row_orig_[i] = col_orig_[i] = i;

  size_t fill = 0;
  std::vector<int> r_cnt(n_), c_cnt(n_);
  std::vector<double> colmax(n_);

  for (int k = 0; k < n; ++k) {
    // Active-submatrix row/column structural counts and column value
    // maxima for the Markowitz cost and the numeric threshold.
    for (int j = k; j < n; ++j) {
      c_cnt[j] = 0;
      colmax[j] = 0.0;
    }
    for (int i = k; i < n; ++i) {
      int rc = 0;
      const uint8_t* srow = &s[static_cast<size_t>(i) * n_];
      const T* wrow = &w[static_cast<size_t>(i) * n_];
      for (int j = k; j < n; ++j) {
        if (!srow[j]) continue;
        ++rc;
        ++c_cnt[j];
        const double m = std::abs(wrow[j]);
        if (m > colmax[j]) colmax[j] = m;
      }
      r_cnt[i] = rc;
    }

    // Markowitz selection: minimize (r - 1)(c - 1) over structural
    // entries whose magnitude passes the threshold; ties prefer the
    // original diagonal, then the larger magnitude (growth control).
    long best_cost = std::numeric_limits<long>::max();
    int bi = -1, bj = -1;
    double best_mag = 0.0;
    for (int i = k; i < n; ++i) {
      const uint8_t* srow = &s[static_cast<size_t>(i) * n_];
      const T* wrow = &w[static_cast<size_t>(i) * n_];
      const long rm = r_cnt[i] - 1;
      for (int j = k; j < n; ++j) {
        if (!srow[j]) continue;
        const double m = std::abs(wrow[j]);
        if (!(m > 0.0) || !(m >= kPivotThreshold * colmax[j])) continue;
        const long cost = rm * (c_cnt[j] - 1);
        bool better;
        if (cost != best_cost) {
          better = cost < best_cost;
        } else {
          const bool cand_diag = row_orig_[i] == col_orig_[j];
          const bool cur_diag = bi >= 0 && row_orig_[bi] == col_orig_[bj];
          better = cand_diag != cur_diag ? cand_diag : m > best_mag;
        }
        if (better) {
          best_cost = cost;
          bi = i;
          bj = j;
          best_mag = m;
        }
      }
    }
    if (bi < 0) {
      // No entry passed the threshold. Fall back to the largest
      // magnitude; if everything is zero, check for non-finite poison
      // (which must propagate, matching the dense solver) before
      // declaring the matrix singular.
      for (int i = k; i < n; ++i) {
        for (int j = k; j < n; ++j) {
          if (!s[static_cast<size_t>(i) * n_ + j]) continue;
          const double m = std::abs(w[static_cast<size_t>(i) * n_ + j]);
          if (m > best_mag) {
            best_mag = m;
            bi = i;
            bj = j;
          }
        }
      }
      if (bi < 0 || best_mag == 0.0) {
        int nf_i = -1, nf_j = -1;
        for (int i = k; i < n && nf_i < 0; ++i) {
          for (int j = k; j < n; ++j) {
            if (s[static_cast<size_t>(i) * n_ + j] &&
                !std::isfinite(std::abs(w[static_cast<size_t>(i) * n_ + j]))) {
              nf_i = i;
              nf_j = j;
              break;
            }
          }
        }
        if (nf_i < 0) {
          throw NumericError(singular_message("sparse", static_cast<size_t>(k),
                                              n_, scale,
                                              health::kSingularRelTol));
        }
        bi = nf_i;
        bj = nf_j;
      }
    }

    // Bring the pivot to (k, k) by physical row/column swaps.
    if (bi != k) {
      std::swap_ranges(w.begin() + static_cast<size_t>(k) * n_,
                       w.begin() + static_cast<size_t>(k + 1) * n_,
                       w.begin() + static_cast<size_t>(bi) * n_);
      std::swap_ranges(s.begin() + static_cast<size_t>(k) * n_,
                       s.begin() + static_cast<size_t>(k + 1) * n_,
                       s.begin() + static_cast<size_t>(bi) * n_);
      std::swap(row_orig_[k], row_orig_[bi]);
    }
    if (bj != k) {
      for (int r = 0; r < n; ++r) {
        std::swap(w[static_cast<size_t>(r) * n_ + k], w[static_cast<size_t>(r) * n_ + bj]);
        std::swap(s[static_cast<size_t>(r) * n_ + k], s[static_cast<size_t>(r) * n_ + bj]);
      }
      std::swap(col_orig_[k], col_orig_[bj]);
    }

    // Structural elimination with numeric values along for the ride —
    // fill is decided by the pattern, never by value cancellation, so a
    // slot that happens to be 0.0 this time still reserves its storage.
    const T piv = w[static_cast<size_t>(k) * n_ + k];
    const uint8_t* skrow = &s[static_cast<size_t>(k) * n_];
    const T* wkrow = &w[static_cast<size_t>(k) * n_];
    for (int i = k + 1; i < n; ++i) {
      if (!s[static_cast<size_t>(i) * n_ + k]) continue;
      const T m = w[static_cast<size_t>(i) * n_ + k] / piv;
      w[static_cast<size_t>(i) * n_ + k] = m;
      uint8_t* sirow = &s[static_cast<size_t>(i) * n_];
      T* wirow = &w[static_cast<size_t>(i) * n_];
      for (int j = k + 1; j < n; ++j) {
        if (!skrow[j]) continue;
        if (!sirow[j]) {
          sirow[j] = 1;
          ++fill;
        }
        wirow[j] -= m * wkrow[j];
      }
    }
  }

  // Freeze the L + U pattern into CSR over permuted rows.
  f_row_ptr_.assign(n_ + 1, 0);
  f_cols_.clear();
  f_diag_.assign(n_, -1);
  for (int i = 0; i < n; ++i) {
    const uint8_t* srow = &s[static_cast<size_t>(i) * n_];
    for (int j = 0; j < n; ++j) {
      if (!srow[j]) continue;
      if (j == i) f_diag_[i] = static_cast<int>(f_cols_.size());
      f_cols_.push_back(j);
    }
    f_row_ptr_[i + 1] = static_cast<int>(f_cols_.size());
    if (f_diag_[i] < 0) {
      // Unreachable: the step-i pivot sits at (i, i) by construction.
      throw NumericError("sparse LU: missing diagonal in factor row " + std::to_string(i));
    }
  }
  f_vals_.assign(f_cols_.size(), T{});

  // Slot lookup in a factor row (columns sorted ascending).
  auto f_slot = [&](int i, int j) {
    const int* begin = f_cols_.data() + f_row_ptr_[i];
    const int* end = f_cols_.data() + f_row_ptr_[i + 1];
    const int* it = std::lower_bound(begin, end, j);
    if (it == end || *it != j) {
      throw NumericError("sparse LU: internal pattern inconsistency");
    }
    return static_cast<int>(f_row_ptr_[i] + (it - begin));
  };

  // Scatter map: original pattern slot -> factor slot.
  std::vector<int> pos_row(n_), pos_col(n_);
  for (int p = 0; p < n; ++p) {
    pos_row[row_orig_[p]] = p;
    pos_col[col_orig_[p]] = p;
  }
  scatter_.resize(pattern.nnz());
  for (int r = 0; r < n; ++r) {
    for (int slot = rp[r]; slot < rp[r + 1]; ++slot) {
      scatter_[slot] = f_slot(pos_row[r], pos_col[pc[slot]]);
    }
  }

  // Compile the elimination program. The U-row slots of step k are the
  // contiguous factor slots (f_diag_[k], f_row_ptr_[k+1]); each pair
  // stores its multiplier slot plus destination slots aligned with them.
  pair_ptr_.assign(n_ + 1, 0);
  l_slot_.clear();
  dst_ptr_.clear();
  dst_.clear();
  size_t flops = 0;
  for (int k = 0; k < n; ++k) {
    const int ub = f_diag_[k] + 1;
    const int ue = f_row_ptr_[k + 1];
    for (int i = k + 1; i < n; ++i) {
      if (!s[static_cast<size_t>(i) * n_ + k]) continue;
      l_slot_.push_back(f_slot(i, k));
      dst_ptr_.push_back(static_cast<int>(dst_.size()));
      for (int us = ub; us < ue; ++us) dst_.push_back(f_slot(i, f_cols_[us]));
      flops += static_cast<size_t>(ue - ub);
    }
    pair_ptr_[k + 1] = static_cast<int>(l_slot_.size());
  }
  dst_ptr_.push_back(static_cast<int>(dst_.size()));

  y_.resize(n_);
  stats_.nnz = pattern.nnz();
  stats_.fill_in = fill;
  stats_.flops = flops;
}

template <typename T>
void SparseLu<T>::refactor(const std::vector<T>& values) {
  ++stats_.numeric_refactors;
  std::fill(f_vals_.begin(), f_vals_.end(), T{});
  double scale = 0.0;
  for (size_t slot = 0; slot < values.size(); ++slot) {
    f_vals_[scatter_[slot]] = values[slot];
    const double m = std::abs(values[slot]);
    if (m > scale) scale = m;
  }
  scale_ = scale;
  max_pivot_ = 0.0;
  min_pivot_ = std::numeric_limits<double>::infinity();
  if (scale == 0.0) throw NumericError("sparse LU: zero matrix");
  const int n = static_cast<int>(n_);
  for (int k = 0; k < n; ++k) {
    const T piv = f_vals_[f_diag_[k]];
    const double apiv = std::abs(piv);
    // Same collapse threshold as the dense solver; non-finite pivots
    // pass (the comparison is false) and propagate to the all_finite
    // check downstream, keeping fault-probe semantics identical.
    if (apiv <= scale * health::kSingularRelTol) {
      throw NumericError(singular_message("sparse", static_cast<size_t>(k), n_,
                                          scale, health::kSingularRelTol));
    }
    // O(1) pivot tracking for the growth / condition monitors
    // (NaN-ignoring comparisons, like the scale scan above).
    if (apiv > max_pivot_) max_pivot_ = apiv;
    if (apiv < min_pivot_) min_pivot_ = apiv;
    const int ub = f_diag_[k] + 1;
    const int ulen = f_row_ptr_[k + 1] - ub;
    const T* urow = f_vals_.data() + ub;
    for (int p = pair_ptr_[k]; p < pair_ptr_[k + 1]; ++p) {
      const T m = f_vals_[l_slot_[p]] / piv;
      f_vals_[l_slot_[p]] = m;
      const int* d = dst_.data() + dst_ptr_[p];
      for (int t = 0; t < ulen; ++t) f_vals_[d[t]] -= m * urow[t];
    }
  }
}

template <typename T>
void SparseLu<T>::solve_into(const std::vector<T>& b, std::vector<T>& x) const {
  if (!factorized_) throw NumericError("sparse LU: not factorized");
  if (b.size() != n_) throw NumericError("sparse LU: rhs size mismatch");
  const int n = static_cast<int>(n_);
  y_.resize(n_);
  for (int p = 0; p < n; ++p) y_[p] = b[row_orig_[p]];
  // Forward substitution: sub-diagonal factor slots are the multipliers
  // of unit-lower L, already sorted by column within each row.
  for (int i = 1; i < n; ++i) {
    T sum = y_[i];
    for (int slot = f_row_ptr_[i]; slot < f_diag_[i]; ++slot) {
      sum -= f_vals_[slot] * y_[f_cols_[slot]];
    }
    y_[i] = sum;
  }
  // Back substitution (U).
  for (int i = n - 1; i >= 0; --i) {
    T sum = y_[i];
    for (int slot = f_diag_[i] + 1; slot < f_row_ptr_[i + 1]; ++slot) {
      sum -= f_vals_[slot] * y_[f_cols_[slot]];
    }
    y_[i] = sum / f_vals_[f_diag_[i]];
  }
  x.resize(n_);
  for (int q = 0; q < n; ++q) x[col_orig_[q]] = y_[q];
}

template <typename T>
void SparseLu<T>::solve_transposed_into(const std::vector<T>& b, std::vector<T>& x) const {
  if (!factorized_) throw NumericError("sparse LU: not factorized");
  if (b.size() != n_) throw NumericError("sparse LU: rhs size mismatch");
  const int n = static_cast<int>(n_);
  y_.resize(n_);
  // A = R^-1 L U C (R gathers permuted rows, C permuted columns), so
  // A^T x = b solves as: w = C b, U^T t = w, L^T z = t, x = R^T z.
  for (int q = 0; q < n; ++q) y_[q] = b[col_orig_[q]];
  // Forward substitution on U^T: finalize y_[k], push to later columns.
  for (int k = 0; k < n; ++k) {
    y_[k] /= f_vals_[f_diag_[k]];
    for (int slot = f_diag_[k] + 1; slot < f_row_ptr_[k + 1]; ++slot) {
      y_[f_cols_[slot]] -= f_vals_[slot] * y_[k];
    }
  }
  // Back substitution on L^T (unit diagonal): descending, push style.
  for (int k = n - 1; k >= 0; --k) {
    for (int slot = f_row_ptr_[k]; slot < f_diag_[k]; ++slot) {
      y_[f_cols_[slot]] -= f_vals_[slot] * y_[k];
    }
  }
  x.resize(n_);
  for (int p = 0; p < n; ++p) x[row_orig_[p]] = y_[p];
}

template <typename T>
size_t SparseLu<T>::memory_bytes() const {
  auto bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  return bytes(row_orig_) + bytes(col_orig_) + bytes(f_row_ptr_) + bytes(f_cols_) +
         bytes(f_diag_) + bytes(f_vals_) + bytes(scatter_) + bytes(pair_ptr_) + bytes(l_slot_) +
         bytes(dst_ptr_) + bytes(dst_) + bytes(y_);
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace ape
