#pragma once
/// \file matrix.h
/// Dense matrix and LU factorization used by the MNA solvers.
///
/// The circuits APE deals with are small (tens of nodes), so a dense
/// row-major matrix with partially pivoted LU is both simple and fast
/// enough; no sparse machinery is warranted.

#include <cassert>
#include <cmath>
#include <complex>
#include <cstddef>
#include <limits>
#include <vector>

#include "src/util/error.h"
#include "src/util/numeric_health.h"

namespace ape {

/// Dense row-major matrix over double or std::complex<double>.
template <typename T>
class Matrix {
public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  T& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Reset every entry to zero, keeping the shape.
  void set_zero() { data_.assign(data_.size(), T{}); }

  /// Raw row-major storage (rows() * cols() entries). The compiled MNA
  /// kernel uses this for baseline memcpy-restores and fused G + jwC
  /// assembly without per-entry index arithmetic.
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }

  /// Largest absolute entry; used for scaling singularity checks.
  double max_abs() const {
    double m = 0.0;
    for (const T& v : data_) m = std::max(m, std::abs(v));
    return m;
  }

private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<T> data_;
};

/// In-place LU factorization with partial pivoting.
///
/// Factorizes once, then solves repeatedly — the AC sweep and the AWE
/// moment recursion both reuse a factorization for many right-hand sides.
/// A default-constructed solver can be re-targeted with factorize(),
/// which reuses the solver's own storage: after the first call no
/// further heap allocation happens for same-sized systems, which is what
/// lets a whole Newton ladder or AC sweep run allocation-free
/// (src/spice/kernel.h).
template <typename T>
class LuSolver {
public:
  /// Empty solver; call factorize() before solving.
  LuSolver() = default;

  /// Factorize \p a (copied). Throws NumericError on (numerical) singularity.
  explicit LuSolver(Matrix<T> a) : lu_(std::move(a)), pivot_(lu_.rows()) {
    if (lu_.rows() != lu_.cols()) throw NumericError("LU: matrix not square");
    factorize_impl();
  }

  /// Pre-size the factorization storage for n-by-n systems so the first
  /// factorize() performs no allocation. The solver is unusable until a
  /// factorize() call succeeds.
  void reserve(size_t n) {
    if (lu_.rows() != n || lu_.cols() != n) lu_ = Matrix<T>(n, n);
    pivot_.resize(n);
    tsolve_.resize(n);
  }

  /// Re-factorize against \p a, reusing this solver's buffers (no
  /// allocation once the size matches a previous call). Throws
  /// NumericError on singularity; the solver must then be re-factorized
  /// before the next solve.
  void factorize(const Matrix<T>& a) {
    if (a.rows() != a.cols()) throw NumericError("LU: matrix not square");
    lu_ = a;  // vector copy-assign: reuses capacity for same-sized systems
    pivot_.resize(lu_.rows());
    factorize_impl();
  }

  size_t size() const { return lu_.rows(); }

  /// Solve A x = b; returns x. \p b must have size() entries.
  std::vector<T> solve(const std::vector<T>& b) const {
    std::vector<T> x(size());
    solve_into(b, x);
    return x;
  }

  /// Solve A x = b into the caller-owned \p x (resized to size(); no
  /// allocation when already that size). \p b and \p x must not alias.
  void solve_into(const std::vector<T>& b, std::vector<T>& x) const {
    if (b.size() != size()) throw NumericError("LU: rhs size mismatch");
    x.resize(size());
    for (size_t i = 0; i < size(); ++i) x[i] = b[pivot_[i]];
    // Forward substitution (unit lower-triangular L).
    for (size_t i = 1; i < size(); ++i) {
      T sum = x[i];
      for (size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
      x[i] = sum;
    }
    // Back substitution (U).
    for (size_t ii = size(); ii-- > 0;) {
      T sum = x[ii];
      for (size_t j = ii + 1; j < size(); ++j) sum -= lu_(ii, j) * x[j];
      x[ii] = sum / lu_(ii, ii);
    }
  }

  /// Solve A^T x = b (plain transpose, no conjugation) against the same
  /// factorization: A^T = U^T L^T P, so forward-substitute U^T, back-
  /// substitute unit L^T, then undo the pivot permutation. Used by the
  /// Hager condition estimator (numeric_health.h); not a hot path.
  void solve_transposed_into(const std::vector<T>& b, std::vector<T>& x) const {
    if (b.size() != size()) throw NumericError("LU: rhs size mismatch");
    const size_t n = size();
    std::vector<T>& z = tsolve_;
    z = b;
    // Forward substitution on U^T (diagonal from U).
    for (size_t k = 0; k < n; ++k) {
      z[k] /= lu_(k, k);
      for (size_t j = k + 1; j < n; ++j) z[j] -= lu_(k, j) * z[k];
    }
    // Back substitution on L^T (unit diagonal).
    for (size_t k = n; k-- > 0;) {
      for (size_t j = 0; j < k; ++j) z[j] -= lu_(k, j) * z[k];
    }
    x.resize(n);
    for (size_t i = 0; i < n; ++i) x[pivot_[i]] = z[i];
  }

  /// max_k|u_kk| / max|A| of the last successful factorization — the
  /// O(1) pivot-growth monitor (the classic diagonal proxy: partial
  /// pivoting bounds the multipliers by 1, so element growth surfaces in
  /// U, and the canonical growth matrices put it on the diagonal). Large
  /// growth means the elimination lost digits even though no pivot
  /// collapsed (numeric_health.h thresholds).
  double pivot_growth() const {
    return scale_ > 0.0 ? max_pivot_ / scale_ : 0.0;
  }
  /// Smallest |u_kk| of the last factorization; scale / min_pivot is a
  /// cheap condition-number lower-bound proxy (the Auto-mode trigger for
  /// the real Hager estimate).
  double min_pivot() const { return min_pivot_; }
  /// max|a_ij| of the last factorized matrix (the singularity scale).
  double max_abs_scale() const { return scale_; }

private:
  void factorize_impl() {
    const size_t n = lu_.rows();
    const double scale = lu_.max_abs();
    scale_ = scale;
    max_pivot_ = 0.0;
    min_pivot_ = std::numeric_limits<double>::infinity();
    if (scale == 0.0) throw NumericError("dense LU: zero matrix");
    for (size_t i = 0; i < n; ++i) pivot_[i] = i;
    for (size_t k = 0; k < n; ++k) {
      // Partial pivot: find the largest |a_ik| at or below the diagonal.
      size_t p = k;
      double best = std::abs(lu_(k, k));
      for (size_t i = k + 1; i < n; ++i) {
        const double v = std::abs(lu_(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
      if (best <= scale * health::kSingularRelTol) {
        throw NumericError(
            singular_message("dense", k, n, scale, health::kSingularRelTol));
      }
      // |u_kk| == best after the swap; track it for the O(1) growth /
      // condition monitors (NaN-ignoring comparisons, like max_abs).
      if (best > max_pivot_) max_pivot_ = best;
      if (best < min_pivot_) min_pivot_ = best;
      if (p != k) {
        for (size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
        std::swap(pivot_[k], pivot_[p]);
      }
      for (size_t i = k + 1; i < n; ++i) {
        const T m = lu_(i, k) / lu_(k, k);
        lu_(i, k) = m;
        if (m != T{}) {
          for (size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
        }
      }
    }
    tsolve_.resize(n);
  }

  Matrix<T> lu_;
  std::vector<size_t> pivot_;
  mutable std::vector<T> tsolve_;  ///< transpose-solve scratch
  double scale_ = 0.0;
  double max_pivot_ = 0.0;
  double min_pivot_ = 0.0;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

}  // namespace ape
