#pragma once
/// \file interval.h
/// Closed-interval arithmetic with directed (outward) rounding.
///
/// The feasibility prover (src/lint/prove.h) evaluates the analytic
/// performance equations once, templated on the numeric type: plain
/// `double` gives a point sample, `Interval` gives a guaranteed outer
/// enclosure of every point sample over a box. Soundness then holds by
/// construction — whatever a point evaluation produces is contained in
/// the interval evaluation of the same expression — provided every
/// primitive here is an *outer* bound of the exact real-arithmetic
/// result. That is what the directed rounding is for: after each
/// floating-point bound computation the result is widened by one ulp
/// (std::nextafter towards ∓∞), so double rounding can never shave a
/// true extremum off the enclosure.
///
/// Conventions:
///  - Intervals are closed, possibly half-infinite ([x, +inf] etc.).
///    The empty interval is represented explicitly (`empty()`), and
///    every operation on an empty operand yields empty.
///  - Division by an interval containing zero follows the standard
///    extended (Kahan) case split: the result is the closed hull of the
///    true quotient set, which may be half-infinite or the whole line.
///    No exception, no NaN — containment is preserved.
///  - NaN inputs poison an interval to the whole line (never to a lying
///    narrow interval).
///
/// This is deliberately a small, dependency-free value type: only the
/// operations the performance equations need (ring ops, sqrt, atan,
/// min/max, abs, log10) are provided.

#include <string>

namespace ape::util {

class Interval {
 public:
  /// Default: the degenerate point [0, 0].
  Interval() : lo_(0.0), hi_(0.0) {}
  /// Point interval [v, v] (no widening: a double constant is exact).
  Interval(double v);  // NOLINT(google-explicit-constructor): numeric literal
                       // promotion is the whole point of the template trick.
  /// [lo, hi]; swapped endpoints are hulled, NaNs widen to (-inf, +inf).
  Interval(double lo, double hi);

  static Interval empty_set();
  /// The whole extended real line [-inf, +inf].
  static Interval whole();
  /// Hull of two scalars (order-free constructor).
  static Interval hull(double a, double b);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  bool empty() const { return empty_; }
  bool contains(double v) const;
  bool contains(const Interval& other) const;
  /// True when the intervals share at least one point.
  bool intersects(const Interval& other) const;
  double width() const;
  double mid() const;
  bool is_point() const { return !empty_ && lo_ == hi_; }

  /// Set intersection (possibly empty).
  static Interval intersect(const Interval& a, const Interval& b);
  /// Convex hull (smallest interval containing both).
  static Interval join(const Interval& a, const Interval& b);

  Interval operator-() const;
  Interval operator+(const Interval& rhs) const;
  Interval operator-(const Interval& rhs) const;
  Interval operator*(const Interval& rhs) const;
  Interval operator/(const Interval& rhs) const;
  Interval& operator+=(const Interval& rhs) { return *this = *this + rhs; }
  Interval& operator-=(const Interval& rhs) { return *this = *this - rhs; }
  Interval& operator*=(const Interval& rhs) { return *this = *this * rhs; }
  Interval& operator/=(const Interval& rhs) { return *this = *this / rhs; }

  std::string str() const;  ///< "[lo, hi]" in %.6g, "(empty)" for empty

 private:
  double lo_;
  double hi_;
  bool empty_ = false;
};

// Mixed scalar forms resolve through the implicit point constructor, but
// spell the common ones out so expression templates stay unambiguous.
inline Interval operator+(double a, const Interval& b) { return Interval(a) + b; }
inline Interval operator-(double a, const Interval& b) { return Interval(a) - b; }
inline Interval operator*(double a, const Interval& b) { return Interval(a) * b; }
inline Interval operator/(double a, const Interval& b) { return Interval(a) / b; }

/// Monotone / piecewise-monotone extensions. Domain violations clamp to
/// the valid sub-domain (sqrt of a partly-negative interval evaluates on
/// [0, hi]) and return empty when the whole interval is out of domain.
Interval sqrt(const Interval& x);
Interval atan(const Interval& x);
Interval log10(const Interval& x);
Interval abs(const Interval& x);
Interval min(const Interval& a, const Interval& b);
Interval max(const Interval& a, const Interval& b);

// The same names must resolve for plain double inside the templated
// performance equations; import the std versions under this namespace.
double sqrt(double x);
double atan(double x);
double log10(double x);
double abs(double x);
double min(double a, double b);
double max(double a, double b);

}  // namespace ape::util
