#include "src/spice/devices.h"

#include <algorithm>
#include <cmath>

#include "src/util/error.h"

namespace ape::spice {

namespace {
/// Minimum conductance added across nonlinear junctions for Newton
/// robustness (the analyses additionally apply gmin stepping).
constexpr double kGmin = 1e-12;
constexpr double kVt = 0.02585;   // thermal voltage at 300K [V]
constexpr double k4kT = 4.0 * 1.380649e-23 * 300.0;  // 4kT at 300K [J]
}  // namespace

// --- CapCompanion -----------------------------------------------------------

void CapCompanion::stamp(MnaReal& mna, NodeId p, NodeId n, double c,
                         const Solution& x, const TranContext& tc) const {
  (void)x;
  if (c <= 0.0 || tc.dt <= 0.0) return;
  // Trapezoidal: i = (2C/dt)(v - v_prev) - i_prev; BE on the first step.
  const double geq = (tc.first_step ? 1.0 : 2.0) * c / tc.dt;
  const double ieq = geq * v_prev + (tc.first_step ? 0.0 : i_prev);
  mna.add(p, p, geq);
  mna.add(n, n, geq);
  mna.add(p, n, -geq);
  mna.add(n, p, -geq);
  mna.add_rhs(p, ieq);
  mna.add_rhs(n, -ieq);
}

void CapCompanion::accept(NodeId p, NodeId n, double c, const Solution& x,
                          const TranContext& tc) {
  const double v = x.at(p) - x.at(n);
  if (c <= 0.0 || tc.dt <= 0.0) {
    v_prev = v;
    i_prev = 0.0;
    return;
  }
  const double geq = (tc.first_step ? 1.0 : 2.0) * c / tc.dt;
  const double ieq = geq * v_prev + (tc.first_step ? 0.0 : i_prev);
  i_prev = geq * v - ieq;
  v_prev = v;
}

// --- Resistor ----------------------------------------------------------------

Resistor::Resistor(std::string name, NodeId p, NodeId n, double ohms)
    : Device(std::move(name)), p_(p), n_(n), ohms_(ohms) {
  if (ohms_ <= 0.0) throw SpecError("resistor " + this->name() + ": R <= 0");
}

void Resistor::stamp_dc(MnaReal& mna, const Solution&, double) const {
  const double g = 1.0 / ohms_;
  mna.add(p_, p_, g);
  mna.add(n_, n_, g);
  mna.add(p_, n_, -g);
  mna.add(n_, p_, -g);
}

void Resistor::stamp_ac(MnaComplex& mna, double) const {
  const std::complex<double> g{1.0 / ohms_, 0.0};
  mna.add(p_, p_, g);
  mna.add(n_, n_, g);
  mna.add(p_, n_, -g);
  mna.add(n_, p_, -g);
}

void Resistor::noise_sources(std::vector<NoiseSource>& out) const {
  out.push_back({p_, n_, k4kT / ohms_, 0.0});
}

DeviceStructure Resistor::structure() const {
  return {{{p_, n_, EdgeKind::Conductive}}, {}};
}

// --- Capacitor ---------------------------------------------------------------

Capacitor::Capacitor(std::string name, NodeId p, NodeId n, double farads)
    : Device(std::move(name)), p_(p), n_(n), farads_(farads) {
  if (farads_ <= 0.0) throw SpecError("capacitor " + this->name() + ": C <= 0");
}

void Capacitor::stamp_dc(MnaReal& mna, const Solution&, double) const {
  // Open at DC; a tiny conductance keeps floating nodes solvable.
  mna.add(p_, p_, kGmin);
  mna.add(n_, n_, kGmin);
  mna.add(p_, n_, -kGmin);
  mna.add(n_, p_, -kGmin);
}

void Capacitor::stamp_ac(MnaComplex& mna, double omega) const {
  const std::complex<double> y{0.0, omega * farads_};
  mna.add(p_, p_, y);
  mna.add(n_, n_, y);
  mna.add(p_, n_, -y);
  mna.add(n_, p_, -y);
}

void Capacitor::stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const {
  state_.stamp(mna, p_, n_, farads_, x, tc);
}

void Capacitor::save_op(const Solution& x) {
  state_.v_prev = x.at(p_) - x.at(n_);
  state_.i_prev = 0.0;
}

void Capacitor::accept_tran_step(const Solution& x, const TranContext& tc) {
  state_.accept(p_, n_, farads_, x, tc);
}

DeviceStructure Capacitor::structure() const {
  return {{{p_, n_, EdgeKind::Capacitive}}, {}};
}

// --- Inductor ----------------------------------------------------------------

Inductor::Inductor(std::string name, NodeId p, NodeId n, double henries)
    : Device(std::move(name)), p_(p), n_(n), henries_(henries) {
  if (henries_ <= 0.0) throw SpecError("inductor " + this->name() + ": L <= 0");
}

void Inductor::claim_branches(size_t& next_branch) {
  branch_ = static_cast<NodeId>(next_branch++);
}

void Inductor::stamp_dc(MnaReal& mna, const Solution&, double) const {
  // Short at DC: v(p) - v(n) = 0 with branch current i.
  mna.add(p_, branch_, 1.0);
  mna.add(n_, branch_, -1.0);
  mna.add(branch_, p_, 1.0);
  mna.add(branch_, n_, -1.0);
}

void Inductor::stamp_ac(MnaComplex& mna, double omega) const {
  mna.add(p_, branch_, {1.0, 0.0});
  mna.add(n_, branch_, {-1.0, 0.0});
  mna.add(branch_, p_, {1.0, 0.0});
  mna.add(branch_, n_, {-1.0, 0.0});
  mna.add(branch_, branch_, {0.0, -omega * henries_});
}

void Inductor::stamp_tran(MnaReal& mna, const Solution&, const TranContext& tc) const {
  // Trapezoidal companion: v = (2L/dt)(i - i_prev) - v_prev.
  const double req = (tc.first_step ? 1.0 : 2.0) * henries_ / tc.dt;
  const double veq = req * i_prev_ + (tc.first_step ? 0.0 : v_prev_);
  mna.add(p_, branch_, 1.0);
  mna.add(n_, branch_, -1.0);
  mna.add(branch_, p_, 1.0);
  mna.add(branch_, n_, -1.0);
  mna.add(branch_, branch_, -req);
  mna.add_rhs(branch_, -veq);
}

void Inductor::save_op(const Solution& x) {
  i_prev_ = x.at(branch_);
  v_prev_ = 0.0;
}

void Inductor::accept_tran_step(const Solution& x, const TranContext& tc) {
  const double req = (tc.first_step ? 1.0 : 2.0) * henries_ / tc.dt;
  const double veq = req * i_prev_ + (tc.first_step ? 0.0 : v_prev_);
  i_prev_ = x.at(branch_);
  v_prev_ = req * i_prev_ - veq;
}

DeviceStructure Inductor::structure() const {
  // A DC short: v(p) = v(n) through a branch equation, like a 0 V source.
  return {{{p_, n_, EdgeKind::VoltageDefined}}, {}};
}

// --- Waveform ----------------------------------------------------------------

double Waveform::value(double t) const {
  switch (kind) {
    case Kind::Dc:
      return dc;
    case Kind::Pulse: {
      if (t < td) return v1;
      const double tc = per > 0.0 ? std::fmod(t - td, per) : (t - td);
      if (tc < tr) return v1 + (v2 - v1) * tc / std::max(tr, 1e-15);
      if (tc < tr + pw) return v2;
      if (tc < tr + pw + tf) {
        return v2 + (v1 - v2) * (tc - tr - pw) / std::max(tf, 1e-15);
      }
      return v1;
    }
    case Kind::Sin: {
      if (t < sin_td) return sin_vo;
      const double tp = t - sin_td;
      return sin_vo + sin_va * std::exp(-sin_theta * tp) *
                          std::sin(2.0 * M_PI * sin_freq * tp);
    }
    case Kind::Pwl: {
      if (pwl.empty()) return dc;
      if (t <= pwl.front().first) return pwl.front().second;
      for (size_t i = 1; i < pwl.size(); ++i) {
        if (t <= pwl[i].first) {
          const auto& [t0, y0] = pwl[i - 1];
          const auto& [t1, y1] = pwl[i];
          return y0 + (y1 - y0) * (t - t0) / std::max(t1 - t0, 1e-15);
        }
      }
      return pwl.back().second;
    }
  }
  return dc;
}

// --- VSource -----------------------------------------------------------------

VSource::VSource(std::string name, NodeId p, NodeId n, Waveform wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {}

void VSource::claim_branches(size_t& next_branch) {
  branch_ = static_cast<NodeId>(next_branch++);
}

void VSource::stamp_dc(MnaReal& mna, const Solution&, double src_scale) const {
  mna.add(p_, branch_, 1.0);
  mna.add(n_, branch_, -1.0);
  mna.add(branch_, p_, 1.0);
  mna.add(branch_, n_, -1.0);
  mna.add_rhs(branch_, wave_.value(0.0) * src_scale);
}

void VSource::stamp_ac(MnaComplex& mna, double) const {
  mna.add(p_, branch_, {1.0, 0.0});
  mna.add(n_, branch_, {-1.0, 0.0});
  mna.add(branch_, p_, {1.0, 0.0});
  mna.add(branch_, n_, {-1.0, 0.0});
  const double ph = wave_.ac_phase_deg * M_PI / 180.0;
  mna.add_rhs(branch_, std::complex<double>{wave_.ac_mag * std::cos(ph),
                                            wave_.ac_mag * std::sin(ph)});
}

void VSource::stamp_tran(MnaReal& mna, const Solution&, const TranContext& tc) const {
  mna.add(p_, branch_, 1.0);
  mna.add(n_, branch_, -1.0);
  mna.add(branch_, p_, 1.0);
  mna.add(branch_, n_, -1.0);
  mna.add_rhs(branch_, wave_.value(tc.time));
}

DeviceStructure VSource::structure() const {
  return {{{p_, n_, EdgeKind::VoltageDefined}}, {}};
}

// --- ISource -----------------------------------------------------------------

ISource::ISource(std::string name, NodeId p, NodeId n, Waveform wave)
    : Device(std::move(name)), p_(p), n_(n), wave_(std::move(wave)) {}

void ISource::stamp_dc(MnaReal& mna, const Solution&, double src_scale) const {
  // Current flows p -> n inside the source (SPICE convention).
  const double i = wave_.value(0.0) * src_scale;
  mna.add_rhs(p_, -i);
  mna.add_rhs(n_, i);
}

void ISource::stamp_ac(MnaComplex& mna, double) const {
  const double ph = wave_.ac_phase_deg * M_PI / 180.0;
  const std::complex<double> i{wave_.ac_mag * std::cos(ph),
                               wave_.ac_mag * std::sin(ph)};
  mna.add_rhs(p_, -i);
  mna.add_rhs(n_, i);
}

void ISource::stamp_tran(MnaReal& mna, const Solution&, const TranContext& tc) const {
  const double i = wave_.value(tc.time);
  mna.add_rhs(p_, -i);
  mna.add_rhs(n_, i);
}

DeviceStructure ISource::structure() const {
  return {{{p_, n_, EdgeKind::CurrentSource}}, {}};
}

// --- Controlled sources ------------------------------------------------------

Vcvs::Vcvs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gain)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gain_(gain) {}

void Vcvs::claim_branches(size_t& next_branch) {
  branch_ = static_cast<NodeId>(next_branch++);
}

void Vcvs::stamp_dc(MnaReal& mna, const Solution&, double) const {
  mna.add(p_, branch_, 1.0);
  mna.add(n_, branch_, -1.0);
  mna.add(branch_, p_, 1.0);
  mna.add(branch_, n_, -1.0);
  mna.add(branch_, cp_, -gain_);
  mna.add(branch_, cn_, gain_);
}

void Vcvs::stamp_ac(MnaComplex& mna, double) const {
  mna.add(p_, branch_, {1.0, 0.0});
  mna.add(n_, branch_, {-1.0, 0.0});
  mna.add(branch_, p_, {1.0, 0.0});
  mna.add(branch_, n_, {-1.0, 0.0});
  mna.add(branch_, cp_, {-gain_, 0.0});
  mna.add(branch_, cn_, {gain_, 0.0});
}

DeviceStructure Vcvs::structure() const {
  return {{{p_, n_, EdgeKind::VoltageDefined}}, {cp_, cn_}};
}

Vccs::Vccs(std::string name, NodeId p, NodeId n, NodeId cp, NodeId cn, double gm)
    : Device(std::move(name)), p_(p), n_(n), cp_(cp), cn_(cn), gm_(gm) {}

void Vccs::stamp_dc(MnaReal& mna, const Solution&, double) const {
  mna.add(p_, cp_, gm_);
  mna.add(p_, cn_, -gm_);
  mna.add(n_, cp_, -gm_);
  mna.add(n_, cn_, gm_);
}

void Vccs::stamp_ac(MnaComplex& mna, double) const {
  mna.add(p_, cp_, {gm_, 0.0});
  mna.add(p_, cn_, {-gm_, 0.0});
  mna.add(n_, cp_, {-gm_, 0.0});
  mna.add(n_, cn_, {gm_, 0.0});
}

DeviceStructure Vccs::structure() const {
  return {{{p_, n_, EdgeKind::CurrentSource}}, {cp_, cn_}};
}

Cccs::Cccs(std::string name, NodeId p, NodeId n, const VSource* ctrl, double gain)
    : Device(std::move(name)), p_(p), n_(n), ctrl_(ctrl), gain_(gain) {
  if (ctrl_ == nullptr) throw SpecError("CCCS " + this->name() + ": no control source");
}

void Cccs::stamp_dc(MnaReal& mna, const Solution&, double) const {
  mna.add(p_, ctrl_->branch(), gain_);
  mna.add(n_, ctrl_->branch(), -gain_);
}

void Cccs::stamp_ac(MnaComplex& mna, double) const {
  mna.add(p_, ctrl_->branch(), {gain_, 0.0});
  mna.add(n_, ctrl_->branch(), {-gain_, 0.0});
}

DeviceStructure Cccs::structure() const {
  return {{{p_, n_, EdgeKind::CurrentSource}}, {}};
}

Ccvs::Ccvs(std::string name, NodeId p, NodeId n, const VSource* ctrl, double r)
    : Device(std::move(name)), p_(p), n_(n), ctrl_(ctrl), r_(r) {
  if (ctrl_ == nullptr) throw SpecError("CCVS " + this->name() + ": no control source");
}

void Ccvs::claim_branches(size_t& next_branch) {
  branch_ = static_cast<NodeId>(next_branch++);
}

void Ccvs::stamp_dc(MnaReal& mna, const Solution&, double) const {
  mna.add(p_, branch_, 1.0);
  mna.add(n_, branch_, -1.0);
  mna.add(branch_, p_, 1.0);
  mna.add(branch_, n_, -1.0);
  mna.add(branch_, ctrl_->branch(), -r_);
}

void Ccvs::stamp_ac(MnaComplex& mna, double) const {
  mna.add(p_, branch_, {1.0, 0.0});
  mna.add(n_, branch_, {-1.0, 0.0});
  mna.add(branch_, p_, {1.0, 0.0});
  mna.add(branch_, n_, {-1.0, 0.0});
  mna.add(branch_, ctrl_->branch(), {-r_, 0.0});
}

DeviceStructure Ccvs::structure() const {
  return {{{p_, n_, EdgeKind::VoltageDefined}}, {}};
}

// --- Diode -------------------------------------------------------------------

Diode::Diode(std::string name, NodeId p, NodeId n, double is, double n_emission)
    : Device(std::move(name)), p_(p), n_(n), is_(is), nf_(n_emission) {}

void Diode::stamp_dc(MnaReal& mna, const Solution& x, double) const {
  const double nvt = nf_ * kVt;
  // Exponent limiting keeps Newton iterates finite.
  const double vd = std::min(x.at(p_) - x.at(n_), 40.0 * nvt);
  const double ex = std::exp(vd / nvt);
  const double id = is_ * (ex - 1.0);
  const double gd = std::max(is_ * ex / nvt, kGmin);
  const double ieq = id - gd * vd;
  mna.add(p_, p_, gd);
  mna.add(n_, n_, gd);
  mna.add(p_, n_, -gd);
  mna.add(n_, p_, -gd);
  mna.add_rhs(p_, -ieq);
  mna.add_rhs(n_, ieq);
}

void Diode::save_op(const Solution& x) {
  const double nvt = nf_ * kVt;
  const double vd = std::min(x.at(p_) - x.at(n_), 40.0 * nvt);
  gd_op_ = std::max(is_ * std::exp(vd / nvt) / nvt, kGmin);
}

void Diode::stamp_ac(MnaComplex& mna, double) const {
  mna.add(p_, p_, {gd_op_, 0.0});
  mna.add(n_, n_, {gd_op_, 0.0});
  mna.add(p_, n_, {-gd_op_, 0.0});
  mna.add(n_, p_, {-gd_op_, 0.0});
}

DeviceStructure Diode::structure() const {
  return {{{p_, n_, EdgeKind::Conductive}}, {}};
}

// --- Mosfet ------------------------------------------------------------------

Mosfet::Mosfet(std::string name, NodeId d, NodeId g, NodeId s, NodeId b,
               const MosModelCard* model, double w, double l, double ad,
               double as, double pd, double ps)
    : Device(std::move(name)),
      d_(d),
      g_(g),
      s_(s),
      b_(b),
      model_(model),
      w_(w),
      l_(l),
      ad_(ad),
      as_(as),
      pd_(pd),
      ps_(ps) {
  if (model_ == nullptr) throw SpecError("mosfet " + this->name() + ": no model");
  if (w_ <= 0.0 || l_ <= 0.0) {
    throw SpecError("mosfet " + this->name() + ": non-positive geometry");
  }
  // Default junction geometry if the netlist omitted it: a 3L-deep region.
  if (ad_ <= 0.0) ad_ = 3.0 * l_ * w_;
  if (as_ <= 0.0) as_ = 3.0 * l_ * w_;
  if (pd_ <= 0.0) pd_ = 2.0 * (3.0 * l_ + w_);
  if (ps_ <= 0.0) ps_ = 2.0 * (3.0 * l_ + w_);
}

void Mosfet::resize(double w, double l) {
  if (w <= 0.0 || l <= 0.0) {
    throw SpecError("mosfet " + name() + ": resize to non-positive geometry");
  }
  w_ = w;
  l_ = l;
  ad_ = 3.0 * l_ * w_;
  as_ = ad_;
  pd_ = 2.0 * (3.0 * l_ + w_);
  ps_ = pd_;
}

MosEval Mosfet::eval_at(const Solution& x, double* id_true) const {
  double vgs = x.at(g_) - x.at(s_);
  double vds = x.at(d_) - x.at(s_);
  double vbs = x.at(b_) - x.at(s_);
  if (model_->type == MosType::Pmos) {
    vgs = -vgs;
    vds = -vds;
    vbs = -vbs;
  }
  MosEval e = mos_eval(*model_, vgs, vds, vbs, w_, l_, ad_, as_, pd_, ps_);
  // For PMOS the drain-terminal current is the negative of the normalized
  // current; the conductances are sign-invariant under the mapping.
  *id_true = (model_->type == MosType::Pmos) ? -e.ids : e.ids;
  return e;
}

void Mosfet::stamp_dc(MnaReal& mna, const Solution& x, double) const {
  double id = 0.0;
  const MosEval e = eval_at(x, &id);
  const double gm = std::max(e.gm, 0.0);
  const double gds = std::max(e.gds, kGmin);
  const double gmb = std::max(e.gmb, 0.0);

  const double vgs = x.at(g_) - x.at(s_);
  const double vds = x.at(d_) - x.at(s_);
  const double vbs = x.at(b_) - x.at(s_);
  // Companion: Id(x) linearized in (vgs, vds, vbs).
  const double ieq = id - gm * vgs - gds * vds - gmb * vbs;

  mna.add(d_, g_, gm);
  mna.add(d_, d_, gds);
  mna.add(d_, b_, gmb);
  mna.add(d_, s_, -(gm + gds + gmb));
  mna.add(s_, g_, -gm);
  mna.add(s_, d_, -gds);
  mna.add(s_, b_, -gmb);
  mna.add(s_, s_, gm + gds + gmb);
  mna.add_rhs(d_, -ieq);
  mna.add_rhs(s_, ieq);
}

void Mosfet::save_op(const Solution& x) {
  double id = 0.0;
  op_ = eval_at(x, &id);
  // Initialize transient companions at the DC point.
  cgs_st_ = {x.at(g_) - x.at(s_), 0.0};
  cgd_st_ = {x.at(g_) - x.at(d_), 0.0};
  cgb_st_ = {x.at(g_) - x.at(b_), 0.0};
  cdb_st_ = {x.at(d_) - x.at(b_), 0.0};
  csb_st_ = {x.at(s_) - x.at(b_), 0.0};
}

void Mosfet::stamp_ac(MnaComplex& mna, double omega) const {
  const double gm = op_.gm;
  const double gds = std::max(op_.gds, kGmin);
  const double gmb = op_.gmb;

  mna.add(d_, g_, {gm, 0.0});
  mna.add(d_, d_, {gds, 0.0});
  mna.add(d_, b_, {gmb, 0.0});
  mna.add(d_, s_, {-(gm + gds + gmb), 0.0});
  mna.add(s_, g_, {-gm, 0.0});
  mna.add(s_, d_, {-gds, 0.0});
  mna.add(s_, b_, {-gmb, 0.0});
  mna.add(s_, s_, {gm + gds + gmb, 0.0});

  auto cap = [&](NodeId a, NodeId bn, double c) {
    const std::complex<double> y{0.0, omega * c};
    mna.add(a, a, y);
    mna.add(bn, bn, y);
    mna.add(a, bn, -y);
    mna.add(bn, a, -y);
  };
  cap(g_, s_, op_.cgs);
  cap(g_, d_, op_.cgd);
  cap(g_, b_, op_.cgb);
  cap(d_, b_, op_.cdb);
  cap(s_, b_, op_.csb);
}

void Mosfet::stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const {
  stamp_dc(mna, x, 1.0);  // resistive companion at candidate x
  cgs_st_.stamp(mna, g_, s_, op_.cgs, x, tc);
  cgd_st_.stamp(mna, g_, d_, op_.cgd, x, tc);
  cgb_st_.stamp(mna, g_, b_, op_.cgb, x, tc);
  cdb_st_.stamp(mna, d_, b_, op_.cdb, x, tc);
  csb_st_.stamp(mna, s_, b_, op_.csb, x, tc);
}

void Mosfet::noise_sources(std::vector<NoiseSource>& out) const {
  // Channel thermal noise (long-channel gamma = 2/3) plus SPICE2 flicker,
  // both as drain-source current sources at the cached operating point.
  const double gm_eff = std::max(op_.gm + op_.gmb, 0.0);
  NoiseSource src;
  src.p = d_;
  src.n = s_;
  src.thermal = k4kT * (2.0 / 3.0) * gm_eff;
  if (model_->kf > 0.0) {
    const double leff = std::max(model_->leff(l_), 1e-8);
    src.flicker = model_->kf * std::pow(std::fabs(op_.ids), model_->af) /
                  (model_->cox() * leff * leff);
  }
  out.push_back(src);
}

DeviceStructure Mosfet::structure() const {
  // The channel conducts drain-source; gate and bulk draw no DC current
  // (gate is purely capacitive, the bulk row is never stamped), so both
  // are sense terminals that need a DC path from elsewhere.
  return {{{d_, s_, EdgeKind::Conductive}}, {g_, b_}};
}

void Mosfet::accept_tran_step(const Solution& x, const TranContext& tc) {
  cgs_st_.accept(g_, s_, op_.cgs, x, tc);
  cgd_st_.accept(g_, d_, op_.cgd, x, tc);
  cgb_st_.accept(g_, b_, op_.cgb, x, tc);
  cdb_st_.accept(d_, b_, op_.cdb, x, tc);
  csb_st_.accept(s_, b_, op_.csb, x, tc);
  // Refresh the bias-dependent capacitances for the next step.
  double id = 0.0;
  op_ = eval_at(x, &id);
}

}  // namespace ape::spice
