#include "src/spice/fault.h"

#include <chrono>
#include <limits>
#include <thread>

#include "src/util/error.h"

namespace ape::spice {
namespace {

thread_local FaultInjector* g_injector = nullptr;

}  // namespace

FaultInjector* fault_injector() { return g_injector; }

ScopedFaultInjection::ScopedFaultInjection(FaultInjector& injector)
    : previous_(g_injector) {
  g_injector = &injector;
}

ScopedFaultInjection::~ScopedFaultInjection() { g_injector = previous_; }

bool FaultInjector::on_lu_solve() {
  const long ordinal = counts_.lu_solves++;
  bool fail = lu_fail_first_ >= 0 && ordinal >= lu_fail_first_ &&
              ordinal - lu_fail_first_ < lu_fail_count_;
  if (!fail && lu_fail_prob_ > 0.0 && rng_.uniform() < lu_fail_prob_) {
    fail = true;
  }
  if (fail) ++counts_.injected_singular;
  return fail;
}

bool FaultInjector::on_assembly(MnaReal& mna) {
  const long ordinal = counts_.assemblies++;
  if (poison_first_ < 0 || ordinal < poison_first_ ||
      ordinal - poison_first_ >= poison_count_) {
    return false;
  }
  // Poison a diagonal entry: NaN propagates through the factorization
  // into a fully non-finite solution, the hazard the solvers must catch.
  mna.matrix()(0, 0) = std::numeric_limits<double>::quiet_NaN();
  ++counts_.injected_nonfinite;
  return true;
}

bool FaultInjector::on_dc_convergence(double gmin, double src_scale) {
  if (veto_gmin_left_ <= 0 || src_scale != 1.0) return false;
  // Match the rung with a relative tolerance: rungs are decade-spaced.
  if (gmin <= 0.0 || veto_gmin_ <= 0.0) return false;
  const double ratio = gmin / veto_gmin_;
  if (ratio < 0.99 || ratio > 1.01) return false;
  --veto_gmin_left_;
  ++counts_.injected_vetoes;
  return true;
}

bool FaultInjector::on_transient_step() {
  ++counts_.tran_steps;
  if (tran_stall_s_ > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(tran_stall_s_));
  }
  if (veto_tran_left_ <= 0) return false;
  --veto_tran_left_;
  ++counts_.injected_vetoes;
  return true;
}

bool FaultInjector::on_refinement() {
  const long ordinal = counts_.refinements++;
  const bool fail = refine_fail_first_ >= 0 && ordinal >= refine_fail_first_ &&
                    ordinal - refine_fail_first_ < refine_fail_count_;
  if (fail) ++counts_.injected_refine_diverge;
  return fail;
}

bool FaultInjector::on_equilibrate() {
  const long ordinal = counts_.equilibrations++;
  const bool fail = equil_fail_first_ >= 0 && ordinal >= equil_fail_first_ &&
                    ordinal - equil_fail_first_ < equil_fail_count_;
  if (fail) ++counts_.injected_equilibrate_overflow;
  return fail;
}

bool FaultInjector::on_cond_estimate() {
  const long ordinal = counts_.cond_estimates++;
  const bool fail = cond_fail_first_ >= 0 && ordinal >= cond_fail_first_ &&
                    ordinal - cond_fail_first_ < cond_fail_count_;
  if (fail) ++counts_.injected_cond_fails;
  return fail;
}

void FaultInjector::on_cost_eval() {
  const long ordinal = ++counts_.cost_evals;
  if (spec_error_period_ > 0 && ordinal % spec_error_period_ == 0) {
    ++counts_.injected_spec_errors;
    throw SpecError("fault injection: estimator SpecError at cost evaluation " +
                    std::to_string(ordinal));
  }
}

}  // namespace ape::spice
