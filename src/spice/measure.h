#pragma once
/// \file measure.h
/// Performance extraction from AC and transient results: the quantities
/// the paper's tables report (DC gain, UGF, bandwidth, phase margin,
/// slew rate, delay, settling).

#include <complex>
#include <optional>
#include <vector>

#include "src/spice/analysis.h"

namespace ape::spice {

/// A magnitude/phase transfer function extracted from an AC sweep at one
/// output node (the stimulus source must have ac_mag = 1).
class Bode {
public:
  Bode(const AcResult& ac, NodeId out);

  size_t size() const { return freq_.size(); }
  double freq(size_t k) const { return freq_[k]; }
  double mag(size_t k) const { return mag_[k]; }
  double phase_deg(size_t k) const { return phase_deg_[k]; }

  /// Gain at the lowest swept frequency (the "DC" gain for a sweep that
  /// starts well below the first pole).
  double dc_gain() const { return mag_.front(); }

  /// |H| interpolated at an arbitrary frequency (log-x, log-y interpolation).
  double mag_at(double f) const;

  /// First downward |H| = 1 crossing (unity-gain frequency) [Hz];
  /// nullopt if the gain never crosses unity inside the sweep.
  std::optional<double> unity_gain_freq() const;

  /// First frequency where |H| falls to dc_gain/sqrt(2) [Hz].
  std::optional<double> f_3db() const;

  /// First downward |H| = level crossing [Hz] (e.g. the -20 dB point at
  /// level = dc_gain/10).
  std::optional<double> mag_crossing(double level) const;

  /// Phase margin in degrees at the unity-gain frequency.
  std::optional<double> phase_margin_deg() const;

  /// Frequency of the magnitude peak (band-pass center) and its gain.
  double peak_freq() const;
  double peak_gain() const;

  /// -3 dB bandwidth around the peak (band-pass); nullopt if the edges
  /// fall outside the sweep.
  std::optional<double> bandwidth_3db() const;

private:
  std::optional<double> crossing(double level, size_t from) const;

  std::vector<double> freq_;
  std::vector<double> mag_;
  std::vector<double> phase_deg_;
};

// ---------------------------------------------------------------------------
// Transient measurements.

/// Maximum |dv/dt| of a node over the record [V/s]. The paper reports
/// slew rate in V/us; divide by 1e6.
double slew_rate(const TranResult& tr, NodeId node);

/// First time the node crosses \p level (with the crossing direction
/// inferred from the initial value); nullopt if never.
std::optional<double> crossing_time(const TranResult& tr, NodeId node, double level);

/// Time after \p t_from at which the node stays within +/- \p tol_frac of
/// its final value for the rest of the record.
std::optional<double> settling_time(const TranResult& tr, NodeId node,
                                    double tol_frac = 0.02, double t_from = 0.0);

/// Final value of a node (last sample).
double final_value(const TranResult& tr, NodeId node);

}  // namespace ape::spice
