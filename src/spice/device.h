#pragma once
/// \file device.h
/// Device base class and the MNA stamping interfaces.
///
/// The MNA vector is [node voltages (ground excluded) | branch currents].
/// Devices that introduce branch equations (voltage sources, VCVS/CCVS,
/// inductors) claim branch rows during Circuit::finalize().

#include <complex>
#include <string>
#include <vector>

#include "src/util/matrix.h"
#include "src/util/sparse.h"

namespace ape::spice {

/// Node handle: index into the MNA vector; kGround is the reference node
/// and is never stamped.
using NodeId = int;
inline constexpr NodeId kGround = -1;

/// A candidate or converged solution vector (node voltages + branch currents).
struct Solution {
  std::vector<double> x;

  double at(NodeId n) const { return n == kGround ? 0.0 : x[static_cast<size_t>(n)]; }
};

/// Real-valued MNA system for DC and transient Newton iterations.
class MnaReal {
public:
  explicit MnaReal(size_t dim) : g_(dim, dim), rhs_(dim, 0.0) {}

  size_t dim() const { return rhs_.size(); }
  void clear() {
    g_.set_zero();
    rhs_.assign(rhs_.size(), 0.0);
  }

  /// Add \p value at (i, j), ignoring ground rows/columns.
  void add(NodeId i, NodeId j, double value) {
    if (i == kGround || j == kGround) return;
    if (recorder_ != nullptr) recorder_->add(i, j);
    g_(static_cast<size_t>(i), static_cast<size_t>(j)) += value;
  }
  /// Add \p value to the right-hand side at row \p i.
  void add_rhs(NodeId i, double value) {
    if (i == kGround) return;
    rhs_[static_cast<size_t>(i)] += value;
  }

  /// Attach (or detach with nullptr) a sparsity-pattern recorder: every
  /// subsequent add() also registers its (i, j) slot. The kernel records
  /// *stamp calls*, not nonzero values, so a device stamping an exact
  /// 0.0 (a cutoff MOSFET's gm) still claims its structural slot.
  void set_recorder(SparsePattern* rec) { recorder_ = rec; }

  RealMatrix& matrix() { return g_; }
  const RealMatrix& matrix() const { return g_; }
  std::vector<double>& rhs() { return rhs_; }
  const std::vector<double>& rhs() const { return rhs_; }

private:
  RealMatrix g_;
  std::vector<double> rhs_;
  SparsePattern* recorder_ = nullptr;  ///< optional, not owned
};

/// Complex MNA system for small-signal AC analysis.
class MnaComplex {
public:
  explicit MnaComplex(size_t dim) : g_(dim, dim), rhs_(dim, {0.0, 0.0}) {}

  size_t dim() const { return rhs_.size(); }
  void clear() {
    g_.set_zero();
    rhs_.assign(rhs_.size(), std::complex<double>{0.0, 0.0});
  }
  void add(NodeId i, NodeId j, std::complex<double> value) {
    if (i == kGround || j == kGround) return;
    if (recorder_ != nullptr) recorder_->add(i, j);
    g_(static_cast<size_t>(i), static_cast<size_t>(j)) += value;
  }
  void add_rhs(NodeId i, std::complex<double> value) {
    if (i == kGround) return;
    rhs_[static_cast<size_t>(i)] += value;
  }

  /// Attach (or detach with nullptr) a sparsity-pattern recorder; see
  /// MnaReal::set_recorder.
  void set_recorder(SparsePattern* rec) { recorder_ = rec; }

  ComplexMatrix& matrix() { return g_; }
  const ComplexMatrix& matrix() const { return g_; }
  std::vector<std::complex<double>>& rhs() { return rhs_; }
  const std::vector<std::complex<double>>& rhs() const { return rhs_; }

private:
  ComplexMatrix g_;
  std::vector<std::complex<double>> rhs_;
  SparsePattern* recorder_ = nullptr;  ///< optional, not owned
};

/// One equivalent noise-current source between two nodes, with a white
/// (thermal/shot) part and a 1/f (flicker) part:
///   S_i(f) = thermal + flicker / f     [A^2/Hz]
struct NoiseSource {
  NodeId p = kGround;
  NodeId n = kGround;
  double thermal = 0.0;
  double flicker = 0.0;

  double psd(double f_hz) const { return thermal + flicker / f_hz; }
};

/// Context passed to transient stamps.
struct TranContext {
  double dt = 0.0;        ///< current step size [s]
  double time = 0.0;      ///< time being solved for [s]
  bool first_step = true; ///< true on the step leaving the DC operating point
};

// ---------------------------------------------------------------------------

/// How a device edge behaves in the DC MNA structure. The static
/// analyzer (src/lint) uses this classification to prove structural
/// solvability — voltage-source loops, current-source cutsets and
/// missing ground paths — without assembling or factoring anything.
enum class EdgeKind {
  Conductive,     ///< carries DC current with finite conductance (R, diode,
                  ///< MOSFET channel)
  VoltageDefined, ///< constrains v(p) - v(n) via a branch equation (V, E, H,
                  ///< inductor at DC); a cycle of these is singular
  CurrentSource,  ///< injects a fixed/controlled current, no DC conductance
                  ///< (I, F, G); a cutset of these is singular
  Capacitive,     ///< open at DC (held up only by gmin), conducts in AC
};

/// One structural edge between two terminals of a device.
struct StructuralEdge {
  NodeId p = kGround;
  NodeId n = kGround;
  EdgeKind kind = EdgeKind::Conductive;
};

/// Structural description of one device: its electrical edges plus any
/// high-impedance sense terminals (MOS gate/bulk, controlled-source
/// control pins) that attach to a node without providing a DC path.
struct DeviceStructure {
  std::vector<StructuralEdge> edges;
  std::vector<NodeId> sense;
};

/// Abstract circuit element.
class Device {
public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Claim branch rows; \p next_branch is the next free MNA index.
  virtual void claim_branches(size_t& next_branch) { (void)next_branch; }

  /// True when stamp_dc / stamp_tran depend on the candidate solution x
  /// (MOSFETs, diodes). Linear devices are stamped once into the compiled
  /// baseline (src/spice/kernel.h) and skipped on every subsequent Newton
  /// iteration; nonlinear devices are restamped each iteration.
  virtual bool is_nonlinear() const { return false; }

  /// Stamp the linearized (companion) model around candidate solution \p x
  /// for a DC Newton iteration. \p src_scale scales independent sources
  /// (source-stepping homotopy).
  virtual void stamp_dc(MnaReal& mna, const Solution& x, double src_scale) const = 0;

  /// Record the converged DC operating point (bias-dependent small-signal
  /// parameters are cached here for AC / transient use).
  virtual void save_op(const Solution& x) { (void)x; }

  /// Stamp the small-signal model at angular frequency \p omega.
  virtual void stamp_ac(MnaComplex& mna, double omega) const = 0;

  /// Stamp for one transient Newton iteration at candidate \p x.
  /// Default: same as DC (resistive elements).
  virtual void stamp_tran(MnaReal& mna, const Solution& x, const TranContext& tc) const {
    (void)tc;
    stamp_dc(mna, x, 1.0);
  }

  /// Accept the converged transient step (update integrator state).
  virtual void accept_tran_step(const Solution& x, const TranContext& tc) {
    (void)x;
    (void)tc;
  }

  /// Append this device's equivalent noise-current sources (evaluated at
  /// the cached operating point). Noiseless devices append nothing.
  virtual void noise_sources(std::vector<NoiseSource>& out) const { (void)out; }

  /// Structural description for the static analyzer (src/lint): which
  /// terminal pairs form DC edges and which terminals only sense. The
  /// default (no edges, no terminals) marks the device opaque — the
  /// analyzer reports it as unmodeled instead of guessing.
  virtual DeviceStructure structure() const { return {}; }

private:
  std::string name_;
};

}  // namespace ape::spice
