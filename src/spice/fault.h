#pragma once
/// \file fault.h
/// Deterministic fault injection for the estimate -> verify -> synthesize
/// pipeline.
///
/// A FaultInjector is installed per-thread with ScopedFaultInjection
/// (RAII); instrumented code (newton_dc, the MNA LU call sites, the
/// transient stepper, the synthesis cost wrappers) consults the
/// thread-local injector through fault_injector(), which is nullptr in
/// production. The probe sites reduce to a single thread-local pointer
/// load plus branch when no injector is installed — zero observable
/// overhead — and the injector itself is deterministic: faults fire on
/// configured call ordinals (and, for the randomized knobs, from an
/// explicitly seeded Rng), so a failing robustness test replays exactly.
///
/// Faults supported:
///  - forced singular LU factorization on chosen solve ordinals;
///  - non-finite (NaN) poisoning of assembled MNA stamps;
///  - convergence veto at a chosen gmin rung (forces the DC recovery
///    ladder onto its next plan);
///  - transient Newton veto (forces step halvings / sub-stepping);
///  - transient stall (sleeps per step — a "hanging spec" for deadline
///    and cancellation tests of the supervised runtime);
///  - SpecError thrown from the synthesis cost evaluation (simulates an
///    estimator failure mid-synthesis);
///  - random LU failures with configured probability (seeded);
///  - numerical-health faults (DESIGN.md section 15): diverging iterative
///    refinement, overflowing equilibration scales, and failing condition
///    estimates, each on chosen probe ordinals.

#include <cstdint>
#include <limits>

#include "src/spice/device.h"
#include "src/util/rng.h"

namespace ape::spice {

class FaultInjector {
public:
  /// Counters of probe traffic and injected faults (for assertions).
  struct Counts {
    long lu_solves = 0;          ///< LU probe calls seen
    long assemblies = 0;         ///< MNA assembly probe calls seen
    long cost_evals = 0;         ///< synthesis cost-eval probe calls seen
    long tran_steps = 0;         ///< transient Newton probe calls seen
    long refinements = 0;        ///< iterative-refinement probe calls seen
    long equilibrations = 0;     ///< equilibration probe calls seen
    long cond_estimates = 0;     ///< condition-estimate probe calls seen
    int injected_singular = 0;   ///< forced-singular LU faults fired
    int injected_nonfinite = 0;  ///< NaN stamp poisonings fired
    int injected_vetoes = 0;     ///< convergence vetoes fired
    int injected_spec_errors = 0;///< cost-eval SpecErrors fired
    int injected_refine_diverge = 0;      ///< refinement divergences fired
    int injected_equilibrate_overflow = 0;///< equilibration overflows fired
    int injected_cond_fails = 0; ///< condition-estimate failures fired
  };

  explicit FaultInjector(uint64_t seed = 1) : rng_(seed) {}

  // --- configuration -------------------------------------------------------

  /// Force the LU solves with 0-based ordinals in [first, first + count)
  /// to fail as singular.
  void fail_lu(long first, long count = 1) {
    lu_fail_first_ = first;
    lu_fail_count_ = count;
  }

  /// Force every LU solve from 0-based ordinal \p first on to fail.
  void fail_lu_from(long first) {
    lu_fail_first_ = first;
    lu_fail_count_ = std::numeric_limits<long>::max();
  }

  /// Each LU solve fails independently with probability \p p (seeded).
  void fail_lu_randomly(double p) { lu_fail_prob_ = p; }

  /// Poison one stamp of the MNA assembly with 0-based ordinal \p nth
  /// (and the following count - 1 assemblies) with a NaN.
  void poison_stamp(long nth, long count = 1) {
    poison_first_ = nth;
    poison_count_ = count;
  }

  /// Veto Newton convergence at gmin rung \p gmin (full source scale)
  /// for the first \p times visits to that rung.
  void veto_gmin_rung(double gmin, int times = 1) {
    veto_gmin_ = gmin;
    veto_gmin_left_ = times;
  }

  /// Veto the first \p times transient Newton solves (each veto forces a
  /// step halving, i.e. sub-stepping below the user grid).
  void veto_transient(int times) { veto_tran_left_ = times; }

  /// Sleep \p seconds in every transient Newton probe — the "hanging
  /// spec" fault for supervisor deadline tests. The stall happens at a
  /// probe site, so the solver state stays consistent and the ambient
  /// budget check at the top of the next sub-step observes the deadline.
  void stall_transient(double seconds) { tran_stall_s_ = seconds; }

  /// Throw ape::SpecError from every \p n-th synthesis cost evaluation
  /// (1-based period; n = 3 faults evals 3, 6, 9, ...).
  void throw_spec_error_every(long n) { spec_error_period_ = n; }

  /// Force iterative refinement with 0-based ordinals in
  /// [first, first + count) to diverge (the kernel keeps the factored
  /// solution and escalates along the recovery ladder).
  void refine_diverge(long first, long count = 1) {
    refine_fail_first_ = first;
    refine_fail_count_ = count;
  }

  /// Force equilibration-scale computations with 0-based ordinals in
  /// [first, first + count) to report overflow (the kernel skips
  /// equilibration for that solve and moves to the next rung).
  void equilibrate_overflow(long first, long count = 1) {
    equil_fail_first_ = first;
    equil_fail_count_ = count;
  }

  /// Force condition estimates with 0-based ordinals in
  /// [first, first + count) to fail; the kernel records +inf and treats
  /// the system as suspect (refinement triggers).
  void cond_estimate_fail(long first, long count = 1) {
    cond_fail_first_ = first;
    cond_fail_count_ = count;
  }

  // --- probes (called from instrumented code; cheap when not configured) ---

  /// LU solve probe. Returns true when this solve must fail as singular.
  bool on_lu_solve();

  /// MNA assembly probe; may write a NaN into the system. Returns true
  /// when the system was poisoned.
  bool on_assembly(MnaReal& mna);

  /// Convergence-veto probe, called by newton_dc after a converged
  /// iteration at (gmin, src_scale). Returns true to discard the
  /// convergence and report failure for this rung.
  bool on_dc_convergence(double gmin, double src_scale);

  /// Transient Newton probe. Returns true to veto this solve attempt.
  bool on_transient_step();

  /// Synthesis cost-eval probe. Throws ape::SpecError when configured.
  void on_cost_eval();

  /// Iterative-refinement probe. Returns true when this refinement must
  /// be treated as diverged.
  bool on_refinement();

  /// Equilibration probe. Returns true when the scale computation must
  /// be treated as overflowed (equilibration skipped).
  bool on_equilibrate();

  /// Condition-estimate probe. Returns true when the estimate must fail
  /// (reported as +inf by the kernel).
  bool on_cond_estimate();

  const Counts& counts() const { return counts_; }

private:
  Rng rng_;
  Counts counts_;

  long lu_fail_first_ = -1;
  long lu_fail_count_ = 0;
  double lu_fail_prob_ = 0.0;
  long poison_first_ = -1;
  long poison_count_ = 0;
  double veto_gmin_ = -1.0;
  int veto_gmin_left_ = 0;
  int veto_tran_left_ = 0;
  double tran_stall_s_ = 0.0;
  long spec_error_period_ = 0;
  long refine_fail_first_ = -1;
  long refine_fail_count_ = 0;
  long equil_fail_first_ = -1;
  long equil_fail_count_ = 0;
  long cond_fail_first_ = -1;
  long cond_fail_count_ = 0;
};

/// The injector installed on this thread (nullptr in production).
FaultInjector* fault_injector();

/// RAII installation of a FaultInjector for the current scope/thread.
/// Nesting replaces the injector and restores the previous one on exit.
class ScopedFaultInjection {
public:
  explicit ScopedFaultInjection(FaultInjector& injector);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

private:
  FaultInjector* previous_;
};

}  // namespace ape::spice
