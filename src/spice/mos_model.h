#pragma once
/// \file mos_model.h
/// SPICE MOSFET model cards (Level 1 / 2 / 3) and their DC / small-signal /
/// charge evaluation.
///
/// This single evaluation path is shared by the circuit simulator (for
/// "SPICE sim" columns) and by the APE estimator (for sizing), mirroring
/// the paper's statement that "the sizing process is tied to the
/// fabrication process parameters and the sizing accuracy is directly
/// dependent on the transistor model used".

#include <string>

namespace ape::spice {

enum class MosType { Nmos, Pmos };

/// A parsed .model card. Parameter names follow Berkeley SPICE 2G6/3f5.
/// Defaults are the SPICE defaults; a process file normally overrides most.
struct MosModelCard {
  std::string name = "nmos";
  MosType type = MosType::Nmos;
  int level = 1;      ///< 1 = Shichman-Hodges, 2 = analytic, 3 = empirical,
                      ///< 4 = simplified BSIM1 (vfb/k1/k2/u0v/u1)

  // DC parameters.
  double vto = 1.0;       ///< zero-bias threshold voltage [V] (sign: NMOS +)
  double kp = 2.0e-5;     ///< transconductance parameter u0*Cox [A/V^2]
  double gamma = 0.0;     ///< body-effect coefficient [V^0.5]
  double phi = 0.6;       ///< surface inversion potential 2*phi_F [V]
  double lambda = 0.0;    ///< channel-length modulation [1/V]
  double u0 = 600.0;      ///< surface mobility [cm^2/Vs]
  double tox = 1.0e-7;    ///< oxide thickness [m]
  double nsub = 0.0;      ///< substrate doping [1/cm^3]
  double ld = 0.0;        ///< lateral diffusion [m]

  // Level 2/3 extensions.
  double ucrit = 1.0e4;   ///< L2: critical field for mobility degradation [V/cm]
  double uexp = 0.0;      ///< L2: mobility degradation exponent
  double vmax = 0.0;      ///< L2/L3: max carrier velocity [m/s] (0 = off)
  double theta = 0.0;     ///< L3: mobility modulation [1/V]
  double eta = 0.0;       ///< L3: static feedback (DIBL) coefficient
  double kappa = 0.2;     ///< L3: saturation field factor
  double xj = 0.0;        ///< metallurgical junction depth [m]

  // Level 4 (simplified BSIM1) parameters. The threshold is
  //   Vth = VFB + PHI + K1 sqrt(PHI + Vsb) - K2 (PHI + Vsb) - ETA Vds,
  // the body factor a = 1 + K1 / (2 sqrt(PHI + Vsb)) shapes the triode
  // term, MUZ is the zero-field mobility, U0V the vertical-field
  // degradation and U1 the velocity-saturation coefficient.
  double vfb = -0.3;      ///< L4: flat-band voltage [V] (sign: NMOS frame)
  double k1 = 0.5;        ///< L4: first-order body effect [V^0.5]
  double k2 = 0.0;        ///< L4: second-order body effect
  double muz = 600.0;     ///< L4: zero-field mobility [cm^2/Vs]
  double u0v = 0.0;       ///< L4: vertical-field mobility degradation [1/V]
  double u1 = 0.0;        ///< L4: velocity saturation [m/V] (0 = off)

  // Capacitance parameters.
  double cgso = 0.0;      ///< gate-source overlap cap per width [F/m]
  double cgdo = 0.0;      ///< gate-drain overlap cap per width [F/m]
  double cgbo = 0.0;      ///< gate-bulk overlap cap per length [F/m]
  double cj = 0.0;        ///< zero-bias bottom junction cap [F/m^2]
  double mj = 0.5;        ///< bottom junction grading coefficient
  double cjsw = 0.0;      ///< zero-bias sidewall junction cap [F/m]
  double mjsw = 0.33;     ///< sidewall grading coefficient
  double pb = 0.8;        ///< junction potential [V]
  double js = 1.0e-8;     ///< junction saturation current density [A/m^2]

  // Noise parameters (SPICE2 flicker model: S_id = KF Id^AF / (Cox Leff^2 f)).
  double kf = 0.0;        ///< flicker noise coefficient
  double af = 1.0;        ///< flicker noise exponent

  // Parasitic resistances (unused by the analyses but parsed).
  double rsh = 0.0;       ///< source/drain sheet resistance [ohm/sq]

  /// Non-standard extension: Early-voltage reference length. When > 0 the
  /// effective channel-length modulation becomes lambda * lref / Leff, so
  /// longer devices get proportionally higher output resistance - the
  /// behaviour LEVEL 2/3 obtain from NSUB/NEFF, made available to LEVEL 1
  /// so the estimator's length-vs-gain tradeoff is physical. 0 = plain
  /// SPICE LEVEL 1 semantics (constant lambda).
  double lref = 0.0;

  /// Gate-oxide capacitance per unit area [F/m^2].
  double cox() const;

  /// Effective channel length for a drawn length \p l [m].
  double leff(double l) const { return l - 2.0 * ld; }
};

/// MOSFET operating regions.
enum class MosRegion { Cutoff, Triode, Saturation };

/// Result of a DC + small-signal model evaluation at one bias point.
/// All values use the device's own sign convention (NMOS-normalized):
/// the evaluator maps PMOS terminals internally, and `ids` is the current
/// flowing drain->source for NMOS, source->drain magnitude for PMOS.
struct MosEval {
  double ids = 0.0;   ///< drain current [A] (NMOS-normalized, >= 0 in forward)
  double gm = 0.0;    ///< dIds/dVgs [S]
  double gds = 0.0;   ///< dIds/dVds [S]
  double gmb = 0.0;   ///< dIds/dVbs [S]
  double vth = 0.0;   ///< threshold voltage at this Vbs [V]
  double vdsat = 0.0; ///< saturation voltage [V]
  MosRegion region = MosRegion::Cutoff;

  // Meyer small-signal gate capacitances (intrinsic + overlap) [F].
  double cgs = 0.0;
  double cgd = 0.0;
  double cgb = 0.0;
  // Junction capacitances at this bias [F].
  double cdb = 0.0;
  double csb = 0.0;
};

/// Evaluate the model at NMOS-normalized terminal voltages.
/// For PMOS devices, negate (vgs, vds, vbs) before calling and interpret
/// the current as source->drain; `mos_eval_signed` does this for you.
///
/// \param w,l drawn width / length [m]; \param ad,as,pd,ps drain/source
/// junction areas [m^2] and perimeters [m] for the junction caps.
MosEval mos_eval(const MosModelCard& m, double vgs, double vds, double vbs,
                 double w, double l, double ad = 0.0, double as = 0.0,
                 double pd = 0.0, double ps = 0.0);

/// Sign-aware wrapper: takes true terminal voltages for either device type
/// and returns an evaluation whose `ids` is the current into the drain
/// terminal (negative for a conducting PMOS), with conductances >= 0.
MosEval mos_eval_signed(const MosModelCard& m, double vgs, double vds,
                        double vbs, double w, double l, double ad = 0.0,
                        double as = 0.0, double pd = 0.0, double ps = 0.0);

/// Render the card as a SPICE ".model" line (parse_model_card inverse).
std::string to_card_string(const MosModelCard& m);

}  // namespace ape::spice
