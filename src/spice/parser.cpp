#include "src/spice/parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/spice/devices.h"
#include "src/util/units.h"

namespace ape::spice {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

/// Tokenize one logical line; '(', ')', '=' and ',' act as separators so
/// "PULSE(0 5 1n)" and "w=10u" split cleanly.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> toks;
  std::string cur;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == '=' || c == ',') {
      if (!cur.empty()) {
        toks.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) toks.push_back(cur);
  return toks;
}

double num(const std::string& tok, const std::string& ctx) {
  return units::parse_or_throw(tok, ctx);
}

/// Parse source tokens following the node pair. Handles combinations of
/// a bare DC value, DC, AC and one transient waveform.
Waveform parse_waveform(const std::vector<std::string>& toks, size_t i,
                        const std::string& ctx) {
  Waveform w;
  bool have_dc = false;
  while (i < toks.size()) {
    const std::string key = lower(toks[i]);
    if (key == "dc") {
      if (i + 1 >= toks.size()) throw ParseError(ctx + ": DC needs a value");
      w.dc = num(toks[++i], ctx);
      have_dc = true;
      ++i;
    } else if (key == "ac") {
      if (i + 1 >= toks.size()) throw ParseError(ctx + ": AC needs a magnitude");
      w.ac_mag = num(toks[++i], ctx);
      ++i;
      if (i < toks.size() && units::parse(toks[i])) {
        w.ac_phase_deg = num(toks[i], ctx);
        ++i;
      }
    } else if (key == "pulse") {
      w.kind = Waveform::Kind::Pulse;
      double* slots[] = {&w.v1, &w.v2, &w.td, &w.tr, &w.tf, &w.pw, &w.per};
      size_t s = 0;
      ++i;
      while (i < toks.size() && s < 7 && units::parse(toks[i])) {
        *slots[s++] = num(toks[i++], ctx);
      }
      if (s < 2) throw ParseError(ctx + ": PULSE needs at least v1 v2");
      if (!have_dc) w.dc = w.v1;
    } else if (key == "sin") {
      w.kind = Waveform::Kind::Sin;
      double* slots[] = {&w.sin_vo, &w.sin_va, &w.sin_freq, &w.sin_td, &w.sin_theta};
      size_t s = 0;
      ++i;
      while (i < toks.size() && s < 5 && units::parse(toks[i])) {
        *slots[s++] = num(toks[i++], ctx);
      }
      if (s < 3) throw ParseError(ctx + ": SIN needs vo va freq");
      if (!have_dc) w.dc = w.sin_vo;
    } else if (key == "pwl") {
      w.kind = Waveform::Kind::Pwl;
      ++i;
      std::vector<double> vals;
      while (i < toks.size() && units::parse(toks[i])) vals.push_back(num(toks[i++], ctx));
      if (vals.size() < 4 || vals.size() % 2 != 0) {
        throw ParseError(ctx + ": PWL needs an even number (>= 4) of values");
      }
      for (size_t k = 0; k + 1 < vals.size(); k += 2) {
        w.pwl.emplace_back(vals[k], vals[k + 1]);
      }
      if (!have_dc) w.dc = w.pwl.front().second;
    } else if (units::parse(toks[i])) {
      w.dc = num(toks[i], ctx);
      have_dc = true;
      ++i;
    } else {
      throw ParseError(ctx + ": unexpected token '" + toks[i] + "'");
    }
  }
  return w;
}

void apply_model_param(MosModelCard& m, const std::string& key, double v) {
  static const std::map<std::string, double MosModelCard::*> kFields = {
      {"vto", &MosModelCard::vto},     {"kp", &MosModelCard::kp},
      {"gamma", &MosModelCard::gamma}, {"phi", &MosModelCard::phi},
      {"lambda", &MosModelCard::lambda}, {"u0", &MosModelCard::u0},
      {"uo", &MosModelCard::u0},       {"tox", &MosModelCard::tox},
      {"nsub", &MosModelCard::nsub},   {"ld", &MosModelCard::ld},
      {"ucrit", &MosModelCard::ucrit}, {"uexp", &MosModelCard::uexp},
      {"vmax", &MosModelCard::vmax},   {"theta", &MosModelCard::theta},
      {"eta", &MosModelCard::eta},     {"kappa", &MosModelCard::kappa},
      {"xj", &MosModelCard::xj},       {"cgso", &MosModelCard::cgso},
      {"cgdo", &MosModelCard::cgdo},   {"cgbo", &MosModelCard::cgbo},
      {"cj", &MosModelCard::cj},       {"mj", &MosModelCard::mj},
      {"cjsw", &MosModelCard::cjsw},   {"mjsw", &MosModelCard::mjsw},
      {"pb", &MosModelCard::pb},       {"js", &MosModelCard::js},
      {"rsh", &MosModelCard::rsh},   {"lref", &MosModelCard::lref},
      {"kf", &MosModelCard::kf},     {"af", &MosModelCard::af},
      {"vfb", &MosModelCard::vfb},   {"k1", &MosModelCard::k1},
      {"k2", &MosModelCard::k2},     {"muz", &MosModelCard::muz},
      {"u0v", &MosModelCard::u0v},   {"u1", &MosModelCard::u1},
  };
  if (key == "level") {
    m.level = static_cast<int>(v);
    if (m.level < 1 || m.level > 4) {
      throw ParseError(".model " + m.name + ": unsupported LEVEL " +
                       std::to_string(m.level) + " (1, 2, 3 or 4=BSIM)");
    }
    return;
  }
  auto it = kFields.find(key);
  if (it == kFields.end()) {
    throw ParseError(".model " + m.name + ": unknown parameter '" + key + "'");
  }
  m.*(it->second) = v;
}

}  // namespace

MosModelCard parse_model_card(const std::string& line) {
  const std::vector<std::string> toks = tokenize(line);
  if (toks.size() < 3 || lower(toks[0]) != ".model") {
    throw ParseError("malformed .model card: " + line);
  }
  MosModelCard m;
  m.name = lower(toks[1]);
  const std::string type = lower(toks[2]);
  if (type == "nmos") {
    m.type = MosType::Nmos;
    m.vto = 0.8;
  } else if (type == "pmos") {
    m.type = MosType::Pmos;
    m.vto = -0.8;
  } else {
    throw ParseError(".model " + m.name + ": unsupported type '" + type + "'");
  }
  for (size_t i = 3; i + 1 < toks.size(); i += 2) {
    apply_model_param(m, lower(toks[i]), num(toks[i + 1], ".model " + m.name));
  }
  if (toks.size() % 2 == 0) {
    throw ParseError(".model " + m.name + ": dangling parameter '" + toks.back() + "'");
  }
  return m;
}

Circuit parse_netlist(const std::string& text) {
  // Split into logical lines (handle '+' continuations), drop comments.
  std::vector<std::string> lines;
  {
    std::istringstream in(text);
    std::string raw;
    while (std::getline(in, raw)) {
      // Strip trailing comment ('$' or ';').
      const size_t cpos = raw.find_first_of("$;");
      if (cpos != std::string::npos) raw.erase(cpos);
      while (!raw.empty() && (raw.back() == '\r' || std::isspace(static_cast<unsigned char>(raw.back())))) {
        raw.pop_back();
      }
      size_t start = 0;
      while (start < raw.size() && std::isspace(static_cast<unsigned char>(raw[start]))) ++start;
      raw.erase(0, start);
      if (raw.empty()) continue;
      if (raw[0] == '*') continue;
      if (raw[0] == '+') {
        if (lines.empty()) throw ParseError("continuation line with no previous line");
        lines.back() += " " + raw.substr(1);
      } else {
        lines.push_back(raw);
      }
    }
  }
  if (lines.empty()) throw ParseError("empty netlist");

  Circuit ckt(lines.front());

  // First pass: model cards (devices may reference models defined later).
  for (size_t li = 1; li < lines.size(); ++li) {
    if (lower(lines[li].substr(0, 6)) == ".model") {
      ckt.add_model(parse_model_card(lines[li]));
    }
  }

  // Second pass: devices. Controlled-source control references (F/H) are
  // resolved after all elements exist, so collect them.
  struct PendingCc {
    std::string name, p, n, ctrl;
    double gain;
    bool is_cccs;
  };
  std::vector<PendingCc> pending_cc;
  std::set<std::string> seen_names;

  for (size_t li = 1; li < lines.size(); ++li) {
    const std::string& line = lines[li];
    const std::string ctx = "line " + std::to_string(li + 1);
    if (line[0] == '.') {
      const std::string card = lower(tokenize(line)[0]);
      if (card == ".model" || card == ".end" || card == ".ends") continue;
      throw ParseError(ctx + ": unsupported card '" + card + "'");
    }
    const std::vector<std::string> toks = tokenize(line);
    if (toks.size() < 3) throw ParseError(ctx + ": too few fields");
    const std::string name = toks[0];
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(name[0])));
    if (!seen_names.insert(lower(name)).second) {
      throw ParseError(ctx + ": duplicate device name '" + name + "'");
    }

    auto nd = [&](const std::string& s) { return ckt.node(s); };
    // A two-terminal element with both terminals on one node stamps a
    // zero row (R/C/L) or an unsatisfiable branch (V); reject it here
    // with the line number rather than letting the solve fail later.
    auto two_nodes = [&](const char* elem) {
      const NodeId p = nd(toks[1]);
      const NodeId n = nd(toks[2]);
      if (p == n) {
        throw ParseError(ctx + ": " + elem + " '" + name +
                         "' has both terminals on node '" + toks[1] + "'");
      }
      return std::pair<NodeId, NodeId>{p, n};
    };
    switch (kind) {
      case 'r': {
        if (toks.size() < 4) throw ParseError(ctx + ": R needs 2 nodes + value");
        const auto [p, n] = two_nodes("resistor");
        ckt.add<Resistor>(name, p, n, num(toks[3], ctx));
        break;
      }
      case 'c': {
        if (toks.size() < 4) throw ParseError(ctx + ": C needs 2 nodes + value");
        const auto [p, n] = two_nodes("capacitor");
        ckt.add<Capacitor>(name, p, n, num(toks[3], ctx));
        break;
      }
      case 'l': {
        if (toks.size() < 4) throw ParseError(ctx + ": L needs 2 nodes + value");
        const auto [p, n] = two_nodes("inductor");
        ckt.add<Inductor>(name, p, n, num(toks[3], ctx));
        break;
      }
      case 'v': {
        const auto [p, n] = two_nodes("voltage source");
        ckt.add<VSource>(name, p, n, parse_waveform(toks, 3, ctx));
        break;
      }
      case 'i': {
        const auto [p, n] = two_nodes("current source");
        ckt.add<ISource>(name, p, n, parse_waveform(toks, 3, ctx));
        break;
      }
      case 'e':
        if (toks.size() < 6) throw ParseError(ctx + ": E needs 4 nodes + gain");
        ckt.add<Vcvs>(name, nd(toks[1]), nd(toks[2]), nd(toks[3]), nd(toks[4]),
                      num(toks[5], ctx));
        break;
      case 'g':
        if (toks.size() < 6) throw ParseError(ctx + ": G needs 4 nodes + gm");
        ckt.add<Vccs>(name, nd(toks[1]), nd(toks[2]), nd(toks[3]), nd(toks[4]),
                      num(toks[5], ctx));
        break;
      case 'f':
      case 'h':
        if (toks.size() < 5) throw ParseError(ctx + ": F/H needs 2 nodes + vsrc + gain");
        pending_cc.push_back({name, toks[1], toks[2], toks[3], num(toks[4], ctx),
                              kind == 'f'});
        break;
      case 'd': {
        double is = 1e-14;
        if (toks.size() >= 4 && units::parse(toks[3])) is = num(toks[3], ctx);
        const auto [p, n] = two_nodes("diode");
        ckt.add<Diode>(name, p, n, is);
        break;
      }
      case 'm': {
        if (toks.size() < 6) throw ParseError(ctx + ": M needs 4 nodes + model");
        const MosModelCard* model = ckt.model(toks[5]);
        double w = 10e-6, l = 10e-6, ad = 0, as = 0, pd = 0, ps = 0;
        for (size_t i = 6; i + 1 < toks.size(); i += 2) {
          const std::string key = lower(toks[i]);
          const double v = num(toks[i + 1], ctx);
          if (key == "w") w = v;
          else if (key == "l") l = v;
          else if (key == "ad") ad = v;
          else if (key == "as") as = v;
          else if (key == "pd") pd = v;
          else if (key == "ps") ps = v;
          else throw ParseError(ctx + ": unknown MOSFET parameter '" + key + "'");
        }
        ckt.add<Mosfet>(name, nd(toks[1]), nd(toks[2]), nd(toks[3]), nd(toks[4]),
                        model, w, l, ad, as, pd, ps);
        break;
      }
      default:
        throw ParseError(ctx + ": unsupported element '" + name + "'");
    }
  }

  for (const auto& pc : pending_cc) {
    auto& ctrl = ckt.find_as<VSource>(pc.ctrl);
    const NodeId p = ckt.node(pc.p);
    const NodeId n = ckt.node(pc.n);
    if (p == n) {
      throw ParseError("controlled source '" + pc.name +
                       "' has both terminals on node '" + pc.p + "'");
    }
    if (pc.is_cccs) {
      ckt.add<Cccs>(pc.name, p, n, &ctrl, pc.gain);
    } else {
      ckt.add<Ccvs>(pc.name, p, n, &ctrl, pc.gain);
    }
  }
  return ckt;
}

}  // namespace ape::spice
