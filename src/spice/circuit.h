#pragma once
/// \file circuit.h
/// Circuit container: node table, model cards and the device list.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/spice/device.h"
#include "src/spice/mos_model.h"
#include "src/util/error.h"

namespace ape::spice {

/// A flat circuit: named nodes, .model cards and devices. Nodes named
/// "0", "gnd" or "ground" (case-insensitive) map to the reference node.
class Circuit {
public:
  Circuit() = default;
  explicit Circuit(std::string title) : title_(std::move(title)) {}

  const std::string& title() const { return title_; }
  void set_title(std::string t) { title_ = std::move(t); }

  /// Get or create the node with this name.
  NodeId node(const std::string& name);

  /// Look up an existing node; throws LookupError if absent.
  NodeId find_node(const std::string& name) const;

  /// Name of a node id (for reporting).
  const std::string& node_name(NodeId id) const;

  size_t num_nodes() const { return node_names_.size(); }

  /// Register a .model card; returns a pointer that stays valid for the
  /// life of the circuit.
  const MosModelCard* add_model(MosModelCard card);

  /// Find a model card by name; throws LookupError if absent.
  const MosModelCard* model(const std::string& name) const;

  /// Construct a device in place. Example:
  ///   ckt.add<Resistor>("r1", ckt.node("a"), ckt.node("b"), 1e3);
  template <typename D, typename... Args>
  D& add(Args&&... args) {
    ensure_not_finalized();
    auto dev = std::make_unique<D>(std::forward<Args>(args)...);
    D& ref = *dev;
    devices_.push_back(std::move(dev));
    return ref;
  }

  /// Find a device by name (nullptr if absent).
  Device* find(const std::string& name);
  const Device* find(const std::string& name) const;

  /// Find a device by name with a type check; throws LookupError on
  /// missing name or wrong type.
  template <typename D>
  D& find_as(const std::string& name) {
    Device* d = find(name);
    if (d == nullptr) throw LookupError("no device named '" + name + "'");
    auto* t = dynamic_cast<D*>(d);
    if (t == nullptr) throw LookupError("device '" + name + "' has unexpected type");
    return *t;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Devices whose stamps are independent of the candidate solution
  /// (R, C, L, sources, controlled sources), in device order. Valid after
  /// finalize(); stamped once per baseline by the compiled kernel
  /// (src/spice/kernel.h) instead of once per Newton iteration.
  const std::vector<Device*>& linear_devices() const { return linear_devices_; }

  /// Devices restamped every Newton iteration (MOSFETs, diodes), in
  /// device order. Valid after finalize().
  const std::vector<Device*>& nonlinear_devices() const { return nonlinear_devices_; }

  /// Resolve branch indices, split devices into linear / nonlinear stamp
  /// lists and fix the MNA dimension. Called implicitly by the analyses;
  /// calling add() afterwards throws.
  void finalize();
  bool finalized() const { return finalized_; }

  /// MNA dimension = nodes + branches (valid after finalize()).
  size_t dim() const { return mna_dim_; }

private:
  void ensure_not_finalized() const {
    if (finalized_) throw Error("circuit is finalized; no further edits allowed");
  }

  std::string title_;
  std::vector<std::string> node_names_;
  std::map<std::string, NodeId> node_ids_;
  std::map<std::string, MosModelCard> models_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Device*> linear_devices_;
  std::vector<Device*> nonlinear_devices_;
  size_t mna_dim_ = 0;
  bool finalized_ = false;
};

}  // namespace ape::spice
